/**
 * @file
 * Fig. 13: detecting a successful vs. failed login from packet sizes.
 * Prints the first 100 packets of each flow -- original sizes (the
 * tcpdump view) and the sizes recovered by Packet Chasing -- plus the
 * classifier's verdict. The paper's figure shows the success flow
 * streaming large messages while the failure flow stays small.
 */

#include <cstdio>

#include "bench_util.hh"
#include "fingerprint/attack.hh"
#include "testbed/testbed.hh"

using namespace pktchase;
using namespace pktchase::fingerprint;

namespace
{

void
printTrace(const char *label, const std::vector<unsigned> &classes)
{
    std::printf("  %-28s ", label);
    for (unsigned c : classes)
        std::printf("%u", std::min(c, 9u));
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Fig. 13",
                  "hotcrp-style login fingerprint: original vs. "
                  "recovered packet sizes, first 100 packets (classes "
                  "1..4, 4 = 4+ blocks)");

    testbed::Testbed tb(testbed::TestbedConfig{});
    WebsiteDb db = WebsiteDb::loginPair(2020);

    FingerprintConfig cfg;
    cfg.trainVisits = 10;
    FingerprintAttack atk(tb, db, cfg);

    Rng rng(7);
    for (std::size_t site = 0; site < db.size(); ++site) {
        const auto visit = db.visit(site, rng);
        const auto truth = FingerprintAttack::truthClasses(visit, 100);
        const auto recovered = atk.captureVisit(site, rng);

        std::printf("\n  -- %s --\n", db.names()[site].c_str());
        printTrace("original (tcpdump)", truth);
        printTrace("recovered (packet chasing)", recovered);
    }

    // Classifier check on fresh captures.
    CorrelationClassifier clf;
    for (std::size_t site = 0; site < db.size(); ++site)
        for (int v = 0; v < 10; ++v)
            clf.train(site, FingerprintAttack::truthClasses(
                                db.visit(site, rng), 100));
    unsigned correct = 0;
    const unsigned trials = 20;
    for (unsigned t = 0; t < trials; ++t) {
        const std::size_t site = t % db.size();
        correct += clf.classify(atk.captureVisit(site, rng)) == site;
    }
    std::printf("\n  login success/failure distinguished in %u/%u "
                "live captures (%.0f%%)\n", correct, trials,
                100.0 * correct / trials);
    std::printf("  (1-block originals read as class 2 through the "
                "cache: the driver prefetch, cf. Fig. 8)\n");
    return 0;
}
