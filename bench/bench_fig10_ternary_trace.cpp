/**
 * @file
 * Fig. 10: the spy's view of the repeating ternary sequence
 * "2012012012...", decoded from the activity of three monitored sets
 * (block 1 = clock, blocks 2 and 3 = data).
 */

#include <cstdio>

#include "bench_util.hh"
#include "channel/spy.hh"
#include "channel/trojan.hh"
#include "channel/capacity.hh"
#include "net/traffic.hh"
#include "sim/stats.hh"
#include "testbed/testbed.hh"

using namespace pktchase;
using namespace pktchase::channel;

int
main()
{
    bench::banner("Fig. 10",
                  "Decoding the transmitted sequence 2012012012... "
                  "from three probed sets (paper: set 1 clocks, sets "
                  "2-3 carry the value)");

    testbed::Testbed tb(testbed::TestbedConfig{});

    std::vector<unsigned> sent;
    for (int i = 0; i < 30; ++i)
        sent.push_back(static_cast<unsigned>((2 + i * 2) % 3));
    // 2, 0 (wraps 4->1?) -- construct literally: 2,0,1,2,0,1,...
    sent.clear();
    const unsigned pattern[3] = {2, 0, 1};
    for (int i = 0; i < 30; ++i)
        sent.push_back(pattern[i % 3]);

    const auto buffers = pickMonitoredBuffers(tb, 1);
    SpyConfig spy_cfg;
    spy_cfg.probeRateHz = 16500; // one sample per 200k cycles (paper)
    CovertSpy spy(tb.hier(), tb.groups(), buffers, Scheme::Ternary,
                  spy_cfg);

    auto trojan = std::make_unique<TrojanSource>(
        sent, Scheme::Ternary, tb.driver().ring().size(), 0.0);
    net::TrafficPump pump(tb.eq(), tb.driver(), std::move(trojan),
                          tb.eq().now() + 1000, 2000.0);

    const double secs = 30.0 * 256.0 / net::maxFrameRate(256) * 1.4;
    const ListenResult result =
        spy.listen(tb.eq(), tb.eq().now() + secondsToCycles(secs));

    std::printf("  transmitted: ");
    for (unsigned s : sent)
        std::printf("%u", s);
    std::printf("\n  decoded:     ");
    for (const SymbolEvent &e : result.events)
        std::printf("%u", e.symbol);
    std::printf("\n\n");

    const auto received = result.symbols();
    const std::size_t dist = levenshtein(sent, received);
    std::printf("  symbols sent %zu, decoded %zu, Levenshtein %zu "
                "(%.1f%% error)\n", sent.size(), received.size(), dist,
                100.0 * static_cast<double>(dist) /
                    static_cast<double>(sent.size()));
    std::printf("  sampling: one probe of the 3 sets every ~200k "
                "cycles, decode window 3\n");
    return 0;
}
