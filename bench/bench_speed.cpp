/**
 * @file
 * Simulator speed baseline: wall-clock throughput of the hot paths
 * (event pops, frame deliveries, probe rounds) across a representative
 * slice of the evaluation grid -- every ring-defense tier with and
 * without an attacker, on the single-queue and 4-queue NIC.
 *
 * Unlike the figure benches this measures the *simulator*, not the
 * simulated machine: each cell runs the same reduced testbed for the
 * same simulated horizon, and the row reports how many simulated
 * events/frames/probe rounds per host second that run sustained. The
 * obs::Stat counters provide the numerators (they advance only with
 * simulated work, so the rates are comparable across commits), a
 * steady_clock around each cell the denominator.
 *
 * Cells run strictly serially on one thread: wall-clock per cell is
 * the quantity under measurement, so cells must not contend for
 * cores the way a normal campaign's workers do.
 *
 * Emits BENCH_speed.json (via sim::BenchReport) -- the tracked speed
 * trajectory that ROADMAP item 2's optimization work is measured
 * against.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/footprint.hh"
#include "bench_util.hh"
#include "defense/registry.hh"
#include "net/traffic.hh"
#include "obs/profile.hh"
#include "obs/stats.hh"
#include "sim/bench_report.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

namespace
{

/** Simulated horizon of every cell: long enough that per-cell rates
 *  are stable (hundreds of thousands of events), short enough that
 *  the full 12-cell sweep stays in CI budget. */
constexpr Cycles kHorizon = secondsToCycles(0.04);

/** Workload seed shared by every cell (identical offered load). */
constexpr std::uint64_t kSeed = 0x5eedul;

/** The benign flow mix every cell carries: steady connections plus a
 *  many-flow Poisson background, unbounded so it outlives the
 *  horizon (same shape as the figD1 detection workload). */
std::unique_ptr<net::FlowMix>
benignMix()
{
    auto mix = std::make_unique<net::FlowMix>();
    for (std::uint32_t f = 0; f < 6; ++f) {
        mix->add(std::make_unique<net::ConstantStream>(
            768, 20000.0, 0, nic::Protocol::Udp, 101 + 17 * f));
    }
    mix->add(std::make_unique<net::PoissonBackground>(
        60000.0, Rng(kSeed), 0, 64));
    return mix;
}

/** One speed cell: defense tier x queue count x attacker presence. */
struct SpeedCell
{
    std::string ring;
    std::size_t queues;
    bool attacker;

    std::string
    name() const
    {
        return "speed/" + ring + "+" + defense::nicSpecOf(queues) +
               (attacker ? "/attack" : "/benign");
    }
};

std::vector<SpeedCell>
speedCells()
{
    std::vector<SpeedCell> cells;
    for (const char *ring :
         {"ring.none", "ring.partial:1000",
          "ring.gated:cadence:partial.1000"}) {
        for (std::size_t q : {std::size_t(1), std::size_t(4)}) {
            for (bool attacker : {false, true})
                cells.push_back({ring, q, attacker});
        }
    }
    return cells;
}

/** Run one cell once and return its rate metrics. */
sim::BenchReport::Metrics
runCellOnce(const SpeedCell &cell)
{
    testbed::TestbedConfig cfg = testbed::TestbedConfig::reduced();
    cfg.ringDefense = cell.ring;
    cfg.nicSpec = defense::nicSpecOf(cell.queues);
    testbed::Testbed tb(cfg);

    net::TrafficPump pump(tb.eq(), tb.driver(), benignMix(), 1000);

    const obs::StatSnapshot before = obs::snapshot();
    const auto t0 = std::chrono::steady_clock::now();

    if (cell.attacker) {
        // The footprint scan is the probe-heavy attacker phase; it
        // drives the event queue itself, interleaving with the pump.
        std::vector<std::size_t> all;
        for (std::size_t c = 0; c < tb.groups().groups.size(); ++c)
            all.push_back(c);
        attack::FootprintConfig fcfg;
        fcfg.probeRateHz = 8000.0;
        fcfg.probe.ways = tb.config().llc.geom.ways;
        attack::FootprintScanner scanner(tb.hier(), tb.groups(), all,
                                         fcfg);
        scanner.scan(tb.eq(), kHorizon);
    } else {
        tb.eq().runUntil(kHorizon);
    }

    const double wall_sec = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    const obs::StatSnapshot delta = obs::snapshot() - before;

    const auto rate = [wall_sec](std::uint64_t n) {
        return wall_sec > 0.0 ? static_cast<double>(n) / wall_sec : 0.0;
    };
    const std::uint64_t events = delta.get(obs::Stat::SimEvents);
    const std::uint64_t frames = delta.get(obs::Stat::FramesDelivered);
    const std::uint64_t rounds = delta.get(obs::Stat::ProbeRounds);

    sim::BenchReport::Metrics m;
    m.emplace_back("wall_ms", wall_sec * 1e3);
    m.emplace_back("sim_events", static_cast<double>(events));
    m.emplace_back("sim_events_per_sec", rate(events));
    m.emplace_back("frames_delivered", static_cast<double>(frames));
    m.emplace_back("frames_per_sec", rate(frames));
    m.emplace_back("probe_rounds", static_cast<double>(rounds));
    m.emplace_back("probe_rounds_per_sec", rate(rounds));
    m.emplace_back("llc_accesses",
                   static_cast<double>(delta.get(obs::Stat::LlcAccesses)));
    return m;
}

double
metricOf(const sim::BenchReport::Metrics &m, const std::string &key)
{
    for (const auto &kv : m)
        if (kv.first == key)
            return kv.second;
    fatal("bench_speed: no metric '" + key + "'");
}

/**
 * Run one cell @p reps times and keep the fastest repetition. The
 * simulated work is deterministic, so every rep must report identical
 * counter totals -- only the wall clock (and thus the rates) varies
 * with host noise; best-of-N is the standard way to estimate the
 * noise floor of a deterministic workload. A counter mismatch between
 * reps means the simulator is *not* deterministic and is fatal.
 */
sim::BenchReport::Metrics
runCell(const SpeedCell &cell, unsigned reps)
{
    sim::BenchReport::Metrics best = runCellOnce(cell);
    for (unsigned r = 1; r < reps; ++r) {
        const sim::BenchReport::Metrics m = runCellOnce(cell);
        for (const char *key :
             {"sim_events", "frames_delivered", "probe_rounds",
              "llc_accesses"}) {
            if (metricOf(m, key) != metricOf(best, key)) {
                fatal("bench_speed: " + cell.name() + " rep " +
                      std::to_string(r) + " changed deterministic "
                      "counter '" + key + "'");
            }
        }
        if (metricOf(m, "wall_ms") < metricOf(best, "wall_ms"))
            best = m;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    // bench_speed [--reps=N] [--profile] [cell-name-substring]
    //
    // The benign cells finish in single-digit milliseconds since the
    // hot paths were batched, so one-shot rates see double-digit host
    // noise; the default 5 repetitions keep the gate meaningful. A
    // filter restricts the sweep (profiling one cell) and suppresses
    // the JSON so a partial run can never masquerade as a baseline.
    unsigned reps = 5;
    std::string filter;
    bool profileMode = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--reps=", 0) == 0) {
            const int n = std::atoi(arg.c_str() + 7);
            if (n < 1)
                fatal("bench_speed: --reps must be >= 1");
            reps = static_cast<unsigned>(n);
        } else if (arg == "--profile") {
            profileMode = true;
        } else if (!arg.empty() && arg[0] != '-' && filter.empty()) {
            filter = arg;
        } else {
            fatal("bench_speed: unknown argument '" + arg + "'");
        }
    }

    // --profile: aggregate the instrumented phases across the sweep
    // and print the phase table instead of writing BENCH_speed.json --
    // slot accumulation at every span close is measurable overhead, so
    // a profiled run must never become the committed speed baseline.
    std::optional<obs::ProfileSession> profile;
    if (profileMode)
        profile.emplace();

    bench::banner("Speed",
                  "Simulator hot-path throughput per host second "
                  "(the tracked optimization baseline, not a paper "
                  "figure)");

    const auto t0 = std::chrono::steady_clock::now();

    sim::BenchReport report("speed");
    report.scalar("horizon_sim_sec", 0.04);

    std::printf("  %-58s %8s %10s %9s %9s\n", "cell", "wall ms",
                "Mevent/s", "kframe/s", "kround/s");
    bench::rule(100);
    std::size_t ran = 0;
    for (const SpeedCell &cell : speedCells()) {
        if (!filter.empty()
            && cell.name().find(filter) == std::string::npos)
            continue;
        const sim::BenchReport::Metrics m = runCell(cell, reps);
        std::printf("  %-58s %8.1f %10.2f %9.1f %9.1f\n",
                    cell.name().c_str(), metricOf(m, "wall_ms"),
                    metricOf(m, "sim_events_per_sec") / 1e6,
                    metricOf(m, "frames_per_sec") / 1e3,
                    metricOf(m, "probe_rounds_per_sec") / 1e3);
        report.cell(cell.name(), m);
        ++ran;
    }
    bench::rule(100);

    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    std::printf("  %zu cells x %u reps (best-of) in %.2f s host time\n",
                ran, reps, elapsed);
    if (ran == 0)
        fatal("bench_speed: filter '" + filter + "' matched no cell");

    if (profileMode) {
        // The cells all ran on this (the only) thread, so one drain
        // holds the whole sweep. Phases sorted by self time: the top
        // row is where an optimization PR should look first.
        const obs::ProfileDelta prof = obs::drainProfile();
        std::vector<std::size_t> ids;
        for (std::size_t id = 0; id < prof.size(); ++id)
            if (!prof[id].empty())
                ids.push_back(id);
        std::sort(ids.begin(), ids.end(),
                  [&prof](std::size_t a, std::size_t b) {
                      return prof[a].selfNs > prof[b].selfNs;
                  });
        std::uint64_t selfTotal = 0;
        for (std::size_t id : ids)
            selfTotal += prof[id].selfNs;
        std::printf("\n  %-24s %12s %10s %10s %7s\n", "phase", "count",
                    "total ms", "self ms", "share");
        bench::rule(70);
        for (std::size_t id : ids) {
            const obs::PhaseStats &s = prof[id];
            std::printf("  %-24s %12llu %10.2f %10.2f %6.1f%%\n",
                        obs::phaseName(id),
                        static_cast<unsigned long long>(s.count),
                        static_cast<double>(s.totalNs) * 1e-6,
                        static_cast<double>(s.selfNs) * 1e-6,
                        selfTotal ? 100.0 *
                                        static_cast<double>(s.selfNs) /
                                        static_cast<double>(selfTotal)
                                  : 0.0);
        }
        bench::rule(70);
        std::printf("  profiled run: BENCH_speed.json not written\n");
        return 0;
    }

    if (!filter.empty()) {
        std::printf("  filtered run: BENCH_speed.json not written\n");
        return 0;
    }
    report.scalar("elapsed_sec", elapsed);
    if (!report.write())
        return 1;
    std::printf("  wrote BENCH_speed.json\n");
    return 0;
}
