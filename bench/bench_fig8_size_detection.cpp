/**
 * @file
 * Fig. 8: cache footprint of packet streams of 1..4 blocks while
 * probing block rows 0..3 of the buffer pages. Activity appears on
 * the diagonal and above -- except block 1, which the driver's
 * unconditional next-block prefetch lights up even for 1-block
 * packets.
 */

#include <cstdio>

#include "attack/size_detector.hh"
#include "bench_util.hh"
#include "net/traffic.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

int
main()
{
    bench::banner("Fig. 8",
                  "Block-row activity vs. packet size (paper: diagonal "
                  "pattern; 1-block packets still fire block 1 via the "
                  "driver prefetch)");

    std::printf("  %-18s %8s %8s %8s %8s\n", "stream",
                "block 0", "block 1", "block 2", "block 3");
    bench::rule(60);

    for (unsigned pkt_blocks = 1; pkt_blocks <= 4; ++pkt_blocks) {
        testbed::Testbed tb(testbed::TestbedConfig{});
        auto combos = tb.activeCombos();
        if (combos.size() > 24)
            combos.resize(24);
        attack::SizeDetectorConfig cfg;
        cfg.probe.ways = tb.config().llc.geom.ways;
        attack::SizeDetector det(tb.hier(), tb.groups(), combos, cfg);
        net::TrafficPump pump(
            tb.eq(), tb.driver(),
            std::make_unique<net::ConstantStream>(
                pkt_blocks * blockBytes, 200000.0, 0),
            tb.eq().now() + 1000);
        const auto rates = det.measure(
            tb.eq(), tb.eq().now() + secondsToCycles(0.04));
        const auto row = attack::SizeDetector::rowActivity(rates);

        std::printf("  %u-block packets  ", pkt_blocks);
        for (double r : row)
            std::printf(" %7.4f", r);
        std::printf("\n");
    }
    bench::rule(60);
    std::printf("  (entries are the fraction of probe rounds with "
                "activity on that block row)\n");
    return 0;
}
