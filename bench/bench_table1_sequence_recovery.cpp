/**
 * @file
 * Table I: summary of ring-buffer sequence recovery experiments.
 *
 * Paper values (32 monitored sets, 100k samples, 0.2M pkt/s, 8k
 * probe/s on real hardware): Levenshtein 25.2 [22, 35] on the 256-slot
 * ring, error rate 9.8% [8.5, 13.6], longest mismatch 5.2 [3, 9].
 *
 * The simulated probe has a different cost model than Mastik on the
 * Xeon (see EXPERIMENTS.md), so the probe/packet ratio is retuned:
 * 100k probe rounds/s against 100k packets/s keeps roughly one
 * monitored activation per round, which is the regime the paper's
 * "fine-tuning the probe rate" paragraph describes.
 */

#include <cstdio>

#include "attack/sequencer.hh"
#include "bench_util.hh"
#include "net/traffic.hh"
#include "sim/stats.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

namespace
{

struct Trial
{
    double lev = 0;
    double error_pct = 0;
    double longest = 0;
    double sim_minutes = 0;
};

Trial
runTrial(std::uint64_t seed)
{
    testbed::TestbedConfig tcfg;
    tcfg.seed = seed;
    testbed::Testbed tb(tcfg);

    auto active = tb.activeCombos();
    if (active.size() > 32)
        active.resize(32);

    // The paper's 0.2M pkt/s against the probe round rate leaves ~2
    // packets per round, so within-round ordering is partially lost --
    // the main error source behind Table I's 9.8%.
    net::TrafficPump pump(
        tb.eq(), tb.driver(),
        std::make_unique<net::ConstantStream>(128, 200000.0, 0),
        tb.eq().now() + 1000, 500.0, seed);

    attack::SequencerConfig cfg;
    cfg.nSamples = 100000;
    cfg.probeRateHz = 100000;
    cfg.probe.ways = tb.config().llc.geom.ways;
    attack::Sequencer seq(tb.hier(), tb.groups(), active, cfg);
    const attack::SequencerResult result = seq.run(tb.eq());

    const auto all_gsets = tb.comboGsets();
    std::vector<std::size_t> monitored;
    for (std::size_t c : active)
        monitored.push_back(all_gsets[c]);
    std::vector<std::size_t> ring;
    for (std::size_t c : tb.ringComboSequence())
        ring.push_back(all_gsets[c]);
    const auto expected =
        attack::expectedMonitorSequence(ring, monitored);

    // The recovered ring has no defined origin: align it to the
    // ground truth at the rotation minimizing edit distance before
    // scoring.
    std::vector<int> best = result.sequence;
    std::size_t best_lev = static_cast<std::size_t>(-1);
    std::vector<int> rotated = result.sequence;
    for (std::size_t r = 0; r < std::max<std::size_t>(
             result.sequence.size(), 1); ++r) {
        const std::size_t d = levenshtein(rotated, expected);
        if (d < best_lev) {
            best_lev = d;
            best = rotated;
        }
        if (!rotated.empty())
            std::rotate(rotated.begin(), rotated.begin() + 1,
                        rotated.end());
    }

    Trial t;
    t.lev = static_cast<double>(best_lev);
    t.error_pct = expected.empty()
        ? 0.0 : 100.0 * t.lev / static_cast<double>(expected.size());
    t.longest = static_cast<double>(longestMismatchRun(best, expected));
    t.sim_minutes = cyclesToSeconds(result.elapsed);
    return t;
}

void
printRow(const char *name, const Summary &s, const char *unit)
{
    std::printf("  %-28s %8.1f   [%5.1f, %5.1f] %s\n", name, s.mean,
                s.min, s.max, unit);
}

} // namespace

int
main()
{
    bench::banner("Table I",
                  "Ring-buffer sequence recovery quality over repeated "
                  "driver instances (paper: Levenshtein 25.2, error "
                  "9.8%, longest mismatch 5.2)");

    std::vector<double> lev, err, lng, minutes;
    const unsigned trials = 8;
    for (std::uint64_t s = 1; s <= trials; ++s) {
        const Trial t = runTrial(s);
        lev.push_back(t.lev);
        err.push_back(t.error_pct);
        lng.push_back(t.longest);
        minutes.push_back(t.sim_minutes);
    }

    std::printf("  %-28s %8s   %14s\n", "Measure", "Value",
                "[min, max]");
    bench::rule();
    printRow("Levenshtein Distance", summarize(lev), "");
    printRow("Error Rate (%)", summarize(err), "");
    printRow("Longest Mismatch", summarize(lng), "");
    printRow("Sim. Sampling Time (s)", summarize(minutes), "");
    bench::rule();
    std::printf("  parameters: 100000 samples, 32 monitored sets, "
                "0.2M pkt/s, 100k probe rounds/s, %u trials\n", trials);
    std::printf("  (the simulated probe is faster than Mastik's, so "
                "the paper's 159 wall-clock\n   minutes compress into "
                "~1 simulated second per instance)\n");
    return 0;
}
