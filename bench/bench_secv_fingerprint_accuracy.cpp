/**
 * @file
 * Sec. V closed-world evaluation: five websites, classification of
 * live Packet Chasing captures, with DDIO on and off.
 *
 * Paper: 89.7% accuracy with DDIO, 86.5% without (1000 trials). The
 * no-DDIO path is noisier because probe intervals must stretch past
 * the I/O-write-to-driver-read latency and large dropped payloads
 * never enter the cache.
 */

#include <cstdio>

#include "bench_util.hh"
#include "fingerprint/attack.hh"
#include "testbed/testbed.hh"

using namespace pktchase;
using namespace pktchase::fingerprint;

namespace
{

FingerprintResult
evaluate(bool ddio, std::size_t trials)
{
    testbed::TestbedConfig tcfg;
    tcfg.cacheDefense = ddio ? "cache.ddio" : "cache.no-ddio";
    testbed::Testbed tb(tcfg);
    WebsiteDb db({"facebook.com", "twitter.com", "google.com",
                  "amazon.com", "apple.com"},
                 42);
    FingerprintConfig cfg;
    cfg.trainVisits = 20;
    cfg.trials = trials;
    cfg.sequenceErrorRate = 0.01;
    FingerprintAttack atk(tb, db, cfg);
    return atk.evaluate();
}

} // namespace

int
main()
{
    bench::banner("Sec. V",
                  "Closed-world website fingerprinting accuracy "
                  "(paper: 89.7% with DDIO, 86.5% without)");

    const std::size_t trials = 300;
    std::printf("  %-14s %10s %12s\n", "configuration", "accuracy",
                "trials");
    bench::rule(42);
    const FingerprintResult with_ddio = evaluate(true, trials);
    std::printf("  %-14s %9.1f%% %12zu\n", "DDIO",
                with_ddio.accuracy * 100.0, with_ddio.trials);
    const FingerprintResult without = evaluate(false, trials);
    std::printf("  %-14s %9.1f%% %12zu\n", "no DDIO",
                without.accuracy * 100.0, without.trials);
    bench::rule(42);
    std::printf("  five sites, 20 training traces each, correlation "
                "classifier with +/-5 lag\n");
    return 0;
}
