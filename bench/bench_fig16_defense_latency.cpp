/**
 * @file
 * Fig. 16: HTTP response tail latency under the candidate defenses,
 * wrk2-style open-loop load.
 *
 * Paper (140k req/s target): adaptive partitioning costs 3.1% at the
 * 99th percentile while full ring randomization costs 41.8%; partial
 * randomization at 10k-packet intervals is near the baseline. The
 * attack needs ~65k packets to deconstruct the ring, so 10k-interval
 * reshuffling still breaks it.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;
using namespace pktchase::workload;

int
main()
{
    bench::banner("Fig. 16",
                  "Response latency percentiles per defense (paper: "
                  "adaptive +3.1% at p99, full randomization +41.8%)");

    struct Config
    {
        const char *name;
        CacheMode mode;
        nic::RingDefense defense;
        std::uint64_t interval;
    };
    const Config configs[] = {
        {"vulnerable baseline", CacheMode::Ddio,
         nic::RingDefense::None, 0},
        {"fully randomized ring", CacheMode::Ddio,
         nic::RingDefense::FullRandom, 0},
        {"partial random (1k)", CacheMode::Ddio,
         nic::RingDefense::PartialPeriodic, 1000},
        {"partial random (10k)", CacheMode::Ddio,
         nic::RingDefense::PartialPeriodic, 10000},
        {"adaptive partitioning", CacheMode::AdaptivePartition,
         nic::RingDefense::None, 0},
    };

    const double rate = 100000.0;
    const std::size_t requests = 20000;

    std::printf("  %-24s %8s %8s %8s %8s %8s  (ms)\n", "defense",
                "p50", "p90", "p99", "p99.9", "p99.99");
    bench::rule(76);
    double base_p99 = 0.0;
    for (const Config &c : configs) {
        const LatencyResult r = nginxLatency(c.mode, c.defense,
                                             c.interval, rate,
                                             requests);
        const double p99 = r.percentile(99);
        if (base_p99 == 0.0)
            base_p99 = p99;
        std::printf("  %-24s %8.3f %8.3f %8.3f %8.3f %8.3f  "
                    "(p99 %+5.1f%%)\n",
                    c.name, r.percentile(50), r.percentile(90), p99,
                    r.percentile(99.9), r.percentile(99.99),
                    100.0 * (p99 / base_p99 - 1.0));
    }
    bench::rule(76);
    std::printf("  open loop at %.0fk req/s, %zu requests per "
                "configuration\n", rate / 1000.0, requests);
    return 0;
}
