/**
 * @file
 * Fig. 16: HTTP response tail latency under the candidate defenses,
 * wrk2-style open-loop load, plus the extended defense cells the
 * registry-driven grid adds beyond the paper (intra-page offset,
 * quarantine pool, way-restricted DDIO) and the multi-queue fig16q
 * cells (the same ring defenses on an RSS NIC at 2 and 4 queues).
 *
 * Paper (140k req/s target): adaptive partitioning costs 3.1% at the
 * 99th percentile while full ring randomization costs 41.8%; partial
 * randomization at 10k-packet intervals is near the baseline. The
 * attack needs ~65k packets to deconstruct the ring, so 10k-interval
 * reshuffling still breaks it.
 *
 * Runs as a parallel campaign: all defense cells execute concurrently
 * (>= 4 worker threads by default; PKTCHASE_THREADS overrides) and
 * every cell sees the same arrival process, so the percentile columns
 * are a paired comparison.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "runtime/sweep.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;
using namespace pktchase::workload;

namespace
{

void
printTable(const std::vector<runtime::ScenarioResult> &results,
           const std::string &prefix,
           const std::vector<defense::Cell> &cells, double base_p99)
{
    std::printf("  %-40s %8s %8s %8s %8s %8s\n", "defense cell",
                "p50", "p90", "p99", "p99.9", "p99.99");
    bench::rule(92);
    for (const defense::Cell &cell : cells) {
        // Rows are looked up by canonical cell name so a reordered
        // grid cannot silently mislabel a defense.
        const auto &r =
            bench::byName(results, prefix + "/" + cell.name());
        const double p99 = r.value("p99");
        std::printf("  %-40s %8.3f %8.3f %8.3f %8.3f %8.3f  "
                    "(p99 %+5.1f%%)\n",
                    cell.name().c_str(), r.value("p50"),
                    r.value("p90"), p99, r.value("p99_9"),
                    r.value("p99_99"),
                    100.0 * (p99 / base_p99 - 1.0));
    }
    bench::rule(92);
}

} // namespace

int
main()
{
    bench::banner("Fig. 16",
                  "Response latency percentiles per defense (paper: "
                  "adaptive +3.1% at p99, full randomization +41.8%)");

    const double rate = 100000.0;
    const std::size_t requests = 20000;

    // One concatenated sweep: the paper, extended, and multi-queue
    // cells share the worker pool (no barrier between the tables), and
    // the names already carry distinct fig16/fig16x/fig16q prefixes.
    auto grid = fig16LatencyGrid(rate, requests);
    const auto extended = extendedLatencyGrid(rate, requests);
    grid.insert(grid.end(), extended.begin(), extended.end());
    const auto multiq = fig16qLatencyGrid(rate, requests);
    grid.insert(grid.end(), multiq.begin(), multiq.end());
    const auto results = runtime::sweep(grid);
    const double base_p99 = bench::byName(
        results, "fig16/ring.none+cache.ddio").value("p99");

    std::printf("  paper cells (latency in ms):\n");
    printTable(results, "fig16", fig16Cells(), base_p99);

    std::printf("\n  extended cells (p99 vs. the same baseline):\n");
    printTable(results, "fig16x", extendedCells(), base_p99);

    std::printf("\n  multi-queue cells (RSS steering; per-packet-count"
                " defenses\n  reshuffle each ring N x less often at N"
                " queues):\n");
    printTable(results, "fig16q", fig16qCells(), base_p99);

    std::printf("  open loop at %.0fk req/s, %zu requests per "
                "configuration\n", rate / 1000.0, requests);
    return 0;
}
