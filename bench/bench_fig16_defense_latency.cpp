/**
 * @file
 * Fig. 16: HTTP response tail latency under the candidate defenses,
 * wrk2-style open-loop load, plus the extended defense cells the
 * registry-driven grid adds beyond the paper (intra-page offset,
 * quarantine pool, way-restricted DDIO) and the multi-queue fig16q
 * cells (the same ring defenses on an RSS NIC at 2 and 4 queues).
 *
 * Paper (140k req/s target): adaptive partitioning costs 3.1% at the
 * 99th percentile while full ring randomization costs 41.8%; partial
 * randomization at 10k-packet intervals is near the baseline. The
 * attack needs ~65k packets to deconstruct the ring, so 10k-interval
 * reshuffling still breaks it.
 *
 * Runs as a parallel campaign: all defense cells execute concurrently
 * (>= 4 worker threads by default; PKTCHASE_THREADS overrides) and
 * every cell sees the same arrival process, so the percentile columns
 * are a paired comparison.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "runtime/sweep.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;
using namespace pktchase::workload;

namespace
{

/** Canonical names of a cell list, for the shared table printer. */
std::vector<std::string>
cellNames(const std::vector<defense::Cell> &cells)
{
    std::vector<std::string> names;
    names.reserve(cells.size());
    for (const defense::Cell &cell : cells)
        names.push_back(cell.name());
    return names;
}

} // namespace

int
main()
{
    bench::banner("Fig. 16",
                  "Response latency percentiles per defense (paper: "
                  "adaptive +3.1% at p99, full randomization +41.8%)");

    const double rate = 100000.0;
    const std::size_t requests = 20000;

    // One concatenated sweep: the paper, extended, and multi-queue
    // cells share the worker pool (no barrier between the tables), and
    // the names already carry distinct fig16/fig16x/fig16q prefixes.
    auto grid = fig16LatencyGrid(rate, requests);
    const auto extended = extendedLatencyGrid(rate, requests);
    grid.insert(grid.end(), extended.begin(), extended.end());
    const auto multiq = fig16qLatencyGrid(rate, requests);
    grid.insert(grid.end(), multiq.begin(), multiq.end());
    const auto results = runtime::sweep(grid);
    const double base_p99 = bench::byName(
        results, "fig16/ring.none+cache.ddio").value("p99");

    std::printf("  paper cells (latency in ms):\n");
    bench::printLatencyTable(results, "fig16", cellNames(fig16Cells()),
                             base_p99);

    std::printf("\n  extended cells (p99 vs. the same baseline):\n");
    bench::printLatencyTable(results, "fig16x",
                             cellNames(extendedCells()), base_p99);

    std::printf("\n  multi-queue cells (RSS steering; per-packet-count"
                " defenses\n  reshuffle each ring N x less often at N"
                " queues):\n");
    bench::printLatencyTable(results, "fig16q",
                             cellNames(fig16qCells()), base_p99);

    std::printf("  open loop at %.0fk req/s, %zu requests per "
                "configuration\n", rate / 1000.0, requests);

    sim::BenchReport report("fig16");
    report.scalar("rate_req_per_sec", rate);
    report.scalar("requests", static_cast<double>(requests));
    bench::addCells(report, results);
    if (!report.write())
        return 1;
    std::printf("  wrote BENCH_fig16.json\n");
    return 0;
}
