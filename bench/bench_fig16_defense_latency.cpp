/**
 * @file
 * Fig. 16: HTTP response tail latency under the candidate defenses,
 * wrk2-style open-loop load.
 *
 * Paper (140k req/s target): adaptive partitioning costs 3.1% at the
 * 99th percentile while full ring randomization costs 41.8%; partial
 * randomization at 10k-packet intervals is near the baseline. The
 * attack needs ~65k packets to deconstruct the ring, so 10k-interval
 * reshuffling still breaks it.
 *
 * Runs as a parallel campaign: the five defense configurations execute
 * concurrently (>= 4 worker threads by default; PKTCHASE_THREADS
 * overrides) and every configuration sees the same arrival process, so
 * the percentile columns are a paired comparison.
 */

#include <cstdio>

#include "bench_util.hh"
#include "runtime/sweep.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;
using namespace pktchase::workload;

int
main()
{
    bench::banner("Fig. 16",
                  "Response latency percentiles per defense (paper: "
                  "adaptive +3.1% at p99, full randomization +41.8%)");

    const double rate = 100000.0;
    const std::size_t requests = 20000;
    const auto results =
        runtime::sweep(fig16LatencyGrid(rate, requests));

    // Rows are looked up by cell name so a reordered grid cannot
    // silently mislabel a defense.
    const struct { const char *label, *cell; } rows[] = {
        {"vulnerable baseline", "fig16/baseline"},
        {"fully randomized ring", "fig16/full-random"},
        {"partial random (1k)", "fig16/partial-1k"},
        {"partial random (10k)", "fig16/partial-10k"},
        {"adaptive partitioning", "fig16/adaptive"},
    };

    std::printf("  %-24s %8s %8s %8s %8s %8s  (ms)\n", "defense",
                "p50", "p90", "p99", "p99.9", "p99.99");
    bench::rule(76);
    const double base_p99 =
        bench::byName(results, "fig16/baseline").value("p99");
    for (const auto &row : rows) {
        const auto &r = bench::byName(results, row.cell);
        const double p99 = r.value("p99");
        std::printf("  %-24s %8.3f %8.3f %8.3f %8.3f %8.3f  "
                    "(p99 %+5.1f%%)\n",
                    row.label, r.value("p50"), r.value("p90"), p99,
                    r.value("p99_9"), r.value("p99_99"),
                    100.0 * (p99 / base_p99 - 1.0));
    }
    bench::rule(76);
    std::printf("  open loop at %.0fk req/s, %zu requests per "
                "configuration\n", rate / 1000.0, requests);
    return 0;
}
