/**
 * @file
 * Ablation for Sec. VI-c: larger rx rings as a mitigation. The probe
 * set the attacker must watch grows with the ring, stretching the
 * probe round and cutting per-buffer sampling resolution; combined
 * with occasional reshuffling this raises the attack's noise floor.
 *
 * Each ring size is one campaign cell with its own private Testbed,
 * so the four sizes run concurrently on the runtime's worker threads.
 */

#include <cstdio>

#include "attack/footprint.hh"
#include "bench_util.hh"
#include "runtime/sweep.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

int
main()
{
    bench::banner("Ablation: ring size",
                  "Attack-side cost vs. rx ring size (Sec. VI-c: a "
                  "bigger ring forces a bigger probe set)");

    std::vector<runtime::Scenario> grid;
    for (std::size_t ring : {256u, 512u, 1024u, 4096u}) {
        grid.push_back({"ring/" + std::to_string(ring),
            [ring](runtime::ScenarioContext &) {
                testbed::TestbedConfig cfg;
                cfg.igb.ringSize = ring;
                // Bigger rings need more kernel pages.
                cfg.physBytes = Addr(512) << 20;
                testbed::Testbed tb(cfg);

                const auto active = tb.activeCombos();

                // One full probe round over the combos the attacker
                // must watch (without sequence information).
                attack::FootprintConfig fcfg;
                attack::FootprintScanner scanner(tb.hier(), tb.groups(),
                                                 active, fcfg);
                const auto samples = scanner.scan(
                    tb.eq(),
                    tb.eq().now() + secondsToCycles(0.002));
                Cycles cost = 0;
                if (!samples.empty())
                    cost = samples[0].end - samples[0].start;

                runtime::ScenarioResult r;
                r.set("ring_size", static_cast<double>(ring));
                r.set("active_combos",
                      static_cast<double>(active.size()));
                r.set("probe_cost_cycles", static_cast<double>(cost));
                r.set("rounds_per_sec",
                      cost ? coreFreqHz / static_cast<double>(cost)
                           : 0.0);
                return r;
            }});
    }

    const auto results = runtime::sweep(grid);

    std::printf("  %-10s %14s %16s %16s\n", "ring", "active combos",
                "probe cost (cyc)", "rounds/s max");
    bench::rule(62);
    for (const auto &r : results) {
        std::printf("  %-10.0f %14.0f %16.0f %16.0f\n",
                    r.value("ring_size"), r.value("active_combos"),
                    r.value("probe_cost_cycles"),
                    r.value("rounds_per_sec"));
    }
    bench::rule(62);
    std::printf("  (with 256 page-aligned combos the active set "
                "saturates; the per-buffer\n   sampling rate still "
                "falls as buffers share sets and the ring wraps "
                "slower)\n");
    return 0;
}
