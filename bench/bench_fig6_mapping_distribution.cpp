/**
 * @file
 * Fig. 6: distribution of ring-buffers-per-page-aligned-set over 1000
 * driver initialization instances. Paper: ~35% of page-aligned sets
 * host no buffer; >4 buffers on one set happens in only 5 of 1000
 * instances.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "cache/geometry.hh"
#include "cache/slice_hash.hh"
#include "mem/phys_mem.hh"
#include "sim/stats.hh"

using namespace pktchase;

int
main()
{
    bench::banner("Fig. 6",
                  "Ring buffers per page-aligned set across 1000 driver "
                  "initializations (paper: ~35% of sets empty; >4 "
                  "buffers on a set in ~5/1000 instances)");

    const cache::Geometry geom = cache::Geometry::xeonE52660();
    const auto hash = cache::XorFoldSliceHash::sandyBridgeEP8();
    const unsigned combos = geom.pageAlignedCombos();

    const unsigned instances = 1000;
    const std::size_t ring = 256;

    // freq[k] = average number of sets with exactly k buffers, plus
    // the count of sets (across all instances) hosting more than 4.
    std::vector<double> freq(8, 0.0);
    std::uint64_t sets_with_5plus = 0;

    for (unsigned inst = 0; inst < instances; ++inst) {
        mem::PhysMem phys(Addr(64) << 20, Rng(1000 + inst));
        std::vector<unsigned> counts(combos, 0);
        for (std::size_t b = 0; b < ring; ++b) {
            const Addr page = phys.allocFrame(mem::Owner::Kernel);
            const unsigned rank =
                hash->slice(page) * geom.pageAlignedSetsPerSlice() +
                geom.setIndex(page) /
                    static_cast<unsigned>(blocksPerPage);
            ++counts[rank];
        }
        for (unsigned c : counts) {
            ++freq[std::min<unsigned>(c, 7)];
            sets_with_5plus += c > 4;
        }
    }

    std::printf("  %-24s %14s %10s\n", "buffers mapped to a set",
                "mean sets/inst", "share");
    bench::rule(56);
    for (unsigned k = 0; k < freq.size(); ++k) {
        const double mean = freq[k] / instances;
        if (mean == 0.0 && k > 5)
            continue;
        std::printf("  %-24u %14.1f %9.1f%%\n", k, mean,
                    100.0 * mean / combos);
    }
    bench::rule(56);
    std::printf("  sets hosting >4 buffers: %.1f per 1000 instances of "
                "a set\n  (paper: \"only 5 out of 1000 instances in "
                "which we see more than 4 buffers\")\n",
                1000.0 * static_cast<double>(sets_with_5plus) /
                    (static_cast<double>(instances) * combos));
    return 0;
}
