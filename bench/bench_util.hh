/**
 * @file
 * Shared helpers for the reproduction benches: headers and simple
 * fixed-width table output so every bench prints rows comparable to
 * the paper's tables and figure series.
 */

#ifndef PKTCHASE_BENCH_BENCH_UTIL_HH
#define PKTCHASE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "runtime/scenario.hh"
#include "sim/bench_report.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace pktchase::bench
{

/**
 * Find a campaign cell result by name; fatal() when absent so a
 * renamed or reordered grid fails loudly instead of silently
 * mislabeling table rows.
 */
inline const runtime::ScenarioResult &
byName(const std::vector<runtime::ScenarioResult> &results,
       const std::string &name)
{
    for (const runtime::ScenarioResult &r : results)
        if (r.name == name)
            return r;
    fatal("no campaign result named '" + name + "'");
}

/** Print the standard bench banner. */
inline void
banner(const char *artifact, const char *description)
{
    std::printf("== Packet Chasing reproduction: %s ==\n", artifact);
    std::printf("%s\n\n", description);
}

/** Print a horizontal rule. */
inline void
rule(unsigned width = 72)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/**
 * Print the standard latency-percentile table (the five
 * sim::kPercentileKeys columns plus a p99 delta against
 * @p base_p99) for the named cells, each looked up as
 * "<prefix>/<cell name>" -- the single source of the percentile
 * emission every latency bench shares.
 */
inline void
printLatencyTable(const std::vector<runtime::ScenarioResult> &results,
                  const std::string &prefix,
                  const std::vector<std::string> &cell_names,
                  double base_p99)
{
    std::printf("  %-44s", "cell");
    for (const std::string &key : sim::kPercentileKeys)
        std::printf(" %8s", key.c_str());
    std::printf("\n");
    rule(96);
    for (const std::string &name : cell_names) {
        // Rows are looked up by canonical cell name so a reordered
        // grid cannot silently mislabel a defense.
        const auto &r = byName(results, prefix + "/" + name);
        std::printf("  %-44s", name.c_str());
        for (const std::string &key : sim::kPercentileKeys)
            std::printf(" %8.3f", r.value(key));
        std::printf("  (p99 %+5.1f%%)\n",
                    100.0 * (r.value("p99") / base_p99 - 1.0));
    }
    rule(96);
}

/**
 * The standard percentile row: one metric per sim::kPercentileKeys
 * entry, computed over @p samples. An empty sample yields all-zero
 * metrics rather than the panic sim::percentile() raises, so a cell
 * whose workload produced no latencies (e.g. a zero-request smoke
 * configuration) still emits a well-formed row.
 */
inline sim::BenchReport::Metrics
percentileRow(const std::vector<double> &samples)
{
    static const double kLevels[] = {50, 90, 99, 99.9, 99.99};
    sim::BenchReport::Metrics row;
    for (std::size_t i = 0; i < sim::kPercentileKeys.size(); ++i) {
        row.emplace_back(sim::kPercentileKeys[i],
                         samples.empty()
                             ? 0.0
                             : pktchase::percentile(samples,
                                                    kLevels[i]));
    }
    return row;
}

/** Append every campaign result as a cell of @p report. */
inline void
addCells(sim::BenchReport &report,
         const std::vector<runtime::ScenarioResult> &results)
{
    for (const runtime::ScenarioResult &r : results)
        report.cell(r.name, r.metrics);
}

} // namespace pktchase::bench

#endif // PKTCHASE_BENCH_BENCH_UTIL_HH
