/**
 * @file
 * Shared helpers for the reproduction benches: headers and simple
 * fixed-width table output so every bench prints rows comparable to
 * the paper's tables and figure series.
 */

#ifndef PKTCHASE_BENCH_BENCH_UTIL_HH
#define PKTCHASE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "runtime/scenario.hh"
#include "sim/logging.hh"

namespace pktchase::bench
{

/**
 * Find a campaign cell result by name; fatal() when absent so a
 * renamed or reordered grid fails loudly instead of silently
 * mislabeling table rows.
 */
inline const runtime::ScenarioResult &
byName(const std::vector<runtime::ScenarioResult> &results,
       const std::string &name)
{
    for (const runtime::ScenarioResult &r : results)
        if (r.name == name)
            return r;
    fatal("no campaign result named '" + name + "'");
}

/** Print the standard bench banner. */
inline void
banner(const char *artifact, const char *description)
{
    std::printf("== Packet Chasing reproduction: %s ==\n", artifact);
    std::printf("%s\n\n", description);
}

/** Print a horizontal rule. */
inline void
rule(unsigned width = 72)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace pktchase::bench

#endif // PKTCHASE_BENCH_BENCH_UTIL_HH
