/**
 * @file
 * Shared helpers for the reproduction benches: headers and simple
 * fixed-width table output so every bench prints rows comparable to
 * the paper's tables and figure series.
 */

#ifndef PKTCHASE_BENCH_BENCH_UTIL_HH
#define PKTCHASE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

namespace pktchase::bench
{

/** Print the standard bench banner. */
inline void
banner(const char *artifact, const char *description)
{
    std::printf("== Packet Chasing reproduction: %s ==\n", artifact);
    std::printf("%s\n\n", description);
}

/** Print a horizontal rule. */
inline void
rule(unsigned width = 72)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace pktchase::bench

#endif // PKTCHASE_BENCH_BENCH_UTIL_HH
