/**
 * @file
 * Fig. 7: probing all 256 page-aligned sets across an idle window, a
 * receiving window, and a second idle window. During reception the rx
 * buffer sets light up; sets hosting no buffer stay dark throughout.
 */

#include <cstdio>

#include "attack/footprint.hh"
#include "bench_util.hh"
#include "net/traffic.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

int
main()
{
    bench::banner("Fig. 7",
                  "Page-aligned set activity: idle vs. receiving "
                  "windows (paper: buffer sets show activity only "
                  "while packets arrive)");

    testbed::Testbed tb(testbed::TestbedConfig{});
    std::vector<std::size_t> all;
    for (std::size_t c = 0; c < tb.groups().groups.size(); ++c)
        all.push_back(c);
    attack::FootprintScanner scanner(tb.hier(), tb.groups(), all,
                                     attack::FootprintConfig{});

    const Cycles window = secondsToCycles(0.05);

    const auto idle1 = scanner.scan(tb.eq(), tb.eq().now() + window);

    net::TrafficPump pump(
        tb.eq(), tb.driver(),
        std::make_unique<net::ConstantStream>(
            192, 200000.0,
            static_cast<std::uint64_t>(200000 * 0.05)),
        tb.eq().now() + 1000);
    const auto busy = scanner.scan(tb.eq(), tb.eq().now() + window);

    const auto idle2 = scanner.scan(tb.eq(), tb.eq().now() + window);

    const auto r1 = attack::FootprintScanner::activityRates(idle1);
    const auto rb = attack::FootprintScanner::activityRates(busy);
    const auto r2 = attack::FootprintScanner::activityRates(idle2);

    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return v.empty() ? 0.0 : s / static_cast<double>(v.size());
    };

    std::printf("  %-20s %12s %12s %12s\n", "window", "mean act.",
                "hot sets", "rounds");
    bench::rule(62);
    auto hot = [](const std::vector<double> &v) {
        unsigned n = 0;
        for (double x : v)
            n += x > 0.05;
        return n;
    };
    std::printf("  %-20s %12.4f %12u %12zu\n", "idle (before)",
                mean(r1), hot(r1), idle1.size());
    std::printf("  %-20s %12.4f %12u %12zu\n", "receiving", mean(rb),
                hot(rb), busy.size());
    std::printf("  %-20s %12.4f %12u %12zu\n", "idle (after)",
                mean(r2), hot(r2), idle2.size());
    bench::rule(62);
    std::printf("  ground truth: %zu of 256 page-aligned sets host rx "
                "buffers\n", tb.activeCombos().size());

    // Compact raster: 256 sets x 3 windows.
    std::printf("\n  per-set activity (receiving window), 4 sets per "
                "char, '#' = rate > 5%%:\n  ");
    for (std::size_t c = 0; c < rb.size(); c += 4) {
        double peak = 0;
        for (std::size_t k = c; k < c + 4 && k < rb.size(); ++k)
            peak = std::max(peak, rb[k]);
        std::putchar(peak > 0.05 ? '#' : '.');
    }
    std::printf("\n");
    return 0;
}
