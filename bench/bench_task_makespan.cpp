/**
 * @file
 * Scheduling-granularity bench for the sub-cell task decomposition:
 * times every (cell, task) unit of the two heaviest attacker grids
 * (fig20 fingerprint, fig13 chasing channel) serially, then models
 * the campaign makespan with an LPT (longest-processing-time) greedy
 * schedule at both cell and task granularity.
 *
 * The number that motivated the decomposition is max_task_sec: the
 * longest unit a worker can be handed. At cell granularity the tail
 * cell bounds the parallel campaign (ROADMAP item 1 measured a 1.56 s
 * fig20 cell under a ~2.5 s makespan); at task granularity the bound
 * is one trial.
 *
 * Emits BENCH_tasks.json (via sim::BenchReport): per-cell task
 * counts/serial totals/max task times plus the modelled makespans, so
 * tools/makespan_model.py can replay the schedule and bench_compare
 * can gate tasks_per_sec like the other tracked benches.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "runtime/scenario.hh"
#include "workload/attack_eval.hh"

using namespace pktchase;

namespace
{

/** Wall-clock seconds of one serial run of @p fn. */
template <typename Fn>
double
timeIt(Fn &&fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * LPT greedy makespan: longest unit first, each onto the least
 * loaded worker. Within 4/3 of optimal, and exactly the bound a
 * work-stealing schedule converges toward when units are plentiful.
 */
double
lptMakespan(std::vector<double> times, unsigned workers)
{
    std::sort(times.begin(), times.end(), std::greater<double>());
    std::vector<double> load(workers > 0 ? workers : 1, 0.0);
    for (double t : times)
        *std::min_element(load.begin(), load.end()) += t;
    return *std::max_element(load.begin(), load.end());
}

} // namespace

int
main()
{
    bench::banner("task makespan",
                  "Serial (cell, task) unit timings for the fig20 and "
                  "fig13 grids, with LPT-modelled campaign makespans "
                  "at cell vs. task scheduling granularity");

    constexpr std::uint64_t kCampaignSeed = 1;

    std::vector<runtime::Scenario> grid =
        workload::fig20FingerprintGrid();
    {
        std::vector<runtime::Scenario> fig13 =
            workload::fig13ChannelGrid(600);
        for (runtime::Scenario &sc : fig13)
            grid.push_back(std::move(sc));
    }

    // Serial per-unit timings. The grid index passed through matters:
    // it is the scenario-seed split every task derives from.
    std::vector<double> cell_sec(grid.size(), 0.0);
    std::vector<double> cell_max_task(grid.size(), 0.0);
    std::vector<double> unit_sec;
    const auto bench_t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        for (std::size_t t = 0; t < grid[i].taskCount(); ++t) {
            const double sec = timeIt([&] {
                runtime::runScenarioTask(grid[i], i, kCampaignSeed, t);
            });
            unit_sec.push_back(sec);
            cell_sec[i] += sec;
            cell_max_task[i] = std::max(cell_max_task[i], sec);
        }
    }
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               bench_t0)
                               .count();

    std::printf("  %-44s %6s %10s %13s\n", "cell", "tasks",
                "serial sec", "max task sec");
    bench::rule(80);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        std::printf("  %-44s %6zu %10.3f %13.3f\n",
                    grid[i].name.c_str(), grid[i].taskCount(),
                    cell_sec[i], cell_max_task[i]);
    }
    bench::rule(80);

    const double total_work = std::accumulate(
        cell_sec.begin(), cell_sec.end(), 0.0);
    const double max_task =
        *std::max_element(unit_sec.begin(), unit_sec.end());
    const double max_cell =
        *std::max_element(cell_sec.begin(), cell_sec.end());

    std::printf("  %zu units over %zu cells, %.2f s serial work; "
                "max task %.3f s vs max cell %.3f s\n\n",
                unit_sec.size(), grid.size(), total_work, max_task,
                max_cell);
    std::printf("  %-9s %16s %16s %12s\n", "workers",
                "cell makespan", "task makespan", "ideal");
    bench::rule(60);

    sim::BenchReport report("tasks");
    report.scalar("elapsed_sec", elapsed);
    report.scalar("tasks_per_sec",
                  elapsed > 0.0
                      ? static_cast<double>(unit_sec.size()) / elapsed
                      : 0.0);
    report.scalar("total_work_sec", total_work);
    report.scalar("max_task_sec", max_task);
    report.scalar("max_cell_sec", max_cell);
    for (unsigned w : {1u, 2u, 4u, 8u}) {
        const double cell_ms = lptMakespan(cell_sec, w);
        const double task_ms = lptMakespan(unit_sec, w);
        std::printf("  %-9u %14.3f s %14.3f s %10.3f s\n", w, cell_ms,
                    task_ms, total_work / w);
        char key[48];
        std::snprintf(key, sizeof(key), "makespan_cell_w%u_sec", w);
        report.scalar(key, cell_ms);
        std::snprintf(key, sizeof(key), "makespan_task_w%u_sec", w);
        report.scalar(key, task_ms);
    }
    bench::rule(60);

    for (std::size_t i = 0; i < grid.size(); ++i) {
        sim::BenchReport::Metrics metrics;
        metrics.emplace_back(
            "tasks", static_cast<double>(grid[i].taskCount()));
        metrics.emplace_back("serial_sec", cell_sec[i]);
        metrics.emplace_back("max_task_sec", cell_max_task[i]);
        report.cell(grid[i].name, metrics);
    }
    if (!report.write())
        return 1;
    std::printf("  wrote BENCH_tasks.json\n");
    return 0;
}
