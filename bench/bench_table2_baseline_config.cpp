/**
 * @file
 * Table II: the baseline processor configuration for the defense
 * evaluation. Our substrate is a request-level model rather than a
 * cycle-accurate pipeline, so this bench echoes the configuration the
 * model carries and the derived memory-side parameters it actually
 * uses, making the substitution explicit.
 */

#include <cstdio>

#include "bench_util.hh"
#include "cache/hierarchy.hh"
#include "workload/cpu_config.hh"

using namespace pktchase;

int
main()
{
    bench::banner("Table II",
                  "Baseline processor configuration (carried as "
                  "metadata; memory-side values drive the model)");

    const workload::BaselineCpuConfig cpu;
    std::printf("  %-26s %.1f GHz\n", "Frequency", cpu.frequencyGHz);
    std::printf("  %-26s %u fused uops\n", "Fetch width",
                cpu.fetchWidthFusedUops);
    std::printf("  %-26s %u unfused uops\n", "Issue width",
                cpu.issueWidthUnfusedUops);
    std::printf("  %-26s %u/%u regs\n", "INT/FP Regfile",
                cpu.intRegfile, cpu.fpRegfile);
    std::printf("  %-26s %u, %u, %u entries\n", "RAS size",
                cpu.rasEntries[0], cpu.rasEntries[1], cpu.rasEntries[2]);
    std::printf("  %-26s %u/%u entries\n", "LQ/SQ size", cpu.lqEntries,
                cpu.sqEntries);
    std::printf("  %-26s %u KB, %u way\n", "Icache", cpu.icacheKB,
                cpu.icacheWays);
    std::printf("  %-26s %u KB, %u way\n", "Dcache", cpu.dcacheKB,
                cpu.dcacheWays);
    std::printf("  %-26s %u entries\n", "ROB size", cpu.robEntries);
    std::printf("  %-26s %u entries\n", "IQ", cpu.iqEntries);
    std::printf("  %-26s %u entries\n", "BTB size", cpu.btbEntries);
    std::printf("  %-26s Int ALU(%u), Mult(%u)\n", "Functional",
                cpu.intAlus, cpu.intMults);

    bench::rule();
    const cache::HierarchyConfig hier;
    std::printf("  derived memory-side model parameters:\n");
    std::printf("  %-26s %llu cycles\n", "LLC hit latency",
                static_cast<unsigned long long>(hier.llcHitLatency));
    std::printf("  %-26s %llu cycles\n", "DRAM latency",
                static_cast<unsigned long long>(hier.dramLatency));
    std::printf("  %-26s 8 slices x 2048 sets x 20 ways (20 MB)\n",
                "LLC geometry");
    return 0;
}
