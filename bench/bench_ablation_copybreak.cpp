/**
 * @file
 * Ablation: the copy-break threshold. Frames at or below it are
 * copied and the buffer reused in place; larger frames flip page
 * halves. The flip rate determines how much of the traffic stays
 * visible on the page-aligned sets, which is why the covert channel
 * keeps every frame <= 256 B.
 */

#include <cstdio>

#include "bench_util.hh"
#include "net/traffic.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

int
main()
{
    bench::banner("Ablation: copy-break threshold",
                  "Page-flip rate vs. frame size for the default "
                  "256 B copy-break (flips halve page-aligned-set "
                  "visibility)");

    std::printf("  %-12s %12s %14s %14s\n", "frame size", "flips",
                "copy-break", "flip rate");
    bench::rule(58);

    for (Addr bytes : {64u, 128u, 256u, 320u, 512u, 1024u, 1514u}) {
        testbed::Testbed tb(testbed::TestbedConfig{});
        const std::uint64_t frames = 2000;
        net::TrafficPump pump(
            tb.eq(), tb.driver(),
            std::make_unique<net::ConstantStream>(bytes, 200000.0,
                                                  frames),
            tb.eq().now() + 1000);
        tb.eq().runUntil(tb.eq().now() + secondsToCycles(0.05));

        const auto &stats = tb.driver().stats();
        std::printf("  %-12llu %12llu %14llu %13.1f%%\n",
                    static_cast<unsigned long long>(bytes),
                    static_cast<unsigned long long>(stats.pageFlips),
                    static_cast<unsigned long long>(
                        stats.copyBreakFrames),
                    100.0 * static_cast<double>(stats.pageFlips) /
                        static_cast<double>(stats.framesReceived));
    }
    bench::rule(58);
    std::printf("  covert-channel frame sizes (64..256 B) all stay on "
                "the copy-break path\n");
    return 0;
}
