/**
 * @file
 * Fig. 11: covert channel bandwidth and error rate for binary and
 * ternary encodings across probe rates {7, 14, 28} kHz, swept as a
 * parallel campaign over the fig11 scenario grid (each cell assembles
 * its own testbed and probe-engine spy).
 *
 * Paper: bandwidth is flat across probe rates (line-rate bound,
 * ~2 kbps binary / ~3.1 kbps ternary at 256 packets/symbol on 1 GbE)
 * while error rate falls as the probe rate rises; binary is slightly
 * more robust than ternary.
 */

#include <cstdio>

#include "bench_util.hh"
#include "runtime/sweep.hh"
#include "workload/attack_eval.hh"

using namespace pktchase;

int
main()
{
    bench::banner("Fig. 11",
                  "Covert channel capacity vs. probe rate (paper: flat "
                  "~2-3.1 kbps bandwidth; error falls with probe "
                  "rate; binary < ternary error)");

    const auto results =
        runtime::sweep(workload::fig11CovertGrid(300));

    std::printf("  %-10s %-12s %14s %12s %10s\n", "encoding",
                "probe rate", "bandwidth", "error rate", "received");
    bench::rule(66);
    for (const char *enc : {"binary", "ternary"}) {
        for (int khz : {7, 14, 28}) {
            char name[64];
            std::snprintf(name, sizeof(name), "fig11/%s/%dkhz", enc,
                          khz);
            const runtime::ScenarioResult &r =
                bench::byName(results, name);
            std::printf("  %-10s %9d kHz %11.0f bps %11.2f%% %10.0f\n",
                        enc, khz, r.value("bandwidth_bps"),
                        r.value("error_rate") * 100.0,
                        r.value("received"));
        }
    }
    bench::rule(66);
    std::printf("  one symbol per 256 packets at 1 GbE line rate; "
                "300 symbols per cell\n");
    return 0;
}
