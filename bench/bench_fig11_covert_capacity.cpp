/**
 * @file
 * Fig. 11: covert channel bandwidth and error rate for binary and
 * ternary encodings across probe rates {7, 14, 28} kHz.
 *
 * Paper: bandwidth is flat across probe rates (line-rate bound,
 * ~2 kbps binary / ~3.1 kbps ternary at 256 packets/symbol on 1 GbE)
 * while error rate falls as the probe rate rises; binary is slightly
 * more robust than ternary.
 */

#include <cstdio>

#include "bench_util.hh"
#include "channel/capacity.hh"

using namespace pktchase;
using namespace pktchase::channel;

int
main()
{
    bench::banner("Fig. 11",
                  "Covert channel capacity vs. probe rate (paper: flat "
                  "~2-3.1 kbps bandwidth; error falls with probe "
                  "rate; binary < ternary error)");

    std::printf("  %-10s %-12s %14s %12s %10s\n", "encoding",
                "probe rate", "bandwidth", "error rate", "received");
    bench::rule(66);

    for (Scheme scheme : {Scheme::Binary, Scheme::Ternary}) {
        for (double khz : {7.0, 14.0, 28.0}) {
            testbed::Testbed tb(testbed::TestbedConfig{});
            ChannelRunConfig cfg;
            cfg.scheme = scheme;
            cfg.probeRateHz = khz * 1000.0;
            cfg.nSymbols = 300;
            // Background cache noise from unrelated processes: this is
            // what makes long probe intervals error-prone (Sec. IV-b).
            cfg.cacheNoiseHz = 20000.0;
            cfg.cacheNoiseBatch = 48;
            const ChannelMeasurement m = runCovertChannel(tb, cfg);
            std::printf("  %-10s %9.0f kHz %11.0f bps %11.2f%% %10zu\n",
                        scheme == Scheme::Binary ? "binary" : "ternary",
                        khz, m.bandwidthBps, m.errorRate * 100.0,
                        m.received);
        }
    }
    bench::rule(66);
    std::printf("  one symbol per 256 packets at 1 GbE line rate; "
                "300 symbols per cell\n");
    return 0;
}
