/**
 * @file
 * Fig. 12: exploiting ring-sequence information.
 *
 *  (a)/(b) capacity vs. number of monitored buffers n: one symbol per
 *          256/n packets; bandwidth ~doubles per doubling of n (paper
 *          reaches 24.5 kbps at n=16, with an error jump at 16).
 *  (c)/(d) full packet chasing: one symbol per packet, spy follows the
 *          whole ring; out-of-sync rate flat until the send rate
 *          outruns the probe, error jumping at the highest rate.
 */

#include <cstdio>

#include "bench_util.hh"
#include "channel/capacity.hh"

using namespace pktchase;
using namespace pktchase::channel;

int
main()
{
    bench::banner("Fig. 12",
                  "Covert capacity with ring-sequence information "
                  "(paper: (a) bandwidth doubles with monitored "
                  "buffers to ~24.5 kbps at n=16; (c)/(d) chasing "
                  "out-of-sync flat, error jumps at 640 kbps)");

    std::printf("  (a)/(b) monitored buffers sweep, ternary encoding\n");
    std::printf("  %-10s %14s %12s %10s\n", "buffers", "bandwidth",
                "error rate", "received");
    bench::rule(54);
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
        testbed::Testbed tb(testbed::TestbedConfig{});
        ChannelRunConfig cfg;
        cfg.scheme = Scheme::Ternary;
        cfg.probeRateHz = 28000;
        cfg.monitoredBuffers = n;
        cfg.nSymbols = 64 * n;
        cfg.cacheNoiseHz = 10000.0;
        const ChannelMeasurement m = runCovertChannel(tb, cfg);
        std::printf("  %-10zu %11.1f kbps %11.2f%% %10zu\n", n,
                    m.bandwidthBps / 1000.0, m.errorRate * 100.0,
                    m.received);
    }

    std::printf("\n  (c)/(d) full chasing sweep, ternary, one symbol "
                "per packet\n");
    std::printf("  %-14s %14s %14s\n", "send rate", "out-of-sync",
                "error rate");
    bench::rule(48);
    for (double kbps : {80.0, 160.0, 320.0, 640.0}) {
        testbed::Testbed tb(testbed::TestbedConfig{});
        ChasingChannelConfig cfg;
        cfg.targetBandwidthBps = kbps * 1000.0;
        cfg.nSymbols = 2500;
        cfg.sequenceErrorRate = 0.01; // residual recovery inaccuracy
        const ChannelMeasurement m = runChasingChannel(tb, cfg);
        std::printf("  %9.0f kbps %13.2f%% %13.2f%%\n", kbps,
                    m.outOfSyncRate * 100.0, m.errorRate * 100.0);
    }
    bench::rule(48);
    return 0;
}
