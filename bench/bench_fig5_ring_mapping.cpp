/**
 * @file
 * Fig. 5: how one driver instance's 256 ring buffers map onto the 256
 * page-aligned cache sets -- a non-uniform scatter (some sets host 5
 * buffers, some none).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

int
main()
{
    bench::banner("Fig. 5",
                  "Ring buffers per page-aligned cache set, one driver "
                  "instance (paper: up to 5 on one set, none on others)");

    testbed::Testbed tb(testbed::TestbedConfig{});
    std::vector<unsigned> counts(
        tb.config().llc.geom.pageAlignedCombos(), 0);
    for (std::size_t c : tb.ringComboSequence())
        ++counts[c];

    unsigned max_count = 0;
    for (unsigned c : counts)
        max_count = std::max(max_count, c);

    // ASCII rendition of the figure: one column per 4 sets.
    std::printf("  buffers\n");
    for (unsigned level = max_count; level >= 1; --level) {
        std::printf("  %5u | ", level);
        for (std::size_t c = 0; c < counts.size(); c += 4) {
            unsigned peak = 0;
            for (std::size_t k = c; k < c + 4 && k < counts.size(); ++k)
                peak = std::max(peak, counts[k]);
            std::putchar(peak >= level ? '#' : ' ');
        }
        std::putchar('\n');
    }
    std::printf("        +-%.*s\n", 64,
                "----------------------------------------------------"
                "------------");
    std::printf("          cache set number 0..255 (4 sets/column)\n\n");

    std::vector<unsigned> freq(max_count + 1, 0);
    for (unsigned c : counts)
        ++freq[c];
    std::printf("  %-26s %s\n", "buffers mapped to a set", "sets");
    bench::rule(40);
    for (unsigned k = 0; k <= max_count; ++k)
        std::printf("  %-26u %u\n", k, freq[k]);
    std::printf("\n  max buffers on one set: %u (paper's example: 5)\n",
                max_count);
    return 0;
}
