/**
 * @file
 * Ablation: does the complexity of the slice hash matter to the
 * attacker? The eviction-set strategy groups pages by observed
 * conflicts, never inverting the hash, so footprint recovery should be
 * equally effective whether the LLC uses the XOR-fold "complex
 * indexing" or a trivial identity mapping. This supports the paper's
 * premise that unpublished hashes are not a defense.
 */

#include <cstdio>
#include <set>

#include "attack/footprint.hh"
#include "bench_util.hh"
#include "cache/slice_hash.hh"
#include "net/traffic.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

namespace
{

double
footprintRecall(std::unique_ptr<cache::SliceHash> hash,
                const char *name)
{
    // Build a testbed manually so we can swap the hash.
    testbed::TestbedConfig cfg;
    cfg.seed = 5;
    mem::PhysMem phys(cfg.physBytes, Rng(cfg.seed));
    cache::Hierarchy hier(cfg.llc, cfg.hier, std::move(hash));
    nic::IgbDriver driver(cfg.igb, phys, hier);
    mem::AddressSpace space(phys, mem::Owner::Attacker);
    attack::EvictionSetBuilder builder(hier, space, cfg.builder);
    const attack::ComboGroups groups = builder.buildWithOracle();

    EventQueue eq;
    std::vector<std::size_t> all;
    for (std::size_t c = 0; c < groups.groups.size(); ++c)
        all.push_back(c);
    attack::FootprintScanner scanner(hier, groups, all,
                                     attack::FootprintConfig{});
    net::TrafficPump pump(
        eq, driver,
        std::make_unique<net::ConstantStream>(192, 200000.0, 0),
        eq.now() + 1000);
    const auto samples =
        scanner.scan(eq, eq.now() + secondsToCycles(0.05));
    const auto found = attack::FootprintScanner::candidateBufferSets(
        samples, 0.05, 0.95);

    // Ground truth: combos hosting buffers under this hash.
    std::set<std::size_t> truth;
    const auto &geom = cfg.llc.geom;
    for (std::size_t i = 0; i < driver.ring().size(); ++i) {
        const Addr page = driver.pageBase(i);
        truth.insert(hier.llc().sliceHash().slice(page) *
                         geom.pageAlignedSetsPerSlice() +
                     geom.setIndex(page) / blocksPerPage);
    }
    unsigned hits = 0;
    for (std::size_t c : found)
        hits += truth.count(c);
    const double recall =
        truth.empty() ? 0.0
                      : static_cast<double>(hits) /
                static_cast<double>(truth.size());
    std::printf("  %-28s %10.1f%% %14zu %12zu\n", name, recall * 100.0,
                found.size(), truth.size());
    return recall;
}

} // namespace

int
main()
{
    bench::banner("Ablation: slice hash",
                  "Footprint recall under different slice-selection "
                  "hashes (expected: complex indexing does not impede "
                  "the attack)");

    std::printf("  %-28s %11s %14s %12s\n", "hash", "recall",
                "combos found", "ground truth");
    bench::rule(70);
    footprintRecall(cache::XorFoldSliceHash::sandyBridgeEP8(),
                    "xor-fold (Sandy Bridge-EP)");
    footprintRecall(std::make_unique<cache::IdentitySliceHash>(8, 17),
                    "identity (bits 17..19)");
    bench::rule(70);
    return 0;
}
