/**
 * @file
 * Google-benchmark microbenchmarks of the simulator primitives, to
 * document the substrate's own throughput (host ops/sec, not simulated
 * performance).
 */

#include <benchmark/benchmark.h>

#include "attack/prime_probe.hh"
#include "net/traffic.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

namespace
{

testbed::Testbed &
sharedBed()
{
    static testbed::Testbed tb(testbed::TestbedConfig{});
    return tb;
}

void
BM_LlcCpuRead(benchmark::State &state)
{
    auto &tb = sharedBed();
    Rng rng(1);
    Cycles t = 0;
    for (auto _ : state) {
        const Addr a = rng.nextBounded(Addr(128) << 20) & ~Addr(63);
        benchmark::DoNotOptimize(tb.hier().llc().cpuRead(a, t++));
    }
}
BENCHMARK(BM_LlcCpuRead);

void
BM_TimedRead(benchmark::State &state)
{
    auto &tb = sharedBed();
    Rng rng(2);
    Cycles t = 0;
    for (auto _ : state) {
        const Addr a = rng.nextBounded(Addr(128) << 20) & ~Addr(63);
        t += tb.hier().timedRead(a, t);
    }
}
BENCHMARK(BM_TimedRead);

void
BM_DmaWriteBlock(benchmark::State &state)
{
    auto &tb = sharedBed();
    Rng rng(3);
    Cycles t = 0;
    for (auto _ : state) {
        const Addr a = rng.nextBounded(Addr(128) << 20) & ~Addr(63);
        tb.hier().dmaWrite(a, 64, t++);
    }
}
BENCHMARK(BM_DmaWriteBlock);

void
BM_DriverReceive(benchmark::State &state)
{
    auto &tb = sharedBed();
    nic::Frame f;
    f.bytes = static_cast<Addr>(state.range(0));
    Cycles t = 0;
    for (auto _ : state) {
        tb.driver().receive(f, t);
        t += 10000;
    }
}
BENCHMARK(BM_DriverReceive)->Arg(64)->Arg(256)->Arg(1514);

void
BM_ProbeRound(benchmark::State &state)
{
    auto &tb = sharedBed();
    std::vector<attack::EvictionSet> sets;
    for (std::size_t c = 0; c < static_cast<std::size_t>(state.range(0));
         ++c) {
        sets.push_back(tb.groups().evictionSetFor(
            c, tb.config().llc.geom.ways));
    }
    attack::PrimeProbeMonitor mon(tb.hier(), std::move(sets), 130);
    Cycles t = 0;
    mon.primeAll(t);
    for (auto _ : state) {
        const attack::ProbeSample s = mon.probeAll(t);
        t = s.end + 1;
        benchmark::DoNotOptimize(s.active.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProbeRound)->Arg(32)->Arg(256);

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Cycles>(i), [&sink] { ++sink; });
        eq.runUntil(1000);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

} // namespace

BENCHMARK_MAIN();
