/**
 * @file
 * Detection-subsystem bench: the figD1 detector-quality grid (ROC AUC
 * and alarm rates per attacker probe rate and queue count, plus the
 * benign-server false-positive rates) and the figD2 gating grid
 * (detector-gated vs. always-on defense, benign latency and
 * under-attack fingerprint accuracy), as one parallel campaign.
 *
 * The headline the tables demonstrate: the gated defense
 * ring.gated:cadence:partial.1000 costs nothing when benign (p99
 * identical to no defense -- the gate never arms, zero
 * reallocations) while holding fingerprint accuracy under attack at
 * the always-on ring.partial:1000 level.
 *
 * Emits BENCH_detection.json (via sim::BenchReport). Threads default
 * to the machine; set PKTCHASE_THREADS to pin.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "runtime/sweep.hh"
#include "workload/detect_eval.hh"

using namespace pktchase;
using namespace pktchase::workload;

int
main()
{
    bench::banner("Detection",
                  "Detector ROC and the detector-gated defense: pay "
                  "for the defense only while under attack");

    const auto t0 = std::chrono::steady_clock::now();
    auto grid = figD1DetectionGrid();
    const auto gating = figD2GatingGrid(100000.0, 8000);
    grid.insert(grid.end(), gating.begin(), gating.end());
    const auto results = runtime::sweep(grid);
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    std::printf("  figD1: detector quality (default thresholds)\n");
    std::printf("  %-36s %8s %8s %8s\n", "cell", "AUC", "TPR", "FPR");
    bench::rule(66);
    for (const auto &r : results) {
        if (r.name.rfind("figD1/", 0) != 0 || !r.has("auc"))
            continue;
        std::printf("  %-36s %8.3f %8.3f %8.3f\n",
                    r.name.c_str() + 6, r.value("auc"),
                    r.value("tpr"), r.value("fpr"));
    }
    bench::rule(66);
    std::printf("  benign-server false positives: ");
    for (const auto &r : results) {
        if (r.name.rfind("figD1/", 0) == 0 && r.has("score_peak"))
            std::printf("%s fpr=%.4f  ", r.name.c_str() + 6,
                        r.value("fpr"));
    }
    std::printf("\n\n  figD2: benign open-loop latency (ms)\n");
    std::vector<std::string> cells;
    for (const defense::Cell &cell : figD2Cells())
        cells.push_back(cell.name());
    const double base_p99 = bench::byName(
        results, "figD2/benign/ring.none+cache.ddio").value("p99");
    bench::printLatencyTable(results, "figD2/benign", cells, base_p99);

    std::printf("\n  figD2: fingerprint accuracy under attack\n");
    std::printf("  %-48s %9s %9s %12s\n", "cell", "accuracy",
                "reallocs", "arm events");
    bench::rule(84);
    for (const std::string &name : cells) {
        const auto &r = bench::byName(results, "figD2/attack/" + name);
        std::printf("  %-48s %8.1f%% %9.0f %12.0f\n", name.c_str(),
                    r.value("accuracy") * 100.0,
                    r.value("buffers_reallocated"),
                    r.value("arm_transitions"));
    }
    bench::rule(84);
    std::printf("  %zu cells in %.2f s host time\n", results.size(),
                elapsed);

    sim::BenchReport report("detection");
    report.scalar("elapsed_sec", elapsed);
    bench::addCells(report, results);
    if (!report.write())
        return 1;
    std::printf("  wrote BENCH_detection.json\n");
    return 0;
}
