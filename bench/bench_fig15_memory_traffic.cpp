/**
 * @file
 * Fig. 15: normalized memory read/write traffic and LLC miss rate for
 * {file copy, TCP recv, Nginx} under {no DDIO, DDIO, adaptive
 * partitioning}. Paper: DDIO and the defense both cut memory traffic
 * versus no-DDIO, with the defense within ~2% of DDIO.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;
using namespace pktchase::workload;

namespace
{

struct Row
{
    double rd = 0, wr = 0, miss = 0;
};

Row
rowFor(const std::string &cache_spec, const char *workload)
{
    Row r;
    if (std::string(workload) == "file-copy") {
        const IoMetrics m = fileCopyMetrics(cache_spec, Addr(32) << 20);
        r = {static_cast<double>(m.memReadBlocks),
             static_cast<double>(m.memWriteBlocks), m.llcMissRate};
    } else if (std::string(workload) == "tcp-recv") {
        const IoMetrics m = tcpRecvMetrics(cache_spec, 20000);
        r = {static_cast<double>(m.memReadBlocks),
             static_cast<double>(m.memWriteBlocks), m.llcMissRate};
    } else {
        const ServerMetrics m = nginxMetrics(cache_spec, 3000);
        r = {static_cast<double>(m.memReadBlocks),
             static_cast<double>(m.memWriteBlocks), m.llcMissRate};
    }
    return r;
}

} // namespace

int
main()
{
    bench::banner("Fig. 15",
                  "Memory traffic and LLC miss rate, normalized to the "
                  "no-DDIO baseline (paper: DDIO and adaptive both "
                  "reduce traffic; defense within ~2% of DDIO)");

    const char *workloads[] = {"file-copy", "tcp-recv", "nginx"};
    const char *specs[] = {"cache.no-ddio", "cache.ddio",
                           "cache.adaptive"};

    for (const char *wl : workloads) {
        std::printf("  -- %s --\n", wl);
        std::printf("  %-24s %12s %12s %12s\n", "cache policy",
                    "norm. reads", "norm. writes", "miss rate");
        bench::rule(66);
        Row base;
        for (const char *spec : specs) {
            const Row r = rowFor(spec, wl);
            if (std::string(spec) == "cache.no-ddio")
                base = r;
            std::printf("  %-24s %12.3f %12.3f %12.4f\n", spec,
                        base.rd > 0 ? r.rd / base.rd : 0.0,
                        base.wr > 0 ? r.wr / base.wr : 0.0, r.miss);
        }
        std::printf("\n");
    }
    return 0;
}
