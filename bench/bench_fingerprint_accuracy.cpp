/**
 * @file
 * The fig20 fingerprint grid as a performance bench: closed-world
 * accuracy per defense cell and NIC queue count (paper Sec. V: 89.7%
 * with DDIO, 86.5% without, and ~chance once a real defense is on),
 * plus the probe-engine throughput that produced it.
 *
 * Emits BENCH_fingerprint.json (via sim::BenchReport) -- accuracy and
 * simulated probe rounds per cell plus host-side probe rounds/sec --
 * so the attacker pipeline's performance trajectory is tracked across
 * commits.
 *
 * Threads default to the machine; set PKTCHASE_THREADS to pin.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "runtime/sweep.hh"
#include "workload/attack_eval.hh"

using namespace pktchase;

int
main()
{
    bench::banner("Fig. 20",
                  "Closed-world fingerprint accuracy x defense cell x "
                  "queue count (paper baseline: 89.7% DDIO / 86.5% "
                  "no-DDIO; defenses push toward 20% chance)");

    // Wrap each cell's task body to record wall time. The side
    // matrix has one slot per (cell, task), each written once by
    // whichever worker runs that unit, so the ScenarioResults stay
    // deterministic while the bench still gets host timings; a cell's
    // wall time is the sum of its tasks' (the serialized work, which
    // is what rounds/sec should be measured against).
    std::vector<runtime::Scenario> grid =
        workload::fig20FingerprintGrid();
    std::vector<std::vector<double>> task_wall(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        task_wall[i].assign(grid[i].taskCount(), 0.0);
        auto inner = grid[i].runTask;
        grid[i].runTask = [inner, i,
                           &task_wall](runtime::TaskContext &t) {
            const auto t0 = std::chrono::steady_clock::now();
            runtime::ScenarioResult r = inner(t);
            task_wall[i][t.task] = std::chrono::duration<double>(
                                       std::chrono::steady_clock::now() -
                                       t0)
                                       .count();
            return r;
        };
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runtime::sweep(grid);
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    std::printf("  %-44s %9s %13s %12s\n", "cell", "accuracy",
                "probe rounds", "rounds/sec");
    bench::rule(82);
    std::vector<double> wall(results.size(), 0.0);
    for (std::size_t i = 0; i < task_wall.size(); ++i)
        for (double w : task_wall[i])
            wall[i] += w;
    double total_rounds = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const runtime::ScenarioResult &r = results[i];
        const double rounds = r.value("probe_rounds");
        total_rounds += rounds;
        std::printf("  %-44s %8.1f%% %13.0f %12.0f\n", r.name.c_str(),
                    r.value("accuracy") * 100.0, rounds,
                    wall[i] > 0.0 ? rounds / wall[i] : 0.0);
    }
    bench::rule(82);
    std::printf("  %zu cells in %.2f s host time; %.0f probe "
                "rounds/sec aggregate\n",
                results.size(), elapsed,
                elapsed > 0.0 ? total_rounds / elapsed : 0.0);

    sim::BenchReport report("fingerprint");
    report.scalar("elapsed_sec", elapsed);
    report.scalar("probe_rounds_per_sec",
                  elapsed > 0.0 ? total_rounds / elapsed : 0.0);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const runtime::ScenarioResult &r = results[i];
        sim::BenchReport::Metrics metrics = r.metrics;
        metrics.emplace_back("probe_rounds_per_sec",
                             wall[i] > 0.0
                                 ? r.value("probe_rounds") / wall[i]
                                 : 0.0);
        report.cell(r.name, metrics);
    }
    if (!report.write())
        return 1;
    std::printf("  wrote BENCH_fingerprint.json\n");
    return 0;
}
