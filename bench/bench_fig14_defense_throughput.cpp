/**
 * @file
 * Fig. 14: Nginx throughput under adaptive partitioning vs. the DDIO
 * baseline, across LLC sizes {20, 11, 8} MB. Paper: <2% average loss,
 * worst case 2.7% at 20 MB.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;
using namespace pktchase::workload;

int
main()
{
    bench::banner("Fig. 14",
                  "Nginx throughput: adaptive partitioning vs. DDIO "
                  "(paper: <2% average loss, max 2.7% at 20 MB)");

    struct Cell
    {
        const char *name;
        cache::Geometry geom;
    };
    const Cell cells[] = {
        {"LLC = 20 MB", cache::Geometry::xeonE52660()},
        {"LLC = 11 MB", cache::Geometry::llc11MB()},
        {"LLC = 8 MB", cache::Geometry::llc8MB()},
    };

    std::printf("  %-14s %16s %16s %10s\n", "geometry",
                "DDIO (kreq/s)", "adaptive (kreq/s)", "loss");
    bench::rule(62);

    double loss_sum = 0.0;
    for (const Cell &cell : cells) {
        const std::size_t requests = 4000;
        const ServerMetrics ddio =
            nginxThroughput(CacheMode::Ddio, cell.geom, requests);
        const ServerMetrics adapt = nginxThroughput(
            CacheMode::AdaptivePartition, cell.geom, requests);
        const double loss = 100.0 *
            (1.0 - adapt.kiloRequestsPerSec / ddio.kiloRequestsPerSec);
        loss_sum += loss;
        std::printf("  %-14s %16.1f %16.1f %9.2f%%\n", cell.name,
                    ddio.kiloRequestsPerSec, adapt.kiloRequestsPerSec,
                    loss);
    }
    bench::rule(62);
    std::printf("  average loss: %.2f%% (paper: <2%%)\n",
                loss_sum / 3.0);
    return 0;
}
