/**
 * @file
 * Fig. 14: Nginx throughput under adaptive partitioning vs. the DDIO
 * baseline, across LLC sizes {20, 11, 8} MB. Paper: <2% average loss,
 * worst case 2.7% at 20 MB.
 *
 * Runs as a parallel campaign: all six (LLC size x cache mode) cells
 * execute concurrently on the runtime's worker threads (>= 4 by
 * default; override with PKTCHASE_THREADS) and merge deterministically
 * -- the table below is bit-identical at any thread count.
 */

#include <cstdio>

#include "bench_util.hh"
#include "runtime/sweep.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;
using namespace pktchase::workload;

int
main()
{
    bench::banner("Fig. 14",
                  "Nginx throughput: adaptive partitioning vs. DDIO "
                  "(paper: <2% average loss, max 2.7% at 20 MB)");

    const std::size_t requests = 4000;
    const auto results =
        runtime::sweep(fig14ThroughputGrid(requests));

    std::printf("  %-14s %16s %16s %10s\n", "geometry",
                "DDIO (kreq/s)", "adaptive (kreq/s)", "loss");
    bench::rule(62);

    // Cells are identified by name, not grid position, so the table
    // stays correct if the grid builder ever reorders.
    const struct { const char *label, *slug; } geoms[] = {
        {"LLC = 20 MB", "llc20"},
        {"LLC = 11 MB", "llc11"},
        {"LLC = 8 MB", "llc8"},
    };
    double loss_sum = 0.0;
    for (const auto &g : geoms) {
        const double ddio = bench::byName(
            results, std::string("fig14/") + g.slug +
                "/ring.none+cache.ddio").value("kreq_per_sec");
        const double adapt = bench::byName(
            results, std::string("fig14/") + g.slug +
                "/ring.none+cache.adaptive").value("kreq_per_sec");
        const double loss = 100.0 * (1.0 - adapt / ddio);
        loss_sum += loss;
        std::printf("  %-14s %16.1f %16.1f %9.2f%%\n", g.label,
                    ddio, adapt, loss);
    }
    bench::rule(62);
    std::printf("  average loss: %.2f%% (paper: <2%%)\n",
                loss_sum / 3.0);

    sim::BenchReport report("fig14");
    report.scalar("requests", static_cast<double>(requests));
    report.scalar("average_loss_pct", loss_sum / 3.0);
    bench::addCells(report, results);
    if (!report.write())
        return 1;
    std::printf("  wrote BENCH_fig14.json\n");
    return 0;
}
