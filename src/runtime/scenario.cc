#include "scenario.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace pktchase::runtime
{

std::uint64_t
splitSeed(std::uint64_t seed, std::uint64_t salt)
{
    // The (salt+1)-th output of a splitmix64 stream seeded with
    // `seed`: advance the Weyl sequence salt+1 steps in O(1), then
    // apply the splitmix64 finalizer. Matches Rng's seed expansion,
    // so scenario streams are as independent as Rng::split() streams.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

double
ScenarioResult::value(const std::string &key) const
{
    for (const auto &kv : metrics)
        if (kv.first == key)
            return kv.second;
    fatal("ScenarioResult '" + name + "' has no metric '" + key + "'");
}

std::uint64_t
ScenarioResult::counter(const std::string &key) const
{
    for (const auto &kv : counters)
        if (kv.first == key)
            return kv.second;
    fatal("ScenarioResult '" + name + "' has no counter '" + key + "'");
}

bool
ScenarioResult::has(const std::string &key) const
{
    for (const auto &kv : metrics)
        if (kv.first == key)
            return true;
    return false;
}

const std::vector<double> &
ScenarioResult::seriesOf(const std::string &key) const
{
    for (const auto &kv : series)
        if (kv.first == key)
            return kv.second;
    fatal("ScenarioResult '" + name + "' has no series '" + key + "'");
}

void
validateScenario(const Scenario &s)
{
    if (s.run && s.runTask)
        fatal("Scenario '" + s.name +
              "' sets both run and runTask (ambiguous)");
    if (!s.run && !s.runTask)
        fatal("Scenario '" + s.name + "' has no run function");
    if (s.runTask && !s.fold)
        fatal("Scenario '" + s.name + "' decomposes without a fold");
    if (s.tasks == 0)
        fatal("Scenario '" + s.name + "' reports zero tasks");
    if (s.tasks > 1 && !s.runTask)
        fatal("Scenario '" + s.name +
              "' reports tasks > 1 without runTask");
}

ScenarioResult
runScenarioTask(const Scenario &s, std::size_t index,
                std::uint64_t campaignSeed, std::size_t task)
{
    if (!s.decomposed()) {
        if (task != 0)
            fatal("Scenario '" + s.name +
                  "': task index on a monolithic cell");
        ScenarioContext ctx(index, campaignSeed);
        return s.run(ctx);
    }
    if (task >= s.tasks)
        fatal("Scenario '" + s.name + "': task index out of range");
    TaskContext ctx(index, campaignSeed, task, s.tasks);
    return s.runTask(ctx);
}

namespace
{

/**
 * Element-wise sum of the parts' counter vectors (all empty, or all
 * the full enum-ordered shape obs::StatSnapshot::toCounters emits).
 */
std::vector<std::pair<std::string, std::uint64_t>>
sumPartCounters(const std::vector<ScenarioResult> &parts)
{
    std::vector<std::pair<std::string, std::uint64_t>> total;
    for (const ScenarioResult &p : parts) {
        if (p.counters.empty())
            continue;
        if (total.empty()) {
            total = p.counters;
            continue;
        }
        if (p.counters.size() != total.size())
            fatal("foldScenarioParts: task counter shapes differ");
        for (std::size_t i = 0; i < total.size(); ++i)
            total[i].second += p.counters[i].second;
    }
    return total;
}

} // namespace

ScenarioResult
foldScenarioParts(const Scenario &s, std::size_t index,
                  std::vector<ScenarioResult> &&parts)
{
    if (parts.size() != s.taskCount())
        fatal("foldScenarioParts: '" + s.name + "' expected " +
              std::to_string(s.taskCount()) + " parts, got " +
              std::to_string(parts.size()));
    ScenarioResult out;
    if (!s.decomposed()) {
        out = std::move(parts[0]);
    } else {
        out = s.fold(parts);
        out.counters = sumPartCounters(parts);
        // Element-wise profile sum, mirroring the counter contract:
        // a decomposed cell's profile is exactly its tasks' profiles.
        for (const ScenarioResult &p : parts)
            obs::mergeProfileInto(out.profile, p.profile);
    }
    out.index = index;
    if (out.name.empty())
        out.name = s.name;
    return out;
}

ScenarioResult
runScenarioMonolithic(const Scenario &s, std::size_t index,
                      std::uint64_t campaignSeed)
{
    validateScenario(s);
    std::vector<ScenarioResult> parts;
    parts.reserve(s.taskCount());
    for (std::size_t t = 0; t < s.taskCount(); ++t)
        parts.push_back(runScenarioTask(s, index, campaignSeed, t));
    return foldScenarioParts(s, index, std::move(parts));
}

std::string
formatReport(const std::vector<ScenarioResult> &results)
{
    std::string out;
    char buf[64];
    for (const ScenarioResult &r : results) {
        std::snprintf(buf, sizeof(buf), "[%zu] ", r.index);
        out += buf;
        out += r.name;
        for (const auto &kv : r.metrics) {
            // Hexfloat round-trips every bit of the double, so the
            // report differs iff some merged metric differs.
            std::snprintf(buf, sizeof(buf), " %s=%a", kv.first.c_str(),
                          kv.second);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

} // namespace pktchase::runtime
