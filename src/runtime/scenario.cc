#include "scenario.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace pktchase::runtime
{

std::uint64_t
splitSeed(std::uint64_t seed, std::uint64_t salt)
{
    // The (salt+1)-th output of a splitmix64 stream seeded with
    // `seed`: advance the Weyl sequence salt+1 steps in O(1), then
    // apply the splitmix64 finalizer. Matches Rng's seed expansion,
    // so scenario streams are as independent as Rng::split() streams.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

double
ScenarioResult::value(const std::string &key) const
{
    for (const auto &kv : metrics)
        if (kv.first == key)
            return kv.second;
    fatal("ScenarioResult '" + name + "' has no metric '" + key + "'");
}

std::uint64_t
ScenarioResult::counter(const std::string &key) const
{
    for (const auto &kv : counters)
        if (kv.first == key)
            return kv.second;
    fatal("ScenarioResult '" + name + "' has no counter '" + key + "'");
}

bool
ScenarioResult::has(const std::string &key) const
{
    for (const auto &kv : metrics)
        if (kv.first == key)
            return true;
    return false;
}

std::string
formatReport(const std::vector<ScenarioResult> &results)
{
    std::string out;
    char buf[64];
    for (const ScenarioResult &r : results) {
        std::snprintf(buf, sizeof(buf), "[%zu] ", r.index);
        out += buf;
        out += r.name;
        for (const auto &kv : r.metrics) {
            // Hexfloat round-trips every bit of the double, so the
            // report differs iff some merged metric differs.
            std::snprintf(buf, sizeof(buf), " %s=%a", kv.first.c_str(),
                          kv.second);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

} // namespace pktchase::runtime
