/**
 * @file
 * The Scenario abstraction: one independently runnable experiment cell.
 *
 * The paper's evaluation is a grid of (ring size x cache mode x ring
 * defense x workload x seed) cells, each of which assembles its own
 * Testbed and reports a handful of scalar metrics. A Scenario names one
 * such cell and owns everything it needs to run in isolation: the run
 * function builds a private Testbed, draws randomness only from the
 * ScenarioContext's Rng stream (split off the campaign seed with
 * splitmix64), and returns its metrics as a private stats shard
 * (ScenarioResult) -- no shared mutable state, which is what lets a
 * Campaign run cells on any number of threads with bit-identical
 * merged output.
 */

#ifndef PKTCHASE_RUNTIME_SCENARIO_HH
#define PKTCHASE_RUNTIME_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/rng.hh"

namespace pktchase::runtime
{

/**
 * Derive an independent 64-bit seed from @p seed and @p salt via the
 * splitmix64 output function. Used both for per-scenario streams
 * (salt = grid index) and for axis-pinned streams a grid builder wants
 * to share across cells that must see the same workload randomness
 * (e.g. Fig. 14 compares DDIO vs. adaptive under identical load).
 */
std::uint64_t splitSeed(std::uint64_t seed, std::uint64_t salt);

/**
 * Tag @p salt as an axis salt. Scenario indices occupy the low salt
 * space (ScenarioContext uses salt = grid index), so grid builders
 * that pin a stream to an axis must keep their salts disjoint from
 * every possible index -- this sets the top bit, which no realistic
 * grid size reaches.
 */
constexpr std::uint64_t
axisSalt(std::uint64_t salt)
{
    return salt | (std::uint64_t(1) << 63);
}

/**
 * One scenario's private stats shard: named scalar metrics in
 * insertion order, tagged with the cell's grid index and name.
 */
struct ScenarioResult
{
    std::size_t index = 0;     ///< Position in the campaign grid.
    std::string name;          ///< Cell name, e.g. "fig14/llc20/ddio".
    std::vector<std::pair<std::string, double>> metrics;

    /**
     * Simulator-side hot-path counters (obs::Stat) accumulated while
     * this cell ran, filled in by Campaign as the snapshot delta around
     * the cell's run function. Deliberately separate from @ref metrics
     * so formatReport() -- and every golden trace diffed against it --
     * is untouched by instrumentation. Counter values advance only with
     * simulated work, so they obey the same threads=N == threads=1
     * merge contract as the metrics.
     */
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /** Look up a hot-path counter by name; fatal() when absent. */
    std::uint64_t counter(const std::string &key) const;

    /** Append one named metric. */
    void
    set(const std::string &key, double value)
    {
        metrics.emplace_back(key, value);
    }

    /** Look up a metric by name; fatal() when absent. */
    double value(const std::string &key) const;

    /** Whether a metric named @p key exists. */
    bool has(const std::string &key) const;
};

/**
 * Per-run context handed to a scenario's run function. The Rng is the
 * cell's private stream: its seed depends only on the campaign seed
 * and the cell's grid index, never on which worker runs the cell.
 */
struct ScenarioContext
{
    std::size_t index = 0;          ///< Grid index of this cell.
    std::uint64_t campaignSeed = 0; ///< The whole campaign's seed.
    std::uint64_t scenarioSeed = 0; ///< splitSeed(campaignSeed, index).
    Rng rng;                        ///< Seeded with scenarioSeed.

    ScenarioContext(std::size_t idx, std::uint64_t campaign_seed)
        : index(idx), campaignSeed(campaign_seed),
          scenarioSeed(splitSeed(campaign_seed, idx)),
          rng(scenarioSeed)
    {
    }
};

/** A named, independently runnable experiment cell. */
struct Scenario
{
    std::string name;
    std::function<ScenarioResult(ScenarioContext &)> run;
};

/**
 * Canonical byte-exact serialization of a result set (hexfloat
 * metrics, index order). Two runs merged identically produce the same
 * string; the determinism tests and `campaign` example diff this.
 */
std::string formatReport(const std::vector<ScenarioResult> &results);

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_SCENARIO_HH
