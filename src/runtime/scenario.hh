/**
 * @file
 * The Scenario abstraction: one independently runnable experiment cell.
 *
 * The paper's evaluation is a grid of (ring size x cache mode x ring
 * defense x workload x seed) cells, each of which assembles its own
 * Testbed and reports a handful of scalar metrics. A Scenario names one
 * such cell and owns everything it needs to run in isolation: the run
 * function builds a private Testbed, draws randomness only from the
 * ScenarioContext's Rng stream (split off the campaign seed with
 * splitmix64), and returns its metrics as a private stats shard
 * (ScenarioResult) -- no shared mutable state, which is what lets a
 * Campaign run cells on any number of threads with bit-identical
 * merged output.
 *
 * Sub-cell decomposition (opt-in): a cell whose work is a loop of
 * independent units -- fingerprint trials, covert-channel symbol
 * chunks, a matched attack/benign twin pair -- may expose that
 * structure instead of a monolithic run function. It reports
 * Scenario::tasks = K, runs task t under the derived seed
 * splitSeed(scenarioSeed, t), and provides a pure fold that
 * reassembles the K task results (in task-index order) into the
 * cell's single ScenarioResult. The contract:
 *
 *  - task t's randomness derives only from (campaign seed, grid
 *    index, t) -- never from the worker that ran it or from sibling
 *    tasks, so tasks can run on any thread in any order;
 *  - fold is a pure function of the ordered task results (no I/O, no
 *    simulation, no Rng), so folding on the driver thread after an
 *    arbitrary completion order reproduces the serial loop exactly;
 *  - therefore threads=N == threads=1 == runScenarioMonolithic()
 *    bit-identically, task stealing included -- the same contract
 *    cells already obey, pushed one level down.
 *
 * The default (tasks = 1, no runTask) changes nothing: a monolithic
 * run function is scheduled as a single task.
 */

#ifndef PKTCHASE_RUNTIME_SCENARIO_HH
#define PKTCHASE_RUNTIME_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/profile.hh"
#include "sim/rng.hh"

namespace pktchase::runtime
{

/**
 * Derive an independent 64-bit seed from @p seed and @p salt via the
 * splitmix64 output function. Used both for per-scenario streams
 * (salt = grid index) and for axis-pinned streams a grid builder wants
 * to share across cells that must see the same workload randomness
 * (e.g. Fig. 14 compares DDIO vs. adaptive under identical load).
 */
std::uint64_t splitSeed(std::uint64_t seed, std::uint64_t salt);

/**
 * Tag @p salt as an axis salt. Scenario indices occupy the low salt
 * space (ScenarioContext uses salt = grid index), so grid builders
 * that pin a stream to an axis must keep their salts disjoint from
 * every possible index -- this sets the top bit, which no realistic
 * grid size reaches.
 */
constexpr std::uint64_t
axisSalt(std::uint64_t salt)
{
    return salt | (std::uint64_t(1) << 63);
}

/**
 * One scenario's private stats shard: named scalar metrics in
 * insertion order, tagged with the cell's grid index and name.
 */
struct ScenarioResult
{
    std::size_t index = 0;     ///< Position in the campaign grid.
    std::string name;          ///< Cell name, e.g. "fig14/llc20/ddio".
    std::vector<std::pair<std::string, double>> metrics;

    /**
     * Simulator-side hot-path counters (obs::Stat) accumulated while
     * this cell ran, filled in by Campaign as the snapshot delta around
     * the cell's run function. Deliberately separate from @ref metrics
     * so formatReport() -- and every golden trace diffed against it --
     * is untouched by instrumentation. Counter values advance only with
     * simulated work, so they obey the same threads=N == threads=1
     * merge contract as the metrics.
     */
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /**
     * Named sample vectors, for task partials whose fold needs more
     * than scalars (e.g. the figD1 twins ship their per-epoch score
     * traces to the fold). Never serialized: formatReport() and the
     * shard report format see metrics only, so a decomposed cell's
     * final (folded) result must carry its findings in @ref metrics.
     */
    std::vector<std::pair<std::string, std::vector<double>>> series;

    /**
     * Per-phase wall-clock profile accumulated while this cell ran,
     * filled in by Campaign as the thread-local profile drain around
     * the cell's run function -- empty unless an obs::ProfileSession
     * is active (so results stay light by default). Indexed by
     * process-global phase id; like @ref counters it never reaches
     * formatReport() or the campaign metric report, preserving the
     * profiled == unprofiled byte-identity invariant. Unlike the
     * counters, the values are wall-clock and thus only deterministic
     * under the session's tick-clock mode.
     */
    obs::ProfileDelta profile;

    /** Look up a hot-path counter by name; fatal() when absent. */
    std::uint64_t counter(const std::string &key) const;

    /** Append one named sample vector. */
    void
    setSeries(const std::string &key, std::vector<double> values)
    {
        series.emplace_back(key, std::move(values));
    }

    /** Look up a sample vector by name; fatal() when absent. */
    const std::vector<double> &seriesOf(const std::string &key) const;

    /** Append one named metric. */
    void
    set(const std::string &key, double value)
    {
        metrics.emplace_back(key, value);
    }

    /** Look up a metric by name; fatal() when absent. */
    double value(const std::string &key) const;

    /** Whether a metric named @p key exists. */
    bool has(const std::string &key) const;
};

/**
 * Per-run context handed to a scenario's run function. The Rng is the
 * cell's private stream: its seed depends only on the campaign seed
 * and the cell's grid index, never on which worker runs the cell.
 */
struct ScenarioContext
{
    std::size_t index = 0;          ///< Grid index of this cell.
    std::uint64_t campaignSeed = 0; ///< The whole campaign's seed.
    std::uint64_t scenarioSeed = 0; ///< splitSeed(campaignSeed, index).
    Rng rng;                        ///< Seeded with scenarioSeed.

    ScenarioContext(std::size_t idx, std::uint64_t campaign_seed)
        : index(idx), campaignSeed(campaign_seed),
          scenarioSeed(splitSeed(campaign_seed, idx)),
          rng(scenarioSeed)
    {
    }
};

/**
 * Per-task context handed to a decomposed scenario's runTask
 * function. The Rng is the task's private stream: its seed depends
 * only on (campaign seed, grid index, task index), never on which
 * worker runs the task or in what order tasks complete.
 */
struct TaskContext
{
    std::size_t index = 0;          ///< Grid index of the cell.
    std::uint64_t campaignSeed = 0; ///< The whole campaign's seed.
    std::uint64_t scenarioSeed = 0; ///< splitSeed(campaignSeed, index).
    std::size_t task = 0;           ///< Task index within the cell.
    std::size_t taskCount = 1;      ///< The cell's Scenario::tasks.
    std::uint64_t taskSeed = 0;     ///< splitSeed(scenarioSeed, task).
    Rng rng;                        ///< Seeded with taskSeed.

    TaskContext(std::size_t idx, std::uint64_t campaign_seed,
                std::size_t task_idx, std::size_t task_count)
        : index(idx), campaignSeed(campaign_seed),
          scenarioSeed(splitSeed(campaign_seed, idx)), task(task_idx),
          taskCount(task_count),
          taskSeed(splitSeed(scenarioSeed, task_idx)), rng(taskSeed)
    {
    }
};

/** A named, independently runnable experiment cell. */
struct Scenario
{
    Scenario() = default;

    /** The classic monolithic cell: `{name, run}` grid builders. */
    Scenario(std::string cell_name,
             std::function<ScenarioResult(ScenarioContext &)> run_fn)
        : name(std::move(cell_name)), run(std::move(run_fn))
    {
    }

    std::string name;

    /** Monolithic run function (the classic path). Mutually exclusive
     *  with @ref runTask. */
    std::function<ScenarioResult(ScenarioContext &)> run;

    /**
     * Number of schedulable tasks this cell decomposes into. Only
     * meaningful with @ref runTask set; 1 with a plain @ref run.
     */
    std::size_t tasks = 1;

    /**
     * Run one task of a decomposed cell. Task results are partials:
     * whatever shape @ref fold needs (metrics and/or series), not the
     * cell's report-facing metrics.
     */
    std::function<ScenarioResult(TaskContext &)> runTask;

    /**
     * Reassemble the cell's result from its task results, handed over
     * in task-index order (parts[t] came from task t). Must be pure:
     * a function of the parts alone. The campaign fills the folded
     * result's index, name (when left empty), and counters (the
     * element-wise sum of the parts' counter deltas), so fold only
     * computes metrics.
     */
    std::function<ScenarioResult(const std::vector<ScenarioResult> &)>
        fold;

    /** Whether this cell uses the decomposition contract. */
    bool decomposed() const { return static_cast<bool>(runTask); }

    /** Schedulable units this cell contributes to a campaign. */
    std::size_t taskCount() const { return decomposed() ? tasks : 1; }
};

/**
 * fatal() unless @p s is a well-formed cell: exactly one of run /
 * runTask set, fold present iff runTask is, and tasks >= 1 (tasks > 1
 * requires runTask). Campaign validates every cell before scheduling
 * so a half-wired grid fails loudly, not with null std::function
 * throws from a worker thread.
 */
void validateScenario(const Scenario &s);

/**
 * Run one schedulable unit of @p s: task @p task under the contract
 * seeds for a decomposed cell, the whole run function (task must be
 * 0) otherwise. Returns the raw task result -- index/name/counters
 * are the caller's (Campaign's) business.
 */
ScenarioResult runScenarioTask(const Scenario &s, std::size_t index,
                               std::uint64_t campaignSeed,
                               std::size_t task);

/**
 * Fold the ordered task results of cell @p index into its final
 * ScenarioResult: applies Scenario::fold (or moves the single part of
 * a monolithic cell through), stamps index and name, and replaces the
 * counters with the element-wise sum of the parts' counters -- so a
 * decomposed cell's counter delta is exactly the sum of its tasks'
 * deltas, preserving the per-cell counter contract.
 */
ScenarioResult foldScenarioParts(const Scenario &s, std::size_t index,
                                 std::vector<ScenarioResult> &&parts);

/**
 * The monolithic reference run of one cell: every task in index
 * order on the calling thread, then the fold -- bit-identical to the
 * same cell through a Campaign at any thread count (sans counters,
 * which only Campaign attaches). This is what "the monolithic run" in
 * the decomposition contract means, and what golden tests pin.
 */
ScenarioResult runScenarioMonolithic(const Scenario &s,
                                     std::size_t index,
                                     std::uint64_t campaignSeed);

/**
 * Canonical byte-exact serialization of a result set (hexfloat
 * metrics, index order). Two runs merged identically produce the same
 * string; the determinism tests and `campaign` example diff this.
 */
std::string formatReport(const std::vector<ScenarioResult> &results);

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_SCENARIO_HH
