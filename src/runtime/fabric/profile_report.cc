#include "profile_report.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>

#include "obs/profile.hh"
#include "obs/trace.hh"

namespace pktchase::runtime
{

namespace
{

/** Per-phase accumulator for the aggregate table. ns counts are
 *  exact in doubles up to 2^53 (~104 days), far past any campaign. */
struct PhaseAgg
{
    double count = 0;
    double totalNs = 0;
    double selfNs = 0;
    double minNs = std::numeric_limits<double>::infinity();
    double maxNs = 0;
    double hist[obs::kProfileHistBuckets] = {};
};

/** Split a "<phase>.<field>" cell key; false for foreign keys. */
bool
splitPhaseKey(const std::string &key, std::string &phase,
              std::string &field)
{
    const std::size_t dot = key.rfind('.');
    if (dot == std::string::npos || dot == 0 ||
        dot + 1 == key.size())
        return false;
    phase = key.substr(0, dot);
    field = key.substr(dot + 1);
    return true;
}

/** Histogram field ("h<b>") to bucket index; false otherwise. */
bool
parseHistField(const std::string &field, std::size_t &bucket)
{
    if (field.size() < 2 || field[0] != 'h' ||
        field.find_first_not_of("0123456789", 1) != std::string::npos)
        return false;
    bucket = static_cast<std::size_t>(
        std::strtoull(field.c_str() + 1, nullptr, 10));
    return bucket < obs::kProfileHistBuckets;
}

/**
 * The aggregate phase table, recomputed from cell rows. Shared by the
 * emit and merge paths: byte-identity of merged vs unsharded reports
 * reduces to byte-identity of their rows.
 */
sim::BenchReport::Metrics
topPhaseTable(const std::vector<ProfileCell> &cells)
{
    // std::map: phases ordered by name, the one serialization-stable
    // order (ids are first-use registration order and may permute).
    std::map<std::string, PhaseAgg> table;
    for (const ProfileCell &c : cells) {
        for (const auto &kv : c.metrics) {
            std::string phase;
            std::string field;
            if (!splitPhaseKey(kv.first, phase, field))
                continue;
            PhaseAgg &agg = table[phase];
            std::size_t bucket = 0;
            if (field == "count")
                agg.count += kv.second;
            else if (field == "total_ns")
                agg.totalNs += kv.second;
            else if (field == "self_ns")
                agg.selfNs += kv.second;
            else if (field == "min_ns")
                agg.minNs = std::min(agg.minNs, kv.second);
            else if (field == "max_ns")
                agg.maxNs = std::max(agg.maxNs, kv.second);
            else if (parseHistField(field, bucket))
                agg.hist[bucket] += kv.second;
        }
    }

    double selfTotal = 0;
    for (const auto &kv : table)
        selfTotal += kv.second.selfNs;

    sim::BenchReport::Metrics out;
    for (const auto &kv : table) {
        const std::string &phase = kv.first;
        const PhaseAgg &agg = kv.second;
        if (agg.count <= 0)
            continue;
        out.emplace_back(phase + ".count", agg.count);
        out.emplace_back(phase + ".total_ns", agg.totalNs);
        out.emplace_back(phase + ".self_ns", agg.selfNs);
        out.emplace_back(phase + ".min_ns", agg.minNs);
        out.emplace_back(phase + ".max_ns", agg.maxNs);
        out.emplace_back(phase + ".total_sec", agg.totalNs * 1e-9);
        out.emplace_back(phase + ".self_sec", agg.selfNs * 1e-9);
        out.emplace_back(phase + ".self_share",
                         selfTotal > 0 ? agg.selfNs / selfTotal : 0.0);
        out.emplace_back(phase + ".throughput_hz",
                         agg.totalNs > 0
                             ? agg.count / (agg.totalNs * 1e-9)
                             : 0.0);
        for (std::size_t b = 0; b < obs::kProfileHistBuckets; ++b) {
            if (agg.hist[b] > 0)
                out.emplace_back(phase + ".h" + std::to_string(b),
                                 agg.hist[b]);
        }
    }
    return out;
}

} // namespace

std::vector<ProfileCell>
profileCellsFromResults(std::uint64_t campaignSeed,
                        const std::vector<ScenarioResult> &results)
{
    std::vector<ProfileCell> cells;
    cells.reserve(results.size());
    for (const ScenarioResult &r : results) {
        ProfileCell c;
        c.index = r.index;
        c.seed = splitSeed(campaignSeed, r.index);
        c.name = r.name;

        // Id-indexed stats to name-sorted serialization.
        std::vector<std::pair<std::string, const obs::PhaseStats *>>
            named;
        for (std::size_t id = 0; id < r.profile.size(); ++id) {
            if (!r.profile[id].empty())
                named.emplace_back(obs::phaseName(id), &r.profile[id]);
        }
        std::sort(named.begin(), named.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (const auto &np : named) {
            const std::string &phase = np.first;
            const obs::PhaseStats &s = *np.second;
            c.metrics.emplace_back(phase + ".count",
                                   static_cast<double>(s.count));
            c.metrics.emplace_back(phase + ".total_ns",
                                   static_cast<double>(s.totalNs));
            c.metrics.emplace_back(phase + ".self_ns",
                                   static_cast<double>(s.selfNs));
            c.metrics.emplace_back(phase + ".min_ns",
                                   static_cast<double>(s.minNs));
            c.metrics.emplace_back(phase + ".max_ns",
                                   static_cast<double>(s.maxNs));
            for (std::size_t b = 0; b < obs::kProfileHistBuckets;
                 ++b) {
                if (s.hist[b] > 0)
                    c.metrics.emplace_back(
                        phase + ".h" + std::to_string(b),
                        static_cast<double>(s.hist[b]));
            }
        }
        cells.push_back(std::move(c));
    }
    return cells;
}

sim::BenchReport
profileReportFromCells(const std::string &gridName,
                       std::uint64_t campaignSeed, std::size_t gridSize,
                       const ShardSpec &shard,
                       const std::string &clockTag,
                       const obs::RunManifest &manifest,
                       double traceDropped,
                       const sim::BenchReport::Metrics &extraScalars,
                       const std::vector<ProfileCell> &cells)
{
    sim::BenchReport report("profile");
    report.manifest(manifest);
    report.meta("grid", gridName);
    report.meta("campaign_seed", std::to_string(campaignSeed));
    report.meta("grid_size", std::to_string(gridSize));
    report.meta("shard_index", std::to_string(shard.index));
    report.meta("shard_count", std::to_string(shard.count));
    report.meta("clock", clockTag);
    for (const auto &kv : topPhaseTable(cells))
        report.scalar(kv.first, kv.second);
    report.scalar("trace.dropped_events", traceDropped);
    for (const auto &kv : extraScalars)
        report.scalar(kv.first, kv.second);
    for (const ProfileCell &c : cells)
        report.cell(c.index, c.seed, c.name, c.metrics);
    return report;
}

sim::BenchReport
profileReport(const std::string &gridName, std::uint64_t campaignSeed,
              std::size_t gridSize, const ShardSpec &shard,
              unsigned threads, const std::string &clockTag,
              const std::vector<ScenarioResult> &results)
{
    // Per-thread trace drop counts ride along when a trace session is
    // live -- satellite of the bounded trace buffers: saturation is a
    // report field, not just a stderr line.
    double dropped = 0;
    sim::BenchReport::Metrics extras;
    if (const obs::TraceSession *t = obs::TraceSession::active()) {
        dropped = static_cast<double>(t->droppedEvents());
        for (const auto &td : t->perThreadDrops()) {
            extras.emplace_back("trace.dropped.t" +
                                    std::to_string(td.tid),
                                static_cast<double>(td.dropped));
        }
    }
    return profileReportFromCells(
        gridName, campaignSeed, gridSize, shard, clockTag,
        obs::RunManifest::host(threads), dropped, extras,
        profileCellsFromResults(campaignSeed, results));
}

} // namespace pktchase::runtime
