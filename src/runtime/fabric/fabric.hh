/**
 * @file
 * The work-stealing campaign fabric: per-worker cell queues plus a
 * shared MPMC injection queue, with a lock-free steal path.
 *
 * Static index sharding (worker w runs cells w, w+N, ...) wastes
 * wall-clock on skewed grids: one adaptive-partition cell can run 3-5x
 * longer than its neighbours, so the unlucky worker serializes the
 * tail while the others idle. The fabric keeps the same initial
 * round-robin placement -- cell i seeds worker i % N's queue, so the
 * common balanced case behaves exactly like static sharding -- but a
 * worker that drains its own queue steals from the others instead of
 * exiting, and cells that overflow a bounded per-worker queue spill
 * into the shared injection queue every worker polls.
 *
 * Determinism: the fabric decides only *which worker* runs a cell,
 * never what the cell computes. Every cell's randomness derives from
 * (campaign seed, grid index) and the caller merges results by index,
 * so a stolen cell produces bit-identical output to the same cell run
 * in place -- threads=N stays byte-identical to threads=1 (the
 * contract the campaign determinism tests and the TSan steal stress
 * pin).
 *
 * All queues are pre-filled before the first next() call and nothing
 * enqueues afterwards, so emptiness is monotone and "own queue,
 * injection queue, and every victim empty" is a sound termination
 * check -- no work can appear after it passes.
 */

#ifndef PKTCHASE_RUNTIME_FABRIC_FABRIC_HH
#define PKTCHASE_RUNTIME_FABRIC_FABRIC_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/fabric/mpmc_ring.hh"

namespace pktchase::runtime
{

/**
 * A live sample of the fabric's queues and steal counters, taken by
 * the driver thread for the progress line. Approximate by nature (the
 * workers keep draining while it is read).
 */
struct FabricStatus
{
    /** Per-worker queue depth, one entry per worker. */
    std::vector<std::size_t> queueDepth;
    /** Items waiting in the shared injection queue. */
    std::size_t injectionDepth = 0;
    /** Items the fabric was constructed with. */
    std::size_t itemsTotal = 0;
    /** Items executed so far, across all workers. */
    std::uint64_t cellsExecuted = 0;
    /** Items a worker took from another worker's queue. */
    std::uint64_t cellsStolen = 0;
    /** tryPop attempts on other workers' queues (hits + misses). */
    std::uint64_t stealAttempts = 0;
};

/**
 * Distributes a fixed set of item indices across worker queues and
 * serves them back through next() with work stealing.
 *
 * Usage: construct with the item count and worker count (the items
 * are queued in the constructor), then have worker w loop
 * `while (fabric.next(w, item)) run(item);`. next() is safe to call
 * concurrently from every worker; items are served exactly once.
 */
class StealFabric
{
  public:
    /**
     * Queue items 0..@p items-1 across @p workers queues. Item i seeds
     * queue i % workers (the static-shard placement); items beyond
     * @p queueCapacity per worker spill to the injection queue.
     */
    StealFabric(std::size_t items, unsigned workers,
                std::size_t queueCapacity = kDefaultQueueCapacity);

    StealFabric(const StealFabric &) = delete;
    StealFabric &operator=(const StealFabric &) = delete;

    /**
     * Serve the next item to worker @p worker: its own queue first,
     * then the injection queue, then one steal sweep over the other
     * workers. Returns false when every queue is empty -- no more
     * items will ever appear, so false is final.
     */
    bool next(unsigned worker, std::size_t &item);

    /**
     * As next(), and reports in @p stolen whether the item came off
     * another worker's queue (the caller's task-level steal
     * accounting; injection-queue spill does not count as a steal).
     */
    bool next(unsigned worker, std::size_t &item, bool &stolen);

    unsigned workers() const { return workers_; }

    /** Sample queues and counters (driver-side, for progress). */
    FabricStatus status() const;

    /** Total cells taken from foreign queues, after the run. */
    std::uint64_t cellsStolen() const;

    /** Total steal probes (successful or not), after the run. */
    std::uint64_t stealAttempts() const;

    /** Per-worker default queue capacity (spill beyond goes to the
     *  injection queue). Big enough that realistic grids fit without
     *  spilling; small enough that a worker cannot hoard a huge grid. */
    static constexpr std::size_t kDefaultQueueCapacity = 256;

  private:
    /** Per-worker steal counters, padded so relaxed increments from
     *  different workers never share a cache line. */
    struct alignas(cacheLineBytes) WorkerCounters
    {
        std::atomic<std::uint64_t> executed{0};
        std::atomic<std::uint64_t> stolen{0};
        std::atomic<std::uint64_t> attempts{0};
    };

    const unsigned workers_;
    const std::size_t items_;
    std::vector<std::unique_ptr<MpmcRing<std::size_t>>> queues_;
    std::unique_ptr<MpmcRing<std::size_t>> injection_;
    std::vector<WorkerCounters> counters_;
};

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_FABRIC_FABRIC_HH
