/**
 * @file
 * The mergeable profile report: where the campaign's wall-clock went,
 * per phase and per cell, as a sim::BenchReport artifact.
 *
 *     campaign figD1 --profile=BENCH_profile.json
 *     campaign figD1 --shard=0/2 --profile=p0.json   # + 1/2 ...
 *     campaign --merge BENCH_profile.json p0.json p1.json
 *
 * Shape (bench = "profile"): the campaign identity metas (grid,
 * campaign_seed, grid_size, shard spec) plus a "clock" meta ("wall",
 * or "ticks:N" under the deterministic test clock), an
 * obs::RunManifest with hostname and thread count (profile numbers
 * are host-bound, unlike campaign metrics), top-level scalars, and
 * one row-tagged cell per grid cell.
 *
 * Per-cell metrics, for every phase with spans in that cell:
 * <phase>.count/.total_ns/.self_ns/.min_ns/.max_ns and the nonzero
 * log2 histogram buckets <phase>.h<b> (bucket b covers [2^(b-1), 2^b)
 * ns; b = 0 is exactly 0 ns). All integer-valued doubles, emitted
 * decimal + hexfloat like every report cell.
 *
 * Top-level scalars: the aggregate phase table -- the per-cell fields
 * summed (min/max folded), plus derived <phase>.total_sec/.self_sec,
 * <phase>.self_share (share of the report's total self time; what
 * tools/profile_diff.py gates) and <phase>.throughput_hz (spans per
 * inclusive second) -- followed by trace.dropped_events and, when a
 * trace session is live in this run, per-thread trace.dropped.t<tid>
 * counts (satellite of the bounded trace buffers).
 *
 * Merge discipline: the aggregate table is a pure function of the
 * cell rows, recomputed by the same code on both the emit and merge
 * paths -- so a merged report's table is byte-identical to the
 * unsharded run's whenever the cell rows are (which the tick clock
 * makes testable). Phases are ordered by name everywhere: phase *ids*
 * are first-use registration order, which thread interleaving may
 * permute, so nothing serialized may depend on them.
 */

#ifndef PKTCHASE_RUNTIME_FABRIC_PROFILE_REPORT_HH
#define PKTCHASE_RUNTIME_FABRIC_PROFILE_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/manifest.hh"
#include "runtime/fabric/shard.hh"
#include "runtime/scenario.hh"
#include "sim/bench_report.hh"

namespace pktchase::runtime
{

/** One profile-report cell row in serializable form. */
struct ProfileCell
{
    std::size_t index = 0;  ///< Full-grid index.
    std::uint64_t seed = 0; ///< splitSeed(campaign seed, index).
    std::string name;
    sim::BenchReport::Metrics metrics; ///< <phase>.<field> keys.
};

/**
 * Serialize campaign @p results (whose ScenarioResult::profile the
 * campaign drain filled) into cell rows: id-indexed PhaseStats become
 * name-keyed metrics, phases sorted by name, zero-count phases
 * skipped.
 */
std::vector<ProfileCell>
profileCellsFromResults(std::uint64_t campaignSeed,
                        const std::vector<ScenarioResult> &results);

/**
 * Assemble a profile report from serialized @p cells: identity metas,
 * @p manifest, the aggregate phase table recomputed from the rows,
 * @p traceDropped (the trace.dropped_events scalar) and
 * @p extraScalars (per-thread drop counts; emitted after the total,
 * in the order given). The merge path re-enters here with parsed
 * rows, which is what keeps merged == unsharded byte-identical.
 */
sim::BenchReport profileReportFromCells(
    const std::string &gridName, std::uint64_t campaignSeed,
    std::size_t gridSize, const ShardSpec &shard,
    const std::string &clockTag, const obs::RunManifest &manifest,
    double traceDropped, const sim::BenchReport::Metrics &extraScalars,
    const std::vector<ProfileCell> &cells);

/**
 * The whole emit path for one campaign run: cells from @p results,
 * manifest = obs::RunManifest::host(@p threads), trace drop counts
 * read from the live obs::TraceSession (0 / none without one).
 */
sim::BenchReport profileReport(const std::string &gridName,
                               std::uint64_t campaignSeed,
                               std::size_t gridSize,
                               const ShardSpec &shard, unsigned threads,
                               const std::string &clockTag,
                               const std::vector<ScenarioResult> &results);

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_FABRIC_PROFILE_REPORT_HH
