/**
 * @file
 * The multi-process shard layer of the campaign fabric: deterministic
 * grid slices, mergeable per-shard reports, and the merge validator.
 *
 * One machine's campaign is bounded by its cores; the shard layer
 * fans a grid out across processes (and machines):
 *
 *     campaign figD1 --shard=0/4 --report=s0.json
 *     campaign figD1 --shard=1/4 --report=s1.json   # elsewhere, maybe
 *     ...
 *     campaign --merge full.json s0.json s1.json s2.json s3.json
 *
 * Shard i/N runs cells {i, i+N, i+2N, ...} of the full grid -- the
 * same round-robin placement the in-process fabric seeds its queues
 * with. Cells keep their *full-grid* indices, so their seeds (and
 * therefore their results) are bit-identical to an unsharded run; the
 * merged report is byte-identical to the report an unsharded
 * `--report` run writes, which the CI shard matrix verifies with cmp.
 *
 * The shard report is a sim::BenchReport with identity metadata (grid
 * name, campaign seed, grid size, shard spec) and one row-tagged cell
 * per grid cell recording its index and scenario seed. The merge
 * validator rejects, with a clear message: mixed grids/seeds/sizes,
 * inconsistent shard counts, duplicate or missing shards, rows
 * outside their shard's slice, duplicate or missing cell indices, and
 * rows whose recorded seed does not equal splitSeed(campaign seed,
 * index) -- the tamper/mismatch check.
 */

#ifndef PKTCHASE_RUNTIME_FABRIC_SHARD_HH
#define PKTCHASE_RUNTIME_FABRIC_SHARD_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scenario.hh"
#include "sim/bench_report.hh"

namespace pktchase::runtime
{

/** One process's slice of a campaign grid: shard index/count. */
struct ShardSpec
{
    unsigned index = 0; ///< This process's shard, in [0, count).
    unsigned count = 1; ///< Total shards; 1 = unsharded.
};

/**
 * Parse "i/N" (e.g. "0/4") into @p out. Returns false on junk,
 * count == 0, or index >= count.
 */
bool parseShardSpec(const std::string &text, ShardSpec &out);

/** The full-grid indices of @p spec's slice: {i, i+N, ...} < gridSize,
 *  strictly increasing (the shape Campaign::run(grid, subset) wants). */
std::vector<std::size_t> shardIndices(std::size_t gridSize,
                                      const ShardSpec &spec);

/**
 * Build the mergeable campaign report for @p results, which must be
 * the cells of @p shard's slice of the @p gridSize-cell grid named
 * @p gridName, run with @p campaignSeed. An unsharded run passes
 * ShardSpec{0, 1}; the merge tool re-emits exactly that form, which
 * is what makes merged-vs-unsharded byte-comparable.
 */
sim::BenchReport campaignReport(const std::string &gridName,
                                std::uint64_t campaignSeed,
                                std::size_t gridSize,
                                const ShardSpec &shard,
                                const std::vector<ScenarioResult> &results);

/**
 * Merge the shard reports at @p inputs into one full-grid report at
 * @p outPath, validating the shard set first. Returns the empty
 * string on success, otherwise a one-line description of why the
 * shard set was rejected (nothing is written in that case).
 */
std::string mergeShardReports(const std::vector<std::string> &inputs,
                              const std::string &outPath);

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_FABRIC_SHARD_HH
