#include "fabric.hh"

#include "obs/stats.hh"
#include "sim/logging.hh"

namespace pktchase::runtime
{

StealFabric::StealFabric(std::size_t items, unsigned workers,
                         std::size_t queueCapacity)
    : workers_(workers ? workers : 1), items_(items),
      counters_(workers_)
{
    if (queueCapacity == 0)
        fatal("StealFabric requires a nonzero queue capacity");

    queues_.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w)
        queues_.push_back(std::make_unique<MpmcRing<std::size_t>>(
            queueCapacity < items ? queueCapacity : (items ? items : 1)));

    // The injection queue must absorb the worst case (every item
    // spilling), so size it to the whole grid.
    injection_ =
        std::make_unique<MpmcRing<std::size_t>>(items ? items : 1);

    // Pre-fill: item i seeds queue i % workers -- the same placement
    // static sharding used, so balanced grids run identically and the
    // steal path only matters on skew. Spill goes to injection. No
    // other thread is running yet, so plain tryPush calls suffice.
    for (std::size_t i = 0; i < items; ++i) {
        std::size_t item = i;
        if (!queues_[i % workers_]->tryPush(std::move(item))) {
            item = i;
            if (!injection_->tryPush(std::move(item)))
                panic("StealFabric: injection queue sized too small");
        }
    }
}

bool
StealFabric::next(unsigned worker, std::size_t &item)
{
    bool stolen = false;
    return next(worker, item, stolen);
}

bool
StealFabric::next(unsigned worker, std::size_t &item, bool &stolen)
{
    if (worker >= workers_)
        panic("StealFabric: worker id out of range");
    WorkerCounters &mine = counters_[worker];
    stolen = false;

    // 1. Own queue: the common, contention-free case.
    if (queues_[worker]->tryPop(item)) {
        mine.executed.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    // 2. Shared injection queue (spill from the pre-fill).
    if (injection_->tryPop(item)) {
        mine.executed.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    // 3. Steal sweep: one pass over the other workers, starting just
    // after this worker so thieves spread across victims. Because
    // nothing refills the queues, a full failed sweep means the fabric
    // is drained for good.
    for (unsigned step = 1; step < workers_; ++step) {
        const unsigned victim = (worker + step) % workers_;
        mine.attempts.fetch_add(1, std::memory_order_relaxed);
        obs::bump(obs::Stat::StealAttempts);
        if (queues_[victim]->tryPop(item)) {
            mine.executed.fetch_add(1, std::memory_order_relaxed);
            mine.stolen.fetch_add(1, std::memory_order_relaxed);
            obs::bump(obs::Stat::CellsStolen);
            stolen = true;
            return true;
        }
    }

    // 4. Re-check the injection queue once: a spilled item could have
    // been missed between steps 2 and 3 only if another worker pushed,
    // which never happens post-fill -- but the recheck is free and
    // keeps the termination argument independent of that subtlety.
    if (injection_->tryPop(item)) {
        mine.executed.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

FabricStatus
StealFabric::status() const
{
    FabricStatus s;
    s.queueDepth.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w)
        s.queueDepth.push_back(queues_[w]->approxSize());
    s.injectionDepth = injection_->approxSize();
    s.itemsTotal = items_;
    for (const WorkerCounters &c : counters_) {
        s.cellsExecuted += c.executed.load(std::memory_order_relaxed);
        s.cellsStolen += c.stolen.load(std::memory_order_relaxed);
        s.stealAttempts += c.attempts.load(std::memory_order_relaxed);
    }
    return s;
}

std::uint64_t
StealFabric::cellsStolen() const
{
    std::uint64_t total = 0;
    for (const WorkerCounters &c : counters_)
        total += c.stolen.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
StealFabric::stealAttempts() const
{
    std::uint64_t total = 0;
    for (const WorkerCounters &c : counters_)
        total += c.attempts.load(std::memory_order_relaxed);
    return total;
}

} // namespace pktchase::runtime
