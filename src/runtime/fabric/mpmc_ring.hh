/**
 * @file
 * Fixed-size lock-free multi-producer/multi-consumer ring.
 *
 * The MPMC generalization of runtime/spsc_ring.hh, in the bounded
 * per-slot-sequence style of the related-repo concurrent ring buffers:
 * every slot carries a sequence counter that encodes whether it is
 * ready for the next producer or the next consumer, so push and pop
 * are a single CAS on the shared cursor plus a release store on the
 * slot -- no locks, no unbounded spinning while the ring holds items.
 * Head and tail cursors live on separate cache lines so producers and
 * consumers do not false-share.
 *
 * The work-stealing fabric uses one MpmcRing per worker as that
 * worker's cell deque (owner pushes during the pre-fill, any worker
 * may pop -- a steal is just a tryPop on a victim's ring) plus one
 * shared injection ring for cells that overflow the per-worker
 * queues.
 *
 * Progress guarantees under the fabric's usage: the fabric fills every
 * ring before the workers start and never pushes afterwards, so during
 * the drain phase tryPop() fails only when the ring is truly empty --
 * emptiness is monotone, which is what makes the workers' "every queue
 * empty => no more work will ever appear" termination check sound.
 */

#ifndef PKTCHASE_RUNTIME_FABRIC_MPMC_RING_HH
#define PKTCHASE_RUNTIME_FABRIC_MPMC_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/spsc_ring.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace pktchase::runtime
{

/**
 * Bounded lock-free MPMC queue of movable values.
 *
 * Any number of threads may call tryPush() and tryPop() concurrently.
 * Items pushed by one producer are popped in push order as long as a
 * single consumer drains them (the SPSC drain-order property the unit
 * tests pin); with several consumers the global pop order is whatever
 * the CAS races produce, which is fine for a work queue.
 */
template <typename T>
class MpmcRing
{
  public:
    /** Construct with space for @p capacity items (rounded up to 2^k). */
    explicit MpmcRing(std::size_t capacity)
        : mask_(bitCeil64(capacity < 2 ? 2 : capacity) - 1),
          slots_(mask_ + 1)
    {
        if (capacity == 0)
            fatal("MpmcRing requires a nonzero capacity");
        // Slot i starts "ready for the producer of position i".
        for (std::uint64_t i = 0; i <= mask_; ++i)
            slots_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpmcRing(const MpmcRing &) = delete;
    MpmcRing &operator=(const MpmcRing &) = delete;

    /** Number of item slots. */
    std::size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue @p item. Returns false (item untouched) when the ring
     * is full.
     */
    bool
    tryPush(T &&item)
    {
        std::uint64_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots_[pos & mask_];
            const std::uint64_t seq =
                slot.seq.load(std::memory_order_acquire);
            const std::int64_t dif = static_cast<std::int64_t>(seq) -
                                     static_cast<std::int64_t>(pos);
            if (dif == 0) {
                // Slot is ready for this position; claim it.
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    slot.value = std::move(item);
                    slot.seq.store(pos + 1, std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                // The slot still holds an unconsumed item from one lap
                // ago: the ring is full.
                return false;
            } else {
                // Another producer claimed this position; reload.
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Dequeue into @p out. Returns false when the ring is empty.
     */
    bool
    tryPop(T &out)
    {
        std::uint64_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots_[pos & mask_];
            const std::uint64_t seq =
                slot.seq.load(std::memory_order_acquire);
            const std::int64_t dif = static_cast<std::int64_t>(seq) -
                                     static_cast<std::int64_t>(pos + 1);
            if (dif == 0) {
                // Slot holds the item for this position; claim it.
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    out = std::move(slot.value);
                    // Mark the slot ready for the producer one lap on.
                    slot.seq.store(pos + mask_ + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                // The producer for this position has not published: the
                // ring is empty (under pre-fill usage, truly empty).
                return false;
            } else {
                // Another consumer claimed this position; reload.
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Item count as of one relaxed cursor sample. Only a hint (both
     * cursors move concurrently); the progress meter's queue-depth
     * readout is its one consumer.
     */
    std::size_t
    approxSize() const
    {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        return tail > head ? static_cast<std::size_t>(tail - head) : 0;
    }

    /** Approximate emptiness; exact once all producers are quiescent. */
    bool empty() const { return approxSize() == 0; }

  private:
    /**
     * One slot: the per-slot sequence is the MPMC handshake. seq ==
     * position means "producer may fill", seq == position + 1 means
     * "consumer may take", seq == position + capacity re-arms the slot
     * for the next lap.
     */
    struct Slot
    {
        std::atomic<std::uint64_t> seq{0};
        T value{};
    };

    const std::uint64_t mask_;
    std::vector<Slot> slots_;

    /** Consumer cursor, alone on its cache line. */
    alignas(cacheLineBytes) std::atomic<std::uint64_t> head_{0};

    /** Producer cursor, alone on its cache line. */
    alignas(cacheLineBytes) std::atomic<std::uint64_t> tail_{0};

    /** Keep whatever follows the ring off the producer's line. */
    [[maybe_unused]] char pad_[cacheLineBytes -
                               sizeof(std::atomic<std::uint64_t>)];
};

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_FABRIC_MPMC_RING_HH
