#include "shard.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/manifest.hh"
#include "runtime/fabric/profile_report.hh"
#include "sim/json.hh"

namespace pktchase::runtime
{

namespace
{

/** Decimal uint64 parse with full-string validation. */
bool
parseU64(const std::string &digits, std::uint64_t &out)
{
    if (digits.empty() || digits.size() > 20 ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(digits.c_str(), &end, 10);
    return errno == 0 && end && *end == '\0';
}

/** "0x..." hex uint64 parse (the shard-report seed spelling). */
bool
parseHexU64(const std::string &text, std::uint64_t &out)
{
    if (text.size() < 3 || text.compare(0, 2, "0x") != 0)
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(text.c_str() + 2, &end, 16);
    return errno == 0 && end && *end == '\0';
}

/** Everything parsed out of one shard file. */
struct ParsedShard
{
    std::string path;
    bool isProfile = false; ///< bench == "profile" vs "campaign".
    std::string grid;
    std::uint64_t campaignSeed = 0;
    std::uint64_t gridSize = 0;
    std::uint64_t shardIndex = 0;
    std::uint64_t shardCount = 0;
    obs::RunManifest manifest;  ///< "unknown" fields when absent.
    std::string clock;          ///< Profile reports only.
    double traceDropped = 0;    ///< Profile reports only.
    std::vector<ScenarioResult> rows;
    std::vector<std::uint64_t> rowSeeds; ///< Parallel to rows.
};

/** Read one required string meta into @p out via @p convert. */
bool
readMetaU64(const sim::JsonValue &root, const std::string &key,
            const std::string &what, std::uint64_t &out,
            std::string &err)
{
    const sim::JsonValue *v =
        root.require(key, sim::JsonValue::String, what, err);
    if (!v)
        return false;
    if (!parseU64(v->str, out)) {
        err = what + ": \"" + key + "\" is not an unsigned integer";
        return false;
    }
    return true;
}

/** Parse and structurally validate one shard file. */
bool
parseShardFile(const std::string &path, ParsedShard &out,
               std::string &err)
{
    sim::JsonValue root;
    if (!sim::parseJsonFile(path, root, err))
        return false;
    if (root.kind != sim::JsonValue::Object) {
        err = path + ": not a JSON object";
        return false;
    }
    out.path = path;

    const sim::JsonValue *bench =
        root.require("bench", sim::JsonValue::String, path, err);
    if (!bench)
        return false;
    if (bench->str != "campaign" && bench->str != "profile") {
        err = path + ": not a mergeable shard report (bench=\"" +
              bench->str + "\")";
        return false;
    }
    out.isProfile = bench->str == "profile";

    // Provenance: reports written before the manifest era parse as
    // all-"unknown" (two unknowns still compare equal below).
    out.manifest.gitSha = "unknown";
    out.manifest.compiler = "unknown";
    out.manifest.buildFlags = "unknown";
    if (const sim::JsonValue *man = root.find("manifest")) {
        if (man->kind != sim::JsonValue::Object) {
            err = path + ": \"manifest\" is not an object";
            return false;
        }
        auto field = [&](const char *key, std::string &into) {
            if (const sim::JsonValue *v = man->find(key)) {
                if (v->kind == sim::JsonValue::String)
                    into = v->str;
            }
        };
        field("git_sha", out.manifest.gitSha);
        field("compiler", out.manifest.compiler);
        field("build_flags", out.manifest.buildFlags);
        field("hostname", out.manifest.hostname);
        if (const sim::JsonValue *v = man->find("threads")) {
            if (v->kind == sim::JsonValue::Number)
                out.manifest.threads = static_cast<unsigned>(v->num);
        }
    }

    const sim::JsonValue *grid =
        root.require("grid", sim::JsonValue::String, path, err);
    if (!grid)
        return false;
    out.grid = grid->str;

    if (out.isProfile) {
        const sim::JsonValue *clock =
            root.require("clock", sim::JsonValue::String, path, err);
        if (!clock)
            return false;
        out.clock = clock->str;
        if (const sim::JsonValue *d = root.find("trace.dropped_events")) {
            if (d->kind == sim::JsonValue::Number)
                out.traceDropped = d->num;
        }
    }

    if (!readMetaU64(root, "campaign_seed", path, out.campaignSeed,
                     err) ||
        !readMetaU64(root, "grid_size", path, out.gridSize, err) ||
        !readMetaU64(root, "shard_index", path, out.shardIndex, err) ||
        !readMetaU64(root, "shard_count", path, out.shardCount, err))
        return false;
    if (out.shardCount == 0 || out.shardIndex >= out.shardCount) {
        err = path + ": invalid shard spec " +
              std::to_string(out.shardIndex) + "/" +
              std::to_string(out.shardCount);
        return false;
    }

    const sim::JsonValue *cells =
        root.require("cells", sim::JsonValue::Array, path, err);
    if (!cells)
        return false;
    for (const sim::JsonValue &cell : cells->arr) {
        if (cell.kind != sim::JsonValue::Object) {
            err = path + ": cell is not an object";
            return false;
        }
        const sim::JsonValue *index =
            cell.require("index", sim::JsonValue::Number, path, err);
        const sim::JsonValue *seed =
            index ? cell.require("seed", sim::JsonValue::String, path,
                                 err)
                  : nullptr;
        const sim::JsonValue *name =
            seed ? cell.require("name", sim::JsonValue::String, path,
                                err)
                 : nullptr;
        const sim::JsonValue *hex =
            name ? cell.require("hex", sim::JsonValue::Object, path,
                                err)
                 : nullptr;
        if (!hex)
            return false;

        ScenarioResult r;
        r.index = static_cast<std::size_t>(index->num);
        r.name = name->str;
        std::uint64_t seedBits = 0;
        if (!parseHexU64(seed->str, seedBits)) {
            err = path + ": cell " + std::to_string(r.index) +
                  " has a malformed seed \"" + seed->str + "\"";
            return false;
        }
        // The hex map round-trips every metric bit-exactly; the
        // decimal map is only for human readers and tooling.
        for (const auto &kv : hex->obj) {
            if (kv.second.kind != sim::JsonValue::String) {
                err = path + ": hex metric \"" + kv.first +
                      "\" is not a string";
                return false;
            }
            r.metrics.emplace_back(
                kv.first, std::strtod(kv.second.str.c_str(), nullptr));
        }
        out.rows.push_back(std::move(r));
        out.rowSeeds.push_back(seedBits);
    }
    return true;
}

} // namespace

bool
parseShardSpec(const std::string &text, ShardSpec &out)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos)
        return false;
    std::uint64_t index = 0;
    std::uint64_t count = 0;
    if (!parseU64(text.substr(0, slash), index) ||
        !parseU64(text.substr(slash + 1), count))
        return false;
    if (count == 0 || index >= count || count > 0xFFFFFFFFull)
        return false;
    out.index = static_cast<unsigned>(index);
    out.count = static_cast<unsigned>(count);
    return true;
}

std::vector<std::size_t>
shardIndices(std::size_t gridSize, const ShardSpec &spec)
{
    std::vector<std::size_t> indices;
    for (std::size_t i = spec.index; i < gridSize; i += spec.count)
        indices.push_back(i);
    return indices;
}

sim::BenchReport
campaignReport(const std::string &gridName, std::uint64_t campaignSeed,
               std::size_t gridSize, const ShardSpec &shard,
               const std::vector<ScenarioResult> &results)
{
    sim::BenchReport report("campaign");
    // The hostname-free build manifest: campaign metrics are
    // deterministic per build, so shards produced on different
    // machines from the same commit must still merge byte-identically.
    report.manifest(obs::RunManifest::build());
    report.meta("grid", gridName);
    report.meta("campaign_seed", std::to_string(campaignSeed));
    report.meta("grid_size", std::to_string(gridSize));
    report.meta("shard_index", std::to_string(shard.index));
    report.meta("shard_count", std::to_string(shard.count));
    for (const ScenarioResult &r : results) {
        report.cell(r.index, splitSeed(campaignSeed, r.index), r.name,
                    r.metrics);
    }
    return report;
}

std::string
mergeShardReports(const std::vector<std::string> &inputs,
                  const std::string &outPath)
{
    if (inputs.empty())
        return "no shard files given";

    std::vector<ParsedShard> shards(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        std::string err;
        if (!parseShardFile(inputs[i], shards[i], err))
            return err;
    }

    // Every shard must describe the same campaign.
    const ParsedShard &first = shards[0];
    for (const ParsedShard &s : shards) {
        if (s.grid != first.grid)
            return s.path + ": grid \"" + s.grid +
                   "\" does not match \"" + first.grid + "\" of " +
                   first.path;
        if (s.campaignSeed != first.campaignSeed)
            return s.path + ": campaign seed " +
                   std::to_string(s.campaignSeed) +
                   " does not match seed " +
                   std::to_string(first.campaignSeed) + " of " +
                   first.path;
        if (s.gridSize != first.gridSize)
            return s.path + ": grid size " +
                   std::to_string(s.gridSize) + " does not match " +
                   std::to_string(first.gridSize) + " of " + first.path;
        if (s.shardCount != first.shardCount)
            return s.path + ": shard count " +
                   std::to_string(s.shardCount) + " does not match " +
                   std::to_string(first.shardCount) + " of " +
                   first.path;
        if (s.isProfile != first.isProfile)
            return s.path + ": mixes bench types (\"" +
                   std::string(s.isProfile ? "profile" : "campaign") +
                   "\" vs \"" +
                   std::string(first.isProfile ? "profile"
                                               : "campaign") +
                   "\" of " + first.path + ")";
        // Provenance check: shards of one merge must come from the
        // same build -- a sha mismatch means someone is merging
        // artifacts of different commits.
        if (s.manifest.gitSha != first.manifest.gitSha)
            return s.path + ": git sha " + s.manifest.gitSha +
                   " does not match " + first.manifest.gitSha + " of " +
                   first.path;
        if (s.isProfile) {
            if (s.clock != first.clock)
                return s.path + ": clock \"" + s.clock +
                       "\" does not match \"" + first.clock +
                       "\" of " + first.path;
            // Profile numbers are host-bound, so a merged profile is
            // only meaningful for shards of one build on one host.
            if (s.manifest.compiler != first.manifest.compiler ||
                s.manifest.buildFlags != first.manifest.buildFlags ||
                s.manifest.hostname != first.manifest.hostname ||
                s.manifest.threads != first.manifest.threads)
                return s.path + ": manifest does not match " +
                       first.path +
                       " (profile shards must share one build, host, "
                       "and thread count)";
        }
    }

    // The shard set must be exactly {0, ..., count-1}, once each.
    if (shards.size() != first.shardCount)
        return "incomplete shard set: " +
               std::to_string(shards.size()) + " file(s) for " +
               std::to_string(first.shardCount) + " shards";
    std::vector<const ParsedShard *> byIndex(first.shardCount, nullptr);
    for (const ParsedShard &s : shards) {
        const ParsedShard *&slot = byIndex[s.shardIndex];
        if (slot)
            return "overlapping shards: " + slot->path + " and " +
                   s.path + " both claim shard " +
                   std::to_string(s.shardIndex) + "/" +
                   std::to_string(s.shardCount);
        slot = &s;
    }

    // Rows: in-slice, complete, unique, and seed-consistent.
    const std::size_t gridSize =
        static_cast<std::size_t>(first.gridSize);
    std::vector<ScenarioResult> merged(gridSize);
    std::vector<bool> seen(gridSize, false);
    for (const ParsedShard &s : shards) {
        for (std::size_t k = 0; k < s.rows.size(); ++k) {
            const ScenarioResult &r = s.rows[k];
            if (r.index >= gridSize)
                return s.path + ": cell index " +
                       std::to_string(r.index) +
                       " is outside the " + std::to_string(gridSize) +
                       "-cell grid";
            if (r.index % s.shardCount != s.shardIndex)
                return s.path + ": cell " + std::to_string(r.index) +
                       " does not belong to shard " +
                       std::to_string(s.shardIndex) + "/" +
                       std::to_string(s.shardCount);
            if (seen[r.index])
                return s.path + ": duplicate cell " +
                       std::to_string(r.index);
            const std::uint64_t expected =
                splitSeed(first.campaignSeed, r.index);
            if (s.rowSeeds[k] != expected) {
                char want[32];
                char got[32];
                std::snprintf(want, sizeof(want), "0x%016" PRIx64,
                              expected);
                std::snprintf(got, sizeof(got), "0x%016" PRIx64,
                              s.rowSeeds[k]);
                return s.path + ": cell " + std::to_string(r.index) +
                       " seed " + got + " does not match " + want +
                       " = splitSeed(campaign seed, index) -- shard "
                       "was run with different seeding";
            }
            seen[r.index] = true;
            merged[r.index] = r;
        }
    }
    for (std::size_t i = 0; i < gridSize; ++i) {
        if (!seen[i])
            return "missing cell " + std::to_string(i) + " (shard " +
                   std::to_string(i % first.shardCount) + "/" +
                   std::to_string(first.shardCount) +
                   " ran an incomplete slice)";
    }

    // Re-emit as the unsharded (0/1) form -- byte-identical to what a
    // single-process --report / --profile run writes.
    if (first.isProfile) {
        std::vector<ProfileCell> cells;
        cells.reserve(merged.size());
        for (const ScenarioResult &r : merged) {
            ProfileCell c;
            c.index = r.index;
            c.seed = splitSeed(first.campaignSeed, r.index);
            c.name = r.name;
            c.metrics = r.metrics;
            cells.push_back(std::move(c));
        }
        double dropped = 0;
        for (const ParsedShard &s : shards)
            dropped += s.traceDropped;
        const sim::BenchReport report = profileReportFromCells(
            first.grid, first.campaignSeed, gridSize, ShardSpec{0, 1},
            first.clock, first.manifest, dropped, {}, cells);
        if (!report.write(outPath))
            return "cannot write " + outPath;
        return "";
    }
    sim::BenchReport report = campaignReport(
        first.grid, first.campaignSeed, gridSize, ShardSpec{0, 1},
        merged);
    // Campaign metric shards are deterministic across hosts, so their
    // merge keeps the hostname-free manifest of the inputs (which the
    // sha check above proved consistent) rather than stamping the
    // merging host's.
    report.manifest(first.manifest);
    if (!report.write(outPath))
        return "cannot write " + outPath;
    return "";
}

} // namespace pktchase::runtime
