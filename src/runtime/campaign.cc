#include "campaign.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "runtime/spsc_ring.hh"
#include "sim/logging.hh"

namespace pktchase::runtime
{

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("PKTCHASE_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
        warn("ignoring invalid PKTCHASE_THREADS value");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 4 ? hw : 4;
}

Campaign::Campaign(const CampaignConfig &cfg)
    : cfg_(cfg)
{
}

std::vector<ScenarioResult>
Campaign::run(const std::vector<Scenario> &grid)
{
    std::vector<std::size_t> all(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        all[i] = i;
    return run(grid, all);
}

std::vector<ScenarioResult>
Campaign::run(const std::vector<Scenario> &grid,
              const std::vector<std::size_t> &subset)
{
    const auto t0 = std::chrono::steady_clock::now();

    for (std::size_t k = 0; k < subset.size(); ++k) {
        if (subset[k] >= grid.size())
            fatal("Campaign: subset index out of range");
        if (k > 0 && subset[k] <= subset[k - 1])
            fatal("Campaign: subset must be strictly increasing");
    }

    unsigned threads = cfg_.threads ? cfg_.threads : defaultThreads();
    if (threads > subset.size() && !subset.empty())
        threads = static_cast<unsigned>(subset.size());

    stats_ = CampaignStats{};
    stats_.threadsUsed = threads ? threads : 1;

    std::vector<ScenarioResult> results(subset.size());

    // Seeding uses the *full-grid* index, so a subset (shard) run
    // produces bit-identical cells to the same positions of an
    // unsharded run.
    auto runCell = [&](std::size_t index) {
        ScenarioContext ctx(index, cfg_.seed);
        // Cells run start-to-finish on one thread, so the thread-local
        // counter delta around the run is exactly this cell's work --
        // independent of which worker ran it or what ran before.
        const obs::StatSnapshot before = obs::snapshot();
        ScenarioResult r;
        {
            const obs::ScopedSpan span(grid[index].name, "cell");
            r = grid[index].run(ctx);
        }
        r.counters = (obs::snapshot() - before).toCounters();
        r.index = index;
        if (r.name.empty())
            r.name = grid[index].name;
        return r;
    };

    // subset is strictly increasing, so a result's slot in the output
    // vector is recoverable by binary search on its full-grid index.
    auto slotOf = [&subset](std::size_t index) {
        const auto it =
            std::lower_bound(subset.begin(), subset.end(), index);
        if (it == subset.end() || *it != index)
            panic("Campaign: result index not in subset");
        return static_cast<std::size_t>(it - subset.begin());
    };

    if (threads <= 1) {
        // Serial reference path: same per-cell seeding, trivial merge.
        for (std::size_t k = 0; k < subset.size(); ++k) {
            results[k] = runCell(subset[k]);
            if (cfg_.onResult)
                cfg_.onResult(results[k]);
        }
        stats_.scenariosRun = subset.size();
        stats_.wallSeconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        return results;
    }

    // The work-stealing fabric schedules subset *positions*: position
    // k seeds worker k % N's queue (static-shard placement), and idle
    // workers steal the tail of skewed grids instead of spinning.
    StealFabric fabric(subset.size(), threads, cfg_.stealQueueCapacity);

    // One SPSC result ring per worker: the worker is the only
    // producer, this (driver) thread the only consumer.
    std::vector<std::unique_ptr<SpscRing<ScenarioResult>>> rings;
    rings.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        rings.push_back(std::make_unique<SpscRing<ScenarioResult>>(
            cfg_.ringCapacity));

    // Per-worker stats shards, published by the join below.
    std::vector<std::uint64_t> fullRetries(threads, 0);

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            obs::attachWorkerThread(w);
            std::size_t position = 0;
            while (fabric.next(w, position)) {
                ScenarioResult r = runCell(subset[position]);
                while (!rings[w]->tryPush(std::move(r))) {
                    // Ring full: the driver is behind. Back off; the
                    // result stays intact because a failed tryPush
                    // never moves from its argument.
                    ++fullRetries[w];
                    std::this_thread::yield();
                }
            }
            obs::detachWorkerThread();
        });
    }

    // Drain rings until every cell has reported.
    std::size_t collected = 0;
    while (collected < subset.size()) {
        bool progress = false;
        for (unsigned w = 0; w < threads; ++w) {
            ScenarioResult r;
            while (rings[w]->tryPop(r)) {
                if (cfg_.onResult)
                    cfg_.onResult(r);
                results[slotOf(r.index)] = std::move(r);
                ++collected;
                progress = true;
            }
        }
        if (cfg_.onTick)
            cfg_.onTick(fabric.status());
        if (!progress) {
            // Scenarios run for milliseconds to seconds; don't burn a
            // core busy-polling empty rings while the workers (which
            // may already cover every hardware thread) compute.
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }

    for (std::thread &t : workers)
        t.join();

    stats_.scenariosRun = subset.size();
    for (std::uint64_t retries : fullRetries)
        stats_.ringFullRetries += retries;
    stats_.cellsStolen = fabric.cellsStolen();
    stats_.stealAttempts = fabric.stealAttempts();
    stats_.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return results;
}

} // namespace pktchase::runtime
