#include "campaign.hh"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "runtime/spsc_ring.hh"
#include "sim/logging.hh"

namespace pktchase::runtime
{

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("PKTCHASE_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
        warn("ignoring invalid PKTCHASE_THREADS value");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 4 ? hw : 4;
}

Campaign::Campaign(const CampaignConfig &cfg)
    : cfg_(cfg)
{
}

std::vector<ScenarioResult>
Campaign::run(const std::vector<Scenario> &grid)
{
    const auto t0 = std::chrono::steady_clock::now();

    unsigned threads = cfg_.threads ? cfg_.threads : defaultThreads();
    if (threads > grid.size() && !grid.empty())
        threads = static_cast<unsigned>(grid.size());

    stats_ = CampaignStats{};
    stats_.threadsUsed = threads ? threads : 1;

    std::vector<ScenarioResult> results(grid.size());

    auto runCell = [&](std::size_t index) {
        ScenarioContext ctx(index, cfg_.seed);
        // Cells run start-to-finish on one thread, so the thread-local
        // counter delta around the run is exactly this cell's work --
        // independent of which worker ran it or what ran before.
        const obs::StatSnapshot before = obs::snapshot();
        ScenarioResult r;
        {
            const obs::ScopedSpan span(grid[index].name, "cell");
            r = grid[index].run(ctx);
        }
        r.counters = (obs::snapshot() - before).toCounters();
        r.index = index;
        if (r.name.empty())
            r.name = grid[index].name;
        return r;
    };

    if (threads <= 1) {
        // Serial reference path: same per-cell seeding, trivial merge.
        for (std::size_t i = 0; i < grid.size(); ++i) {
            results[i] = runCell(i);
            if (cfg_.onResult)
                cfg_.onResult(results[i]);
        }
        stats_.scenariosRun = grid.size();
        stats_.wallSeconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        return results;
    }

    // One SPSC result ring per worker: the worker is the only
    // producer, this (driver) thread the only consumer.
    std::vector<std::unique_ptr<SpscRing<ScenarioResult>>> rings;
    rings.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        rings.push_back(std::make_unique<SpscRing<ScenarioResult>>(
            cfg_.ringCapacity));

    // Per-worker stats shards, published by the join below.
    std::vector<std::uint64_t> fullRetries(threads, 0);

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            obs::attachWorkerThread(w);
            // Static index sharding: worker w owns cells w, w+N, ...
            for (std::size_t i = w; i < grid.size(); i += threads) {
                ScenarioResult r = runCell(i);
                while (!rings[w]->tryPush(std::move(r))) {
                    // Ring full: the driver is behind. Back off; the
                    // result stays intact because a failed tryPush
                    // never moves from its argument.
                    ++fullRetries[w];
                    std::this_thread::yield();
                }
            }
            obs::detachWorkerThread();
        });
    }

    // Drain rings until every cell has reported.
    std::size_t collected = 0;
    while (collected < grid.size()) {
        bool progress = false;
        for (unsigned w = 0; w < threads; ++w) {
            ScenarioResult r;
            while (rings[w]->tryPop(r)) {
                if (r.index >= results.size())
                    panic("Campaign: result index out of range");
                if (cfg_.onResult)
                    cfg_.onResult(r);
                results[r.index] = std::move(r);
                ++collected;
                progress = true;
            }
        }
        if (!progress) {
            // Scenarios run for milliseconds to seconds; don't burn a
            // core busy-polling empty rings while the workers (which
            // may already cover every hardware thread) compute.
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }

    for (std::thread &t : workers)
        t.join();

    stats_.scenariosRun = grid.size();
    for (std::uint64_t retries : fullRetries)
        stats_.ringFullRetries += retries;
    stats_.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return results;
}

} // namespace pktchase::runtime
