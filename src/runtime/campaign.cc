#include "campaign.hh"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "runtime/spsc_ring.hh"
#include "sim/logging.hh"

namespace pktchase::runtime
{

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("PKTCHASE_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
        warn("ignoring invalid PKTCHASE_THREADS value");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 4 ? hw : 4;
}

Campaign::Campaign(const CampaignConfig &cfg)
    : cfg_(cfg)
{
}

std::vector<ScenarioResult>
Campaign::run(const std::vector<Scenario> &grid)
{
    std::vector<std::size_t> all(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        all[i] = i;
    return run(grid, all);
}

std::vector<ScenarioResult>
Campaign::run(const std::vector<Scenario> &grid,
              const std::vector<std::size_t> &subset)
{
    const auto t0 = std::chrono::steady_clock::now();

    for (std::size_t k = 0; k < subset.size(); ++k) {
        if (subset[k] >= grid.size())
            fatal("Campaign: subset index out of range");
        if (k > 0 && subset[k] <= subset[k - 1])
            fatal("Campaign: subset must be strictly increasing");
    }

    // The schedulable unit is one (cell, task) pair: monolithic cells
    // contribute one unit, decomposed cells Scenario::tasks units.
    // Units are flattened in (cell, task) order so the fabric's
    // round-robin pre-fill spreads a heavy cell's tasks across
    // workers from the start.
    struct TaskUnit
    {
        std::size_t slot; ///< Position in subset / results.
        std::size_t task; ///< Task index within the cell.
    };
    std::vector<TaskUnit> units;
    for (std::size_t k = 0; k < subset.size(); ++k) {
        const Scenario &sc = grid[subset[k]];
        validateScenario(sc);
        for (std::size_t t = 0; t < sc.taskCount(); ++t)
            units.push_back({k, t});
    }

    unsigned threads = cfg_.threads ? cfg_.threads : defaultThreads();
    if (threads > units.size() && !units.empty())
        threads = static_cast<unsigned>(units.size());

    stats_ = CampaignStats{};
    stats_.threadsUsed = threads ? threads : 1;

    std::vector<ScenarioResult> results(subset.size());

    // Seeding uses the *full-grid* index, so a subset (shard) run
    // produces bit-identical cells to the same positions of an
    // unsharded run. Units run start-to-finish on one thread, so the
    // thread-local counter delta around the run is exactly this
    // task's work -- independent of which worker ran it or what ran
    // before; foldScenarioParts sums the per-task deltas into the
    // cell's counters.
    auto runUnit = [&](std::size_t slot, std::size_t task) {
        const std::size_t index = subset[slot];
        const Scenario &sc = grid[index];
        // Profile windows bracket the unit exactly like the counter
        // snapshot: discard whatever accumulated since the thread's
        // last unit (scheduling, ring backoff), run, then drain this
        // unit's stats into the result. Units run start-to-finish on
        // one thread, so the drained window is exactly this task's
        // spans regardless of which worker ran it.
        const bool prof = obs::profiling();
        if (prof)
            obs::drainProfile();
        const obs::StatSnapshot before = obs::snapshot();
        ScenarioResult r;
        if (sc.decomposed()) {
            static const obs::ProfilePhase kTaskPhase{"fabric.task",
                                                      "fabric.task"};
            const obs::ScopedSpan span(
                sc.name + "#" + std::to_string(task), kTaskPhase);
            r = runScenarioTask(sc, index, cfg_.seed, task);
        } else {
            static const obs::ProfilePhase kCellPhase{"cell", "cell"};
            const obs::ScopedSpan span(sc.name, kCellPhase);
            r = runScenarioTask(sc, index, cfg_.seed, task);
        }
        r.counters = (obs::snapshot() - before).toCounters();
        if (prof)
            r.profile = obs::drainProfile();
        return r;
    };

    // Fold a cell's ordered parts into results[slot]. Driver-side (or
    // serial): fold is pure, so where it runs cannot matter -- keeping
    // it off the workers means a cell's fold never competes with
    // another cell's simulation for the worker's cache.
    auto finishCell = [&](std::size_t slot,
                          std::vector<ScenarioResult> &&parts) {
        results[slot] = foldScenarioParts(grid[subset[slot]],
                                          subset[slot],
                                          std::move(parts));
        if (cfg_.onResult)
            cfg_.onResult(results[slot]);
    };

    if (threads <= 1) {
        // Serial reference path: units in (cell, task) order, same
        // per-unit seeding and snapshot windows as the parallel path,
        // trivial merge. The scheduling bump lands between snapshot
        // windows so per-task deltas stay scheduling-free.
        for (std::size_t k = 0; k < subset.size(); ++k) {
            const std::size_t count = grid[subset[k]].taskCount();
            std::vector<ScenarioResult> parts;
            parts.reserve(count);
            for (std::size_t t = 0; t < count; ++t) {
                parts.push_back(runUnit(k, t));
                obs::bump(obs::Stat::TasksExecuted);
            }
            finishCell(k, std::move(parts));
        }
        stats_.scenariosRun = subset.size();
        stats_.tasksRun = units.size();
        stats_.wallSeconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        return results;
    }

    // The work-stealing fabric schedules unit indices: unit u seeds
    // worker u % N's queue (static-shard placement), and idle workers
    // steal the tail of skewed grids instead of spinning. With every
    // cell monolithic this degenerates to the old cell-granular
    // schedule; a decomposed heavy cell's tasks spread across workers,
    // which is what breaks the tail-cell makespan bound.
    StealFabric fabric(units.size(), threads, cfg_.stealQueueCapacity);

    // One SPSC result ring per worker carrying (slot, task, partial)
    // envelopes: the worker is the only producer, this (driver)
    // thread the only consumer.
    struct TaskEnvelope
    {
        std::size_t slot = 0;
        std::size_t task = 0;
        ScenarioResult result;
    };
    std::vector<std::unique_ptr<SpscRing<TaskEnvelope>>> rings;
    rings.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        rings.push_back(std::make_unique<SpscRing<TaskEnvelope>>(
            cfg_.ringCapacity));

    // Per-worker stats shards, published by the join below.
    std::vector<std::uint64_t> fullRetries(threads, 0);

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            obs::attachWorkerThread(w);
            std::size_t u = 0;
            bool stolen = false;
            while (fabric.next(w, u, stolen)) {
                TaskEnvelope env;
                env.slot = units[u].slot;
                env.task = units[u].task;
                env.result = runUnit(env.slot, env.task);
                // Scheduling counters land between the per-unit
                // snapshot windows, so per-task deltas report 0.
                obs::bump(obs::Stat::TasksExecuted);
                if (stolen)
                    obs::bump(obs::Stat::TasksStolen);
                while (!rings[w]->tryPush(std::move(env))) {
                    // Ring full: the driver is behind. Back off; the
                    // envelope stays intact because a failed tryPush
                    // never moves from its argument.
                    ++fullRetries[w];
                    std::this_thread::yield();
                }
            }
            obs::detachWorkerThread();
        });
    }

    // Drain rings, accumulating each cell's parts by task index and
    // folding as soon as its last task lands, until every cell has
    // reported. Completion order is scheduling-dependent; the fold
    // input order (task index) and the merge order (slot) are not.
    struct CellAccum
    {
        std::vector<ScenarioResult> parts;
        std::size_t remaining = 0;
    };
    std::vector<CellAccum> accum(subset.size());
    for (std::size_t k = 0; k < subset.size(); ++k) {
        accum[k].remaining = grid[subset[k]].taskCount();
        accum[k].parts.resize(accum[k].remaining);
    }

    std::size_t collectedCells = 0;
    while (collectedCells < subset.size()) {
        bool progress = false;
        for (unsigned w = 0; w < threads; ++w) {
            TaskEnvelope env;
            while (rings[w]->tryPop(env)) {
                CellAccum &a = accum[env.slot];
                a.parts[env.task] = std::move(env.result);
                if (--a.remaining == 0) {
                    finishCell(env.slot, std::move(a.parts));
                    ++collectedCells;
                }
                progress = true;
            }
        }
        if (cfg_.onTick)
            cfg_.onTick(fabric.status());
        if (!progress) {
            // Scenarios run for milliseconds to seconds; don't burn a
            // core busy-polling empty rings while the workers (which
            // may already cover every hardware thread) compute.
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }

    for (std::thread &t : workers)
        t.join();

    stats_.scenariosRun = subset.size();
    stats_.tasksRun = units.size();
    for (std::uint64_t retries : fullRetries)
        stats_.ringFullRetries += retries;
    stats_.tasksStolen = fabric.cellsStolen();
    stats_.stealAttempts = fabric.stealAttempts();
    stats_.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return results;
}

} // namespace pktchase::runtime
