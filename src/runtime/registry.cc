#include "registry.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace pktchase::runtime
{

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry;
    return registry;
}

void
ScenarioRegistry::add(const std::string &name,
                      const std::string &description,
                      ScenarioFactory factory)
{
    for (Entry &e : entries_) {
        if (e.name == name) {
            e.description = description;
            e.factory = std::move(factory);
            return;
        }
    }
    entries_.push_back({name, description, std::move(factory)});
}

const ScenarioRegistry::Entry *
ScenarioRegistry::find(const std::string &name) const
{
    for (const Entry &e : entries_)
        if (e.name == name)
            return &e;
    return nullptr;
}

std::vector<Scenario>
ScenarioRegistry::make(const std::string &name) const
{
    const Entry *e = find(name);
    if (!e)
        fatal("no scenario grid registered under '" + name + "'");
    return e->factory();
}

bool
ScenarioRegistry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

std::string
ScenarioRegistry::description(const std::string &name) const
{
    const Entry *e = find(name);
    if (!e)
        fatal("no scenario grid registered under '" + name + "'");
    return e->description;
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.name);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace pktchase::runtime
