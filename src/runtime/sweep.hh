/**
 * @file
 * Campaign front-end for benches and workload sweeps.
 *
 * runtime::sweep() is the one call a bench needs: it resolves the
 * worker-thread count (PKTCHASE_THREADS overrides the default), runs
 * the grid through a Campaign, optionally narrates progress, and
 * returns merged results in grid order for the caller to format into
 * its paper-style table. A name-based overload pulls the grid from the
 * ScenarioRegistry so front-ends can expose every registered
 * experiment without knowing how to build any of them.
 */

#ifndef PKTCHASE_RUNTIME_SWEEP_HH
#define PKTCHASE_RUNTIME_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/campaign.hh"
#include "runtime/scenario.hh"

namespace pktchase::runtime
{

/** Options for sweep(); the defaults suit the benches. */
struct SweepOptions
{
    unsigned threads = 0;        ///< 0: PKTCHASE_THREADS or max(4, hw).
    std::uint64_t seed = 1;      ///< Campaign seed.
    bool verbose = true;         ///< Print the thread/cell/time banner.
    /** Suppress live progress. Progress also stays off when stderr is
     *  not a TTY (CI logs, redirections), so only interactive runs see
     *  the "cells done/total" line. */
    bool quiet = false;
};

/**
 * Run @p grid across worker threads and return merged results in grid
 * order. Deterministic in everything except wall-clock timing.
 */
std::vector<ScenarioResult> sweep(const std::vector<Scenario> &grid,
                                  const SweepOptions &opt = SweepOptions{});

/** Run the registry grid named @p name; fatal when unregistered. */
std::vector<ScenarioResult> sweep(const std::string &name,
                                  const SweepOptions &opt = SweepOptions{});

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_SWEEP_HH
