/**
 * @file
 * Campaign front-end for benches and workload sweeps.
 *
 * runtime::sweep() is the one call a bench needs: it resolves the
 * worker-thread count (PKTCHASE_THREADS overrides the default), runs
 * the grid through a Campaign on the work-stealing fabric, optionally
 * narrates progress, and returns merged results in grid order for the
 * caller to format into its paper-style table. A name-based overload
 * pulls the grid from the ScenarioRegistry so front-ends can expose
 * every registered experiment without knowing how to build any of
 * them. SweepOptions::subset restricts a run to a deterministic slice
 * of the grid -- the multi-process shard layer's entry point.
 */

#ifndef PKTCHASE_RUNTIME_SWEEP_HH
#define PKTCHASE_RUNTIME_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/campaign.hh"
#include "runtime/scenario.hh"

namespace pktchase::runtime
{

/** Options for sweep(); the defaults suit the benches. */
struct SweepOptions
{
    unsigned threads = 0;        ///< 0: PKTCHASE_THREADS or max(4, hw).
    std::uint64_t seed = 1;      ///< Campaign seed.
    bool verbose = true;         ///< Print the thread/cell/time banner.
    /** Suppress live progress. Progress also stays off when stderr is
     *  not a TTY (CI logs, redirections), so only interactive runs see
     *  the "cells done/total" line. When on, the line also reports the
     *  per-worker fabric queue depths and the steal counters, so a
     *  skewed grid is diagnosable from the terminal. */
    bool quiet = false;
    /** Rich progress (--progress=rich): the live line additionally
     *  shows the hottest profiled phase and its share of self time,
     *  accumulated from the per-cell profile drains as cells finish.
     *  Needs an active obs::ProfileSession to have anything to show
     *  (the campaign front-end opens one); same TTY/quiet gating as
     *  the plain line, and like it never touches the results. */
    bool richProgress = false;
    /** When non-empty: run only these full-grid indices (strictly
     *  increasing). Cells keep their full-grid seeds, so a sliced run
     *  is bit-identical to the same cells of a full run. */
    std::vector<std::size_t> subset;
};

/**
 * Run @p grid across worker threads and return merged results in grid
 * order (subset order when SweepOptions::subset is set). Deterministic
 * in everything except wall-clock timing.
 */
std::vector<ScenarioResult> sweep(const std::vector<Scenario> &grid,
                                  const SweepOptions &opt = SweepOptions{});

/** Run the registry grid named @p name; fatal when unregistered. */
std::vector<ScenarioResult> sweep(const std::string &name,
                                  const SweepOptions &opt = SweepOptions{});

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_SWEEP_HH
