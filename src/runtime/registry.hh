/**
 * @file
 * Named scenario-grid registry.
 *
 * A grid factory maps a name ("fig14", "fig16", ...) to the vector of
 * Scenarios that make up that experiment's cells, so adding a new
 * scenario axis to the campaign front-end is one registry entry.
 * Factories are registered explicitly (e.g. by
 * workload::registerDefenseScenarios()) rather than via static
 * initializers, which a static-archive link would silently drop.
 */

#ifndef PKTCHASE_RUNTIME_REGISTRY_HH
#define PKTCHASE_RUNTIME_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "runtime/scenario.hh"

namespace pktchase::runtime
{

/** Builds the scenario cells of one named experiment grid. */
using ScenarioFactory = std::function<std::vector<Scenario>()>;

/**
 * Process-wide registry of named scenario grids.
 */
class ScenarioRegistry
{
  public:
    /** The process-wide instance. */
    static ScenarioRegistry &instance();

    /**
     * Register @p factory under @p name. Re-registering a name
     * replaces the previous entry (handy in tests).
     */
    void add(const std::string &name, const std::string &description,
             ScenarioFactory factory);

    /** Instantiate the grid registered under @p name; fatal if unknown. */
    std::vector<Scenario> make(const std::string &name) const;

    /** Whether @p name is registered. */
    bool contains(const std::string &name) const;

    /**
     * One-line description of @p name; fatal if unknown. Returned by
     * value: entries live in a vector, so references into it would
     * dangle across a later add().
     */
    std::string description(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    struct Entry
    {
        std::string name;
        std::string description;
        ScenarioFactory factory;
    };

    const Entry *find(const std::string &name) const;

    std::vector<Entry> entries_;
};

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_REGISTRY_HH
