#include "sweep.hh"

#include <chrono>
#include <cstdio>
#include <memory>

#include <unistd.h>

#include "runtime/registry.hh"

namespace pktchase::runtime
{

namespace
{

/**
 * Throttled "cells done/total" line on stderr. Progress is cosmetic:
 * it is driven from Campaign's onResult hook (driver thread only, so
 * no locking) and never touches the results, keeping the merged
 * output bit-identical with progress on or off.
 */
class ProgressMeter
{
  public:
    explicit ProgressMeter(std::size_t total)
        : total_(total), start_(std::chrono::steady_clock::now())
    {
    }

    void
    onCell()
    {
        ++done_;
        const auto now = std::chrono::steady_clock::now();
        // Repainting per cell would melt the terminal on 100-cell
        // grids of millisecond scenarios; 200 ms is smooth enough.
        if (done_ < total_ && now - lastPaint_ < throttle_)
            return;
        lastPaint_ = now;
        const double elapsed =
            std::chrono::duration<double>(now - start_).count();
        std::fprintf(stderr, "\r  [%zu/%zu cells, %.1f s]", done_,
                     total_, elapsed);
        std::fflush(stderr);
    }

    ~ProgressMeter()
    {
        // Clear the line so the report starts at column 0.
        std::fprintf(stderr, "\r\033[K");
        std::fflush(stderr);
    }

  private:
    const std::size_t total_;
    std::size_t done_ = 0;
    const std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastPaint_{};
    static constexpr std::chrono::milliseconds throttle_{200};
};

} // namespace

std::vector<ScenarioResult>
sweep(const std::vector<Scenario> &grid, const SweepOptions &opt)
{
    CampaignConfig cfg;
    cfg.threads = opt.threads;
    cfg.seed = opt.seed;

    std::unique_ptr<ProgressMeter> meter;
    if (!opt.quiet && isatty(fileno(stderr))) {
        meter = std::make_unique<ProgressMeter>(grid.size());
        cfg.onResult = [&meter](const ScenarioResult &) {
            meter->onCell();
        };
    }

    Campaign campaign(cfg);
    std::vector<ScenarioResult> results = campaign.run(grid);
    meter.reset();

    if (opt.verbose) {
        const CampaignStats &s = campaign.stats();
        std::printf("  [campaign: %zu cells on %u threads, seed %llu, "
                    "%.2f s]\n\n",
                    s.scenariosRun, s.threadsUsed,
                    static_cast<unsigned long long>(cfg.seed),
                    s.wallSeconds);
    }
    return results;
}

std::vector<ScenarioResult>
sweep(const std::string &name, const SweepOptions &opt)
{
    return sweep(ScenarioRegistry::instance().make(name), opt);
}

} // namespace pktchase::runtime
