#include "sweep.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include <unistd.h>

#include "runtime/registry.hh"

namespace pktchase::runtime
{

namespace
{

/**
 * Throttled "cells done/total" line on stderr, with the fabric's
 * per-worker queue depths and steal counters when the campaign runs
 * in parallel. Progress is cosmetic: it is driven from Campaign's
 * onResult/onTick hooks (driver thread only, so no locking) and never
 * touches the results, keeping the merged output bit-identical with
 * progress on or off.
 */
class ProgressMeter
{
  public:
    ProgressMeter(std::size_t total, std::size_t taskTotal, bool rich)
        : total_(total), taskTotal_(taskTotal), rich_(rich),
          start_(std::chrono::steady_clock::now())
    {
    }

    void
    onCell(const ScenarioResult &r)
    {
        ++done_;
        if (rich_ && !r.profile.empty())
            obs::mergeProfileInto(profile_, r.profile);
        maybePaint(done_ == total_);
    }

    void
    onTick(const FabricStatus &status)
    {
        fabric_ = status;
        haveFabric_ = true;
        maybePaint(false);
    }

    ~ProgressMeter()
    {
        // Clear the line so the report starts at column 0.
        std::fprintf(stderr, "\r\033[K");
        std::fflush(stderr);
    }

  private:
    void
    maybePaint(bool force)
    {
        const auto now = std::chrono::steady_clock::now();
        // Repainting per cell would melt the terminal on 100-cell
        // grids of millisecond scenarios; 200 ms is smooth enough.
        if (!force && now - lastPaint_ < throttle_)
            return;
        lastPaint_ = now;
        const double elapsed =
            std::chrono::duration<double>(now - start_).count();
        std::string line = "\r  [" + std::to_string(done_) + "/" +
                           std::to_string(total_) + " cells, ";
        // Task depth: only worth a column when some cell decomposes
        // into sub-cell tasks (taskTotal > cellTotal). Done-counts
        // come from the fabric sample, so serial runs (no fabric)
        // skip it too.
        if (taskTotal_ > total_ && haveFabric_)
            line += std::to_string(fabric_.cellsExecuted) + "/" +
                    std::to_string(taskTotal_) + " tasks, ";
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.1f s", elapsed);
        line += buf;
        if (haveFabric_) {
            // "q 3/2/0/1+4" = per-worker queue depths, "+N" the
            // injection-queue spill; steals as hits/attempts.
            line += " | q ";
            for (std::size_t w = 0; w < fabric_.queueDepth.size(); ++w) {
                if (w)
                    line += '/';
                line += std::to_string(fabric_.queueDepth[w]);
            }
            if (fabric_.injectionDepth)
                line += "+" + std::to_string(fabric_.injectionDepth);
            line += " | steals " +
                    std::to_string(fabric_.cellsStolen) + "/" +
                    std::to_string(fabric_.stealAttempts);
        }
        // Rich mode: the hottest phase by accumulated self time and
        // its share -- the profile's headline number, live.
        if (rich_) {
            std::uint64_t selfTotal = 0;
            std::size_t top = profile_.size();
            std::uint64_t topSelf = 0;
            for (std::size_t id = 0; id < profile_.size(); ++id) {
                selfTotal += profile_[id].selfNs;
                if (profile_[id].selfNs > topSelf) {
                    topSelf = profile_[id].selfNs;
                    top = id;
                }
            }
            if (top < profile_.size() && selfTotal > 0) {
                std::snprintf(buf, sizeof(buf), " | top %s %.0f%%",
                              obs::phaseName(top),
                              100.0 * static_cast<double>(topSelf) /
                                  static_cast<double>(selfTotal));
                line += buf;
            }
        }
        line += "]\033[K";
        std::fputs(line.c_str(), stderr);
        std::fflush(stderr);
    }

    const std::size_t total_;
    const std::size_t taskTotal_;
    const bool rich_;
    obs::ProfileDelta profile_; ///< Rich mode: finished cells' sum.
    std::size_t done_ = 0;
    FabricStatus fabric_;
    bool haveFabric_ = false;
    const std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastPaint_{};
    static constexpr std::chrono::milliseconds throttle_{200};
};

} // namespace

std::vector<ScenarioResult>
sweep(const std::vector<Scenario> &grid, const SweepOptions &opt)
{
    CampaignConfig cfg;
    cfg.threads = opt.threads;
    cfg.seed = opt.seed;

    const std::size_t cells =
        opt.subset.empty() ? grid.size() : opt.subset.size();
    std::size_t tasks = 0;
    if (opt.subset.empty()) {
        for (const Scenario &s : grid)
            tasks += s.taskCount();
    } else {
        for (std::size_t index : opt.subset)
            tasks += grid[index].taskCount();
    }

    std::unique_ptr<ProgressMeter> meter;
    if (!opt.quiet && isatty(fileno(stderr))) {
        meter = std::make_unique<ProgressMeter>(cells, tasks,
                                                opt.richProgress);
        cfg.onResult = [&meter](const ScenarioResult &r) {
            meter->onCell(r);
        };
        cfg.onTick = [&meter](const FabricStatus &status) {
            meter->onTick(status);
        };
    }

    Campaign campaign(cfg);
    std::vector<ScenarioResult> results =
        opt.subset.empty() ? campaign.run(grid)
                           : campaign.run(grid, opt.subset);
    meter.reset();

    if (opt.verbose) {
        const CampaignStats &s = campaign.stats();
        std::printf("  [campaign: %zu cells (%zu tasks) on %u threads, "
                    "seed %llu, %.2f s, %llu stolen/%llu steal "
                    "attempts]\n\n",
                    s.scenariosRun, s.tasksRun, s.threadsUsed,
                    static_cast<unsigned long long>(cfg.seed),
                    s.wallSeconds,
                    static_cast<unsigned long long>(s.tasksStolen),
                    static_cast<unsigned long long>(s.stealAttempts));
    }
    return results;
}

std::vector<ScenarioResult>
sweep(const std::string &name, const SweepOptions &opt)
{
    return sweep(ScenarioRegistry::instance().make(name), opt);
}

} // namespace pktchase::runtime
