#include "sweep.hh"

#include <cstdio>

#include "runtime/registry.hh"

namespace pktchase::runtime
{

std::vector<ScenarioResult>
sweep(const std::vector<Scenario> &grid, const SweepOptions &opt)
{
    CampaignConfig cfg;
    cfg.threads = opt.threads;
    cfg.seed = opt.seed;

    Campaign campaign(cfg);
    std::vector<ScenarioResult> results = campaign.run(grid);

    if (opt.verbose) {
        const CampaignStats &s = campaign.stats();
        std::printf("  [campaign: %zu cells on %u threads, seed %llu, "
                    "%.2f s]\n\n",
                    s.scenariosRun, s.threadsUsed,
                    static_cast<unsigned long long>(cfg.seed),
                    s.wallSeconds);
    }
    return results;
}

std::vector<ScenarioResult>
sweep(const std::string &name, const SweepOptions &opt)
{
    return sweep(ScenarioRegistry::instance().make(name), opt);
}

} // namespace pktchase::runtime
