/**
 * @file
 * The Campaign executor: schedule a scenario grid across worker
 * threads on the work-stealing fabric, hand results back over
 * lock-free SPSC rings, merge deterministically.
 *
 * The schedulable unit is one (cell, task) pair: a monolithic cell is
 * one unit, a cell on the sub-cell decomposition contract
 * (Scenario::tasks/runTask/fold, see scenario.hh) is Scenario::tasks
 * units -- so a single heavy trial-loop cell spreads across workers
 * instead of bounding the makespan. Scheduling is the StealFabric's:
 * unit u seeds worker u % N's queue (the old static-shard placement),
 * but an idle worker steals from loaded neighbours instead of
 * exiting. Each worker pushes finished task results into its own
 * SpscRing as (slot, task, partial) envelopes; the driver thread
 * polls the rings, accumulates each cell's parts by task index, folds
 * a cell the moment its last task lands, and places the folded result
 * at its grid index. Because every task's randomness derives only
 * from (campaign seed, grid index, task index) -- never from the
 * worker that happened to run it -- the fold input is ordered by task
 * index, and the merge is by grid index, a run with N threads is
 * bit-identical to threads=1 whether or not any unit was stolen; the
 * determinism tests assert that byte-for-byte on the formatted
 * report.
 *
 * A campaign can also run a *subset* of a grid (the multi-process
 * shard layer's slice, see runtime/fabric/shard.hh): cells keep their
 * full-grid indices, so a sharded cell is bit-identical to the same
 * cell in an unsharded run.
 */

#ifndef PKTCHASE_RUNTIME_CAMPAIGN_HH
#define PKTCHASE_RUNTIME_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/fabric/fabric.hh"
#include "runtime/scenario.hh"

namespace pktchase::runtime
{

/** Campaign execution knobs. */
struct CampaignConfig
{
    /** Worker threads; 0 picks defaultThreads(). */
    unsigned threads = 0;

    /** Campaign seed every scenario stream is split from. */
    std::uint64_t seed = 1;

    /** Per-worker result-ring capacity (rounded up to a power of 2). */
    std::size_t ringCapacity = 64;

    /** Per-worker fabric queue capacity; overflow spills into the
     *  shared injection queue. */
    std::size_t stealQueueCapacity = StealFabric::kDefaultQueueCapacity;

    /**
     * Called on the driver thread as each result is collected, in
     * completion order (NOT grid order -- completion order depends on
     * thread scheduling; only the merged results are deterministic).
     */
    std::function<void(const ScenarioResult &)> onResult;

    /**
     * Called on the driver thread each collection pass with a live
     * fabric sample (queue depths, steals). Purely observational --
     * sampling never touches results. Not called on serial runs
     * (threads <= 1), which have no fabric.
     */
    std::function<void(const FabricStatus &)> onTick;
};

/** Execution counters, aggregated from the per-worker shards. */
struct CampaignStats
{
    std::size_t scenariosRun = 0;
    /** Schedulable (cell, task) units run; == scenariosRun when no
     *  cell decomposes. */
    std::size_t tasksRun = 0;
    unsigned threadsUsed = 0;
    /** Producer-side full-ring retries (backpressure indicator). */
    std::uint64_t ringFullRetries = 0;
    /** Units a worker stole from another worker's queue (task
     *  granularity under the decomposition contract). */
    std::uint64_t tasksStolen = 0;
    /** Steal probes of foreign queues, successful or not. */
    std::uint64_t stealAttempts = 0;
    /** Wall-clock seconds for the whole grid (not deterministic). */
    double wallSeconds = 0.0;
};

/**
 * Runs scenario grids. Reusable: each run() is independent.
 */
class Campaign
{
  public:
    explicit Campaign(const CampaignConfig &cfg = CampaignConfig{});

    /**
     * Run every cell of @p grid and return the merged results, index
     * for index with @p grid (results[i] came from grid[i]).
     */
    std::vector<ScenarioResult> run(const std::vector<Scenario> &grid);

    /**
     * Run only the cells of @p grid named by @p subset (strictly
     * increasing full-grid indices). Each cell is seeded with its
     * full-grid index, so results are bit-identical to the same cells
     * of an unsharded run. Returns results in @p subset order with
     * ScenarioResult::index holding the full-grid index.
     */
    std::vector<ScenarioResult> run(const std::vector<Scenario> &grid,
                                    const std::vector<std::size_t> &subset);

    /** Counters of the most recent run(). */
    const CampaignStats &stats() const { return stats_; }

    const CampaignConfig &config() const { return cfg_; }

  private:
    CampaignConfig cfg_;
    CampaignStats stats_;
};

/**
 * Worker-thread count used when CampaignConfig::threads == 0: the
 * PKTCHASE_THREADS environment variable when set, otherwise
 * max(4, hardware concurrency) -- the Fig. 14 sweep is specified to
 * run across at least four workers.
 */
unsigned defaultThreads();

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_CAMPAIGN_HH
