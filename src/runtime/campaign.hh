/**
 * @file
 * The Campaign executor: shard a scenario grid across worker threads,
 * hand results back over lock-free SPSC rings, merge deterministically.
 *
 * Sharding is static and index-based (worker w runs cells w, w+N,
 * w+2N, ...), each worker pushes finished ScenarioResults into its own
 * SpscRing, and the driver thread polls the rings and places each
 * result at its grid index. Because every cell's randomness derives
 * only from (campaign seed, grid index) and the merge is by index, a
 * run with N threads is bit-identical to threads=1 -- the property the
 * determinism test asserts byte-for-byte on the formatted report.
 */

#ifndef PKTCHASE_RUNTIME_CAMPAIGN_HH
#define PKTCHASE_RUNTIME_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/scenario.hh"

namespace pktchase::runtime
{

/** Campaign execution knobs. */
struct CampaignConfig
{
    /** Worker threads; 0 picks defaultThreads(). */
    unsigned threads = 0;

    /** Campaign seed every scenario stream is split from. */
    std::uint64_t seed = 1;

    /** Per-worker result-ring capacity (rounded up to a power of 2). */
    std::size_t ringCapacity = 64;

    /**
     * Called on the driver thread as each result is collected, in
     * completion order (NOT grid order -- completion order depends on
     * thread scheduling; only the merged results are deterministic).
     */
    std::function<void(const ScenarioResult &)> onResult;
};

/** Execution counters, aggregated from the per-worker shards. */
struct CampaignStats
{
    std::size_t scenariosRun = 0;
    unsigned threadsUsed = 0;
    /** Producer-side full-ring retries (backpressure indicator). */
    std::uint64_t ringFullRetries = 0;
    /** Wall-clock seconds for the whole grid (not deterministic). */
    double wallSeconds = 0.0;
};

/**
 * Runs scenario grids. Reusable: each run() is independent.
 */
class Campaign
{
  public:
    explicit Campaign(const CampaignConfig &cfg = CampaignConfig{});

    /**
     * Run every cell of @p grid and return the merged results, index
     * for index with @p grid (results[i] came from grid[i]).
     */
    std::vector<ScenarioResult> run(const std::vector<Scenario> &grid);

    /** Counters of the most recent run(). */
    const CampaignStats &stats() const { return stats_; }

    const CampaignConfig &config() const { return cfg_; }

  private:
    CampaignConfig cfg_;
    CampaignStats stats_;
};

/**
 * Worker-thread count used when CampaignConfig::threads == 0: the
 * PKTCHASE_THREADS environment variable when set, otherwise
 * max(4, hardware concurrency) -- the Fig. 14 sweep is specified to
 * run across at least four workers.
 */
unsigned defaultThreads();

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_CAMPAIGN_HH
