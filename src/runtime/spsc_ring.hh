/**
 * @file
 * Fixed-size lock-free single-producer/single-consumer result ring.
 *
 * Each campaign worker owns one SpscRing and is its only producer; the
 * campaign driver is the only consumer. Head and tail live on separate
 * cache lines (the classic concurrent-ringbuffer layout) so the
 * producer's stores never invalidate the consumer's line and vice
 * versa, and each side keeps a cached copy of the opposite cursor so
 * the common case touches no shared line at all. All cross-thread
 * ordering is acquire/release: the producer's tail store releases the
 * slot write, the consumer's tail load acquires it.
 */

#ifndef PKTCHASE_RUNTIME_SPSC_RING_HH
#define PKTCHASE_RUNTIME_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace pktchase::runtime
{

/** Cache-line size used for padding (matches blockBytes everywhere). */
constexpr std::size_t cacheLineBytes = 64;

/**
 * Bounded lock-free SPSC queue of movable values.
 *
 * Exactly one thread may call tryPush() and exactly one thread may
 * call tryPop(); under that contract every operation is wait-free.
 */
template <typename T>
class SpscRing
{
  public:
    /** Construct with space for @p capacity items (rounded up to 2^k). */
    explicit SpscRing(std::size_t capacity)
        : mask_(bitCeil64(capacity < 2 ? 2 : capacity) - 1),
          slots_(mask_ + 1)
    {
        if (capacity == 0)
            fatal("SpscRing requires a nonzero capacity");
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Number of item slots. */
    std::size_t capacity() const { return mask_ + 1; }

    /**
     * Producer side: enqueue @p item. Returns false (item untouched)
     * when the ring is full.
     */
    bool
    tryPush(T &&item)
    {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - cachedHead_ > mask_) {
            // Looks full; refresh the consumer cursor and re-check.
            cachedHead_ = head_.load(std::memory_order_acquire);
            if (tail - cachedHead_ > mask_)
                return false;
        }
        slots_[tail & mask_] = std::move(item);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side: dequeue into @p out. Returns false when the ring
     * is empty.
     */
    bool
    tryPop(T &out)
    {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        if (head == cachedTail_) {
            // Looks empty; refresh the producer cursor and re-check.
            cachedTail_ = tail_.load(std::memory_order_acquire);
            if (head == cachedTail_)
                return false;
        }
        out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Consumer-side view: true when no items are visible. */
    bool
    empty() const
    {
        return head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_acquire);
    }

  private:
    const std::uint64_t mask_;
    std::vector<T> slots_;

    /** Consumer cursor plus the consumer's cached copy of the tail. */
    alignas(cacheLineBytes) std::atomic<std::uint64_t> head_{0};
    std::uint64_t cachedTail_ = 0;

    /** Producer cursor plus the producer's cached copy of the head. */
    alignas(cacheLineBytes) std::atomic<std::uint64_t> tail_{0};
    std::uint64_t cachedHead_ = 0;

    /** Keep whatever follows the ring off the producer's line. */
    [[maybe_unused]] char pad_[cacheLineBytes -
                               sizeof(std::atomic<std::uint64_t>) -
                               sizeof(std::uint64_t)];
};

} // namespace pktchase::runtime

#endif // PKTCHASE_RUNTIME_SPSC_RING_HH
