/**
 * @file
 * Per-process virtual address spaces.
 *
 * The spy is an unprivileged process: it sees only virtual addresses and
 * cannot read /proc/self/pagemap. Its eviction-set construction therefore
 * has to work from timing alone. The AddressSpace maps virtual pages to
 * whatever (randomized) frames PhysMem hands out, modelling exactly that
 * constraint.
 */

#ifndef PKTCHASE_MEM_ADDRESS_SPACE_HH
#define PKTCHASE_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/phys_mem.hh"
#include "sim/types.hh"

namespace pktchase::mem
{

/**
 * A sparse virtual-to-physical page mapping for one simulated process.
 */
class AddressSpace
{
  public:
    /**
     * @param phys  Backing physical memory (not owned; must outlive us).
     * @param owner Accounting tag used for frames mapped by this space.
     */
    AddressSpace(PhysMem &phys, Owner owner);

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /**
     * Map @p pages fresh anonymous pages at the first unused virtual
     * page range and return the starting virtual address.
     */
    Addr mmap(std::size_t pages);

    /** Unmap and free a single previously mapped page. */
    void munmapPage(Addr vaddr);

    /**
     * Translate a virtual address to physical.
     * Panics on unmapped addresses (a segfault in the real system).
     */
    Addr translate(Addr vaddr) const;

    /** Whether the page containing @p vaddr is mapped. */
    bool mapped(Addr vaddr) const;

    /** Number of currently mapped pages. */
    std::size_t pageCount() const { return pageTable_.size(); }

  private:
    PhysMem &phys_;
    Owner owner_;
    Addr nextVpn_ = 0x10000; ///< Arbitrary nonzero mmap base.
    std::unordered_map<Addr, Addr> pageTable_; ///< vpn -> frame base.
};

} // namespace pktchase::mem

#endif // PKTCHASE_MEM_ADDRESS_SPACE_HH
