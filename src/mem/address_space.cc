#include "address_space.hh"

#include "sim/logging.hh"

namespace pktchase::mem
{

AddressSpace::AddressSpace(PhysMem &phys, Owner owner)
    : phys_(phys), owner_(owner)
{
}

Addr
AddressSpace::mmap(std::size_t pages)
{
    if (pages == 0)
        panic("AddressSpace::mmap of zero pages");
    const Addr base_vpn = nextVpn_;
    for (std::size_t i = 0; i < pages; ++i) {
        const Addr vpn = nextVpn_++;
        pageTable_[vpn] = phys_.allocFrame(owner_);
    }
    return base_vpn * pageBytes;
}

void
AddressSpace::munmapPage(Addr vaddr)
{
    const Addr vpn = vaddr / pageBytes;
    auto it = pageTable_.find(vpn);
    if (it == pageTable_.end())
        panic("AddressSpace::munmapPage of unmapped page");
    phys_.freeFrame(it->second);
    pageTable_.erase(it);
}

Addr
AddressSpace::translate(Addr vaddr) const
{
    const Addr vpn = vaddr / pageBytes;
    auto it = pageTable_.find(vpn);
    if (it == pageTable_.end())
        panic("AddressSpace::translate fault (unmapped page)");
    return it->second + (vaddr & (pageBytes - 1));
}

bool
AddressSpace::mapped(Addr vaddr) const
{
    return pageTable_.count(vaddr / pageBytes) != 0;
}

} // namespace pktchase::mem
