#include "phys_mem.hh"

#include <numeric>

#include "sim/logging.hh"

namespace pktchase::mem
{

PhysMem::PhysMem(Addr bytes, Rng rng)
    : rng_(rng)
{
    if (bytes == 0 || bytes % pageBytes != 0)
        fatal("PhysMem capacity must be a nonzero multiple of 4 KB");
    const std::size_t frames = bytes / pageBytes;
    owners_.assign(frames, Owner::Free);
    freeList_.resize(frames);
    std::iota(freeList_.begin(), freeList_.end(), 0);
    rng_.shuffle(freeList_);
}

Addr
PhysMem::allocFrame(Owner owner)
{
    if (freeList_.empty())
        fatal("PhysMem out of frames");
    const Addr frame = freeList_.back();
    freeList_.pop_back();
    owners_[frame] = owner;
    return frame * pageBytes;
}

std::vector<Addr>
PhysMem::allocFrames(std::size_t count, Owner owner)
{
    std::vector<Addr> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(allocFrame(owner));
    return out;
}

void
PhysMem::freeFrame(Addr base)
{
    if (base % pageBytes != 0)
        panic("PhysMem::freeFrame on unaligned address");
    const Addr frame = base / pageBytes;
    if (frame >= owners_.size())
        panic("PhysMem::freeFrame out of range");
    if (owners_[frame] == Owner::Free)
        panic("PhysMem::freeFrame double free");
    owners_[frame] = Owner::Free;
    // Re-insert at a random position: a LIFO free list would hand the
    // same frame straight back, which defeats buffer randomization
    // defenses (and is unrealistic for a fragmented allocator).
    freeList_.push_back(frame);
    const std::size_t j = rng_.nextBounded(freeList_.size());
    std::swap(freeList_.back(), freeList_[j]);
}

Owner
PhysMem::ownerOf(Addr addr) const
{
    const Addr frame = addr / pageBytes;
    if (frame >= owners_.size())
        panic("PhysMem::ownerOf out of range");
    return owners_[frame];
}

} // namespace pktchase::mem
