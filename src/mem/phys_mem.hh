/**
 * @file
 * Physical memory frame allocator.
 *
 * The attack's geometry depends on where 4 KB page frames land in the
 * physical address space: the driver's rx buffers occupy effectively
 * random frames, which is what produces the non-uniform mapping of ring
 * buffers onto page-aligned cache sets (Figs. 5-6). The allocator hands
 * out frames in randomized order (buddy-allocator fragmentation proxy)
 * from a deterministic Rng so experiments are reproducible.
 */

#ifndef PKTCHASE_MEM_PHYS_MEM_HH
#define PKTCHASE_MEM_PHYS_MEM_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace pktchase::mem
{

/** Identifies the owner of a frame, for accounting and debugging. */
enum class Owner : std::uint8_t
{
    Free,
    Kernel,     ///< Driver rx buffers and other kernel structures
    Attacker,   ///< The spy process's eviction-set pages
    Victim,     ///< Server / victim application data
    Other,
};

/**
 * A flat physical memory of 4 KB frames with randomized allocation.
 */
class PhysMem
{
  public:
    /**
     * Construct a physical memory.
     *
     * @param bytes Total capacity; must be a multiple of the page size.
     * @param rng   Generator driving the randomized free list.
     */
    PhysMem(Addr bytes, Rng rng);

    /**
     * Allocate one frame.
     * @param owner Accounting tag for the allocation.
     * @return Physical base address of the frame (page aligned).
     */
    Addr allocFrame(Owner owner);

    /** Allocate @p count frames at once. */
    std::vector<Addr> allocFrames(std::size_t count, Owner owner);

    /** Return a frame to the free pool. */
    void freeFrame(Addr base);

    /** Owner tag of the frame containing @p addr. */
    Owner ownerOf(Addr addr) const;

    /** Number of frames still free. */
    std::size_t freeFrames() const { return freeList_.size(); }

    /** Total number of frames. */
    std::size_t totalFrames() const { return owners_.size(); }

    /** Total capacity in bytes. */
    Addr bytes() const { return totalFrames() * pageBytes; }

  private:
    Rng rng_;
    std::vector<Owner> owners_;
    std::vector<Addr> freeList_; ///< Frame numbers, pre-shuffled.
};

} // namespace pktchase::mem

#endif // PKTCHASE_MEM_PHYS_MEM_HH
