/**
 * @file
 * Detector-gated software ring defense.
 *
 * GatedPolicy wraps any nic::BufferPolicy and forwards its per-packet
 * hooks (onPacket, onRecycle) only while a detect::GateController is
 * armed, so the wrapped defense's cost is paid only when a detector
 * has seen an attacker. The lifecycle hooks (onInit, onTeardown)
 * always forward -- an inner policy that owns resources (the
 * quarantine pool) keeps its invariants whether or not it ever arms.
 *
 * Spec grammar: "ring.gated:<detector>:<inner>", where <detector> is
 * a detect::makeDetector name and <inner> is a ring policy with the
 * param separator ':' spelled '.' (the spec grammar reserves ':' for
 * the top-level split):
 *
 *     ring.gated:cadence:partial.1000
 *     ring.gated:miss-spike:full
 *     ring.gated:entropy-drop:quarantine.16
 *
 * Wiring: the defense registry constructs GatedPolicy instances
 * unbound (permanently disarmed); testbed assembly builds one
 * detect::DetectionRig per testbed whose GateController every queue's
 * instance binds to. An unbound instance is therefore exactly the
 * "ring.none" fast path plus one branch per packet.
 */

#ifndef PKTCHASE_DEFENSE_GATED_POLICY_HH
#define PKTCHASE_DEFENSE_GATED_POLICY_HH

#include <memory>
#include <string>

#include "detect/gate.hh"
#include "nic/buffer_policy.hh"

namespace pktchase::defense
{

/** A BufferPolicy armed and disarmed by a detector's alarm stream. */
class GatedPolicy : public nic::BufferPolicy
{
  public:
    /**
     * @param detector Gate detector name (detect::makeDetector).
     * @param inner    The wrapped defense (owned).
     */
    GatedPolicy(std::string detector,
                std::unique_ptr<nic::BufferPolicy> inner);

    std::string name() const override;

    /**
     * Deliberately the conservative all-false default: the armed bit
     * flips mid-run (telemetry published during descriptor processing
     * can arm the gate between two frames of a batch), so the driver
     * must keep dispatching per frame regardless of the inner
     * policy's own traits.
     */
    nic::BufferPolicy::HookTraits
    hookTraits() const override
    {
        return {};
    }

    void onInit(nic::RxQueue &q) override;
    void onPacket(nic::RxQueue &q, std::uint64_t n) override;
    void onRecycle(nic::RxQueue &q, std::size_t i) override;
    void onTeardown(nic::RxQueue &q) override;

    /**
     * Bind the controller whose armed bit gates the inner hooks (not
     * owned; must outlive the policy). Unbound, the policy never
     * arms.
     */
    void bindGate(const detect::GateController *gate) { gate_ = gate; }

    /** Whether the inner defense is currently active. */
    bool armed() const { return gate_ && gate_->armed(); }

    const nic::BufferPolicy &inner() const { return *inner_; }
    const std::string &detectorName() const { return detector_; }

  private:
    std::string detector_;
    std::unique_ptr<nic::BufferPolicy> inner_;
    const detect::GateController *gate_ = nullptr;
};

/** Whether @p ring_spec is a (syntactically) gated ring spec. */
bool isGatedRingSpec(const std::string &ring_spec);

/**
 * Detector name of a gated ring spec ("cadence" for
 * "ring.gated:cadence:partial.1000"); fatal on a non-gated or
 * malformed spec.
 */
std::string gatedDetectorOf(const std::string &ring_spec);

/**
 * Inner ring spec of a gated ring spec, in registry form
 * ("ring.partial:1000" for "ring.gated:cadence:partial.1000"); fatal
 * on a non-gated or malformed spec.
 */
std::string gatedInnerOf(const std::string &ring_spec);

} // namespace pktchase::defense

#endif // PKTCHASE_DEFENSE_GATED_POLICY_HH
