/**
 * @file
 * String-spec registry for defense policies: the single place where
 * defense names, parsing, and factories live.
 *
 * A spec is "<domain>.<policy>[:<param>]" where domain is "ring" (a
 * nic::BufferPolicy over the driver's recycling path), "cache" (a
 * cache::InjectionPolicy over the LLC's DMA path), or "nic" (NIC
 * geometry -- today the RSS queue count), e.g.:
 *
 *     ring.none            ring.full          ring.partial:1000
 *     ring.offset          ring.quarantine:16
 *     cache.no-ddio        cache.ddio         cache.ddio-ways:2
 *     cache.adaptive       nic.queues:4
 *
 * One ring policy takes a textual parameter instead of a count: the
 * detector-gated wrapper "ring.gated:<detector>:<inner>" (e.g.
 * "ring.gated:cadence:partial.1000"), where <inner> is a ring policy
 * with ':' spelled '.' -- see defense/gated_policy.hh.
 *
 * A Cell pairs one ring spec with one cache spec and an optional nic
 * spec ("ring.partial:1000+cache.ddio+nic.queues:4") and is the unit
 * the defense-eval grids cross: grid builders are data-driven lists of
 * cells, campaign cells are named by Cell::name(), and that name
 * round-trips through parseCell(). The nic part is omitted from the
 * name at the default queue count (nic::kDefaultQueues), so
 * single-queue cell names are unchanged from the single-ring model.
 * Built-in policies are registered by the Registry constructor;
 * experiments add their own with addRing()/addCache() (see
 * src/defense/README.md).
 */

#ifndef PKTCHASE_DEFENSE_REGISTRY_HH
#define PKTCHASE_DEFENSE_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/injection_policy.hh"
#include "nic/buffer_policy.hh"

namespace pktchase::defense
{

/** A parsed "<domain>.<policy>[:<param>]" spec. */
struct Spec
{
    std::string domain;       ///< "ring", "cache", or "nic".
    std::string policy;       ///< e.g. "partial", "ddio-ways", "queues".
    bool hasParam = false;
    std::uint64_t param = 0;  ///< Meaningful only when hasParam.

    /**
     * Raw textual parameter ("<detector>:<inner>"); non-empty only
     * for the "ring.gated" production, whose parameter is not a
     * count.
     */
    std::string text;
};

/**
 * Parse @p text into a Spec; fatal() on malformed syntax (missing
 * domain, unknown domain, empty policy, non-numeric parameter).
 * Whether the policy name exists is the Registry's concern.
 */
Spec parseSpec(const std::string &text);

/** Non-fatal syntax check (does not consult the registry). */
bool isSpecSyntax(const std::string &text);

/** Factory signatures: build a policy instance from its parsed spec. */
using RingFactory =
    std::function<std::unique_ptr<nic::BufferPolicy>(const Spec &)>;
using CacheFactory =
    std::function<std::unique_ptr<cache::InjectionPolicy>(const Spec &)>;

/**
 * Process-wide registry mapping spec strings to policy factories.
 */
class Registry
{
  public:
    /** The process-wide instance (built-ins pre-registered). */
    static Registry &instance();

    /**
     * Register a ring policy under "ring.<policy>". Re-registering a
     * name replaces the previous entry (handy in tests).
     *
     * @param takes_param Whether "<spec>:<param>" is accepted.
     */
    void addRing(const std::string &policy,
                 const std::string &description, bool takes_param,
                 RingFactory factory);

    /** Register a cache policy under "cache.<policy>". */
    void addCache(const std::string &policy,
                  const std::string &description, bool takes_param,
                  CacheFactory factory);

    /** Instantiate the ring policy named by @p spec; fatal if unknown. */
    std::unique_ptr<nic::BufferPolicy>
    makeRing(const std::string &spec) const;

    /** Instantiate the cache policy named by @p spec; fatal if unknown. */
    std::unique_ptr<cache::InjectionPolicy>
    makeCache(const std::string &spec) const;

    /** Whether @p spec is well-formed and names a registered policy. */
    bool contains(const std::string &spec) const;

    /** Registered policy names of @p domain ("ring.none", ...), sorted. */
    std::vector<std::string> names(const std::string &domain) const;

    /** One-line description of the policy @p spec names; fatal if unknown. */
    std::string description(const std::string &spec) const;

  private:
    Registry();  // Registers the built-in policies.

    struct RingEntry
    {
        std::string policy;
        std::string description;
        bool takesParam;
        RingFactory factory;
    };
    struct CacheEntry
    {
        std::string policy;
        std::string description;
        bool takesParam;
        CacheFactory factory;
    };

    void checkParam(const Spec &spec, bool takes_param) const;

    std::vector<RingEntry> ring_;
    std::vector<CacheEntry> cache_;
};

/** Convenience: Registry::instance().makeRing(spec). */
std::unique_ptr<nic::BufferPolicy>
makeRingPolicy(const std::string &spec);

/** Convenience: Registry::instance().makeCache(spec). */
std::unique_ptr<cache::InjectionPolicy>
makeCachePolicy(const std::string &spec);

/**
 * Canonical form of @p spec: instantiate the policy and return its
 * name(), so defaults are made explicit ("ring.partial" becomes
 * "ring.partial:1000"). Fatal on unknown specs.
 */
std::string canonicalSpec(const std::string &spec);

/**
 * Queue count named by a "nic.queues[:<N>]" spec; the empty string
 * means the default (nic::kDefaultQueues), as does an omitted
 * parameter. Fatal on any other policy, a zero count, or a count the
 * steering table cannot hold.
 */
std::size_t nicQueues(const std::string &spec);

/** Canonical nic spec for a queue count, "nic.queues:<N>". */
std::string nicSpecOf(std::size_t queues);

/**
 * One defense cell: a software ring defense crossed with a cache-side
 * injection policy, at a NIC queue count. The unit the evaluation
 * grids enumerate.
 */
struct Cell
{
    std::string ring = "ring.none";
    std::string cache = "cache.ddio";

    /** NIC geometry; "" means the default single-queue NIC. */
    std::string nic = "";

    /** Receive queue count this cell runs at. */
    std::size_t queues() const { return nicQueues(nic); }

    /**
     * Canonical cell name: "ring.none+cache.ddio", with
     * "+nic.queues:<N>" appended only at non-default queue counts so
     * single-queue names match the single-ring model's.
     */
    std::string name() const;
};

/**
 * Parse "<ring spec>+<cache spec>[+<nic spec>]" (canonical Cell
 * order); fatal on error.
 */
Cell parseCell(const std::string &text);

} // namespace pktchase::defense

#endif // PKTCHASE_DEFENSE_REGISTRY_HH
