#include "registry.hh"

#include <algorithm>

#include "defense/gated_policy.hh"
#include "detect/detector.hh"
#include "nic/rss.hh"
#include "sim/logging.hh"

namespace pktchase::defense
{

namespace
{

/** Parse attempt without fatal(); returns false on malformed syntax. */
bool
tryParse(const std::string &text, Spec &out)
{
    const std::size_t dot = text.find('.');
    if (dot == std::string::npos || dot == 0)
        return false;
    out.domain = text.substr(0, dot);
    if (out.domain != "ring" && out.domain != "cache" &&
        out.domain != "nic")
        return false;

    std::string rest = text.substr(dot + 1);
    const std::size_t colon = rest.find(':');
    out.hasParam = colon != std::string::npos;
    if (out.hasParam) {
        const std::string param = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
        if (out.domain == "ring" && rest == "gated") {
            // The one textual production: "<detector>:<inner>", with
            // exactly one inner ':' and nothing empty on either side.
            const std::size_t c2 = param.find(':');
            if (c2 == std::string::npos || c2 == 0 ||
                c2 + 1 >= param.size() ||
                param.find(':', c2 + 1) != std::string::npos)
                return false;
            out.text = param;
        } else {
            if (param.empty() || param.size() > 19 ||
                param.find_first_not_of("0123456789") !=
                    std::string::npos)
                return false;
            out.param = std::stoull(param);
        }
    }
    if (rest.empty() || rest.find(':') != std::string::npos)
        return false;
    out.policy = rest;
    return true;
}

/** Insert-or-replace an entry in one domain's table. */
template <typename Entry, typename Factory>
void
upsert(std::vector<Entry> &entries, const std::string &policy,
       const std::string &description, bool takes_param,
       Factory factory)
{
    for (Entry &e : entries) {
        if (e.policy == policy) {
            e = Entry{policy, description, takes_param,
                      std::move(factory)};
            return;
        }
    }
    entries.push_back(Entry{policy, description, takes_param,
                            std::move(factory)});
}

template <typename Entry>
const Entry *
findEntry(const std::vector<Entry> &entries, const std::string &policy)
{
    for (const Entry &e : entries)
        if (e.policy == policy)
            return &e;
    return nullptr;
}

/** Domain-check + lookup shared by makeRing/makeCache; fatal on miss. */
template <typename Entry>
const Entry &
resolveEntry(const std::vector<Entry> &entries,
             const std::string &spec_text, const Spec &spec,
             const std::string &domain)
{
    if (spec.domain != domain) {
        fatal("defense::Registry: \"" + spec_text + "\" is not a " +
              domain + " spec");
    }
    const Entry *e = findEntry(entries, spec.policy);
    if (!e) {
        fatal("defense::Registry: unknown " + domain + " policy \"" +
              spec_text + "\"");
    }
    return *e;
}

/**
 * Whether a parsed nic-domain spec names a usable configuration: the
 * single validity rule shared by Registry::contains() and the fatal
 * nicQueues() parser.
 */
bool
validNicSpec(const Spec &spec)
{
    return spec.policy == "queues" &&
        (!spec.hasParam ||
         (spec.param >= 1 &&
          spec.param <= nic::RssSteering::kRetaEntries));
}

} // namespace

Spec
parseSpec(const std::string &text)
{
    Spec spec;
    if (!tryParse(text, spec)) {
        fatal("defense::parseSpec: malformed spec \"" + text +
              "\" (expected \"ring.<policy>[:<param>]\" or "
              "\"cache.<policy>[:<param>]\")");
    }
    return spec;
}

bool
isSpecSyntax(const std::string &text)
{
    Spec spec;
    return tryParse(text, spec);
}

Registry &
Registry::instance()
{
    static Registry reg;
    return reg;
}

Registry::Registry()
{
    // ---------------------------------------------------- ring built-ins
    addRing("none", "vulnerable baseline: buffers recycle in place",
            false, [](const Spec &) {
                return std::make_unique<nic::NonePolicy>();
            });
    addRing("full", "fresh random buffer for every packet (Sec. VI)",
            false, [](const Spec &) {
                return std::make_unique<nic::FullRandomPolicy>();
            });
    addRing("partial",
            "reshuffle the whole ring every N packets (Sec. VI)",
            true, [](const Spec &s) {
                return std::make_unique<nic::PartialPeriodicPolicy>(
                    s.hasParam
                        ? s.param
                        : nic::PartialPeriodicPolicy::kDefaultInterval);
            });
    addRing("offset",
            "random intra-page buffer offset on every recycle",
            false, [](const Spec &) {
                return std::make_unique<nic::RandomOffsetPolicy>();
            });
    addRing("quarantine",
            "delayed recycle through a FIFO pool of N spare pages",
            true, [](const Spec &s) {
                return std::make_unique<nic::QuarantinePolicy>(
                    s.hasParam ? s.param
                               : nic::QuarantinePolicy::kDefaultDepth);
            });
    addRing("gated",
            "arm an inner ring defense only while a detector alarms "
            "(\"ring.gated:<detector>:<inner>\")",
            true,
            [](const Spec &s) -> std::unique_ptr<nic::BufferPolicy> {
                if (s.text.empty()) {
                    fatal("defense::Registry: ring.gated needs "
                          "\"ring.gated:<detector>:<inner>\"");
                }
                const std::string full = "ring.gated:" + s.text;
                return std::make_unique<GatedPolicy>(
                    gatedDetectorOf(full),
                    makeRingPolicy(gatedInnerOf(full)));
            });

    // --------------------------------------------------- cache built-ins
    addCache("no-ddio",
             "memory-first DMA: write DRAM, snoop-invalidate", false,
             [](const Spec &) {
                 return std::make_unique<cache::NoDdioPolicy>();
             });
    addCache("ddio", "DDIO baseline: inject at the configured way cap",
             false, [](const Spec &) {
                 return std::make_unique<cache::DdioPolicy>();
             });
    addCache("ddio-ways",
             "DDIO restricted to exactly N allocation ways per set",
             true, [](const Spec &s) {
                 return std::make_unique<cache::DdioWaysPolicy>(
                     s.hasParam ? static_cast<unsigned>(s.param) : 2u);
             });
    addCache("adaptive",
             "Sec. VII adaptive I/O cache partitioning", false,
             [](const Spec &) {
                 return std::make_unique<cache::AdaptivePartitionPolicy>();
             });
}

void
Registry::addRing(const std::string &policy,
                  const std::string &description, bool takes_param,
                  RingFactory factory)
{
    upsert(ring_, policy, description, takes_param,
           std::move(factory));
}

void
Registry::addCache(const std::string &policy,
                   const std::string &description, bool takes_param,
                   CacheFactory factory)
{
    upsert(cache_, policy, description, takes_param,
           std::move(factory));
}

void
Registry::checkParam(const Spec &spec, bool takes_param) const
{
    if (spec.hasParam && !takes_param) {
        fatal("defense::Registry: policy \"" + spec.domain + "." +
              spec.policy + "\" does not take a parameter");
    }
}

std::unique_ptr<nic::BufferPolicy>
Registry::makeRing(const std::string &spec_text) const
{
    const Spec spec = parseSpec(spec_text);
    const RingEntry &e = resolveEntry(ring_, spec_text, spec, "ring");
    checkParam(spec, e.takesParam);
    return e.factory(spec);
}

std::unique_ptr<cache::InjectionPolicy>
Registry::makeCache(const std::string &spec_text) const
{
    const Spec spec = parseSpec(spec_text);
    const CacheEntry &e =
        resolveEntry(cache_, spec_text, spec, "cache");
    checkParam(spec, e.takesParam);
    return e.factory(spec);
}

bool
Registry::contains(const std::string &spec_text) const
{
    Spec spec;
    if (!tryParse(spec_text, spec))
        return false;
    if (spec.domain == "nic")
        return validNicSpec(spec);
    if (spec.domain == "ring") {
        if (spec.policy == "gated") {
            // Instantiable only with a detector and a known inner
            // policy; a bare "ring.gated" has nothing to gate. The
            // non-fatal isGatedRingSpec guard keeps contains() from
            // reaching the fatal accessors on anything malformed.
            if (spec.text.empty())
                return false;
            const std::string full = "ring.gated:" + spec.text;
            if (!isGatedRingSpec(full))
                return false;
            return detect::isDetectorName(gatedDetectorOf(full)) &&
                contains(gatedInnerOf(full));
        }
        const RingEntry *e = findEntry(ring_, spec.policy);
        return e && (!spec.hasParam || e->takesParam);
    }
    const CacheEntry *e = findEntry(cache_, spec.policy);
    return e && (!spec.hasParam || e->takesParam);
}

std::vector<std::string>
Registry::names(const std::string &domain) const
{
    std::vector<std::string> out;
    if (domain == "ring") {
        for (const RingEntry &e : ring_)
            out.push_back("ring." + e.policy);
    } else if (domain == "cache") {
        for (const CacheEntry &e : cache_)
            out.push_back("cache." + e.policy);
    } else {
        fatal("defense::Registry::names: unknown domain \"" +
              domain + "\"");
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
Registry::description(const std::string &spec_text) const
{
    const Spec spec = parseSpec(spec_text);
    if (spec.domain == "ring") {
        if (const RingEntry *e = findEntry(ring_, spec.policy))
            return e->description;
    } else if (const CacheEntry *e = findEntry(cache_, spec.policy)) {
        return e->description;
    }
    fatal("defense::Registry: unknown policy \"" + spec_text + "\"");
}

std::unique_ptr<nic::BufferPolicy>
makeRingPolicy(const std::string &spec)
{
    return Registry::instance().makeRing(spec);
}

std::unique_ptr<cache::InjectionPolicy>
makeCachePolicy(const std::string &spec)
{
    return Registry::instance().makeCache(spec);
}

std::string
canonicalSpec(const std::string &spec_text)
{
    const Spec spec = parseSpec(spec_text);
    if (spec.domain == "ring")
        return Registry::instance().makeRing(spec_text)->name();
    if (spec.domain == "nic")
        return nicSpecOf(nicQueues(spec_text));
    return Registry::instance().makeCache(spec_text)->name();
}

std::size_t
nicQueues(const std::string &spec_text)
{
    if (spec_text.empty())
        return nic::kDefaultQueues;
    const Spec spec = parseSpec(spec_text);
    if (spec.domain != "nic" || spec.policy != "queues") {
        fatal("defense::nicQueues: \"" + spec_text +
              "\" is not a \"nic.queues[:<N>]\" spec");
    }
    if (!validNicSpec(spec)) {
        fatal("defense::nicQueues: queue count in \"" + spec_text +
              "\" must be in [1, " +
              std::to_string(nic::RssSteering::kRetaEntries) + "]");
    }
    return spec.hasParam ? static_cast<std::size_t>(spec.param)
                         : nic::kDefaultQueues;
}

std::string
nicSpecOf(std::size_t queues)
{
    return "nic.queues:" + std::to_string(queues);
}

std::string
Cell::name() const
{
    std::string n = canonicalSpec(ring) + "+" + canonicalSpec(cache);
    const std::size_t q = queues();
    if (q != nic::kDefaultQueues)
        n += "+" + nicSpecOf(q);
    return n;
}

Cell
parseCell(const std::string &text)
{
    const std::size_t plus = text.find('+');
    if (plus == std::string::npos) {
        fatal("defense::parseCell: malformed cell \"" + text +
              "\" (expected \"<ring spec>+<cache spec>"
              "[+<nic spec>]\")");
    }
    Cell cell;
    cell.ring = text.substr(0, plus);
    std::string rest = text.substr(plus + 1);
    const std::size_t plus2 = rest.find('+');
    if (plus2 != std::string::npos) {
        cell.cache = rest.substr(0, plus2);
        cell.nic = rest.substr(plus2 + 1);
    } else {
        cell.cache = rest;
    }
    const Spec ring = parseSpec(cell.ring);
    const Spec cache = parseSpec(cell.cache);
    if (ring.domain != "ring" || cache.domain != "cache") {
        fatal("defense::parseCell: \"" + text + "\" must pair a "
              "ring spec with a cache spec, in that order");
    }
    nicQueues(cell.nic); // Validates the optional nic part.
    return cell;
}

} // namespace pktchase::defense
