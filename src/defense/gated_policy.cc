#include "gated_policy.hh"

#include "detect/detector.hh"
#include "sim/logging.hh"

namespace pktchase::defense
{

namespace
{

constexpr const char *kPrefix = "ring.gated:";

/**
 * Split "ring.gated:<detector>:<inner>"; false on anything else
 * (including an inner part that smuggles another ':').
 */
bool
splitGated(const std::string &spec, std::string &det,
           std::string &inner)
{
    const std::string prefix(kPrefix);
    if (spec.rfind(prefix, 0) != 0)
        return false;
    const std::string rest = spec.substr(prefix.size());
    const std::size_t colon = rest.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size())
        return false;
    det = rest.substr(0, colon);
    inner = rest.substr(colon + 1);
    return inner.find(':') == std::string::npos;
}

/** "partial.1000" -> "ring.partial:1000"; "none" -> "ring.none". */
std::string
innerToRegistrySpec(const std::string &dotted)
{
    const std::size_t dot = dotted.find('.');
    if (dot == std::string::npos)
        return "ring." + dotted;
    return "ring." + dotted.substr(0, dot) + ":" +
        dotted.substr(dot + 1);
}

/** "ring.partial:1000" -> "partial.1000" (for canonical names). */
std::string
registrySpecToInner(const std::string &spec)
{
    std::string s = spec;
    const std::string prefix = "ring.";
    if (s.rfind(prefix, 0) == 0)
        s = s.substr(prefix.size());
    const std::size_t colon = s.find(':');
    if (colon != std::string::npos)
        s[colon] = '.';
    return s;
}

} // namespace

GatedPolicy::GatedPolicy(std::string detector,
                         std::unique_ptr<nic::BufferPolicy> inner)
    : detector_(std::move(detector)), inner_(std::move(inner))
{
    if (!detect::isDetectorName(detector_)) {
        fatal("GatedPolicy: unknown gate detector \"" + detector_ +
              "\"");
    }
    if (!inner_)
        fatal("GatedPolicy needs an inner ring policy");
}

std::string
GatedPolicy::name() const
{
    return std::string(kPrefix) + detector_ + ":" +
        registrySpecToInner(inner_->name());
}

void
GatedPolicy::onInit(nic::RxQueue &q)
{
    inner_->onInit(q);
}

void
GatedPolicy::onPacket(nic::RxQueue &q, std::uint64_t n)
{
    if (armed())
        inner_->onPacket(q, n);
}

void
GatedPolicy::onRecycle(nic::RxQueue &q, std::size_t i)
{
    if (armed())
        inner_->onRecycle(q, i);
}

void
GatedPolicy::onTeardown(nic::RxQueue &q)
{
    inner_->onTeardown(q);
}

bool
isGatedRingSpec(const std::string &ring_spec)
{
    std::string det, inner;
    return splitGated(ring_spec, det, inner);
}

std::string
gatedDetectorOf(const std::string &ring_spec)
{
    std::string det, inner;
    if (!splitGated(ring_spec, det, inner)) {
        fatal("defense::gatedDetectorOf: \"" + ring_spec +
              "\" is not a \"ring.gated:<detector>:<inner>\" spec");
    }
    return det;
}

std::string
gatedInnerOf(const std::string &ring_spec)
{
    std::string det, inner;
    if (!splitGated(ring_spec, det, inner)) {
        fatal("defense::gatedInnerOf: \"" + ring_spec +
              "\" is not a \"ring.gated:<detector>:<inner>\" spec");
    }
    return innerToRegistrySpec(inner);
}

} // namespace pktchase::defense
