#include "testbed.hh"

#include <algorithm>

#include "defense/gated_policy.hh"
#include "defense/registry.hh"
#include "sim/logging.hh"

namespace pktchase::testbed
{

namespace
{

std::unique_ptr<cache::SliceHash>
hashForGeometry(const cache::Geometry &geom)
{
    switch (geom.slices) {
      case 8:
        return cache::XorFoldSliceHash::sandyBridgeEP8();
      case 4:
        return cache::XorFoldSliceHash::fourSlice();
      case 2:
        return cache::XorFoldSliceHash::twoSlice();
      case 1:
        return std::make_unique<cache::IdentitySliceHash>(1, 0);
      default:
        fatal("Testbed: no slice hash for this slice count");
    }
}

} // namespace

TestbedConfig
TestbedConfig::reduced()
{
    TestbedConfig cfg;
    cfg.llc.geom = cache::Geometry{2, 512, 8};
    cfg.llc.ioLinesMax = 3;
    cfg.igb.ringSize = 32;
    cfg.builder.poolPages = 768;
    cfg.physBytes = Addr(32) << 20;
    return cfg;
}

Testbed::Testbed(const TestbedConfig &cfg)
    : cfg_(cfg)
{
    if (!cfg_.nicSpec.empty())
        cfg_.igb.queues = defense::nicQueues(cfg_.nicSpec);
    phys_ = std::make_unique<mem::PhysMem>(cfg_.physBytes,
                                           Rng(cfg_.seed));
    hier_ = std::make_unique<cache::Hierarchy>(
        cfg_.llc, cfg_.hier, hashForGeometry(cfg_.llc.geom),
        defense::makeCachePolicy(cfg_.cacheDefense));
    // One BufferPolicy instance per receive queue: defenses carry
    // queue-local state (quarantine pools, offset streams).
    std::vector<std::unique_ptr<nic::BufferPolicy>> policies;
    std::vector<defense::GatedPolicy *> gated;
    policies.reserve(cfg_.igb.queues);
    for (std::size_t q = 0; q < cfg_.igb.queues; ++q) {
        policies.push_back(defense::makeRingPolicy(cfg_.ringDefense));
        if (auto *gp =
                dynamic_cast<defense::GatedPolicy *>(policies.back().get()))
            gated.push_back(gp);
    }
    driver_ = std::make_unique<nic::IgbDriver>(
        cfg_.igb, *phys_, *hier_, std::move(policies));
    spySpace_ = std::make_unique<mem::AddressSpace>(
        *phys_, mem::Owner::Attacker);
    builder_ = std::make_unique<attack::EvictionSetBuilder>(
        *hier_, *spySpace_, cfg_.builder);

    // A gated ring defense needs the telemetry + detector stack it
    // arms from: build the rig and bind every queue's policy to its
    // gate. Non-gated configurations attach nothing -- the telemetry
    // path stays entirely off.
    if (!gated.empty()) {
        detect::RigConfig rig_cfg = cfg_.detection;
        rig_cfg.gateDetector =
            defense::gatedDetectorOf(cfg_.ringDefense);
        rig_ = std::make_unique<detect::DetectionRig>(*hier_, *driver_,
                                                      rig_cfg);
        for (defense::GatedPolicy *gp : gated)
            gp->bindGate(rig_->gate());
    }
}

detect::DetectionRig &
Testbed::attachDetection(const detect::RigConfig &cfg)
{
    if (rig_) {
        fatal("Testbed::attachDetection: a detection rig is already "
              "attached (gated ring defenses attach one at assembly)");
    }
    rig_ = std::make_unique<detect::DetectionRig>(*hier_, *driver_, cfg);
    return *rig_;
}

const attack::ComboGroups &
Testbed::groups()
{
    if (!groups_) {
        groups_ = std::make_unique<attack::ComboGroups>(
            builder_->buildWithOracle());
    }
    return *groups_;
}

std::size_t
Testbed::comboOf(Addr page_base) const
{
    const auto &geom = cfg_.llc.geom;
    const unsigned slice = hier_->llc().sliceHash().slice(page_base);
    const unsigned set = geom.setIndex(page_base);
    return static_cast<std::size_t>(slice) *
        geom.pageAlignedSetsPerSlice() + set / blocksPerPage;
}

std::vector<std::size_t>
Testbed::comboGsets() const
{
    const auto &geom = cfg_.llc.geom;
    std::vector<std::size_t> out;
    out.reserve(geom.pageAlignedCombos());
    for (unsigned rank = 0; rank < geom.pageAlignedCombos(); ++rank) {
        const unsigned slice = rank / geom.pageAlignedSetsPerSlice();
        const unsigned k = rank % geom.pageAlignedSetsPerSlice();
        out.push_back(static_cast<std::size_t>(slice) *
                          geom.setsPerSlice +
                      static_cast<std::size_t>(k) * blocksPerPage);
    }
    return out;
}

std::vector<std::size_t>
Testbed::ringComboSequence(std::size_t q) const
{
    std::vector<std::size_t> out;
    out.reserve(driver_->ring(q).size());
    for (std::size_t i = 0; i < driver_->ring(q).size(); ++i)
        out.push_back(comboOf(driver_->pageBase(i, q)));
    return out;
}

std::vector<std::size_t>
Testbed::ringComboSequence() const
{
    std::vector<std::size_t> out;
    out.reserve(driver_->totalDescriptors());
    for (std::size_t q = 0; q < driver_->numQueues(); ++q) {
        const std::vector<std::size_t> qs = ringComboSequence(q);
        out.insert(out.end(), qs.begin(), qs.end());
    }
    return out;
}

std::vector<std::vector<std::size_t>>
Testbed::queueComboSequences() const
{
    std::vector<std::vector<std::size_t>> out;
    out.reserve(driver_->numQueues());
    for (std::size_t q = 0; q < driver_->numQueues(); ++q)
        out.push_back(ringComboSequence(q));
    return out;
}

void
Testbed::rotateToRingHeads(
    std::vector<std::vector<std::size_t>> &queue_seqs) const
{
    if (queue_seqs.size() != driver_->numQueues())
        fatal("rotateToRingHeads: need one sequence per receive queue");
    for (std::size_t q = 0; q < queue_seqs.size(); ++q) {
        std::vector<std::size_t> &seq = queue_seqs[q];
        if (seq.empty())
            continue;
        const std::size_t head = driver_->ring(q).head();
        std::rotate(seq.begin(),
                    seq.begin() + static_cast<std::ptrdiff_t>(
                        head % seq.size()),
                    seq.end());
    }
}

std::vector<std::vector<std::size_t>>
Testbed::chaseSequences() const
{
    std::vector<std::vector<std::size_t>> seqs = queueComboSequences();
    rotateToRingHeads(seqs);
    return seqs;
}

std::vector<std::size_t>
Testbed::activeCombos() const
{
    std::vector<unsigned> counts(cfg_.llc.geom.pageAlignedCombos(), 0);
    for (std::size_t c : ringComboSequence())
        ++counts[c];
    std::vector<std::size_t> out;
    for (std::size_t c = 0; c < counts.size(); ++c)
        if (counts[c] > 0)
            out.push_back(c);
    return out;
}

std::vector<std::size_t>
Testbed::singleBufferCombos() const
{
    std::vector<unsigned> counts(cfg_.llc.geom.pageAlignedCombos(), 0);
    for (std::size_t c : ringComboSequence())
        ++counts[c];
    std::vector<std::size_t> out;
    for (std::size_t c = 0; c < counts.size(); ++c)
        if (counts[c] == 1)
            out.push_back(c);
    return out;
}

} // namespace pktchase::testbed
