/**
 * @file
 * A fully assembled attack testbed: physical memory, hierarchy (LLC +
 * DDIO), IGB driver, the spy's address space and eviction-set groups,
 * and a shared event queue. Mirrors the paper's machine: a PowerEdge
 * T620-class host with a 20 MB E5-2660 LLC and an I350 adapter driven
 * by the IGB driver.
 *
 * Experiments, examples, and benches build one Testbed and compose
 * traffic pumps and attack components on top of it.
 */

#ifndef PKTCHASE_TESTBED_TESTBED_HH
#define PKTCHASE_TESTBED_TESTBED_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/eviction_set.hh"
#include "cache/hierarchy.hh"
#include "detect/rig.hh"
#include "mem/address_space.hh"
#include "mem/phys_mem.hh"
#include "nic/igb_driver.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pktchase::testbed
{

/** Knobs for the assembled world. */
struct TestbedConfig
{
    cache::LlcConfig llc;
    cache::HierarchyConfig hier;
    nic::IgbConfig igb;
    attack::BuilderConfig builder;

    /**
     * Defense specs, resolved through defense::Registry at assembly:
     * the software ring defense driving the IGB driver's buffer
     * recycling and the cache-side DMA injection policy. The defaults
     * are the paper's vulnerable DDIO baseline.
     */
    std::string ringDefense = "ring.none";
    std::string cacheDefense = "cache.ddio";

    /**
     * NIC geometry spec ("nic.queues:4"), resolved through
     * defense::nicQueues at assembly. The empty default leaves
     * igb.queues as configured (the paper's single ring); a non-empty
     * spec overrides it, so grid cells can name their queue count the
     * same way they name their defenses.
     */
    std::string nicSpec = "";

    /**
     * Telemetry/detection tuning (epoch width, detector windows and
     * thresholds, gate hysteresis). Consulted when ringDefense is a
     * "ring.gated:..." spec -- assembly then builds a DetectionRig
     * whose gate arms every queue's GatedPolicy -- and by explicit
     * Testbed::attachDetection() calls. Otherwise no rig exists and
     * the telemetry path stays entirely off (zero cost).
     */
    detect::RigConfig detection;

    Addr physBytes = Addr(256) << 20; ///< 256 MB of frames.
    std::uint64_t seed = 1;

    /**
     * Scale everything down (slices/sets/ways/pool) for fast unit
     * tests while preserving all structural properties.
     */
    static TestbedConfig reduced();
};

/**
 * The assembled world.
 */
class Testbed
{
  public:
    explicit Testbed(const TestbedConfig &cfg);

    mem::PhysMem &phys() { return *phys_; }
    cache::Hierarchy &hier() { return *hier_; }
    nic::IgbDriver &driver() { return *driver_; }
    mem::AddressSpace &spySpace() { return *spySpace_; }
    attack::EvictionSetBuilder &builder() { return *builder_; }
    EventQueue &eq() { return eq_; }
    const TestbedConfig &config() const { return cfg_; }

    /**
     * The detection rig, or nullptr when none is attached. Assembly
     * attaches one automatically for gated ring defenses; score-only
     * experiments attach theirs with attachDetection().
     */
    detect::DetectionRig *detection() { return rig_.get(); }

    /**
     * Attach a detection rig over this testbed's LLC and driver,
     * hosting the detectors (and optional gate) @p cfg names. Fatal
     * when a rig is already attached (assembly attaches one for gated
     * ring defenses -- reuse it via detection()).
     */
    detect::DetectionRig &attachDetection(const detect::RigConfig &cfg);

    /**
     * The spy's pool partitioned by page-aligned combo (oracle path;
     * equivalent to the paper's driver-instrumentation ground truth).
     * Built lazily and cached.
     */
    const attack::ComboGroups &groups();

    /** Global set id of each combo rank, in rank order. */
    std::vector<std::size_t> comboGsets() const;

    /**
     * Ground-truth ring order as combo ranks (one per descriptor),
     * queue-major across all receive queues.
     */
    std::vector<std::size_t> ringComboSequence() const;

    /** Ground-truth combo ranks of receive queue @p q's ring only. */
    std::vector<std::size_t> ringComboSequence(std::size_t q) const;

    /** ringComboSequence(q) for every queue, in queue order. */
    std::vector<std::vector<std::size_t>> queueComboSequences() const;

    /**
     * Chase-ready sequences: queueComboSequences() with each queue's
     * sequence rotated so slot 0 is the slot that ring will fill
     * next. What a spy that has tracked every ring since setup would
     * feed attack::ProbeEngine chase streams.
     */
    std::vector<std::vector<std::size_t>> chaseSequences() const;

    /**
     * Rotate one per-queue sequence per receive queue (e.g. a
     * perturbed copy of queueComboSequences()) so each starts at the
     * slot its ring will fill next; fatal on a queue-count mismatch.
     */
    void rotateToRingHeads(
        std::vector<std::vector<std::size_t>> &queue_seqs) const;

    /**
     * Combos to which exactly one ring buffer page maps -- the buffers
     * the covert channel prefers (Sec. IV-b).
     */
    std::vector<std::size_t> singleBufferCombos() const;

    /** Combos hosting at least one ring buffer page. */
    std::vector<std::size_t> activeCombos() const;

    /** Combo rank of a physical page base. */
    std::size_t comboOf(Addr page_base) const;

  private:
    TestbedConfig cfg_;
    std::unique_ptr<mem::PhysMem> phys_;
    std::unique_ptr<cache::Hierarchy> hier_;
    std::unique_ptr<nic::IgbDriver> driver_;
    std::unique_ptr<mem::AddressSpace> spySpace_;
    std::unique_ptr<attack::EvictionSetBuilder> builder_;
    EventQueue eq_;
    std::unique_ptr<attack::ComboGroups> groups_;

    /** Declared after hier_/driver_ so its destructor detaches the
     *  probes before the emitters die. */
    std::unique_ptr<detect::DetectionRig> rig_;
};

} // namespace pktchase::testbed

#endif // PKTCHASE_TESTBED_TESTBED_HH
