/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component draws from an explicitly seeded Rng so that
 * experiments are reproducible run-to-run; there is no global generator.
 * The core is xoshiro256**, which is fast and has no observable bias for
 * our use cases (set selection, jitter, noise injection).
 */

#ifndef PKTCHASE_SIM_RNG_HH
#define PKTCHASE_SIM_RNG_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace pktchase
{

/**
 * Seedable xoshiro256** generator with distribution helpers.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in the closed interval [lo, hi]. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial: true with probability p. */
    bool nextBool(double p = 0.5);

    /** Standard normal variate (Box-Muller with caching). */
    double nextGaussian();

    /** Normal variate with the given mean and standard deviation. */
    double nextGaussian(double mean, double sigma);

    /** Exponential variate with the given rate (lambda). */
    double nextExponential(double lambda);

    /**
     * Zipf-distributed rank in [0, n) with exponent s.
     * Used for hot/cold working-set modelling in the server workload.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Split off an independent child generator (for sub-components). */
    Rng split();

  private:
    std::uint64_t state_[4];
    bool hasCachedGaussian_ = false;
    double cachedGaussian_ = 0.0;
};

} // namespace pktchase

#endif // PKTCHASE_SIM_RNG_HH
