/**
 * @file
 * A minimal discrete-event simulation kernel.
 *
 * The attack experiments interleave two independent activities — packet
 * arrivals paced by the network line rate, and attacker probes paced by
 * the probe rate — plus optional background noise. The EventQueue orders
 * these by cycle with a stable FIFO tie-break so runs are deterministic.
 *
 * The heap is hand-rolled over a flat vector so that popping an event
 * *moves* its callback out instead of copying it (std::priority_queue
 * only exposes a const top(), which forced a std::function copy — and
 * usually a heap allocation — per executed event). Because every entry
 * carries a unique (when, seq) key, the execution order is the total
 * order of that key and is independent of the heap's internal layout.
 */

#ifndef PKTCHASE_SIM_EVENT_QUEUE_HH
#define PKTCHASE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "types.hh"

namespace pktchase
{

/**
 * Cycle-ordered event queue with deterministic tie-breaking.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to run at absolute cycle @p when. */
    void schedule(Cycles when, Callback cb);

    /** Schedule @p cb to run @p delta cycles after the current time. */
    void scheduleAfter(Cycles delta, Callback cb);

    /**
     * Run events until the queue is empty or the simulated time would
     * exceed @p horizon.
     *
     * @param horizon Latest cycle (inclusive) to execute events for.
     * @return Number of events executed (popped from the queue; work
     *         inlined into an event via tryAdvanceWithin() is counted
     *         in obs::Stat::SimEvents but not here).
     */
    std::size_t runUntil(Cycles horizon);

    /** Execute a single event if one exists; returns false when empty. */
    bool step();

    /** Current simulated time in cycles. */
    Cycles now() const { return now_; }

    /** Whether any events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Cycle of the earliest pending event, or ~0 when the queue is
     * empty. Inside a running event the event itself has already been
     * popped, so this is the time of the *next* event to execute.
     */
    Cycles
    nextEventTime() const
    {
        return heap_.empty() ? ~static_cast<Cycles>(0) : heap_[0].when;
    }

    /**
     * Advance simulated time to @p when from inside a running event,
     * without returning to the scheduler loop.
     *
     * This is the batching primitive: an event handler that would
     * otherwise reschedule itself at @p when may instead advance the
     * clock and continue inline, provided no other event and no
     * runUntil() horizon intervenes. The advance is refused (returns
     * false, clock untouched) unless all of the following hold:
     *
     *  - a runUntil() is active and @p when is within its horizon;
     *  - every pending event is strictly later than @p when (a pending
     *    event at exactly @p when has an older seq than the event the
     *    handler would have rescheduled, so it must run first);
     *  - @p when is not in the past.
     *
     * A successful advance counts as one executed event in
     * obs::Stat::SimEvents, so counter totals are identical whether a
     * handler batches or reschedules.
     */
    bool tryAdvanceWithin(Cycles when);

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        Callback cb;
    };

    /** True when @p a executes before @p b (min-heap order). */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Move the earliest entry out of the heap. */
    Entry popTop();

    std::vector<Entry> heap_;
    Cycles now_ = 0;
    std::uint64_t nextSeq_ = 0;
    /** Horizon of the innermost active runUntil(); valid when inRun_. */
    Cycles activeHorizon_ = 0;
    bool inRun_ = false;
};

} // namespace pktchase

#endif // PKTCHASE_SIM_EVENT_QUEUE_HH
