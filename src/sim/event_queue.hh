/**
 * @file
 * A minimal discrete-event simulation kernel.
 *
 * The attack experiments interleave two independent activities — packet
 * arrivals paced by the network line rate, and attacker probes paced by
 * the probe rate — plus optional background noise. The EventQueue orders
 * these by cycle with a stable FIFO tie-break so runs are deterministic.
 */

#ifndef PKTCHASE_SIM_EVENT_QUEUE_HH
#define PKTCHASE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "types.hh"

namespace pktchase
{

/**
 * Cycle-ordered event queue with deterministic tie-breaking.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to run at absolute cycle @p when. */
    void schedule(Cycles when, Callback cb);

    /** Schedule @p cb to run @p delta cycles after the current time. */
    void scheduleAfter(Cycles delta, Callback cb);

    /**
     * Run events until the queue is empty or the simulated time would
     * exceed @p horizon.
     *
     * @param horizon Latest cycle (inclusive) to execute events for.
     * @return Number of events executed.
     */
    std::size_t runUntil(Cycles horizon);

    /** Execute a single event if one exists; returns false when empty. */
    bool step();

    /** Current simulated time in cycles. */
    Cycles now() const { return now_; }

    /** Whether any events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Cycles now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace pktchase

#endif // PKTCHASE_SIM_EVENT_QUEUE_HH
