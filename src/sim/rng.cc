#include "rng.hh"

#include "logging.hh"

namespace pktchase
{

namespace
{

/** splitmix64 step, used to expand seeds into full generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with bound == 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange called with lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    cachedGaussian_ = mag * std::sin(2.0 * M_PI * u2);
    hasCachedGaussian_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::nextGaussian(double mean, double sigma)
{
    return mean + sigma * nextGaussian();
}

double
Rng::nextExponential(double lambda)
{
    if (lambda <= 0.0)
        panic("Rng::nextExponential requires lambda > 0");
    double u = 0.0;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    if (n == 0)
        panic("Rng::nextZipf requires n > 0");
    // Rejection-inversion sampling (Hormann & Derflinger) is overkill for
    // the workload model; a simple inverse-CDF walk over a cached harmonic
    // sum would be O(n) per draw, so we use the standard approximation:
    // draw u and invert the continuous Zipf CDF, then clamp.
    const double u = 1.0 - nextDouble(); // (0, 1]
    if (s == 1.0) {
        const double hn = std::log(static_cast<double>(n) + 1.0);
        const double x = std::exp(u * hn) - 1.0;
        const auto k = static_cast<std::uint64_t>(x);
        return std::min(k, n - 1);
    }
    const double oneMinusS = 1.0 - s;
    const double hn =
        (std::pow(static_cast<double>(n) + 1.0, oneMinusS) - 1.0) /
        oneMinusS;
    const double x =
        std::pow(u * hn * oneMinusS + 1.0, 1.0 / oneMinusS) - 1.0;
    const auto k = static_cast<std::uint64_t>(x);
    return std::min(k, n - 1);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xA5A5A5A5DEADBEEFull);
}

} // namespace pktchase
