#include "stats.hh"

#include <cmath>

#include "logging.hh"

namespace pktchase
{

std::size_t
longestMismatchRun(const std::vector<int> &a, const std::vector<int> &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();

    // Needleman-Wunsch style alignment with unit costs, tracking the
    // operations so we can walk the aligned strings afterwards.
    std::vector<std::vector<std::size_t>> d(n + 1,
        std::vector<std::size_t>(m + 1, 0));
    for (std::size_t i = 0; i <= n; ++i)
        d[i][0] = i;
    for (std::size_t j = 0; j <= m; ++j)
        d[0][j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub = (a[i - 1] == b[j - 1]) ? 0 : 1;
            d[i][j] = std::min({d[i - 1][j] + 1,
                                d[i][j - 1] + 1,
                                d[i - 1][j - 1] + sub});
        }
    }

    // Walk back, recording match (0) / mismatch (1) per aligned column.
    std::vector<unsigned> mismatch;
    std::size_t i = n, j = m;
    while (i > 0 || j > 0) {
        if (i > 0 && j > 0 &&
            d[i][j] == d[i - 1][j - 1] + ((a[i - 1] == b[j - 1]) ? 0 : 1)) {
            mismatch.push_back(a[i - 1] == b[j - 1] ? 0 : 1);
            --i;
            --j;
        } else if (i > 0 && d[i][j] == d[i - 1][j] + 1) {
            mismatch.push_back(1);
            --i;
        } else {
            mismatch.push_back(1);
            --j;
        }
    }

    std::size_t best = 0, run = 0;
    for (unsigned mm : mismatch) {
        run = mm ? run + 1 : 0;
        best = std::max(best, run);
    }
    return best;
}

EditOps
editOperations(const std::vector<unsigned> &sent,
               const std::vector<unsigned> &received)
{
    const std::size_t n = sent.size();
    const std::size_t m = received.size();
    std::vector<std::vector<std::size_t>> d(
        n + 1, std::vector<std::size_t>(m + 1, 0));
    for (std::size_t i = 0; i <= n; ++i)
        d[i][0] = i;
    for (std::size_t j = 0; j <= m; ++j)
        d[0][j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub =
                (sent[i - 1] == received[j - 1]) ? 0 : 1;
            d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                                d[i - 1][j - 1] + sub});
        }
    }

    EditOps ops;
    std::size_t i = n, j = m;
    while (i > 0 || j > 0) {
        if (i > 0 && j > 0 &&
            d[i][j] == d[i - 1][j - 1] +
                ((sent[i - 1] == received[j - 1]) ? 0 : 1)) {
            if (sent[i - 1] == received[j - 1])
                ++ops.matches;
            else
                ++ops.substitutions;
            --i;
            --j;
        } else if (i > 0 && d[i][j] == d[i - 1][j] + 1) {
            ++ops.deletions;
            --i;
        } else {
            ++ops.insertions;
            --j;
        }
    }
    return ops;
}

Summary
summarize(const std::vector<double> &samples)
{
    Summary s;
    s.count = samples.size();
    if (samples.empty())
        return s;

    double sum = 0.0;
    s.min = samples.front();
    s.max = samples.front();
    for (double v : samples) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(s.count);

    double sq = 0.0;
    for (double v : samples) {
        const double d = v - s.mean;
        sq += d * d;
    }
    s.stddev = (s.count > 1)
        ? std::sqrt(sq / static_cast<double>(s.count - 1))
        : 0.0;

    const double half = (s.count > 1)
        ? 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count))
        : 0.0;
    s.ciLow = s.mean - half;
    s.ciHigh = s.mean + half;
    return s;
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        panic("percentile of empty sample");
    if (p < 0.0 || p > 100.0)
        panic("percentile p out of range");
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples[0];
    const double rank =
        (p / 100.0) * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size() || x.size() < 2)
        return 0.0;
    const auto n = static_cast<double>(x.size());
    double sx = 0, sy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
    }
    const double mx = sx / n, my = sy / n;
    double num = 0, dx = 0, dy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double a = x[i] - mx;
        const double b = y[i] - my;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if (dx <= 0.0 || dy <= 0.0)
        return 0.0;
    return num / std::sqrt(dx * dy);
}

double
maxCrossCorrelation(const std::vector<double> &x,
                    const std::vector<double> &y,
                    int max_lag)
{
    if (x.empty() || y.empty())
        return 0.0;
    double best = -1.0;
    for (int lag = -max_lag; lag <= max_lag; ++lag) {
        // Overlap x[i] with y[i + lag].
        std::vector<double> xs, ys;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const std::int64_t j = static_cast<std::int64_t>(i) + lag;
            if (j < 0 || j >= static_cast<std::int64_t>(y.size()))
                continue;
            xs.push_back(x[i]);
            ys.push_back(y[static_cast<std::size_t>(j)]);
        }
        best = std::max(best, pearson(xs, ys));
    }
    return best;
}

Histogram::Histogram(std::size_t bins)
    : counts_(bins, 0)
{
    if (bins == 0)
        panic("Histogram requires at least one bin");
}

void
Histogram::add(std::size_t value)
{
    const std::size_t bin = std::min(value, counts_.size() - 1);
    ++counts_[bin];
    ++total_;
}

std::uint64_t
Histogram::count(std::size_t bin) const
{
    if (bin >= counts_.size())
        panic("Histogram::count bin out of range");
    return counts_[bin];
}

double
shannonEntropyBits(const std::vector<double> &counts)
{
    double total = 0.0;
    for (double c : counts)
        if (c > 0.0)
            total += c;
    if (total <= 0.0)
        return 0.0;
    double h = 0.0;
    for (double c : counts) {
        if (c <= 0.0)
            continue;
        const double p = c / total;
        h -= p * std::log2(p);
    }
    return h;
}

double
normalizedShannonEntropy(const std::vector<double> &counts)
{
    double total = 0.0;
    for (double c : counts)
        if (c > 0.0)
            total += c;
    if (total <= 0.0 || counts.size() < 2)
        return 1.0;
    return shannonEntropyBits(counts) /
        std::log2(static_cast<double>(counts.size()));
}

} // namespace pktchase
