#include "lfsr.hh"

#include "types.hh"

#include "logging.hh"

namespace pktchase
{

namespace
{

/**
 * Build a Fibonacci tap mask from 1-indexed tap positions. With a
 * right-shifting register, tap position t contributes bit (width - t)
 * of the state (the Wikipedia convention: taps (16,14,13,11) read
 * shifts 0, 2, 3, 5).
 */
std::uint32_t
maskFromTaps(unsigned width, std::initializer_list<unsigned> taps)
{
    std::uint32_t mask = 0;
    for (unsigned t : taps)
        mask |= 1u << (width - t);
    return mask;
}

/**
 * Maximal-length taps indexed by width, from the standard tables of
 * primitive polynomials over GF(2).
 */
std::uint32_t
tapsForWidth(unsigned width)
{
    switch (width) {
      case 3:  return maskFromTaps(3, {3, 2});
      case 4:  return maskFromTaps(4, {4, 3});
      case 5:  return maskFromTaps(5, {5, 3});
      case 6:  return maskFromTaps(6, {6, 5});
      case 7:  return maskFromTaps(7, {7, 6});
      case 8:  return maskFromTaps(8, {8, 6, 5, 4});
      case 9:  return maskFromTaps(9, {9, 5});
      case 10: return maskFromTaps(10, {10, 7});
      case 11: return maskFromTaps(11, {11, 9});
      case 12: return maskFromTaps(12, {12, 11, 10, 4});
      case 13: return maskFromTaps(13, {13, 12, 11, 8});
      case 14: return maskFromTaps(14, {14, 13, 12, 2});
      case 15: return maskFromTaps(15, {15, 14});
      case 16: return maskFromTaps(16, {16, 15, 13, 4});
      default:
        fatal("Lfsr: unsupported width " + std::to_string(width));
    }
}

} // namespace

Lfsr::Lfsr(unsigned width, std::uint32_t seed)
    : width_(width),
      mask_((width >= 32) ? 0xFFFFFFFFu : ((1u << width) - 1)),
      taps_(tapsForWidth(width)),
      state_(seed & mask_)
{
    if (state_ == 0)
        fatal("Lfsr: seed must be nonzero within the register width");
}

unsigned
Lfsr::nextBit()
{
    const unsigned out = state_ & 1u;
    const unsigned feedback =
        static_cast<unsigned>(popcount64(state_ & taps_)) & 1u;
    state_ >>= 1;
    state_ |= feedback << (width_ - 1);
    return out;
}

std::vector<unsigned>
Lfsr::bits(std::size_t count)
{
    std::vector<unsigned> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(nextBit());
    return out;
}

std::vector<unsigned>
Lfsr::supportedWidths()
{
    return {3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
}

} // namespace pktchase
