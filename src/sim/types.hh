/**
 * @file
 * Fundamental scalar types shared by every simulator component.
 */

#ifndef PKTCHASE_SIM_TYPES_HH
#define PKTCHASE_SIM_TYPES_HH

#include <cstdint>

namespace pktchase
{

/** A physical or virtual byte address. */
using Addr = std::uint64_t;

/** A point in simulated time, measured in CPU core cycles. */
using Cycles = std::uint64_t;

/** A signed cycle delta, for latencies that may be subtracted. */
using CycleDelta = std::int64_t;

/** Cache block (line) size in bytes; fixed at 64 across the model. */
constexpr Addr blockBytes = 64;

/** log2 of the cache block size. */
constexpr unsigned blockShift = 6;

/** Page size in bytes (4 KB small pages, as the IGB driver maps them). */
constexpr Addr pageBytes = 4096;

/** log2 of the page size. */
constexpr unsigned pageShift = 12;

/** Number of cache blocks in one page. */
constexpr Addr blocksPerPage = pageBytes / blockBytes;

/**
 * Number of set bits in @p x. C++17-portable stand-in for C++20's
 * std::popcount (gcc/clang builtin; both CI compilers provide it).
 */
constexpr unsigned
popcount64(std::uint64_t x)
{
    return static_cast<unsigned>(__builtin_popcountll(x));
}

/** Smallest power of two >= @p x (C++17 stand-in for std::bit_ceil). */
constexpr std::uint64_t
bitCeil64(std::uint64_t x)
{
    std::uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

/** Core clock frequency used to convert wall time to cycles (Table II). */
constexpr double coreFreqHz = 3.3e9;

/**
 * Convert seconds of wall-clock time into core cycles.
 *
 * @param seconds Wall-clock duration.
 * @return The equivalent number of 3.3 GHz core cycles.
 */
constexpr Cycles
secondsToCycles(double seconds)
{
    return static_cast<Cycles>(seconds * coreFreqHz);
}

/**
 * Convert core cycles into seconds of wall-clock time.
 */
constexpr double
cyclesToSeconds(Cycles cycles)
{
    return static_cast<double>(cycles) / coreFreqHz;
}

} // namespace pktchase

#endif // PKTCHASE_SIM_TYPES_HH
