/**
 * @file
 * Hardware-counter telemetry bus: the transport between counter
 * probes embedded in the simulated hardware (cache::Llc DMA/miss
 * counters, nic::RxQueue recycle counters) and online consumers
 * (detect::Detector implementations, recording harnesses).
 *
 * The model mirrors how a production stack samples PMU/NIC counters:
 * each probe accumulates event counts and, on a fixed epoch boundary
 * (in cycles), publishes one CounterSample naming its source and the
 * epoch's values. The bus itself is dumb fan-out -- subscribers see
 * samples in publish order, synchronously, on the simulating thread.
 *
 * Off-path guarantee: emitters hold a nullable probe pointer and skip
 * all telemetry work when it is null (the default), so an experiment
 * that attaches no rig executes the exact same loads, stores, and RNG
 * draws as before the telemetry layer existed -- the golden-trace
 * tests pin this.
 */

#ifndef PKTCHASE_SIM_COUNTER_BUS_HH
#define PKTCHASE_SIM_COUNTER_BUS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace pktchase::sim
{

/**
 * Default telemetry epoch: ~6 us of core cycles. Short enough that a
 * 40 kpps packet stream lands one packet every ~4 epochs (so cadence
 * detectors can see periodicity), long enough that per-epoch counter
 * deltas are statistically meaningful.
 */
constexpr Cycles kDefaultEpochCycles = 20000;

/** One epoch's worth of counter values from one telemetry source. */
struct CounterSample
{
    /** Source name: "llc", or "rxq<k>" for receive queue k. */
    std::string source;

    std::uint64_t epoch = 0;  ///< Epoch index (start / epochCycles).
    Cycles start = 0;         ///< First cycle of the epoch.
    Cycles end = 0;           ///< One past the last cycle.

    /** Named counter values, in emission order. */
    std::vector<std::pair<std::string, double>> values;

    /** Append one named value. */
    void
    set(const std::string &key, double v)
    {
        values.emplace_back(key, v);
    }

    /** Look up a value by name; fatal() when absent. */
    double value(const std::string &key) const;

    /** Whether a value named @p key exists. */
    bool has(const std::string &key) const;
};

/**
 * Fan-out bus for counter samples. Owns the epoch width so every
 * probe publishing into it samples on the same grid.
 */
class CounterBus
{
  public:
    using Subscriber = std::function<void(const CounterSample &)>;

    explicit CounterBus(Cycles epoch_cycles = kDefaultEpochCycles);

    /** Epoch width in cycles (never zero). */
    Cycles epochCycles() const { return epochCycles_; }

    /** Attach a subscriber; samples arrive in subscription order. */
    void subscribe(Subscriber s);

    /** Whether anything is listening. */
    bool hasSubscribers() const { return !subs_.empty(); }

    /** Deliver @p s to every subscriber, in subscription order. */
    void publish(const CounterSample &s);

    /** Total samples published so far. */
    std::uint64_t published() const { return published_; }

  private:
    Cycles epochCycles_;
    std::vector<Subscriber> subs_;
    std::uint64_t published_ = 0;
};

} // namespace pktchase::sim

#endif // PKTCHASE_SIM_COUNTER_BUS_HH
