/**
 * @file
 * Hardware-counter telemetry bus: the transport between counter
 * probes embedded in the simulated hardware (cache::Llc DMA/miss
 * counters, nic::RxQueue recycle counters) and online consumers
 * (detect::Detector implementations, recording harnesses).
 *
 * The model mirrors how a production stack samples PMU/NIC counters:
 * each probe accumulates event counts and, on a fixed epoch boundary
 * (in cycles), publishes one CounterSample naming its source and the
 * epoch's values. The bus itself is dumb fan-out -- subscribers see
 * samples in publish order, synchronously, on the simulating thread.
 *
 * Counter names are interned once into CounterKey ids, so the
 * publish-side hot path (hundreds of thousands of epochs per run)
 * moves integer/double pairs instead of allocating std::string keys,
 * and consumers compare ids instead of characters. The string-keyed
 * set()/value()/has() conveniences remain for tests and cold paths.
 *
 * Off-path guarantee: emitters hold a nullable probe pointer and skip
 * all telemetry work when it is null (the default), so an experiment
 * that attaches no rig executes the exact same loads, stores, and RNG
 * draws as before the telemetry layer existed -- the golden-trace
 * tests pin this.
 */

#ifndef PKTCHASE_SIM_COUNTER_BUS_HH
#define PKTCHASE_SIM_COUNTER_BUS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace pktchase::sim
{

/**
 * Default telemetry epoch: ~6 us of core cycles. Short enough that a
 * 40 kpps packet stream lands one packet every ~4 epochs (so cadence
 * detectors can see periodicity), long enough that per-epoch counter
 * deltas are statistically meaningful.
 */
constexpr Cycles kDefaultEpochCycles = 20000;

/**
 * An interned counter name: a process-wide id standing for one
 * spelling. Interning takes a global lock and is meant for
 * construction/subscription time; comparisons and copies are integer
 * cheap. A default-constructed key is invalid and matches nothing.
 *
 * Ids are assigned in first-intern order, so their numeric values may
 * differ between runs and threads -- nothing observable may depend on
 * id magnitude, only on equality (which is interleaving-independent
 * because interning the same spelling always yields the same id
 * within a process).
 */
class CounterKey
{
  public:
    CounterKey() = default;

    /** Intern @p name, returning its process-wide key. */
    static CounterKey intern(const std::string &name);

    /** The interned spelling; fatal() on an invalid key. */
    const std::string &str() const;

    bool valid() const { return id_ != 0; }
    bool operator==(CounterKey o) const { return id_ == o.id_; }
    bool operator!=(CounterKey o) const { return id_ != o.id_; }

  private:
    explicit CounterKey(std::uint32_t id) : id_(id) {}
    std::uint32_t id_ = 0;
};

/** One epoch's worth of counter values from one telemetry source. */
struct CounterSample
{
    /** Source name: "llc", or "rxq<k>" for receive queue k. */
    std::string source;

    std::uint64_t epoch = 0;  ///< Epoch index (start / epochCycles).
    Cycles start = 0;         ///< First cycle of the epoch.
    Cycles end = 0;           ///< One past the last cycle.

    /** Keyed counter values, in emission order. */
    std::vector<std::pair<CounterKey, double>> values;

    /**
     * Append one keyed value. Emitting the same key twice in one
     * sample is fatal(): a duplicate would silently shadow the later
     * value in value() lookups (probes reset values between epochs
     * with clearValues()).
     */
    void set(CounterKey key, double v);

    /** String-keyed convenience (interns @p key). */
    void set(const std::string &key, double v);

    /** Look up a value by key; fatal() when absent. */
    double value(CounterKey key) const;
    double value(const std::string &key) const;

    /** Whether a value with @p key exists. */
    bool has(CounterKey key) const;
    bool has(const std::string &key) const;

    /** Drop all values (reuse helper for per-epoch scratch samples). */
    void clearValues() { values.clear(); }
};

/**
 * Fan-out bus for counter samples. Owns the epoch width so every
 * probe publishing into it samples on the same grid.
 */
class CounterBus
{
  public:
    using Subscriber = std::function<void(const CounterSample &)>;

    explicit CounterBus(Cycles epoch_cycles = kDefaultEpochCycles);

    /** Epoch width in cycles (never zero). */
    Cycles epochCycles() const { return epochCycles_; }

    /** Attach a subscriber; samples arrive in subscription order. */
    void subscribe(Subscriber s);

    /** Whether anything is listening. */
    bool hasSubscribers() const { return !subs_.empty(); }

    /** Deliver @p s to every subscriber, in subscription order. */
    void publish(const CounterSample &s);

    /** Total samples published so far. */
    std::uint64_t published() const { return published_; }

  private:
    Cycles epochCycles_;
    std::vector<Subscriber> subs_;
    std::uint64_t published_ = 0;
};

} // namespace pktchase::sim

#endif // PKTCHASE_SIM_COUNTER_BUS_HH
