/**
 * @file
 * Minimal gem5-style status and error reporting helpers.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user/configuration errors that make continuing impossible;
 * warn()/inform() report conditions without stopping the simulation.
 */

#ifndef PKTCHASE_SIM_LOGGING_HH
#define PKTCHASE_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pktchase
{

/** Verbosity threshold for inform(); 0 silences informational output. */
extern int logVerbosity;

/**
 * Report an unrecoverable internal error and abort.
 * Call only for conditions that indicate a simulator bug.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const std::string &msg);

/** Report a suspicious but survivable condition. */
void warn(const std::string &msg);

/** Report normal operating status (suppressed when logVerbosity == 0). */
void inform(const std::string &msg);

} // namespace pktchase

#endif // PKTCHASE_SIM_LOGGING_HH
