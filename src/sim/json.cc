#include "json.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pktchase::sim
{

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out, std::string &err)
    {
        out = value();
        skipWs();
        if (!failed_ && pos_ != text_.size())
            fail("trailing junk after JSON value");
        if (failed_)
            err = err_;
        return !failed_;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return '\0';
        }
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        else
            ++pos_;
    }

    void
    fail(const std::string &why)
    {
        if (!failed_)
            err_ = "JSON parse error at byte " + std::to_string(pos_) +
                   ": " + why;
        failed_ = true;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size())
                c = text_[pos_++];
            out.push_back(c);
        }
        expect('"');
        return out;
    }

    JsonValue
    value()
    {
        const char c = peek();
        JsonValue v;
        if (failed_)
            return v;
        if (c == '{') {
            ++pos_;
            v.kind = JsonValue::Object;
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (!failed_) {
                std::string key = string();
                expect(':');
                v.obj.emplace_back(std::move(key), value());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
            expect('}');
        } else if (c == '[') {
            ++pos_;
            v.kind = JsonValue::Array;
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (!failed_) {
                v.arr.push_back(value());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
            expect(']');
        } else if (c == '"') {
            v.kind = JsonValue::String;
            v.str = string();
        } else {
            v.kind = JsonValue::Number;
            char *end = nullptr;
            v.num = std::strtod(text_.c_str() + pos_, &end);
            if (end == text_.c_str() + pos_)
                fail("expected a number");
            pos_ = static_cast<std::size_t>(end - text_.c_str());
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string err_;
};

const char *
kindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Null:
        return "null";
      case JsonValue::Number:
        return "number";
      case JsonValue::String:
        return "string";
      case JsonValue::Array:
        return "array";
      case JsonValue::Object:
        return "object";
    }
    return "?";
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &kv : obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

const JsonValue *
JsonValue::require(const std::string &key, Kind want,
                   const std::string &what, std::string &err) const
{
    const JsonValue *v = find(key);
    if (!v) {
        err = what + ": missing \"" + key + "\"";
        return nullptr;
    }
    if (v->kind != want) {
        err = what + ": \"" + key + "\" is not a " + kindName(want);
        return nullptr;
    }
    return v;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &err)
{
    return Parser(text).parse(out, err);
}

bool
parseJsonFile(const std::string &path, JsonValue &out, std::string &err)
{
    std::ifstream in(path);
    if (!in.good()) {
        err = "cannot read " + path;
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    if (!parseJson(ss.str(), out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

} // namespace pktchase::sim
