#include "event_queue.hh"

#include <utility>

#include "logging.hh"
#include "obs/stats.hh"

namespace pktchase
{

void
EventQueue::siftUp(std::size_t i)
{
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!earlier(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t left = 2 * i + 1;
        if (left >= n)
            break;
        std::size_t best = left;
        std::size_t right = left + 1;
        if (right < n && earlier(heap_[right], heap_[left]))
            best = right;
        if (!earlier(heap_[best], heap_[i]))
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

EventQueue::Entry
EventQueue::popTop()
{
    Entry top = std::move(heap_[0]);
    heap_[0] = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    return top;
}

void
EventQueue::schedule(Cycles when, Callback cb)
{
    if (when < now_)
        panic("EventQueue::schedule into the past");
    heap_.push_back(Entry{when, nextSeq_++, std::move(cb)});
    siftUp(heap_.size() - 1);
}

void
EventQueue::scheduleAfter(Cycles delta, Callback cb)
{
    schedule(now_ + delta, std::move(cb));
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    Entry e = popTop();
    now_ = e.when;
    obs::bump(obs::Stat::SimEvents);
    e.cb();
    return true;
}

bool
EventQueue::tryAdvanceWithin(Cycles when)
{
    if (!inRun_ || when > activeHorizon_ || when < now_)
        return false;
    if (!heap_.empty() && heap_[0].when <= when)
        return false;
    now_ = when;
    obs::bump(obs::Stat::SimEvents);
    return true;
}

std::size_t
EventQueue::runUntil(Cycles horizon)
{
    // Save/restore so nested runUntil calls (an event driving a
    // sub-simulation) keep the outer horizon intact.
    const bool outerInRun = inRun_;
    const Cycles outerHorizon = activeHorizon_;
    inRun_ = true;
    activeHorizon_ = horizon;

    std::size_t executed = 0;
    while (!heap_.empty() && heap_[0].when <= horizon) {
        step();
        ++executed;
    }
    if (now_ < horizon)
        now_ = horizon;

    inRun_ = outerInRun;
    activeHorizon_ = outerHorizon;
    return executed;
}

} // namespace pktchase
