#include "event_queue.hh"

#include <utility>

#include "logging.hh"
#include "obs/stats.hh"

namespace pktchase
{

void
EventQueue::schedule(Cycles when, Callback cb)
{
    if (when < now_)
        panic("EventQueue::schedule into the past");
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Cycles delta, Callback cb)
{
    schedule(now_ + delta, std::move(cb));
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    obs::bump(obs::Stat::SimEvents);
    e.cb();
    return true;
}

std::size_t
EventQueue::runUntil(Cycles horizon)
{
    std::size_t executed = 0;
    while (!heap_.empty() && heap_.top().when <= horizon) {
        step();
        ++executed;
    }
    if (now_ < horizon)
        now_ = horizon;
    return executed;
}

} // namespace pktchase
