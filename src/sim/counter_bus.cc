#include "counter_bus.hh"

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace pktchase::sim
{

double
CounterSample::value(const std::string &key) const
{
    for (const auto &kv : values)
        if (kv.first == key)
            return kv.second;
    fatal("CounterSample: no value named '" + key + "' in sample from '" +
          source + "'");
}

bool
CounterSample::has(const std::string &key) const
{
    for (const auto &kv : values)
        if (kv.first == key)
            return true;
    return false;
}

CounterBus::CounterBus(Cycles epoch_cycles)
    : epochCycles_(epoch_cycles)
{
    if (epochCycles_ == 0)
        fatal("CounterBus: epoch width must be nonzero");
}

void
CounterBus::subscribe(Subscriber s)
{
    if (!s)
        fatal("CounterBus: cannot subscribe an empty callback");
    subs_.push_back(std::move(s));
}

void
CounterBus::publish(const CounterSample &s)
{
    const obs::ScopedSpan span("detect.epoch", "detect");
    obs::bump(obs::Stat::DetectorEpochs);
    ++published_;
    for (const Subscriber &sub : subs_)
        sub(s);
}

} // namespace pktchase::sim
