#include "counter_bus.hh"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace pktchase::sim
{

namespace
{

/**
 * Process-wide intern table. The deque gives every interned spelling
 * a stable address, so CounterKey::str() can hand out references
 * without holding the lock. Ids are 1-based; 0 is the invalid key.
 */
struct InternRegistry
{
    std::mutex mu;
    std::unordered_map<std::string, std::uint32_t> ids;
    std::deque<std::string> names;
};

InternRegistry &
registry()
{
    static InternRegistry r;
    return r;
}

} // namespace

CounterKey
CounterKey::intern(const std::string &name)
{
    InternRegistry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.ids.find(name);
    if (it != r.ids.end())
        return CounterKey(it->second);
    r.names.push_back(name);
    const auto id = static_cast<std::uint32_t>(r.names.size());
    r.ids.emplace(name, id);
    return CounterKey(id);
}

const std::string &
CounterKey::str() const
{
    if (id_ == 0)
        fatal("CounterKey: str() on an invalid (default) key");
    // names never shrinks and deque elements never move, so the
    // reference stays valid after the lock drops.
    InternRegistry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.names[id_ - 1];
}

void
CounterSample::set(CounterKey key, double v)
{
    if (!key.valid())
        fatal("CounterSample: set() with an invalid key");
    for (const auto &kv : values)
        if (kv.first == key)
            fatal("CounterSample: duplicate key '" + key.str() +
                  "' in sample from '" + source + "'");
    values.emplace_back(key, v);
}

void
CounterSample::set(const std::string &key, double v)
{
    set(CounterKey::intern(key), v);
}

double
CounterSample::value(CounterKey key) const
{
    for (const auto &kv : values)
        if (kv.first == key)
            return kv.second;
    fatal("CounterSample: no value named '" + key.str() +
          "' in sample from '" + source + "'");
}

double
CounterSample::value(const std::string &key) const
{
    return value(CounterKey::intern(key));
}

bool
CounterSample::has(CounterKey key) const
{
    for (const auto &kv : values)
        if (kv.first == key)
            return true;
    return false;
}

bool
CounterSample::has(const std::string &key) const
{
    return has(CounterKey::intern(key));
}

CounterBus::CounterBus(Cycles epoch_cycles)
    : epochCycles_(epoch_cycles)
{
    if (epochCycles_ == 0)
        fatal("CounterBus: epoch width must be nonzero");
}

void
CounterBus::subscribe(Subscriber s)
{
    if (!s)
        fatal("CounterBus: cannot subscribe an empty callback");
    subs_.push_back(std::move(s));
}

void
CounterBus::publish(const CounterSample &s)
{
    static const obs::ProfilePhase kEpochPhase{"detect.epoch", "detect"};
    const obs::ScopedSpan span(kEpochPhase);
    obs::bump(obs::Stat::DetectorEpochs);
    ++published_;
    for (const Subscriber &sub : subs_)
        sub(s);
}

} // namespace pktchase::sim
