/**
 * @file
 * Shared bench-summary emission: the one place that knows how a bench
 * serializes its cells into a BENCH_<name>.json artifact and which
 * metric keys make up the standard latency-percentile row.
 *
 * Every metric is emitted twice: as a readable decimal and as a C99
 * hexfloat ("%a"), so performance-tracking tooling can diff artifacts
 * bit-exactly across commits the same way the golden tests diff
 * formatReport() output. The benches (fig14, fig16, fingerprint,
 * detection) all route their JSON through this helper instead of
 * hand-rolling fprintf blocks.
 *
 * Lives in sim so every layer above (bench front-ends, workload
 * harnesses) can use it; cells are plain (name, metrics) pairs --
 * runtime::ScenarioResult::metrics is exactly the accepted shape.
 */

#ifndef PKTCHASE_SIM_BENCH_REPORT_HH
#define PKTCHASE_SIM_BENCH_REPORT_HH

#include <string>
#include <utility>
#include <vector>

namespace pktchase::sim
{

/** The latency-percentile keys the latency grids emit, in order. */
extern const std::vector<std::string> kPercentileKeys;

/**
 * Accumulates named scalars and cells, then writes
 * BENCH_<name>.json.
 */
class BenchReport
{
  public:
    using Metrics = std::vector<std::pair<std::string, double>>;

    /** @param name Artifact stem: BENCH_<name>.json. */
    explicit BenchReport(std::string name);

    /** Set a top-level scalar (insertion-ordered; last write wins). */
    void scalar(const std::string &key, double value);

    /** Append one cell. @p metrics is copied. */
    void cell(const std::string &name, const Metrics &metrics);

    /**
     * Write the artifact. @p path overrides the default
     * "BENCH_<name>.json".
     * @return false (with a message on stderr) when the file cannot
     *         be written.
     */
    bool write(const std::string &path = "") const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    Metrics scalars_;
    std::vector<std::pair<std::string, Metrics>> cells_;
};

} // namespace pktchase::sim

#endif // PKTCHASE_SIM_BENCH_REPORT_HH
