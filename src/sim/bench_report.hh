/**
 * @file
 * Shared bench-summary emission: the one place that knows how a bench
 * serializes its cells into a BENCH_<name>.json artifact and which
 * metric keys make up the standard latency-percentile row.
 *
 * Every metric is emitted twice: as a readable decimal and as a C99
 * hexfloat ("%a"), so performance-tracking tooling can diff artifacts
 * bit-exactly across commits the same way the golden tests diff
 * formatReport() output. The benches (fig14, fig16, fingerprint,
 * detection) all route their JSON through this helper instead of
 * hand-rolling fprintf blocks.
 *
 * The campaign shard layer reuses the same writer for its mergeable
 * per-shard reports: meta() records string-valued header fields (grid
 * name, shard spec, exact 64-bit seeds as strings -- doubles cannot
 * hold them), and the row-tagged cell() overload stamps each cell
 * with its full-grid index and scenario seed so a merge tool can
 * validate and reassemble shards bit-identically (see
 * runtime/fabric/shard.hh).
 *
 * Lives in sim so every layer above (bench front-ends, workload
 * harnesses) can use it; cells are plain (name, metrics) pairs --
 * runtime::ScenarioResult::metrics is exactly the accepted shape.
 */

#ifndef PKTCHASE_SIM_BENCH_REPORT_HH
#define PKTCHASE_SIM_BENCH_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/manifest.hh"

namespace pktchase::sim
{

/** The latency-percentile keys the latency grids emit, in order. */
extern const std::vector<std::string> kPercentileKeys;

/**
 * Accumulates named scalars and cells, then writes
 * BENCH_<name>.json.
 */
class BenchReport
{
  public:
    using Metrics = std::vector<std::pair<std::string, double>>;

    /** @param name Artifact stem: BENCH_<name>.json. */
    explicit BenchReport(std::string name);

    /** Set a top-level scalar (insertion-ordered; last write wins). */
    void scalar(const std::string &key, double value);

    /**
     * Set a top-level string field (insertion-ordered; last write
     * wins). Emitted before the numeric scalars. Use for identity
     * metadata a double cannot carry exactly: grid names, shard
     * specs, 64-bit seeds.
     */
    void meta(const std::string &key, const std::string &value);

    /**
     * Override the provenance manifest embedded in the artifact.
     * Unset, write() stamps obs::RunManifest::host() -- every report
     * the repo emits records which build produced it. The campaign
     * shard layer overrides with the hostname-free
     * obs::RunManifest::build() so shard reports from different CI
     * runners of the same commit still merge byte-identically.
     */
    void manifest(const obs::RunManifest &m);

    /** Append one cell. @p metrics is copied. */
    void cell(const std::string &name, const Metrics &metrics);

    /**
     * Append one row-tagged cell: a cell that also records its
     * full-grid @p index and per-cell @p seed (emitted as a hex
     * string), the two fields the shard-merge protocol validates.
     */
    void cell(std::size_t index, std::uint64_t seed,
              const std::string &name, const Metrics &metrics);

    /**
     * Write the artifact. @p path overrides the default
     * "BENCH_<name>.json".
     * @return false (with a message on stderr) when the file cannot
     *         be written.
     */
    bool write(const std::string &path = "") const;

    const std::string &name() const { return name_; }

  private:
    struct Cell
    {
        std::string name;
        Metrics metrics;
        bool hasRow = false;     ///< index/seed tagged?
        std::size_t index = 0;   ///< Full-grid index (row cells).
        std::uint64_t seed = 0;  ///< Scenario seed (row cells).
    };

    std::string name_;
    obs::RunManifest manifest_;
    bool manifestSet_ = false;
    std::vector<std::pair<std::string, std::string>> metas_;
    Metrics scalars_;
    std::vector<Cell> cells_;
};

} // namespace pktchase::sim

#endif // PKTCHASE_SIM_BENCH_REPORT_HH
