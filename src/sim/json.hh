/**
 * @file
 * A deliberately minimal JSON reader: just enough of the grammar to
 * consume the artifacts this codebase writes itself (sim::BenchReport
 * files and the campaign shard reports) -- objects, arrays, strings
 * with the backslash escapes the writers emit, and numbers via strtod.
 *
 * This is a *round-trip* parser for our own output, not a general
 * JSON library: no unicode escapes, no booleans/null keywords beyond
 * what the writers produce. The shard-merge tool is the main
 * consumer; tests/bench_report_test.cc uses it to validate BenchReport
 * emission. Errors are reported as a position-stamped message, never
 * by aborting, so callers (the merge CLI) can reject a malformed
 * shard file with a clear diagnostic instead of dying.
 */

#ifndef PKTCHASE_SIM_JSON_HH
#define PKTCHASE_SIM_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace pktchase::sim
{

/** One parsed JSON value; a tagged tree. */
struct JsonValue
{
    enum Kind { Null, Number, String, Array, Object } kind = Null;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    /** Object members in document order (duplicates preserved). */
    std::vector<std::pair<std::string, JsonValue>> obj;

    /** First member named @p key, or nullptr. Object kind only. */
    const JsonValue *find(const std::string &key) const;

    /** find() that errors into @p err (and returns nullptr) when the
     *  member is missing or not of @p kind; @p what names the file or
     *  context for the message. */
    const JsonValue *require(const std::string &key, Kind kind,
                             const std::string &what,
                             std::string &err) const;
};

/**
 * Parse @p text into @p out. Returns true on success; on failure
 * returns false and describes the first error in @p err (byte offset
 * included). Trailing non-whitespace after the value is an error.
 */
bool parseJson(const std::string &text, JsonValue &out, std::string &err);

/** Slurp @p path and parse it; false + @p err on I/O or parse error. */
bool parseJsonFile(const std::string &path, JsonValue &out,
                   std::string &err);

} // namespace pktchase::sim

#endif // PKTCHASE_SIM_JSON_HH
