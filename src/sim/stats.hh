/**
 * @file
 * Statistics utilities used throughout the evaluation harness.
 *
 * Includes the two metrics the paper relies on: Levenshtein (edit)
 * distance, used both to score recovered ring sequences against ground
 * truth (Table I) and to compute covert-channel error rates (Sec. IV),
 * and normalized cross-correlation, used by the website-fingerprinting
 * classifier (Sec. V).
 */

#ifndef PKTCHASE_SIM_STATS_HH
#define PKTCHASE_SIM_STATS_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pktchase
{

/**
 * Levenshtein distance between two sequences: the minimum number of
 * single-element insertions, deletions, or substitutions transforming
 * @p a into @p b. O(|a|*|b|) time, O(min) space.
 */
template <typename Seq>
std::size_t
levenshtein(const Seq &a, const Seq &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n == 0)
        return m;
    if (m == 0)
        return n;

    std::vector<std::size_t> prev(m + 1), curr(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;

    for (std::size_t i = 1; i <= n; ++i) {
        curr[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
            curr[j] = std::min({prev[j] + 1,          // deletion
                                curr[j - 1] + 1,      // insertion
                                prev[j - 1] + sub_cost});
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

/**
 * Levenshtein distance between two cyclic sequences, minimized over all
 * rotations of @p a. The recovered ring-buffer sequence has no defined
 * starting point, so Table I-style scoring must be rotation-invariant.
 */
template <typename Seq>
std::size_t
cyclicLevenshtein(const Seq &a, const Seq &b)
{
    if (a.empty() || b.empty())
        return levenshtein(a, b);
    std::size_t best = static_cast<std::size_t>(-1);
    Seq rotated = a;
    for (std::size_t r = 0; r < a.size(); ++r) {
        best = std::min(best, levenshtein(rotated, b));
        std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
    }
    return best;
}

/**
 * Length of the longest run of positions that mismatch under the optimal
 * global alignment of @p a against @p b ("Longest Mismatch" in Table I).
 */
std::size_t longestMismatchRun(const std::vector<int> &a,
                               const std::vector<int> &b);

/**
 * Edit-operation breakdown of the optimal alignment of @p sent
 * against @p received: matches, substitutions (symbol errors on
 * synchronized pairs), deletions (sent elements never received), and
 * insertions (spurious receptions). Used to score covert channels the
 * way the paper does -- error rate on synchronized regions, loss
 * accounted separately.
 */
struct EditOps
{
    std::size_t matches = 0;
    std::size_t substitutions = 0;
    std::size_t deletions = 0;
    std::size_t insertions = 0;
};

EditOps editOperations(const std::vector<unsigned> &sent,
                       const std::vector<unsigned> &received);

/** Summary statistics over a sample of doubles. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double ciLow = 0.0;   ///< 95% confidence interval, lower bound
    double ciHigh = 0.0;  ///< 95% confidence interval, upper bound
};

/** Compute Summary statistics for a sample. */
Summary summarize(const std::vector<double> &samples);

/**
 * Shannon entropy, in bits, of the distribution described by a
 * histogram of nonnegative counts. Zero counts contribute nothing;
 * zero total mass yields 0. The single numeric kernel behind the
 * telemetry probes' recycle-entropy counters and the entropy-drop
 * detector, so the two sides can never drift apart numerically.
 */
double shannonEntropyBits(const std::vector<double> &counts);

/**
 * shannonEntropyBits normalized by the histogram's maximum
 * (log2(bins)), in [0, 1]; degenerate histograms (fewer than two
 * bins, or no mass) yield 1 -- "as spread out as possible".
 */
double normalizedShannonEntropy(const std::vector<double> &counts);

/**
 * Percentile of a sample using linear interpolation between order
 * statistics. @p p is in [0, 100].
 */
double percentile(std::vector<double> samples, double p);

/**
 * Normalized cross-correlation of two equal-meaning series at zero lag,
 * maximized over lags in [-maxLag, maxLag]. Returns a value in [-1, 1];
 * series shorter than 2 after alignment yield 0.
 */
double maxCrossCorrelation(const std::vector<double> &x,
                           const std::vector<double> &y,
                           int max_lag);

/** Pearson correlation of two equal-length series (0 if degenerate). */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Fixed-width histogram helper used by the mapping-distribution
 * experiments (Figs. 5 and 6).
 */
class Histogram
{
  public:
    /** Construct with @p bins buckets covering integer values [0, bins). */
    explicit Histogram(std::size_t bins);

    /** Count one observation of @p value; values >= bins clamp to last. */
    void add(std::size_t value);

    /** Number of observations in bucket @p bin. */
    std::uint64_t count(std::size_t bin) const;

    /** Total number of observations. */
    std::uint64_t total() const { return total_; }

    /** Number of buckets. */
    std::size_t bins() const { return counts_.size(); }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace pktchase

#endif // PKTCHASE_SIM_STATS_HH
