/**
 * @file
 * Maximal-length linear feedback shift registers.
 *
 * Section IV of the paper measures covert-channel capacity by
 * transmitting the pseudo-random bit sequence of a 15-bit LFSR with
 * period 2^15 - 1 (following Liu et al.), which makes bit loss, bit
 * insertion, and swaps all detectable. This class implements Fibonacci
 * LFSRs with known maximal-length taps for a range of widths so tests
 * can sweep the property.
 */

#ifndef PKTCHASE_SIM_LFSR_HH
#define PKTCHASE_SIM_LFSR_HH

#include <cstdint>
#include <vector>

namespace pktchase
{

/**
 * Fibonacci LFSR over GF(2) with maximal-length feedback taps.
 */
class Lfsr
{
  public:
    /**
     * Construct an LFSR.
     *
     * @param width Register width in bits; supported widths are those in
     *              supportedWidths().
     * @param seed  Initial state; must be nonzero after masking to width.
     */
    explicit Lfsr(unsigned width = 15, std::uint32_t seed = 0x1u);

    /** Advance one step and return the output bit (0 or 1). */
    unsigned nextBit();

    /** Produce the next @p count bits as a vector of 0/1 values. */
    std::vector<unsigned> bits(std::size_t count);

    /** Current register state (never zero). */
    std::uint32_t state() const { return state_; }

    /** Register width in bits. */
    unsigned width() const { return width_; }

    /** Sequence period for a maximal-length LFSR of this width. */
    std::uint64_t period() const { return (1ull << width_) - 1; }

    /** Widths for which maximal-length taps are tabulated. */
    static std::vector<unsigned> supportedWidths();

  private:
    unsigned width_;
    std::uint32_t mask_;
    std::uint32_t taps_;
    std::uint32_t state_;
};

} // namespace pktchase

#endif // PKTCHASE_SIM_LFSR_HH
