#include "bench_report.hh"

#include <cinttypes>
#include <cstdio>

namespace pktchase::sim
{

const std::vector<std::string> kPercentileKeys = {
    "p50", "p90", "p99", "p99_9", "p99_99",
};

namespace
{

/** Escape the characters JSON string literals cannot hold raw. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** One metrics map as {"k": v, ...} with a parallel hexfloat map. */
void
writeMetrics(FILE *f, const BenchReport::Metrics &metrics,
             const char *indent)
{
    std::fprintf(f, "%s\"metrics\": {", indent);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %.17g", i ? ", " : "",
                     jsonEscape(metrics[i].first).c_str(),
                     metrics[i].second);
    }
    std::fprintf(f, "},\n%s\"hex\": {", indent);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        std::fprintf(f, "%s\"%s\": \"%a\"", i ? ", " : "",
                     jsonEscape(metrics[i].first).c_str(),
                     metrics[i].second);
    }
    std::fprintf(f, "}");
}

} // namespace

BenchReport::BenchReport(std::string name)
    : name_(std::move(name))
{
}

void
BenchReport::scalar(const std::string &key, double value)
{
    for (auto &kv : scalars_) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    scalars_.emplace_back(key, value);
}

void
BenchReport::meta(const std::string &key, const std::string &value)
{
    for (auto &kv : metas_) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    metas_.emplace_back(key, value);
}

void
BenchReport::manifest(const obs::RunManifest &m)
{
    manifest_ = m;
    manifestSet_ = true;
}

void
BenchReport::cell(const std::string &name, const Metrics &metrics)
{
    Cell c;
    c.name = name;
    c.metrics = metrics;
    cells_.push_back(std::move(c));
}

void
BenchReport::cell(std::size_t index, std::uint64_t seed,
                  const std::string &name, const Metrics &metrics)
{
    Cell c;
    c.name = name;
    c.metrics = metrics;
    c.hasRow = true;
    c.index = index;
    c.seed = seed;
    cells_.push_back(std::move(c));
}

bool
BenchReport::write(const std::string &path) const
{
    const std::string target =
        path.empty() ? "BENCH_" + name_ + ".json" : path;
    FILE *f = std::fopen(target.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "BenchReport: cannot write %s\n",
                     target.c_str());
        return false;
    }

    std::fprintf(f, "{\n  \"bench\": \"%s\",\n",
                 jsonEscape(name_).c_str());
    const obs::RunManifest m =
        manifestSet_ ? manifest_ : obs::RunManifest::host();
    std::fprintf(f,
                 "  \"manifest\": {\"git_sha\": \"%s\", "
                 "\"compiler\": \"%s\", \"build_flags\": \"%s\"",
                 jsonEscape(m.gitSha).c_str(),
                 jsonEscape(m.compiler).c_str(),
                 jsonEscape(m.buildFlags).c_str());
    if (!m.hostname.empty())
        std::fprintf(f, ", \"hostname\": \"%s\"",
                     jsonEscape(m.hostname).c_str());
    if (m.threads != 0)
        std::fprintf(f, ", \"threads\": %u", m.threads);
    std::fprintf(f, "},\n");
    for (const auto &kv : metas_) {
        std::fprintf(f, "  \"%s\": \"%s\",\n",
                     jsonEscape(kv.first).c_str(),
                     jsonEscape(kv.second).c_str());
    }
    for (const auto &kv : scalars_) {
        std::fprintf(f, "  \"%s\": %.17g,\n",
                     jsonEscape(kv.first).c_str(), kv.second);
    }
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const Cell &c = cells_[i];
        std::fprintf(f, "    {");
        if (c.hasRow) {
            std::fprintf(f, "\"index\": %zu, \"seed\": \"0x%016" PRIx64
                            "\",\n     ",
                         c.index, c.seed);
        }
        std::fprintf(f, "\"name\": \"%s\",\n",
                     jsonEscape(c.name).c_str());
        writeMetrics(f, c.metrics, "     ");
        std::fprintf(f, "}%s\n", i + 1 < cells_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

} // namespace pktchase::sim
