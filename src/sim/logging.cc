#include "logging.hh"

namespace pktchase
{

int logVerbosity = 1;

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (logVerbosity > 0)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace pktchase
