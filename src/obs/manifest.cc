#include "manifest.hh"

#ifdef __unix__
#include <unistd.h>
#endif

// CMake injects these as source-file compile definitions on
// manifest.cc only (so touching provenance never rebuilds the world).
#ifndef PKTCHASE_GIT_SHA
#define PKTCHASE_GIT_SHA "unknown"
#endif
#ifndef PKTCHASE_COMPILER
#define PKTCHASE_COMPILER "unknown"
#endif
#ifndef PKTCHASE_BUILD_FLAGS
#define PKTCHASE_BUILD_FLAGS "unknown"
#endif

namespace pktchase::obs
{

RunManifest
RunManifest::build()
{
    RunManifest m;
    m.gitSha = PKTCHASE_GIT_SHA;
    m.compiler = PKTCHASE_COMPILER;
    m.buildFlags = PKTCHASE_BUILD_FLAGS;
    return m;
}

RunManifest
RunManifest::host(unsigned threads)
{
    RunManifest m = build();
    m.threads = threads;
#ifdef __unix__
    char buf[256] = {};
    if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0')
        m.hostname = buf;
#endif
    if (m.hostname.empty())
        m.hostname = "unknown-host";
    return m;
}

} // namespace pktchase::obs
