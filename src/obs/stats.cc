#include "stats.hh"

#include "sim/logging.hh"

namespace pktchase::obs
{

const char *
statName(Stat s)
{
    switch (s) {
      case Stat::SimEvents:
        return "sim_events";
      case Stat::FramesDelivered:
        return "frames_delivered";
      case Stat::LlcAccesses:
        return "llc_accesses";
      case Stat::LlcMisses:
        return "llc_misses";
      case Stat::ProbeRounds:
        return "probe_rounds";
      case Stat::PolicyHooks:
        return "policy_hooks";
      case Stat::DetectorEpochs:
        return "detector_epochs";
      case Stat::CellsStolen:
        return "cells_stolen";
      case Stat::StealAttempts:
        return "steal_attempts";
      case Stat::TasksExecuted:
        return "tasks_executed";
      case Stat::TasksStolen:
        return "tasks_stolen";
    }
    panic("obs::statName: unknown Stat");
}

StatSnapshot
StatSnapshot::operator-(const StatSnapshot &earlier) const
{
    StatSnapshot out;
    for (std::size_t i = 0; i < kStatCount; ++i) {
        if (counts[i] < earlier.counts[i])
            panic("obs::StatSnapshot: counters ran backwards");
        out.counts[i] = counts[i] - earlier.counts[i];
    }
    return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatSnapshot::toCounters() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(kStatCount);
    for (std::size_t i = 0; i < kStatCount; ++i)
        out.emplace_back(statName(static_cast<Stat>(i)), counts[i]);
    return out;
}

StatSnapshot
snapshot()
{
    StatSnapshot s;
    s.counts = detail::tlsStats().counts;
    return s;
}

} // namespace pktchase::obs
