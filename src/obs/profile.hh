/**
 * @file
 * In-process profile aggregation: streaming per-phase statistics the
 * existing span stream folds into at span close, instead of (or in
 * addition to) appending trace events for offline viewing.
 *
 * The trace layer answers "what happened when" by shipping every span
 * to a multi-MB Chrome trace; this layer answers "where does the wall
 * clock go" *in-process*: each profiled span site registers a
 * ProfilePhase once (interning its name into a small integer id, the
 * same trick as sim::CounterKey), and closing a span adds its duration
 * into the calling thread's fixed slot for that id -- count, total and
 * self wall-time, min/max, and a log2-bucketed latency histogram. No
 * string keys, no allocation, no lock on the hot path: a slot update
 * is a handful of thread-local integer adds.
 *
 * Self-time uses a per-thread stack of open profiled spans: a closing
 * span charges its duration to the parent frame's child accumulator,
 * so a phase's self time is its total minus the profiled spans nested
 * inside it (nesting is RAII, hence strictly LIFO per thread).
 *
 * Draining: obs::drainProfile() *moves* the calling thread's
 * accumulated stats out and resets the slots. The campaign executor
 * drains around every (cell, task) unit -- exactly like the counter
 * snapshot deltas -- so per-cell profiles exist, merge across task
 * folds and shards, and obey the determinism drill: a unit runs
 * start-to-finish on one thread, so its drained profile depends only
 * on the work it did, not on which worker ran it.
 *
 * Zero-cost-when-detached rule (same as tracing): with no
 * ProfileSession active -- the default everywhere, including every
 * golden test -- the thread-local block pointer is null and a span
 * costs one extra load + branch. Profiling observes wall-clock only
 * and feeds nothing back into the simulation, so goldens pass
 * bit-identically with it compiled in and a profiled campaign report
 * equals an unprofiled one byte-for-byte.
 *
 * Determinism hook: a session may run on a fake clock that advances a
 * fixed number of nanoseconds per query instead of reading the host
 * clock. Durations then depend only on the sequence of clock queries a
 * unit makes -- which is deterministic -- so the byte-identity tests
 * (threads=N == threads=1 per cell, shard-merge == unsharded) can pin
 * profile *values*, not just profile *shape*. Real runs use the wall
 * clock and pin only the deterministic fields (counts, nesting).
 */

#ifndef PKTCHASE_OBS_PROFILE_HH
#define PKTCHASE_OBS_PROFILE_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pktchase::obs
{

/** Hard cap on registered phases (slots are flat per-thread arrays). */
constexpr std::size_t kMaxProfilePhases = 64;

/** Latency histogram buckets per phase (log2 of nanoseconds). */
constexpr std::size_t kProfileHistBuckets = 32;

/**
 * Histogram bucket of a span duration: bucket 0 holds exactly 0 ns,
 * bucket b >= 1 holds [2^(b-1), 2^b) ns, and the last bucket absorbs
 * everything from 2^(kProfileHistBuckets-2) ns (~1.07 s) up.
 */
constexpr std::size_t
profileHistBucket(std::uint64_t durNs)
{
    std::size_t b = 0;
    while (durNs != 0) {
        ++b;
        durNs >>= 1;
    }
    return b < kProfileHistBuckets ? b : kProfileHistBuckets - 1;
}

/** Inclusive lower edge of histogram bucket @p b, in nanoseconds. */
constexpr std::uint64_t
profileHistBucketLowNs(std::size_t b)
{
    return b == 0 ? 0 : std::uint64_t(1) << (b - 1);
}

/**
 * One phase's accumulated statistics. Plain data: merges are
 * element-wise (+, min, max), which is what makes per-task deltas sum
 * into per-cell profiles and per-cell profiles into shard reports.
 */
struct PhaseStats
{
    std::uint64_t count = 0;   ///< Spans closed.
    std::uint64_t totalNs = 0; ///< Inclusive wall time.
    std::uint64_t selfNs = 0;  ///< Total minus profiled children.
    std::uint64_t minNs = ~std::uint64_t(0); ///< Min span; ~0 if none.
    std::uint64_t maxNs = 0;   ///< Max span duration.
    std::array<std::uint64_t, kProfileHistBuckets> hist{};

    bool empty() const { return count == 0; }

    /** Fold one closed span in. @p childNs <= @p durNs. */
    void
    add(std::uint64_t durNs, std::uint64_t childNs)
    {
        ++count;
        totalNs += durNs;
        selfNs += durNs - childNs;
        if (durNs < minNs)
            minNs = durNs;
        if (durNs > maxNs)
            maxNs = durNs;
        ++hist[profileHistBucket(durNs)];
    }

    /** Element-wise merge of another window of the same phase. */
    void
    merge(const PhaseStats &o)
    {
        count += o.count;
        totalNs += o.totalNs;
        selfNs += o.selfNs;
        if (o.minNs < minNs)
            minNs = o.minNs;
        if (o.maxNs > maxNs)
            maxNs = o.maxNs;
        for (std::size_t b = 0; b < kProfileHistBuckets; ++b)
            hist[b] += o.hist[b];
    }
};

/**
 * One drained profile window: stats indexed by phase id. The vector is
 * sized to the number of registered phases (0 when profiling was off),
 * so ScenarioResult carries nothing unless a session is active.
 */
using ProfileDelta = std::vector<PhaseStats>;

/** Merge @p from into @p into (resizing @p into as needed). */
void mergeProfileInto(ProfileDelta &into, const ProfileDelta &from);

/**
 * A registered span site: interns @p name (and a Chrome-trace
 * category) into a process-wide phase id at construction. Define one
 * per instrumented phase with static storage duration:
 *
 *     static const obs::ProfilePhase kDeliver{"nic.deliver", "nic"};
 *     ...
 *     const obs::ScopedSpan span(kDeliver);
 *
 * Registration takes a lock and is meant for static-init /
 * first-use; fatal on a duplicate name or a full table. Ids are
 * assigned in registration order -- stable within a build, but
 * nothing may depend on their magnitude across builds; reports key
 * phases by name.
 */
class ProfilePhase
{
  public:
    ProfilePhase(const char *name, const char *cat);

    unsigned id() const { return id_; }
    const char *name() const { return name_; }
    const char *cat() const { return cat_; }

  private:
    const char *name_;
    const char *cat_;
    unsigned id_;
};

/** Number of phases registered so far. */
std::size_t registeredPhaseCount();

/** Name of phase @p id; fatal when out of range. */
const char *phaseName(std::size_t id);

/** Category of phase @p id; fatal when out of range. */
const char *phaseCat(std::size_t id);

namespace detail
{

/** One thread's private accumulation state. */
struct ProfileBlock
{
    std::array<PhaseStats, kMaxProfilePhases> slots{};

    /** Open profiled spans (strictly LIFO; RAII guarantees nesting). */
    struct Frame
    {
        unsigned phase = 0;
        std::uint64_t startNs = 0;
        std::uint64_t childNs = 0; ///< Total of closed children.
    };
    static constexpr std::size_t kMaxDepth = 64;
    std::array<Frame, kMaxDepth> stack;
    std::size_t depth = 0;
    /** Spans beyond kMaxDepth: counted, recorded as leaves (their
     *  time is not subtracted from any parent's self time). */
    std::uint64_t depthOverflows = 0;

    /** Fake-clock state: 0 = real steady_clock, else ns per query. */
    std::uint64_t tickNs = 0;
    std::uint64_t fakeNowNs = 0;

    std::uint64_t
    now()
    {
        if (tickNs)
            return fakeNowNs += tickNs;
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }
};

extern thread_local ProfileBlock *tlsProfile;

/** Span-open half of the hot path: push a frame for @p phaseId. */
inline void
profileOpen(ProfileBlock *p, unsigned phaseId)
{
    if (p->depth < ProfileBlock::kMaxDepth) {
        ProfileBlock::Frame &f = p->stack[p->depth];
        f.phase = phaseId;
        f.childNs = 0;
        f.startNs = p->now();
    } else {
        ++p->depthOverflows;
    }
    ++p->depth;
}

/** Span-close half: pop, fold into the slot, charge the parent. */
inline void
profileClose(ProfileBlock *p)
{
    --p->depth;
    if (p->depth >= ProfileBlock::kMaxDepth)
        return; // An overflowed leaf: nothing was pushed.
    ProfileBlock::Frame &f = p->stack[p->depth];
    const std::uint64_t endNs = p->now();
    const std::uint64_t durNs =
        endNs > f.startNs ? endNs - f.startNs : 0;
    const std::uint64_t childNs = f.childNs < durNs ? f.childNs : durNs;
    p->slots[f.phase].add(durNs, childNs);
    if (p->depth > 0)
        p->stack[p->depth - 1].childNs += durNs;
}

} // namespace detail

/** Whether the calling thread accumulates into an active session. */
inline bool
profiling()
{
    return detail::tlsProfile != nullptr;
}

/**
 * Move the calling thread's accumulated stats out and reset the
 * slots, returning a vector sized to registeredPhaseCount() (empty
 * when not profiling). Open spans are unaffected: a span that closes
 * after the drain lands, whole, in the next window.
 */
ProfileDelta drainProfile();

/** Depth-cap overflows on the calling thread since attach (0 when
 *  not profiling) -- nonzero means self-times are approximate. */
std::uint64_t profileDepthOverflows();

/**
 * A profile recording: while alive, threads attached to it accumulate
 * phase stats (the constructing thread attaches immediately; campaign
 * workers attach via obs::attachWorkerThread, which serves both the
 * trace and the profile session). At most one session exists at a
 * time (fatal otherwise). The session owns no report: consumers drain
 * per-thread windows (the campaign executor does, per task) and
 * assemble their own output.
 *
 * @p tick_ns != 0 selects the deterministic fake clock: every clock
 * query advances the querying thread's clock by that many
 * nanoseconds. Tests (and the CI shard-merge byte-identity check) use
 * it to make profile values, not just shapes, reproducible.
 */
class ProfileSession
{
  public:
    explicit ProfileSession(std::uint64_t tick_ns = 0);
    ~ProfileSession();

    ProfileSession(const ProfileSession &) = delete;
    ProfileSession &operator=(const ProfileSession &) = delete;

    /** Attach the calling thread; fatal when already attached. */
    void attachCurrentThread();

    /** Stop accumulating on the calling thread (no-op if detached). */
    static void detachCurrentThread();

    /** The process-wide active session, or nullptr. */
    static ProfileSession *active();

    std::uint64_t tickNs() const { return tickNs_; }

    /** "wall" or "ticks:<N>" -- the clock tag reports carry so a
     *  deterministic-clock artifact can never pass as a real one. */
    std::string clockTag() const;

  private:
    std::uint64_t tickNs_;
};

} // namespace pktchase::obs

#endif // PKTCHASE_OBS_PROFILE_HH
