#include "trace.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace pktchase::obs
{

namespace detail
{

thread_local TraceBuffer *tlsTrace = nullptr;

} // namespace detail

namespace
{

/** The process-wide session; attach/detach and ctor/dtor synchronize
 *  through the session mutex where it matters (worker attach). */
TraceSession *activeSession = nullptr;

/** Escape the characters JSON string literals cannot hold raw. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

const char *
eventName(const detail::TraceEvent &e)
{
    return e.name ? e.name : e.dynName.c_str();
}

} // namespace

TraceSession::TraceSession(std::string path, std::size_t event_cap)
    : path_(std::move(path)), eventCap_(event_cap),
      start_(std::chrono::steady_clock::now())
{
    if (activeSession)
        fatal("TraceSession: a session is already active");
    if (path_.empty())
        fatal("TraceSession: empty output path");
    if (eventCap_ == 0)
        fatal("TraceSession: event cap must be nonzero");
    activeSession = this;
    attachCurrentThread(0, "driver");
}

TraceSession::~TraceSession()
{
    detachCurrentThread();
    write();
    activeSession = nullptr;
}

TraceSession *
TraceSession::active()
{
    return activeSession;
}

void
TraceSession::attachCurrentThread(std::uint32_t tid, std::string name)
{
    if (detail::tlsTrace)
        fatal("TraceSession: this thread is already attached");
    auto buf = std::make_unique<detail::TraceBuffer>();
    buf->tid = tid;
    buf->threadName = std::move(name);
    buf->cap = eventCap_;
    buf->epoch = start_;
    buf->events.reserve(1024);
    detail::TraceBuffer *raw = buf.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(std::move(buf));
    }
    detail::tlsTrace = raw;
}

void
TraceSession::detachCurrentThread()
{
    detail::tlsTrace = nullptr;
}

std::uint64_t
TraceSession::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t dropped = 0;
    for (const auto &b : buffers_)
        dropped += b->dropped;
    return dropped;
}

std::vector<TraceSession::ThreadDrops>
TraceSession::perThreadDrops() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ThreadDrops> out;
    out.reserve(buffers_.size());
    for (const auto &b : buffers_)
        out.push_back(ThreadDrops{b->tid, b->dropped});
    return out;
}

bool
TraceSession::write()
{
    // Callers must have detached every worker (the campaign joins its
    // workers before returning), so buffers_ is stable here.
    if (written_)
        return writeOk_;
    written_ = true;

    FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "TraceSession: cannot write %s\n",
                     path_.c_str());
        writeOk_ = false;
        return false;
    }

    std::fprintf(f, "{\"displayTimeUnit\": \"ms\",\n"
                    " \"traceEvents\": [\n");
    bool first = true;
    auto comma = [&] {
        if (!first)
            std::fprintf(f, ",\n");
        first = false;
    };

    std::uint64_t dropped = 0;
    for (const auto &b : buffers_) {
        comma();
        std::fprintf(f,
                     "  {\"ph\": \"M\", \"name\": \"thread_name\", "
                     "\"pid\": 0, \"tid\": %u, "
                     "\"args\": {\"name\": \"%s\"}}",
                     b->tid, jsonEscape(b->threadName).c_str());
        for (const detail::TraceEvent &e : b->events) {
            comma();
            if (e.durMicros < 0.0) {
                std::fprintf(f,
                             "  {\"ph\": \"i\", \"s\": \"t\", "
                             "\"name\": \"%s\", \"cat\": \"%s\", "
                             "\"ts\": %.3f, \"pid\": 0, \"tid\": %u}",
                             jsonEscape(eventName(e)).c_str(), e.cat,
                             e.tsMicros, b->tid);
            } else {
                std::fprintf(f,
                             "  {\"ph\": \"X\", \"name\": \"%s\", "
                             "\"cat\": \"%s\", \"ts\": %.3f, "
                             "\"dur\": %.3f, \"pid\": 0, \"tid\": %u}",
                             jsonEscape(eventName(e)).c_str(), e.cat,
                             e.tsMicros, e.durMicros, b->tid);
            }
        }
        if (b->dropped > 0) {
            dropped += b->dropped;
            comma();
            std::fprintf(f,
                         "  {\"ph\": \"i\", \"s\": \"t\", "
                         "\"name\": \"dropped_events: %llu\", "
                         "\"cat\": \"obs\", \"ts\": %.3f, "
                         "\"pid\": 0, \"tid\": %u}",
                         static_cast<unsigned long long>(b->dropped),
                         b->nowMicros(), b->tid);
        }
    }
    std::fprintf(f, "\n ]\n}\n");
    std::fclose(f);

    if (dropped > 0) {
        std::fprintf(stderr,
                     "TraceSession: %llu events dropped (per-thread cap "
                     "%zu reached); the trace is truncated\n",
                     static_cast<unsigned long long>(dropped), eventCap_);
    }
    writeOk_ = true;
    return true;
}

void
attachWorkerThread(unsigned worker_index)
{
    if (TraceSession *s = activeSession)
        s->attachCurrentThread(worker_index + 1,
                               "worker-" + std::to_string(worker_index));
    if (ProfileSession *p = ProfileSession::active())
        p->attachCurrentThread();
}

void
detachWorkerThread()
{
    TraceSession::detachCurrentThread();
    ProfileSession::detachCurrentThread();
}

} // namespace pktchase::obs
