#include "profile.hh"

#include <memory>
#include <mutex>

#include "sim/logging.hh"

namespace pktchase::obs
{

namespace detail
{

thread_local ProfileBlock *tlsProfile = nullptr;

} // namespace detail

namespace
{

/** The phase registry: append-only, guarded for concurrent static
 *  init; lookups after registration are by value (id, const char*). */
struct PhaseRegistry
{
    std::mutex mutex;
    std::size_t count = 0;
    const char *names[kMaxProfilePhases] = {};
    const char *cats[kMaxProfilePhases] = {};
};

PhaseRegistry &
registry()
{
    static PhaseRegistry r;
    return r;
}

/** The process-wide session (same singleton discipline as tracing). */
ProfileSession *activeProfile = nullptr;

/** Blocks owned by the active session, retained until destruction so
 *  a detached worker's pointer never dangles mid-teardown. */
std::mutex blocksMutex;
std::vector<std::unique_ptr<detail::ProfileBlock>> blocks;

} // namespace

ProfilePhase::ProfilePhase(const char *name, const char *cat)
    : name_(name), cat_(cat)
{
    PhaseRegistry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (std::size_t i = 0; i < r.count; ++i) {
        if (std::string(r.names[i]) == name)
            fatal("ProfilePhase: duplicate phase name '" +
                  std::string(name) + "'");
    }
    if (r.count >= kMaxProfilePhases)
        fatal("ProfilePhase: phase table full registering '" +
              std::string(name) + "'");
    id_ = static_cast<unsigned>(r.count);
    r.names[r.count] = name;
    r.cats[r.count] = cat;
    ++r.count;
}

std::size_t
registeredPhaseCount()
{
    PhaseRegistry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.count;
}

const char *
phaseName(std::size_t id)
{
    PhaseRegistry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (id >= r.count)
        fatal("phaseName: id " + std::to_string(id) + " out of range");
    return r.names[id];
}

const char *
phaseCat(std::size_t id)
{
    PhaseRegistry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (id >= r.count)
        fatal("phaseCat: id " + std::to_string(id) + " out of range");
    return r.cats[id];
}

void
mergeProfileInto(ProfileDelta &into, const ProfileDelta &from)
{
    if (from.size() > into.size())
        into.resize(from.size());
    for (std::size_t i = 0; i < from.size(); ++i)
        into[i].merge(from[i]);
}

ProfileDelta
drainProfile()
{
    detail::ProfileBlock *p = detail::tlsProfile;
    if (!p)
        return {};
    ProfileDelta out(registeredPhaseCount());
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = p->slots[i];
        p->slots[i] = PhaseStats{};
    }
    return out;
}

std::uint64_t
profileDepthOverflows()
{
    detail::ProfileBlock *p = detail::tlsProfile;
    return p ? p->depthOverflows : 0;
}

ProfileSession::ProfileSession(std::uint64_t tick_ns) : tickNs_(tick_ns)
{
    if (activeProfile)
        fatal("ProfileSession: a session is already active");
    activeProfile = this;
    attachCurrentThread();
}

ProfileSession::~ProfileSession()
{
    detachCurrentThread();
    activeProfile = nullptr;
    std::lock_guard<std::mutex> lock(blocksMutex);
    blocks.clear();
}

ProfileSession *
ProfileSession::active()
{
    return activeProfile;
}

void
ProfileSession::attachCurrentThread()
{
    if (detail::tlsProfile)
        fatal("ProfileSession: this thread is already attached");
    auto block = std::make_unique<detail::ProfileBlock>();
    block->tickNs = tickNs_;
    detail::ProfileBlock *raw = block.get();
    {
        std::lock_guard<std::mutex> lock(blocksMutex);
        blocks.push_back(std::move(block));
    }
    detail::tlsProfile = raw;
}

void
ProfileSession::detachCurrentThread()
{
    detail::tlsProfile = nullptr;
}

std::string
ProfileSession::clockTag() const
{
    if (tickNs_ == 0)
        return "wall";
    return "ticks:" + std::to_string(tickNs_);
}

} // namespace pktchase::obs
