/**
 * @file
 * Hot-path metrics: a fixed set of per-thread monotonic counters the
 * simulator's inner loops bump unconditionally.
 *
 * This is the *simulator's own* performance telemetry -- events popped
 * per wall-second, frames delivered, LLC walks -- as opposed to
 * sim::CounterBus, which models the *simulated machine's* PMU.
 *
 * Design constraints:
 *
 *  - **Cheap enough to leave on.** A bump is one increment of a
 *    thread-local 64-bit slot; there is no registry lookup, no string
 *    key, no branch on an "enabled" flag. The counter set is a closed
 *    enum so the storage is a flat array.
 *  - **Deterministic.** Counters advance only with simulated work,
 *    never with wall-clock, threads, or scheduling. A campaign cell
 *    runs start-to-finish on one worker, so the per-cell delta
 *    (snapshot before minus snapshot after, taken by the Campaign
 *    executor) is a pure function of (campaign seed, grid index) --
 *    counter totals inherit the threads=N == threads=1 merge contract
 *    (tests/obs_test.cc pins this).
 *  - **Leaf dependency.** Everything from sim::EventQueue up may bump;
 *    this header includes nothing from the rest of the codebase.
 */

#ifndef PKTCHASE_OBS_STATS_HH
#define PKTCHASE_OBS_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pktchase::obs
{

/** The closed set of hot-path counters. */
enum class Stat : unsigned
{
    /**
     * Logical events executed: EventQueue callbacks popped plus
     * events a handler folded into itself via tryAdvanceWithin(), so
     * totals are identical whether hot loops batch or reschedule.
     */
    SimEvents = 0,
    FramesDelivered, ///< IgbDriver::receive completions.
    LlcAccesses,     ///< Llc cpuRead + cpuWrite + ioWrite calls.
    LlcMisses,       ///< Llc demand-miss fills + I/O allocations.
    ProbeRounds,     ///< PrimeProbeMonitor::probeAll rounds.
    /**
     * BufferPolicy hook dispatches, counted per frame: a hook the
     * driver skips because the policy's HookTraits mark it a no-op is
     * not counted, and one onPacketBatch call covering k frames
     * counts k.
     */
    PolicyHooks,
    DetectorEpochs,  ///< CounterBus samples published.
    /**
     * Scheduling counters (CellsStolen through TasksStolen) are
     * bumped by the work-stealing fabric and the campaign executor
     * *between* schedulable units, outside every per-unit snapshot
     * window, so per-cell deltas report them as 0 at any thread count
     * and the threads=N == threads=1 contract holds. Their totals
     * depend on scheduling and are surfaced through
     * CampaignStats/FabricStatus instead.
     */
    CellsStolen,     ///< Fabric units taken from another worker.
    StealAttempts,   ///< StealFabric probes of foreign queues.
    /**
     * Task counters: a campaign's schedulable unit is one (cell,
     * task) pair under the sub-cell decomposition contract, so
     * TasksExecuted counts every unit run (monolithic cells count as
     * one task) and TasksStolen the units that ran on a worker other
     * than their seeded one. TasksStolen totals match CellsStolen for
     * campaign runs (the fabric's unit *is* the task); they diverge
     * only for direct StealFabric users, which bump CellsStolen only.
     */
    TasksExecuted,   ///< Campaign (cell, task) units executed.
    TasksStolen,     ///< Campaign units run on a stealing worker.
};

/** Number of Stat enumerators. */
constexpr std::size_t kStatCount = 11;

/** Stable snake_case name of @p s ("sim_events", ...). */
const char *statName(Stat s);

namespace detail
{

/** The calling thread's counter block. */
struct StatBlock
{
    std::array<std::uint64_t, kStatCount> counts{};
};

/**
 * The block lives inside an inline function rather than as an extern
 * thread_local object: constant-initialized and trivially
 * destructible, the local compiles to a plain TLS access with no
 * cross-TU init-wrapper call on the bump path (and no wrapper for
 * UBSan to trip over).
 */
inline StatBlock &
tlsStats()
{
    static thread_local StatBlock block;
    return block;
}

} // namespace detail

/** Add @p n to the calling thread's counter @p s. */
inline void
bump(Stat s, std::uint64_t n = 1)
{
    detail::tlsStats().counts[static_cast<unsigned>(s)] += n;
}

/**
 * A copy of one thread's counters at one instant. Snapshots subtract,
 * so a scope's cost is snapshot()-at-exit minus snapshot()-at-entry.
 */
struct StatSnapshot
{
    std::array<std::uint64_t, kStatCount> counts{};

    std::uint64_t
    get(Stat s) const
    {
        return counts[static_cast<unsigned>(s)];
    }

    /** Element-wise difference; @p earlier must not exceed *this. */
    StatSnapshot operator-(const StatSnapshot &earlier) const;

    /**
     * The snapshot as (name, value) pairs in enum order -- the shape
     * runtime::ScenarioResult::counters carries across the campaign
     * result ring.
     */
    std::vector<std::pair<std::string, std::uint64_t>> toCounters() const;
};

/** Snapshot the calling thread's counters. */
StatSnapshot snapshot();

} // namespace pktchase::obs

#endif // PKTCHASE_OBS_STATS_HH
