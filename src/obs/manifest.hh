/**
 * @file
 * Run provenance for emitted reports: which build produced this
 * artifact, on what machine, with how many threads.
 *
 * Every sim::BenchReport the repo writes embeds a RunManifest (a
 * nested "manifest" JSON object), so a BENCH_*.json or profile report
 * found in CI artifacts -- or diffed weeks later by
 * tools/profile_diff.py -- answers "built from which sha, by which
 * compiler, with which flags" by itself. The campaign-side metas
 * (campaign_seed, grid, shard slice) stay where they are; the
 * manifest covers the *build and host*, the metas cover the *run*.
 *
 * Two flavors, because of the shard-merge byte-identity contract:
 *  - build(): git sha + compiler + build flags only. Deterministic
 *    for a given build tree, so campaign metric reports produced by
 *    different CI jobs of the same commit still compare byte-equal
 *    (`cmp merged.json full.json` across runners).
 *  - host(threads): build() plus hostname and thread count. For
 *    bench artifacts and profile reports, whose numbers are
 *    host-dependent anyway -- there the provenance should say where.
 *
 * Values come from compile-time definitions CMake injects into
 * manifest.cc at configure time (PKTCHASE_GIT_SHA and friends); a
 * build without them says "unknown" rather than guessing. The sha is
 * captured at *configure* time, so an incremental build on new
 * commits reports the configure-time sha until the next CMake rerun
 * -- acceptable for CI (always a fresh configure), documented for
 * local use.
 */

#ifndef PKTCHASE_OBS_MANIFEST_HH
#define PKTCHASE_OBS_MANIFEST_HH

#include <string>

namespace pktchase::obs
{

/** Build/host provenance embedded in emitted reports. */
struct RunManifest
{
    std::string gitSha;     ///< Configure-time HEAD sha (or "unknown").
    std::string compiler;   ///< e.g. "GNU 13.2.0".
    std::string buildFlags; ///< Build type + sanitizer switches.
    std::string hostname;   ///< Empty = omitted from the report.
    unsigned threads = 0;   ///< 0 = omitted from the report.

    /** Deterministic-per-build manifest (no hostname/threads). */
    static RunManifest build();

    /** build() plus hostname and @p threads for host-bound artifacts. */
    static RunManifest host(unsigned threads = 0);
};

} // namespace pktchase::obs

#endif // PKTCHASE_OBS_MANIFEST_HH
