/**
 * @file
 * Wall-clock tracing of the simulator itself, emitted as Chrome
 * trace-event JSON (open the file in chrome://tracing or
 * https://ui.perfetto.dev to see where sim time goes).
 *
 * The model is one process-wide TraceSession (opened by a front-end
 * flag such as `examples/campaign --trace=out.json`) with one event
 * track per attached thread: the driver/main thread attaches as tid 0
 * at construction, and every campaign worker attaches itself as
 * tid w+1. Spans are RAII (obs::ScopedSpan) and instants one-shot
 * (obs::instant); both record into the calling thread's private
 * buffer, so recording takes no lock.
 *
 * Zero-cost-when-detached rule: with no session active (the default
 * everywhere, including every golden test), the thread-local buffer
 * pointer is null and a span constructor is one load + branch -- it
 * reads no clock, allocates nothing, and touches no shared state.
 * Instrumentation must never influence simulated behaviour: spans
 * observe wall-clock only, never simulated cycles, and nothing in this
 * subsystem feeds back into the simulation (`ctest -L golden` passes
 * bit-identically with tracing compiled in).
 *
 * Buffers are bounded (eventCapPerThread); a saturated thread drops
 * further events, and the drop count is reported on stderr and as a
 * "dropped_events" instant in the written trace -- a truncated trace
 * says so instead of silently looking complete.
 */

#ifndef PKTCHASE_OBS_TRACE_HH
#define PKTCHASE_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/profile.hh"

namespace pktchase::obs
{

class TraceSession;

namespace detail
{

/** One recorded span or instant. */
struct TraceEvent
{
    /** Static-storage name; null when dynName is used instead. */
    const char *name = nullptr;
    std::string dynName;
    const char *cat = "sim";
    double tsMicros = 0.0;  ///< Start, relative to session start.
    double durMicros = -1.0; ///< Span duration; < 0 means instant.
};

/** One thread's private event store. */
struct TraceBuffer
{
    std::uint32_t tid = 0;
    std::string threadName;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
    std::size_t cap = 0;
    std::chrono::steady_clock::time_point epoch;

    void
    record(TraceEvent &&e)
    {
        if (events.size() < cap)
            events.push_back(std::move(e));
        else
            ++dropped;
    }

    /** Microseconds since the session started. */
    double
    nowMicros() const
    {
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - epoch)
            .count();
    }
};

extern thread_local TraceBuffer *tlsTrace;

} // namespace detail

/** Whether the calling thread is recording into an active session. */
inline bool
tracing()
{
    return detail::tlsTrace != nullptr;
}

/**
 * A trace recording: owns every thread's buffer and writes the JSON
 * file once on destruction (or an explicit write()).
 *
 * At most one session exists at a time (fatal otherwise); the
 * constructing thread is attached as tid 0 ("driver"). Worker threads
 * attach with attachCurrentThread() -- the campaign executor does this
 * automatically via attachWorkerThread() -- and must detach (or exit)
 * before the session is destroyed.
 */
class TraceSession
{
  public:
    /**
     * @param path            Output file ("out.json").
     * @param event_cap       Max events kept per attached thread;
     *                        further events are counted and dropped.
     */
    explicit TraceSession(std::string path,
                          std::size_t event_cap = std::size_t(1) << 22);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /**
     * Attach the calling thread as track @p tid named @p name; from
     * now on its spans/instants record here. Fatal when the thread is
     * already attached.
     */
    void attachCurrentThread(std::uint32_t tid, std::string name);

    /** Stop recording on the calling thread (no-op when detached). */
    static void detachCurrentThread();

    /**
     * Write the trace file. Called by the destructor; idempotent (the
     * second write is a no-op returning the first outcome).
     * @return false (with a message on stderr) when the file cannot be
     *         written.
     */
    bool write();

    /** Events dropped over every buffer (saturation indicator). */
    std::uint64_t droppedEvents() const;

    /** One attached thread's drop tally, for the profile report. */
    struct ThreadDrops
    {
        std::uint32_t tid = 0;
        std::uint64_t dropped = 0;
    };

    /** Per-thread drop counts, in attach (tid) order. Call after the
     *  campaign joined its workers -- counts still ticking elsewhere
     *  are a data race, same rule as write(). */
    std::vector<ThreadDrops> perThreadDrops() const;

    /** The per-thread event cap this session was opened with. */
    std::size_t eventCap() const { return eventCap_; }

    /** The process-wide active session, or nullptr. */
    static TraceSession *active();

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::size_t eventCap_;
    std::chrono::steady_clock::time_point start_;
    mutable std::mutex mutex_; ///< Guards buffers_ during attach.
    std::vector<std::unique_ptr<detail::TraceBuffer>> buffers_;
    bool written_ = false;
    bool writeOk_ = false;
};

/**
 * Attach the calling campaign worker to the active trace session as
 * track w+1 (tid 0 is the driver) and to the active profile session;
 * no-op for whichever is inactive. Pair with detachWorkerThread()
 * before the worker exits.
 */
void attachWorkerThread(unsigned worker_index);

/** Detach the calling thread from whatever sessions it records into. */
void detachWorkerThread();

/**
 * RAII span: records [construction, destruction) on the calling
 * thread's track. When no session is attached the constructor is one
 * thread-local load and a branch.
 */
class ScopedSpan
{
  public:
    /** @p name and @p cat must have static storage duration. */
    explicit ScopedSpan(const char *name, const char *cat = "sim")
    {
        if (detail::TraceBuffer *b = detail::tlsTrace) {
            buf_ = b;
            name_ = name;
            cat_ = cat;
            startMicros_ = b->nowMicros();
        }
    }

    /** Dynamic-name span (campaign cell names); @p name is copied
     *  only when a session is attached. */
    ScopedSpan(const std::string &name, const char *cat)
    {
        if (detail::TraceBuffer *b = detail::tlsTrace) {
            buf_ = b;
            dynName_ = name;
            cat_ = cat;
            startMicros_ = b->nowMicros();
        }
    }

    /**
     * Profiled span: besides tracing (when a trace session is
     * attached), folds its duration into the calling thread's
     * PhaseStats slot for @p phase (when a profile session is
     * attached). Detached from both, still one load + branch each.
     */
    explicit ScopedSpan(const ProfilePhase &phase)
    {
        if (detail::TraceBuffer *b = detail::tlsTrace) {
            buf_ = b;
            name_ = phase.name();
            cat_ = phase.cat();
            startMicros_ = b->nowMicros();
        }
        if (detail::ProfileBlock *p = detail::tlsProfile) {
            prof_ = p;
            detail::profileOpen(p, phase.id());
        }
    }

    /** Profiled span with a dynamic trace name (campaign cell names):
     *  the trace track shows @p name, the profile aggregates under
     *  the phase (per-cell split comes from the campaign drain). */
    ScopedSpan(const std::string &name, const ProfilePhase &phase)
    {
        if (detail::TraceBuffer *b = detail::tlsTrace) {
            buf_ = b;
            dynName_ = name;
            cat_ = phase.cat();
            startMicros_ = b->nowMicros();
        }
        if (detail::ProfileBlock *p = detail::tlsProfile) {
            prof_ = p;
            detail::profileOpen(p, phase.id());
        }
    }

    ~ScopedSpan()
    {
        if (prof_)
            detail::profileClose(prof_);
        if (!buf_)
            return;
        detail::TraceEvent e;
        e.name = name_;
        e.dynName = std::move(dynName_);
        e.cat = cat_;
        e.tsMicros = startMicros_;
        e.durMicros = buf_->nowMicros() - startMicros_;
        buf_->record(std::move(e));
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    detail::TraceBuffer *buf_ = nullptr;
    detail::ProfileBlock *prof_ = nullptr;
    const char *name_ = nullptr;
    std::string dynName_;
    const char *cat_ = "sim";
    double startMicros_ = 0.0;
};

/** Record an instant event on the calling thread's track. */
inline void
instant(const char *name, const char *cat = "sim")
{
    if (detail::TraceBuffer *b = detail::tlsTrace) {
        detail::TraceEvent e;
        e.name = name;
        e.cat = cat;
        e.tsMicros = b->nowMicros();
        b->record(std::move(e));
    }
}

} // namespace pktchase::obs

#endif // PKTCHASE_OBS_TRACE_HH
