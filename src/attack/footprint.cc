#include "footprint.hh"

#include "sim/logging.hh"

namespace pktchase::attack
{

namespace
{

std::vector<EvictionSet>
makeSets(const ComboGroups &groups, const std::vector<std::size_t> &combos,
         unsigned ways)
{
    std::vector<EvictionSet> sets;
    sets.reserve(combos.size());
    for (std::size_t c : combos)
        sets.push_back(groups.evictionSetFor(c, ways));
    return sets;
}

} // namespace

FootprintScanner::FootprintScanner(cache::Hierarchy &hier,
                                   const ComboGroups &groups,
                                   std::vector<std::size_t> combos,
                                   const FootprintConfig &cfg)
    : hier_(hier), combos_(std::move(combos)), cfg_(cfg),
      monitor_(hier, makeSets(groups, combos_, cfg.probe.ways),
               cfg.probe.missThreshold)
{
}

std::vector<ProbeSample>
FootprintScanner::scan(EventQueue &eq, Cycles horizon)
{
    std::vector<ProbeSample> samples;
    const Cycles interval = secondsToCycles(1.0 / cfg_.probeRateHz);

    monitor_.primeAll(eq.now());

    // Self-rescheduling probe event; the shared queue interleaves any
    // traffic pumps with the probe rounds.
    std::function<void()> round = [&] {
        const ProbeSample &s = monitor_.probeAll(eq.now());
        const Cycles cost = s.end - s.start;
        samples.push_back(s);
        const Cycles next = eq.now() + std::max(interval, cost);
        if (next <= horizon)
            eq.schedule(next, round);
    };
    eq.schedule(eq.now(), round);
    eq.runUntil(horizon);
    return samples;
}

std::vector<double>
FootprintScanner::activityRates(const std::vector<ProbeSample> &samples)
{
    if (samples.empty())
        return {};
    std::vector<double> rates(samples[0].active.size(), 0.0);
    for (const ProbeSample &s : samples)
        for (std::size_t i = 0; i < s.active.size(); ++i)
            rates[i] += s.active[i];
    for (double &r : rates)
        r /= static_cast<double>(samples.size());
    return rates;
}

std::vector<std::vector<std::size_t>>
FootprintScanner::attributeToQueues(
    const std::vector<std::size_t> &candidates,
    const std::vector<std::vector<std::size_t>> &queue_combos)
{
    std::vector<std::vector<std::size_t>> out(queue_combos.size());
    for (std::size_t q = 0; q < queue_combos.size(); ++q) {
        for (std::size_t cand : candidates) {
            for (std::size_t combo : queue_combos[q]) {
                if (combo == cand) {
                    out[q].push_back(cand);
                    break;
                }
            }
        }
    }
    return out;
}

std::vector<std::size_t>
FootprintScanner::candidateBufferSets(
    const std::vector<ProbeSample> &samples, double idle_cutoff,
    double always_cutoff)
{
    std::vector<std::size_t> out;
    const std::vector<double> rates = activityRates(samples);
    for (std::size_t i = 0; i < rates.size(); ++i)
        if (rates[i] > idle_cutoff && rates[i] < always_cutoff)
            out.push_back(i);
    return out;
}

} // namespace pktchase::attack
