#include "sequencer.hh"

#include <algorithm>
#include <unordered_map>

#include "attack/footprint.hh"
#include "sim/logging.hh"

namespace pktchase::attack
{

Sequencer::Sequencer(cache::Hierarchy &hier, const ComboGroups &groups,
                     std::vector<std::size_t> combos,
                     const SequencerConfig &cfg)
    : hier_(hier), groups_(groups), combos_(std::move(combos)), cfg_(cfg)
{
    if (combos_.empty())
        panic("Sequencer needs at least one monitored combo");
}

std::vector<ProbeSample>
Sequencer::collectSamples(EventQueue &eq, PrimeProbeMonitor &monitor)
{
    std::vector<ProbeSample> samples;
    samples.reserve(cfg_.nSamples);
    const Cycles interval = secondsToCycles(1.0 / cfg_.probeRateHz);

    monitor.primeAll(eq.now());

    std::function<void()> round = [&] {
        ProbeSample s = monitor.probeAll(eq.now());
        const Cycles cost = s.end - s.start;
        samples.push_back(std::move(s));
        if (samples.size() < cfg_.nSamples)
            eq.schedule(eq.now() + std::max(interval, cost), round);
    };
    eq.schedule(eq.now(), round);

    // Run until the sampler stops rescheduling itself. A generous
    // horizon guards against an empty traffic schedule.
    while (samples.size() < cfg_.nSamples && !eq.empty())
        eq.step();
    return samples;
}

SequencerResult
Sequencer::run(EventQueue &eq)
{
    SequencerResult result;
    const Cycles start = eq.now();

    std::vector<EvictionSet> sets;
    sets.reserve(combos_.size());
    for (std::size_t c : combos_)
        sets.push_back(groups_.evictionSetFor(c, cfg_.probe.ways));
    PrimeProbeMonitor monitor(hier_, std::move(sets),
                              cfg_.probe.missThreshold);

    // GET_CLEAN_SAMPLES: resample after swapping always-miss sets for
    // the second block of the same page (same combo group, offset 64).
    std::vector<ProbeSample> samples;
    for (unsigned attempt = 0; ; ++attempt) {
        samples = collectSamples(eq, monitor);
        bool replaced = false;
        const std::vector<double> rates =
            FootprintScanner::activityRates(samples);
        for (std::size_t i = 0; i < rates.size(); ++i) {
            if (rates[i] > cfg_.activityCutoff) {
                monitor.replaceSet(
                    i, groups_.evictionSetFor(combos_[i], cfg_.probe.ways)
                           .atBlock(1));
                ++result.replacedSets;
                replaced = true;
            }
        }
        result.samplesUsed += samples.size();
        if (!replaced || attempt >= cfg_.cleanRetries)
            break;
    }

    result.sequence = sequenceFromSamples(
        samples, combos_.size(), cfg_.weightCutoff);
    result.elapsed = eq.now() - start;
    return result;
}

std::vector<int>
Sequencer::sequenceFromSamples(const std::vector<ProbeSample> &samples,
                               std::size_t n_sets,
                               std::uint64_t weight_cutoff)
{
    return makeSequence(buildGraph(samples, n_sets), weight_cutoff);
}

Sequencer::Graph
Sequencer::buildGraph(const std::vector<ProbeSample> &samples,
                      std::size_t n_sets)
{
    // BUILD_GRAPH (Algorithm 1, lines 14-23): one node of history per
    // edge distinguishes multiple ring buffers sharing one cache set.
    //
    // Consecutive activations of the same set are merged regardless of
    // their spacing: they cover both wide peaks (one packet seen in
    // two adjacent rounds) and two buffers of the same set that are
    // adjacent in the *observable* stream (no monitored set fires in
    // between). The latter cannot be traversed anyway -- the no-self-
    // loop rule means state (x, x) never gets successors -- and the
    // paper's own analysis treats such buffers as merged.
    Graph graph;
    int prev = 0, curr = 0;
    for (const ProbeSample &s : samples) {
        for (std::size_t cand_i = 0; cand_i < n_sets; ++cand_i) {
            if (!s.active[cand_i])
                continue; // no activity
            const int cand = static_cast<int>(cand_i);
            if (cand == curr)
                continue; // merged repeat
            if (curr != prev) // no self-loop
                ++graph[{prev, curr}][cand];
            prev = curr;
            curr = cand;
        }
    }
    return graph;
}

std::vector<int>
Sequencer::makeSequence(Graph graph, std::uint64_t weight_cutoff)
{
    if (graph.empty())
        return {};

    // get_root: the heaviest (prev, curr) edge state.
    EdgeKey root = graph.begin()->first;
    std::uint64_t best_total = 0;
    for (const auto &[key, cands] : graph) {
        std::uint64_t total = 0;
        for (const auto &[cand, w] : cands)
            total += w;
        if (total > best_total) {
            best_total = total;
            root = key;
        }
    }

    // The root's best edge weight approximates one ring lap's count;
    // real edges are near it and noise edges far below. The traversal
    // follows heaviest edges, zeroing each as visited, and stops when
    // only sub-cutoff (noise or already-visited) edges remain -- which
    // happens exactly once the ring closes. (Terminating on a return
    // to the root state is unsound: with one node of history the same
    // (prev, curr) pair can legitimately recur mid-ring when a set
    // hosts several buffers.)
    std::uint64_t root_weight = 0;
    for (const auto &[cand, w] : graph[root])
        root_weight = std::max(root_weight, w);
    const std::uint64_t cutoff =
        std::max<std::uint64_t>(weight_cutoff, root_weight / 4);

    std::vector<int> sequence;
    EdgeKey state = root;
    const std::size_t safety_cap = 64 * graph.size() + 64;
    while (sequence.size() < safety_cap) {
        sequence.push_back(state.second);

        int next = -1;
        std::uint64_t weight = 0;
        auto it = graph.find(state);
        if (it != graph.end()) {
            for (const auto &[cand, w] : it->second) {
                if (w > weight) {
                    weight = w;
                    next = cand;
                }
            }
        }

        if (next < 0 || weight < cutoff) {
            // Dead end. A missed in-between activation can strand the
            // walk in a state the builder never populated (e.g., the
            // self-pair (x, x), which the no-self-loop rule skips).
            // Fall back to the history-free successor of the current
            // node: the heaviest unvisited edge out of any state that
            // ends in it. This robustification is not in the paper's
            // pseudocode but recovers gracefully from the same missed
            // samples the paper tolerates via its error budget.
            std::uint64_t best_w = 0;
            Graph::iterator best_it = graph.end();
            int best_cand = -1;
            for (auto git = graph.begin(); git != graph.end(); ++git) {
                if (git->first.second != state.second)
                    continue;
                for (const auto &[cand, w] : git->second) {
                    if (w > best_w) {
                        best_w = w;
                        best_it = git;
                        best_cand = cand;
                    }
                }
            }
            if (best_cand < 0 || best_w < cutoff)
                break;
            best_it->second[best_cand] = 0;
            state = {state.second, best_cand};
            continue;
        }

        it->second[next] = 0; // mark as visited
        state = {state.second, next};
    }

    // When the walk closes the ring it re-enters the root state and
    // pushes its node once more before running out of fresh edges;
    // drop that closure duplicate.
    if (sequence.size() > 1 && sequence.front() == sequence.back())
        sequence.pop_back();

    return sequence;
}

FullRingRecovery::FullRingRecovery(cache::Hierarchy &hier,
                                   const ComboGroups &groups,
                                   std::vector<std::size_t> active,
                                   const SequencerConfig &cfg)
    : hier_(hier), groups_(groups), active_(std::move(active)),
      cfg_(cfg)
{
    if (active_.size() < 2)
        panic("FullRingRecovery needs at least two active combos");
}

std::vector<std::size_t>
FullRingRecovery::recover(EventQueue &eq)
{
    const std::size_t window =
        std::min<std::size_t>(32, active_.size());

    // Initial window: recover the ring order of the first 32 combos.
    std::vector<std::size_t> placed(active_.begin(),
                                    active_.begin() + window);
    Sequencer first(hier_, groups_, placed, cfg_);
    const SequencerResult base = first.run(eq);

    // master holds combo ids in recovered ring order.
    std::vector<std::size_t> master;
    master.reserve(active_.size() + 16);
    for (int node : base.sequence)
        master.push_back(placed[static_cast<std::size_t>(node)]);
    if (master.size() < 2)
        return master;

    // Extension rounds: 31 placed combos (spread around the current
    // master so the candidate gets bracketed tightly) plus the
    // candidate, re-sampled; the candidate is inserted after its
    // observed predecessor.
    for (std::size_t ci = window; ci < active_.size(); ++ci) {
        const std::size_t cand = active_[ci];

        std::vector<std::size_t> monitor;
        const std::size_t picks =
            std::min<std::size_t>(31, master.size());
        for (std::size_t k = 0; k < picks; ++k) {
            const std::size_t idx = k * master.size() / picks;
            if (std::find(monitor.begin(), monitor.end(),
                          master[idx]) == monitor.end()) {
                monitor.push_back(master[idx]);
            }
        }
        monitor.push_back(cand);
        const auto cand_node = static_cast<int>(monitor.size() - 1);

        Sequencer ext(hier_, groups_, monitor, cfg_);
        const SequencerResult sub = ext.run(eq);

        // Locate the candidate and its predecessor in the
        // sub-sequence.
        bool inserted = false;
        for (std::size_t i = 0; i < sub.sequence.size(); ++i) {
            if (sub.sequence[i] != cand_node)
                continue;
            const std::size_t pi =
                (i + sub.sequence.size() - 1) % sub.sequence.size();
            const int pred_node = sub.sequence[pi];
            if (pred_node == cand_node)
                break;
            const std::size_t pred =
                monitor[static_cast<std::size_t>(pred_node)];
            // Insert after the predecessor's first master position.
            // (Between pred and the next monitored combo there may be
            // other master nodes the sub-run could not see; placing
            // the candidate right after pred is the tightest bound
            // the observation supports.)
            auto it = std::find(master.begin(), master.end(), pred);
            if (it != master.end()) {
                master.insert(it + 1, cand);
                inserted = true;
            }
            break;
        }
        if (!inserted)
            unplaced_.push_back(cand);
    }
    return master;
}

std::vector<int>
expectedMonitorSequence(const std::vector<std::size_t> &ring_sets,
                        const std::vector<std::size_t> &combo_gset)
{
    std::unordered_map<std::size_t, int> index_of;
    for (std::size_t i = 0; i < combo_gset.size(); ++i)
        index_of.emplace(combo_gset[i], static_cast<int>(i));

    std::vector<int> expected;
    for (std::size_t gset : ring_sets) {
        auto it = index_of.find(gset);
        if (it == index_of.end())
            continue;
        if (!expected.empty() && expected.back() == it->second)
            continue; // self-loops are unobservable
        expected.push_back(it->second);
    }
    // Cyclic wrap duplicate.
    if (expected.size() > 1 && expected.front() == expected.back())
        expected.pop_back();
    return expected;
}

std::vector<std::vector<int>>
expectedQueueSequences(
    const std::vector<std::vector<std::size_t>> &queue_ring_sets,
    const std::vector<std::size_t> &combo_gset)
{
    std::vector<std::vector<int>> out;
    out.reserve(queue_ring_sets.size());
    for (const std::vector<std::size_t> &ring_sets : queue_ring_sets)
        out.push_back(expectedMonitorSequence(ring_sets, combo_gset));
    return out;
}

} // namespace pktchase::attack
