/**
 * @file
 * Packet-size detection over block-row eviction sets (Fig. 8).
 *
 * The detector probes "rows": the eviction sets of in-page block k
 * (k = 0..3) across a list of combos. When a stream of packets of a
 * given size flows, rows up to the packet's block count show activity
 * and higher rows stay quiet -- except row 1, which always fires
 * because the driver prefetches the second block regardless of size
 * (the Fig. 8 anomaly).
 *
 * The sampling loop is an attack::ProbeEngine sample stream (one
 * monitor per row); the SizeClassifier observer accumulates per-row,
 * per-combo activity rates.
 */

#ifndef PKTCHASE_ATTACK_SIZE_DETECTOR_HH
#define PKTCHASE_ATTACK_SIZE_DETECTOR_HH

#include <cstdint>
#include <vector>

#include "attack/probe_engine.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pktchase::attack
{

/** Size-detector parameters. */
struct SizeDetectorConfig
{
    unsigned rows = 4;            ///< Block rows 0..rows-1.
    double probeRateHz = 8000;

    /** Shared miss-threshold/ways calibration. */
    ProbeParams probe;
};

/**
 * ProbeEngine observer that accumulates per-(row, combo) activity
 * counts from a sample stream whose monitors are block rows.
 */
class SizeClassifier : public ProbeObserver
{
  public:
    /**
     * @param rows   Number of row monitors in the stream.
     * @param combos Sets per row monitor (the monitored combo count).
     * @param stream Engine stream id to listen to.
     */
    SizeClassifier(unsigned rows, std::size_t combos,
                   std::size_t stream = 0);

    void onObservation(const ProbeObservation &obs) override;

    /** Full rounds observed so far. */
    std::uint64_t rounds() const { return rounds_; }

    /** activity[row][combo] as a fraction of observed rounds. */
    std::vector<std::vector<double>> rates() const;

  private:
    std::size_t stream_;
    std::vector<std::vector<std::uint64_t>> hits_;
    std::uint64_t rounds_ = 0;
};

/**
 * Probes block rows of the monitored combos and reports per-row and
 * per-(row, combo) activity rates.
 */
class SizeDetector
{
  public:
    SizeDetector(cache::Hierarchy &hier, const ComboGroups &groups,
                 std::vector<std::size_t> combos,
                 const SizeDetectorConfig &cfg);

    /**
     * Probe until @p horizon (traffic already scheduled on @p eq).
     * Call once per detector.
     * @return activity[row][combo] as a fraction of probe rounds.
     */
    std::vector<std::vector<double>> measure(EventQueue &eq,
                                             Cycles horizon);

    /** Collapse a measure() result to per-row mean activity. */
    static std::vector<double>
    rowActivity(const std::vector<std::vector<double>> &m);

  private:
    ProbeEngine engine_;
    SizeClassifier classifier_;
};

} // namespace pktchase::attack

#endif // PKTCHASE_ATTACK_SIZE_DETECTOR_HH
