/**
 * @file
 * Packet-size detection over block-row eviction sets (Fig. 8).
 *
 * The detector probes "rows": the eviction sets of in-page block k
 * (k = 0..3) across a list of combos. When a stream of packets of a
 * given size flows, rows up to the packet's block count show activity
 * and higher rows stay quiet -- except row 1, which always fires
 * because the driver prefetches the second block regardless of size
 * (the Fig. 8 anomaly).
 */

#ifndef PKTCHASE_ATTACK_SIZE_DETECTOR_HH
#define PKTCHASE_ATTACK_SIZE_DETECTOR_HH

#include <cstdint>
#include <vector>

#include "attack/prime_probe.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pktchase::attack
{

/** Size-detector parameters. */
struct SizeDetectorConfig
{
    unsigned rows = 4;            ///< Block rows 0..rows-1.
    double probeRateHz = 8000;
    Cycles missThreshold = 130;
    unsigned ways = 20;
};

/**
 * Probes block rows of the monitored combos and reports per-row and
 * per-(row, combo) activity rates.
 */
class SizeDetector
{
  public:
    SizeDetector(cache::Hierarchy &hier, const ComboGroups &groups,
                 std::vector<std::size_t> combos,
                 const SizeDetectorConfig &cfg);

    /**
     * Probe until @p horizon (traffic already scheduled on @p eq).
     * @return activity[row][combo] as a fraction of probe rounds.
     */
    std::vector<std::vector<double>> measure(EventQueue &eq,
                                             Cycles horizon);

    /** Collapse a measure() result to per-row mean activity. */
    static std::vector<double>
    rowActivity(const std::vector<std::vector<double>> &m);

  private:
    cache::Hierarchy &hier_;
    std::vector<std::size_t> combos_;
    SizeDetectorConfig cfg_;
    std::vector<PrimeProbeMonitor> rowMonitors_;
};

} // namespace pktchase::attack

#endif // PKTCHASE_ATTACK_SIZE_DETECTOR_HH
