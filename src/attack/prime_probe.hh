/**
 * @file
 * PRIME+PROBE primitives over eviction sets (the Mastik role).
 *
 * A probe of one eviction set reads all of its addresses and reports
 * whether any read missed (someone displaced the spy's line since the
 * previous probe). Probing doubles as re-priming, so a monitor loop is
 * simply repeated probes. Probe cost is accounted in simulated cycles:
 * the monitor consumes time exactly as the real attacker does, which is
 * what bounds how many sets can be watched at a given resolution
 * (Sec. III-B's "12 million cycles to access the entire cache").
 */

#ifndef PKTCHASE_ATTACK_PRIME_PROBE_HH
#define PKTCHASE_ATTACK_PRIME_PROBE_HH

#include <cstdint>
#include <vector>

#include "attack/eviction_set.hh"
#include "cache/hierarchy.hh"
#include "sim/types.hh"

namespace pktchase::attack
{

/** One probe round over a monitor list. */
struct ProbeSample
{
    Cycles start = 0;               ///< When the round began.
    Cycles end = 0;                 ///< When it finished.
    std::vector<std::uint8_t> active; ///< Per-set: any miss observed.
};

/**
 * Probes a list of eviction sets and reports per-set activity.
 */
class PrimeProbeMonitor
{
  public:
    /**
     * @param hier           Timing oracle.
     * @param sets           Eviction sets to monitor (copied).
     * @param miss_threshold Latency above which a read counts as a miss.
     */
    PrimeProbeMonitor(cache::Hierarchy &hier,
                      std::vector<EvictionSet> sets,
                      Cycles miss_threshold = 130);

    /**
     * Prime all sets (initial fill) starting at @p now.
     * @return Cycles consumed.
     */
    Cycles primeAll(Cycles now);

    /**
     * One probe round over every monitored set starting at @p now.
     *
     * @return A reference to the monitor's internal sample, overwritten
     *         by the next probeAll round -- copy it to retain. Borrowed
     *         references handed out synchronously (observer callbacks)
     *         are safe; storing across rounds is not.
     */
    const ProbeSample &probeAll(Cycles now);

    /**
     * Probe a single monitored set.
     * @return Number of missing (evicted) lines observed.
     */
    unsigned probeOne(std::size_t index, Cycles now, Cycles &elapsed);

    /** Replace the eviction set at @p index (always-miss fallback). */
    void replaceSet(std::size_t index, EvictionSet set);

    /** Number of monitored sets. */
    std::size_t size() const { return sets_.size(); }

    /** Read-only access to a monitored set. */
    const EvictionSet &set(std::size_t i) const { return sets_[i]; }

    /** Total timed loads issued (attack cost metric). */
    std::uint64_t timedLoads() const { return timedLoads_; }

  private:
    /** Rebuild the flat line array from sets_. */
    void rebuildLines();

    cache::Hierarchy &hier_;
    std::vector<EvictionSet> sets_;
    Cycles missThreshold_;
    std::uint64_t timedLoads_ = 0;

    // Structure-of-arrays mirror of sets_: every monitored line,
    // concatenated in set order, with CSR-style per-set offsets. The
    // walk loops (primeAll/probeAll/probeOne) iterate these flat
    // arrays -- one contiguous stream of addresses instead of a
    // pointer chase through per-set vectors -- in exactly the order
    // the per-set walk used, so timestamps and RNG draws are
    // unchanged. sets_ stays the source of truth for set() and
    // replaceSet(), which rebuilds the mirror (rare: fallback path).
    std::vector<Addr> lines_;
    std::vector<std::size_t> setStart_; ///< size() + 1 offsets.
    ProbeSample sample_; ///< Reused by probeAll across rounds.
};

} // namespace pktchase::attack

#endif // PKTCHASE_ATTACK_PRIME_PROBE_HH
