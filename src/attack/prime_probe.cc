#include "prime_probe.hh"

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace pktchase::attack
{

PrimeProbeMonitor::PrimeProbeMonitor(cache::Hierarchy &hier,
                                     std::vector<EvictionSet> sets,
                                     Cycles miss_threshold)
    : hier_(hier), sets_(std::move(sets)), missThreshold_(miss_threshold)
{
    if (sets_.empty())
        panic("PrimeProbeMonitor needs at least one eviction set");
    rebuildLines();
}

void
PrimeProbeMonitor::rebuildLines()
{
    lines_.clear();
    setStart_.clear();
    setStart_.reserve(sets_.size() + 1);
    std::size_t total = 0;
    for (const EvictionSet &es : sets_)
        total += es.addrs.size();
    lines_.reserve(total);
    for (const EvictionSet &es : sets_) {
        setStart_.push_back(lines_.size());
        lines_.insert(lines_.end(), es.addrs.begin(), es.addrs.end());
    }
    setStart_.push_back(lines_.size());
    sample_.active.resize(sets_.size());
}

Cycles
PrimeProbeMonitor::primeAll(Cycles now)
{
    Cycles t = now;
    for (Addr a : lines_)
        t += hier_.timedRead(a, t);
    timedLoads_ += lines_.size();
    return t - now;
}

unsigned
PrimeProbeMonitor::probeOne(std::size_t index, Cycles now,
                            Cycles &elapsed)
{
    if (index >= sets_.size())
        panic("PrimeProbeMonitor::probeOne out of range");
    Cycles t = now;
    unsigned misses = 0;
    const std::size_t end = setStart_[index + 1];
    for (std::size_t k = setStart_[index]; k < end; ++k) {
        const Cycles lat = hier_.timedRead(lines_[k], t);
        t += lat;
        if (lat > missThreshold_)
            ++misses;
    }
    timedLoads_ += end - setStart_[index];
    elapsed = t - now;
    return misses;
}

const ProbeSample &
PrimeProbeMonitor::probeAll(Cycles now)
{
    // One prime+probe round = one LLC walk over the monitor list; this
    // is the attacker pipeline's innermost hot path, so it carries
    // both the probe-round counter and the llc.walk trace span. The
    // walk streams the flat line array directly -- per-set boundaries
    // only mark where the active flag latches.
    static const obs::ProfilePhase kWalkPhase{"llc.walk", "cache"};
    const obs::ScopedSpan span(kWalkPhase);
    obs::bump(obs::Stat::ProbeRounds);
    sample_.start = now;
    Cycles t = now;
    const std::size_t n = sets_.size();
    for (std::size_t i = 0; i < n; ++i) {
        unsigned misses = 0;
        const std::size_t end = setStart_[i + 1];
        for (std::size_t k = setStart_[i]; k < end; ++k) {
            const Cycles lat = hier_.timedRead(lines_[k], t);
            t += lat;
            if (lat > missThreshold_)
                ++misses;
        }
        sample_.active[i] = misses > 0 ? 1 : 0;
    }
    timedLoads_ += lines_.size();
    sample_.end = t;
    return sample_;
}

void
PrimeProbeMonitor::replaceSet(std::size_t index, EvictionSet set)
{
    if (index >= sets_.size())
        panic("PrimeProbeMonitor::replaceSet out of range");
    sets_[index] = std::move(set);
    rebuildLines();
}

} // namespace pktchase::attack
