#include "prime_probe.hh"

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace pktchase::attack
{

PrimeProbeMonitor::PrimeProbeMonitor(cache::Hierarchy &hier,
                                     std::vector<EvictionSet> sets,
                                     Cycles miss_threshold)
    : hier_(hier), sets_(std::move(sets)), missThreshold_(miss_threshold)
{
    if (sets_.empty())
        panic("PrimeProbeMonitor needs at least one eviction set");
}

Cycles
PrimeProbeMonitor::primeAll(Cycles now)
{
    Cycles t = now;
    for (const EvictionSet &es : sets_) {
        for (Addr a : es.addrs) {
            t += hier_.timedRead(a, t);
            ++timedLoads_;
        }
    }
    return t - now;
}

unsigned
PrimeProbeMonitor::probeOne(std::size_t index, Cycles now,
                            Cycles &elapsed)
{
    if (index >= sets_.size())
        panic("PrimeProbeMonitor::probeOne out of range");
    Cycles t = now;
    unsigned misses = 0;
    for (Addr a : sets_[index].addrs) {
        const Cycles lat = hier_.timedRead(a, t);
        t += lat;
        ++timedLoads_;
        if (lat > missThreshold_)
            ++misses;
    }
    elapsed = t - now;
    return misses;
}

ProbeSample
PrimeProbeMonitor::probeAll(Cycles now)
{
    // One prime+probe round = one LLC walk over the monitor list; this
    // is the attacker pipeline's innermost hot path, so it carries
    // both the probe-round counter and the llc.walk trace span.
    const obs::ScopedSpan span("llc.walk", "cache");
    obs::bump(obs::Stat::ProbeRounds);
    ProbeSample s;
    s.start = now;
    s.active.resize(sets_.size(), 0);
    Cycles t = now;
    for (std::size_t i = 0; i < sets_.size(); ++i) {
        Cycles elapsed = 0;
        const unsigned misses = probeOne(i, t, elapsed);
        t += elapsed;
        s.active[i] = misses > 0 ? 1 : 0;
    }
    s.end = t;
    return s;
}

void
PrimeProbeMonitor::replaceSet(std::size_t index, EvictionSet set)
{
    if (index >= sets_.size())
        panic("PrimeProbeMonitor::replaceSet out of range");
    sets_[index] = std::move(set);
}

} // namespace pktchase::attack
