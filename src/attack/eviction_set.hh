/**
 * @file
 * Eviction-set construction for the page-aligned LLC sets.
 *
 * The spy maps a large pool of anonymous pages. Every page base lands
 * in one of the 256 page-aligned (set, slice) combos (Sec. III-B), and
 * because the slice hash is linear over the address bits, two pages
 * whose bases share a combo also share the combo of every in-page
 * block offset: hash(p | k<<6) = hash(p) XOR hash(k<<6). Partitioning
 * the pool by base combo therefore yields eviction sets for *all*
 * blocks of the target buffers -- the property Sec. III-B exploits to
 * detect packet sizes ("using the same way that we construct the
 * eviction sets for the page-aligned cache sets, we construct eviction
 * sets for the second cache blocks in the page").
 *
 * Two construction paths are provided:
 *  - conflict testing (the real attack): group-test reduction over the
 *    pool using only load timing, as Mastik does;
 *  - an oracle shortcut that reads the simulated slice hash directly,
 *    equivalent to the driver instrumentation the authors use for
 *    ground truth, for experiments where construction time is not the
 *    subject.
 */

#ifndef PKTCHASE_ATTACK_EVICTION_SET_HH
#define PKTCHASE_ATTACK_EVICTION_SET_HH

#include <cstdint>
#include <vector>

#include "attack/probe_params.hh"
#include "cache/hierarchy.hh"
#include "mem/address_space.hh"
#include "sim/types.hh"

namespace pktchase::attack
{

/**
 * An eviction set: physical addresses that together cover every way of
 * one (set, slice) combo. Addresses are stored post-translation because
 * the spy translates once (by walking its own buffer) and then reuses
 * the pointers, exactly as a linked-list probe buffer would.
 */
struct EvictionSet
{
    std::vector<Addr> addrs;

    /** Derive the eviction set for in-page block @p k of this combo. */
    EvictionSet
    atBlock(unsigned k) const
    {
        EvictionSet out;
        out.addrs.reserve(addrs.size());
        for (Addr a : addrs)
            out.addrs.push_back(a + static_cast<Addr>(k) * blockBytes);
        return out;
    }
};

/** A pool of attacker pages partitioned into same-combo groups. */
struct ComboGroups
{
    /**
     * groups[c] holds the physical page bases of combo c. With the
     * oracle builder, c is the global page-aligned set index order;
     * with conflict testing, c is discovery order (opaque but stable).
     */
    std::vector<std::vector<Addr>> groups;

    /** Build the eviction set for combo @p c, block offset 0. */
    EvictionSet evictionSetFor(std::size_t c, unsigned ways) const;
};

/** Configuration for the builder. */
struct BuilderConfig
{
    std::size_t poolPages = 16384;   ///< Pages the spy maps (64 MB).
    /** Latency cut between hit/miss (the shared calibration). */
    Cycles missThreshold = ProbeParams::kMissThreshold;
    unsigned conflictVotes = 3;      ///< Majority votes per timing test.
};

/**
 * Constructs eviction sets for the page-aligned combos.
 */
class EvictionSetBuilder
{
  public:
    /**
     * @param hier  The hierarchy timing oracle (the spy's loads).
     * @param space The spy's address space (pool allocation).
     * @param cfg   Pool size and timing thresholds.
     */
    EvictionSetBuilder(cache::Hierarchy &hier, mem::AddressSpace &space,
                       const BuilderConfig &cfg);

    /**
     * Oracle-assisted partition: groups indexed by page-aligned combo
     * rank (0..combos-1). Equivalent to instrumenting the driver; used
     * by the large experiments.
     */
    ComboGroups buildWithOracle();

    /**
     * Timing-only partition via group-test reduction, the real attack.
     * Cost scales with pool size x combos, so use it with reduced
     * geometries or modest pools.
     *
     * @param max_groups Stop after discovering this many combos
     *                   (0 = all).
     */
    ComboGroups buildByConflictTesting(std::size_t max_groups = 0);

    /**
     * Timing test: does reading @p candidate evict the line at
     * @p target? (prime target, sweep candidate, timed reload).
     * Majority vote over cfg.conflictVotes trials.
     */
    bool evicts(const std::vector<Addr> &candidate, Addr target);

    /** Number of timed loads issued so far (attack cost metric). */
    std::uint64_t timedLoads() const { return timedLoads_; }

  private:
    cache::Hierarchy &hier_;
    mem::AddressSpace &space_;
    BuilderConfig cfg_;
    std::vector<Addr> poolPhys_;  ///< Translated pool page bases.
    std::uint64_t timedLoads_ = 0;
    Cycles vnow_ = 0;  ///< Virtual time cursor for offline construction.
    Rng rng_{0xE51C7u}; ///< Drives reduction-reshuffle retries.

    void allocatePool();

    /** One eviction trial (no voting). */
    bool evictsOnce(const std::vector<Addr> &candidate, Addr target);

    /**
     * Reduce @p candidates to a minimal eviction set for @p target
     * (group-test reduction, Vila et al. style).
     */
    std::vector<Addr> reduce(std::vector<Addr> candidates, Addr target);
};

} // namespace pktchase::attack

#endif // PKTCHASE_ATTACK_EVICTION_SET_HH
