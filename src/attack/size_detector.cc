#include "size_detector.hh"

#include "sim/logging.hh"

namespace pktchase::attack
{

SizeClassifier::SizeClassifier(unsigned rows, std::size_t combos,
                               std::size_t stream)
    : stream_(stream),
      hits_(rows, std::vector<std::uint64_t>(combos, 0))
{
}

void
SizeClassifier::onObservation(const ProbeObservation &obs)
{
    if (obs.kind != ProbeKind::Sample || obs.stream != stream_)
        return;
    if (obs.buffer >= hits_.size() ||
        obs.activeCount != hits_[obs.buffer].size()) {
        panic("SizeClassifier: observation does not match the rows");
    }
    for (std::size_t c = 0; c < obs.activeCount; ++c)
        hits_[obs.buffer][c] += obs.active[c];
    // One engine round probes every row once; count it when row 0
    // reports.
    if (obs.buffer == 0)
        ++rounds_;
}

std::vector<std::vector<double>>
SizeClassifier::rates() const
{
    std::vector<std::vector<double>> out(
        hits_.size(),
        std::vector<double>(hits_.empty() ? 0 : hits_[0].size(), 0.0));
    if (rounds_ == 0)
        return out;
    for (std::size_t row = 0; row < hits_.size(); ++row)
        for (std::size_t c = 0; c < hits_[row].size(); ++c)
            out[row][c] = static_cast<double>(hits_[row][c]) /
                static_cast<double>(rounds_);
    return out;
}

namespace
{

ProbeEngineConfig
detectorEngineConfig(const SizeDetectorConfig &cfg)
{
    ProbeEngineConfig ecfg;
    ecfg.probe = cfg.probe;
    ecfg.sampleRateHz = cfg.probeRateHz;
    return ecfg;
}

std::vector<std::vector<EvictionSet>>
rowSets(const ComboGroups &groups,
        const std::vector<std::size_t> &combos,
        const SizeDetectorConfig &cfg)
{
    if (combos.empty())
        panic("SizeDetector needs at least one combo");
    std::vector<std::vector<EvictionSet>> out;
    out.reserve(cfg.rows);
    for (unsigned row = 0; row < cfg.rows; ++row) {
        std::vector<EvictionSet> sets;
        sets.reserve(combos.size());
        for (std::size_t c : combos)
            sets.push_back(
                groups.evictionSetFor(c, cfg.probe.ways).atBlock(row));
        out.push_back(std::move(sets));
    }
    return out;
}

} // namespace

SizeDetector::SizeDetector(cache::Hierarchy &hier,
                           const ComboGroups &groups,
                           std::vector<std::size_t> combos,
                           const SizeDetectorConfig &cfg)
    : engine_(hier, detectorEngineConfig(cfg)),
      classifier_(cfg.rows, combos.size())
{
    engine_.addSampleStream(rowSets(groups, combos, cfg));
    engine_.attach(classifier_);
}

std::vector<std::vector<double>>
SizeDetector::measure(EventQueue &eq, Cycles horizon)
{
    engine_.run(eq, horizon);
    return classifier_.rates();
}

std::vector<double>
SizeDetector::rowActivity(const std::vector<std::vector<double>> &m)
{
    std::vector<double> out;
    out.reserve(m.size());
    for (const auto &row : m) {
        double sum = 0.0;
        for (double v : row)
            sum += v;
        out.push_back(row.empty() ? 0.0
                                  : sum / static_cast<double>(row.size()));
    }
    return out;
}

} // namespace pktchase::attack
