#include "size_detector.hh"

#include "sim/logging.hh"

namespace pktchase::attack
{

SizeDetector::SizeDetector(cache::Hierarchy &hier,
                           const ComboGroups &groups,
                           std::vector<std::size_t> combos,
                           const SizeDetectorConfig &cfg)
    : hier_(hier), combos_(std::move(combos)), cfg_(cfg)
{
    if (combos_.empty())
        panic("SizeDetector needs at least one combo");
    rowMonitors_.reserve(cfg_.rows);
    for (unsigned row = 0; row < cfg_.rows; ++row) {
        std::vector<EvictionSet> sets;
        sets.reserve(combos_.size());
        for (std::size_t c : combos_)
            sets.push_back(
                groups.evictionSetFor(c, cfg_.ways).atBlock(row));
        rowMonitors_.emplace_back(hier_, std::move(sets),
                                  cfg_.missThreshold);
    }
}

std::vector<std::vector<double>>
SizeDetector::measure(EventQueue &eq, Cycles horizon)
{
    std::vector<std::vector<std::uint64_t>> hits(
        cfg_.rows, std::vector<std::uint64_t>(combos_.size(), 0));
    std::uint64_t rounds = 0;
    const Cycles interval = secondsToCycles(1.0 / cfg_.probeRateHz);

    for (auto &m : rowMonitors_)
        m.primeAll(eq.now());

    std::function<void()> round = [&] {
        Cycles t = eq.now();
        for (unsigned row = 0; row < cfg_.rows; ++row) {
            ProbeSample s = rowMonitors_[row].probeAll(t);
            t = s.end;
            for (std::size_t c = 0; c < combos_.size(); ++c)
                hits[row][c] += s.active[c];
        }
        ++rounds;
        const Cycles cost = t - eq.now();
        const Cycles next = eq.now() + std::max(interval, cost);
        if (next <= horizon)
            eq.schedule(next, round);
    };
    eq.schedule(eq.now(), round);
    eq.runUntil(horizon);

    std::vector<std::vector<double>> rates(
        cfg_.rows, std::vector<double>(combos_.size(), 0.0));
    if (rounds == 0)
        return rates;
    for (unsigned row = 0; row < cfg_.rows; ++row)
        for (std::size_t c = 0; c < combos_.size(); ++c)
            rates[row][c] = static_cast<double>(hits[row][c]) /
                static_cast<double>(rounds);
    return rates;
}

std::vector<double>
SizeDetector::rowActivity(const std::vector<std::vector<double>> &m)
{
    std::vector<double> out;
    out.reserve(m.size());
    for (const auto &row : m) {
        double sum = 0.0;
        for (double v : row)
            sum += v;
        out.push_back(row.empty() ? 0.0
                                  : sum / static_cast<double>(row.size()));
    }
    return out;
}

} // namespace pktchase::attack
