/**
 * @file
 * Ring-buffer cache footprint recovery (Sec. III-B, Figs. 5-7).
 *
 * The scanner probes all page-aligned combos at a configurable rate
 * while traffic flows, producing the Fig. 7 activity raster; comparing
 * activity during idle and receiving windows identifies which combos
 * host rx buffers (the non-uniform mapping of Figs. 5-6 means ~35% of
 * page-aligned sets host none).
 */

#ifndef PKTCHASE_ATTACK_FOOTPRINT_HH
#define PKTCHASE_ATTACK_FOOTPRINT_HH

#include <cstdint>
#include <vector>

#include "attack/prime_probe.hh"
#include "attack/probe_params.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pktchase::attack
{

/** Scanner configuration. */
struct FootprintConfig
{
    double probeRateHz = 8000;   ///< Full probe rounds per second.

    /** Shared miss-threshold/ways calibration. */
    ProbeParams probe;
};

/**
 * Probes a list of combos periodically and records activity rasters.
 */
class FootprintScanner
{
  public:
    /**
     * @param hier   Timing oracle.
     * @param groups Combo partition of the spy's pool.
     * @param combos Which combos to monitor (typically all).
     * @param cfg    Probe rate and threshold.
     */
    FootprintScanner(cache::Hierarchy &hier, const ComboGroups &groups,
                     std::vector<std::size_t> combos,
                     const FootprintConfig &cfg);

    /**
     * Schedule probe rounds on @p eq from its current time until
     * @p horizon and run the queue (interleaving with any traffic
     * pumps already scheduled).
     *
     * @return One ProbeSample per round, in time order.
     */
    std::vector<ProbeSample> scan(EventQueue &eq, Cycles horizon);

    /**
     * Fraction of rounds in which each monitored combo was active.
     */
    static std::vector<double>
    activityRates(const std::vector<ProbeSample> &samples);

    /**
     * Indices (into the monitored combo list) whose activity rate lies
     * in (idle_cutoff, always_cutoff): candidate rx-buffer sets.
     */
    static std::vector<std::size_t>
    candidateBufferSets(const std::vector<ProbeSample> &samples,
                        double idle_cutoff, double always_cutoff);

    /**
     * Partition recovered candidate combos by owning receive queue,
     * given per-queue ground truth (e.g. Testbed::queueComboSequences
     * on a multi-queue driver): result[q] lists the candidates that
     * host at least one of queue q's ring buffers, in candidate order.
     * A combo backing buffers of several queues appears under each --
     * on a multi-queue NIC the footprints overlap in the LLC even
     * though the rings are disjoint, which is exactly what makes the
     * spy's per-ring reverse engineering harder.
     */
    static std::vector<std::vector<std::size_t>>
    attributeToQueues(
        const std::vector<std::size_t> &candidates,
        const std::vector<std::vector<std::size_t>> &queue_combos);

    /** The monitored combo ids, in monitor order. */
    const std::vector<std::size_t> &combos() const { return combos_; }

  private:
    cache::Hierarchy &hier_;
    std::vector<std::size_t> combos_;
    FootprintConfig cfg_;
    PrimeProbeMonitor monitor_;
};

} // namespace pktchase::attack

#endif // PKTCHASE_ATTACK_FOOTPRINT_HH
