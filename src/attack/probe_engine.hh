/**
 * @file
 * The streaming probe engine: one event-queue-driven scheduler behind
 * every attacker front-end (packet chasing, the covert-channel spy,
 * the size detector).
 *
 * The engine owns eviction-set monitors and multiplexes probe rounds
 * over any number of *streams* on one EventQueue:
 *
 *  - a **chase stream** follows a ring-buffer combo sequence with a
 *    cursor: it probes only the next expected buffer, classifies the
 *    packet's size from which block rows fired, advances on every
 *    detection, and parks (one out-of-sync event) when the expected
 *    buffer stays quiet past the resync timeout (Secs. III-C, IV-c).
 *    A multi-queue NIC is chased with one stream per RxQueue, each
 *    resyncing independently on its own ring;
 *  - a **sample stream** probes a fixed monitor list at a configured
 *    rate, reporting raw per-set activity (the covert spy's buffer
 *    watch, Sec. IV-b, and the Fig. 8 size-detector rows).
 *
 * Every probe round is reported as a timestamped ProbeObservation to
 * the attached ProbeObservers. Delivery is arrival-ordered across
 * streams: the shared EventQueue executes rounds in cycle order with a
 * deterministic FIFO tie-break, and each observation carries a global
 * sequence number, so the merged stream is bit-identical from run to
 * run regardless of how many queues are chased. With a single stream
 * the engine's probe schedule is load-for-load identical to the
 * pre-engine monolithic loops (tests/probe_golden_test.cc pins this).
 *
 * Observers are isolated from the engine and from each other: they
 * receive const observations, never touch the hierarchy, and cannot
 * perturb cursor state, so attaching a second observer changes no
 * timing and no delivered data.
 */

#ifndef PKTCHASE_ATTACK_PROBE_ENGINE_HH
#define PKTCHASE_ATTACK_PROBE_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "attack/eviction_set.hh"
#include "attack/prime_probe.hh"
#include "attack/probe_params.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pktchase::attack
{

/** What a ProbeObservation reports. */
enum class ProbeKind : std::uint8_t
{
    Packet, ///< Chase stream: a packet detected on the cursor buffer.
    Resync, ///< Chase stream: cursor parked waiting for the ring wrap.
    Sample, ///< Sample stream: one monitor's raw probe-round activity.
};

/**
 * One timestamped engine event, delivered to every attached observer
 * in arrival order.
 */
struct ProbeObservation
{
    ProbeKind kind = ProbeKind::Sample;
    Cycles when = 0;         ///< Detection time / probe-round start.
    std::size_t stream = 0;  ///< Engine stream id (chase: the queue).
    std::size_t buffer = 0;  ///< Ring slot (chase) / monitor index.
    unsigned sizeClass = 0;  ///< Packet only: 1..sizeBlocks.
    bool secondHalf = false; ///< Packet only: upper half-page fired.
    std::uint64_t seq = 0;   ///< Global arrival rank across streams.

    /**
     * Sample only: per-set activity of the round. Borrowed from the
     * engine -- valid only for the duration of the callback.
     */
    const std::uint8_t *active = nullptr;
    std::size_t activeCount = 0;
};

/** Receives every engine observation. Implementations must not block
 *  or touch the hierarchy; they see each observation exactly once. */
class ProbeObserver
{
  public:
    virtual ~ProbeObserver() = default;

    virtual void onObservation(const ProbeObservation &obs) = 0;
};

/** Engine knobs; chase fields mirror the paper's chasing parameters. */
struct ProbeEngineConfig
{
    ProbeParams probe;

    /** Blocks probed per half-page (4 -> size classes 1..4+). */
    unsigned sizeBlocks = 4;

    /**
     * First in-page block row to probe. The web-fingerprint attack
     * probes rows 0..3; the covert channel probes rows 1..3 (Sec.
     * IV-b) -- row 1 fires for every packet thanks to the driver
     * prefetch, acting as the clock, and dropping row 0 cuts probe
     * cost enough to chase line-rate-ish senders.
     */
    unsigned firstBlock = 0;

    /**
     * Probe only the lower half-page. Correct whenever the traffic
     * stays at or below the copy-break threshold (no page flips), and
     * halves the probe cost -- the covert channel uses this.
     */
    bool lowerHalfOnly = false;

    /** Gap between consecutive per-buffer chase probes. */
    Cycles probeInterval = 4000;

    /**
     * Cycles without activity on a chase cursor's expected buffer
     * before declaring out-of-sync and waiting for the ring to wrap.
     */
    Cycles resyncTimeout = 5'000'000;

    /** Probe rounds per second for sample streams. */
    double sampleRateHz = 14000;
};

/**
 * Schedules probe rounds for every stream and fans observations out to
 * the observers. One engine instance runs one experiment: add streams,
 * attach observers, then run() once to the horizon.
 */
class ProbeEngine
{
  public:
    ProbeEngine(cache::Hierarchy &hier, const ProbeEngineConfig &cfg);

    ProbeEngine(const ProbeEngine &) = delete;
    ProbeEngine &operator=(const ProbeEngine &) = delete;

    /**
     * Add a chase stream following @p combo_seq (the ring order of one
     * receive queue, one entry per ring slot). Builds one monitor per
     * slot over 2*sizeBlocks sets (blocks firstBlock.. of both
     * half-pages; lower half only under cfg.lowerHalfOnly).
     *
     * @return The stream id (ProbeObservation::stream).
     */
    std::size_t addChaseStream(const ComboGroups &groups,
                               std::vector<std::size_t> combo_seq);

    /**
     * Add a sample stream: one monitor per entry of @p buffer_sets,
     * probed in order every round at cfg.sampleRateHz.
     *
     * @return The stream id.
     */
    std::size_t
    addSampleStream(std::vector<std::vector<EvictionSet>> buffer_sets);

    /** Attach @p obs (not owned; must outlive run()). */
    void attach(ProbeObserver &obs);

    /** Per-stream accounting. */
    struct StreamStats
    {
        std::uint64_t probes = 0;  ///< Probe rounds executed.
        std::uint64_t packets = 0; ///< Chase: packets observed.
        std::uint64_t outOfSyncEvents = 0;
        std::size_t cursor = 0;    ///< Chase: current ring slot.
    };

    /**
     * Prime every stream's monitors, then run @p eq to @p horizon,
     * delivering observations as they happen (traffic pumps must
     * already be scheduled). Call once per engine.
     */
    void run(EventQueue &eq, Cycles horizon);

    /** Number of streams added. */
    std::size_t streams() const { return streams_.size(); }

    const StreamStats &stats(std::size_t stream) const;

    /** Total observations delivered (the next seq to be assigned). */
    std::uint64_t observationsDelivered() const { return nextSeq_; }

  private:
    struct Stream
    {
        bool chase = false;
        std::vector<PrimeProbeMonitor> monitors;

        // Chase-cursor state.
        std::size_t cursor = 0;
        Cycles lastActivity = 0;
        std::vector<std::uint8_t> accum;

        StreamStats stats;
        std::function<void()> step; ///< Self-rescheduling round.
    };

    cache::Hierarchy &hier_;
    ProbeEngineConfig cfg_;
    std::vector<std::unique_ptr<Stream>> streams_;
    std::vector<ProbeObserver *> observers_;
    std::uint64_t nextSeq_ = 0;
    bool ran_ = false;

    /** Stamp the global seq and fan out to every observer. */
    void deliver(ProbeObservation &obs);

    /**
     * Classify a chase probe round: 0 = no packet; otherwise the size
     * class, with @p second_half set when the upper half fired.
     */
    unsigned classify(const std::vector<std::uint8_t> &active,
                      bool &second_half) const;

    void scheduleChase(EventQueue &eq, Stream &st, std::size_t id,
                       Cycles horizon);
    void scheduleSample(EventQueue &eq, Stream &st, std::size_t id,
                        Cycles horizon);
};

/**
 * One packet observed by a chase stream (the engine's Packet
 * observations, collected by ChasingObserver).
 */
struct PacketObservation
{
    Cycles when = 0;
    unsigned sizeClass = 0;  ///< 1..sizeBlocks ("4" means >= 4 blocks).
    bool secondHalf = false; ///< Landed in the upper half of the page.
    std::size_t slot = 0;    ///< Ring slot the spy attributed it to.
    std::size_t queue = 0;   ///< Chase stream (receive queue) index.
};

/**
 * Collects a chase's packets in arrival order, merged across every
 * chase stream, plus the out-of-sync count.
 */
class ChasingObserver : public ProbeObserver
{
  public:
    void onObservation(const ProbeObservation &obs) override;

    const std::vector<PacketObservation> &packets() const
    {
        return packets_;
    }

    std::uint64_t outOfSyncEvents() const { return outOfSync_; }

  private:
    std::vector<PacketObservation> packets_;
    std::uint64_t outOfSync_ = 0;
};

} // namespace pktchase::attack

#endif // PKTCHASE_ATTACK_PROBE_ENGINE_HH
