/**
 * @file
 * The shared PRIME+PROBE calibration parameters.
 *
 * Every attacker component times loads against the same hit/miss
 * latency cut and builds eviction sets of the same associativity, so
 * the paper's calibration (Sec. III-B: a 130-cycle threshold on the
 * 20-way E5-2660 LLC) lives in exactly one place instead of being
 * copy-pasted into every component's config struct. Experiments on
 * reduced geometries override `ways` with the geometry's value.
 */

#ifndef PKTCHASE_ATTACK_PROBE_PARAMS_HH
#define PKTCHASE_ATTACK_PROBE_PARAMS_HH

#include "sim/types.hh"

namespace pktchase::attack
{

/** Timing threshold and eviction-set size shared by every probe. */
struct ProbeParams
{
    /** Calibrated hit/miss latency cut (Sec. III-B). */
    static constexpr Cycles kMissThreshold = 130;

    /** Associativity of the paper's E5-2660 LLC. */
    static constexpr unsigned kLlcWays = 20;

    Cycles missThreshold = kMissThreshold;
    unsigned ways = kLlcWays;
};

} // namespace pktchase::attack

#endif // PKTCHASE_ATTACK_PROBE_PARAMS_HH
