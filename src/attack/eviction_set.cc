#include "eviction_set.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace pktchase::attack
{

EvictionSet
ComboGroups::evictionSetFor(std::size_t c, unsigned ways) const
{
    if (c >= groups.size())
        panic("ComboGroups::evictionSetFor combo out of range");
    EvictionSet es;
    const auto &g = groups[c];
    const std::size_t take =
        std::min<std::size_t>(g.size(), ways);
    es.addrs.assign(g.begin(), g.begin() + take);
    return es;
}

EvictionSetBuilder::EvictionSetBuilder(cache::Hierarchy &hier,
                                       mem::AddressSpace &space,
                                       const BuilderConfig &cfg)
    : hier_(hier), space_(space), cfg_(cfg)
{
    allocatePool();
}

void
EvictionSetBuilder::allocatePool()
{
    const Addr base = space_.mmap(cfg_.poolPages);
    poolPhys_.reserve(cfg_.poolPages);
    for (std::size_t i = 0; i < cfg_.poolPages; ++i)
        poolPhys_.push_back(space_.translate(base + i * pageBytes));
}

ComboGroups
EvictionSetBuilder::buildWithOracle()
{
    const auto &geom = hier_.llc().geometry();
    ComboGroups out;
    out.groups.assign(geom.pageAlignedCombos(), {});
    for (Addr page : poolPhys_) {
        const unsigned slice = hier_.llc().sliceHash().slice(page);
        const unsigned set = geom.setIndex(page);
        const std::size_t rank =
            static_cast<std::size_t>(slice) *
                geom.pageAlignedSetsPerSlice() +
            set / blocksPerPage;
        out.groups[rank].push_back(page);
    }
    return out;
}

bool
EvictionSetBuilder::evictsOnce(const std::vector<Addr> &candidate,
                               Addr target)
{
    // PRIME: bring the target into the cache.
    vnow_ += hier_.timedRead(target, vnow_);
    ++timedLoads_;
    // Sweep the candidate set.
    for (Addr a : candidate) {
        vnow_ += hier_.timedRead(a, vnow_);
        ++timedLoads_;
    }
    // PROBE: a slow reload means the candidate evicted the target.
    const Cycles lat = hier_.timedRead(target, vnow_);
    vnow_ += lat;
    ++timedLoads_;
    return lat > cfg_.missThreshold;
}

bool
EvictionSetBuilder::evicts(const std::vector<Addr> &candidate, Addr target)
{
    unsigned yes = 0;
    for (unsigned v = 0; v < cfg_.conflictVotes; ++v)
        if (evictsOnce(candidate, target))
            ++yes;
    return yes * 2 > cfg_.conflictVotes;
}

std::vector<Addr>
EvictionSetBuilder::reduce(std::vector<Addr> candidates, Addr target)
{
    const unsigned ways = hier_.llc().geometry().ways;
    unsigned reshuffles = 0;
    while (candidates.size() > ways) {
        const std::size_t chunks =
            std::min<std::size_t>(ways + 1, candidates.size());
        const std::size_t chunk_len =
            (candidates.size() + chunks - 1) / chunks;
        bool removed = false;
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t lo = c * chunk_len;
            const std::size_t hi =
                std::min(lo + chunk_len, candidates.size());
            if (lo >= hi)
                continue;
            std::vector<Addr> rest;
            rest.reserve(candidates.size() - (hi - lo));
            rest.insert(rest.end(), candidates.begin(),
                        candidates.begin() +
                            static_cast<std::ptrdiff_t>(lo));
            rest.insert(rest.end(),
                        candidates.begin() +
                            static_cast<std::ptrdiff_t>(hi),
                        candidates.end());
            if (evicts(rest, target)) {
                candidates = std::move(rest);
                removed = true;
                break;
            }
        }
        if (!removed && candidates.size() <= 4 * ways) {
            // Near the end every chunk can hold a conflicting page,
            // leaving no removable chunk. Singleton removal always
            // makes progress when any non-essential page remains.
            for (std::size_t i = 0; i < candidates.size(); ++i) {
                std::vector<Addr> rest = candidates;
                rest.erase(rest.begin() +
                           static_cast<std::ptrdiff_t>(i));
                if (evicts(rest, target)) {
                    candidates = std::move(rest);
                    removed = true;
                    break;
                }
            }
        }
        if (!removed) {
            // Timing noise kept every element essential-looking:
            // reshuffle and retry (Vila et al.'s randomized variant);
            // give up only after several attempts, leaving an
            // oversized but still functional eviction set.
            if (++reshuffles > 10)
                break;
            rng_.shuffle(candidates);
        }
    }
    return candidates;
}

ComboGroups
EvictionSetBuilder::buildByConflictTesting(std::size_t max_groups)
{
    ComboGroups out;
    std::vector<Addr> remaining = poolPhys_;

    while (!remaining.empty() &&
           (max_groups == 0 || out.groups.size() < max_groups)) {
        const Addr target = remaining.front();
        std::vector<Addr> candidates(remaining.begin() + 1,
                                     remaining.end());
        if (!evicts(candidates, target)) {
            // Too few same-combo peers in the pool to evict the target;
            // no eviction set can be built for it. Drop it.
            remaining.erase(remaining.begin());
            continue;
        }

        std::vector<Addr> minimal = reduce(std::move(candidates), target);

        // Gather every remaining pool page that conflicts with the
        // minimal set: those share the target's combo.
        std::vector<Addr> group;
        group.push_back(target);
        std::vector<Addr> rest;
        for (Addr q : remaining) {
            if (q == target)
                continue;
            const bool in_minimal =
                std::find(minimal.begin(), minimal.end(), q) !=
                minimal.end();
            if (in_minimal || evicts(minimal, q))
                group.push_back(q);
            else
                rest.push_back(q);
        }
        out.groups.push_back(std::move(group));
        remaining = std::move(rest);
    }
    return out;
}

} // namespace pktchase::attack
