/**
 * @file
 * Ring-buffer sequence recovery -- Algorithm 1 of the paper.
 *
 * The attacker probes N page-aligned sets while packets stream in, then
 * builds a weighted successor graph whose nodes are monitored sets and
 * whose edges carry one node of history (so two ring buffers that share
 * a cache set can be told apart by their successors, Fig. 9), and
 * finally walks the heaviest cycle to recover the ring order. The
 * recovered sequence is scored against driver ground truth with
 * Levenshtein distance (Table I).
 *
 * Full-ring recovery extends a 32-set window one candidate set at a
 * time, re-running the sampler with 31 placed nodes plus the candidate
 * and inserting the candidate next to its observed neighbours, as
 * Sec. III-C describes.
 */

#ifndef PKTCHASE_ATTACK_SEQUENCER_HH
#define PKTCHASE_ATTACK_SEQUENCER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "attack/prime_probe.hh"
#include "attack/probe_params.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pktchase::attack
{

/** Sequencer parameters (Table I defaults). */
struct SequencerConfig
{
    std::size_t nSamples = 100000;   ///< Probe rounds to collect.
    double probeRateHz = 8000;       ///< Rounds per second.

    /** Shared miss-threshold/ways calibration. */
    ProbeParams probe;

    /** Fraction of active rounds above which a set is "always miss". */
    double activityCutoff = 0.95;

    /** Minimum edge weight followed by MAKE_SEQUENCE. */
    std::uint64_t weightCutoff = 3;

    /** Max GET_CLEAN_SAMPLES retries after replacing noisy sets. */
    unsigned cleanRetries = 2;
};

/** Output of one sequencer run. */
struct SequencerResult
{
    /**
     * Recovered ring order as indices into the monitored combo list;
     * a combo hosting k ring buffers appears k times.
     */
    std::vector<int> sequence;
    std::size_t samplesUsed = 0;
    Cycles elapsed = 0;       ///< Simulated time spent sampling.
    unsigned replacedSets = 0; ///< Sets swapped for their block-1 twin.
};

/**
 * Algorithm 1: GET_CLEAN_SAMPLES + BUILD_GRAPH + MAKE_SEQUENCE.
 */
class Sequencer
{
  public:
    /**
     * @param hier   Timing oracle.
     * @param groups Combo partition of the spy pool.
     * @param combos Monitored combos (<= 64 per the paper).
     * @param cfg    Sampling and graph parameters.
     */
    Sequencer(cache::Hierarchy &hier, const ComboGroups &groups,
              std::vector<std::size_t> combos,
              const SequencerConfig &cfg);

    /**
     * Run the full procedure; traffic pumps must already be scheduled
     * on @p eq so that packets flow during sampling.
     */
    SequencerResult run(EventQueue &eq);

    /**
     * BUILD_GRAPH + MAKE_SEQUENCE on externally collected samples
     * (exposed for unit testing the graph logic on synthetic traces).
     */
    static std::vector<int>
    sequenceFromSamples(const std::vector<ProbeSample> &samples,
                        std::size_t n_sets,
                        std::uint64_t weight_cutoff);

  private:
    /** Edge key: (prev, curr) node pair with one node of history. */
    using EdgeKey = std::pair<int, int>;
    /** graph[(prev, curr)][cand] = observation count. */
    using Graph = std::map<EdgeKey, std::map<int, std::uint64_t>>;

    cache::Hierarchy &hier_;
    const ComboGroups &groups_;
    std::vector<std::size_t> combos_;
    SequencerConfig cfg_;

    std::vector<ProbeSample>
    collectSamples(EventQueue &eq, PrimeProbeMonitor &monitor);

    static Graph buildGraph(const std::vector<ProbeSample> &samples,
                            std::size_t n_sets);

    static std::vector<int> makeSequence(Graph graph,
                                         std::uint64_t weight_cutoff);
};

/**
 * Full-ring recovery by incremental extension (Sec. III-C): run the
 * sequencer on an initial window of combos, then re-run it repeatedly
 * with 31 already-placed combos plus one candidate, inserting the
 * candidate after its observed predecessor, until every active combo
 * is placed.
 *
 * Status: approximate. Each candidate is placed once (multi-buffer
 * combos keep only their initial-window occurrences), and within a
 * bracket segment the insertion order is under-constrained, so the
 * global order carries substantially more error than a single Table I
 * window. The covert-channel use case -- picking single-mapped buffers
 * that are far apart in the ring -- tolerates this (Sec. III-C:
 * "small errors in the sequence are tolerable"); experiments that need
 * slot-exact order use a 32..64-set window directly.
 */
class FullRingRecovery
{
  public:
    /**
     * @param hier    Timing oracle.
     * @param groups  Spy pool partition.
     * @param active  All combos with observed buffer activity.
     * @param cfg     Per-window sequencer configuration (nSamples is
     *                the per-window sample count; windows of 32).
     */
    FullRingRecovery(cache::Hierarchy &hier, const ComboGroups &groups,
                     std::vector<std::size_t> active,
                     const SequencerConfig &cfg);

    /**
     * Run the initial window plus one extension round per remaining
     * combo. Traffic pumps must already be scheduled on @p eq.
     *
     * @return Recovered ring order as combo ids (multi-buffer combos
     *         appear once per observable position).
     */
    std::vector<std::size_t> recover(EventQueue &eq);

    /** Combos that could not be placed (insufficient signal). */
    const std::vector<std::size_t> &unplaced() const { return unplaced_; }

  private:
    cache::Hierarchy &hier_;
    const ComboGroups &groups_;
    std::vector<std::size_t> active_;
    SequencerConfig cfg_;
    std::vector<std::size_t> unplaced_;
};

/**
 * Expected observable sequence for scoring: the ground-truth ring sets
 * mapped onto monitored-combo indices, with unmonitored slots dropped
 * and consecutive duplicates merged (the attack cannot see self-loops).
 *
 * @param ring_sets  Driver ground truth: global set id per ring slot.
 * @param combo_gset Global set id of each monitored combo.
 * @return Sequence of monitor indices, ring order.
 */
std::vector<int>
expectedMonitorSequence(const std::vector<std::size_t> &ring_sets,
                        const std::vector<std::size_t> &combo_gset);

/**
 * Multi-queue ground truth: the expected observable sequence of each
 * receive queue's ring, one per queue. On a multi-queue NIC the spy's
 * probe stream observes an RSS-dependent interleaving of these
 * per-ring cycles -- each queue still recycles its buffers in stable
 * ring order (the Algorithm 1 property), but the global arrival order
 * hops between rings with the flow mix.
 *
 * @param queue_ring_sets Per-queue driver ground truth (global set id
 *                        per ring slot), e.g. from
 *                        IgbDriver::queueGroundTruthSets.
 * @param combo_gset      Global set id of each monitored combo.
 * @return One monitor-index sequence per queue, in queue order.
 */
std::vector<std::vector<int>>
expectedQueueSequences(
    const std::vector<std::vector<std::size_t>> &queue_ring_sets,
    const std::vector<std::size_t> &combo_gset);

} // namespace pktchase::attack

#endif // PKTCHASE_ATTACK_SEQUENCER_HH
