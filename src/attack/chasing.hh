/**
 * @file
 * Packet chasing proper: following packets buffer-by-buffer along the
 * recovered ring sequence (Secs. III-C, IV-c, V).
 *
 * Instead of probing all 256 page-aligned sets, the spy probes only the
 * sets of the *next expected* buffer -- the first four blocks of both
 * half-pages, since the driver flips halves for large packets -- and
 * advances on every detected packet, classifying its size in cache
 * blocks (1..4+). Losing a packet desynchronizes the spy from the ring;
 * it then parks on the current buffer until the ring wraps around and
 * fills it again (one out-of-sync event, Fig. 12c).
 */

#ifndef PKTCHASE_ATTACK_CHASING_HH
#define PKTCHASE_ATTACK_CHASING_HH

#include <cstdint>
#include <vector>

#include "attack/prime_probe.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pktchase::attack
{

/** Chasing parameters. */
struct ChasingConfig
{
    Cycles missThreshold = 130;
    unsigned ways = 20;

    /** Blocks probed per half-page (4 -> size classes 1..4+). */
    unsigned sizeBlocks = 4;

    /**
     * First in-page block row to probe. The web-fingerprint attack
     * probes rows 0..3; the covert channel probes rows 1..3 (Sec.
     * IV-b) -- row 1 fires for every packet thanks to the driver
     * prefetch, acting as the clock, and dropping row 0 cuts probe
     * cost enough to chase line-rate-ish senders.
     */
    unsigned firstBlock = 0;

    /**
     * Probe only the lower half-page. Correct whenever the traffic
     * stays at or below the copy-break threshold (no page flips), and
     * halves the probe cost -- the covert channel uses this.
     */
    bool lowerHalfOnly = false;

    /** Gap between consecutive per-buffer probes. */
    Cycles probeInterval = 4000;

    /**
     * Cycles without activity on the expected buffer before declaring
     * out-of-sync and waiting for the ring to wrap.
     */
    Cycles resyncTimeout = 5'000'000;
};

/** One observed packet. */
struct PacketObservation
{
    Cycles when = 0;
    unsigned sizeClass = 0;  ///< 1..sizeBlocks ("4" means >= 4 blocks).
    bool secondHalf = false; ///< Landed in the upper half of the page.
    std::size_t slot = 0;    ///< Ring slot the spy attributed it to.
};

/** Outcome of a chase. */
struct ChaseResult
{
    std::vector<PacketObservation> packets;
    std::uint64_t outOfSyncEvents = 0;
    std::uint64_t probes = 0;
    std::size_t finalSlot = 0; ///< Where the spy ended up.
};

/**
 * Follows the recovered buffer sequence and records packet sizes.
 */
class ChasingMonitor
{
  public:
    /**
     * @param hier      Timing oracle.
     * @param groups    Combo partition of the spy pool.
     * @param combo_seq Recovered ring order as combo ids (one entry
     *                  per ring slot the spy can see).
     * @param cfg       Probe cadence and thresholds.
     */
    ChasingMonitor(cache::Hierarchy &hier, const ComboGroups &groups,
                   std::vector<std::size_t> combo_seq,
                   const ChasingConfig &cfg);

    /**
     * Chase packets on @p eq until @p horizon (traffic pumps must
     * already be scheduled).
     */
    ChaseResult chase(EventQueue &eq, Cycles horizon);

  private:
    cache::Hierarchy &hier_;
    std::vector<std::size_t> comboSeq_;
    ChasingConfig cfg_;

    /**
     * Per ring slot: one PrimeProbeMonitor over 2*sizeBlocks sets
     * (blocks 0..3 of each half-page).
     */
    std::vector<PrimeProbeMonitor> slotMonitors_;

    /**
     * Classify a probe round: 0 = no packet; otherwise the size class,
     * with @p second_half set when the upper half fired.
     */
    unsigned classify(const ProbeSample &s, bool &second_half) const;
};

} // namespace pktchase::attack

#endif // PKTCHASE_ATTACK_CHASING_HH
