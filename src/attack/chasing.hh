/**
 * @file
 * Packet chasing proper: following packets buffer-by-buffer along the
 * recovered ring sequence (Secs. III-C, IV-c, V).
 *
 * Instead of probing all 256 page-aligned sets, the spy probes only the
 * sets of the *next expected* buffer -- the first four blocks of both
 * half-pages, since the driver flips halves for large packets -- and
 * advances on every detected packet, classifying its size in cache
 * blocks (1..4+). Losing a packet desynchronizes the spy from the ring;
 * it then parks on the current buffer until the ring wraps around and
 * fills it again (one out-of-sync event, Fig. 12c).
 *
 * ChasingMonitor is the chase front-end over attack::ProbeEngine: one
 * chase stream per receive queue, observations merged arrival-ordered.
 * On a single-queue NIC it reproduces the paper's single-ring chase
 * exactly.
 */

#ifndef PKTCHASE_ATTACK_CHASING_HH
#define PKTCHASE_ATTACK_CHASING_HH

#include <cstdint>
#include <vector>

#include "attack/probe_engine.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pktchase::attack
{

/** Chasing parameters. */
struct ChasingConfig
{
    /** Shared miss-threshold/ways calibration. */
    ProbeParams probe;

    /** Blocks probed per half-page (4 -> size classes 1..4+). */
    unsigned sizeBlocks = 4;

    /**
     * First in-page block row to probe. The web-fingerprint attack
     * probes rows 0..3; the covert channel probes rows 1..3 (Sec.
     * IV-b) -- row 1 fires for every packet thanks to the driver
     * prefetch, acting as the clock, and dropping row 0 cuts probe
     * cost enough to chase line-rate-ish senders.
     */
    unsigned firstBlock = 0;

    /**
     * Probe only the lower half-page. Correct whenever the traffic
     * stays at or below the copy-break threshold (no page flips), and
     * halves the probe cost -- the covert channel uses this.
     */
    bool lowerHalfOnly = false;

    /** Gap between consecutive per-buffer probes. */
    Cycles probeInterval = 4000;

    /**
     * Cycles without activity on the expected buffer before declaring
     * out-of-sync and waiting for the ring to wrap.
     */
    Cycles resyncTimeout = 5'000'000;
};

/** Outcome of a chase (all queues merged). */
struct ChaseResult
{
    /** Observed packets, arrival-ordered across every chased queue. */
    std::vector<PacketObservation> packets;
    std::uint64_t outOfSyncEvents = 0; ///< Summed over queues.
    std::uint64_t probes = 0;          ///< Summed over queues.
    std::size_t finalSlot = 0;  ///< Where queue 0's cursor ended up.
    std::vector<std::size_t> finalSlots; ///< Per-queue final cursors.
};

/**
 * Follows the recovered buffer sequence(s) and records packet sizes.
 */
class ChasingMonitor
{
  public:
    /**
     * Single-queue chase (the paper's configuration).
     *
     * @param hier      Timing oracle.
     * @param groups    Combo partition of the spy pool.
     * @param combo_seq Recovered ring order as combo ids (one entry
     *                  per ring slot the spy can see).
     * @param cfg       Probe cadence and thresholds.
     */
    ChasingMonitor(cache::Hierarchy &hier, const ComboGroups &groups,
                   std::vector<std::size_t> combo_seq,
                   const ChasingConfig &cfg);

    /**
     * Multi-queue chase: one cursor per receive queue, each following
     * that queue's recovered ring order and resyncing independently.
     */
    ChasingMonitor(cache::Hierarchy &hier, const ComboGroups &groups,
                   std::vector<std::vector<std::size_t>> queue_seqs,
                   const ChasingConfig &cfg);

    /**
     * Chase packets on @p eq until @p horizon (traffic pumps must
     * already be scheduled). Call once per monitor.
     */
    ChaseResult chase(EventQueue &eq, Cycles horizon);

    /** The underlying engine (per-queue stats, observer attachment). */
    ProbeEngine &engine() { return engine_; }

  private:
    ProbeEngine engine_;
    ChasingObserver observer_;
    std::size_t queues_ = 0;

    static ProbeEngineConfig engineConfig(const ChasingConfig &cfg);
};

} // namespace pktchase::attack

#endif // PKTCHASE_ATTACK_CHASING_HH
