#include "probe_engine.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace pktchase::attack
{

namespace
{

/** Build the monitor sets for one ring slot's page. */
std::vector<EvictionSet>
slotSets(const ComboGroups &groups, std::size_t combo, unsigned ways,
         unsigned first_block, unsigned size_blocks, bool lower_only)
{
    std::vector<EvictionSet> sets;
    sets.reserve(2 * size_blocks);
    const EvictionSet base = groups.evictionSetFor(combo, ways);
    for (unsigned b = first_block; b < first_block + size_blocks; ++b)
        sets.push_back(base.atBlock(b));
    if (!lower_only) {
        const unsigned half = static_cast<unsigned>(blocksPerPage / 2);
        for (unsigned b = first_block; b < first_block + size_blocks;
             ++b) {
            sets.push_back(base.atBlock(half + b));
        }
    }
    return sets;
}

} // namespace

ProbeEngine::ProbeEngine(cache::Hierarchy &hier,
                         const ProbeEngineConfig &cfg)
    : hier_(hier), cfg_(cfg)
{
}

std::size_t
ProbeEngine::addChaseStream(const ComboGroups &groups,
                            std::vector<std::size_t> combo_seq)
{
    if (ran_)
        panic("ProbeEngine: cannot add streams after run()");
    if (combo_seq.empty())
        panic("ProbeEngine: a chase stream needs a nonempty sequence");
    auto st = std::make_unique<Stream>();
    st->chase = true;
    st->monitors.reserve(combo_seq.size());
    for (std::size_t combo : combo_seq) {
        st->monitors.emplace_back(
            hier_,
            slotSets(groups, combo, cfg_.probe.ways, cfg_.firstBlock,
                     cfg_.sizeBlocks, cfg_.lowerHalfOnly),
            cfg_.probe.missThreshold);
    }
    st->accum.assign(st->monitors[0].size(), 0);
    streams_.push_back(std::move(st));
    return streams_.size() - 1;
}

std::size_t
ProbeEngine::addSampleStream(
    std::vector<std::vector<EvictionSet>> buffer_sets)
{
    if (ran_)
        panic("ProbeEngine: cannot add streams after run()");
    if (buffer_sets.empty())
        panic("ProbeEngine: a sample stream needs at least one monitor");
    auto st = std::make_unique<Stream>();
    st->chase = false;
    st->monitors.reserve(buffer_sets.size());
    for (auto &sets : buffer_sets) {
        st->monitors.emplace_back(hier_, std::move(sets),
                                  cfg_.probe.missThreshold);
    }
    streams_.push_back(std::move(st));
    return streams_.size() - 1;
}

void
ProbeEngine::attach(ProbeObserver &obs)
{
    observers_.push_back(&obs);
}

const ProbeEngine::StreamStats &
ProbeEngine::stats(std::size_t stream) const
{
    if (stream >= streams_.size())
        panic("ProbeEngine::stats: no such stream");
    return streams_[stream]->stats;
}

void
ProbeEngine::deliver(ProbeObservation &obs)
{
    obs.seq = nextSeq_++;
    for (ProbeObserver *o : observers_)
        o->onObservation(obs);
}

unsigned
ProbeEngine::classify(const std::vector<std::uint8_t> &active,
                      bool &second_half) const
{
    const unsigned n = cfg_.sizeBlocks;
    // A packet fires the first monitored row (block 0, or block 1 in
    // covert mode where the prefetch guarantees it) of whichever half
    // the driver handed to the NIC; size class is the highest active
    // block in that half.
    auto class_of = [&](unsigned base) -> unsigned {
        if (!active[base])
            return 0;
        unsigned cls = cfg_.firstBlock + 1;
        for (unsigned b = 1; b < n; ++b)
            if (active[base + b])
                cls = cfg_.firstBlock + b + 1;
        return cls;
    };
    const unsigned lower = class_of(0);
    const unsigned upper = (active.size() >= 2 * n) ? class_of(n) : 0;
    if (lower >= upper) {
        second_half = false;
        return lower;
    }
    second_half = true;
    return upper;
}

void
ProbeEngine::scheduleChase(EventQueue &eq, Stream &st, std::size_t id,
                           Cycles horizon)
{
    st.lastActivity = eq.now();
    // A packet's DMA can land mid-probe, splitting its evidence across
    // two rounds (early rows in this round, late rows -- already
    // re-primed -- only via the previous round). Activity is therefore
    // accumulated across the probes of one slot visit and classified
    // once the first monitored row has fired.
    st.step = [this, &eq, &st, id, horizon] {
        static const obs::ProfilePhase kChasePhase{"probe.chase-round",
                                                   "attack"};
        const obs::ScopedSpan span(kChasePhase);
        const ProbeSample &s = st.monitors[st.cursor].probeAll(eq.now());
        ++st.stats.probes;
        for (std::size_t i = 0; i < st.accum.size(); ++i)
            st.accum[i] |= s.active[i];
        bool second_half = false;
        const unsigned cls = classify(st.accum, second_half);
        if (cls > 0) {
            ++st.stats.packets;
            ProbeObservation obs;
            obs.kind = ProbeKind::Packet;
            obs.when = eq.now();
            obs.stream = id;
            obs.buffer = st.cursor;
            obs.sizeClass = cls;
            obs.secondHalf = second_half;
            deliver(obs);
            st.lastActivity = eq.now();
            st.cursor = (st.cursor + 1) % st.monitors.size();
            std::fill(st.accum.begin(), st.accum.end(), 0);
        } else if (eq.now() - st.lastActivity > cfg_.resyncTimeout) {
            // Lost the ring position: park here until the ring wraps
            // and this buffer fills again.
            ++st.stats.outOfSyncEvents;
            ProbeObservation obs;
            obs.kind = ProbeKind::Resync;
            obs.when = eq.now();
            obs.stream = id;
            obs.buffer = st.cursor;
            deliver(obs);
            st.lastActivity = eq.now();
            std::fill(st.accum.begin(), st.accum.end(), 0);
        }
        // The next probe cannot start before this one's loads retired:
        // the probe cost is what lets fast senders outrun the spy
        // (the Fig. 12c/d error jump at the top rate).
        const Cycles next =
            std::max(eq.now() + cfg_.probeInterval, s.end);
        if (next <= horizon)
            eq.schedule(next, st.step);
    };
    eq.schedule(eq.now(), st.step);
}

void
ProbeEngine::scheduleSample(EventQueue &eq, Stream &st, std::size_t id,
                            Cycles horizon)
{
    const Cycles interval = secondsToCycles(1.0 / cfg_.sampleRateHz);
    st.step = [this, &eq, &st, id, horizon, interval] {
        static const obs::ProfilePhase kSamplePhase{"probe.sample-round",
                                                    "attack"};
        const obs::ScopedSpan span(kSamplePhase);
        Cycles t = eq.now();
        for (std::size_t b = 0; b < st.monitors.size(); ++b) {
            const ProbeSample &s = st.monitors[b].probeAll(t);
            t = s.end;
            ProbeObservation obs;
            obs.kind = ProbeKind::Sample;
            obs.when = s.start;
            obs.stream = id;
            obs.buffer = b;
            obs.active = s.active.data();
            obs.activeCount = s.active.size();
            deliver(obs);
        }
        ++st.stats.probes;
        const Cycles cost = t - eq.now();
        const Cycles next = eq.now() + std::max(interval, cost);
        if (next <= horizon)
            eq.schedule(next, st.step);
    };
    eq.schedule(eq.now(), st.step);
}

void
ProbeEngine::run(EventQueue &eq, Cycles horizon)
{
    if (ran_)
        panic("ProbeEngine::run: one run per engine");
    if (streams_.empty())
        panic("ProbeEngine::run: no streams");
    ran_ = true;

    // Prime every stream once; from then on each probe doubles as the
    // re-prime of its sets, so evidence of a packet that lands before
    // the spy reaches its buffer survives until the probe arrives
    // (stale by at most one ring lap).
    for (auto &st : streams_)
        for (auto &m : st->monitors)
            m.primeAll(eq.now());

    // Streams are scheduled in id order at the same cycle; the event
    // queue's FIFO tie-break keeps the round interleaving -- and hence
    // the merged observation order -- deterministic.
    for (std::size_t id = 0; id < streams_.size(); ++id) {
        Stream &st = *streams_[id];
        if (st.chase)
            scheduleChase(eq, st, id, horizon);
        else
            scheduleSample(eq, st, id, horizon);
    }
    eq.runUntil(horizon);
}

void
ChasingObserver::onObservation(const ProbeObservation &obs)
{
    if (obs.kind == ProbeKind::Packet) {
        packets_.push_back(PacketObservation{obs.when, obs.sizeClass,
                                             obs.secondHalf, obs.buffer,
                                             obs.stream});
    } else if (obs.kind == ProbeKind::Resync) {
        ++outOfSync_;
    }
}

} // namespace pktchase::attack
