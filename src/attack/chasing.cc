#include "chasing.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace pktchase::attack
{

namespace
{

/** Build the monitor for one ring slot's page. */
std::vector<EvictionSet>
slotSets(const ComboGroups &groups, std::size_t combo, unsigned ways,
         unsigned first_block, unsigned size_blocks, bool lower_only)
{
    std::vector<EvictionSet> sets;
    sets.reserve(2 * size_blocks);
    const EvictionSet base = groups.evictionSetFor(combo, ways);
    for (unsigned b = first_block; b < first_block + size_blocks; ++b)
        sets.push_back(base.atBlock(b));
    if (!lower_only) {
        const unsigned half = static_cast<unsigned>(blocksPerPage / 2);
        for (unsigned b = first_block; b < first_block + size_blocks;
             ++b) {
            sets.push_back(base.atBlock(half + b));
        }
    }
    return sets;
}

} // namespace

ChasingMonitor::ChasingMonitor(cache::Hierarchy &hier,
                               const ComboGroups &groups,
                               std::vector<std::size_t> combo_seq,
                               const ChasingConfig &cfg)
    : hier_(hier), comboSeq_(std::move(combo_seq)), cfg_(cfg)
{
    if (comboSeq_.empty())
        panic("ChasingMonitor needs a nonempty sequence");
    slotMonitors_.reserve(comboSeq_.size());
    for (std::size_t combo : comboSeq_) {
        slotMonitors_.emplace_back(
            hier_,
            slotSets(groups, combo, cfg_.ways, cfg_.firstBlock,
                     cfg_.sizeBlocks, cfg_.lowerHalfOnly),
            cfg_.missThreshold);
    }
}

unsigned
ChasingMonitor::classify(const ProbeSample &s, bool &second_half) const
{
    const unsigned n = cfg_.sizeBlocks;
    // A packet fires the first monitored row (block 0, or block 1 in
    // covert mode where the prefetch guarantees it) of whichever half
    // the driver handed to the NIC; size class is the highest active
    // block in that half.
    auto class_of = [&](unsigned base) -> unsigned {
        if (!s.active[base])
            return 0;
        unsigned cls = cfg_.firstBlock + 1;
        for (unsigned b = 1; b < n; ++b)
            if (s.active[base + b])
                cls = cfg_.firstBlock + b + 1;
        return cls;
    };
    const unsigned lower = class_of(0);
    const unsigned upper =
        (s.active.size() >= 2 * n) ? class_of(n) : 0;
    if (lower >= upper) {
        second_half = false;
        return lower;
    }
    second_half = true;
    return upper;
}

ChaseResult
ChasingMonitor::chase(EventQueue &eq, Cycles horizon)
{
    ChaseResult result;
    std::size_t slot = 0;
    Cycles last_activity = eq.now();

    // Prime every slot once; from then on each probe doubles as the
    // re-prime of its sets, so evidence of a packet that lands before
    // the spy reaches its buffer survives until the probe arrives
    // (stale by at most one ring lap).
    for (auto &m : slotMonitors_)
        m.primeAll(eq.now());

    // A packet's DMA can land mid-probe, splitting its evidence across
    // two rounds (early rows in this round, late rows -- already
    // re-primed -- only via the previous round). Activity is therefore
    // accumulated across the probes of one slot visit and classified
    // once the block-0 row has fired.
    std::vector<std::uint8_t> accum(slotMonitors_[0].size(), 0);

    std::function<void()> step = [&] {
        ProbeSample s = slotMonitors_[slot].probeAll(eq.now());
        ++result.probes;
        for (std::size_t i = 0; i < accum.size(); ++i)
            accum[i] |= s.active[i];
        ProbeSample merged;
        merged.active = accum;
        bool second_half = false;
        const unsigned cls = classify(merged, second_half);
        if (cls > 0) {
            result.packets.push_back(
                PacketObservation{eq.now(), cls, second_half, slot});
            last_activity = eq.now();
            slot = (slot + 1) % slotMonitors_.size();
            std::fill(accum.begin(), accum.end(), 0);
        } else if (eq.now() - last_activity > cfg_.resyncTimeout) {
            // Lost the ring position: park here until the ring wraps
            // and this buffer fills again.
            ++result.outOfSyncEvents;
            last_activity = eq.now();
            std::fill(accum.begin(), accum.end(), 0);
        }
        // The next probe cannot start before this one's loads retired:
        // the probe cost is what lets fast senders outrun the spy
        // (the Fig. 12c/d error jump at the top rate).
        const Cycles next =
            std::max(eq.now() + cfg_.probeInterval, s.end);
        if (next <= horizon)
            eq.schedule(next, step);
    };
    eq.schedule(eq.now(), step);
    eq.runUntil(horizon);
    result.finalSlot = slot;
    return result;
}

} // namespace pktchase::attack
