#include "chasing.hh"

#include "sim/logging.hh"

namespace pktchase::attack
{

ProbeEngineConfig
ChasingMonitor::engineConfig(const ChasingConfig &cfg)
{
    ProbeEngineConfig ecfg;
    ecfg.probe = cfg.probe;
    ecfg.sizeBlocks = cfg.sizeBlocks;
    ecfg.firstBlock = cfg.firstBlock;
    ecfg.lowerHalfOnly = cfg.lowerHalfOnly;
    ecfg.probeInterval = cfg.probeInterval;
    ecfg.resyncTimeout = cfg.resyncTimeout;
    return ecfg;
}

ChasingMonitor::ChasingMonitor(cache::Hierarchy &hier,
                               const ComboGroups &groups,
                               std::vector<std::size_t> combo_seq,
                               const ChasingConfig &cfg)
    : engine_(hier, engineConfig(cfg)), queues_(1)
{
    engine_.addChaseStream(groups, std::move(combo_seq));
    engine_.attach(observer_);
}

ChasingMonitor::ChasingMonitor(
    cache::Hierarchy &hier, const ComboGroups &groups,
    std::vector<std::vector<std::size_t>> queue_seqs,
    const ChasingConfig &cfg)
    : engine_(hier, engineConfig(cfg)), queues_(queue_seqs.size())
{
    if (queue_seqs.empty())
        panic("ChasingMonitor needs at least one queue sequence");
    for (auto &seq : queue_seqs)
        engine_.addChaseStream(groups, std::move(seq));
    engine_.attach(observer_);
}

ChaseResult
ChasingMonitor::chase(EventQueue &eq, Cycles horizon)
{
    engine_.run(eq, horizon);

    ChaseResult result;
    result.packets = observer_.packets();
    result.finalSlots.reserve(queues_);
    for (std::size_t q = 0; q < queues_; ++q) {
        const ProbeEngine::StreamStats &s = engine_.stats(q);
        result.outOfSyncEvents += s.outOfSyncEvents;
        result.probes += s.probes;
        result.finalSlots.push_back(s.cursor);
    }
    result.finalSlot = result.finalSlots[0];
    return result;
}

} // namespace pktchase::attack
