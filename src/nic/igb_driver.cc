#include "igb_driver.hh"

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace pktchase::nic
{

namespace
{

/** Per-queue seed: the driver seed for queue 0 (single-queue streams
 *  are bit-identical to the single-ring model), splitmix-style
 *  derivations for the rest. */
std::uint64_t
queueSeed(std::uint64_t base, std::size_t q)
{
    return base ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(q));
}

} // namespace

// ------------------------------------------------------------ RxQueue --

RxQueue::RxQueue(IgbDriver &drv, std::size_t index,
                 std::size_t ring_size, std::uint64_t seed,
                 std::unique_ptr<BufferPolicy> policy)
    : drv_(drv), index_(index), seed_(seed), ring_(ring_size),
      rng_(seed),
      policy_(policy ? std::move(policy)
                     : std::make_unique<NonePolicy>()),
      traits_(policy_->hookTraits())
{
}

const IgbConfig &
RxQueue::config() const
{
    return drv_.cfg_;
}

mem::PhysMem &
RxQueue::phys()
{
    return drv_.phys_;
}

void
RxQueue::reallocBuffer(std::size_t i)
{
    drv_.phys_.freeFrame(ring_.desc(i).pageBase);
    ring_.desc(i).pageBase = drv_.phys_.allocFrame(mem::Owner::Kernel);
    ring_.desc(i).pageOffset = 0;
    ++stats_.buffersReallocated;
}

void
RxQueue::randomizeRing()
{
    for (std::size_t i = 0; i < ring_.size(); ++i)
        reallocBuffer(i);
    ++stats_.ringRandomizations;
}

Addr
RxQueue::swapPage(std::size_t i, Addr new_page)
{
    if (new_page % pageBytes != 0)
        fatal("RxQueue::swapPage: page base not page aligned");
    const Addr old_page = ring_.desc(i).pageBase;
    ring_.desc(i).pageBase = new_page;
    ring_.desc(i).pageOffset = 0;
    ++stats_.pageSwaps;
    return old_page;
}

void
RxQueue::setPageOffset(std::size_t i, Addr offset)
{
    if (offset != 0 && offset != drv_.cfg_.bufferBytes)
        fatal("RxQueue::setPageOffset: offset must name a page half");
    ring_.desc(i).pageOffset = offset;
}

// ---------------------------------------------------------- IgbDriver --

IgbDriver::IgbDriver(const IgbConfig &cfg, mem::PhysMem &phys,
                     cache::Hierarchy &hier,
                     std::vector<std::unique_ptr<BufferPolicy>> policies)
    : cfg_(cfg), phys_(phys), hier_(hier),
      rss_(cfg.queues, cfg.rssKey)
{
    if (cfg_.bufferBytes != pageBytes / 2)
        fatal("IgbDriver models exactly two 2 KB buffers per page");
    if (cfg_.copyBreak >= cfg_.bufferBytes)
        fatal("IgbDriver: copyBreak must be below the buffer size");
    if (!policies.empty() && policies.size() != cfg_.queues)
        fatal("IgbDriver: need one BufferPolicy per queue (or none)");

    queues_.reserve(cfg_.queues);
    for (std::size_t q = 0; q < cfg_.queues; ++q) {
        queues_.push_back(std::unique_ptr<RxQueue>(new RxQueue(
            *this, q, cfg_.ringSize, queueSeed(cfg_.seed, q),
            policies.empty() ? nullptr : std::move(policies[q]))));
    }

    // One page per descriptor, lower half first: the allocation pattern
    // Sec. III-A describes (page-aligned, half-page-aligned buffers).
    // Queue-major order, so queue 0's layout matches the single-ring
    // model exactly.
    for (auto &q : queues_) {
        for (std::size_t i = 0; i < q->ring_.size(); ++i) {
            q->ring_.desc(i).pageBase =
                phys_.allocFrame(mem::Owner::Kernel);
            q->ring_.desc(i).pageOffset = 0;
        }
    }

    // Small recycled pool of skb data pages for copy-break copies.
    skbPages_ = phys_.allocFrames(64, mem::Owner::Kernel);

    for (auto &q : queues_)
        q->policy_->onInit(*q);
}

IgbDriver::IgbDriver(const IgbConfig &cfg, mem::PhysMem &phys,
                     cache::Hierarchy &hier,
                     std::unique_ptr<BufferPolicy> policy)
    : IgbDriver(cfg, phys, hier,
                [&]() -> std::vector<std::unique_ptr<BufferPolicy>> {
                    if (!policy)
                        return {};
                    if (cfg.queues > 1) {
                        fatal("IgbDriver: a multi-queue driver needs "
                              "one BufferPolicy instance per queue");
                    }
                    std::vector<std::unique_ptr<BufferPolicy>> v;
                    v.push_back(std::move(policy));
                    return v;
                }())
{
}

IgbDriver::~IgbDriver()
{
    for (auto &q : queues_)
        q->policy_->onTeardown(*q);
    for (auto &q : queues_)
        for (std::size_t i = 0; i < q->ring_.size(); ++i)
            phys_.freeFrame(q->ring_.desc(i).pageBase);
    for (Addr page : skbPages_)
        phys_.freeFrame(page);
}

std::size_t
IgbDriver::receive(const Frame &frame, Cycles now)
{
    return receiveBatch(&frame, &now, 1);
}

std::size_t
IgbDriver::receiveBatch(const Frame *frames, const Cycles *when,
                        std::size_t count)
{
    if (count == 0)
        fatal("IgbDriver::receiveBatch: empty batch");

    static const obs::ProfilePhase kDeliverPhase{"nic.deliver", "nic"};
    const obs::ScopedSpan span(kDeliverPhase);
    obs::bump(obs::Stat::FramesDelivered, count);

    const bool ddio = hier_.ddioEnabled();
    std::size_t last = 0;
    // Frames [i, batchHookEnd) already had their packet hook issued
    // through one onPacketBatch call covering the run; runStart and
    // runFirstN remember what that call was told so the per-frame
    // loop below can verify the delegation contract: frame runStart+k
    // must observe stats_.framesReceived == runFirstN + k, the exact
    // value the default onPacketBatch loop hands to onPacket.
    std::size_t batchHookEnd = 0;
    std::size_t runStart = 0;
    std::uint64_t runFirstN = 0;

    for (std::size_t i = 0; i < count; ++i) {
        const Frame &frame = frames[i];
        const Cycles now = when[i];
        if (frame.bytes < minFrameBytes || frame.bytes > maxFrameBytes)
            fatal("IgbDriver::receive: frame size outside 802.3 limits");
        if (i > 0 && now < when[i - 1]) {
            panic("IgbDriver::receiveBatch: arrivals out of order "
                  "within a batch");
        }

        RxQueue &q = *queues_[rss_.queueFor(frame.flow)];
        if (q.traits_.packetNoop) {
            // Devirtualized no-defense fast path: nothing to dispatch.
        } else if (q.traits_.packetBatchable) {
            if (i >= batchHookEnd) {
                std::size_t j = i + 1;
                while (j < count
                       && queues_[rss_.queueFor(frames[j].flow)].get()
                              == &q) {
                    ++j;
                }
                obs::bump(obs::Stat::PolicyHooks, j - i);
                runStart = i;
                runFirstN = q.stats_.framesReceived;
                q.policy_->onPacketBatch(q, frames + i, j - i,
                                         runFirstN);
                batchHookEnd = j;
            }
            if (q.stats_.framesReceived != runFirstN + (i - runStart)) {
                panic("IgbDriver::receiveBatch: framesReceived drifted "
                      "from the ordinal passed to the batched hook");
            }
        } else {
            obs::bump(obs::Stat::PolicyHooks);
            q.policy_->onPacket(q, q.stats_.framesReceived);
        }

        const std::size_t index = q.ring_.head();

        // NIC DMA: with DDIO the blocks land in the LLC; without, they
        // go to memory and the driver's reads below demand-fetch them.
        hier_.dmaWrite(q.ring_.desc(index).bufferAddr(), frame.bytes,
                       now);
        q.ring_.advance();

        // Without DDIO the driver sees the frame only after the I/O
        // write has reached memory and the interrupt fired.
        const Cycles seen = ddio ? now : now + cfg_.ioToDriverLatency;
        processRx(q, index, frame, seen);

        ++q.stats_.framesReceived;
        if (q.tap_)
            q.tap_(index, frame, now);
        last = globalIndex(q.index_, index);
    }
    return last;
}

void
IgbDriver::processRx(RxQueue &q, std::size_t desc_index,
                     const Frame &frame, Cycles now)
{
    RxDescriptor &desc = q.ring_.desc(desc_index);
    const Addr buf = desc.bufferAddr();

    // Header read plus the unconditional next-block prefetch: this is
    // why 1-block packets still produce block-1 activity in Fig. 8.
    hier_.cpuRead(buf, now);
    hier_.cpuRead(buf + blockBytes, now);

    const bool dropped = frame.protocol == Protocol::Unknown;
    if (dropped)
        ++q.stats_.framesDropped;

    if (frame.bytes <= cfg_.copyBreak) {
        // igb_add_rx_frag small path: memcpy into the skb and reuse the
        // buffer as-is (Fig. 3), unless it sits on a remote NUMA node.
        ++q.stats_.copyBreakFrames;
        const Addr skb = skbPages_[nextSkb_];
        nextSkb_ = (nextSkb_ + 1) % skbPages_.size();
        for (unsigned b = 0; b < frame.blocks(); ++b) {
            hier_.cpuRead(buf + static_cast<Addr>(b) * blockBytes, now);
            if (!dropped) {
                hier_.cpuWrite(skb + static_cast<Addr>(b) * blockBytes,
                               now);
            }
        }
        if (q.rng_.nextBool(cfg_.remoteNumaProb))
            q.reallocBuffer(desc_index);
    } else {
        // Large path: the page is attached to the skb as a fragment.
        // The stack touches the payload when it consumes the skb; a
        // dropped frame's payload is never read by the CPU (without
        // DDIO those blocks therefore never enter the cache).
        if (!dropped) {
            const Cycles touch = hier_.ddioEnabled()
                ? now : now + cfg_.payloadTouchDelay;
            for (unsigned b = 2; b < frame.blocks(); ++b) {
                hier_.cpuRead(buf + static_cast<Addr>(b) * blockBytes,
                              touch);
            }
        }
        // igb_can_reuse_rx_page (Fig. 4): remote pages are reallocated;
        // otherwise flip to the other half of the page.
        if (q.rng_.nextBool(cfg_.remoteNumaProb)) {
            q.reallocBuffer(desc_index);
        } else {
            desc.pageOffset ^= cfg_.bufferBytes;
            ++q.stats_.pageFlips;
        }
    }

    if (!q.traits_.recycleNoop) {
        obs::bump(obs::Stat::PolicyHooks);
        q.policy_->onRecycle(q, desc_index);
    }

    // Post-defense recycle telemetry: report the page that will back
    // the slot's next fill, so probes see the ring as defended.
    if (telem_) {
        telem_->onRecycle(q.index_, desc_index,
                          q.ring_.desc(desc_index).pageBase, now);
    }
}

void
IgbDriver::randomizeRing()
{
    for (auto &q : queues_)
        q->randomizeRing();
}

IgbStats
IgbDriver::stats() const
{
    IgbStats sum;
    for (const auto &q : queues_) {
        const IgbStats &s = q->stats_;
        sum.framesReceived += s.framesReceived;
        sum.framesDropped += s.framesDropped;
        sum.copyBreakFrames += s.copyBreakFrames;
        sum.pageFlips += s.pageFlips;
        sum.buffersReallocated += s.buffersReallocated;
        sum.pageSwaps += s.pageSwaps;
        sum.ringRandomizations += s.ringRandomizations;
    }
    return sum;
}

std::vector<std::size_t>
IgbDriver::queueGroundTruthSets(std::size_t q) const
{
    const RxRing &ring = queues_[q]->ring_;
    std::vector<std::size_t> sets;
    sets.reserve(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i)
        sets.push_back(hier_.llc().globalSet(ring.desc(i).pageBase));
    return sets;
}

std::vector<std::size_t>
IgbDriver::groundTruthSets() const
{
    std::vector<std::size_t> sets;
    sets.reserve(totalDescriptors());
    for (std::size_t q = 0; q < queues_.size(); ++q) {
        const std::vector<std::size_t> qs = queueGroundTruthSets(q);
        sets.insert(sets.end(), qs.begin(), qs.end());
    }
    return sets;
}

} // namespace pktchase::nic
