#include "igb_driver.hh"

#include "sim/logging.hh"

namespace pktchase::nic
{

IgbDriver::IgbDriver(const IgbConfig &cfg, mem::PhysMem &phys,
                     cache::Hierarchy &hier,
                     std::unique_ptr<BufferPolicy> policy)
    : cfg_(cfg), phys_(phys), hier_(hier), ring_(cfg.ringSize),
      rng_(cfg.seed),
      policy_(policy ? std::move(policy)
                     : std::make_unique<NonePolicy>())
{
    if (cfg_.bufferBytes != pageBytes / 2)
        fatal("IgbDriver models exactly two 2 KB buffers per page");
    if (cfg_.copyBreak >= cfg_.bufferBytes)
        fatal("IgbDriver: copyBreak must be below the buffer size");

    // One page per descriptor, lower half first: the allocation pattern
    // Sec. III-A describes (page-aligned, half-page-aligned buffers).
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        ring_.desc(i).pageBase = phys_.allocFrame(mem::Owner::Kernel);
        ring_.desc(i).pageOffset = 0;
    }

    // Small recycled pool of skb data pages for copy-break copies.
    skbPages_ = phys_.allocFrames(64, mem::Owner::Kernel);

    policy_->onInit(*this);
}

IgbDriver::~IgbDriver()
{
    policy_->onTeardown(*this);
    for (std::size_t i = 0; i < ring_.size(); ++i)
        phys_.freeFrame(ring_.desc(i).pageBase);
    for (Addr page : skbPages_)
        phys_.freeFrame(page);
}

std::size_t
IgbDriver::receive(const Frame &frame, Cycles now)
{
    if (frame.bytes < minFrameBytes || frame.bytes > maxFrameBytes)
        fatal("IgbDriver::receive: frame size outside 802.3 limits");

    policy_->onPacket(*this, stats_.framesReceived);

    const std::size_t index = ring_.head();

    // NIC DMA: with DDIO the blocks land in the LLC; without, they go
    // to memory and the driver's reads below demand-fetch them.
    hier_.dmaWrite(ring_.desc(index).bufferAddr(), frame.bytes, now);
    ring_.advance();

    // Without DDIO the driver sees the frame only after the I/O write
    // has reached memory and the interrupt fired.
    const Cycles when = hier_.ddioEnabled()
        ? now : now + cfg_.ioToDriverLatency;
    processRx(index, frame, when);

    ++stats_.framesReceived;
    return index;
}

void
IgbDriver::processRx(std::size_t desc_index, const Frame &frame,
                     Cycles now)
{
    RxDescriptor &desc = ring_.desc(desc_index);
    const Addr buf = desc.bufferAddr();

    // Header read plus the unconditional next-block prefetch: this is
    // why 1-block packets still produce block-1 activity in Fig. 8.
    hier_.cpuRead(buf, now);
    hier_.cpuRead(buf + blockBytes, now);

    const bool dropped = frame.protocol == Protocol::Unknown;
    if (dropped)
        ++stats_.framesDropped;

    if (frame.bytes <= cfg_.copyBreak) {
        // igb_add_rx_frag small path: memcpy into the skb and reuse the
        // buffer as-is (Fig. 3), unless it sits on a remote NUMA node.
        ++stats_.copyBreakFrames;
        const Addr skb = skbPages_[nextSkb_];
        nextSkb_ = (nextSkb_ + 1) % skbPages_.size();
        for (unsigned b = 0; b < frame.blocks(); ++b) {
            hier_.cpuRead(buf + static_cast<Addr>(b) * blockBytes, now);
            if (!dropped) {
                hier_.cpuWrite(skb + static_cast<Addr>(b) * blockBytes,
                               now);
            }
        }
        if (rng_.nextBool(cfg_.remoteNumaProb))
            reallocBuffer(desc_index);
    } else {
        // Large path: the page is attached to the skb as a fragment.
        // The stack touches the payload when it consumes the skb; a
        // dropped frame's payload is never read by the CPU (without
        // DDIO those blocks therefore never enter the cache).
        if (!dropped) {
            const Cycles touch = hier_.ddioEnabled()
                ? now : now + cfg_.payloadTouchDelay;
            for (unsigned b = 2; b < frame.blocks(); ++b) {
                hier_.cpuRead(buf + static_cast<Addr>(b) * blockBytes,
                              touch);
            }
        }
        // igb_can_reuse_rx_page (Fig. 4): remote pages are reallocated;
        // otherwise flip to the other half of the page.
        if (rng_.nextBool(cfg_.remoteNumaProb)) {
            reallocBuffer(desc_index);
        } else {
            desc.pageOffset ^= cfg_.bufferBytes;
            ++stats_.pageFlips;
        }
    }

    policy_->onRecycle(*this, desc_index);
}

void
IgbDriver::reallocBuffer(std::size_t i)
{
    phys_.freeFrame(ring_.desc(i).pageBase);
    ring_.desc(i).pageBase = phys_.allocFrame(mem::Owner::Kernel);
    ring_.desc(i).pageOffset = 0;
    ++stats_.buffersReallocated;
}

void
IgbDriver::randomizeRing()
{
    for (std::size_t i = 0; i < ring_.size(); ++i)
        reallocBuffer(i);
    ++stats_.ringRandomizations;
}

Addr
IgbDriver::swapPage(std::size_t i, Addr new_page)
{
    if (new_page % pageBytes != 0)
        fatal("IgbDriver::swapPage: page base not page aligned");
    const Addr old_page = ring_.desc(i).pageBase;
    ring_.desc(i).pageBase = new_page;
    ring_.desc(i).pageOffset = 0;
    ++stats_.pageSwaps;
    return old_page;
}

void
IgbDriver::setPageOffset(std::size_t i, Addr offset)
{
    if (offset != 0 && offset != cfg_.bufferBytes)
        fatal("IgbDriver::setPageOffset: offset must name a page half");
    ring_.desc(i).pageOffset = offset;
}

std::vector<std::size_t>
IgbDriver::groundTruthSets() const
{
    std::vector<std::size_t> sets;
    sets.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        sets.push_back(hier_.llc().globalSet(ring_.desc(i).pageBase));
    return sets;
}

} // namespace pktchase::nic
