#include "rss.hh"

#include "sim/logging.hh"

namespace pktchase::nic
{

RssSteering::RssSteering(std::size_t queues, std::uint64_t key)
    : queues_(queues), key_(key)
{
    if (queues_ == 0)
        fatal("RssSteering: queue count must be at least 1");
    if (queues_ > kRetaEntries)
        fatal("RssSteering: queue count exceeds the indirection table");
    // Default RETA layout: round-robin, as drivers program at init.
    for (std::size_t i = 0; i < kRetaEntries; ++i)
        reta_[i] = static_cast<std::uint8_t>(i % queues_);
}

std::uint32_t
RssSteering::hash(std::uint32_t flow) const
{
    // The key is a 64-bit string; window(i) is its 32 bits starting at
    // bit position i (MSB first), exactly the Toeplitz construction.
    std::uint32_t h = 0;
    std::uint64_t window = key_;
    for (int b = 31; b >= 0; --b) {
        if ((flow >> b) & 1u)
            h ^= static_cast<std::uint32_t>(window >> 32);
        window <<= 1;
    }
    return h;
}

} // namespace pktchase::nic
