/**
 * @file
 * Ethernet frame model.
 *
 * Only the properties the attack can observe matter: the frame's size
 * (which determines how many 64 B cache blocks the DMA write touches)
 * and whether the kernel stack will consume it (unknown-protocol
 * broadcast frames are dropped by the driver after the header check,
 * which is exactly what the covert channel exploits -- buffer activity
 * with no stack activity).
 */

#ifndef PKTCHASE_NIC_FRAME_HH
#define PKTCHASE_NIC_FRAME_HH

#include <cstdint>

#include "sim/types.hh"

namespace pktchase::nic
{

/** Protocols the simulated driver can demultiplex. */
enum class Protocol : std::uint8_t
{
    Unknown, ///< Dropped after the header check (raw broadcast frames).
    Tcp,     ///< Delivered to the stack (victim traffic).
    Udp,
};

/** Ethernet frame size limits (IEEE 802.3, with VLAN allowance). */
constexpr Addr minFrameBytes = 64;
constexpr Addr maxFrameBytes = 1522;

/** Bytes of Ethernet header preceding the payload. */
constexpr Addr ethHeaderBytes = 26;

/** On-wire overhead per frame: preamble + SFD + inter-frame gap. */
constexpr Addr wireOverheadBytes = 20;

/**
 * A received Ethernet frame.
 */
struct Frame
{
    Addr bytes = minFrameBytes;          ///< Frame size incl. header.
    Protocol protocol = Protocol::Unknown;
    std::uint64_t id = 0;                ///< For tracking in tests.

    /**
     * Flow id (a stand-in for the 5-tuple): RSS hashes this to pick
     * the receive queue. All frames of one connection share one flow.
     */
    std::uint32_t flow = 0;

    /** Number of 64 B cache blocks the frame occupies in a buffer. */
    unsigned
    blocks() const
    {
        return static_cast<unsigned>(
            (bytes + blockBytes - 1) / blockBytes);
    }

    /** Time the frame occupies a 1 Gb/s wire, in seconds. */
    double
    wireSeconds(double link_bps = 1e9) const
    {
        return static_cast<double>((bytes + wireOverheadBytes) * 8) /
            link_bps;
    }
};

/**
 * Make a frame whose DMA write covers exactly @p blocks cache blocks,
 * as the covert-channel trojan does (symbol S -> (S+2) blocks).
 */
inline Frame
frameOfBlocks(unsigned blocks, Protocol proto = Protocol::Unknown)
{
    Frame f;
    f.bytes = static_cast<Addr>(blocks) * blockBytes;
    f.protocol = proto;
    return f;
}

} // namespace pktchase::nic

#endif // PKTCHASE_NIC_FRAME_HH
