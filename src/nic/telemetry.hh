/**
 * @file
 * NIC-side telemetry hook interface.
 *
 * The IgbDriver holds a nullable RxTelemetry pointer and reports one
 * event per received frame: the recycle of the descriptor that was
 * filled, tagged with the receive queue, the ring slot, and the page
 * backing the slot *after* the queue's BufferPolicy hooks ran -- so a
 * probe observes the recycle stream the way a NIC's buffer-tracking
 * counters would, defenses included.
 *
 * From this single stream a probe derives the per-RxQueue signals the
 * detection layer consumes: buffer-reuse distance (recycles between
 * consecutive uses of the same page on a queue) and recycle entropy
 * (how evenly an epoch's recycles spread over distinct pages).
 *
 * When the pointer is null (the default) the receive path does no
 * telemetry work; the golden-trace tests pin that the off-path cost
 * is zero.
 */

#ifndef PKTCHASE_NIC_TELEMETRY_HH
#define PKTCHASE_NIC_TELEMETRY_HH

#include <cstddef>

#include "sim/types.hh"

namespace pktchase::nic
{

/** Observer of receive-path recycle events. */
class RxTelemetry
{
  public:
    virtual ~RxTelemetry() = default;

    /**
     * Queue @p queue recycled descriptor @p slot; @p page is the page
     * backing the slot after the buffer policy ran, @p now the cycle
     * the driver finished processing the frame.
     */
    virtual void onRecycle(std::size_t queue, std::size_t slot,
                           Addr page, Cycles now) = 0;
};

} // namespace pktchase::nic

#endif // PKTCHASE_NIC_TELEMETRY_HH
