/**
 * @file
 * Model of the Intel Gigabit Ethernet (IGB) driver receive path.
 *
 * Reproduces the behaviours Sec. III-A deconstructs (Figs. 3-4):
 *  - 256 rx buffers of 2 KB, two per 4 KB page, allocated once at init
 *    and recycled for the driver's lifetime;
 *  - copy-break: frames <= 256 B are memcpy'd into a socket buffer and
 *    the rx buffer is reused as-is;
 *  - larger frames attach the page to the skb as a fragment and flip
 *    `page_offset ^= 2048`, so consecutive large packets alternate
 *    between the two halves of the page;
 *  - the driver always touches the first two blocks of the buffer (the
 *    header read plus the unconditional next-block prefetch that makes
 *    1-block packets light up block 1 in Fig. 8);
 *  - unknown-protocol frames are dropped after the header check with no
 *    stack activity;
 *  - optional remote-NUMA reallocation (the unlikely branch in
 *    igb_can_reuse_rx_page).
 *
 * The Sec. VI software defenses are not hardwired here: the driver
 * calls the hooks of a pluggable nic::BufferPolicy at fixed points of
 * the receive path (see buffer_policy.hh for the hook contract) and
 * exposes a narrow mutation surface for policies to rearrange the
 * ring's backing pages.
 */

#ifndef PKTCHASE_NIC_IGB_DRIVER_HH
#define PKTCHASE_NIC_IGB_DRIVER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "nic/buffer_policy.hh"
#include "nic/frame.hh"
#include "nic/rx_ring.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace pktchase::nic
{

/** Driver configuration knobs. */
struct IgbConfig
{
    std::size_t ringSize = 256;       ///< Default IGB descriptor count.
    Addr bufferBytes = 2048;          ///< Half a page per buffer.
    Addr copyBreak = 256;             ///< IGB_RX_HDR_LEN.
    double remoteNumaProb = 0.0;      ///< P(buffer lands on remote node).

    /** Latency from I/O write to driver header read (non-DDIO path). */
    Cycles ioToDriverLatency = 12000;

    /** Extra delay before the stack touches a large payload (no DDIO). */
    Cycles payloadTouchDelay = 4000;

    std::uint64_t seed = 11;
};

/** Receive-path statistics. */
struct IgbStats
{
    std::uint64_t framesReceived = 0;
    std::uint64_t framesDropped = 0;   ///< Unknown protocol.
    std::uint64_t copyBreakFrames = 0;
    std::uint64_t pageFlips = 0;
    std::uint64_t buffersReallocated = 0; ///< Allocator round-trips.
    std::uint64_t pageSwaps = 0;       ///< Pool rotations (no allocator).
    std::uint64_t ringRandomizations = 0;
};

/**
 * The driver model: owns the ring, the buffers, and the receive path.
 */
class IgbDriver
{
  public:
    /**
     * Initialize the driver: allocate ringSize pages (one buffer per
     * page, using the lower half first, per the IGB allocation pattern)
     * and populate the descriptor ring.
     *
     * @param cfg    Driver configuration.
     * @param phys   Kernel page frame source.
     * @param hier   Memory hierarchy for buffer/skb accesses.
     * @param policy Software ring defense; nullptr means NonePolicy.
     */
    IgbDriver(const IgbConfig &cfg, mem::PhysMem &phys,
              cache::Hierarchy &hier,
              std::unique_ptr<BufferPolicy> policy = nullptr);

    ~IgbDriver();

    IgbDriver(const IgbDriver &) = delete;
    IgbDriver &operator=(const IgbDriver &) = delete;

    /**
     * Receive one frame at simulated time @p now: the NIC DMA-writes
     * the head descriptor's buffer, then the driver processes it
     * (header read, prefetch, copy-break or page flip, recycling).
     *
     * @return Index of the descriptor that was filled.
     */
    std::size_t receive(const Frame &frame, Cycles now);

    /** The descriptor ring (ground-truth inspection for experiments). */
    const RxRing &ring() const { return ring_; }

    /** Physical buffer address currently backing descriptor @p i. */
    Addr bufferAddr(std::size_t i) const { return ring_.desc(i).bufferAddr(); }

    /** Physical page base currently backing descriptor @p i. */
    Addr pageBase(std::size_t i) const { return ring_.desc(i).pageBase; }

    /**
     * Ground truth for Table I scoring: the global page-aligned cache
     * set of each descriptor's page, in ring order starting at slot 0.
     */
    std::vector<std::size_t> groundTruthSets() const;

    const IgbStats &stats() const { return stats_; }
    const IgbConfig &config() const { return cfg_; }

    /** The active software ring defense. */
    const BufferPolicy &policy() const { return *policy_; }

    // ------------------------------------------------------------------
    // Policy mutation surface: BufferPolicy hooks rearrange the ring's
    // backing pages only through these, so the defense cost statistics
    // stay consistent across policies.
    // ------------------------------------------------------------------

    /**
     * Replace the page backing descriptor @p i with a fresh frame from
     * the allocator (counts one buffer reallocation).
     */
    void reallocBuffer(std::size_t i);

    /** Reallocate every descriptor (counts one ring randomization). */
    void randomizeRing();

    /**
     * Exchange descriptor @p i's page for @p new_page without touching
     * the allocator (counts one page swap); the buffer offset resets to
     * the lower half.
     *
     * @return The page previously backing the descriptor.
     */
    Addr swapPage(std::size_t i, Addr new_page);

    /** Move descriptor @p i's buffer to @p offset within its page. */
    void setPageOffset(std::size_t i, Addr offset);

    /** Frame source, for policies that own spare pages. */
    mem::PhysMem &phys() { return phys_; }

  private:
    IgbConfig cfg_;
    mem::PhysMem &phys_;
    cache::Hierarchy &hier_;
    RxRing ring_;
    Rng rng_;
    IgbStats stats_;
    std::unique_ptr<BufferPolicy> policy_;

    /** Small reused pool of skb pages for copy-break destinations. */
    std::vector<Addr> skbPages_;
    std::size_t nextSkb_ = 0;

    /** Driver-side processing of a filled descriptor. */
    void processRx(std::size_t desc_index, const Frame &frame,
                   Cycles now);
};

} // namespace pktchase::nic

#endif // PKTCHASE_NIC_IGB_DRIVER_HH
