/**
 * @file
 * Model of the Intel Gigabit Ethernet (IGB) driver receive path.
 *
 * Reproduces the behaviours Sec. III-A deconstructs (Figs. 3-4):
 *  - 256 rx buffers of 2 KB, two per 4 KB page, allocated once at init
 *    and recycled for the driver's lifetime;
 *  - copy-break: frames <= 256 B are memcpy'd into a socket buffer and
 *    the rx buffer is reused as-is;
 *  - larger frames attach the page to the skb as a fragment and flip
 *    `page_offset ^= 2048`, so consecutive large packets alternate
 *    between the two halves of the page;
 *  - the driver always touches the first two blocks of the buffer (the
 *    header read plus the unconditional next-block prefetch that makes
 *    1-block packets light up block 1 in Fig. 8);
 *  - unknown-protocol frames are dropped after the header check with no
 *    stack activity;
 *  - optional remote-NUMA reallocation (the unlikely branch in
 *    igb_can_reuse_rx_page);
 *  - the Sec. VI software defenses: full per-packet buffer
 *    randomization and periodic partial randomization.
 */

#ifndef PKTCHASE_NIC_IGB_DRIVER_HH
#define PKTCHASE_NIC_IGB_DRIVER_HH

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "nic/frame.hh"
#include "nic/rx_ring.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace pktchase::nic
{

/** Software ring-buffer defenses from Sec. VI. */
enum class RingDefense : std::uint8_t
{
    None,            ///< Vulnerable baseline.
    FullRandom,      ///< Fresh random buffer for every packet.
    PartialPeriodic, ///< Reshuffle all buffers every N packets.
};

/** Driver configuration knobs. */
struct IgbConfig
{
    std::size_t ringSize = 256;       ///< Default IGB descriptor count.
    Addr bufferBytes = 2048;          ///< Half a page per buffer.
    Addr copyBreak = 256;             ///< IGB_RX_HDR_LEN.
    double remoteNumaProb = 0.0;      ///< P(buffer lands on remote node).

    RingDefense defense = RingDefense::None;
    std::uint64_t randomizeInterval = 1000; ///< Packets, for Partial.

    /** Latency from I/O write to driver header read (non-DDIO path). */
    Cycles ioToDriverLatency = 12000;

    /** Extra delay before the stack touches a large payload (no DDIO). */
    Cycles payloadTouchDelay = 4000;

    std::uint64_t seed = 11;
};

/** Receive-path statistics. */
struct IgbStats
{
    std::uint64_t framesReceived = 0;
    std::uint64_t framesDropped = 0;   ///< Unknown protocol.
    std::uint64_t copyBreakFrames = 0;
    std::uint64_t pageFlips = 0;
    std::uint64_t buffersReallocated = 0;
    std::uint64_t ringRandomizations = 0;
};

/**
 * The driver model: owns the ring, the buffers, and the receive path.
 */
class IgbDriver
{
  public:
    /**
     * Initialize the driver: allocate ringSize pages (one buffer per
     * page, using the lower half first, per the IGB allocation pattern)
     * and populate the descriptor ring.
     *
     * @param cfg   Driver configuration.
     * @param phys  Kernel page frame source.
     * @param hier  Memory hierarchy for buffer/skb accesses.
     */
    IgbDriver(const IgbConfig &cfg, mem::PhysMem &phys,
              cache::Hierarchy &hier);

    ~IgbDriver();

    IgbDriver(const IgbDriver &) = delete;
    IgbDriver &operator=(const IgbDriver &) = delete;

    /**
     * Receive one frame at simulated time @p now: the NIC DMA-writes
     * the head descriptor's buffer, then the driver processes it
     * (header read, prefetch, copy-break or page flip, recycling).
     *
     * @return Index of the descriptor that was filled.
     */
    std::size_t receive(const Frame &frame, Cycles now);

    /** The descriptor ring (ground-truth inspection for experiments). */
    const RxRing &ring() const { return ring_; }

    /** Physical buffer address currently backing descriptor @p i. */
    Addr bufferAddr(std::size_t i) const { return ring_.desc(i).bufferAddr(); }

    /** Physical page base currently backing descriptor @p i. */
    Addr pageBase(std::size_t i) const { return ring_.desc(i).pageBase; }

    /**
     * Ground truth for Table I scoring: the global page-aligned cache
     * set of each descriptor's page, in ring order starting at slot 0.
     */
    std::vector<std::size_t> groundTruthSets() const;

    const IgbStats &stats() const { return stats_; }
    const IgbConfig &config() const { return cfg_; }

  private:
    IgbConfig cfg_;
    mem::PhysMem &phys_;
    cache::Hierarchy &hier_;
    RxRing ring_;
    Rng rng_;
    IgbStats stats_;

    /** Small reused pool of skb pages for copy-break destinations. */
    std::vector<Addr> skbPages_;
    std::size_t nextSkb_ = 0;

    /** Replace the page backing descriptor @p i with a fresh frame. */
    void reallocBuffer(std::size_t i);

    /** Reshuffle every descriptor onto fresh pages (partial defense). */
    void randomizeRing();

    /** Driver-side processing of a filled descriptor. */
    void processRx(std::size_t desc_index, const Frame &frame,
                   Cycles now);
};

} // namespace pktchase::nic

#endif // PKTCHASE_NIC_IGB_DRIVER_HH
