/**
 * @file
 * Model of the Intel Gigabit Ethernet (IGB) driver receive path.
 *
 * Reproduces the behaviours Sec. III-A deconstructs (Figs. 3-4):
 *  - per-queue rings of 256 rx buffers of 2 KB, two per 4 KB page,
 *    allocated once at init and recycled for the driver's lifetime;
 *  - copy-break: frames <= 256 B are memcpy'd into a socket buffer and
 *    the rx buffer is reused as-is;
 *  - larger frames attach the page to the skb as a fragment and flip
 *    `page_offset ^= 2048`, so consecutive large packets alternate
 *    between the two halves of the page;
 *  - the driver always touches the first two blocks of the buffer (the
 *    header read plus the unconditional next-block prefetch that makes
 *    1-block packets light up block 1 in Fig. 8);
 *  - unknown-protocol frames are dropped after the header check with no
 *    stack activity;
 *  - optional remote-NUMA reallocation (the unlikely branch in
 *    igb_can_reuse_rx_page).
 *
 * The paper deconstructs a single-ring configuration; the model
 * generalizes it to N receive queues with RSS flow steering
 * (nic/rss.hh): each frame's flow id is hashed to pick the RxQueue
 * whose ring the DMA write fills. Every queue owns its descriptor
 * ring, its own statistics, a private RNG stream, and its own
 * nic::BufferPolicy instance, so software ring defenses operate
 * per queue exactly as per-queue NAPI contexts would. With
 * queues == 1 (the default, nic::kDefaultQueues) the receive path is
 * bit-identical to the paper's single-ring model -- the property
 * tests/nic_golden_trace_test.cc pins against pre-refactor goldens.
 *
 * The Sec. VI software defenses are not hardwired here: the queue
 * calls the hooks of its pluggable nic::BufferPolicy at fixed points
 * of the receive path (see buffer_policy.hh for the hook contract) and
 * exposes a narrow mutation surface for policies to rearrange the
 * ring's backing pages.
 */

#ifndef PKTCHASE_NIC_IGB_DRIVER_HH
#define PKTCHASE_NIC_IGB_DRIVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "nic/buffer_policy.hh"
#include "nic/frame.hh"
#include "nic/rss.hh"
#include "nic/rx_ring.hh"
#include "nic/telemetry.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace pktchase::nic
{

/** Driver configuration knobs. */
struct IgbConfig
{
    std::size_t queues = kDefaultQueues; ///< Receive queues (RSS).
    std::size_t ringSize = 256;       ///< Descriptors per queue.
    Addr bufferBytes = 2048;          ///< Half a page per buffer.
    Addr copyBreak = 256;             ///< IGB_RX_HDR_LEN.
    double remoteNumaProb = 0.0;      ///< P(buffer lands on remote node).

    /** Latency from I/O write to driver header read (non-DDIO path). */
    Cycles ioToDriverLatency = 12000;

    /** Extra delay before the stack touches a large payload (no DDIO). */
    Cycles payloadTouchDelay = 4000;

    std::uint64_t rssKey = RssSteering::kDefaultKey;
    std::uint64_t seed = 11;
};

/** Receive-path statistics (kept per queue; see IgbDriver::stats). */
struct IgbStats
{
    std::uint64_t framesReceived = 0;
    std::uint64_t framesDropped = 0;   ///< Unknown protocol.
    std::uint64_t copyBreakFrames = 0;
    std::uint64_t pageFlips = 0;
    std::uint64_t buffersReallocated = 0; ///< Allocator round-trips.
    std::uint64_t pageSwaps = 0;       ///< Pool rotations (no allocator).
    std::uint64_t ringRandomizations = 0;
};

class IgbDriver;

/**
 * One receive queue: a descriptor ring plus the queue's own
 * statistics, RNG stream, and BufferPolicy instance. The policy
 * mutation surface lives here, so a per-queue policy always acts on
 * its own ring and its costs land in its own queue's statistics.
 */
class RxQueue
{
  public:
    RxQueue(const RxQueue &) = delete;
    RxQueue &operator=(const RxQueue &) = delete;

    /** Position of this queue within the driver. */
    std::size_t index() const { return index_; }

    /** This queue's descriptor ring. */
    const RxRing &ring() const { return ring_; }

    /** This queue's receive-path statistics. */
    const IgbStats &stats() const { return stats_; }

    /** The queue's software ring defense. */
    const BufferPolicy &policy() const { return *policy_; }

    /** The policy's dispatch hints, cached when it was installed. */
    const BufferPolicy::HookTraits &hookTraits() const { return traits_; }

    /** The owning driver's configuration. */
    const IgbConfig &config() const;

    /**
     * The queue's seed: the driver seed for queue 0 (so single-queue
     * streams match the single-ring model draw for draw), a splitmix
     * derivation for the others. Policies derive private streams from
     * this.
     */
    std::uint64_t seed() const { return seed_; }

    /**
     * Per-queue delivery observer: called for every frame this queue
     * receives, after the driver finished processing it, with the
     * ring slot that was filled and the arrival cycle. Harnesses use
     * the tap as per-queue ground truth (e.g. scoring a probe-engine
     * chase against what each ring actually received); taps must not
     * mutate driver state.
     */
    using DeliveryTap =
        std::function<void(std::size_t slot, const Frame &frame,
                           Cycles when)>;

    /** Install @p tap (replaces any previous one; {} clears it). */
    void setDeliveryTap(DeliveryTap tap) { tap_ = std::move(tap); }

    // ------------------------------------------------------------------
    // Policy mutation surface: BufferPolicy hooks rearrange this
    // queue's backing pages only through these, so the defense cost
    // statistics stay consistent across policies.
    // ------------------------------------------------------------------

    /**
     * Replace the page backing descriptor @p i with a fresh frame from
     * the allocator (counts one buffer reallocation).
     */
    void reallocBuffer(std::size_t i);

    /** Reallocate every descriptor (counts one ring randomization). */
    void randomizeRing();

    /**
     * Exchange descriptor @p i's page for @p new_page without touching
     * the allocator (counts one page swap); the buffer offset resets to
     * the lower half.
     *
     * @return The page previously backing the descriptor.
     */
    Addr swapPage(std::size_t i, Addr new_page);

    /** Move descriptor @p i's buffer to @p offset within its page. */
    void setPageOffset(std::size_t i, Addr offset);

    /** Frame source, for policies that own spare pages. */
    mem::PhysMem &phys();

  private:
    friend class IgbDriver;

    RxQueue(IgbDriver &drv, std::size_t index, std::size_t ring_size,
            std::uint64_t seed, std::unique_ptr<BufferPolicy> policy);

    IgbDriver &drv_;
    std::size_t index_;
    std::uint64_t seed_;
    RxRing ring_;
    Rng rng_;
    IgbStats stats_;
    std::unique_ptr<BufferPolicy> policy_;
    BufferPolicy::HookTraits traits_; ///< policy_->hookTraits(), cached.
    DeliveryTap tap_;
};

/**
 * The driver model: owns the queues, the buffers, and the receive
 * path. Frames are steered to queues by RSS over their flow id.
 */
class IgbDriver
{
  public:
    /**
     * Initialize the driver: allocate ringSize pages per queue (one
     * buffer per page, using the lower half first, per the IGB
     * allocation pattern) and populate the descriptor rings in queue
     * order.
     *
     * @param cfg      Driver configuration.
     * @param phys     Kernel page frame source.
     * @param hier     Memory hierarchy for buffer/skb accesses.
     * @param policies Software ring defense per queue; must be empty
     *                 (every queue gets NonePolicy) or exactly
     *                 cfg.queues entries.
     */
    IgbDriver(const IgbConfig &cfg, mem::PhysMem &phys,
              cache::Hierarchy &hier,
              std::vector<std::unique_ptr<BufferPolicy>> policies);

    /**
     * Single-policy convenience for the single-queue configuration;
     * fatal when cfg.queues > 1 and a policy is given (per-queue
     * instances are required -- policies carry queue-local state).
     */
    IgbDriver(const IgbConfig &cfg, mem::PhysMem &phys,
              cache::Hierarchy &hier,
              std::unique_ptr<BufferPolicy> policy = nullptr);

    ~IgbDriver();

    IgbDriver(const IgbDriver &) = delete;
    IgbDriver &operator=(const IgbDriver &) = delete;

    /**
     * Receive one frame at simulated time @p now: RSS steers the flow
     * to a queue, the NIC DMA-writes that queue's head descriptor's
     * buffer, then the driver processes it (header read, prefetch,
     * copy-break or page flip, recycling).
     *
     * @return Global index of the descriptor that was filled
     *         (queue * ringSize + slot; equal to the slot for
     *         single-queue configurations).
     */
    std::size_t receive(const Frame &frame, Cycles now);

    /**
     * Batched receive: process @p count frames with nondecreasing
     * arrival cycles in one call, equivalent frame for frame to
     * calling receive() on each. The batch hoists the per-frame
     * tracing span and counter bumps, skips hook dispatch for
     * policies whose cached HookTraits mark the hook a no-op (the
     * devirtualized no-defense fast path), and routes runs of
     * same-queue frames through BufferPolicy::onPacketBatch when the
     * policy declares that batchable. Per-frame descriptor
     * processing, statistics, and delivery taps are unchanged and
     * keep arrival order within each queue.
     *
     * @return Global index of the descriptor the last frame filled.
     */
    std::size_t receiveBatch(const Frame *frames, const Cycles *when,
                             std::size_t count);

    /** Number of receive queues. */
    std::size_t numQueues() const { return queues_.size(); }

    /** Receive queue @p q. */
    RxQueue &queue(std::size_t q) { return *queues_[q]; }
    const RxQueue &queue(std::size_t q) const { return *queues_[q]; }

    /** The flow steering function. */
    const RssSteering &rss() const { return rss_; }

    /** Descriptor count summed over all queues. */
    std::size_t totalDescriptors() const
    {
        return queues_.size() * cfg_.ringSize;
    }

    /** Global descriptor index of @p slot in queue @p q. */
    std::size_t globalIndex(std::size_t q, std::size_t slot) const
    {
        return q * cfg_.ringSize + slot;
    }

    /** Queue owning global descriptor index @p i. */
    std::size_t queueOf(std::size_t i) const { return i / cfg_.ringSize; }

    /** Ring slot of global descriptor index @p i. */
    std::size_t slotOf(std::size_t i) const { return i % cfg_.ringSize; }

    /** Queue @p q's descriptor ring (queue 0 by default). */
    const RxRing &ring(std::size_t q = 0) const
    {
        return queues_[q]->ring();
    }

    /** Physical buffer address backing descriptor @p i of queue @p q. */
    Addr bufferAddr(std::size_t i, std::size_t q = 0) const
    {
        return queues_[q]->ring().desc(i).bufferAddr();
    }

    /** Physical page base backing descriptor @p i of queue @p q. */
    Addr pageBase(std::size_t i, std::size_t q = 0) const
    {
        return queues_[q]->ring().desc(i).pageBase;
    }

    /**
     * Ground truth for Table I scoring: the global page-aligned cache
     * set of each descriptor's page, queue-major (queue 0 slot 0 ..
     * queue 0 slot N-1, queue 1 slot 0, ...).
     */
    std::vector<std::size_t> groundTruthSets() const;

    /** Per-queue ground truth: set of each of queue @p q's slots. */
    std::vector<std::size_t> queueGroundTruthSets(std::size_t q) const;

    /**
     * Aggregate receive statistics summed over all queues (identical
     * to queue 0's counters in single-queue configurations).
     */
    IgbStats stats() const;

    /** Queue @p q's own statistics. */
    const IgbStats &queueStats(std::size_t q) const
    {
        return queues_[q]->stats();
    }

    const IgbConfig &config() const { return cfg_; }

    /** The active software ring defense of queue @p q (default 0). */
    const BufferPolicy &policy(std::size_t q = 0) const
    {
        return queues_[q]->policy();
    }

    // ------------------------------------------------------------------
    // Queue-0 convenience mutation surface, kept for single-queue
    // experiments and tests; randomizeRing spans every queue.
    // ------------------------------------------------------------------

    /** queue(0).reallocBuffer(i). */
    void reallocBuffer(std::size_t i) { queues_[0]->reallocBuffer(i); }

    /** Reallocate every descriptor of every queue. */
    void randomizeRing();

    /** queue(0).swapPage(i, new_page). */
    Addr swapPage(std::size_t i, Addr new_page)
    {
        return queues_[0]->swapPage(i, new_page);
    }

    /** queue(0).setPageOffset(i, offset). */
    void setPageOffset(std::size_t i, Addr offset)
    {
        queues_[0]->setPageOffset(i, offset);
    }

    /** Frame source, for policies that own spare pages. */
    mem::PhysMem &phys() { return phys_; }

    /**
     * Attach a recycle-telemetry probe spanning every queue (nullptr
     * detaches). Detached (the default), the receive path does no
     * telemetry work. Not owned; must outlive the driver or be
     * detached first.
     */
    void attachTelemetry(RxTelemetry *probe) { telem_ = probe; }

    /** The attached telemetry probe, or nullptr. */
    RxTelemetry *telemetry() const { return telem_; }

  private:
    friend class RxQueue;

    IgbConfig cfg_;
    mem::PhysMem &phys_;
    cache::Hierarchy &hier_;
    RssSteering rss_;
    std::vector<std::unique_ptr<RxQueue>> queues_;
    RxTelemetry *telem_ = nullptr; ///< Counter probe; null = off-path.

    /** Small reused pool of skb pages for copy-break destinations,
     *  shared across queues like the kernel's skb allocator. */
    std::vector<Addr> skbPages_;
    std::size_t nextSkb_ = 0;

    /** Driver-side processing of a filled descriptor of @p q. */
    void processRx(RxQueue &q, std::size_t desc_index,
                   const Frame &frame, Cycles now);
};

} // namespace pktchase::nic

#endif // PKTCHASE_NIC_IGB_DRIVER_HH
