/**
 * @file
 * The shared rx descriptor ring between the NIC and the driver (Fig. 1).
 *
 * Each descriptor names a receive buffer: half of a 4 KB kernel page
 * (the IGB driver packs two 2 KB buffers per page). The NIC fills
 * descriptors strictly in ring order; the driver recycles buffers back
 * into the same slots, which is why the fill order is stable across the
 * driver's lifetime -- the property Algorithm 1 recovers.
 */

#ifndef PKTCHASE_NIC_RX_RING_HH
#define PKTCHASE_NIC_RX_RING_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace pktchase::nic
{

/** One rx descriptor: a DMA target within a kernel page. */
struct RxDescriptor
{
    Addr pageBase = 0;    ///< Physical base of the backing page.
    Addr pageOffset = 0;  ///< 0 or 2048: which half the NIC writes.

    /** Physical DMA target address for the next fill. */
    Addr bufferAddr() const { return pageBase + pageOffset; }
};

/**
 * Fixed-size circular descriptor ring.
 */
class RxRing
{
  public:
    /** Construct a ring of @p size descriptors (default IGB: 256). */
    explicit RxRing(std::size_t size);

    /** Number of descriptors. */
    std::size_t size() const { return descs_.size(); }

    /** Index of the descriptor the NIC will fill next. */
    std::size_t head() const { return head_; }

    /** Advance the head past one consumed descriptor. */
    void advance();

    /** Mutable access to descriptor @p i. */
    RxDescriptor &desc(std::size_t i);

    /** Read-only access to descriptor @p i. */
    const RxDescriptor &desc(std::size_t i) const;

    /** Reset the head to slot 0 (driver re-initialization). */
    void resetHead() { head_ = 0; }

  private:
    std::vector<RxDescriptor> descs_;
    std::size_t head_ = 0;
};

} // namespace pktchase::nic

#endif // PKTCHASE_NIC_RX_RING_HH
