/**
 * @file
 * Receive-side scaling (RSS): flow-to-queue steering for the
 * multi-queue NIC model.
 *
 * Real multi-queue adapters (including the I350 family the paper's
 * testbed uses) hash the flow tuple with a Toeplitz hash and look the
 * result up in a 128-entry indirection table to pick a receive queue.
 * The model reproduces that pipeline over the simulated Frame's flow
 * id: steering is a pure function of (flow, key, queue count), so the
 * same flow always lands on the same queue, steering is independent of
 * packet order and of any driver state, and a large flow population
 * spreads near-uniformly across queues -- the three properties
 * tests/nic_rss_test.cc pins.
 *
 * The paper's attack deconstructs a single-ring receive path; the spy
 * reverse-engineers one ring's layout. Multi-queue steering is the
 * axis the paper leaves open: frames of different flows land in
 * different rings, so the observable interleaving at each ring is a
 * flow-dependent subsequence of the wire order.
 */

#ifndef PKTCHASE_NIC_RSS_HH
#define PKTCHASE_NIC_RSS_HH

#include <array>
#include <cstdint>

namespace pktchase::nic
{

/**
 * Default queue count. The single source of truth: IgbConfig, the
 * "nic.queues" spec parser, and the grid builders all read this
 * constant (the paper's single-ring configuration).
 */
constexpr std::size_t kDefaultQueues = 1;

/**
 * Toeplitz-style flow steering with a RETA indirection table.
 */
class RssSteering
{
  public:
    /** First 8 bytes of the well-known Microsoft RSS sample key. */
    static constexpr std::uint64_t kDefaultKey = 0x6d5a56da255b0ec2ull;

    /** Indirection-table entries (128, as on IGB-class hardware). */
    static constexpr std::size_t kRetaEntries = 128;

    /**
     * @param queues Receive queue count; must be >= 1.
     * @param key    Toeplitz hash key material.
     */
    explicit RssSteering(std::size_t queues,
                         std::uint64_t key = kDefaultKey);

    /** Number of receive queues steered across. */
    std::size_t queues() const { return queues_; }

    /**
     * Toeplitz hash of a 32-bit flow id: for every set input bit,
     * XOR in the 32-bit window of the key starting at that bit.
     */
    std::uint32_t hash(std::uint32_t flow) const;

    /** Queue for @p flow: RETA[hash(flow) mod kRetaEntries]. */
    std::size_t queueFor(std::uint32_t flow) const
    {
        return reta_[hash(flow) % kRetaEntries];
    }

  private:
    std::size_t queues_;
    std::uint64_t key_;
    std::array<std::uint8_t, kRetaEntries> reta_;
};

} // namespace pktchase::nic

#endif // PKTCHASE_NIC_RSS_HH
