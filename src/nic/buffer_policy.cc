#include "buffer_policy.hh"

#include "mem/phys_mem.hh"
#include "nic/igb_driver.hh"
#include "sim/logging.hh"

namespace pktchase::nic
{

void
FullRandomPolicy::onRecycle(RxQueue &q, std::size_t i)
{
    q.reallocBuffer(i);
}

PartialPeriodicPolicy::PartialPeriodicPolicy(std::uint64_t interval)
    : interval_(interval)
{
    if (interval_ == 0)
        fatal("PartialPeriodicPolicy: interval must be nonzero");
}

std::string
PartialPeriodicPolicy::name() const
{
    return "ring.partial:" + std::to_string(interval_);
}

void
PartialPeriodicPolicy::onPacket(RxQueue &q, std::uint64_t n)
{
    if (n > 0 && n % interval_ == 0)
        q.randomizeRing();
}

void
RandomOffsetPolicy::onInit(RxQueue &q)
{
    // A private stream derived from the queue seed: the queue's own
    // Rng (remote-NUMA draws) must advance exactly as it does under
    // every other policy.
    rng_ = Rng(q.seed() ^ 0xA5F0C3D2E1B49786ull);
}

void
RandomOffsetPolicy::onRecycle(RxQueue &q, std::size_t i)
{
    q.setPageOffset(i, rng_.nextBool(0.5)
        ? q.config().bufferBytes : 0);
}

QuarantinePolicy::QuarantinePolicy(std::uint64_t depth)
    : depth_(depth)
{
    if (depth_ == 0)
        fatal("QuarantinePolicy: depth must be nonzero");
}

std::string
QuarantinePolicy::name() const
{
    return "ring.quarantine:" + std::to_string(depth_);
}

void
QuarantinePolicy::onInit(RxQueue &q)
{
    const auto frames = q.phys().allocFrames(
        static_cast<std::size_t>(depth_), mem::Owner::Kernel);
    pool_.assign(frames.begin(), frames.end());
}

void
QuarantinePolicy::onRecycle(RxQueue &q, std::size_t i)
{
    // FIFO rotation: the just-used page enters at the tail, the oldest
    // quarantined page leaves at the head -- with depth >= 1 the page
    // handed back can never be the one that was just pushed.
    const Addr fresh = pool_.front();
    pool_.pop_front();
    pool_.push_back(q.swapPage(i, fresh));
}

void
QuarantinePolicy::onTeardown(RxQueue &q)
{
    for (Addr page : pool_)
        q.phys().freeFrame(page);
    pool_.clear();
}

} // namespace pktchase::nic
