/**
 * @file
 * Pluggable software ring-buffer defenses (Sec. VI) as a strategy
 * interface over the IGB driver's buffer-recycling path.
 *
 * The driver no longer branches on a defense enum; instead each
 * receive queue calls the hooks of its own BufferPolicy instance at
 * fixed points of the receive path (one instance per RxQueue -- a
 * policy's state is queue-local):
 *
 *  - onInit(q)        once, after the queue's pages are allocated and
 *                     before the first packet;
 *  - onPacket(q, n)   at the top of receive(), before the NIC DMA,
 *                     where n is the number of frames this queue has
 *                     received so far (0 for the first packet);
 *  - onPacketBatch(q, frames, count, first_n)
 *                     batched form of onPacket for a run of count
 *                     consecutive frames steered to q; the default
 *                     implementation delegates to onPacket once per
 *                     frame, so overriding it is purely an
 *                     optimization (see hookTraits below for when the
 *                     driver may use it);
 *  - onRecycle(q, i)  after the driver finished processing the
 *                     queue's descriptor i (copy-break reuse or page
 *                     flip already applied), when the buffer is
 *                     recycled back into the ring;
 *  - onTeardown(q)    in the driver's destructor, before the ring
 *                     pages are freed -- release policy-owned frames
 *                     here.
 *
 * Policies mutate the ring only through the queue's policy surface
 * (reallocBuffer, randomizeRing, swapPage, setPageOffset), which keeps
 * the reallocation statistics -- and therefore the server model's
 * defense cost accounting -- consistent across policies.
 *
 * Canonical spec strings ("ring.partial:1000") are produced by name()
 * and parsed by defense::Registry; see src/defense/README.md for the
 * registration how-to.
 */

#ifndef PKTCHASE_NIC_BUFFER_POLICY_HH
#define PKTCHASE_NIC_BUFFER_POLICY_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "nic/frame.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace pktchase::nic
{

class RxQueue;

/** Strategy interface for the software ring defenses. */
class BufferPolicy
{
  public:
    /**
     * Static dispatch hints for the batched receive path. The driver
     * caches these per queue when the policy is installed, so they
     * must describe the *instance for its whole lifetime* — a policy
     * whose hook behaviour can change mid-run (e.g. a detector-gated
     * wrapper arming) must report the conservative (all-false)
     * default.
     */
    struct HookTraits
    {
        /** onPacket/onPacketBatch do nothing: skip dispatch entirely. */
        bool packetNoop = false;
        /** onRecycle does nothing: skip dispatch entirely. */
        bool recycleNoop = false;
        /**
         * onPacketBatch over a run of frames is semantically identical
         * to per-frame onPacket calls interleaved with descriptor
         * processing (true whenever onPacket does not read or mutate
         * ring state that descriptor processing also touches). The
         * driver only routes through onPacketBatch when this is set.
         */
        bool packetBatchable = false;
    };

    virtual ~BufferPolicy() = default;

    /** Canonical registry spec of this instance, e.g. "ring.partial:1000". */
    virtual std::string name() const = 0;

    /** Dispatch hints; see HookTraits. Must be constant per instance. */
    virtual HookTraits hookTraits() const { return {}; }

    virtual void onInit(RxQueue &) {}
    virtual void onPacket(RxQueue &, std::uint64_t) {}
    virtual void onRecycle(RxQueue &, std::size_t) {}
    virtual void onTeardown(RxQueue &) {}

    /**
     * Batched packet hook: called in place of onPacket for a run of
     * @p count consecutive frames all steered to @p q, where
     * @p first_n is the queue's frames-received count before the first
     * frame of the run (so frame k of the run is packet first_n + k).
     * The default delegates to onPacket once per frame in arrival
     * order, which is exactly the per-packet behaviour.
     */
    virtual void
    onPacketBatch(RxQueue &q, const Frame *frames, std::size_t count,
                  std::uint64_t first_n)
    {
        (void)frames;
        for (std::size_t k = 0; k < count; ++k)
            onPacket(q, first_n + k);
    }
};

/** Vulnerable baseline: buffers recycle in place forever. */
class NonePolicy : public BufferPolicy
{
  public:
    std::string name() const override { return "ring.none"; }

    /** The no-defense fast path: every hook is skippable. */
    HookTraits
    hookTraits() const override
    {
        return {true, true, true};
    }
};

/** Sec. VI full randomization: a fresh random buffer for every packet. */
class FullRandomPolicy : public BufferPolicy
{
  public:
    std::string name() const override { return "ring.full"; }

    HookTraits
    hookTraits() const override
    {
        return {true, false, true};
    }

    void onRecycle(RxQueue &q, std::size_t i) override;
};

/** Sec. VI partial randomization: reshuffle the whole ring every N packets. */
class PartialPeriodicPolicy : public BufferPolicy
{
  public:
    /** Single source of truth for the paper's default interval. */
    static constexpr std::uint64_t kDefaultInterval = 1000;

    explicit PartialPeriodicPolicy(std::uint64_t interval = kDefaultInterval);

    std::string name() const override;

    // Keeps the all-false HookTraits default: onPacket reshuffles the
    // ring and must interleave with descriptor processing, so neither
    // skipping nor batching its dispatch is sound.

    void onPacket(RxQueue &q, std::uint64_t n) override;

    std::uint64_t interval() const { return interval_; }

  private:
    std::uint64_t interval_;
};

/**
 * Intra-page random offset: on every recycle the descriptor's buffer
 * is moved to a random half of its page, replacing the deterministic
 * page_offset ^= 2048 alternation the attack's sequencer tracks. No
 * allocator traffic at all -- the cheapest mitigation in the family,
 * and one the enum design could not express (it is neither "realloc
 * everything" nor "realloc nothing").
 */
class RandomOffsetPolicy : public BufferPolicy
{
  public:
    std::string name() const override { return "ring.offset"; }

    HookTraits
    hookTraits() const override
    {
        return {true, false, true};
    }

    void onInit(RxQueue &q) override;
    void onRecycle(RxQueue &q, std::size_t i) override;

  private:
    Rng rng_{0};
};

/**
 * Delayed-recycle quarantine: a FIFO pool of spare pages sits between
 * use and reuse. On recycle the just-used page enters the pool's tail
 * and the descriptor receives the page that has been quarantined the
 * longest, so a page the attacker just observed is guaranteed not to
 * back the next fill of any descriptor until depth other recycles have
 * passed. Cheaper than full randomization (a pool rotation, not an
 * allocator round-trip), stronger than periodic reshuffling between
 * reshuffles.
 */
class QuarantinePolicy : public BufferPolicy
{
  public:
    static constexpr std::uint64_t kDefaultDepth = 16;

    explicit QuarantinePolicy(std::uint64_t depth = kDefaultDepth);

    std::string name() const override;

    HookTraits
    hookTraits() const override
    {
        return {true, false, true};
    }

    void onInit(RxQueue &q) override;
    void onRecycle(RxQueue &q, std::size_t i) override;
    void onTeardown(RxQueue &q) override;

    std::uint64_t depth() const { return depth_; }

  private:
    std::uint64_t depth_;
    std::deque<Addr> pool_;
};

} // namespace pktchase::nic

#endif // PKTCHASE_NIC_BUFFER_POLICY_HH
