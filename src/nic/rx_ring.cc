#include "rx_ring.hh"

#include "sim/logging.hh"

namespace pktchase::nic
{

RxRing::RxRing(std::size_t size)
    : descs_(size)
{
    if (size == 0)
        fatal("RxRing requires at least one descriptor");
}

void
RxRing::advance()
{
    head_ = (head_ + 1) % descs_.size();
}

RxDescriptor &
RxRing::desc(std::size_t i)
{
    if (i >= descs_.size())
        panic("RxRing::desc out of range");
    return descs_[i];
}

const RxDescriptor &
RxRing::desc(std::size_t i) const
{
    if (i >= descs_.size())
        panic("RxRing::desc out of range");
    return descs_[i];
}

} // namespace pktchase::nic
