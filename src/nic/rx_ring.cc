#include "rx_ring.hh"

#include "sim/logging.hh"

namespace pktchase::nic
{

RxRing::RxRing(std::size_t size)
    : descs_(size)
{
    if (size == 0)
        fatal("RxRing requires at least one descriptor");
}

void
RxRing::advance()
{
    // The head is an index, never a count: it must already be inside
    // the ring before the step, and it wraps to slot 0 exactly at
    // size() so fill order stays stable across the ring's lifetime.
    if (head_ >= descs_.size())
        panic("RxRing::advance head out of range");
    if (++head_ == descs_.size())
        head_ = 0;
}

RxDescriptor &
RxRing::desc(std::size_t i)
{
    if (i >= descs_.size())
        panic("RxRing::desc out of range");
    return descs_[i];
}

const RxDescriptor &
RxRing::desc(std::size_t i) const
{
    if (i >= descs_.size())
        panic("RxRing::desc out of range");
    return descs_[i];
}

} // namespace pktchase::nic
