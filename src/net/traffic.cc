#include "traffic.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace pktchase::net
{

Cycles
wireCycles(const nic::Frame &frame)
{
    return secondsToCycles(frame.wireSeconds(linkBitsPerSecond));
}

double
maxFrameRate(Addr frame_bytes)
{
    const double bits =
        static_cast<double>(
            (frame_bytes + nic::wireOverheadBytes) * 8);
    return linkBitsPerSecond / bits;
}

// ----------------------------------------------------- ConstantStream --

ConstantStream::ConstantStream(Addr frame_bytes, double rate_pps,
                               std::uint64_t count, nic::Protocol proto,
                               std::uint32_t flow)
    : bytes_(frame_bytes), remaining_(count), unbounded_(count == 0),
      proto_(proto), flow_(flow)
{
    const double line = maxFrameRate(frame_bytes);
    const double rate = (rate_pps <= 0.0) ? line : std::min(rate_pps, line);
    gap_ = secondsToCycles(1.0 / rate);
}

bool
ConstantStream::next(nic::Frame &frame, Cycles &gap)
{
    if (!unbounded_) {
        if (remaining_ == 0)
            return false;
        --remaining_;
    }
    frame.bytes = bytes_;
    frame.protocol = proto_;
    frame.flow = flow_;
    frame.id = nextId_++;
    gap = gap_;
    return true;
}

// ------------------------------------------------- PoissonBackground --

PoissonBackground::PoissonBackground(double rate_pps, Rng rng,
                                     std::uint64_t count,
                                     std::uint32_t flows,
                                     std::uint32_t flow_base)
    : ratePps_(rate_pps), rng_(rng), remaining_(count),
      unbounded_(count == 0), flows_(flows), flowBase_(flow_base)
{
    if (rate_pps <= 0.0)
        fatal("PoissonBackground requires a positive rate");
    if (flows_ == 0)
        fatal("PoissonBackground requires at least one flow");
}

Addr
PoissonBackground::sampleSize(Rng &rng)
{
    // Bimodal mix per the Internet packet-size observations the paper
    // cites: ~45% small control frames, ~40% MTU-sized data, the rest
    // uniform in between.
    const double u = rng.nextDouble();
    if (u < 0.45)
        return static_cast<Addr>(rng.nextRange(64, 128));
    if (u < 0.85)
        return static_cast<Addr>(rng.nextRange(1400, 1518));
    return static_cast<Addr>(rng.nextRange(129, 1399));
}

bool
PoissonBackground::next(nic::Frame &frame, Cycles &gap)
{
    if (!unbounded_) {
        if (remaining_ == 0)
            return false;
        --remaining_;
    }
    frame.bytes = sampleSize(rng_);
    frame.protocol = nic::Protocol::Udp;
    // Single-flow backgrounds draw nothing extra, so the size/gap
    // stream is unchanged from the single-flow model.
    frame.flow = flows_ > 1
        ? flowBase_ + static_cast<std::uint32_t>(
              rng_.nextBounded(flows_))
        : flowBase_;
    frame.id = nextId_++;
    gap = secondsToCycles(rng_.nextExponential(ratePps_));
    return true;
}

// --------------------------------------------------- ReorderingSource --

ReorderingSource::ReorderingSource(std::unique_ptr<TrafficSource> inner,
                                   double swap_prob, std::uint64_t seed)
    : inner_(std::move(inner)), swapProb_(swap_prob), rng_(seed)
{
    if (!inner_)
        fatal("ReorderingSource requires an inner source");
}

bool
ReorderingSource::next(nic::Frame &frame, Cycles &gap)
{
    if (havePending_) {
        havePending_ = false;
        frame = pending_;
        gap = pendingGap_;
        return true;
    }
    if (!inner_->next(frame, gap))
        return false;
    if (swapProb_ > 0.0 && rng_.nextBool(swapProb_)) {
        nic::Frame second;
        Cycles second_gap = 0;
        if (inner_->next(second, second_gap)) {
            // Deliver the later frame first; keep both gaps so the
            // aggregate pacing is unchanged.
            pending_ = frame;
            pendingGap_ = second_gap;
            frame = second;
        }
    }
    return true;
}

// ------------------------------------------------------------- FlowMix --

void
FlowMix::add(std::unique_ptr<TrafficSource> source)
{
    if (!source)
        fatal("FlowMix::add requires a source");
    if (primed_)
        fatal("FlowMix::add: sources must be added before the first "
              "next()");
    Lane lane;
    lane.source = std::move(source);
    lanes_.push_back(std::move(lane));
}

void
FlowMix::refill(Lane &lane)
{
    Cycles gap = 0;
    lane.alive = lane.source->next(lane.pending, gap);
    if (lane.alive)
        lane.at += gap;
}

bool
FlowMix::next(nic::Frame &frame, Cycles &gap)
{
    if (!primed_) {
        primed_ = true;
        for (Lane &lane : lanes_)
            refill(lane);
    }
    Lane *earliest = nullptr;
    for (Lane &lane : lanes_) {
        if (lane.alive && (!earliest || lane.at < earliest->at))
            earliest = &lane;
    }
    if (!earliest)
        return false;
    frame = earliest->pending;
    gap = earliest->at - last_;
    last_ = earliest->at;
    refill(*earliest);
    return true;
}

// -------------------------------------------------------- ReplayStream --

ReplayStream::ReplayStream(std::vector<nic::Frame> frames, double rate_pps)
    : frames_(std::move(frames))
{
    if (rate_pps <= 0.0)
        fatal("ReplayStream requires a positive rate");
    gap_ = secondsToCycles(1.0 / rate_pps);
}

bool
ReplayStream::next(nic::Frame &frame, Cycles &gap)
{
    if (pos_ >= frames_.size())
        return false;
    frame = frames_[pos_++];
    gap = gap_;
    return true;
}

// --------------------------------------------------------- TrafficPump --

TrafficPump::TrafficPump(EventQueue &eq, nic::IgbDriver &driver,
                         std::unique_ptr<TrafficSource> source,
                         Cycles start, double jitter_sigma,
                         std::uint64_t seed)
    : eq_(eq), driver_(driver), source_(std::move(source)),
      jitterSigma_(jitter_sigma), rng_(seed)
{
    if (!source_)
        fatal("TrafficPump requires a source");
    scheduleNext(start);
}

bool
TrafficPump::pullNext(Cycles earliest)
{
    nic::Frame frame;
    Cycles gap = 0;
    if (!source_->next(frame, gap))
        return false;

    double when = static_cast<double>(earliest) + static_cast<double>(gap);
    if (jitterSigma_ > 0.0)
        when += std::abs(rng_.nextGaussian(0.0, jitterSigma_));

    // The link serializes frames: this one cannot start before the
    // previous frame's last bit arrived.
    Cycles arrival = static_cast<Cycles>(std::max(when, 0.0));
    arrival = std::max(arrival, wireFreeAt_);
    arrival = std::max(arrival, eq_.now());
    wireFreeAt_ = arrival + wireCycles(frame);

    nextFrame_ = frame;
    nextArrival_ = arrival;
    return true;
}

void
TrafficPump::scheduleNext(Cycles earliest)
{
    if (!pullNext(earliest)) {
        exhausted_ = true;
        return;
    }
    eq_.schedule(nextArrival_, [this] { deliverBatch(); });
}

void
TrafficPump::deliverBatch()
{
    // The event runs at nextFrame_'s arrival cycle: eq_.now() ==
    // nextArrival_.
    batchFrames_.clear();
    batchWhen_.clear();
    batchFrames_.push_back(nextFrame_);
    batchWhen_.push_back(nextArrival_);

    // Fold subsequent arrivals into this event while no other pending
    // event (and no runUntil horizon) falls at or before them. A
    // refused advance leaves the frame pulled, to be scheduled as its
    // own event below -- exactly the unbatched behaviour. Observers
    // must see the driver between frames, so they disable batching.
    const bool batching = maxBatch_ > 1 && !observer_;
    bool more = pullNext(eq_.now());
    while (more && batching && batchFrames_.size() < maxBatch_
           && eq_.tryAdvanceWithin(nextArrival_)) {
        batchFrames_.push_back(nextFrame_);
        batchWhen_.push_back(nextArrival_);
        more = pullNext(eq_.now());
    }

    driver_.receiveBatch(batchFrames_.data(), batchWhen_.data(),
                         batchFrames_.size());
    delivered_ += batchFrames_.size();
    if (observer_)
        observer_(batchFrames_[0], batchWhen_[0]);

    if (more)
        eq_.schedule(nextArrival_, [this] { deliverBatch(); });
    else
        exhausted_ = true;
}

} // namespace pktchase::net
