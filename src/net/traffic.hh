/**
 * @file
 * Network traffic generation.
 *
 * A TrafficSource produces frames with inter-arrival gaps; a
 * TrafficPump drives a source into the driver through the event queue.
 * Pacing models a 1 Gb/s Ethernet link: a frame cannot arrive before
 * the previous one has left the wire, and arrival times carry Gaussian
 * network jitter (the paper's "latency is fluctuating frequently",
 * which forces the synchronized-clock covert encoding).
 */

#ifndef PKTCHASE_NET_TRAFFIC_HH
#define PKTCHASE_NET_TRAFFIC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nic/frame.hh"
#include "nic/igb_driver.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace pktchase::net
{

/** Link speed of the modelled network. */
constexpr double linkBitsPerSecond = 1e9;

/** Wire occupancy of a frame, in core cycles. */
Cycles wireCycles(const nic::Frame &frame);

/** Maximum frame rate for a given frame size on the 1 GbE link. */
double maxFrameRate(Addr frame_bytes);

/**
 * Producer of a (possibly unbounded) frame stream.
 */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /**
     * Produce the next frame.
     *
     * @param frame Out: the frame to deliver.
     * @param gap   Out: cycles between the previous arrival and this
     *              one (before jitter and line-rate clamping).
     * @return false when the stream is exhausted.
     */
    virtual bool next(nic::Frame &frame, Cycles &gap) = 0;
};

/** Constant-size, constant-rate stream (the profiling-phase sender). */
class ConstantStream : public TrafficSource
{
  public:
    /**
     * @param frame_bytes  Size of every frame.
     * @param rate_pps     Packets per second; 0 means line rate.
     * @param count        Number of frames; 0 means unbounded.
     * @param proto        Protocol tag for the frames.
     * @param flow         Flow id of every frame (one connection, so
     *                     RSS steers the stream to one queue).
     */
    ConstantStream(Addr frame_bytes, double rate_pps, std::uint64_t count,
                   nic::Protocol proto = nic::Protocol::Unknown,
                   std::uint32_t flow = 0);

    bool next(nic::Frame &frame, Cycles &gap) override;

  private:
    Addr bytes_;
    Cycles gap_;
    std::uint64_t remaining_;
    bool unbounded_;
    nic::Protocol proto_;
    std::uint32_t flow_;
    std::uint64_t nextId_ = 0;
};

/**
 * Poisson background noise with the bimodal Internet size mix the paper
 * cites (Sinha et al.): mostly small control frames and MTU-sized data
 * frames, a thin tail in between.
 */
class PoissonBackground : public TrafficSource
{
  public:
    /**
     * @param rate_pps Mean arrival rate.
     * @param rng      Private generator.
     * @param count    Frames to produce; 0 means unbounded.
     * @param flows    Flow population: each frame is tagged with one
     *                 of this many flow ids, drawn uniformly. The
     *                 default 1 keeps the draw stream identical to the
     *                 single-flow model (no extra RNG consumption).
     * @param flow_base First flow id of the population.
     */
    PoissonBackground(double rate_pps, Rng rng, std::uint64_t count = 0,
                      std::uint32_t flows = 1,
                      std::uint32_t flow_base = 1u << 16);

    bool next(nic::Frame &frame, Cycles &gap) override;

    /** Sample one frame size from the bimodal mix. */
    static Addr sampleSize(Rng &rng);

  private:
    double ratePps_;
    Rng rng_;
    std::uint64_t remaining_;
    bool unbounded_;
    std::uint32_t flows_;
    std::uint32_t flowBase_;
    std::uint64_t nextId_ = 1u << 20;
};

/**
 * Wraps a source and swaps adjacent frames with a given probability,
 * modelling cross-queue reordering in the switched network. The paper
 * observes packets "start to arrive out-of-order" once the covert
 * send rate reaches 640 kbps -- reordering grows as inter-frame gaps
 * shrink toward the network's delay variation.
 */
class ReorderingSource : public TrafficSource
{
  public:
    ReorderingSource(std::unique_ptr<TrafficSource> inner,
                     double swap_prob, std::uint64_t seed);

    bool next(nic::Frame &frame, Cycles &gap) override;

  private:
    std::unique_ptr<TrafficSource> inner_;
    double swapProb_;
    Rng rng_;
    bool havePending_ = false;
    nic::Frame pending_;
    Cycles pendingGap_ = 0;
};

/**
 * Merges several sources into one arrival-ordered stream: each inner
 * source keeps its own pacing, and next() always emits the earliest
 * pending frame (stable by add order on ties). This is how multi-flow
 * mixes reach a multi-queue driver through one TrafficPump -- e.g. a
 * ConstantStream per victim connection plus a many-flow
 * PoissonBackground, each tagged with distinct flow ids so RSS spreads
 * them across receive queues.
 */
class FlowMix : public TrafficSource
{
  public:
    /** Add an inner source (owned). Call before the first next(). */
    void add(std::unique_ptr<TrafficSource> source);

    bool next(nic::Frame &frame, Cycles &gap) override;

  private:
    struct Lane
    {
        std::unique_ptr<TrafficSource> source;
        nic::Frame pending;
        Cycles at = 0;     ///< Absolute arrival of the pending frame.
        bool alive = false;
    };

    /** Pull the next frame of @p lane; marks it dead on exhaustion. */
    void refill(Lane &lane);

    std::vector<Lane> lanes_;
    Cycles last_ = 0;
    bool primed_ = false;
};

/** Replays an explicit frame list at a fixed rate (web traces, tests). */
class ReplayStream : public TrafficSource
{
  public:
    ReplayStream(std::vector<nic::Frame> frames, double rate_pps);

    bool next(nic::Frame &frame, Cycles &gap) override;

  private:
    std::vector<nic::Frame> frames_;
    std::size_t pos_ = 0;
    Cycles gap_;
};

/**
 * Drives a TrafficSource into an IgbDriver via the event queue,
 * enforcing line-rate serialization and applying arrival jitter.
 *
 * Delivery is batched: one scheduled event delivers a run of frames
 * through IgbDriver::receiveBatch, advancing the simulated clock to
 * each frame's arrival via EventQueue::tryAdvanceWithin. The batch
 * extends only while no other event and no runUntil() horizon falls
 * at or before the next arrival, so arrival cycles, interleaving with
 * other activities, and obs counter totals are identical to per-frame
 * delivery (setMaxBatch(1) forces the per-frame path; the equivalence
 * is pinned by tests/nic_batch_test.cc).
 */
class TrafficPump
{
  public:
    /** Default cap on frames folded into one delivery event. */
    static constexpr std::size_t kDefaultMaxBatch = 4096;

    /**
     * @param eq          Event queue shared by the experiment.
     * @param driver      Receive path.
     * @param source      Frame producer (owned).
     * @param start       Cycle of the first arrival.
     * @param jitterSigma Gaussian jitter on each arrival, in cycles.
     * @param seed        Seed for the jitter generator.
     */
    TrafficPump(EventQueue &eq, nic::IgbDriver &driver,
                std::unique_ptr<TrafficSource> source, Cycles start,
                double jitter_sigma = 0.0, std::uint64_t seed = 23);

    /** Frames delivered so far. */
    std::uint64_t delivered() const { return delivered_; }

    /** Whether the source ran dry. */
    bool exhausted() const { return exhausted_; }

    /**
     * Observe every delivery (frame, arrival cycle). Used by harnesses
     * that need ground-truth arrival times for scoring. An installed
     * observer disables batching (each delivery stays its own event),
     * so observers see the driver's state exactly between frames.
     */
    void
    setObserver(std::function<void(const nic::Frame &, Cycles)> obs)
    {
        observer_ = std::move(obs);
    }

    /**
     * Cap the frames folded into one delivery event; 1 forces the
     * legacy one-event-per-frame path (used by the batching
     * equivalence tests).
     */
    void
    setMaxBatch(std::size_t max_batch)
    {
        maxBatch_ = max_batch == 0 ? 1 : max_batch;
    }

  private:
    EventQueue &eq_;
    nic::IgbDriver &driver_;
    std::unique_ptr<TrafficSource> source_;
    double jitterSigma_;
    Rng rng_;
    Cycles wireFreeAt_ = 0;  ///< When the link finishes the last frame.
    std::uint64_t delivered_ = 0;
    bool exhausted_ = false;
    std::function<void(const nic::Frame &, Cycles)> observer_;
    std::size_t maxBatch_ = kDefaultMaxBatch;
    nic::Frame nextFrame_;       ///< Pulled but not yet delivered.
    Cycles nextArrival_ = 0;     ///< Arrival cycle of nextFrame_.
    std::vector<nic::Frame> batchFrames_; ///< Reused delivery arena.
    std::vector<Cycles> batchWhen_;

    /** Pull the next frame into nextFrame_/nextArrival_. */
    bool pullNext(Cycles earliest);

    /** Pull and schedule the next delivery event. */
    void scheduleNext(Cycles earliest);

    /** Delivery event body: deliver nextFrame_ plus a batched run. */
    void deliverBatch();
};

} // namespace pktchase::net

#endif // PKTCHASE_NET_TRAFFIC_HH
