#include "classifier.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace pktchase::fingerprint
{

CorrelationClassifier::CorrelationClassifier(const ClassifierConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.length == 0)
        fatal("CorrelationClassifier: length must be nonzero");
}

std::vector<double>
CorrelationClassifier::normalize(
    const std::vector<unsigned> &classes) const
{
    std::vector<double> v(cfg_.length, 0.0);
    for (std::size_t i = 0; i < cfg_.length && i < classes.size(); ++i)
        v[i] = static_cast<double>(classes[i]);
    return v;
}

void
CorrelationClassifier::train(std::size_t site,
                             const std::vector<unsigned> &classes)
{
    if (site >= sums_.size()) {
        sums_.resize(site + 1, std::vector<double>(cfg_.length, 0.0));
        counts_.resize(site + 1, 0);
    }
    const std::vector<double> v = normalize(classes);
    for (std::size_t i = 0; i < cfg_.length; ++i)
        sums_[site][i] += v[i];
    ++counts_[site];
}

std::vector<double>
CorrelationClassifier::representative(std::size_t site) const
{
    if (site >= sums_.size() || counts_[site] == 0)
        panic("CorrelationClassifier: untrained site");
    std::vector<double> rep = sums_[site];
    for (double &x : rep)
        x /= static_cast<double>(counts_[site]);
    return rep;
}

double
CorrelationClassifier::score(std::size_t site,
                             const std::vector<unsigned> &classes) const
{
    return maxCrossCorrelation(normalize(classes),
                               representative(site), cfg_.maxLag);
}

std::size_t
CorrelationClassifier::classify(
    const std::vector<unsigned> &classes) const
{
    if (sums_.empty())
        panic("CorrelationClassifier::classify with no training data");
    std::size_t best = 0;
    double best_score = -2.0;
    for (std::size_t s = 0; s < sums_.size(); ++s) {
        if (counts_[s] == 0)
            continue;
        const double sc = score(s, classes);
        if (sc > best_score) {
            best_score = sc;
            best = s;
        }
    }
    return best;
}

} // namespace pktchase::fingerprint
