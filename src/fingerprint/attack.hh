/**
 * @file
 * End-to-end web fingerprinting attack (Sec. V).
 *
 * Offline, the attacker (on its own machine) records ground-truth
 * packet-size traces per site -- the tcpdump phase -- and builds
 * representative templates. Online, the spy process chases the ring
 * on the victim host while the victim loads a page, captures the
 * (size-class, order) sequence from cache activity alone, and the
 * classifier names the site. Accuracy is evaluated closed-world over
 * the five-site database, with DDIO on or off (the paper measures
 * 89.7% and 86.5% respectively).
 *
 * On a multi-queue NIC the page load's connections are RSS-spread
 * across receive queues; the spy runs one chase cursor per queue
 * (attack::ProbeEngine) and classifies the arrival-ordered merge of
 * every queue's observations. With queues == 1 the capture pipeline is
 * bit-identical to the paper's single-ring chase
 * (tests/probe_golden_test.cc).
 */

#ifndef PKTCHASE_FINGERPRINT_ATTACK_HH
#define PKTCHASE_FINGERPRINT_ATTACK_HH

#include <cstdint>
#include <vector>

#include "fingerprint/classifier.hh"
#include "fingerprint/website.hh"
#include "testbed/testbed.hh"

namespace pktchase::fingerprint
{

/** Experiment parameters. */
struct FingerprintConfig
{
    std::size_t trainVisits = 20;   ///< Offline visits per site.
    std::size_t trials = 100;       ///< Online classification trials.
    double visitRatePps = 40000;    ///< Victim page-load packet rate.
    double arrivalJitterSigma = 2000;

    /** Injected ring-sequence transpositions (recovery inaccuracy). */
    double sequenceErrorRate = 0.0;

    ClassifierConfig classifier;
    std::uint64_t seed = 17;
};

/** Outcome of a closed-world evaluation. */
struct FingerprintResult
{
    std::size_t trials = 0;
    std::size_t correct = 0;
    double accuracy = 0.0;
    /** confusion[truth][predicted] counts. */
    std::vector<std::vector<unsigned>> confusion;

    /** Probe rounds the spy executed across every trial capture. */
    std::uint64_t probeRounds = 0;
};

/** One live classification trial (the unit the campaign's sub-cell
 *  task decomposition schedules). */
struct TrialOutcome
{
    std::size_t site = 0;      ///< Ground-truth site visited.
    std::size_t predicted = 0; ///< Classifier's answer.
    std::uint64_t probeRounds = 0; ///< Spy rounds this trial cost.
};

/**
 * Drives the capture pipeline and the classifier.
 */
class FingerprintAttack
{
  public:
    FingerprintAttack(testbed::Testbed &tb, const WebsiteDb &db,
                      const FingerprintConfig &cfg);

    /**
     * Victim loads one page; the spy chases and captures size classes.
     */
    std::vector<unsigned> captureVisit(std::size_t site, Rng &rng);

    /** Ground-truth size classes of a visit (the tcpdump view). */
    static std::vector<unsigned>
    truthClasses(const std::vector<nic::Frame> &frames,
                 std::size_t length);

    /**
     * Offline phase alone: train templates from ground-truth traces,
     * consuming FingerprintConfig::trainVisits visits per site from
     * @p rng. evaluate() == train() + trials() on one shared stream.
     */
    void train(Rng &rng);

    /**
     * One online trial: capture a live visit of @p site with @p rng's
     * stream and classify it. Requires train() (the classifier needs
     * templates). Exposed so a campaign task can run exactly one
     * trial on a private testbed under a task-split seed.
     */
    TrialOutcome trial(std::size_t site, Rng &rng);

    /** Train templates offline and run the closed-world evaluation. */
    FingerprintResult evaluate();

    /** The trained classifier (valid after evaluate()). */
    const CorrelationClassifier &classifier() const { return clf_; }

    /** Probe rounds executed by every captureVisit() so far. */
    std::uint64_t probeRounds() const { return probeRounds_; }

  private:
    testbed::Testbed &tb_;
    const WebsiteDb &db_;
    FingerprintConfig cfg_;
    CorrelationClassifier clf_;
    std::uint64_t probeRounds_ = 0;

    /** Per-queue ring sequences, possibly perturbed. */
    std::vector<std::vector<std::size_t>> chaseSeqs_;

    /**
     * chaseSeqs_ with each queue's sequence rotated so its chase
     * starts at that ring's head.
     */
    std::vector<std::vector<std::size_t>> rotatedSequences() const;
};

} // namespace pktchase::fingerprint

#endif // PKTCHASE_FINGERPRINT_ATTACK_HH
