#include "website.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace pktchase::fingerprint
{

unsigned
sizeClassOf(Addr frame_bytes)
{
    const auto blocks = static_cast<unsigned>(
        (frame_bytes + blockBytes - 1) / blockBytes);
    return std::min(blocks, 4u);
}

std::vector<Addr>
WebsiteDb::makeSignature(std::uint64_t seed, unsigned packets)
{
    // A site is a stable sequence of response messages. Each message
    // is a run of MTU frames ended by a fragment whose size is the
    // message length mod MTU -- the per-site discriminator -- with
    // small control packets (ACK bursts, TLS records, redirects)
    // interleaved.
    Rng rng(seed);
    std::vector<Addr> sizes;

    // TLS/TCP handshake preamble: a few small-to-medium records.
    const unsigned preamble = 3 + static_cast<unsigned>(
        rng.nextBounded(4));
    for (unsigned i = 0; i < preamble; ++i)
        sizes.push_back(static_cast<Addr>(rng.nextRange(64, 320)));

    while (sizes.size() < packets) {
        const unsigned burst = 1 + static_cast<unsigned>(
            rng.nextBounded(7));
        for (unsigned b = 0; b < burst && sizes.size() < packets; ++b)
            sizes.push_back(1514);
        // The final fragment of the message: anywhere in 1..MTU.
        sizes.push_back(static_cast<Addr>(rng.nextRange(64, 1514)));
        // Control traffic between objects.
        const unsigned acks = static_cast<unsigned>(rng.nextBounded(3));
        for (unsigned a = 0; a < acks && sizes.size() < packets; ++a)
            sizes.push_back(64);
    }
    sizes.resize(packets);
    return sizes;
}

WebsiteDb::WebsiteDb(std::vector<std::string> names, std::uint64_t seed,
                     const WebsiteConfig &cfg)
    : names_(std::move(names)), cfg_(cfg)
{
    if (names_.empty())
        fatal("WebsiteDb needs at least one site");
    signatures_.reserve(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i) {
        signatures_.push_back(makeSignature(
            seed * 0x9E3779B97F4A7C15ull + i + 1, cfg_.tracePackets));
    }
}

const std::vector<Addr> &
WebsiteDb::signature(std::size_t site) const
{
    if (site >= signatures_.size())
        panic("WebsiteDb::signature out of range");
    return signatures_[site];
}

std::vector<nic::Frame>
WebsiteDb::visit(std::size_t site, Rng &rng) const
{
    const std::vector<Addr> &sig = signature(site);
    std::vector<nic::Frame> frames;
    frames.reserve(sig.size() + 8);
    std::uint64_t id = 0;
    std::size_t pos = 0;

    for (Addr size : sig) {
        // The page load fans out over a few concurrent connections;
        // frames round-robin across their flow ids so RSS spreads a
        // visit over every receive queue of a multi-queue NIC. Flows
        // are assigned positionally (no rng draw), keeping the visit's
        // frame sizes -- and the single-queue capture -- unchanged.
        const auto flow = kFlowBase +
            static_cast<std::uint32_t>(pos++ % kConnectionsPerVisit);
        if (rng.nextBool(cfg_.lossProb))
            continue; // dropped on the wire
        Addr bytes = size;
        if (bytes <= 320 && rng.nextBool(cfg_.controlJitterProb)) {
            bytes = static_cast<Addr>(std::clamp<std::int64_t>(
                static_cast<std::int64_t>(bytes) + rng.nextRange(-32, 64),
                64, 1514));
        }
        nic::Frame f;
        f.bytes = bytes;
        f.protocol = nic::Protocol::Tcp;
        f.id = id++;
        f.flow = flow;
        frames.push_back(f);
        if (rng.nextBool(cfg_.retransProb)) {
            // A retransmit rides the original's connection.
            nic::Frame dup = f;
            dup.id = id++;
            frames.push_back(dup);
        }
    }

    // Occasional adjacent reordering from the network.
    for (std::size_t i = 0; i + 1 < frames.size(); ++i)
        if (rng.nextBool(cfg_.swapProb))
            std::swap(frames[i], frames[i + 1]);
    return frames;
}

WebsiteDb
WebsiteDb::loginPair(std::uint64_t seed)
{
    WebsiteDb db({"login-success", "login-failure"}, seed);
    // Both flows share the login form exchange; success then streams
    // the session page (large messages), failure returns a short
    // error page and stops early with control chatter.
    std::vector<Addr> success, failure;
    Rng rng(seed ^ 0x10617u);
    const unsigned shared = 20;
    for (unsigned i = 0; i < shared; ++i) {
        const Addr s = (i % 5 == 4)
            ? static_cast<Addr>(rng.nextRange(64, 256)) : 1514;
        success.push_back(s);
        failure.push_back(s);
    }
    while (success.size() < db.cfg_.tracePackets) {
        for (unsigned b = 0; b < 5 &&
             success.size() < db.cfg_.tracePackets; ++b) {
            success.push_back(1514);
        }
        success.push_back(static_cast<Addr>(rng.nextRange(300, 1514)));
    }
    while (failure.size() < db.cfg_.tracePackets) {
        failure.push_back(64);
        failure.push_back(static_cast<Addr>(rng.nextRange(64, 192)));
    }
    success.resize(db.cfg_.tracePackets);
    failure.resize(db.cfg_.tracePackets);
    db.signatures_[0] = std::move(success);
    db.signatures_[1] = std::move(failure);
    return db;
}

} // namespace pktchase::fingerprint
