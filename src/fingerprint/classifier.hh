/**
 * @file
 * The paper's correlation-based website classifier (Sec. V).
 *
 * Offline, the attacker computes a representative trace per site: the
 * point-wise average of the size-class vectors over training visits.
 * Online, a captured vector is scored against every template with
 * normalized cross-correlation maximized over a small lag window
 * (tolerating the slight compression/expansion the paper notes), and
 * the best-scoring site wins.
 */

#ifndef PKTCHASE_FINGERPRINT_CLASSIFIER_HH
#define PKTCHASE_FINGERPRINT_CLASSIFIER_HH

#include <cstddef>
#include <vector>

namespace pktchase::fingerprint
{

/** Classifier parameters. */
struct ClassifierConfig
{
    int maxLag = 5;           ///< Cross-correlation lag window.
    std::size_t length = 100; ///< Vectors truncated/padded to this.
};

/**
 * Template-matching classifier over size-class vectors.
 */
class CorrelationClassifier
{
  public:
    explicit CorrelationClassifier(
        const ClassifierConfig &cfg = ClassifierConfig{});

    /**
     * Add one training visit for @p site (size classes, in order).
     * Sites may be trained in any order and unevenly.
     */
    void train(std::size_t site, const std::vector<unsigned> &classes);

    /** Number of sites with at least one training visit. */
    std::size_t sites() const { return sums_.size(); }

    /** The representative (averaged) trace of @p site. */
    std::vector<double> representative(std::size_t site) const;

    /**
     * Classify a captured vector.
     * @return The best-matching site index.
     */
    std::size_t classify(const std::vector<unsigned> &classes) const;

    /** Score of @p classes against @p site's template, in [-1, 1]. */
    double score(std::size_t site,
                 const std::vector<unsigned> &classes) const;

  private:
    ClassifierConfig cfg_;
    std::vector<std::vector<double>> sums_;  ///< Per-site running sums.
    std::vector<std::size_t> counts_;        ///< Training visit counts.

    std::vector<double> normalize(
        const std::vector<unsigned> &classes) const;
};

} // namespace pktchase::fingerprint

#endif // PKTCHASE_FINGERPRINT_CLASSIFIER_HH
