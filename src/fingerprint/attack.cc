#include "attack.hh"

#include <algorithm>

#include "attack/chasing.hh"
#include "net/traffic.hh"
#include "sim/logging.hh"

namespace pktchase::fingerprint
{

FingerprintAttack::FingerprintAttack(testbed::Testbed &tb,
                                     const WebsiteDb &db,
                                     const FingerprintConfig &cfg)
    : tb_(tb), db_(db), cfg_(cfg), clf_(cfg.classifier)
{
    chaseSeq_ = tb_.ringComboSequence();
    if (cfg_.sequenceErrorRate > 0.0) {
        Rng rng(cfg_.seed ^ 0x5EC5u);
        for (std::size_t i = 0; i + 1 < chaseSeq_.size(); ++i)
            if (rng.nextBool(cfg_.sequenceErrorRate))
                std::swap(chaseSeq_[i], chaseSeq_[i + 1]);
    }
}

std::vector<std::size_t>
FingerprintAttack::rotatedSequence() const
{
    // The spy tracks the ring position continuously (it has been
    // chasing since setup), so the chase starts at the slot the NIC
    // will fill next.
    std::vector<std::size_t> seq = chaseSeq_;
    const std::size_t head = tb_.driver().ring().head();
    std::rotate(seq.begin(),
                seq.begin() + static_cast<std::ptrdiff_t>(
                    head % seq.size()),
                seq.end());
    return seq;
}

std::vector<unsigned>
FingerprintAttack::truthClasses(const std::vector<nic::Frame> &frames,
                                std::size_t length)
{
    std::vector<unsigned> classes;
    classes.reserve(length);
    for (const nic::Frame &f : frames) {
        if (classes.size() >= length)
            break;
        classes.push_back(sizeClassOf(f.bytes));
    }
    return classes;
}

std::vector<unsigned>
FingerprintAttack::captureVisit(std::size_t site, Rng &rng)
{
    const std::vector<nic::Frame> frames = db_.visit(site, rng);

    const Cycles start = tb_.eq().now();
    const double secs =
        static_cast<double>(frames.size()) / cfg_.visitRatePps;
    const Cycles horizon = start + secondsToCycles(secs * 1.4 + 0.002);

    auto stream = std::make_unique<net::ReplayStream>(
        frames, cfg_.visitRatePps);
    net::TrafficPump pump(tb_.eq(), tb_.driver(), std::move(stream),
                          start + 1000, cfg_.arrivalJitterSigma,
                          rng.next());

    attack::ChasingConfig ch;
    ch.ways = tb_.config().llc.geom.ways;
    ch.probeInterval = std::max<Cycles>(
        500, secondsToCycles(1.0 / cfg_.visitRatePps) / 4);
    attack::ChasingMonitor chaser(tb_.hier(), tb_.groups(),
                                  rotatedSequence(), ch);
    const attack::ChaseResult r = chaser.chase(tb_.eq(), horizon);

    std::vector<unsigned> classes;
    classes.reserve(cfg_.classifier.length);
    for (const attack::PacketObservation &obs : r.packets) {
        if (classes.size() >= cfg_.classifier.length)
            break;
        classes.push_back(obs.sizeClass);
    }
    return classes;
}

FingerprintResult
FingerprintAttack::evaluate()
{
    Rng rng(cfg_.seed);

    // Offline phase: templates from ground-truth traces of noisy
    // visits (the attacker's own tcpdump captures).
    for (std::size_t site = 0; site < db_.size(); ++site) {
        for (std::size_t v = 0; v < cfg_.trainVisits; ++v) {
            clf_.train(site,
                       truthClasses(db_.visit(site, rng),
                                    cfg_.classifier.length));
        }
    }

    FingerprintResult result;
    result.confusion.assign(
        db_.size(), std::vector<unsigned>(db_.size(), 0));

    for (std::size_t t = 0; t < cfg_.trials; ++t) {
        const std::size_t site = t % db_.size();
        const std::vector<unsigned> captured = captureVisit(site, rng);
        const std::size_t predicted = clf_.classify(captured);
        ++result.confusion[site][predicted];
        if (predicted == site)
            ++result.correct;
        ++result.trials;
    }
    result.accuracy = result.trials > 0
        ? static_cast<double>(result.correct) /
            static_cast<double>(result.trials)
        : 0.0;
    return result;
}

} // namespace pktchase::fingerprint
