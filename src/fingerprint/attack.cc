#include "attack.hh"

#include <algorithm>

#include "attack/chasing.hh"
#include "net/traffic.hh"
#include "sim/logging.hh"

namespace pktchase::fingerprint
{

FingerprintAttack::FingerprintAttack(testbed::Testbed &tb,
                                     const WebsiteDb &db,
                                     const FingerprintConfig &cfg)
    : tb_(tb), db_(db), cfg_(cfg), clf_(cfg.classifier)
{
    chaseSeqs_ = tb_.queueComboSequences();
    if (cfg_.sequenceErrorRate > 0.0) {
        // One shared perturbation stream in queue order keeps the
        // queues:1 draw sequence identical to the single-ring model's.
        Rng rng(cfg_.seed ^ 0x5EC5u);
        for (auto &seq : chaseSeqs_) {
            for (std::size_t i = 0; i + 1 < seq.size(); ++i)
                if (rng.nextBool(cfg_.sequenceErrorRate))
                    std::swap(seq[i], seq[i + 1]);
        }
    }
}

std::vector<std::vector<std::size_t>>
FingerprintAttack::rotatedSequences() const
{
    // The spy tracks every ring's position continuously (it has been
    // chasing since setup), so each queue's chase starts at the slot
    // that queue's NIC ring will fill next.
    std::vector<std::vector<std::size_t>> seqs = chaseSeqs_;
    tb_.rotateToRingHeads(seqs);
    return seqs;
}

std::vector<unsigned>
FingerprintAttack::truthClasses(const std::vector<nic::Frame> &frames,
                                std::size_t length)
{
    std::vector<unsigned> classes;
    classes.reserve(length);
    for (const nic::Frame &f : frames) {
        if (classes.size() >= length)
            break;
        classes.push_back(sizeClassOf(f.bytes));
    }
    return classes;
}

std::vector<unsigned>
FingerprintAttack::captureVisit(std::size_t site, Rng &rng)
{
    const std::vector<nic::Frame> frames = db_.visit(site, rng);

    const Cycles start = tb_.eq().now();
    const double secs =
        static_cast<double>(frames.size()) / cfg_.visitRatePps;
    const Cycles horizon = start + secondsToCycles(secs * 1.4 + 0.002);

    auto stream = std::make_unique<net::ReplayStream>(
        frames, cfg_.visitRatePps);
    net::TrafficPump pump(tb_.eq(), tb_.driver(), std::move(stream),
                          start + 1000, cfg_.arrivalJitterSigma,
                          rng.next());

    attack::ChasingConfig ch;
    ch.probe.ways = tb_.config().llc.geom.ways;
    ch.probeInterval = std::max<Cycles>(
        500, secondsToCycles(1.0 / cfg_.visitRatePps) / 4);
    attack::ChasingMonitor chaser(tb_.hier(), tb_.groups(),
                                  rotatedSequences(), ch);
    const attack::ChaseResult r = chaser.chase(tb_.eq(), horizon);
    probeRounds_ += r.probes;

    std::vector<unsigned> classes;
    classes.reserve(cfg_.classifier.length);
    for (const attack::PacketObservation &obs : r.packets) {
        if (classes.size() >= cfg_.classifier.length)
            break;
        classes.push_back(obs.sizeClass);
    }
    return classes;
}

void
FingerprintAttack::train(Rng &rng)
{
    // Offline phase: templates from ground-truth traces of noisy
    // visits (the attacker's own tcpdump captures).
    for (std::size_t site = 0; site < db_.size(); ++site) {
        for (std::size_t v = 0; v < cfg_.trainVisits; ++v) {
            clf_.train(site,
                       truthClasses(db_.visit(site, rng),
                                    cfg_.classifier.length));
        }
    }
}

TrialOutcome
FingerprintAttack::trial(std::size_t site, Rng &rng)
{
    TrialOutcome out;
    out.site = site;
    const std::uint64_t rounds_before = probeRounds_;
    out.predicted = clf_.classify(captureVisit(site, rng));
    out.probeRounds = probeRounds_ - rounds_before;
    return out;
}

FingerprintResult
FingerprintAttack::evaluate()
{
    // One shared stream across training and trials, so the draw
    // sequence (and every golden pinned to it) is unchanged from the
    // pre-decomposition monolithic loop.
    Rng rng(cfg_.seed);
    train(rng);

    FingerprintResult result;
    result.confusion.assign(
        db_.size(), std::vector<unsigned>(db_.size(), 0));

    const std::uint64_t rounds_before = probeRounds_;
    for (std::size_t t = 0; t < cfg_.trials; ++t) {
        const TrialOutcome o = trial(t % db_.size(), rng);
        ++result.confusion[o.site][o.predicted];
        if (o.predicted == o.site)
            ++result.correct;
        ++result.trials;
    }
    result.probeRounds = probeRounds_ - rounds_before;
    result.accuracy = result.trials > 0
        ? static_cast<double>(result.correct) /
            static_cast<double>(result.trials)
        : 0.0;
    return result;
}

} // namespace pktchase::fingerprint
