/**
 * @file
 * Synthetic website packet-size traces (Sec. V substitution).
 *
 * The paper fingerprints real sites fetched with Firefox, using only
 * the sequence of packet sizes in cache-block granularity. We cannot
 * fetch the real web offline, so each site is modelled as a stable
 * "signature" of response messages: bursts of MTU frames whose final
 * fragment can fall anywhere between 1 block and the MTU (the paper's
 * key observation: sizes congregate at both ends of the spectrum, and
 * the last packet of each large message is the discriminator), plus
 * interleaved small control packets. A visit replays the signature
 * with realistic noise: lost or retransmitted frames, reordered
 * control packets, and size jitter on dynamic content.
 *
 * This preserves exactly what the classifier consumes -- a noisy
 * per-visit (size-class, order) sequence with a stable per-site core.
 */

#ifndef PKTCHASE_FINGERPRINT_WEBSITE_HH
#define PKTCHASE_FINGERPRINT_WEBSITE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nic/frame.hh"
#include "sim/rng.hh"

namespace pktchase::fingerprint
{

/** Per-site trace generation parameters. */
struct WebsiteConfig
{
    unsigned tracePackets = 100;   ///< Fig. 13 uses the first 100.
    double lossProb = 0.02;        ///< Per-packet drop probability.
    double retransProb = 0.02;     ///< Per-packet duplicate probability.
    double controlJitterProb = 0.15; ///< Control packet size wiggle.
    double swapProb = 0.03;        ///< Adjacent reorder probability.
};

/**
 * A closed-world database of website signatures.
 */
class WebsiteDb
{
  public:
    /** Concurrent connections a visit's frames round-robin across
     *  (their flow ids are what the NIC's RSS hash spreads). */
    static constexpr std::uint32_t kConnectionsPerVisit = 6;

    /** First flow id of a visit's connection population. */
    static constexpr std::uint32_t kFlowBase = 0xF100;

    /**
     * @param names Site identifiers (the paper's closed world is
     *              facebook/twitter/google/amazon/apple).
     * @param seed  Seed deriving each site's stable signature.
     * @param cfg   Visit noise parameters.
     */
    WebsiteDb(std::vector<std::string> names, std::uint64_t seed,
              const WebsiteConfig &cfg = WebsiteConfig{});

    /** Number of sites. */
    std::size_t size() const { return signatures_.size(); }

    /** Site names, index-aligned with visit(). */
    const std::vector<std::string> &names() const { return names_; }

    /** The noise-free signature sizes of @p site (ground truth). */
    const std::vector<Addr> &signature(std::size_t site) const;

    /**
     * One noisy visit to @p site: the frames the victim's NIC would
     * receive, in order.
     */
    std::vector<nic::Frame> visit(std::size_t site, Rng &rng) const;

    /**
     * The paper's Fig. 13 companion pair: a successful login transfers
     * a session payload the failed login lacks. Returns a two-site db
     * ("login-success", "login-failure") sharing a common prefix.
     */
    static WebsiteDb loginPair(std::uint64_t seed);

  private:
    std::vector<std::string> names_;
    std::vector<std::vector<Addr>> signatures_;
    WebsiteConfig cfg_;

    static std::vector<Addr> makeSignature(std::uint64_t seed,
                                           unsigned packets);
};

/** Clamp a frame size to the 1..4+ block classes the spy can see. */
unsigned sizeClassOf(Addr frame_bytes);

} // namespace pktchase::fingerprint

#endif // PKTCHASE_FINGERPRINT_WEBSITE_HH
