#include "attack_eval.hh"

#include <cstdio>

#include "channel/capacity.hh"
#include "runtime/registry.hh"
#include "testbed/testbed.hh"

namespace pktchase::workload
{

namespace
{

/** The paper's five-site closed world (and its signature seed). */
fingerprint::WebsiteDb
fig20Db()
{
    return fingerprint::WebsiteDb(
        {"facebook.com", "twitter.com", "google.com", "amazon.com",
         "apple.com"},
        42);
}

/** "fig13/160kbps" (+ "+nic.queues:N" off the default queue count). */
std::string
fig13CellName(double bandwidth_bps, std::size_t queues)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "fig13/%.0fkbps",
                  bandwidth_bps / 1000.0);
    std::string name(buf);
    if (queues != nic::kDefaultQueues)
        name += "+" + defense::nicSpecOf(queues);
    return name;
}

} // namespace

std::vector<std::size_t>
attackQueueCounts()
{
    return {nic::kDefaultQueues, 4};
}

fingerprint::WebsiteDb
fig20Database()
{
    return fig20Db();
}

std::vector<defense::Cell>
fig20Cells()
{
    const defense::Cell bases[] = {
        {"ring.none", "cache.ddio"},         // vulnerable baseline
        {"ring.none", "cache.no-ddio"},      // the paper's 86.5% axis
        {"ring.partial:1000", "cache.ddio"}, // the paper's sweet spot
        {"ring.full", "cache.ddio"},         // costliest ring defense
        {"ring.none", "cache.adaptive"},     // cache-side defense
    };
    std::vector<defense::Cell> cells;
    for (std::size_t q : attackQueueCounts()) {
        for (const defense::Cell &base : bases) {
            defense::Cell cell = base;
            cell.nic = defense::nicSpecOf(q);
            cells.push_back(cell);
        }
    }
    return cells;
}

fingerprint::FingerprintConfig
fig20Config(std::uint64_t seed)
{
    fingerprint::FingerprintConfig cfg;
    cfg.trainVisits = 10;
    cfg.trials = 20;
    cfg.sequenceErrorRate = 0.01;
    cfg.seed = seed;
    return cfg;
}

fingerprint::FingerprintResult
fig20Cell(const defense::Cell &cell, std::uint64_t seed)
{
    // The attack testbed, not makeDefenseConfig(): the spy needs its
    // eviction-set pool and the real timing-noise model.
    testbed::TestbedConfig tcfg;
    tcfg.ringDefense = cell.ring;
    tcfg.cacheDefense = cell.cache;
    tcfg.nicSpec = cell.nic;
    testbed::Testbed tb(tcfg);
    const fingerprint::WebsiteDb db = fig20Db();
    fingerprint::FingerprintAttack atk(tb, db, fig20Config(seed));
    return atk.evaluate();
}

std::vector<runtime::Scenario>
fig11CovertGrid(std::size_t symbols)
{
    const std::size_t chunks = symbols >= 4 ? 4 : 1;
    std::vector<runtime::Scenario> grid;
    for (channel::Scheme scheme :
         {channel::Scheme::Binary, channel::Scheme::Ternary}) {
        for (double khz : {7.0, 14.0, 28.0}) {
            const char *enc =
                scheme == channel::Scheme::Binary ? "binary" : "ternary";
            char name[64];
            std::snprintf(name, sizeof(name), "fig11/%s/%.0fkhz", enc,
                          khz);
            runtime::Scenario sc;
            sc.name = name;
            sc.tasks = chunks;
            // Task t transmits LFSR stream positions
            // [t*per, t*per + count): the symbol stream is a pure
            // function of position, so chunked tasks cover exactly
            // the monolithic run's symbols.
            sc.runTask = [scheme, khz, symbols,
                          chunks](runtime::TaskContext &t) {
                const std::size_t per = symbols / chunks;
                const std::size_t offset = t.task * per;
                const std::size_t count = (t.task + 1 == chunks)
                    ? symbols - offset : per;
                testbed::Testbed tb(testbed::TestbedConfig{});
                channel::ChannelRunConfig cfg;
                cfg.scheme = scheme;
                cfg.probeRateHz = khz * 1000.0;
                cfg.nSymbols = count;
                cfg.symbolOffset = offset;
                // Background cache noise from unrelated processes:
                // what makes long probe intervals error-prone
                // (Sec. IV-b). The axis salt pins chunk t's noise and
                // jitter streams across every cell, so cells are
                // still compared under identical interference.
                cfg.cacheNoiseHz = 20000.0;
                cfg.cacheNoiseBatch = 48;
                cfg.seed = runtime::splitSeed(
                    runtime::splitSeed(t.campaignSeed,
                                       runtime::axisSalt(0x11)),
                    t.task);
                const channel::ChannelMeasurement m =
                    channel::runCovertChannel(tb, cfg);
                runtime::ScenarioResult r;
                r.set("sent", static_cast<double>(m.sent));
                r.set("received", static_cast<double>(m.received));
                r.set("edit_distance",
                      static_cast<double>(m.editDistance));
                // Per-chunk on-wire span with the same end-correction
                // the monolithic run applies (n symbols span n-1
                // inter-arrival gaps).
                double span = 0.0;
                if (m.elapsed > 0 && m.sent > 1) {
                    span = cyclesToSeconds(m.elapsed) *
                        static_cast<double>(m.sent) /
                        static_cast<double>(m.sent - 1);
                }
                r.set("span_seconds", span);
                r.set("probe_rounds",
                      static_cast<double>(m.probeRounds));
                return r;
            };
            sc.fold = [scheme](
                const std::vector<runtime::ScenarioResult> &parts) {
                double sent = 0, received = 0, edit = 0;
                double span = 0, rounds = 0;
                for (const runtime::ScenarioResult &p : parts) {
                    sent += p.value("sent");
                    received += p.value("received");
                    edit += p.value("edit_distance");
                    span += p.value("span_seconds");
                    rounds += p.value("probe_rounds");
                }
                runtime::ScenarioResult r;
                r.set("bandwidth_bps", span > 0.0
                    ? channel::bitsPerSymbol(scheme) * sent / span
                    : 0.0);
                r.set("error_rate", sent > 0.0 ? edit / sent : 0.0);
                r.set("received", received);
                r.set("probe_rounds", rounds);
                return r;
            };
            grid.push_back(std::move(sc));
        }
    }
    return grid;
}

std::vector<runtime::Scenario>
fig13ChannelGrid(std::size_t symbols)
{
    const std::size_t chunks = symbols >= 4 ? 4 : 1;
    std::vector<runtime::Scenario> grid;
    for (std::size_t queues : attackQueueCounts()) {
        for (double bps : {80000.0, 320000.0, 640000.0}) {
            const std::string nic_spec = defense::nicSpecOf(queues);
            runtime::Scenario sc;
            sc.name = fig13CellName(bps, queues);
            sc.tasks = chunks;
            sc.runTask = [bps, nic_spec, symbols,
                          chunks](runtime::TaskContext &t) {
                const std::size_t per = symbols / chunks;
                const std::size_t offset = t.task * per;
                const std::size_t count = (t.task + 1 == chunks)
                    ? symbols - offset : per;
                testbed::TestbedConfig tcfg;
                tcfg.nicSpec = nic_spec;
                testbed::Testbed tb(tcfg);
                channel::ChasingChannelConfig cfg;
                cfg.targetBandwidthBps = bps;
                cfg.nSymbols = count;
                cfg.symbolOffset = offset;
                cfg.seed = runtime::splitSeed(
                    runtime::splitSeed(t.campaignSeed,
                                       runtime::axisSalt(0x13)),
                    t.task);
                const channel::ChannelMeasurement m =
                    channel::runChasingChannel(tb, cfg);
                // Raw alignment counts, not rates: the fold
                // re-derives the paper's error accounting from the
                // summed counts, so chunking loses no precision.
                runtime::ScenarioResult r;
                r.set("sent", static_cast<double>(m.sent));
                r.set("received", static_cast<double>(m.received));
                r.set("matches",
                      static_cast<double>(m.editMatches));
                r.set("substitutions",
                      static_cast<double>(m.editSubstitutions));
                r.set("deletions",
                      static_cast<double>(m.editDeletions));
                r.set("probe_rounds",
                      static_cast<double>(m.probeRounds));
                return r;
            };
            sc.fold = [](
                const std::vector<runtime::ScenarioResult> &parts) {
                double sent = 0, received = 0, matches = 0;
                double subs = 0, dels = 0, rounds = 0;
                for (const runtime::ScenarioResult &p : parts) {
                    sent += p.value("sent");
                    received += p.value("received");
                    matches += p.value("matches");
                    subs += p.value("substitutions");
                    dels += p.value("deletions");
                    rounds += p.value("probe_rounds");
                }
                runtime::ScenarioResult r;
                const double synced = matches + subs;
                r.set("error_rate", synced > 0.0 ? subs / synced : 1.0);
                r.set("out_of_sync_rate",
                      sent > 0.0 ? dels / sent : 0.0);
                r.set("received", received);
                r.set("probe_rounds", rounds);
                return r;
            };
            grid.push_back(std::move(sc));
        }
    }
    return grid;
}

std::vector<runtime::Scenario>
fig20FingerprintGrid()
{
    std::vector<runtime::Scenario> grid;
    for (const defense::Cell &cell : fig20Cells()) {
        runtime::Scenario sc;
        sc.name = "fig20/" + cell.name();
        // One task per classification trial: the heaviest cells stop
        // bounding the campaign makespan, and a stolen task costs one
        // trial, not twenty.
        sc.tasks = fig20Config(0).trials;
        sc.runTask = [cell](runtime::TaskContext &t) {
            const std::uint64_t axis = runtime::splitSeed(
                t.campaignSeed, runtime::axisSalt(0x20));
            testbed::TestbedConfig tcfg;
            tcfg.ringDefense = cell.ring;
            tcfg.cacheDefense = cell.cache;
            tcfg.nicSpec = cell.nic;
            testbed::Testbed tb(tcfg);
            const fingerprint::WebsiteDb db = fig20Db();
            fingerprint::FingerprintAttack atk(tb, db,
                                               fig20Config(axis));
            // Training is pure template-building from ground truth
            // (no simulation), so repeating it per task is cheap, and
            // the axis-pinned stream gives every task -- and every
            // defense cell -- identical templates.
            Rng train_rng(axis);
            atk.train(train_rng);
            // The trial stream is split per task off the shared axis
            // (not off the cell seed), so every defense cell still
            // fingerprints the same page loads.
            Rng trial_rng(runtime::splitSeed(axis, t.task));
            const fingerprint::TrialOutcome o =
                atk.trial(t.task % db.size(), trial_rng);
            runtime::ScenarioResult r;
            r.set("site", static_cast<double>(o.site));
            r.set("predicted", static_cast<double>(o.predicted));
            r.set("probe_rounds", static_cast<double>(o.probeRounds));
            return r;
        };
        sc.fold = [](
            const std::vector<runtime::ScenarioResult> &parts) {
            double correct = 0, rounds = 0;
            for (const runtime::ScenarioResult &p : parts) {
                if (p.value("site") == p.value("predicted"))
                    correct += 1.0;
                rounds += p.value("probe_rounds");
            }
            runtime::ScenarioResult r;
            const double trials = static_cast<double>(parts.size());
            r.set("accuracy", trials > 0.0 ? correct / trials : 0.0);
            r.set("correct", correct);
            r.set("trials", trials);
            r.set("probe_rounds", rounds);
            return r;
        };
        grid.push_back(std::move(sc));
    }
    return grid;
}

void
registerAttackScenarios()
{
    auto &reg = runtime::ScenarioRegistry::instance();
    reg.add("fig11",
            "Covert-channel bandwidth/error per encoding and probe "
            "rate, under cache noise",
            [] { return fig11CovertGrid(300); });
    reg.add("fig13",
            "Packet-chasing channel error/capacity per target "
            "bandwidth and NIC queue count",
            [] { return fig13ChannelGrid(600); });
    reg.add("fig20",
            "Closed-world fingerprint accuracy per defense cell and "
            "NIC queue count",
            [] { return fig20FingerprintGrid(); });
}

} // namespace pktchase::workload
