#include "attack_eval.hh"

#include <cstdio>

#include "channel/capacity.hh"
#include "runtime/registry.hh"
#include "testbed/testbed.hh"

namespace pktchase::workload
{

namespace
{

/** The paper's five-site closed world (and its signature seed). */
fingerprint::WebsiteDb
fig20Db()
{
    return fingerprint::WebsiteDb(
        {"facebook.com", "twitter.com", "google.com", "amazon.com",
         "apple.com"},
        42);
}

/** "fig13/160kbps" (+ "+nic.queues:N" off the default queue count). */
std::string
fig13CellName(double bandwidth_bps, std::size_t queues)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "fig13/%.0fkbps",
                  bandwidth_bps / 1000.0);
    std::string name(buf);
    if (queues != nic::kDefaultQueues)
        name += "+" + defense::nicSpecOf(queues);
    return name;
}

} // namespace

std::vector<std::size_t>
attackQueueCounts()
{
    return {nic::kDefaultQueues, 4};
}

fingerprint::WebsiteDb
fig20Database()
{
    return fig20Db();
}

std::vector<defense::Cell>
fig20Cells()
{
    const defense::Cell bases[] = {
        {"ring.none", "cache.ddio"},         // vulnerable baseline
        {"ring.none", "cache.no-ddio"},      // the paper's 86.5% axis
        {"ring.partial:1000", "cache.ddio"}, // the paper's sweet spot
        {"ring.full", "cache.ddio"},         // costliest ring defense
        {"ring.none", "cache.adaptive"},     // cache-side defense
    };
    std::vector<defense::Cell> cells;
    for (std::size_t q : attackQueueCounts()) {
        for (const defense::Cell &base : bases) {
            defense::Cell cell = base;
            cell.nic = defense::nicSpecOf(q);
            cells.push_back(cell);
        }
    }
    return cells;
}

fingerprint::FingerprintConfig
fig20Config(std::uint64_t seed)
{
    fingerprint::FingerprintConfig cfg;
    cfg.trainVisits = 10;
    cfg.trials = 20;
    cfg.sequenceErrorRate = 0.01;
    cfg.seed = seed;
    return cfg;
}

fingerprint::FingerprintResult
fig20Cell(const defense::Cell &cell, std::uint64_t seed)
{
    // The attack testbed, not makeDefenseConfig(): the spy needs its
    // eviction-set pool and the real timing-noise model.
    testbed::TestbedConfig tcfg;
    tcfg.ringDefense = cell.ring;
    tcfg.cacheDefense = cell.cache;
    tcfg.nicSpec = cell.nic;
    testbed::Testbed tb(tcfg);
    const fingerprint::WebsiteDb db = fig20Db();
    fingerprint::FingerprintAttack atk(tb, db, fig20Config(seed));
    return atk.evaluate();
}

std::vector<runtime::Scenario>
fig11CovertGrid(std::size_t symbols)
{
    std::vector<runtime::Scenario> grid;
    for (channel::Scheme scheme :
         {channel::Scheme::Binary, channel::Scheme::Ternary}) {
        for (double khz : {7.0, 14.0, 28.0}) {
            const char *enc =
                scheme == channel::Scheme::Binary ? "binary" : "ternary";
            char name[64];
            std::snprintf(name, sizeof(name), "fig11/%s/%.0fkhz", enc,
                          khz);
            grid.push_back({name,
                [scheme, khz, symbols](runtime::ScenarioContext &ctx) {
                    testbed::Testbed tb(testbed::TestbedConfig{});
                    channel::ChannelRunConfig cfg;
                    cfg.scheme = scheme;
                    cfg.probeRateHz = khz * 1000.0;
                    cfg.nSymbols = symbols;
                    // Background cache noise from unrelated processes:
                    // what makes long probe intervals error-prone
                    // (Sec. IV-b). Every cell sees the same streams.
                    cfg.cacheNoiseHz = 20000.0;
                    cfg.cacheNoiseBatch = 48;
                    cfg.seed = runtime::splitSeed(
                        ctx.campaignSeed, runtime::axisSalt(0x11));
                    const channel::ChannelMeasurement m =
                        channel::runCovertChannel(tb, cfg);
                    runtime::ScenarioResult r;
                    r.set("bandwidth_bps", m.bandwidthBps);
                    r.set("error_rate", m.errorRate);
                    r.set("received", static_cast<double>(m.received));
                    r.set("probe_rounds",
                          static_cast<double>(m.probeRounds));
                    return r;
                }});
        }
    }
    return grid;
}

std::vector<runtime::Scenario>
fig13ChannelGrid(std::size_t symbols)
{
    std::vector<runtime::Scenario> grid;
    for (std::size_t queues : attackQueueCounts()) {
        for (double bps : {80000.0, 320000.0, 640000.0}) {
            const std::string nic_spec = defense::nicSpecOf(queues);
            grid.push_back({fig13CellName(bps, queues),
                [bps, nic_spec, symbols](runtime::ScenarioContext &ctx) {
                    testbed::TestbedConfig tcfg;
                    tcfg.nicSpec = nic_spec;
                    testbed::Testbed tb(tcfg);
                    channel::ChasingChannelConfig cfg;
                    cfg.targetBandwidthBps = bps;
                    cfg.nSymbols = symbols;
                    cfg.seed = runtime::splitSeed(
                        ctx.campaignSeed, runtime::axisSalt(0x13));
                    const channel::ChannelMeasurement m =
                        channel::runChasingChannel(tb, cfg);
                    runtime::ScenarioResult r;
                    r.set("error_rate", m.errorRate);
                    r.set("out_of_sync_rate", m.outOfSyncRate);
                    r.set("received", static_cast<double>(m.received));
                    r.set("probe_rounds",
                          static_cast<double>(m.probeRounds));
                    return r;
                }});
        }
    }
    return grid;
}

std::vector<runtime::Scenario>
fig20FingerprintGrid()
{
    std::vector<runtime::Scenario> grid;
    for (const defense::Cell &cell : fig20Cells()) {
        grid.push_back({"fig20/" + cell.name(),
            [cell](runtime::ScenarioContext &ctx) {
                // One shared visit/jitter stream: every defense cell
                // fingerprints the same page loads.
                const fingerprint::FingerprintResult res = fig20Cell(
                    cell, runtime::splitSeed(ctx.campaignSeed,
                                             runtime::axisSalt(0x20)));
                runtime::ScenarioResult r;
                r.set("accuracy", res.accuracy);
                r.set("correct", static_cast<double>(res.correct));
                r.set("trials", static_cast<double>(res.trials));
                r.set("probe_rounds",
                      static_cast<double>(res.probeRounds));
                return r;
            }});
    }
    return grid;
}

void
registerAttackScenarios()
{
    auto &reg = runtime::ScenarioRegistry::instance();
    reg.add("fig11",
            "Covert-channel bandwidth/error per encoding and probe "
            "rate, under cache noise",
            [] { return fig11CovertGrid(300); });
    reg.add("fig13",
            "Packet-chasing channel error/capacity per target "
            "bandwidth and NIC queue count",
            [] { return fig13ChannelGrid(600); });
    reg.add("fig20",
            "Closed-world fingerprint accuracy per defense cell and "
            "NIC queue count",
            [] { return fig20FingerprintGrid(); });
}

} // namespace pktchase::workload
