/**
 * @file
 * Detection-evaluation grids for the parallel campaign runtime.
 *
 * Two registered experiments:
 *
 *  - "figD1" -- detector quality. For every (detector, attacker probe
 *    rate, queue count) cell a reduced testbed runs twice under the
 *    same benign flow mix: once with the attacker (a footprint
 *    scanner priming every page-aligned combo at the probe rate plus
 *    a trojan-style single-flow flood) and once without. The per-
 *    epoch score streams of the two runs give the cell's ROC AUC and
 *    the alarm rates at the default threshold. Three extra cells per
 *    detector measure the benign false-positive rate on the full-size
 *    Nginx server workload (the deployment question: how often would
 *    the defense arm for nothing).
 *
 *  - "figD2" -- the gating win, end to end. The same defense cell
 *    triple {no defense, always-on ring.partial:1000, detector-gated
 *    ring.gated:cadence:partial.1000} is evaluated twice: benign
 *    open-loop latency (gated should match no-defense -- the gate
 *    never arms, so zero reallocations), and fingerprint accuracy
 *    under a live chasing attack (gated should match always-on --
 *    the cadence detector arms within the first capture).
 *
 * Every cell assembles a private Testbed and a private DetectionRig,
 * so the grids inherit the campaign determinism contract (threads=N
 * bit-identical to serial; tests/detect_stress_test.cc).
 */

#ifndef PKTCHASE_WORKLOAD_DETECT_EVAL_HH
#define PKTCHASE_WORKLOAD_DETECT_EVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "defense/registry.hh"
#include "detect/detector.hh"
#include "runtime/scenario.hh"

namespace pktchase::workload
{

/** The attacker probe rates (Hz) figD1 sweeps. */
std::vector<double> figD1ProbeRates();

/** The NIC queue counts figD1 sweeps. */
std::vector<std::size_t> figD1QueueCounts();

/**
 * Score epochs discarded from the head of every stream before
 * AUC/alarm-rate computation: detector windows are still filling and
 * emit structural zeros that would dilute both classes equally.
 */
constexpr std::uint64_t kDetectWarmupEpochs = 160;

/** One detection run's harvest. */
struct DetectionTrace
{
    std::vector<detect::Score> scores; ///< Full stream, warmup included.
    std::uint64_t samples = 0;         ///< Bus samples published.
};

/**
 * Run the figD1 attack scenario for one cell: benign mix + footprint
 * scan at @p probe_rate_hz + trojan flood, on a reduced @p queues-
 * queue testbed, with @p detector attached. Deterministic in
 * (detector, probe_rate_hz, queues, seed) -- the golden test pins one
 * cell of this function.
 */
DetectionTrace runDetectionAttack(const std::string &detector,
                                  double probe_rate_hz,
                                  std::size_t queues,
                                  std::uint64_t seed);

/** The matched benign twin: same mix and horizon, no attacker. */
DetectionTrace runDetectionBenign(const std::string &detector,
                                  std::size_t queues,
                                  std::uint64_t seed);

/** The figD2 defense cells: none, always-on, detector-gated. */
std::vector<defense::Cell> figD2Cells();

/** figD1 grid: (detector x probe rate x queues) ROC cells plus the
 *  per-detector benign-server false-positive cells. */
std::vector<runtime::Scenario> figD1DetectionGrid();

/**
 * figD2 grid: benign open-loop latency and under-attack fingerprint
 * accuracy for every figD2 cell.
 */
std::vector<runtime::Scenario> figD2GatingGrid(double rate,
                                               std::size_t requests);

/** Register "figD1" and "figD2" with the scenario registry. */
void registerDetectionScenarios();

} // namespace pktchase::workload

#endif // PKTCHASE_WORKLOAD_DETECT_EVAL_HH
