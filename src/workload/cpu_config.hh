/**
 * @file
 * Table II: the baseline processor configuration used for the defense
 * performance evaluation.
 *
 * The paper models this machine in gem5 full-system mode. Our request-
 * level server model does not simulate the out-of-order pipeline; the
 * structure is carried as configuration metadata (echoed by
 * bench_table2_baseline_config) and its memory-side parameters seed
 * the hierarchy latency model.
 */

#ifndef PKTCHASE_WORKLOAD_CPU_CONFIG_HH
#define PKTCHASE_WORKLOAD_CPU_CONFIG_HH

#include <cstdint>

namespace pktchase::workload
{

/** Table II, verbatim. */
struct BaselineCpuConfig
{
    double frequencyGHz = 3.3;
    unsigned fetchWidthFusedUops = 4;
    unsigned issueWidthUnfusedUops = 6;
    unsigned intRegfile = 160;
    unsigned fpRegfile = 144;
    unsigned rasEntries[3] = {8, 16, 32};
    unsigned lqEntries = 64;
    unsigned sqEntries = 36;
    unsigned icacheKB = 32;
    unsigned icacheWays = 8;
    unsigned dcacheKB = 32;
    unsigned dcacheWays = 8;
    unsigned robEntries = 168;
    unsigned iqEntries = 54;
    unsigned btbEntries = 256;
    unsigned intAlus = 6;
    unsigned intMults = 1;
};

} // namespace pktchase::workload

#endif // PKTCHASE_WORKLOAD_CPU_CONFIG_HH
