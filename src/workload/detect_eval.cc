#include "detect_eval.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "attack/footprint.hh"
#include "fingerprint/attack.hh"
#include "net/traffic.hh"
#include "runtime/registry.hh"
#include "testbed/testbed.hh"
#include "workload/attack_eval.hh"
#include "workload/defense_eval.hh"
#include "workload/server.hh"

namespace pktchase::workload
{

namespace
{

/** Simulated horizon of one figD1 detection run. */
constexpr Cycles kDetectHorizon = secondsToCycles(0.04);

/**
 * Telemetry epoch width of every figD1 run. Single-sourced here
 * because the grid's epoch arithmetic (warmup spans, the onset
 * epoch) must use the same width the rigs sample at.
 */
constexpr Cycles kDetectEpochCycles = sim::kDefaultEpochCycles;

/**
 * When the attacker switches on. The first half of the run is benign
 * on both twins (and covers the detectors' calibration spans); AUC
 * and TPR are computed over post-onset epochs, so they measure
 * detection of a live attack, not of the onset transient alone.
 */
constexpr Cycles kAttackOnset = kDetectHorizon / 2;

/** The trojan-style flood every figD1 attack run carries: one flow
 *  of small frames at a covert-channel sender's rate, so its queue
 *  dominates the cross-queue recycle distribution. */
constexpr Addr kTrojanBytes = 256;
constexpr double kTrojanPps = 280000.0;
constexpr std::uint32_t kTrojanFlow = 7777;

/**
 * The benign flow mix shared by the attack run and its benign twin:
 * several steady connections plus a many-flow Poisson background, all
 * unbounded so the mix outlives the horizon.
 */
std::unique_ptr<net::FlowMix>
benignMix(std::uint64_t seed)
{
    auto mix = std::make_unique<net::FlowMix>();
    for (std::uint32_t f = 0; f < 6; ++f) {
        mix->add(std::make_unique<net::ConstantStream>(
            768, 20000.0, 0, nic::Protocol::Udp, 101 + 17 * f));
    }
    mix->add(std::make_unique<net::PoissonBackground>(
        60000.0, Rng(seed), 0, 64));
    return mix;
}

/** Reduced multi-queue testbed for the figD1 runs. */
testbed::TestbedConfig
detectionTestbedConfig(std::size_t queues)
{
    testbed::TestbedConfig cfg = testbed::TestbedConfig::reduced();
    cfg.nicSpec = defense::nicSpecOf(queues);
    return cfg;
}

/** Score values of a trace from epoch @p from_epoch on. */
std::vector<double>
scoreValues(const DetectionTrace &t, std::uint64_t from_epoch)
{
    std::vector<double> out;
    for (const detect::Score &s : t.scores)
        if (s.epoch >= from_epoch)
            out.push_back(s.score);
    return out;
}

/** Alarm fraction of a trace from epoch @p from_epoch on. */
double
alarmRate(const DetectionTrace &t, std::uint64_t from_epoch)
{
    std::uint64_t n = 0, alarms = 0;
    for (const detect::Score &s : t.scores) {
        if (s.epoch < from_epoch)
            continue;
        ++n;
        if (s.alarm)
            ++alarms;
    }
    return n > 0 ? static_cast<double>(alarms) /
        static_cast<double>(n) : 0.0;
}

/**
 * Pack a detection trace into a task partial: the per-epoch score
 * trace as series (never serialized into reports), so the cell's fold
 * can recompute AUC/TPR/FPR from the exact doubles the monolithic
 * twin-run arithmetic would have seen.
 */
runtime::ScenarioResult
traceToPartial(const DetectionTrace &t)
{
    std::vector<double> epoch, score, alarm;
    epoch.reserve(t.scores.size());
    score.reserve(t.scores.size());
    alarm.reserve(t.scores.size());
    for (const detect::Score &s : t.scores) {
        epoch.push_back(static_cast<double>(s.epoch));
        score.push_back(s.score);
        alarm.push_back(s.alarm ? 1.0 : 0.0);
    }
    runtime::ScenarioResult r;
    r.setSeries("epoch", std::move(epoch));
    r.setSeries("score", std::move(score));
    r.setSeries("alarm", std::move(alarm));
    return r;
}

/** scoreValues() over a task partial's series. */
std::vector<double>
seriesScores(const runtime::ScenarioResult &p, double from_epoch)
{
    const std::vector<double> &epoch = p.seriesOf("epoch");
    const std::vector<double> &score = p.seriesOf("score");
    std::vector<double> out;
    for (std::size_t i = 0; i < epoch.size(); ++i)
        if (epoch[i] >= from_epoch)
            out.push_back(score[i]);
    return out;
}

/** alarmRate() over a task partial's series. */
double
seriesAlarmRate(const runtime::ScenarioResult &p, double from_epoch)
{
    const std::vector<double> &epoch = p.seriesOf("epoch");
    const std::vector<double> &alarm = p.seriesOf("alarm");
    std::uint64_t n = 0, alarms = 0;
    for (std::size_t i = 0; i < epoch.size(); ++i) {
        if (epoch[i] < from_epoch)
            continue;
        ++n;
        if (alarm[i] != 0.0)
            ++alarms;
    }
    return n > 0 ? static_cast<double>(alarms) /
        static_cast<double>(n) : 0.0;
}

/** "figD1/cadence/8khz" (+ "+nic.queues:N" off the default). */
std::string
figD1CellName(const std::string &detector, double rate_hz,
              std::size_t queues)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0fkhz", rate_hz / 1000.0);
    std::string name = "figD1/" + detector + "/" + buf;
    if (queues != nic::kDefaultQueues)
        name += "+" + defense::nicSpecOf(queues);
    return name;
}

/** Arm/cost metrics shared by every figD2 cell. */
void
fillGateMetrics(runtime::ScenarioResult &r, testbed::Testbed &tb)
{
    const nic::IgbStats stats = tb.driver().stats();
    r.set("buffers_reallocated",
          static_cast<double>(stats.buffersReallocated));
    r.set("ring_randomizations",
          static_cast<double>(stats.ringRandomizations));
    const detect::DetectionRig *rig = tb.detection();
    const detect::GateController *gate = rig ? rig->gate() : nullptr;
    r.set("arm_transitions", gate
        ? static_cast<double>(gate->armTransitions()) : 0.0);
    r.set("armed_epochs", gate
        ? static_cast<double>(gate->armedEpochs()) : 0.0);
}

} // namespace

std::vector<double>
figD1ProbeRates()
{
    return {4000.0, 8000.0, 16000.0};
}

std::vector<std::size_t>
figD1QueueCounts()
{
    return {nic::kDefaultQueues, 4};
}

DetectionTrace
runDetectionAttack(const std::string &detector, double probe_rate_hz,
                   std::size_t queues, std::uint64_t seed)
{
    testbed::Testbed tb(detectionTestbedConfig(queues));
    detect::RigConfig rig_cfg;
    rig_cfg.epochCycles = kDetectEpochCycles;
    rig_cfg.detectors = {detector};
    detect::DetectionRig &rig = tb.attachDetection(rig_cfg);

    net::TrafficPump pump(tb.eq(), tb.driver(), benignMix(seed), 1000);

    // The attacker switches on at the onset: the trojan flood starts
    // pumping and the footprint scan begins priming every combo.
    auto trojan = std::make_unique<net::FlowMix>();
    trojan->add(std::make_unique<net::ConstantStream>(
        kTrojanBytes, kTrojanPps, 0, nic::Protocol::Udp, kTrojanFlow));
    net::TrafficPump trojan_pump(tb.eq(), tb.driver(),
                                 std::move(trojan), kAttackOnset);

    std::vector<std::size_t> all;
    for (std::size_t c = 0; c < tb.groups().groups.size(); ++c)
        all.push_back(c);
    attack::FootprintConfig fcfg;
    fcfg.probeRateHz = probe_rate_hz;
    fcfg.probe.ways = tb.config().llc.geom.ways;
    attack::FootprintScanner scanner(tb.hier(), tb.groups(), all, fcfg);
    tb.eq().runUntil(kAttackOnset);
    scanner.scan(tb.eq(), kDetectHorizon);

    DetectionTrace t;
    t.scores = rig.detector(detector).scores();
    t.samples = rig.bus().published();
    return t;
}

DetectionTrace
runDetectionBenign(const std::string &detector, std::size_t queues,
                   std::uint64_t seed)
{
    testbed::Testbed tb(detectionTestbedConfig(queues));
    detect::RigConfig rig_cfg;
    rig_cfg.epochCycles = kDetectEpochCycles;
    rig_cfg.detectors = {detector};
    detect::DetectionRig &rig = tb.attachDetection(rig_cfg);

    net::TrafficPump pump(tb.eq(), tb.driver(), benignMix(seed), 1000);
    tb.eq().runUntil(kDetectHorizon);

    DetectionTrace t;
    t.scores = rig.detector(detector).scores();
    t.samples = rig.bus().published();
    return t;
}

std::vector<defense::Cell>
figD2Cells()
{
    return {
        {"ring.none", "cache.ddio"},           // free and vulnerable
        {"ring.partial:1000", "cache.ddio"},   // always-on defense
        {"ring.gated:cadence:partial.1000", "cache.ddio"},
    };
}

std::vector<runtime::Scenario>
figD1DetectionGrid()
{
    std::vector<runtime::Scenario> grid;
    for (const std::string &det : detect::detectorNames()) {
        for (double rate : figD1ProbeRates()) {
            for (std::size_t q : figD1QueueCounts()) {
                // The matched twins are two independent simulations
                // that only meet in the final ROC arithmetic -- a
                // natural K=2 decomposition. Task 0 runs the attack
                // twin, task 1 the benign twin; both draw the same
                // axis-pinned traffic seed the monolithic cell used,
                // so the folded metrics are the exact doubles the
                // twin-in-sequence run produced.
                runtime::Scenario sc;
                sc.name = figD1CellName(det, rate, q);
                sc.tasks = 2;
                sc.runTask = [det, rate, q](runtime::TaskContext &t) {
                    // All cells share one traffic stream, so
                    // detectors and rates are compared under
                    // identical load.
                    const std::uint64_t seed = runtime::splitSeed(
                        t.campaignSeed, runtime::axisSalt(0xD1));
                    return traceToPartial(t.task == 0
                        ? runDetectionAttack(det, rate, q, seed)
                        : runDetectionBenign(det, q, seed));
                };
                sc.fold = [](
                    const std::vector<runtime::ScenarioResult> &parts) {
                    const runtime::ScenarioResult &atk = parts[0];
                    const runtime::ScenarioResult &ben = parts[1];
                    // Positives: attack-run epochs after the onset
                    // (plus a short-window settle). Negatives: the
                    // benign twin past warmup.
                    const double onset_epoch = static_cast<double>(
                        kAttackOnset / kDetectEpochCycles + 8);
                    const double warmup =
                        static_cast<double>(kDetectWarmupEpochs);
                    const auto pos = seriesScores(atk, onset_epoch);
                    const auto neg = seriesScores(ben, warmup);
                    runtime::ScenarioResult r;
                    r.set("auc", detect::aucScore(pos, neg));
                    r.set("tpr", seriesAlarmRate(atk, onset_epoch));
                    r.set("fpr", seriesAlarmRate(ben, warmup));
                    r.set("attack_epochs",
                          static_cast<double>(pos.size()));
                    r.set("benign_epochs",
                          static_cast<double>(neg.size()));
                    return r;
                };
                grid.push_back(std::move(sc));
            }
        }
    }

    // Deployment-side false positives: the full-size server workload
    // with a detector attached and no attacker anywhere.
    for (const std::string &det : detect::detectorNames()) {
        grid.push_back({"figD1/" + det + "/server-fpr",
            [det](runtime::ScenarioContext &ctx) {
                testbed::Testbed tb(makeDefenseConfig(
                    "cache.ddio", cache::Geometry::xeonE52660()));
                detect::RigConfig rig_cfg;
                rig_cfg.epochCycles = kDetectEpochCycles;
                rig_cfg.detectors = {det};
                detect::DetectionRig &rig =
                    tb.attachDetection(rig_cfg);

                ServerConfig scfg;
                scfg.seed = runtime::splitSeed(
                    ctx.campaignSeed, runtime::axisSalt(0xD5));
                ServerWorkload server(tb, scfg);
                server.openLoop(100000.0, 6000);

                DetectionTrace t;
                t.scores = rig.detector(det).scores();
                t.samples = rig.bus().published();
                runtime::ScenarioResult r;
                r.set("fpr", alarmRate(t, kDetectWarmupEpochs));
                const auto vals = scoreValues(t, kDetectWarmupEpochs);
                double peak = 0.0;
                for (double v : vals)
                    peak = std::max(peak, v);
                r.set("score_peak", peak);
                r.set("epochs", static_cast<double>(vals.size()));
                return r;
            }});
    }
    return grid;
}

std::vector<runtime::Scenario>
figD2GatingGrid(double rate, std::size_t requests)
{
    std::vector<runtime::Scenario> grid;

    for (const defense::Cell &cell : figD2Cells()) {
        grid.push_back({"figD2/benign/" + cell.name(),
            [cell, rate, requests](runtime::ScenarioContext &ctx) {
                testbed::Testbed tb(makeDefenseConfig(
                    cell.cache, cache::Geometry::xeonE52660(),
                    cell.ring, cell.nic));
                ServerConfig scfg;
                // Every cell sees the same arrival process.
                scfg.seed = runtime::splitSeed(
                    ctx.campaignSeed, runtime::axisSalt(0xD2));
                ServerWorkload server(tb, scfg);
                const LatencyResult lat =
                    server.openLoop(rate, requests);
                runtime::ScenarioResult r;
                r.set("p50", lat.percentile(50));
                r.set("p90", lat.percentile(90));
                r.set("p99", lat.percentile(99));
                r.set("p99_9", lat.percentile(99.9));
                r.set("p99_99", lat.percentile(99.99));
                r.set("kreq_per_sec",
                      lat.metrics.kiloRequestsPerSec);
                fillGateMetrics(r, tb);
                return r;
            }});
    }

    for (const defense::Cell &cell : figD2Cells()) {
        grid.push_back({"figD2/attack/" + cell.name(),
            [cell](runtime::ScenarioContext &ctx) {
                // The attack testbed, as in fig20: the spy needs its
                // eviction-set pool and the real timing-noise model.
                testbed::TestbedConfig tcfg;
                tcfg.ringDefense = cell.ring;
                tcfg.cacheDefense = cell.cache;
                tcfg.nicSpec = cell.nic;
                testbed::Testbed tb(tcfg);
                const fingerprint::WebsiteDb db = fig20Database();
                fingerprint::FingerprintAttack atk(
                    tb, db, fig20Config(runtime::splitSeed(
                        ctx.campaignSeed, runtime::axisSalt(0xD3))));
                const fingerprint::FingerprintResult res =
                    atk.evaluate();
                runtime::ScenarioResult r;
                r.set("accuracy", res.accuracy);
                r.set("correct", static_cast<double>(res.correct));
                r.set("trials", static_cast<double>(res.trials));
                r.set("probe_rounds",
                      static_cast<double>(res.probeRounds));
                fillGateMetrics(r, tb);
                return r;
            }});
    }
    return grid;
}

void
registerDetectionScenarios()
{
    auto &reg = runtime::ScenarioRegistry::instance();
    reg.add("figD1",
            "Detector ROC/AUC per attacker probe rate and queue "
            "count, plus benign-server false-positive rates",
            [] { return figD1DetectionGrid(); });
    reg.add("figD2",
            "Gated vs. always-on defense: benign latency cost and "
            "under-attack fingerprint accuracy",
            [] { return figD2GatingGrid(100000.0, 8000); });
}

} // namespace pktchase::workload
