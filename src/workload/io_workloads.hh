/**
 * @file
 * The non-server I/O workloads of Fig. 15: a dd-style file copy and a
 * constant TCP receive loop with tiny payloads.
 */

#ifndef PKTCHASE_WORKLOAD_IO_WORKLOADS_HH
#define PKTCHASE_WORKLOAD_IO_WORKLOADS_HH

#include <cstdint>

#include "testbed/testbed.hh"

namespace pktchase::workload
{

/** Traffic/miss metrics of one I/O workload run. */
struct IoMetrics
{
    std::uint64_t memReadBlocks = 0;
    std::uint64_t memWriteBlocks = 0;
    double llcMissRate = 0.0;
    Cycles elapsed = 0;
};

/**
 * dd-style file copy: the disk DMA-writes source pages (through DDIO
 * when enabled -- DDIO covers all PCIe DMA, not just the NIC), the CPU
 * reads them and writes a destination buffer.
 *
 * @param bytes Total copy size (the paper uses a 100 MB file).
 */
IoMetrics runFileCopy(testbed::Testbed &tb, Addr bytes);

/**
 * TCP receive loop: @p packets frames of 64 B (8-byte payloads, per
 * Sec. VII) through the driver, consumed by a reader that copies each
 * payload out of the socket buffer.
 */
IoMetrics runTcpRecv(testbed::Testbed &tb, std::uint64_t packets);

} // namespace pktchase::workload

#endif // PKTCHASE_WORKLOAD_IO_WORKLOADS_HH
