#include "server.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace pktchase::workload
{

double
LatencyResult::percentile(double p) const
{
    return pktchase::percentile(latenciesMs, p);
}

ServerWorkload::ServerWorkload(testbed::Testbed &tb,
                               const ServerConfig &cfg)
    : tb_(tb), cfg_(cfg), rng_(cfg.seed),
      appSpace_(tb.phys(), mem::Owner::Victim)
{
    hotBase_ = appSpace_.mmap(cfg_.hotPages);
    respBase_ = appSpace_.mmap(respPages_);
}

ServerWorkload::Snapshot
ServerWorkload::snap() const
{
    const cache::LlcStats &s = tb_.hier().llc().stats();
    return Snapshot{
        s.cpuReads + s.cpuWrites,
        s.cpuReadMisses + s.cpuWriteMisses,
        tb_.hier().memReadBlocks(),
        tb_.hier().memWriteBlocks(),
    };
}

Cycles
ServerWorkload::serveOne(Cycles now)
{
    const std::uint64_t reallocs_before =
        tb_.driver().stats().buffersReallocated;
    const std::uint64_t swaps_before =
        tb_.driver().stats().pageSwaps;

    // Inbound request through the NIC receive path. The driver's own
    // loads are untimed inside the model, so charge them here from the
    // stats delta: this is where DDIO pays off (header and payload
    // already in the LLC) and where the non-DDIO path stalls on DRAM.
    const cache::LlcStats &llc = tb_.hier().llc().stats();
    const std::uint64_t drv_reads0 = llc.cpuReads + llc.cpuWrites;
    const std::uint64_t drv_miss0 =
        llc.cpuReadMisses + llc.cpuWriteMisses;
    nic::Frame req;
    req.bytes = cfg_.requestFrameBytes;
    req.protocol = nic::Protocol::Tcp;
    req.flow = nextFlow_++;
    tb_.driver().receive(req, now);
    const std::uint64_t drv_accesses =
        llc.cpuReads + llc.cpuWrites - drv_reads0;
    const std::uint64_t drv_misses =
        llc.cpuReadMisses + llc.cpuWriteMisses - drv_miss0;

    Cycles t = now;
    t += (drv_accesses - drv_misses) *
        tb_.hier().config().llcHitLatency;
    t += drv_misses * tb_.hier().config().dramLatency;

    // Application phase: object-store lookups (Zipf-hot) ...
    for (unsigned i = 0; i < cfg_.readsPerRequest; ++i) {
        const Addr page = rng_.nextZipf(cfg_.hotPages,
                                        cfg_.zipfExponent);
        const Addr block = rng_.nextBounded(blocksPerPage);
        const Addr vaddr =
            hotBase_ + page * pageBytes + block * blockBytes;
        t += tb_.hier().timedRead(appSpace_.translate(vaddr), t);
    }
    // ... and response construction into a rotating buffer pool.
    for (unsigned i = 0; i < cfg_.writesPerRequest; ++i) {
        const Addr vaddr = respBase_ + respCursor_ * pageBytes +
            (i % blocksPerPage) * blockBytes;
        const bool hit =
            tb_.hier().cpuWrite(appSpace_.translate(vaddr), t);
        t += hit ? tb_.hier().config().llcHitLatency
                 : tb_.hier().config().dramLatency;
    }
    respCursor_ = (respCursor_ + 1) % respPages_;

    // Software ring defenses pay the buffer reallocation path; pool
    // rotations (quarantine) are charged their cheaper swap cost.
    const std::uint64_t reallocs =
        tb_.driver().stats().buffersReallocated - reallocs_before;
    const std::uint64_t swaps =
        tb_.driver().stats().pageSwaps - swaps_before;
    t += reallocs * cfg_.reallocPenaltyCycles;
    t += swaps * cfg_.swapPenaltyCycles;

    t += cfg_.baseCyclesPerRequest;
    return t - now;
}

ServerMetrics
ServerWorkload::metricsSince(const Snapshot &s0, Cycles cycles,
                             std::size_t requests) const
{
    const Snapshot s1 = snap();
    ServerMetrics m;
    m.requests = requests;
    const double secs = cyclesToSeconds(cycles);
    m.kiloRequestsPerSec = secs > 0.0
        ? static_cast<double>(requests) / secs / 1000.0 : 0.0;
    const std::uint64_t accesses = s1.cpuAccesses - s0.cpuAccesses;
    m.llcMissRate = accesses > 0
        ? static_cast<double>(s1.cpuMisses - s0.cpuMisses) /
            static_cast<double>(accesses)
        : 0.0;
    m.memReadBlocks = s1.memReads - s0.memReads;
    m.memWriteBlocks = s1.memWrites - s0.memWrites;
    return m;
}

ServerMetrics
ServerWorkload::closedLoop(std::size_t n)
{
    // Short warmup fills the object store's cache footprint.
    Cycles t = tb_.eq().now();
    for (std::size_t i = 0; i < std::min<std::size_t>(n / 10, 500); ++i)
        t += serveOne(t);

    const Snapshot s0 = snap();
    const Cycles start = t;
    for (std::size_t i = 0; i < n; ++i)
        t += serveOne(t);
    return metricsSince(s0, t - start, n);
}

LatencyResult
ServerWorkload::openLoop(double rate, std::size_t n, std::size_t warmup)
{
    if (rate <= 0.0)
        fatal("ServerWorkload::openLoop needs a positive rate");

    LatencyResult result;
    Rng arrivals(cfg_.seed ^ 0x0A11u);
    Cycles arrival = tb_.eq().now();
    Cycles server_free = arrival;
    const Snapshot s0 = snap();
    const Cycles start = arrival;
    Cycles end = arrival;

    for (std::size_t i = 0; i < n; ++i) {
        arrival += secondsToCycles(arrivals.nextExponential(rate));
        const Cycles begin = std::max(arrival, server_free);
        const Cycles service = serveOne(begin);
        server_free = begin + service;
        end = server_free;
        if (i >= warmup) {
            const double ms =
                cyclesToSeconds(server_free - arrival) * 1e3;
            result.latenciesMs.push_back(ms);
        }
    }
    result.metrics = metricsSince(s0, end - start, n);
    return result;
}

} // namespace pktchase::workload
