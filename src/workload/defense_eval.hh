/**
 * @file
 * Defense-evaluation harness: assembles testbeds in each of the
 * paper's configurations (No-DDIO / DDIO / adaptive partitioning;
 * vulnerable / randomized rings) and runs the Sec. VII workloads.
 */

#ifndef PKTCHASE_WORKLOAD_DEFENSE_EVAL_HH
#define PKTCHASE_WORKLOAD_DEFENSE_EVAL_HH

#include <cstdint>

#include "nic/igb_driver.hh"
#include "workload/io_workloads.hh"
#include "workload/server.hh"

namespace pktchase::workload
{

/** Cache-side configuration axis of Figs. 14-16. */
enum class CacheMode : std::uint8_t
{
    NoDdio,            ///< DMA to memory, demand fetch on access.
    Ddio,              ///< Vulnerable baseline.
    AdaptivePartition, ///< DDIO + the Sec. VII defense.
};

/** Human-readable mode name. */
const char *cacheModeName(CacheMode mode);

/**
 * Build a full-size testbed configuration for @p mode with geometry
 * @p geom and the given software ring defense.
 */
testbed::TestbedConfig
makeDefenseConfig(CacheMode mode, const cache::Geometry &geom,
                  nic::RingDefense defense = nic::RingDefense::None,
                  std::uint64_t randomize_interval = 1000);

/** Fig. 14: peak Nginx throughput for one (mode, geometry) cell. */
ServerMetrics nginxThroughput(CacheMode mode,
                              const cache::Geometry &geom,
                              std::size_t requests,
                              const ServerConfig &scfg = ServerConfig{});

/** Fig. 15 rows: one I/O workload under one mode. */
IoMetrics fileCopyMetrics(CacheMode mode, Addr bytes);
IoMetrics tcpRecvMetrics(CacheMode mode, std::uint64_t packets);
ServerMetrics nginxMetrics(CacheMode mode, std::size_t requests);

/** Fig. 16: open-loop latency under one defense configuration. */
LatencyResult
nginxLatency(CacheMode mode, nic::RingDefense defense,
             std::uint64_t randomize_interval, double rate,
             std::size_t requests,
             const ServerConfig &scfg = ServerConfig{});

} // namespace pktchase::workload

#endif // PKTCHASE_WORKLOAD_DEFENSE_EVAL_HH
