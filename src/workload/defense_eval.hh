/**
 * @file
 * Defense-evaluation harness: assembles testbeds for named defense
 * cells (defense::Cell = ring spec x cache spec, resolved through
 * defense::Registry) and runs the Sec. VII workloads.
 *
 * The grids are data-driven: each figure is a list of spec strings
 * crossed into scenario cells, so adding a defense point to an
 * experiment is one list entry, not a new struct and a new switch arm.
 * Scenario cell names embed the canonical cell spec as their final
 * path segment ("fig16/ring.partial:1000+cache.ddio"), so a result's
 * name round-trips through defense::parseCell().
 */

#ifndef PKTCHASE_WORKLOAD_DEFENSE_EVAL_HH
#define PKTCHASE_WORKLOAD_DEFENSE_EVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "defense/registry.hh"
#include "runtime/scenario.hh"
#include "workload/io_workloads.hh"
#include "workload/server.hh"

namespace pktchase::workload
{

/**
 * Build a full-size testbed configuration with geometry @p geom and
 * the given defense specs (defense::Registry names).
 */
testbed::TestbedConfig
makeDefenseConfig(const std::string &cache_spec,
                  const cache::Geometry &geom,
                  const std::string &ring_spec = "ring.none",
                  const std::string &nic_spec = "");

/** Fig. 14: peak Nginx throughput for one (cache spec, geometry) cell. */
ServerMetrics nginxThroughput(const std::string &cache_spec,
                              const cache::Geometry &geom,
                              std::size_t requests,
                              const ServerConfig &scfg = ServerConfig{});

/** Fig. 15 rows: one I/O workload under one cache spec. */
IoMetrics fileCopyMetrics(const std::string &cache_spec, Addr bytes);
IoMetrics tcpRecvMetrics(const std::string &cache_spec,
                         std::uint64_t packets);
ServerMetrics nginxMetrics(const std::string &cache_spec,
                           std::size_t requests);

/** Fig. 16: open-loop latency under one defense cell. */
LatencyResult
nginxLatency(const defense::Cell &cell, double rate,
             std::size_t requests,
             const ServerConfig &scfg = ServerConfig{});

// ------------------------------------------------------------------
// Scenario grids for the parallel campaign runtime. Each cell owns a
// private Testbed; its workload seed is split off the campaign seed so
// that cells which must be compared under identical load (e.g. DDIO
// vs. adaptive at the same LLC size in Fig. 14) share a stream while
// everything else stays independent.
// ------------------------------------------------------------------

/** The five defense cells of the paper's Fig. 16. */
std::vector<defense::Cell> fig16Cells();

/**
 * Extended defense cells beyond the paper: the intra-page offset and
 * quarantine ring policies and the way-restricted DDIO cache policy,
 * alone and crossed.
 */
std::vector<defense::Cell> extendedCells();

/**
 * Generic open-loop latency grid over @p cells, named
 * "<prefix>/<cell name>". Metrics per cell: p50/p90/p99/p99_9/p99_99
 * (ms) plus the server metrics. All cells share one workload seed --
 * defenses are compared under the same arrival process.
 */
std::vector<runtime::Scenario>
latencyGrid(const std::vector<defense::Cell> &cells, double rate,
            std::size_t requests, const std::string &prefix);

/**
 * Fig. 14 grid: {20, 11, 8} MB LLC x {DDIO, adaptive partitioning}.
 * Metrics per cell: kreq_per_sec, llc_miss_rate. Cells at the same
 * LLC size share a workload seed so the reported loss is noise-free.
 */
std::vector<runtime::Scenario> fig14ThroughputGrid(std::size_t requests);

/**
 * Fig. 15 grid: {file copy, TCP recv, Nginx} x {No-DDIO, DDIO,
 * adaptive}. Metrics per cell: mem_read_blocks, mem_write_blocks,
 * llc_miss_rate.
 */
std::vector<runtime::Scenario>
fig15TrafficGrid(Addr copy_bytes = Addr(32) << 20,
                 std::uint64_t packets = 40000,
                 std::size_t requests = 2000);

/** Fig. 16 grid: latencyGrid over fig16Cells(), prefix "fig16". */
std::vector<runtime::Scenario> fig16LatencyGrid(double rate,
                                                std::size_t requests);

/** Extended grid: latencyGrid over extendedCells(), prefix "fig16x". */
std::vector<runtime::Scenario> extendedLatencyGrid(double rate,
                                                   std::size_t requests);

/** The queue counts the multi-queue grids sweep. */
std::vector<std::size_t> queueSweepCounts();

/**
 * Multi-queue defense cells: the paper's most interesting ring
 * defenses crossed with every queueSweepCounts() entry (the
 * single-queue cells reproduce the paper's numbers; the others ask
 * what the defense costs once frames are steered across rings).
 */
std::vector<defense::Cell> fig16qCells();

/**
 * fig16q grid: open-loop latency over fig16qCells(). All cells share
 * one workload seed, so queue counts and defenses are compared under
 * the same arrival process.
 */
std::vector<runtime::Scenario> fig16qLatencyGrid(double rate,
                                                 std::size_t requests);

/**
 * fig7q grid: the Fig. 7 receive-footprint scan per queue count. Each
 * cell pumps an RSS-spread multi-flow mix through a reduced testbed,
 * scans every page-aligned combo, and reports how much of the
 * (now multi-ring) buffer footprint the spy recovers: active combos,
 * recovered candidates, recall, and the per-queue candidate counts.
 */
std::vector<runtime::Scenario> fig7qFootprintGrid(std::uint64_t frames);

/**
 * Register the defense grids ("fig14", "fig15", "fig16", "fig16x",
 * "fig16q", "fig7q") with the scenario registry so campaign
 * front-ends can run them by name.
 */
void registerDefenseScenarios();

} // namespace pktchase::workload

#endif // PKTCHASE_WORKLOAD_DEFENSE_EVAL_HH
