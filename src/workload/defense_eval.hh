/**
 * @file
 * Defense-evaluation harness: assembles testbeds in each of the
 * paper's configurations (No-DDIO / DDIO / adaptive partitioning;
 * vulnerable / randomized rings) and runs the Sec. VII workloads.
 */

#ifndef PKTCHASE_WORKLOAD_DEFENSE_EVAL_HH
#define PKTCHASE_WORKLOAD_DEFENSE_EVAL_HH

#include <cstdint>
#include <vector>

#include "nic/igb_driver.hh"
#include "runtime/scenario.hh"
#include "workload/io_workloads.hh"
#include "workload/server.hh"

namespace pktchase::workload
{

/** Cache-side configuration axis of Figs. 14-16. */
enum class CacheMode : std::uint8_t
{
    NoDdio,            ///< DMA to memory, demand fetch on access.
    Ddio,              ///< Vulnerable baseline.
    AdaptivePartition, ///< DDIO + the Sec. VII defense.
};

/** Human-readable mode name. */
const char *cacheModeName(CacheMode mode);

/**
 * Build a full-size testbed configuration for @p mode with geometry
 * @p geom and the given software ring defense.
 */
testbed::TestbedConfig
makeDefenseConfig(CacheMode mode, const cache::Geometry &geom,
                  nic::RingDefense defense = nic::RingDefense::None,
                  std::uint64_t randomize_interval = 1000);

/** Fig. 14: peak Nginx throughput for one (mode, geometry) cell. */
ServerMetrics nginxThroughput(CacheMode mode,
                              const cache::Geometry &geom,
                              std::size_t requests,
                              const ServerConfig &scfg = ServerConfig{});

/** Fig. 15 rows: one I/O workload under one mode. */
IoMetrics fileCopyMetrics(CacheMode mode, Addr bytes);
IoMetrics tcpRecvMetrics(CacheMode mode, std::uint64_t packets);
ServerMetrics nginxMetrics(CacheMode mode, std::size_t requests);

/** Fig. 16: open-loop latency under one defense configuration. */
LatencyResult
nginxLatency(CacheMode mode, nic::RingDefense defense,
             std::uint64_t randomize_interval, double rate,
             std::size_t requests,
             const ServerConfig &scfg = ServerConfig{});

// ------------------------------------------------------------------
// Scenario grids for the parallel campaign runtime. Each cell owns a
// private Testbed; its workload seed is split off the campaign seed so
// that cells which must be compared under identical load (e.g. DDIO
// vs. adaptive at the same LLC size in Fig. 14) share a stream while
// everything else stays independent.
// ------------------------------------------------------------------

/**
 * Fig. 14 grid: {20, 11, 8} MB LLC x {DDIO, adaptive partitioning}.
 * Metrics per cell: kreq_per_sec, llc_miss_rate. Cells at the same
 * LLC size share a workload seed so the reported loss is noise-free.
 */
std::vector<runtime::Scenario> fig14ThroughputGrid(std::size_t requests);

/**
 * Fig. 15 grid: {file copy, TCP recv, Nginx} x {No-DDIO, DDIO,
 * adaptive}. Metrics per cell: mem_read_blocks, mem_write_blocks,
 * llc_miss_rate.
 */
std::vector<runtime::Scenario>
fig15TrafficGrid(Addr copy_bytes = Addr(32) << 20,
                 std::uint64_t packets = 40000,
                 std::size_t requests = 2000);

/**
 * Fig. 16 grid: the five defense configurations under wrk2-style
 * open-loop load. Metrics per cell: p50/p90/p99/p99_9/p99_99 (ms).
 * All cells share one workload seed -- the paper compares defenses
 * under the same arrival process.
 */
std::vector<runtime::Scenario> fig16LatencyGrid(double rate,
                                                std::size_t requests);

/**
 * Register the defense grids ("fig14", "fig15", "fig16") with the
 * scenario registry so campaign front-ends can run them by name.
 */
void registerDefenseScenarios();

} // namespace pktchase::workload

#endif // PKTCHASE_WORKLOAD_DEFENSE_EVAL_HH
