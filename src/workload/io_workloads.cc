#include "io_workloads.hh"

#include "net/traffic.hh"
#include "sim/logging.hh"

namespace pktchase::workload
{

namespace
{

struct Snapshot
{
    std::uint64_t accesses, misses, reads, writes;
};

Snapshot
snap(testbed::Testbed &tb)
{
    const cache::LlcStats &s = tb.hier().llc().stats();
    return Snapshot{s.cpuReads + s.cpuWrites,
                    s.cpuReadMisses + s.cpuWriteMisses,
                    tb.hier().memReadBlocks(),
                    tb.hier().memWriteBlocks()};
}

IoMetrics
metricsSince(testbed::Testbed &tb, const Snapshot &s0, Cycles elapsed)
{
    const Snapshot s1 = snap(tb);
    IoMetrics m;
    m.memReadBlocks = s1.reads - s0.reads;
    m.memWriteBlocks = s1.writes - s0.writes;
    const std::uint64_t acc = s1.accesses - s0.accesses;
    m.llcMissRate = acc > 0
        ? static_cast<double>(s1.misses - s0.misses) /
            static_cast<double>(acc)
        : 0.0;
    m.elapsed = elapsed;
    return m;
}

} // namespace

IoMetrics
runFileCopy(testbed::Testbed &tb, Addr bytes)
{
    const Addr pages = (bytes + pageBytes - 1) / pageBytes;

    // A bounded reusable window stands in for the kernel page cache:
    // dd streams through it, so reuse distance stays small while the
    // total traffic equals the file size.
    constexpr Addr window = 1024;
    mem::AddressSpace space(tb.phys(), mem::Owner::Victim);
    const Addr src = space.mmap(window);
    const Addr dst = space.mmap(window);

    const Snapshot s0 = snap(tb);
    Cycles t = tb.eq().now();
    const Cycles start = t;
    for (Addr p = 0; p < pages; ++p) {
        const Addr slot = p % window;
        const Addr src_page = space.translate(src + slot * pageBytes);
        const Addr dst_page = space.translate(dst + slot * pageBytes);
        // Disk DMA delivers the source page.
        tb.hier().dmaWrite(src_page, pageBytes, t);
        // dd copies it.
        for (Addr b = 0; b < blocksPerPage; ++b) {
            t += tb.hier().timedRead(src_page + b * blockBytes, t);
            const bool hit =
                tb.hier().cpuWrite(dst_page + b * blockBytes, t);
            t += hit ? tb.hier().config().llcHitLatency
                     : tb.hier().config().dramLatency;
        }
    }
    return metricsSince(tb, s0, t - start);
}

IoMetrics
runTcpRecv(testbed::Testbed &tb, std::uint64_t packets)
{
    const Snapshot s0 = snap(tb);
    const Cycles start = tb.eq().now();

    auto stream = std::make_unique<net::ConstantStream>(
        64, 0.0, packets, nic::Protocol::Tcp);
    net::TrafficPump pump(tb.eq(), tb.driver(), std::move(stream),
                          start + 100);
    tb.eq().runUntil(start + secondsToCycles(
        static_cast<double>(packets) /
            net::maxFrameRate(64) * 1.2 + 0.001));

    if (!pump.exhausted())
        warn("runTcpRecv: horizon too short, stream not drained");
    return metricsSince(tb, s0, tb.eq().now() - start);
}

} // namespace pktchase::workload
