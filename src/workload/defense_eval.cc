#include "defense_eval.hh"

#include "attack/footprint.hh"
#include "net/traffic.hh"
#include "runtime/registry.hh"
#include "sim/logging.hh"

namespace pktchase::workload
{

testbed::TestbedConfig
makeDefenseConfig(const std::string &cache_spec,
                  const cache::Geometry &geom,
                  const std::string &ring_spec,
                  const std::string &nic_spec)
{
    testbed::TestbedConfig cfg;
    cfg.llc.geom = geom;
    cfg.cacheDefense = cache_spec;
    cfg.ringDefense = ring_spec;
    cfg.nicSpec = nic_spec;
    // The workload experiments never probe; kill measurement noise so
    // the performance numbers are stable run to run.
    cfg.hier.timerNoiseSigma = 0.0;
    cfg.hier.outlierProb = 0.0;
    // The object store plus streaming windows need more frames than
    // the attack experiments.
    cfg.physBytes = Addr(512) << 20;
    cfg.builder.poolPages = 16; // unused by the workloads
    return cfg;
}

ServerMetrics
nginxThroughput(const std::string &cache_spec,
                const cache::Geometry &geom, std::size_t requests,
                const ServerConfig &scfg)
{
    testbed::Testbed tb(makeDefenseConfig(cache_spec, geom));
    ServerWorkload server(tb, scfg);
    return server.closedLoop(requests);
}

IoMetrics
fileCopyMetrics(const std::string &cache_spec, Addr bytes)
{
    testbed::Testbed tb(
        makeDefenseConfig(cache_spec, cache::Geometry::xeonE52660()));
    return runFileCopy(tb, bytes);
}

IoMetrics
tcpRecvMetrics(const std::string &cache_spec, std::uint64_t packets)
{
    testbed::Testbed tb(
        makeDefenseConfig(cache_spec, cache::Geometry::xeonE52660()));
    return runTcpRecv(tb, packets);
}

ServerMetrics
nginxMetrics(const std::string &cache_spec, std::size_t requests)
{
    return nginxThroughput(cache_spec, cache::Geometry::xeonE52660(),
                           requests);
}

LatencyResult
nginxLatency(const defense::Cell &cell, double rate,
             std::size_t requests, const ServerConfig &scfg)
{
    testbed::Testbed tb(makeDefenseConfig(
        cell.cache, cache::Geometry::xeonE52660(), cell.ring,
        cell.nic));
    ServerWorkload server(tb, scfg);
    return server.openLoop(rate, requests);
}

// ----------------------------------------------------- scenario grids --

namespace
{

/** Short cell-name fragment for a geometry. */
const char *
geomLabel(std::size_t geom_index)
{
    switch (geom_index) {
      case 0: return "llc20";
      case 1: return "llc11";
      case 2: return "llc8";
    }
    return "llc?";
}

const cache::Geometry &
geomOf(std::size_t geom_index)
{
    static const cache::Geometry geoms[3] = {
        cache::Geometry::xeonE52660(),
        cache::Geometry::llc11MB(),
        cache::Geometry::llc8MB(),
    };
    return geoms[geom_index < 3 ? geom_index : 0];
}

void
fillServerMetrics(runtime::ScenarioResult &r, const ServerMetrics &m)
{
    r.set("kreq_per_sec", m.kiloRequestsPerSec);
    r.set("llc_miss_rate", m.llcMissRate);
    r.set("mem_read_blocks", static_cast<double>(m.memReadBlocks));
    r.set("mem_write_blocks", static_cast<double>(m.memWriteBlocks));
}

} // namespace

std::vector<runtime::Scenario>
fig14ThroughputGrid(std::size_t requests)
{
    std::vector<runtime::Scenario> grid;
    for (std::size_t g = 0; g < 3; ++g) {
        for (const char *cache_spec : {"cache.ddio", "cache.adaptive"}) {
            const defense::Cell cell{"ring.none", cache_spec};
            std::string name = std::string("fig14/") + geomLabel(g) +
                               "/" + cell.name();
            grid.push_back({name,
                [g, cell, requests](runtime::ScenarioContext &ctx) {
                    ServerConfig scfg;
                    // Cells at the same LLC size share a workload
                    // stream so DDIO vs. adaptive is a paired
                    // comparison, as in the paper.
                    scfg.seed = runtime::splitSeed(ctx.campaignSeed,
                                                   runtime::axisSalt(g));
                    runtime::ScenarioResult r;
                    fillServerMetrics(r, nginxThroughput(
                        cell.cache, geomOf(g), requests, scfg));
                    return r;
                }});
        }
    }
    return grid;
}

std::vector<runtime::Scenario>
fig15TrafficGrid(Addr copy_bytes, std::uint64_t packets,
                 std::size_t requests)
{
    std::vector<runtime::Scenario> grid;
    const char *specs[] = {"cache.no-ddio", "cache.ddio",
                           "cache.adaptive"};
    for (const char *spec : specs) {
        const defense::Cell cell{"ring.none", spec};
        grid.push_back({"fig15/filecopy/" + cell.name(),
            [cell, copy_bytes](runtime::ScenarioContext &) {
                const IoMetrics m =
                    fileCopyMetrics(cell.cache, copy_bytes);
                runtime::ScenarioResult r;
                r.set("mem_read_blocks",
                      static_cast<double>(m.memReadBlocks));
                r.set("mem_write_blocks",
                      static_cast<double>(m.memWriteBlocks));
                r.set("llc_miss_rate", m.llcMissRate);
                return r;
            }});
    }
    for (const char *spec : specs) {
        const defense::Cell cell{"ring.none", spec};
        grid.push_back({"fig15/tcprecv/" + cell.name(),
            [cell, packets](runtime::ScenarioContext &) {
                const IoMetrics m = tcpRecvMetrics(cell.cache, packets);
                runtime::ScenarioResult r;
                r.set("mem_read_blocks",
                      static_cast<double>(m.memReadBlocks));
                r.set("mem_write_blocks",
                      static_cast<double>(m.memWriteBlocks));
                r.set("llc_miss_rate", m.llcMissRate);
                return r;
            }});
    }
    for (const char *spec : specs) {
        const defense::Cell cell{"ring.none", spec};
        grid.push_back({"fig15/nginx/" + cell.name(),
            [cell, requests](runtime::ScenarioContext &ctx) {
                ServerConfig scfg;
                scfg.seed = runtime::splitSeed(
                    ctx.campaignSeed, runtime::axisSalt(0x15));
                runtime::ScenarioResult r;
                fillServerMetrics(r, nginxThroughput(
                    cell.cache, cache::Geometry::xeonE52660(),
                    requests, scfg));
                return r;
            }});
    }
    return grid;
}

std::vector<defense::Cell>
fig16Cells()
{
    return {
        {"ring.none", "cache.ddio"},          // vulnerable baseline
        {"ring.full", "cache.ddio"},
        {"ring.partial:1000", "cache.ddio"},
        {"ring.partial:10000", "cache.ddio"},
        {"ring.none", "cache.adaptive"},
    };
}

std::vector<defense::Cell>
extendedCells()
{
    return {
        {"ring.offset", "cache.ddio"},
        {"ring.quarantine:16", "cache.ddio"},
        {"ring.none", "cache.ddio-ways:2"},
        {"ring.offset", "cache.ddio-ways:2"},
        {"ring.quarantine:16", "cache.adaptive"},
    };
}

std::vector<runtime::Scenario>
latencyGrid(const std::vector<defense::Cell> &cells, double rate,
            std::size_t requests, const std::string &prefix)
{
    std::vector<runtime::Scenario> grid;
    for (const defense::Cell &cell : cells) {
        grid.push_back({prefix + "/" + cell.name(),
            [cell, rate, requests](runtime::ScenarioContext &ctx) {
                ServerConfig scfg;
                // Every defense sees the same arrival process.
                scfg.seed = runtime::splitSeed(
                    ctx.campaignSeed, runtime::axisSalt(0x16));
                const LatencyResult lat =
                    nginxLatency(cell, rate, requests, scfg);
                runtime::ScenarioResult r;
                r.set("p50", lat.percentile(50));
                r.set("p90", lat.percentile(90));
                r.set("p99", lat.percentile(99));
                r.set("p99_9", lat.percentile(99.9));
                r.set("p99_99", lat.percentile(99.99));
                fillServerMetrics(r, lat.metrics);
                return r;
            }});
    }
    return grid;
}

std::vector<runtime::Scenario>
fig16LatencyGrid(double rate, std::size_t requests)
{
    return latencyGrid(fig16Cells(), rate, requests, "fig16");
}

std::vector<std::size_t>
queueSweepCounts()
{
    return {nic::kDefaultQueues, 2, 4};
}

std::vector<defense::Cell>
fig16qCells()
{
    std::vector<defense::Cell> cells;
    const defense::Cell bases[3] = {
        {"ring.none", "cache.ddio"},          // vulnerable baseline
        {"ring.full", "cache.ddio"},          // costliest defense
        {"ring.partial:1000", "cache.ddio"},  // the paper's sweet spot
    };
    for (std::size_t q : queueSweepCounts()) {
        for (const defense::Cell &base : bases) {
            defense::Cell cell = base;
            cell.nic = defense::nicSpecOf(q);
            cells.push_back(cell);
        }
    }
    return cells;
}

std::vector<runtime::Scenario>
fig16qLatencyGrid(double rate, std::size_t requests)
{
    return latencyGrid(fig16qCells(), rate, requests, "fig16q");
}

std::vector<runtime::Scenario>
fig7qFootprintGrid(std::uint64_t frames)
{
    std::vector<runtime::Scenario> grid;
    for (std::size_t queues : queueSweepCounts()) {
        const std::string nic_spec = defense::nicSpecOf(queues);
        grid.push_back({"fig7q/" + nic_spec,
            [queues, frames](runtime::ScenarioContext &ctx) {
                testbed::TestbedConfig cfg =
                    testbed::TestbedConfig::reduced();
                cfg.nicSpec = defense::nicSpecOf(queues);
                // Every queue count scans the same flow mix.
                const std::uint64_t seed = runtime::splitSeed(
                    ctx.campaignSeed, runtime::axisSalt(0x7));
                testbed::Testbed tb(cfg);

                // RSS-spread load: eight constant-rate connections
                // plus a many-flow Poisson background.
                auto mix = std::make_unique<net::FlowMix>();
                for (std::uint32_t f = 0; f < 8; ++f) {
                    mix->add(std::make_unique<net::ConstantStream>(
                        768, 40000.0, frames / 10,
                        nic::Protocol::Udp, 101 + 17 * f));
                }
                mix->add(std::make_unique<net::PoissonBackground>(
                    80000.0, Rng(seed), frames - 8 * (frames / 10),
                    64));
                net::TrafficPump pump(tb.eq(), tb.driver(),
                                      std::move(mix), 1000);

                std::vector<std::size_t> all;
                for (std::size_t c = 0; c < tb.groups().groups.size();
                     ++c)
                    all.push_back(c);
                attack::FootprintConfig fcfg;
                fcfg.probe.ways = cfg.llc.geom.ways; // reduced geometry
                attack::FootprintScanner scanner(
                    tb.hier(), tb.groups(), all, fcfg);
                const auto samples =
                    scanner.scan(tb.eq(), secondsToCycles(0.05));
                const auto candidates =
                    attack::FootprintScanner::candidateBufferSets(
                        samples, 0.05, 0.95);
                const auto per_queue =
                    attack::FootprintScanner::attributeToQueues(
                        candidates, tb.queueComboSequences());

                const auto active = tb.activeCombos();
                std::size_t recovered = 0;
                for (std::size_t cand : candidates) {
                    for (std::size_t a : active) {
                        if (a == cand) {
                            ++recovered;
                            break;
                        }
                    }
                }

                runtime::ScenarioResult r;
                r.set("queues", static_cast<double>(queues));
                r.set("active_combos",
                      static_cast<double>(active.size()));
                r.set("candidates",
                      static_cast<double>(candidates.size()));
                r.set("recall", active.empty() ? 0.0
                    : static_cast<double>(recovered) /
                        static_cast<double>(active.size()));
                double mean_per_queue = 0.0;
                for (const auto &qc : per_queue)
                    mean_per_queue += static_cast<double>(qc.size());
                r.set("mean_queue_candidates", per_queue.empty() ? 0.0
                    : mean_per_queue /
                        static_cast<double>(per_queue.size()));
                return r;
            }});
    }
    return grid;
}

std::vector<runtime::Scenario>
extendedLatencyGrid(double rate, std::size_t requests)
{
    return latencyGrid(extendedCells(), rate, requests, "fig16x");
}

void
registerDefenseScenarios()
{
    auto &reg = runtime::ScenarioRegistry::instance();
    reg.add("fig14",
            "Nginx throughput: DDIO vs. adaptive partitioning across "
            "LLC sizes",
            [] { return fig14ThroughputGrid(4000); });
    reg.add("fig15",
            "Memory traffic and miss rate of the Sec. VII I/O "
            "workloads per cache mode",
            [] { return fig15TrafficGrid(); });
    reg.add("fig16",
            "Open-loop response-latency percentiles per ring defense",
            [] { return fig16LatencyGrid(100000.0, 20000); });
    reg.add("fig16x",
            "Open-loop latency percentiles for the extended defense "
            "cells (offset, quarantine, way-restricted DDIO)",
            [] { return extendedLatencyGrid(100000.0, 20000); });
    reg.add("fig16q",
            "Queue-count x defense-cell sweep: open-loop latency of "
            "the ring defenses on a multi-queue RSS NIC",
            [] { return fig16qLatencyGrid(100000.0, 4000); });
    reg.add("fig7q",
            "Receive-footprint recovery per RSS queue count (the "
            "Fig. 7 scan against a multi-flow mix)",
            [] { return fig7qFootprintGrid(4000); });
}

} // namespace pktchase::workload
