#include "defense_eval.hh"

#include "runtime/registry.hh"
#include "sim/logging.hh"

namespace pktchase::workload
{

const char *
cacheModeName(CacheMode mode)
{
    switch (mode) {
      case CacheMode::NoDdio:
        return "no-ddio";
      case CacheMode::Ddio:
        return "ddio";
      case CacheMode::AdaptivePartition:
        return "adaptive-partitioning";
    }
    return "?";
}

testbed::TestbedConfig
makeDefenseConfig(CacheMode mode, const cache::Geometry &geom,
                  nic::RingDefense defense,
                  std::uint64_t randomize_interval)
{
    testbed::TestbedConfig cfg;
    cfg.llc.geom = geom;
    cfg.ddio = mode != CacheMode::NoDdio;
    cfg.llc.adaptivePartition = mode == CacheMode::AdaptivePartition;
    cfg.igb.defense = defense;
    cfg.igb.randomizeInterval = randomize_interval;
    // The workload experiments never probe; kill measurement noise so
    // the performance numbers are stable run to run.
    cfg.hier.timerNoiseSigma = 0.0;
    cfg.hier.outlierProb = 0.0;
    // The object store plus streaming windows need more frames than
    // the attack experiments.
    cfg.physBytes = Addr(512) << 20;
    cfg.builder.poolPages = 16; // unused by the workloads
    return cfg;
}

ServerMetrics
nginxThroughput(CacheMode mode, const cache::Geometry &geom,
                std::size_t requests, const ServerConfig &scfg)
{
    testbed::Testbed tb(makeDefenseConfig(mode, geom));
    ServerWorkload server(tb, scfg);
    return server.closedLoop(requests);
}

IoMetrics
fileCopyMetrics(CacheMode mode, Addr bytes)
{
    testbed::Testbed tb(
        makeDefenseConfig(mode, cache::Geometry::xeonE52660()));
    return runFileCopy(tb, bytes);
}

IoMetrics
tcpRecvMetrics(CacheMode mode, std::uint64_t packets)
{
    testbed::Testbed tb(
        makeDefenseConfig(mode, cache::Geometry::xeonE52660()));
    return runTcpRecv(tb, packets);
}

ServerMetrics
nginxMetrics(CacheMode mode, std::size_t requests)
{
    return nginxThroughput(mode, cache::Geometry::xeonE52660(),
                           requests);
}

LatencyResult
nginxLatency(CacheMode mode, nic::RingDefense defense,
             std::uint64_t randomize_interval, double rate,
             std::size_t requests, const ServerConfig &scfg)
{
    testbed::Testbed tb(makeDefenseConfig(
        mode, cache::Geometry::xeonE52660(), defense,
        randomize_interval));
    ServerWorkload server(tb, scfg);
    return server.openLoop(rate, requests);
}

// ----------------------------------------------------- scenario grids --

namespace
{

/** Short cell-name fragment for a geometry. */
const char *
geomLabel(std::size_t geom_index)
{
    switch (geom_index) {
      case 0: return "llc20";
      case 1: return "llc11";
      case 2: return "llc8";
    }
    return "llc?";
}

const cache::Geometry &
geomOf(std::size_t geom_index)
{
    static const cache::Geometry geoms[3] = {
        cache::Geometry::xeonE52660(),
        cache::Geometry::llc11MB(),
        cache::Geometry::llc8MB(),
    };
    return geoms[geom_index < 3 ? geom_index : 0];
}

void
fillServerMetrics(runtime::ScenarioResult &r, const ServerMetrics &m)
{
    r.set("kreq_per_sec", m.kiloRequestsPerSec);
    r.set("llc_miss_rate", m.llcMissRate);
    r.set("mem_read_blocks", static_cast<double>(m.memReadBlocks));
    r.set("mem_write_blocks", static_cast<double>(m.memWriteBlocks));
}

} // namespace

std::vector<runtime::Scenario>
fig14ThroughputGrid(std::size_t requests)
{
    std::vector<runtime::Scenario> grid;
    for (std::size_t g = 0; g < 3; ++g) {
        for (CacheMode mode : {CacheMode::Ddio,
                               CacheMode::AdaptivePartition}) {
            std::string name = std::string("fig14/") + geomLabel(g) +
                               "/" + cacheModeName(mode);
            grid.push_back({name,
                [g, mode, requests](runtime::ScenarioContext &ctx) {
                    ServerConfig scfg;
                    // Cells at the same LLC size share a workload
                    // stream so DDIO vs. adaptive is a paired
                    // comparison, as in the paper.
                    scfg.seed = runtime::splitSeed(ctx.campaignSeed,
                                                   runtime::axisSalt(g));
                    runtime::ScenarioResult r;
                    fillServerMetrics(r, nginxThroughput(
                        mode, geomOf(g), requests, scfg));
                    return r;
                }});
        }
    }
    return grid;
}

std::vector<runtime::Scenario>
fig15TrafficGrid(Addr copy_bytes, std::uint64_t packets,
                 std::size_t requests)
{
    std::vector<runtime::Scenario> grid;
    const CacheMode modes[] = {CacheMode::NoDdio, CacheMode::Ddio,
                               CacheMode::AdaptivePartition};
    for (CacheMode mode : modes) {
        grid.push_back({std::string("fig15/filecopy/") +
                        cacheModeName(mode),
            [mode, copy_bytes](runtime::ScenarioContext &) {
                const IoMetrics m = fileCopyMetrics(mode, copy_bytes);
                runtime::ScenarioResult r;
                r.set("mem_read_blocks",
                      static_cast<double>(m.memReadBlocks));
                r.set("mem_write_blocks",
                      static_cast<double>(m.memWriteBlocks));
                r.set("llc_miss_rate", m.llcMissRate);
                return r;
            }});
    }
    for (CacheMode mode : modes) {
        grid.push_back({std::string("fig15/tcprecv/") +
                        cacheModeName(mode),
            [mode, packets](runtime::ScenarioContext &) {
                const IoMetrics m = tcpRecvMetrics(mode, packets);
                runtime::ScenarioResult r;
                r.set("mem_read_blocks",
                      static_cast<double>(m.memReadBlocks));
                r.set("mem_write_blocks",
                      static_cast<double>(m.memWriteBlocks));
                r.set("llc_miss_rate", m.llcMissRate);
                return r;
            }});
    }
    for (CacheMode mode : modes) {
        grid.push_back({std::string("fig15/nginx/") +
                        cacheModeName(mode),
            [mode, requests](runtime::ScenarioContext &ctx) {
                ServerConfig scfg;
                scfg.seed = runtime::splitSeed(
                    ctx.campaignSeed, runtime::axisSalt(0x15));
                runtime::ScenarioResult r;
                fillServerMetrics(r, nginxThroughput(
                    mode, cache::Geometry::xeonE52660(), requests,
                    scfg));
                return r;
            }});
    }
    return grid;
}

std::vector<runtime::Scenario>
fig16LatencyGrid(double rate, std::size_t requests)
{
    struct Config
    {
        const char *name;
        CacheMode mode;
        nic::RingDefense defense;
        std::uint64_t interval;
    };
    static const Config configs[] = {
        {"baseline", CacheMode::Ddio, nic::RingDefense::None, 0},
        {"full-random", CacheMode::Ddio, nic::RingDefense::FullRandom,
         0},
        {"partial-1k", CacheMode::Ddio,
         nic::RingDefense::PartialPeriodic, 1000},
        {"partial-10k", CacheMode::Ddio,
         nic::RingDefense::PartialPeriodic, 10000},
        {"adaptive", CacheMode::AdaptivePartition,
         nic::RingDefense::None, 0},
    };

    std::vector<runtime::Scenario> grid;
    for (const Config &c : configs) {
        grid.push_back({std::string("fig16/") + c.name,
            [c, rate, requests](runtime::ScenarioContext &ctx) {
                ServerConfig scfg;
                // Every defense sees the same arrival process.
                scfg.seed = runtime::splitSeed(
                    ctx.campaignSeed, runtime::axisSalt(0x16));
                const LatencyResult lat = nginxLatency(
                    c.mode, c.defense, c.interval, rate, requests,
                    scfg);
                runtime::ScenarioResult r;
                r.set("p50", lat.percentile(50));
                r.set("p90", lat.percentile(90));
                r.set("p99", lat.percentile(99));
                r.set("p99_9", lat.percentile(99.9));
                r.set("p99_99", lat.percentile(99.99));
                fillServerMetrics(r, lat.metrics);
                return r;
            }});
    }
    return grid;
}

void
registerDefenseScenarios()
{
    auto &reg = runtime::ScenarioRegistry::instance();
    reg.add("fig14",
            "Nginx throughput: DDIO vs. adaptive partitioning across "
            "LLC sizes",
            [] { return fig14ThroughputGrid(4000); });
    reg.add("fig15",
            "Memory traffic and miss rate of the Sec. VII I/O "
            "workloads per cache mode",
            [] { return fig15TrafficGrid(); });
    reg.add("fig16",
            "Open-loop response-latency percentiles per ring defense",
            [] { return fig16LatencyGrid(100000.0, 20000); });
}

} // namespace pktchase::workload
