#include "defense_eval.hh"

#include "sim/logging.hh"

namespace pktchase::workload
{

const char *
cacheModeName(CacheMode mode)
{
    switch (mode) {
      case CacheMode::NoDdio:
        return "no-ddio";
      case CacheMode::Ddio:
        return "ddio";
      case CacheMode::AdaptivePartition:
        return "adaptive-partitioning";
    }
    return "?";
}

testbed::TestbedConfig
makeDefenseConfig(CacheMode mode, const cache::Geometry &geom,
                  nic::RingDefense defense,
                  std::uint64_t randomize_interval)
{
    testbed::TestbedConfig cfg;
    cfg.llc.geom = geom;
    cfg.ddio = mode != CacheMode::NoDdio;
    cfg.llc.adaptivePartition = mode == CacheMode::AdaptivePartition;
    cfg.igb.defense = defense;
    cfg.igb.randomizeInterval = randomize_interval;
    // The workload experiments never probe; kill measurement noise so
    // the performance numbers are stable run to run.
    cfg.hier.timerNoiseSigma = 0.0;
    cfg.hier.outlierProb = 0.0;
    // The object store plus streaming windows need more frames than
    // the attack experiments.
    cfg.physBytes = Addr(512) << 20;
    cfg.builder.poolPages = 16; // unused by the workloads
    return cfg;
}

ServerMetrics
nginxThroughput(CacheMode mode, const cache::Geometry &geom,
                std::size_t requests, const ServerConfig &scfg)
{
    testbed::Testbed tb(makeDefenseConfig(mode, geom));
    ServerWorkload server(tb, scfg);
    return server.closedLoop(requests);
}

IoMetrics
fileCopyMetrics(CacheMode mode, Addr bytes)
{
    testbed::Testbed tb(
        makeDefenseConfig(mode, cache::Geometry::xeonE52660()));
    return runFileCopy(tb, bytes);
}

IoMetrics
tcpRecvMetrics(CacheMode mode, std::uint64_t packets)
{
    testbed::Testbed tb(
        makeDefenseConfig(mode, cache::Geometry::xeonE52660()));
    return runTcpRecv(tb, packets);
}

ServerMetrics
nginxMetrics(CacheMode mode, std::size_t requests)
{
    return nginxThroughput(mode, cache::Geometry::xeonE52660(),
                           requests);
}

LatencyResult
nginxLatency(CacheMode mode, nic::RingDefense defense,
             std::uint64_t randomize_interval, double rate,
             std::size_t requests, const ServerConfig &scfg)
{
    testbed::Testbed tb(makeDefenseConfig(
        mode, cache::Geometry::xeonE52660(), defense,
        randomize_interval));
    ServerWorkload server(tb, scfg);
    return server.openLoop(rate, requests);
}

} // namespace pktchase::workload
