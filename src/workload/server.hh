/**
 * @file
 * Request-level Nginx model for the defense evaluation (Sec. VII).
 *
 * Each HTTP request is: a request frame through the NIC receive path,
 * application work over a Zipf-distributed hot object store plus
 * response-buffer writes, with service time composed of a fixed CPU
 * budget plus the measured latency of every memory access (so LLC
 * behaviour -- DDIO hits, partition pressure, randomization-induced
 * cold buffers -- directly moves throughput and latency), plus an
 * explicit driver cost for every rx-buffer reallocation a software
 * defense performs.
 *
 * Closed-loop runs give peak throughput (Fig. 14); open-loop runs at a
 * target arrival rate give the wrk2-style latency percentiles
 * (Fig. 16); the hierarchy counters give memory traffic and miss rate
 * (Fig. 15).
 */

#ifndef PKTCHASE_WORKLOAD_SERVER_HH
#define PKTCHASE_WORKLOAD_SERVER_HH

#include <cstdint>
#include <vector>

#include "testbed/testbed.hh"

namespace pktchase::workload
{

/** Server model parameters. */
struct ServerConfig
{
    /** Hot object store, in pages (sized near the LLC). */
    std::size_t hotPages = 4800;
    double zipfExponent = 0.6;

    unsigned readsPerRequest = 220;   ///< Object-store accesses.
    unsigned writesPerRequest = 40;   ///< Response construction.
    Cycles baseCyclesPerRequest = 9000; ///< Non-memory CPU work.

    /** Driver-side cost of allocating a fresh rx buffer page. */
    Cycles reallocPenaltyCycles = 2600;

    /**
     * Driver-side cost of rotating a page through a policy-owned pool
     * (no allocator round-trip, so far cheaper than a reallocation).
     */
    Cycles swapPenaltyCycles = 400;

    Addr requestFrameBytes = 256;     ///< Inbound HTTP request size.
    std::uint64_t seed = 29;
};

/** Aggregate metrics of a run. */
struct ServerMetrics
{
    double kiloRequestsPerSec = 0.0;
    double llcMissRate = 0.0;          ///< CPU-side LLC miss fraction.
    std::uint64_t memReadBlocks = 0;
    std::uint64_t memWriteBlocks = 0;
    std::uint64_t requests = 0;
};

/** Latency distribution of an open-loop run. */
struct LatencyResult
{
    std::vector<double> latenciesMs;  ///< Per-request, warmup dropped.
    ServerMetrics metrics;

    double percentile(double p) const;
};

/**
 * The server workload, bound to an assembled testbed.
 */
class ServerWorkload
{
  public:
    ServerWorkload(testbed::Testbed &tb, const ServerConfig &cfg);

    /**
     * Closed loop: requests processed back-to-back.
     * @return Peak-throughput metrics over @p n requests.
     */
    ServerMetrics closedLoop(std::size_t n);

    /**
     * Open loop at @p rate requests/second (Poisson arrivals, single
     * FIFO server), for Fig. 16 tail latencies.
     *
     * @param warmup Requests discarded before recording latencies.
     */
    LatencyResult openLoop(double rate, std::size_t n,
                           std::size_t warmup = 200);

    /** Service one request starting at @p now; returns service cycles. */
    Cycles serveOne(Cycles now);

  private:
    testbed::Testbed &tb_;
    ServerConfig cfg_;
    Rng rng_;
    mem::AddressSpace appSpace_;
    Addr hotBase_ = 0;
    Addr respBase_ = 0;

    /**
     * Connection counter: each request arrives on its own flow, so
     * RSS spreads the request stream across every receive queue. At
     * one queue the flow id is inert and the receive path matches the
     * single-ring model draw for draw.
     */
    std::uint32_t nextFlow_ = 0;
    static constexpr std::size_t respPages_ = 64;
    std::size_t respCursor_ = 0;

    /** Counter snapshot for miss/traffic accounting. */
    struct Snapshot
    {
        std::uint64_t cpuAccesses, cpuMisses, memReads, memWrites;
    };
    Snapshot snap() const;
    ServerMetrics metricsSince(const Snapshot &s0, Cycles cycles,
                               std::size_t requests) const;
};

} // namespace pktchase::workload

#endif // PKTCHASE_WORKLOAD_SERVER_HH
