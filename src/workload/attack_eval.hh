/**
 * @file
 * Attacker-side scenario grids for the parallel campaign runtime: the
 * probe-engine experiments (covert channel, packet-chasing channel,
 * web fingerprinting) as runtime::Scenario cells, next to the
 * defense-side grids of defense_eval.hh.
 *
 * Three grids:
 *
 *  - "fig11": fixed-buffer covert channel, encoding x probe rate
 *    (paper Fig. 11: bandwidth flat, error falls with probe rate);
 *  - "fig13": packet-chasing channel error/capacity across target
 *    bandwidths and NIC queue counts (the paper's Fig. 12c/d axis,
 *    extended with the multi-queue NIC);
 *  - "fig20": closed-world fingerprint accuracy across defense cells
 *    and queue counts -- the paper's headline Sec. V numbers swept
 *    over every layer this codebase can vary.
 *
 * Every cell assembles a private Testbed and draws randomness only
 * from seeds split off the campaign seed, so the grids inherit the
 * campaign determinism contract (threads=N bit-identical to serial).
 *
 * All three grids opt into the sub-cell task decomposition contract
 * (src/runtime/scenario.hh): fig20 cells split into one task per
 * classification trial; fig11/fig13 cells split the LFSR symbol
 * stream into four chunks, each task transmitting its chunk's pinned
 * stream positions on a private testbed. Each task ships raw counts
 * (sites predicted, edit-alignment operations, on-wire spans) and the
 * pure fold re-derives the cell's rate metrics, so the folded report
 * carries the same keys in the same order as the monolithic cells
 * did, and threads=N == threads=1 == runScenarioMonolithic
 * (tests/task_golden_test.cc pins both figures).
 */

#ifndef PKTCHASE_WORKLOAD_ATTACK_EVAL_HH
#define PKTCHASE_WORKLOAD_ATTACK_EVAL_HH

#include <cstdint>
#include <vector>

#include "defense/registry.hh"
#include "fingerprint/attack.hh"
#include "runtime/scenario.hh"

namespace pktchase::workload
{

/** The queue counts the attacker grids sweep. */
std::vector<std::size_t> attackQueueCounts();

/**
 * The fig20 defense cells: the vulnerable baseline, DDIO off, the
 * paper's ring defenses, and adaptive partitioning, each crossed with
 * every attackQueueCounts() entry.
 */
std::vector<defense::Cell> fig20Cells();

/** Fingerprint parameters every fig20 cell runs (golden-pinned). */
fingerprint::FingerprintConfig fig20Config(std::uint64_t seed);

/** The paper's five-site closed world (signature seed included). */
fingerprint::WebsiteDb fig20Database();

/**
 * Run one fig20 cell: assemble the cell's testbed, train on tcpdump
 * truth, classify live captures. @p seed is the visit/jitter stream
 * (the grid shares one across cells so defenses are compared under
 * identical page loads).
 */
fingerprint::FingerprintResult fig20Cell(const defense::Cell &cell,
                                         std::uint64_t seed);

/**
 * fig11 grid: {binary, ternary} x {7, 14, 28} kHz probe rate, under
 * background cache noise. Metrics per cell: bandwidth_bps,
 * error_rate, received, probe_rounds.
 */
std::vector<runtime::Scenario> fig11CovertGrid(std::size_t symbols);

/**
 * fig13 grid: chasing-channel target bandwidth x queue count.
 * Metrics per cell: error_rate, out_of_sync_rate, received,
 * probe_rounds.
 */
std::vector<runtime::Scenario> fig13ChannelGrid(std::size_t symbols);

/**
 * fig20 grid: fingerprint accuracy over fig20Cells(). Metrics per
 * cell: accuracy, correct, trials, probe_rounds.
 */
std::vector<runtime::Scenario> fig20FingerprintGrid();

/**
 * Register the attacker grids ("fig11", "fig13", "fig20") with the
 * scenario registry so campaign front-ends can run them by name.
 */
void registerAttackScenarios();

} // namespace pktchase::workload

#endif // PKTCHASE_WORKLOAD_ATTACK_EVAL_HH
