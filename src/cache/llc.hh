/**
 * @file
 * Sliced, inclusive last-level cache whose DMA behaviour is delegated
 * to a pluggable InjectionPolicy (see injection_policy.hh).
 *
 * Three fill paths exist:
 *  - CPU reads/writes: demand fills that may displace any line (or,
 *    under a partitioned policy such as the Sec. VII defense, only CPU
 *    lines).
 *  - DDIO I/O writes: the NIC's DMA transactions allocate directly in
 *    the LLC in dirty state, capped at the policy's per-set I/O bound
 *    (ddioWays for the baseline), but still able to evict CPU lines in
 *    the baseline -- the contention the whole attack rests on.
 *  - Non-DDIO DMA: writes go to memory and invalidate any cached copy;
 *    the driver's later header read demand-fetches.
 *
 * Under AdaptivePartitionPolicy an I/O fill can never evict a CPU line
 * (tested as an invariant), which closes the channel.
 */

#ifndef PKTCHASE_CACHE_LLC_HH
#define PKTCHASE_CACHE_LLC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/geometry.hh"
#include "cache/injection_policy.hh"
#include "cache/replacement.hh"
#include "cache/slice_hash.hh"
#include "cache/telemetry.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace pktchase::cache
{

/** Configuration for an Llc instance. */
struct LlcConfig
{
    Geometry geom = Geometry::xeonE52660();
    ReplacementKind replacement = ReplacementKind::Lru;

    /** Max ways DDIO may allocate per set (Intel's ~10% guidance). */
    unsigned ddioWays = 2;

    // Tuning parameters for AdaptivePartitionPolicy (ignored by the
    // static policies).
    unsigned ioLinesMin = 1;     ///< Hard lower bound on partition size.
    unsigned ioLinesMax = 3;     ///< Hard upper bound on partition size.
    unsigned ioLinesInit = 2;    ///< Partition size at reset.
    Cycles adaptPeriod = 10000;  ///< p in the paper.
    Cycles tHigh = 5000;         ///< Grow threshold (cycles of presence).
    Cycles tLow = 2000;          ///< Shrink threshold.

    std::uint64_t seed = 1;      ///< Seed for the random policy, if used.
};

/** Event counters exposed by the Llc. */
struct LlcStats
{
    std::uint64_t cpuReads = 0;
    std::uint64_t cpuReadMisses = 0;
    std::uint64_t cpuWrites = 0;
    std::uint64_t cpuWriteMisses = 0;

    std::uint64_t ioWrites = 0;       ///< DDIO write transactions.
    std::uint64_t ioWriteHits = 0;    ///< Updated an existing line.
    std::uint64_t ioAllocations = 0;  ///< Allocated a new line.

    /** Evictions broken down by (evicted line kind) x (filling agent). */
    std::uint64_t cpuEvictedByCpu = 0;
    std::uint64_t cpuEvictedByIo = 0; ///< The Packet Chasing leak.
    std::uint64_t ioEvictedByCpu = 0;
    std::uint64_t ioEvictedByIo = 0;

    std::uint64_t writebacks = 0;     ///< Dirty evictions to memory.
    std::uint64_t memReads = 0;       ///< Demand fills from memory.
    std::uint64_t invalidations = 0;  ///< Snoop/DMA invalidations.

    std::uint64_t partitionAdaptations = 0;
    std::uint64_t partitionInvalidations = 0;
};

/**
 * The sliced last-level cache.
 */
class Llc
{
  public:
    /**
     * @param cfg    Geometry and policy configuration.
     * @param hash   Slice selector; its slice count must match the
     *               geometry. Owned by the cache.
     * @param policy DMA injection policy; nullptr means the DDIO
     *               baseline (DdioPolicy). Owned by the cache.
     */
    Llc(const LlcConfig &cfg, std::unique_ptr<SliceHash> hash,
        std::unique_ptr<InjectionPolicy> policy = nullptr);

    /**
     * CPU demand read of the block containing @p paddr.
     * @return true on hit.
     */
    bool cpuRead(Addr paddr, Cycles now);

    /** CPU write (write-allocate, write-back). @return true on hit. */
    bool cpuWrite(Addr paddr, Cycles now);

    /**
     * DDIO I/O write of the block containing @p paddr: update in place
     * on hit, otherwise allocate dirty, displacing per the injection
     * policy's per-set cap and partition rules.
     */
    void ioWrite(Addr paddr, Cycles now);

    /**
     * Invalidate the block containing @p paddr if cached (non-DDIO DMA
     * snoop). The cached copy is stale, so no writeback is performed.
     */
    void invalidateBlock(Addr paddr);

    /** Whether the block containing @p paddr is currently cached. */
    bool contains(Addr paddr) const;

    /** Whether the cached copy of @p paddr (if any) is an I/O line. */
    bool containsIoLine(Addr paddr) const;

    /** Flush the whole cache (writebacks counted). */
    void flushAll();

    /** Global set index (slice-major) of a physical address. */
    std::size_t
    globalSet(Addr paddr) const
    {
        // Devirtualized fast path for the standard XOR-fold hash;
        // xorHash_ is set iff hash_ is an XorFoldSliceHash.
        const unsigned slice = xorHash_
            ? xorHash_->slice(paddr) : hash_->slice(paddr);
        return static_cast<std::size_t>(slice) *
            cfg_.geom.setsPerSlice + cfg_.geom.setIndex(paddr);
    }

    /** Number of valid lines in global set @p gset. */
    unsigned validCount(std::size_t gset) const;

    /** Number of valid I/O lines in global set @p gset. */
    unsigned ioCount(std::size_t gset) const;

    /**
     * Current I/O partition size for @p gset: the injection policy's
     * per-set cap (ddioWays for the static DDIO variants).
     */
    unsigned ioPartitionSize(std::size_t gset) const;

    const LlcStats &stats() const { return stats_; }
    const LlcConfig &config() const { return cfg_; }
    const Geometry &geometry() const { return cfg_.geom; }
    const SliceHash &sliceHash() const { return *hash_; }

    /** The active DMA injection policy. */
    const InjectionPolicy &injectionPolicy() const { return *policy_; }

    /** Reset all statistics counters (cache contents untouched). */
    void clearStats() { stats_ = LlcStats{}; }

    /**
     * Attach a hardware-counter telemetry probe (nullptr detaches).
     * With no probe attached the access paths do no telemetry work at
     * all, so detached behaviour is bit-identical to the pre-telemetry
     * model. Not owned; must outlive the cache or be detached first.
     */
    void attachTelemetry(LlcTelemetry *probe) { telem_ = probe; }

    /** The attached telemetry probe, or nullptr. */
    LlcTelemetry *telemetry() const { return telem_; }

    /** Slice group (slice index) of global set @p gset. */
    unsigned
    sliceOf(std::size_t gset) const
    {
        return static_cast<unsigned>(gset / cfg_.geom.setsPerSlice);
    }

    // ------------------------------------------------------------------
    // Injection-policy mutation surface: policies rearrange set
    // contents only through these, so the writeback and partition
    // statistics stay consistent.
    // ------------------------------------------------------------------

    /**
     * Invalidate the replacement victim among @p gset's lines of the
     * given kind (writeback accounted, counted as a partition
     * invalidation). At least one line of that kind must be valid.
     */
    void partitionDrop(std::size_t gset, bool io_side);

    /** Count one adaptation-period boundary decision. */
    void notePartitionAdaptation() { ++stats_.partitionAdaptations; }

  private:
    // Line state is split structure-of-arrays: a flat tag array plus
    // one byte of flag bits per line, so the tag-match loop of findWay
    // streams through 8-byte tags and the validity scans touch one
    // cache line per set instead of striding over 16-byte AoS entries.
    static constexpr std::uint8_t kValid = 1u << 0;
    static constexpr std::uint8_t kDirty = 1u << 1;
    static constexpr std::uint8_t kIo = 1u << 2;

    LlcConfig cfg_;
    std::unique_ptr<SliceHash> hash_;
    const XorFoldSliceHash *xorHash_ = nullptr; ///< hash_ downcast, or null.
    std::unique_ptr<InjectionPolicy> policy_;
    bool partitioned_ = false;     ///< Cached policy_->partitioned().
    bool wantsOnAccess_ = false;   ///< Cached policy_->wantsOnAccess().
    unsigned uniformIoCap_ = 0;    ///< Cached cap when ioCapUniform().
    bool ioCapUniform_ = true;
    std::unique_ptr<ReplacementPolicy> repl_;
    LruPolicy *lru_ = nullptr;     ///< repl_ downcast, or null.
    std::vector<Addr> tags_;       ///< totalSets x ways block addrs.
    std::vector<std::uint8_t> meta_; ///< totalSets x ways flag bytes.
    LlcStats stats_;
    LlcTelemetry *telem_ = nullptr; ///< Counter probe; null = off-path.

    std::size_t
    lineIndex(std::size_t gset, unsigned way) const
    {
        return gset * cfg_.geom.ways + way;
    }

    // Devirtualized replacement-policy calls: LruPolicy is final, so
    // these inline completely for the default policy.
    void
    replTouch(std::size_t gset, unsigned way)
    {
        if (lru_)
            lru_->touch(gset, way);
        else
            repl_->touch(gset, way);
    }

    unsigned
    replVictim(std::size_t gset, WayMask mask)
    {
        return lru_ ? lru_->victim(gset, mask)
                    : repl_->victim(gset, mask);
    }

    void
    replReset(std::size_t gset, unsigned way)
    {
        if (lru_)
            lru_->reset(gset, way);
        else
            repl_->reset(gset, way);
    }

    /** Per-set I/O cap without the virtual call for uniform policies. */
    unsigned
    ioCapOf(std::size_t gset) const
    {
        return ioCapUniform_ ? uniformIoCap_ : policy_->ioCap(gset);
    }

    /** Find the way caching @p block in @p gset, or -1. */
    int findWay(std::size_t gset, Addr block) const;

    /** First invalid way in @p gset, or -1. */
    int findInvalid(std::size_t gset) const;

    /** Mask of valid ways whose isIo flag equals @p want_io. */
    WayMask kindMask(std::size_t gset, bool want_io) const;

    /** Evict @p way of @p gset, counting writeback and attribution. */
    void evict(std::size_t gset, unsigned way, bool filler_is_io);

    /** Handle a CPU-side miss fill; returns the way filled. */
    unsigned cpuFill(std::size_t gset, Addr block, bool dirty);

    /**
     * The shared cpuRead/cpuWrite miss tail: fill, then report the
     * miss -- and any I/O line the fill displaced -- to telemetry.
     */
    void cpuMissFill(std::size_t gset, Addr block, bool dirty,
                     Cycles now);

    /** Handle a DDIO allocation. */
    void ioFill(std::size_t gset, Addr block);
};

} // namespace pktchase::cache

#endif // PKTCHASE_CACHE_LLC_HH
