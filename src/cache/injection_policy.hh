/**
 * @file
 * Pluggable DMA injection policies for the LLC: how (and whether) NIC
 * and disk DMA traffic allocates in the cache, and how I/O lines are
 * bounded per set.
 *
 * Replaces the old `bool ddio` on the hierarchy plus the
 * `adaptivePartition` flag in LlcConfig with one strategy object the
 * Llc consults at fixed points:
 *
 *  - injectsToLlc()     whether DMA writes allocate in the LLC at all
 *                       (false models memory-first DMA + snoop
 *                       invalidate);
 *  - partitioned()      whether CPU and I/O lines are strictly
 *                       separated (an I/O fill may then never displace
 *                       a CPU line, and vice versa within quota);
 *  - ioCap(gset)        the maximum number of I/O lines currently
 *                       allowed in a set -- constant for the DDIO
 *                       variants, per-set dynamic for the adaptive
 *                       partition;
 *  - onAccess(...)      bookkeeping hook, called at the start of every
 *                       CPU/I/O access before the tag lookup;
 *  - init(llc)          bind-time validation and per-set state sizing.
 *
 * Policies mutate set contents only through Llc::partitionDrop so the
 * writeback and partition-invalidation statistics stay consistent.
 * Canonical spec strings ("cache.ddio-ways:2") are produced by name()
 * and parsed by defense::Registry.
 */

#ifndef PKTCHASE_CACHE_INJECTION_POLICY_HH
#define PKTCHASE_CACHE_INJECTION_POLICY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace pktchase::cache
{

class Llc;

/** Strategy interface for DMA injection into the LLC. */
class InjectionPolicy
{
  public:
    virtual ~InjectionPolicy() = default;

    /** Canonical registry spec of this instance, e.g. "cache.adaptive". */
    virtual std::string name() const = 0;

    /** Whether DMA writes inject into the LLC (DDIO). */
    virtual bool injectsToLlc() const = 0;

    /** Whether CPU and I/O lines are strictly partitioned. */
    virtual bool partitioned() const { return false; }

    /** Bind to @p llc: validate configuration, size per-set state. */
    virtual void init(Llc &) {}

    /** Max I/O lines currently allowed in global set @p gset. */
    virtual unsigned ioCap(std::size_t gset) const = 0;

    /**
     * Whether ioCap is the same for every set (and constant after
     * init). The Llc caches a uniform cap once instead of making a
     * virtual call per fill.
     */
    virtual bool ioCapUniform() const { return true; }

    /** Per-access bookkeeping hook, before the tag lookup. */
    virtual void onAccess(Llc &, std::size_t, Cycles) {}

    /**
     * Whether onAccess is overridden to do real work. The Llc skips
     * the per-access virtual dispatch entirely when this is false.
     */
    virtual bool wantsOnAccess() const { return false; }
};

/**
 * Memory-first DMA: writes go to DRAM and snoop-invalidate cached
 * copies; the driver's later reads demand-fetch. The cache itself
 * behaves exactly like the DDIO baseline if fed I/O fills directly.
 */
class NoDdioPolicy : public InjectionPolicy
{
  public:
    std::string name() const override { return "cache.no-ddio"; }
    bool injectsToLlc() const override { return false; }
    void init(Llc &llc) override;
    unsigned ioCap(std::size_t) const override { return cap_; }

  private:
    unsigned cap_ = 2;
};

/** Vulnerable baseline: DDIO with the configured per-set way cap. */
class DdioPolicy : public InjectionPolicy
{
  public:
    std::string name() const override { return "cache.ddio"; }
    bool injectsToLlc() const override { return true; }
    void init(Llc &llc) override;
    unsigned ioCap(std::size_t) const override { return cap_; }

  private:
    unsigned cap_ = 2;
};

/**
 * DDIO restricted to exactly @p ways allocation ways per set,
 * overriding LlcConfig::ddioWays -- models real DDIO's fixed 2-way
 * allocation limit (and lets experiments sweep it).
 */
class DdioWaysPolicy : public InjectionPolicy
{
  public:
    explicit DdioWaysPolicy(unsigned ways);

    std::string name() const override;
    bool injectsToLlc() const override { return true; }
    void init(Llc &llc) override;
    unsigned ioCap(std::size_t) const override { return ways_; }

  private:
    unsigned ways_;
};

/**
 * The Sec. VII adaptive I/O partitioning defense: a per-set I/O
 * partition size (io_lines) plus a per-set I/O-presence cycle counter;
 * every adaptation period the partition grows if presence exceeded
 * tHigh and shrinks if it stayed below tLow, invalidating displaced
 * blocks. With this policy an I/O fill can never evict a CPU line,
 * which closes the channel.
 */
class AdaptivePartitionPolicy : public InjectionPolicy
{
  public:
    std::string name() const override { return "cache.adaptive"; }
    bool injectsToLlc() const override { return true; }
    bool partitioned() const override { return true; }
    void init(Llc &llc) override;
    unsigned ioCap(std::size_t gset) const override;
    bool ioCapUniform() const override { return false; }
    void onAccess(Llc &llc, std::size_t gset, Cycles now) override;
    bool wantsOnAccess() const override { return true; }

  private:
    /** Adaptive bookkeeping, one per set. */
    struct PartState
    {
        std::uint8_t ioLines;
        Cycles periodStart = 0;
        Cycles lastUpdate = 0;
        Cycles presentAcc = 0;
    };

    // Tuning parameters, copied from LlcConfig at init().
    unsigned ways_ = 0;
    unsigned ioLinesMin_ = 1;
    unsigned ioLinesMax_ = 3;
    Cycles adaptPeriod_ = 0;
    Cycles tHigh_ = 0;
    Cycles tLow_ = 0;

    std::vector<PartState> part_;

    /** Apply one adaptation-period boundary decision to @p gset. */
    void adapt(Llc &llc, std::size_t gset);

    /** Enforce partition bounds after io_lines changed. */
    void enforce(Llc &llc, std::size_t gset);
};

} // namespace pktchase::cache

#endif // PKTCHASE_CACHE_INJECTION_POLICY_HH
