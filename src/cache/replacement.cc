#include "replacement.hh"


#include "sim/logging.hh"
#include "sim/types.hh"

namespace pktchase::cache
{

// ---------------------------------------------------------------- LRU --

// touch/victim/reset live in the header so the Llc's devirtualized
// fast path can inline them.

void
LruPolicy::panicEmptyMask()
{
    panic("LruPolicy::victim with empty candidate mask");
}

// ---------------------------------------------------------- Tree-PLRU --

TreePlruPolicy::TreePlruPolicy(std::size_t sets, unsigned ways)
    : ways_(ways), treeWays_(static_cast<unsigned>(bitCeil64(ways))),
      bits_(sets * (static_cast<unsigned>(bitCeil64(ways)) - 1), 0)
{
}

bool
TreePlruPolicy::anyCandidate(WayMask mask, unsigned lo, unsigned hi) const
{
    for (unsigned w = lo; w < hi && w < ways_; ++w)
        if (mask & (WayMask(1) << w))
            return true;
    return false;
}

void
TreePlruPolicy::touch(std::size_t set, unsigned way)
{
    // Walk from the root, flipping each node to point away from the
    // touched way.
    std::uint8_t *tree = &bits_[set * (treeWays_ - 1)];
    unsigned node = 0;
    unsigned lo = 0, hi = treeWays_;
    while (hi - lo > 1) {
        const unsigned mid = (lo + hi) / 2;
        const bool right = way >= mid;
        tree[node] = right ? 0 : 1; // 0: victim goes left next time
        node = 2 * node + 1 + (right ? 1 : 0);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
}

unsigned
TreePlruPolicy::victim(std::size_t set, WayMask mask)
{
    if (mask == 0)
        panic("TreePlruPolicy::victim with empty candidate mask");
    std::uint8_t *tree = &bits_[set * (treeWays_ - 1)];
    unsigned node = 0;
    unsigned lo = 0, hi = treeWays_;
    while (hi - lo > 1) {
        const unsigned mid = (lo + hi) / 2;
        bool go_right = tree[node] != 0;
        // Respect the candidate mask: if the preferred subtree holds no
        // candidate, take the other branch.
        if (go_right && !anyCandidate(mask, mid, hi))
            go_right = false;
        else if (!go_right && !anyCandidate(mask, lo, mid))
            go_right = true;
        node = 2 * node + 1 + (go_right ? 1 : 0);
        if (go_right)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

void
TreePlruPolicy::reset(std::size_t, unsigned)
{
    // Tree bits carry no per-line validity; nothing to clear.
}

// ------------------------------------------------------------- Random --

RandomPolicy::RandomPolicy(std::size_t, unsigned, Rng rng)
    : rng_(rng)
{
}

void
RandomPolicy::touch(std::size_t, unsigned)
{
}

unsigned
RandomPolicy::victim(std::size_t, WayMask mask)
{
    if (mask == 0)
        panic("RandomPolicy::victim with empty candidate mask");
    const unsigned count = static_cast<unsigned>(popcount64(mask));
    unsigned pick = static_cast<unsigned>(rng_.nextBounded(count));
    for (unsigned w = 0; ; ++w) {
        if (mask & (WayMask(1) << w)) {
            if (pick == 0)
                return w;
            --pick;
        }
    }
}

void
RandomPolicy::reset(std::size_t, unsigned)
{
}

std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplacementKind kind, std::size_t sets, unsigned ways,
                Rng rng)
{
    switch (kind) {
      case ReplacementKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplacementKind::TreePlru:
        return std::make_unique<TreePlruPolicy>(sets, ways);
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(sets, ways, rng);
    }
    panic("makeReplacement: unknown kind");
}

} // namespace pktchase::cache
