/**
 * @file
 * LLC-side telemetry hook interface.
 *
 * The Llc holds a nullable LlcTelemetry pointer and reports three
 * event kinds to it, tagged with the slice group (= slice index) they
 * occurred in and the access timestamp:
 *
 *  - cpuAccess:    every CPU read/write, with its hit/miss outcome
 *                  (the PMU's LLC-references / LLC-misses pair);
 *  - ioInjection:  every DDIO allocation, flagged when it displaced a
 *                  CPU line (the Packet Chasing leak direction);
 *  - ioLineConflict: a CPU demand fill displaced an I/O line -- the
 *                  signature of PRIME+PROBE priming over the ring
 *                  buffers' eviction sets, the counter the
 *                  ProbeCadence detector autocorrelates.
 *
 * When the pointer is null (the default) the Llc performs no
 * telemetry work at all: same loads, same RNG draws, same statistics
 * -- the golden-trace tests pin that the off-path cost is zero.
 */

#ifndef PKTCHASE_CACHE_TELEMETRY_HH
#define PKTCHASE_CACHE_TELEMETRY_HH

#include "sim/types.hh"

namespace pktchase::cache
{

/** Observer of LLC counter events; see file comment for the contract. */
class LlcTelemetry
{
  public:
    virtual ~LlcTelemetry() = default;

    /** CPU access in slice group @p group; @p hit is the outcome. */
    virtual void cpuAccess(unsigned group, bool hit, Cycles now) = 0;

    /**
     * DDIO allocation in @p group; @p displaced_cpu_line when the fill
     * evicted a CPU line to make room.
     */
    virtual void ioInjection(unsigned group, bool displaced_cpu_line,
                             Cycles now) = 0;

    /** A CPU fill displaced an I/O line in @p group. */
    virtual void ioLineConflict(unsigned group, Cycles now) = 0;
};

} // namespace pktchase::cache

#endif // PKTCHASE_CACHE_TELEMETRY_HH
