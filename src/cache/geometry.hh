/**
 * @file
 * Last-level cache geometry description and address decomposition.
 *
 * Models the Xeon E5-2660 LLC the paper attacks: 20 MB, inclusive,
 * 8 slices x 2048 sets x 20 ways x 64 B blocks (16384 sets total, as
 * Sec. III states). Physical addresses decompose per Fig. 2:
 *
 *   | tag | 11-bit per-slice set index | 6-bit block offset |
 *
 * with the slice chosen by an undocumented hash of the address bits.
 * Page-aligned addresses zero the low six set-index bits, leaving
 * 32 candidate sets per slice -- 256 page-aligned (set, slice) combos,
 * which is the attacker's entire search space in Sec. III-B.
 */

#ifndef PKTCHASE_CACHE_GEOMETRY_HH
#define PKTCHASE_CACHE_GEOMETRY_HH

#include <cstdint>

#include "sim/types.hh"

namespace pktchase::cache
{

/**
 * Static geometry of a sliced, set-associative cache.
 */
struct Geometry
{
    unsigned slices = 8;
    unsigned setsPerSlice = 2048;
    unsigned ways = 20;

    /** Total number of sets across all slices. */
    unsigned totalSets() const { return slices * setsPerSlice; }

    /** Capacity in bytes. */
    Addr
    capacityBytes() const
    {
        return static_cast<Addr>(totalSets()) * ways * blockBytes;
    }

    /** Per-slice set index of a physical address. */
    unsigned
    setIndex(Addr paddr) const
    {
        return static_cast<unsigned>(
            (paddr >> blockShift) & (setsPerSlice - 1));
    }

    /** Tag bits of a physical address (above index + offset). */
    Addr
    tag(Addr paddr) const
    {
        unsigned index_bits = 0;
        for (unsigned s = setsPerSlice; s > 1; s >>= 1)
            ++index_bits;
        return paddr >> (blockShift + index_bits);
    }

    /**
     * Number of distinct per-slice set indices a page-aligned address
     * can map to (32 for 4 KB pages and 2048 sets: the low six index
     * bits are forced to zero).
     */
    unsigned
    pageAlignedSetsPerSlice() const
    {
        return setsPerSlice / static_cast<unsigned>(blocksPerPage);
    }

    /** Total page-aligned (set, slice) combos: 256 in the paper. */
    unsigned
    pageAlignedCombos() const
    {
        return pageAlignedSetsPerSlice() * slices;
    }

    /** Whether a per-slice set index is reachable from a page start. */
    bool
    isPageAlignedSet(unsigned set_index) const
    {
        return (set_index % blocksPerPage) == 0;
    }

    /** The E5-2660 LLC used in the paper's attack testbed (20 MB). */
    static Geometry xeonE52660() { return Geometry{8, 2048, 20}; }

    /** Reduced 11 MB LLC used in the Fig. 14 sensitivity study. */
    static Geometry llc11MB() { return Geometry{8, 1024, 22}; }

    /** Reduced 8 MB LLC used in the Fig. 14 sensitivity study. */
    static Geometry llc8MB() { return Geometry{8, 1024, 16}; }
};

} // namespace pktchase::cache

#endif // PKTCHASE_CACHE_GEOMETRY_HH
