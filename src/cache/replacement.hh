/**
 * @file
 * Per-set replacement policies with masked victim selection.
 *
 * Victim selection takes a candidate-way mask because both DDIO's
 * two-way write-allocation cap and the adaptive partitioning defense
 * (Sec. VII) restrict which ways a fill is allowed to displace. All
 * policies honour the mask; LRU is the default throughout the paper's
 * experiments.
 */

#ifndef PKTCHASE_CACHE_REPLACEMENT_HH
#define PKTCHASE_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hh"

namespace pktchase::cache
{

/** Bitmask over ways; way w is a candidate iff bit w is set. */
using WayMask = std::uint32_t;

/**
 * Abstract replacement policy covering all sets of one cache.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Record a reference to @p way of @p set. */
    virtual void touch(std::size_t set, unsigned way) = 0;

    /**
     * Choose a victim among the candidate ways of @p set.
     * @param set  Global set index.
     * @param mask Candidate ways (must be nonzero).
     * @return The chosen way.
     */
    virtual unsigned victim(std::size_t set, WayMask mask) = 0;

    /** Invalidate bookkeeping for a way (e.g., after an invalidation). */
    virtual void reset(std::size_t set, unsigned way) = 0;

    /** Human-readable policy name. */
    virtual const char *name() const = 0;
};

/**
 * True least-recently-used via per-line timestamps.
 *
 * The class is final and its methods are defined inline: the Llc
 * keeps a concrete LruPolicy pointer next to the abstract one so the
 * per-access touch/victim calls on the default policy devirtualize
 * and inline (they are the hottest calls in the simulator after the
 * event loop).
 */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::size_t sets, unsigned ways)
        : ways_(ways), stamps_(sets * ways, 0)
    {
    }

    void
    touch(std::size_t set, unsigned way) override
    {
        stamps_[set * ways_ + way] = clock_++;
    }

    unsigned
    victim(std::size_t set, WayMask mask) override
    {
        if (mask == 0)
            panicEmptyMask();
        unsigned best_way = 0;
        std::uint64_t best_stamp = ~0ull;
        const std::uint64_t *stamps = &stamps_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            if (!(mask & (WayMask(1) << w)))
                continue;
            const std::uint64_t s = stamps[w];
            if (s < best_stamp) {
                best_stamp = s;
                best_way = w;
            }
        }
        return best_way;
    }

    void
    reset(std::size_t set, unsigned way) override
    {
        stamps_[set * ways_ + way] = 0;
    }

    const char *name() const override { return "lru"; }

  private:
    [[noreturn]] static void panicEmptyMask();

    unsigned ways_;
    std::uint64_t clock_ = 1;
    std::vector<std::uint64_t> stamps_; ///< sets x ways, 0 == never used.
};

/** Tree pseudo-LRU (binary decision tree per set). */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(std::size_t sets, unsigned ways);

    void touch(std::size_t set, unsigned way) override;
    unsigned victim(std::size_t set, WayMask mask) override;
    void reset(std::size_t set, unsigned way) override;
    const char *name() const override { return "tree-plru"; }

  private:
    unsigned ways_;
    unsigned treeWays_;   ///< ways_ rounded up to a power of two.
    std::vector<std::uint8_t> bits_; ///< sets x (treeWays_ - 1) tree bits.

    /** Whether any candidate way lies in [lo, hi) intersected with mask. */
    bool anyCandidate(WayMask mask, unsigned lo, unsigned hi) const;
};

/** Uniform random victim among candidates. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::size_t sets, unsigned ways, Rng rng);

    void touch(std::size_t set, unsigned way) override;
    unsigned victim(std::size_t set, WayMask mask) override;
    void reset(std::size_t set, unsigned way) override;
    const char *name() const override { return "random"; }

  private:
    Rng rng_;
};

/** Supported policy kinds for configuration. */
enum class ReplacementKind
{
    Lru,
    TreePlru,
    Random,
};

/** Factory for a policy covering @p sets sets of @p ways ways. */
std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplacementKind kind, std::size_t sets, unsigned ways,
                Rng rng);

} // namespace pktchase::cache

#endif // PKTCHASE_CACHE_REPLACEMENT_HH
