/**
 * @file
 * Memory hierarchy facade: latency model over the LLC plus the two DMA
 * injection paths (DDIO and memory-first).
 *
 * The attacker's PRIME+PROBE loads are modelled as reaching the LLC
 * directly (Mastik's probe loops are constructed to defeat L1/L2 with
 * pointer chasing), so the timing signal is "LLC hit latency" vs.
 * "DRAM latency" plus measurement noise. Noise has two components:
 * Gaussian jitter on every measurement and occasional large outliers
 * (interrupts, TLB walks), both configurable so experiments can sweep
 * the noise floor.
 */

#ifndef PKTCHASE_CACHE_HIERARCHY_HH
#define PKTCHASE_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>

#include "cache/llc.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace pktchase::cache
{

/** Latency and noise parameters for the hierarchy. */
struct HierarchyConfig
{
    Cycles llcHitLatency = 44;    ///< LLC hit, cross-slice average.
    Cycles dramLatency = 220;     ///< LLC miss serviced by DRAM.
    double timerNoiseSigma = 4.0; ///< Gaussian jitter on measurements.

    /**
     * Per-access probability of a large measurement outlier (timer
     * interrupt, TLB walk). The spy issues tens of millions of loads
     * per second, so this must be calibrated against an event rate,
     * not a fraction: 2e-6 at ~60M loads/s is roughly 120 spikes/s,
     * matching a quiet pinned core.
     */
    double outlierProb = 2e-6;
    Cycles outlierCycles = 3000;  ///< Magnitude of such a spike.
    std::uint64_t seed = 7;
};

/** Aggregate DMA-side traffic counters (non-LLC path). */
struct DmaStats
{
    std::uint64_t ddioBlocks = 0;     ///< Blocks injected via DDIO.
    std::uint64_t memWriteBlocks = 0; ///< Blocks written straight to DRAM.
};

/**
 * Facade combining the LLC, a flat DRAM latency, and the I/O paths.
 */
class Hierarchy
{
  public:
    /**
     * @param llc_cfg  LLC configuration.
     * @param cfg      Latency/noise configuration.
     * @param hash     Slice hash (owned).
     * @param policy   DMA injection policy (owned by the LLC); nullptr
     *                 means the DDIO baseline.
     */
    Hierarchy(const LlcConfig &llc_cfg, const HierarchyConfig &cfg,
              std::unique_ptr<SliceHash> hash,
              std::unique_ptr<InjectionPolicy> policy = nullptr);

    /**
     * Timed CPU read as the attacker measures it.
     * @return The measured latency in cycles (includes noise).
     */
    Cycles timedRead(Addr paddr, Cycles now);

    /** Untimed CPU read (victim/driver activity). @return true on hit. */
    bool cpuRead(Addr paddr, Cycles now);

    /** Untimed CPU write. @return true on hit. */
    bool cpuWrite(Addr paddr, Cycles now);

    /**
     * NIC DMA write of @p bytes starting at @p paddr. With DDIO the
     * blocks are injected into the LLC (dirty); without, they are
     * written to memory and any cached copies invalidated.
     */
    void dmaWrite(Addr paddr, Addr bytes, Cycles now);

    /** Whether DDIO injection is active (the policy injects to LLC). */
    bool ddioEnabled() const
    {
        return llc_->injectionPolicy().injectsToLlc();
    }

    /** Total memory read traffic in blocks (fills). */
    std::uint64_t memReadBlocks() const;

    /** Total memory write traffic in blocks (writebacks + DMA). */
    std::uint64_t memWriteBlocks() const;

    Llc &llc() { return *llc_; }
    const Llc &llc() const { return *llc_; }
    const DmaStats &dmaStats() const { return dma_; }
    const HierarchyConfig &config() const { return cfg_; }

  private:
    HierarchyConfig cfg_;
    std::unique_ptr<Llc> llc_;
    DmaStats dma_;
    Rng rng_;
};

} // namespace pktchase::cache

#endif // PKTCHASE_CACHE_HIERARCHY_HH
