#include "slice_hash.hh"


#include "sim/logging.hh"

namespace pktchase::cache
{

XorFoldSliceHash::XorFoldSliceHash(std::vector<Addr> masks)
    : masks_(std::move(masks))
{
    if (masks_.empty() || masks_.size() > 3)
        fatal("XorFoldSliceHash supports 1..3 output bits");
}

namespace
{

/** Build a mask from a list of physical address bit positions. */
Addr
maskOfBits(std::initializer_list<unsigned> bits)
{
    Addr m = 0;
    for (unsigned b : bits)
        m |= Addr(1) << b;
    return m;
}

} // namespace

std::unique_ptr<XorFoldSliceHash>
XorFoldSliceHash::sandyBridgeEP8()
{
    // Bit positions follow the structure of the reverse-engineered
    // Maurice et al. functions for 8-slice parts: three parity outputs
    // over overlapping sets of bits from 6 (the first bit above the
    // block offset) up through bit 34.
    const Addr o0 = maskOfBits({6, 10, 12, 14, 16, 17, 18, 20, 22, 24,
                                25, 26, 27, 28, 30, 32, 33});
    const Addr o1 = maskOfBits({7, 11, 13, 15, 17, 19, 20, 21, 22, 23,
                                24, 26, 28, 29, 31, 33, 34});
    const Addr o2 = maskOfBits({8, 12, 16, 17, 18, 19, 22, 23, 25, 26,
                                27, 30, 31, 32, 34});
    return std::make_unique<XorFoldSliceHash>(
        std::vector<Addr>{o0, o1, o2});
}

std::unique_ptr<XorFoldSliceHash>
XorFoldSliceHash::fourSlice()
{
    const Addr o0 = maskOfBits({6, 10, 12, 14, 16, 17, 18, 20, 22, 24,
                                25, 26, 27, 28, 30, 32, 33});
    const Addr o1 = maskOfBits({7, 11, 13, 15, 17, 19, 20, 21, 22, 23,
                                24, 26, 28, 29, 31, 33, 34});
    return std::make_unique<XorFoldSliceHash>(std::vector<Addr>{o0, o1});
}

std::unique_ptr<XorFoldSliceHash>
XorFoldSliceHash::twoSlice()
{
    const Addr o0 = maskOfBits({6, 10, 12, 14, 16, 17, 18, 20, 22, 24,
                                25, 26, 27, 28, 30, 32, 33});
    return std::make_unique<XorFoldSliceHash>(std::vector<Addr>{o0});
}

IdentitySliceHash::IdentitySliceHash(unsigned n_slices, unsigned shift)
    : nSlices_(n_slices), shift_(shift)
{
    if (n_slices == 0 || (n_slices & (n_slices - 1)) != 0)
        fatal("IdentitySliceHash requires a power-of-two slice count");
}

unsigned
IdentitySliceHash::slice(Addr paddr) const
{
    return static_cast<unsigned>((paddr >> shift_) & (nSlices_ - 1));
}

} // namespace pktchase::cache
