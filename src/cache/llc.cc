#include "llc.hh"

#include <algorithm>

#include "obs/stats.hh"
#include "sim/logging.hh"

namespace pktchase::cache
{

Llc::Llc(const LlcConfig &cfg, std::unique_ptr<SliceHash> hash,
         std::unique_ptr<InjectionPolicy> policy)
    : cfg_(cfg), hash_(std::move(hash)),
      policy_(policy ? std::move(policy)
                     : std::make_unique<DdioPolicy>())
{
    if (!hash_)
        fatal("Llc requires a slice hash");
    if (hash_->slices() != cfg_.geom.slices)
        fatal("Llc: slice hash width does not match geometry");
    if (cfg_.geom.ways > 32)
        fatal("Llc: way masks support at most 32 ways");
    if (cfg_.ddioWays == 0 || cfg_.ddioWays > cfg_.geom.ways)
        fatal("Llc: ddioWays out of range");

    const std::size_t sets = cfg_.geom.totalSets();
    lines_.assign(sets * cfg_.geom.ways, Line{});
    repl_ = makeReplacement(cfg_.replacement, sets, cfg_.geom.ways,
                            Rng(cfg_.seed));
    policy_->init(*this);
    partitioned_ = policy_->partitioned();
}

Llc::Line &
Llc::line(std::size_t gset, unsigned way)
{
    return lines_[gset * cfg_.geom.ways + way];
}

const Llc::Line &
Llc::line(std::size_t gset, unsigned way) const
{
    return lines_[gset * cfg_.geom.ways + way];
}

int
Llc::findWay(std::size_t gset, Addr block) const
{
    for (unsigned w = 0; w < cfg_.geom.ways; ++w) {
        const Line &l = line(gset, w);
        if (l.valid && l.block == block)
            return static_cast<int>(w);
    }
    return -1;
}

int
Llc::findInvalid(std::size_t gset) const
{
    for (unsigned w = 0; w < cfg_.geom.ways; ++w)
        if (!line(gset, w).valid)
            return static_cast<int>(w);
    return -1;
}

WayMask
Llc::kindMask(std::size_t gset, bool want_io) const
{
    WayMask mask = 0;
    for (unsigned w = 0; w < cfg_.geom.ways; ++w) {
        const Line &l = line(gset, w);
        if (l.valid && l.isIo == want_io)
            mask |= WayMask(1) << w;
    }
    return mask;
}

unsigned
Llc::validCount(std::size_t gset) const
{
    unsigned n = 0;
    for (unsigned w = 0; w < cfg_.geom.ways; ++w)
        if (line(gset, w).valid)
            ++n;
    return n;
}

unsigned
Llc::ioCount(std::size_t gset) const
{
    unsigned n = 0;
    for (unsigned w = 0; w < cfg_.geom.ways; ++w) {
        const Line &l = line(gset, w);
        if (l.valid && l.isIo)
            ++n;
    }
    return n;
}

unsigned
Llc::ioPartitionSize(std::size_t gset) const
{
    return policy_->ioCap(gset);
}

void
Llc::evict(std::size_t gset, unsigned way, bool filler_is_io)
{
    Line &l = line(gset, way);
    if (!l.valid)
        panic("Llc::evict of invalid way");
    if (l.dirty)
        ++stats_.writebacks;
    if (l.isIo) {
        if (filler_is_io)
            ++stats_.ioEvictedByIo;
        else
            ++stats_.ioEvictedByCpu;
    } else {
        if (filler_is_io)
            ++stats_.cpuEvictedByIo;
        else
            ++stats_.cpuEvictedByCpu;
    }
    l.valid = false;
    l.dirty = false;
    repl_->reset(gset, way);
}

void
Llc::partitionDrop(std::size_t gset, bool io_side)
{
    const WayMask mask = kindMask(gset, io_side);
    if (mask == 0)
        panic("Llc::partitionDrop: no line of the requested kind");
    const unsigned w = repl_->victim(gset, mask);
    Line &l = line(gset, w);
    if (l.dirty)
        ++stats_.writebacks;
    l.valid = false;
    l.dirty = false;
    repl_->reset(gset, w);
    ++stats_.partitionInvalidations;
}

unsigned
Llc::cpuFill(std::size_t gset, Addr block, bool dirty)
{
    ++stats_.memReads;
    int way = -1;

    if (partitioned_) {
        const unsigned cpu_quota =
            cfg_.geom.ways - policy_->ioCap(gset);
        const WayMask cpu_mask = kindMask(gset, false);
        const auto cpu_count =
            static_cast<unsigned>(popcount64(cpu_mask));
        if (cpu_count >= cpu_quota) {
            // Partition full: displace another CPU line, never I/O.
            way = static_cast<int>(repl_->victim(gset, cpu_mask));
            evict(gset, static_cast<unsigned>(way), false);
        } else {
            way = findInvalid(gset);
            if (way < 0) {
                // All ways valid yet CPU under quota: the I/O side is
                // over its bound (cannot happen if enforcement ran).
                panic("Llc::cpuFill: partition accounting broken");
            }
        }
    } else {
        way = findInvalid(gset);
        if (way < 0) {
            const WayMask all =
                (cfg_.geom.ways >= 32) ? ~WayMask(0)
                : ((WayMask(1) << cfg_.geom.ways) - 1);
            way = static_cast<int>(repl_->victim(gset, all));
            evict(gset, static_cast<unsigned>(way), false);
        }
    }

    Line &l = line(gset, static_cast<unsigned>(way));
    l.block = block;
    l.valid = true;
    l.dirty = dirty;
    l.isIo = false;
    repl_->touch(gset, static_cast<unsigned>(way));
    return static_cast<unsigned>(way);
}

void
Llc::ioFill(std::size_t gset, Addr block)
{
    ++stats_.ioAllocations;
    obs::bump(obs::Stat::LlcMisses);
    const unsigned cap = policy_->ioCap(gset);
    const WayMask io_mask = kindMask(gset, true);
    const auto io_count = static_cast<unsigned>(popcount64(io_mask));

    int way = -1;
    if (io_count >= cap) {
        // DDIO cap (or partition bound) reached: recycle an I/O line.
        way = static_cast<int>(repl_->victim(gset, io_mask));
        evict(gset, static_cast<unsigned>(way), true);
    } else if (partitioned_) {
        // Defense: the partition guarantees a free slot for I/O.
        way = findInvalid(gset);
        if (way < 0)
            panic("Llc::ioFill: partition accounting broken");
    } else {
        // Baseline DDIO: take an invalid way if available, otherwise
        // displace whatever the policy picks -- including CPU lines.
        // This is the eviction the spy observes.
        way = findInvalid(gset);
        if (way < 0) {
            const WayMask all =
                (cfg_.geom.ways >= 32) ? ~WayMask(0)
                : ((WayMask(1) << cfg_.geom.ways) - 1);
            way = static_cast<int>(repl_->victim(gset, all));
            evict(gset, static_cast<unsigned>(way), true);
        }
    }

    Line &l = line(gset, static_cast<unsigned>(way));
    l.block = block;
    l.valid = true;
    l.dirty = true;  // DDIO lines are written back only on eviction.
    l.isIo = true;
    repl_->touch(gset, static_cast<unsigned>(way));
}

void
Llc::cpuMissFill(std::size_t gset, Addr block, bool dirty, Cycles now)
{
    obs::bump(obs::Stat::LlcMisses);
    const std::uint64_t conflicts0 = stats_.ioEvictedByCpu;
    cpuFill(gset, block, dirty);
    if (telem_) {
        telem_->cpuAccess(sliceOf(gset), false, now);
        if (stats_.ioEvictedByCpu != conflicts0)
            telem_->ioLineConflict(sliceOf(gset), now);
    }
}

bool
Llc::cpuRead(Addr paddr, Cycles now)
{
    ++stats_.cpuReads;
    obs::bump(obs::Stat::LlcAccesses);
    const Addr block = paddr >> blockShift;
    const std::size_t gset = globalSet(paddr);
    policy_->onAccess(*this, gset, now);

    const int way = findWay(gset, block);
    if (way >= 0) {
        repl_->touch(gset, static_cast<unsigned>(way));
        if (telem_)
            telem_->cpuAccess(sliceOf(gset), true, now);
        return true;
    }
    ++stats_.cpuReadMisses;
    cpuMissFill(gset, block, false, now);
    return false;
}

bool
Llc::cpuWrite(Addr paddr, Cycles now)
{
    ++stats_.cpuWrites;
    obs::bump(obs::Stat::LlcAccesses);
    const Addr block = paddr >> blockShift;
    const std::size_t gset = globalSet(paddr);
    policy_->onAccess(*this, gset, now);

    const int way = findWay(gset, block);
    if (way >= 0) {
        Line &l = line(gset, static_cast<unsigned>(way));
        if (l.isIo && partitioned_) {
            // Defense: ownership may not silently flip -- that would
            // leave the CPU side over quota and the I/O side under-
            // counted. Move the line across the boundary properly:
            // drop the I/O copy and refill as a CPU line (with a CPU-
            // partition eviction if the quota is full).
            if (l.dirty)
                ++stats_.writebacks;
            l.valid = false;
            l.dirty = false;
            repl_->reset(gset, static_cast<unsigned>(way));
            ++stats_.invalidations;
            cpuFill(gset, block, true);
            --stats_.memReads; // on-chip move, not a demand fill
            if (telem_)
                telem_->cpuAccess(sliceOf(gset), true, now);
            return true;
        }
        l.dirty = true;
        // A CPU write to a DDIO line takes ownership (the driver copied
        // or consumed the packet); it is no longer an I/O line.
        l.isIo = false;
        repl_->touch(gset, static_cast<unsigned>(way));
        if (telem_)
            telem_->cpuAccess(sliceOf(gset), true, now);
        return true;
    }
    ++stats_.cpuWriteMisses;
    cpuMissFill(gset, block, true, now);
    return false;
}

void
Llc::ioWrite(Addr paddr, Cycles now)
{
    ++stats_.ioWrites;
    obs::bump(obs::Stat::LlcAccesses);
    const Addr block = paddr >> blockShift;
    const std::size_t gset = globalSet(paddr);
    policy_->onAccess(*this, gset, now);

    const std::uint64_t allocs0 = stats_.ioAllocations;
    const std::uint64_t displaced0 = stats_.cpuEvictedByIo;

    const int way = findWay(gset, block);
    if (way >= 0) {
        Line &l = line(gset, static_cast<unsigned>(way));
        if (!l.isIo && partitioned_) {
            // Defense: DMA may not silently convert a CPU line into an
            // I/O line (that would grow the I/O side past its bound).
            // Invalidate the stale copy and allocate in the partition.
            ++stats_.invalidations;
            l.valid = false;
            l.dirty = false;
            repl_->reset(gset, static_cast<unsigned>(way));
            ioFill(gset, block);
        } else {
            ++stats_.ioWriteHits;
            l.dirty = true;
            l.isIo = true;
            repl_->touch(gset, static_cast<unsigned>(way));
        }
        if (telem_ && stats_.ioAllocations != allocs0) {
            telem_->ioInjection(sliceOf(gset),
                                stats_.cpuEvictedByIo != displaced0,
                                now);
        }
        return;
    }
    ioFill(gset, block);
    if (telem_) {
        telem_->ioInjection(sliceOf(gset),
                            stats_.cpuEvictedByIo != displaced0, now);
    }
}

void
Llc::invalidateBlock(Addr paddr)
{
    const Addr block = paddr >> blockShift;
    const std::size_t gset = globalSet(paddr);
    const int way = findWay(gset, block);
    if (way < 0)
        return;
    Line &l = line(gset, static_cast<unsigned>(way));
    // The DMA engine just overwrote memory; the cached copy is stale,
    // so it is dropped without writeback.
    l.valid = false;
    l.dirty = false;
    repl_->reset(gset, static_cast<unsigned>(way));
    ++stats_.invalidations;
}

bool
Llc::contains(Addr paddr) const
{
    return findWay(globalSet(paddr), paddr >> blockShift) >= 0;
}

bool
Llc::containsIoLine(Addr paddr) const
{
    const std::size_t gset = globalSet(paddr);
    const int way = findWay(gset, paddr >> blockShift);
    return way >= 0 && line(gset, static_cast<unsigned>(way)).isIo;
}

void
Llc::flushAll()
{
    for (std::size_t gset = 0; gset < cfg_.geom.totalSets(); ++gset) {
        for (unsigned w = 0; w < cfg_.geom.ways; ++w) {
            Line &l = line(gset, w);
            if (l.valid && l.dirty)
                ++stats_.writebacks;
            l.valid = false;
            l.dirty = false;
            l.isIo = false;
            repl_->reset(gset, w);
        }
    }
}

} // namespace pktchase::cache
