#include "llc.hh"

#include <algorithm>

#include "obs/stats.hh"
#include "sim/logging.hh"

namespace pktchase::cache
{

Llc::Llc(const LlcConfig &cfg, std::unique_ptr<SliceHash> hash,
         std::unique_ptr<InjectionPolicy> policy)
    : cfg_(cfg), hash_(std::move(hash)),
      policy_(policy ? std::move(policy)
                     : std::make_unique<DdioPolicy>())
{
    if (!hash_)
        fatal("Llc requires a slice hash");
    if (hash_->slices() != cfg_.geom.slices)
        fatal("Llc: slice hash width does not match geometry");
    if (cfg_.geom.ways > 32)
        fatal("Llc: way masks support at most 32 ways");
    if (cfg_.ddioWays == 0 || cfg_.ddioWays > cfg_.geom.ways)
        fatal("Llc: ddioWays out of range");

    const std::size_t sets = cfg_.geom.totalSets();
    tags_.assign(sets * cfg_.geom.ways, 0);
    meta_.assign(sets * cfg_.geom.ways, 0);
    repl_ = makeReplacement(cfg_.replacement, sets, cfg_.geom.ways,
                            Rng(cfg_.seed));
    policy_->init(*this);
    partitioned_ = policy_->partitioned();
    wantsOnAccess_ = policy_->wantsOnAccess();
    ioCapUniform_ = policy_->ioCapUniform();
    if (ioCapUniform_)
        uniformIoCap_ = policy_->ioCap(0);

    // Concrete-type fast paths for the default configuration.
    xorHash_ = dynamic_cast<const XorFoldSliceHash *>(hash_.get());
    lru_ = dynamic_cast<LruPolicy *>(repl_.get());
}

int
Llc::findWay(std::size_t gset, Addr block) const
{
    const std::size_t base = gset * cfg_.geom.ways;
    const Addr *tags = &tags_[base];
    const std::uint8_t *meta = &meta_[base];
    for (unsigned w = 0; w < cfg_.geom.ways; ++w) {
        if ((meta[w] & kValid) && tags[w] == block)
            return static_cast<int>(w);
    }
    return -1;
}

int
Llc::findInvalid(std::size_t gset) const
{
    const std::uint8_t *meta = &meta_[gset * cfg_.geom.ways];
    for (unsigned w = 0; w < cfg_.geom.ways; ++w)
        if (!(meta[w] & kValid))
            return static_cast<int>(w);
    return -1;
}

WayMask
Llc::kindMask(std::size_t gset, bool want_io) const
{
    const std::uint8_t *meta = &meta_[gset * cfg_.geom.ways];
    const std::uint8_t want = want_io ? kIo : 0;
    WayMask mask = 0;
    for (unsigned w = 0; w < cfg_.geom.ways; ++w) {
        if ((meta[w] & kValid) && (meta[w] & kIo) == want)
            mask |= WayMask(1) << w;
    }
    return mask;
}

unsigned
Llc::validCount(std::size_t gset) const
{
    const std::uint8_t *meta = &meta_[gset * cfg_.geom.ways];
    unsigned n = 0;
    for (unsigned w = 0; w < cfg_.geom.ways; ++w)
        if (meta[w] & kValid)
            ++n;
    return n;
}

unsigned
Llc::ioCount(std::size_t gset) const
{
    const std::uint8_t *meta = &meta_[gset * cfg_.geom.ways];
    unsigned n = 0;
    for (unsigned w = 0; w < cfg_.geom.ways; ++w)
        if ((meta[w] & kValid) && (meta[w] & kIo))
            ++n;
    return n;
}

unsigned
Llc::ioPartitionSize(std::size_t gset) const
{
    return policy_->ioCap(gset);
}

void
Llc::evict(std::size_t gset, unsigned way, bool filler_is_io)
{
    std::uint8_t &m = meta_[lineIndex(gset, way)];
    if (!(m & kValid))
        panic("Llc::evict of invalid way");
    if (m & kDirty)
        ++stats_.writebacks;
    if (m & kIo) {
        if (filler_is_io)
            ++stats_.ioEvictedByIo;
        else
            ++stats_.ioEvictedByCpu;
    } else {
        if (filler_is_io)
            ++stats_.cpuEvictedByIo;
        else
            ++stats_.cpuEvictedByCpu;
    }
    m &= static_cast<std::uint8_t>(~(kValid | kDirty));
    replReset(gset, way);
}

void
Llc::partitionDrop(std::size_t gset, bool io_side)
{
    const WayMask mask = kindMask(gset, io_side);
    if (mask == 0)
        panic("Llc::partitionDrop: no line of the requested kind");
    const unsigned w = replVictim(gset, mask);
    std::uint8_t &m = meta_[lineIndex(gset, w)];
    if (m & kDirty)
        ++stats_.writebacks;
    m &= static_cast<std::uint8_t>(~(kValid | kDirty));
    replReset(gset, w);
    ++stats_.partitionInvalidations;
}

unsigned
Llc::cpuFill(std::size_t gset, Addr block, bool dirty)
{
    ++stats_.memReads;
    int way = -1;

    if (partitioned_) {
        const unsigned cpu_quota =
            cfg_.geom.ways - policy_->ioCap(gset);
        const WayMask cpu_mask = kindMask(gset, false);
        const auto cpu_count =
            static_cast<unsigned>(popcount64(cpu_mask));
        if (cpu_count >= cpu_quota) {
            // Partition full: displace another CPU line, never I/O.
            way = static_cast<int>(replVictim(gset, cpu_mask));
            evict(gset, static_cast<unsigned>(way), false);
        } else {
            way = findInvalid(gset);
            if (way < 0) {
                // All ways valid yet CPU under quota: the I/O side is
                // over its bound (cannot happen if enforcement ran).
                panic("Llc::cpuFill: partition accounting broken");
            }
        }
    } else {
        way = findInvalid(gset);
        if (way < 0) {
            const WayMask all =
                (cfg_.geom.ways >= 32) ? ~WayMask(0)
                : ((WayMask(1) << cfg_.geom.ways) - 1);
            way = static_cast<int>(replVictim(gset, all));
            evict(gset, static_cast<unsigned>(way), false);
        }
    }

    const std::size_t idx = lineIndex(gset, static_cast<unsigned>(way));
    tags_[idx] = block;
    meta_[idx] = static_cast<std::uint8_t>(kValid | (dirty ? kDirty : 0));
    replTouch(gset, static_cast<unsigned>(way));
    return static_cast<unsigned>(way);
}

void
Llc::ioFill(std::size_t gset, Addr block)
{
    ++stats_.ioAllocations;
    obs::bump(obs::Stat::LlcMisses);
    const unsigned cap = ioCapOf(gset);
    const WayMask io_mask = kindMask(gset, true);
    const auto io_count = static_cast<unsigned>(popcount64(io_mask));

    int way = -1;
    if (io_count >= cap) {
        // DDIO cap (or partition bound) reached: recycle an I/O line.
        way = static_cast<int>(replVictim(gset, io_mask));
        evict(gset, static_cast<unsigned>(way), true);
    } else if (partitioned_) {
        // Defense: the partition guarantees a free slot for I/O.
        way = findInvalid(gset);
        if (way < 0)
            panic("Llc::ioFill: partition accounting broken");
    } else {
        // Baseline DDIO: take an invalid way if available, otherwise
        // displace whatever the policy picks -- including CPU lines.
        // This is the eviction the spy observes.
        way = findInvalid(gset);
        if (way < 0) {
            const WayMask all =
                (cfg_.geom.ways >= 32) ? ~WayMask(0)
                : ((WayMask(1) << cfg_.geom.ways) - 1);
            way = static_cast<int>(replVictim(gset, all));
            evict(gset, static_cast<unsigned>(way), true);
        }
    }

    const std::size_t idx = lineIndex(gset, static_cast<unsigned>(way));
    tags_[idx] = block;
    // DDIO lines are written back only on eviction.
    meta_[idx] = kValid | kDirty | kIo;
    replTouch(gset, static_cast<unsigned>(way));
}

void
Llc::cpuMissFill(std::size_t gset, Addr block, bool dirty, Cycles now)
{
    obs::bump(obs::Stat::LlcMisses);
    const std::uint64_t conflicts0 = stats_.ioEvictedByCpu;
    cpuFill(gset, block, dirty);
    if (telem_) {
        telem_->cpuAccess(sliceOf(gset), false, now);
        if (stats_.ioEvictedByCpu != conflicts0)
            telem_->ioLineConflict(sliceOf(gset), now);
    }
}

bool
Llc::cpuRead(Addr paddr, Cycles now)
{
    ++stats_.cpuReads;
    obs::bump(obs::Stat::LlcAccesses);
    const Addr block = paddr >> blockShift;
    const std::size_t gset = globalSet(paddr);
    if (wantsOnAccess_)
        policy_->onAccess(*this, gset, now);

    const int way = findWay(gset, block);
    if (way >= 0) {
        replTouch(gset, static_cast<unsigned>(way));
        if (telem_)
            telem_->cpuAccess(sliceOf(gset), true, now);
        return true;
    }
    ++stats_.cpuReadMisses;
    cpuMissFill(gset, block, false, now);
    return false;
}

bool
Llc::cpuWrite(Addr paddr, Cycles now)
{
    ++stats_.cpuWrites;
    obs::bump(obs::Stat::LlcAccesses);
    const Addr block = paddr >> blockShift;
    const std::size_t gset = globalSet(paddr);
    if (wantsOnAccess_)
        policy_->onAccess(*this, gset, now);

    const int way = findWay(gset, block);
    if (way >= 0) {
        std::uint8_t &m = meta_[lineIndex(gset,
                                          static_cast<unsigned>(way))];
        if ((m & kIo) && partitioned_) {
            // Defense: ownership may not silently flip -- that would
            // leave the CPU side over quota and the I/O side under-
            // counted. Move the line across the boundary properly:
            // drop the I/O copy and refill as a CPU line (with a CPU-
            // partition eviction if the quota is full).
            if (m & kDirty)
                ++stats_.writebacks;
            m &= static_cast<std::uint8_t>(~(kValid | kDirty));
            replReset(gset, static_cast<unsigned>(way));
            ++stats_.invalidations;
            cpuFill(gset, block, true);
            --stats_.memReads; // on-chip move, not a demand fill
            if (telem_)
                telem_->cpuAccess(sliceOf(gset), true, now);
            return true;
        }
        // A CPU write to a DDIO line takes ownership (the driver copied
        // or consumed the packet); it is no longer an I/O line.
        m = static_cast<std::uint8_t>((m | kDirty) & ~kIo);
        replTouch(gset, static_cast<unsigned>(way));
        if (telem_)
            telem_->cpuAccess(sliceOf(gset), true, now);
        return true;
    }
    ++stats_.cpuWriteMisses;
    cpuMissFill(gset, block, true, now);
    return false;
}

void
Llc::ioWrite(Addr paddr, Cycles now)
{
    ++stats_.ioWrites;
    obs::bump(obs::Stat::LlcAccesses);
    const Addr block = paddr >> blockShift;
    const std::size_t gset = globalSet(paddr);
    if (wantsOnAccess_)
        policy_->onAccess(*this, gset, now);

    const std::uint64_t allocs0 = stats_.ioAllocations;
    const std::uint64_t displaced0 = stats_.cpuEvictedByIo;

    const int way = findWay(gset, block);
    if (way >= 0) {
        std::uint8_t &m = meta_[lineIndex(gset,
                                          static_cast<unsigned>(way))];
        if (!(m & kIo) && partitioned_) {
            // Defense: DMA may not silently convert a CPU line into an
            // I/O line (that would grow the I/O side past its bound).
            // Invalidate the stale copy and allocate in the partition.
            ++stats_.invalidations;
            m &= static_cast<std::uint8_t>(~(kValid | kDirty));
            replReset(gset, static_cast<unsigned>(way));
            ioFill(gset, block);
        } else {
            ++stats_.ioWriteHits;
            m |= kDirty | kIo;
            replTouch(gset, static_cast<unsigned>(way));
        }
        if (telem_ && stats_.ioAllocations != allocs0) {
            telem_->ioInjection(sliceOf(gset),
                                stats_.cpuEvictedByIo != displaced0,
                                now);
        }
        return;
    }
    ioFill(gset, block);
    if (telem_) {
        telem_->ioInjection(sliceOf(gset),
                            stats_.cpuEvictedByIo != displaced0, now);
    }
}

void
Llc::invalidateBlock(Addr paddr)
{
    const Addr block = paddr >> blockShift;
    const std::size_t gset = globalSet(paddr);
    const int way = findWay(gset, block);
    if (way < 0)
        return;
    // The DMA engine just overwrote memory; the cached copy is stale,
    // so it is dropped without writeback.
    meta_[lineIndex(gset, static_cast<unsigned>(way))] &=
        static_cast<std::uint8_t>(~(kValid | kDirty));
    replReset(gset, static_cast<unsigned>(way));
    ++stats_.invalidations;
}

bool
Llc::contains(Addr paddr) const
{
    return findWay(globalSet(paddr), paddr >> blockShift) >= 0;
}

bool
Llc::containsIoLine(Addr paddr) const
{
    const std::size_t gset = globalSet(paddr);
    const int way = findWay(gset, paddr >> blockShift);
    return way >= 0 &&
        (meta_[lineIndex(gset, static_cast<unsigned>(way))] & kIo) != 0;
}

void
Llc::flushAll()
{
    for (std::size_t gset = 0; gset < cfg_.geom.totalSets(); ++gset) {
        for (unsigned w = 0; w < cfg_.geom.ways; ++w) {
            std::uint8_t &m = meta_[lineIndex(gset, w)];
            if ((m & kValid) && (m & kDirty))
                ++stats_.writebacks;
            m = 0;
            replReset(gset, w);
        }
    }
}

} // namespace pktchase::cache
