#include "hierarchy.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace pktchase::cache
{

Hierarchy::Hierarchy(const LlcConfig &llc_cfg, const HierarchyConfig &cfg,
                     std::unique_ptr<SliceHash> hash,
                     std::unique_ptr<InjectionPolicy> policy)
    : cfg_(cfg),
      llc_(std::make_unique<Llc>(llc_cfg, std::move(hash),
                                 std::move(policy))),
      rng_(cfg.seed)
{
}

Cycles
Hierarchy::timedRead(Addr paddr, Cycles now)
{
    const bool hit = llc_->cpuRead(paddr, now);
    double lat = hit ? static_cast<double>(cfg_.llcHitLatency)
                     : static_cast<double>(cfg_.dramLatency);
    lat += rng_.nextGaussian(0.0, cfg_.timerNoiseSigma);
    if (rng_.nextBool(cfg_.outlierProb))
        lat += static_cast<double>(cfg_.outlierCycles);
    lat = std::max(lat, 1.0);
    return static_cast<Cycles>(lat);
}

bool
Hierarchy::cpuRead(Addr paddr, Cycles now)
{
    return llc_->cpuRead(paddr, now);
}

bool
Hierarchy::cpuWrite(Addr paddr, Cycles now)
{
    return llc_->cpuWrite(paddr, now);
}

void
Hierarchy::dmaWrite(Addr paddr, Addr bytes, Cycles now)
{
    if (bytes == 0)
        return;
    const Addr first = paddr & ~(blockBytes - 1);
    const Addr last = (paddr + bytes - 1) & ~(blockBytes - 1);
    const bool ddio = ddioEnabled();
    for (Addr block = first; block <= last; block += blockBytes) {
        if (ddio) {
            llc_->ioWrite(block, now);
            ++dma_.ddioBlocks;
        } else {
            // Memory-first DMA: write DRAM and snoop-invalidate.
            llc_->invalidateBlock(block);
            ++dma_.memWriteBlocks;
        }
    }
}

std::uint64_t
Hierarchy::memReadBlocks() const
{
    return llc_->stats().memReads;
}

std::uint64_t
Hierarchy::memWriteBlocks() const
{
    return llc_->stats().writebacks + dma_.memWriteBlocks;
}

} // namespace pktchase::cache
