#include "injection_policy.hh"

#include <algorithm>

#include "cache/llc.hh"
#include "sim/logging.hh"

namespace pktchase::cache
{

void
NoDdioPolicy::init(Llc &llc)
{
    cap_ = llc.config().ddioWays;
}

void
DdioPolicy::init(Llc &llc)
{
    cap_ = llc.config().ddioWays;
}

DdioWaysPolicy::DdioWaysPolicy(unsigned ways)
    : ways_(ways)
{
    if (ways_ == 0)
        fatal("DdioWaysPolicy: ddio-ways must be nonzero");
}

std::string
DdioWaysPolicy::name() const
{
    return "cache.ddio-ways:" + std::to_string(ways_);
}

void
DdioWaysPolicy::init(Llc &llc)
{
    if (ways_ > llc.geometry().ways)
        fatal("DdioWaysPolicy: ddio-ways exceeds the set's ways");
}

void
AdaptivePartitionPolicy::init(Llc &llc)
{
    const LlcConfig &cfg = llc.config();
    if (cfg.ioLinesMin == 0 || cfg.ioLinesMin > cfg.ioLinesMax ||
        cfg.ioLinesMax >= cfg.geom.ways) {
        fatal("Llc: bad adaptive partition bounds");
    }
    if (cfg.ioLinesInit < cfg.ioLinesMin ||
        cfg.ioLinesInit > cfg.ioLinesMax) {
        fatal("Llc: ioLinesInit outside [min, max]");
    }
    if (cfg.adaptPeriod == 0)
        fatal("Llc: adaptPeriod must be nonzero");

    ways_ = cfg.geom.ways;
    ioLinesMin_ = cfg.ioLinesMin;
    ioLinesMax_ = cfg.ioLinesMax;
    adaptPeriod_ = cfg.adaptPeriod;
    tHigh_ = cfg.tHigh;
    tLow_ = cfg.tLow;
    part_.assign(cfg.geom.totalSets(), PartState{
        static_cast<std::uint8_t>(cfg.ioLinesInit), 0, 0, 0});
}

unsigned
AdaptivePartitionPolicy::ioCap(std::size_t gset) const
{
    return part_[gset].ioLines;
}

void
AdaptivePartitionPolicy::adapt(Llc &llc, std::size_t gset)
{
    PartState &ps = part_[gset];
    llc.notePartitionAdaptation();
    const unsigned old_lines = ps.ioLines;
    if (ps.presentAcc > tHigh_) {
        ps.ioLines = static_cast<std::uint8_t>(
            std::min<unsigned>(ps.ioLines + 1, ioLinesMax_));
    } else if (ps.presentAcc < tLow_) {
        ps.ioLines = static_cast<std::uint8_t>(
            std::max<unsigned>(ps.ioLines - 1, ioLinesMin_));
    }
    if (ps.ioLines != old_lines)
        enforce(llc, gset);
}

void
AdaptivePartitionPolicy::enforce(Llc &llc, std::size_t gset)
{
    const PartState &ps = part_[gset];
    // Shrink: displace I/O lines beyond the new bound.
    while (llc.ioCount(gset) > ps.ioLines)
        llc.partitionDrop(gset, true);
    // Grow: displace CPU lines past the reduced CPU quota.
    const unsigned cpu_quota = ways_ - ps.ioLines;
    while (llc.validCount(gset) - llc.ioCount(gset) > cpu_quota)
        llc.partitionDrop(gset, false);
}

void
AdaptivePartitionPolicy::onAccess(Llc &llc, std::size_t gset,
                                  Cycles now)
{
    PartState &ps = part_[gset];
    if (now < ps.lastUpdate) {
        // Out-of-order timestamps can occur when distinct agents use
        // loosely synchronized clocks; treat as "no time elapsed".
        return;
    }

    // Between accesses the set's contents are constant, so presence is
    // constant over the catch-up span. The partition size saturates
    // after at most (max - min) same-direction adjustments, after which
    // further idle periods are no-ops and can be skipped in O(1).
    unsigned budget = ioLinesMax_ - ioLinesMin_ + 1;
    while (ps.periodStart + adaptPeriod_ <= now) {
        const Cycles period_end = ps.periodStart + adaptPeriod_;
        const bool present = llc.ioCount(gset) > 0;
        if (present)
            ps.presentAcc += period_end - ps.lastUpdate;
        adapt(llc, gset);
        ps.presentAcc = 0;
        ps.periodStart = period_end;
        ps.lastUpdate = period_end;

        if (budget > 0)
            --budget;
        if (budget == 0) {
            // Partition size has saturated for this (constant) presence
            // level; every further idle period repeats the same decision,
            // so whole periods can be skipped in O(1).
            const Cycles whole =
                (now - ps.periodStart) / adaptPeriod_;
            if (whole > 0) {
                ps.periodStart += whole * adaptPeriod_;
                ps.lastUpdate = ps.periodStart;
            }
        }
    }
    const bool present = llc.ioCount(gset) > 0;
    if (present)
        ps.presentAcc += now - ps.lastUpdate;
    ps.lastUpdate = now;
}

} // namespace pktchase::cache
