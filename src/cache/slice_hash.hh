/**
 * @file
 * Slice-selection hash functions for the sliced LLC.
 *
 * Starting with Sandy Bridge, Intel distributes physical addresses over
 * per-core LLC slices with an unpublished hash (Fig. 2). The hash has
 * been reverse engineered as XOR-folds of physical address bits
 * (Maurice et al., RAID 2015). We implement that family -- a parity of
 * a per-output-bit address mask -- plus a trivial identity hash for
 * ablation (bench_ablation_slice_hash shows the attack does not depend
 * on the complex indexing being simple).
 */

#ifndef PKTCHASE_CACHE_SLICE_HASH_HH
#define PKTCHASE_CACHE_SLICE_HASH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace pktchase::cache
{

/**
 * Abstract slice selector: physical address -> slice id.
 */
class SliceHash
{
  public:
    virtual ~SliceHash() = default;

    /** Slice for a physical address; must be < slices(). */
    virtual unsigned slice(Addr paddr) const = 0;

    /** Number of slices this hash selects among. */
    virtual unsigned slices() const = 0;
};

/**
 * XOR-fold hash in the style of the reverse-engineered Intel functions:
 * output bit i is the parity of (paddr & mask[i]).
 *
 * Final, with slice() defined inline: the Llc keeps a concrete
 * pointer to this type (the hash every standard testbed uses) so the
 * per-access slice computation devirtualizes and inlines.
 */
class XorFoldSliceHash final : public SliceHash
{
  public:
    /**
     * Construct with explicit per-bit masks.
     * @param masks One address mask per output bit (1, 2, or 3 masks
     *              for 2-, 4-, or 8-slice caches).
     */
    explicit XorFoldSliceHash(std::vector<Addr> masks);

    unsigned
    slice(Addr paddr) const override
    {
        unsigned out = 0;
        for (std::size_t i = 0; i < masks_.size(); ++i) {
            const unsigned bit =
                static_cast<unsigned>(popcount64(paddr & masks_[i])) & 1u;
            out |= bit << i;
        }
        return out;
    }

    unsigned slices() const override { return 1u << masks_.size(); }

    /** The published-style masks for an 8-slice Sandy Bridge-EP LLC. */
    static std::unique_ptr<XorFoldSliceHash> sandyBridgeEP8();

    /** 4-slice variant (client parts). */
    static std::unique_ptr<XorFoldSliceHash> fourSlice();

    /** 2-slice variant. */
    static std::unique_ptr<XorFoldSliceHash> twoSlice();

  private:
    std::vector<Addr> masks_;
};

/**
 * Identity hash: slice = low address bits above the set index. Used by
 * ablation benches to contrast against complex indexing.
 */
class IdentitySliceHash : public SliceHash
{
  public:
    /**
     * @param n_slices  Power-of-two slice count.
     * @param shift     Address bit where the slice field starts.
     */
    IdentitySliceHash(unsigned n_slices, unsigned shift);

    unsigned slice(Addr paddr) const override;
    unsigned slices() const override { return nSlices_; }

  private:
    unsigned nSlices_;
    unsigned shift_;
};

} // namespace pktchase::cache

#endif // PKTCHASE_CACHE_SLICE_HASH_HH
