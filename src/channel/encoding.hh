/**
 * @file
 * Symbol encodings for the packet-size covert channel (Sec. IV-b).
 *
 * The trojan encodes one symbol per ring traversal by choosing the
 * frame size of the packets it broadcasts; the spy recovers the symbol
 * from which block rows of the monitored buffer show activity. The
 * second block row (block 1) fires for every packet thanks to the
 * driver's unconditional prefetch, so it serves as the synchronized
 * clock; blocks 2 and 3 carry the data:
 *
 *   binary:   "0" = 64 B (1 block),  "1" = 256 B (4 blocks)
 *   ternary:  "0" = 64 B, "1" = 192 B (3 blocks), "2" = 256 B
 *
 * All sizes stay at or below the 256 B copy-break threshold so the
 * driver never flips page halves and the monitored sets stay fixed.
 */

#ifndef PKTCHASE_CHANNEL_ENCODING_HH
#define PKTCHASE_CHANNEL_ENCODING_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace pktchase::channel
{

/** Supported symbol alphabets. */
enum class Scheme : std::uint8_t
{
    Binary,
    Ternary,
};

/** Number of distinct symbols in a scheme. */
unsigned arity(Scheme scheme);

/** Information content per symbol, in bits. */
double bitsPerSymbol(Scheme scheme);

/** Frame size that encodes @p symbol under @p scheme. */
Addr frameBytes(Scheme scheme, unsigned symbol);

/**
 * Decode block-row activity into a symbol: @p b2 / @p b3 are the
 * activity of the third and fourth blocks (the clock row already
 * fired, or no symbol would be emitted).
 */
unsigned decodeActivity(Scheme scheme, bool b2, bool b3);

/**
 * Map an LFSR bit stream (the paper's 2^15 - 1 pseudo-random test
 * pattern) onto a symbol stream: binary takes bits 1:1, ternary folds
 * consecutive bit pairs mod 3. Error rates are then measured with
 * Levenshtein distance between sent and received symbol streams,
 * following Liu et al.'s methodology.
 */
std::vector<unsigned> bitsToSymbols(Scheme scheme,
                                    const std::vector<unsigned> &bits);

} // namespace pktchase::channel

#endif // PKTCHASE_CHANNEL_ENCODING_HH
