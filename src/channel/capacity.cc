#include "capacity.hh"

#include <algorithm>
#include <cmath>

#include "attack/chasing.hh"
#include "channel/trojan.hh"
#include "net/traffic.hh"
#include "sim/lfsr.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace pktchase::channel
{

namespace
{

/**
 * Self-rescheduling background cache noise: an unrelated process
 * touching random lines of its own working set.
 */
class CacheNoise
{
  public:
    CacheNoise(testbed::Testbed &tb, double rate_hz, unsigned batch,
               std::uint64_t seed)
        : hier_(tb.hier()), rng_(seed), batch_(batch)
    {
        if (rate_hz <= 0.0)
            return;
        space_ = std::make_unique<mem::AddressSpace>(
            tb.phys(), mem::Owner::Victim);
        base_ = space_->mmap(noisePages_);
        interval_ = secondsToCycles(1.0 / rate_hz);
    }

    void
    start(EventQueue &eq, Cycles horizon)
    {
        if (!space_)
            return;
        step_ = [this, &eq, horizon] {
            Cycles t = eq.now();
            for (unsigned i = 0; i < batch_; ++i) {
                const Addr page = rng_.nextBounded(noisePages_);
                const Addr block = rng_.nextBounded(blocksPerPage);
                const Addr vaddr =
                    base_ + page * pageBytes + block * blockBytes;
                t += hier_.timedRead(space_->translate(vaddr), t);
            }
            const Cycles next = eq.now() + interval_;
            if (next <= horizon)
                eq.schedule(next, step_);
        };
        eq.schedule(eq.now() + interval_, step_);
    }

  private:
    static constexpr Addr noisePages_ = 512;
    cache::Hierarchy &hier_;
    Rng rng_;
    unsigned batch_;
    Cycles interval_ = 0;
    std::unique_ptr<mem::AddressSpace> space_;
    Addr base_ = 0;
    std::function<void()> step_;
};

/** Map an observed chasing size class onto a symbol. */
unsigned
symbolFromClass(Scheme scheme, unsigned cls)
{
    if (scheme == Scheme::Binary)
        return cls >= 3 ? 1u : 0u;
    if (cls >= 4)
        return 2u;
    if (cls == 3)
        return 1u;
    return 0u;
}

} // namespace

std::vector<unsigned>
testSymbols(Scheme scheme, std::size_t count, std::size_t offset)
{
    Lfsr lfsr(15, 0x5A5Au & 0x7FFF);
    const std::size_t total = offset + count;
    const std::size_t bits_needed =
        scheme == Scheme::Binary ? total : 2 * total;
    std::vector<unsigned> symbols =
        bitsToSymbols(scheme, lfsr.bits(bits_needed));
    symbols.resize(total);
    symbols.erase(symbols.begin(),
                  symbols.begin() + static_cast<std::ptrdiff_t>(offset));
    return symbols;
}

std::vector<std::size_t>
pickMonitoredBuffers(testbed::Testbed &tb, std::size_t n)
{
    const std::vector<std::size_t> ring = tb.ringComboSequence();
    const std::vector<std::size_t> singles = tb.singleBufferCombos();
    if (n == 0 || n > ring.size())
        fatal("pickMonitoredBuffers: bad buffer count");

    std::vector<bool> is_single(
        tb.config().llc.geom.pageAlignedCombos(), false);
    for (std::size_t c : singles)
        is_single[c] = true;

    std::vector<std::size_t> chosen;
    std::vector<bool> used(ring.size(), false);
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t target = k * ring.size() / n;
        // Search outward from the ideal position for a single-mapped,
        // unused slot.
        for (std::size_t d = 0; d < ring.size(); ++d) {
            const std::size_t fwd = (target + d) % ring.size();
            if (!used[fwd] && is_single[ring[fwd]]) {
                chosen.push_back(ring[fwd]);
                used[fwd] = true;
                break;
            }
        }
    }
    if (chosen.size() != n)
        fatal("pickMonitoredBuffers: not enough single-mapped buffers");
    return chosen;
}

ChannelMeasurement
runCovertChannel(testbed::Testbed &tb, const ChannelRunConfig &cfg)
{
    const std::vector<unsigned> sent = testSymbols(
        cfg.scheme, cfg.nSymbols, cfg.symbolOffset);
    const std::size_t ring = tb.driver().ring().size();
    const std::size_t pps = ring / cfg.monitoredBuffers;

    const std::vector<std::size_t> buffers =
        pickMonitoredBuffers(tb, cfg.monitoredBuffers);

    // Horizon: total wire time of the burst stream plus margin.
    double total_seconds = 0.0;
    for (unsigned s : sent) {
        nic::Frame f;
        f.bytes = frameBytes(cfg.scheme, s);
        const double rate = (cfg.sendRatePps <= 0.0)
            ? net::maxFrameRate(f.bytes) : cfg.sendRatePps;
        total_seconds += static_cast<double>(pps) / rate;
    }
    const Cycles start = tb.eq().now();
    const Cycles horizon = start +
        secondsToCycles(total_seconds * 1.3 + 0.01);

    auto trojan = std::make_unique<TrojanSource>(
        sent, cfg.scheme, pps, cfg.sendRatePps);
    net::TrafficPump pump(tb.eq(), tb.driver(), std::move(trojan),
                          start + 1000, cfg.arrivalJitterSigma,
                          cfg.seed);
    Cycles first_arrival = 0, last_arrival = 0;
    pump.setObserver([&](const nic::Frame &, Cycles when) {
        if (first_arrival == 0)
            first_arrival = when;
        last_arrival = when;
    });

    CacheNoise noise(tb, cfg.cacheNoiseHz, cfg.cacheNoiseBatch,
                     cfg.seed ^ 0x4E01u);
    SpyConfig spy_cfg;
    spy_cfg.probeRateHz = cfg.probeRateHz;
    spy_cfg.probe.ways = tb.config().llc.geom.ways;
    CovertSpy spy(tb.hier(), tb.groups(), buffers, cfg.scheme, spy_cfg);

    noise.start(tb.eq(), horizon);
    const ListenResult listened = spy.listen(tb.eq(), horizon);

    ChannelMeasurement m;
    m.sent = sent.size();
    m.received = listened.events.size();
    m.probeRounds = listened.rounds;
    const std::vector<unsigned> received = listened.symbols();
    m.editDistance = levenshtein(sent, received);
    m.errorRate = sent.empty() ? 0.0
        : static_cast<double>(m.editDistance) /
            static_cast<double>(sent.size());
    m.elapsed = (last_arrival > first_arrival)
        ? last_arrival - first_arrival : 0;
    if (m.elapsed > 0 && sent.size() > 1) {
        const double span = cyclesToSeconds(m.elapsed) *
            static_cast<double>(sent.size()) /
            static_cast<double>(sent.size() - 1);
        m.bandwidthBps = bitsPerSymbol(cfg.scheme) *
            static_cast<double>(sent.size()) / span;
    }
    return m;
}

ChannelMeasurement
runChasingChannel(testbed::Testbed &tb, const ChasingChannelConfig &cfg)
{
    const std::vector<unsigned> sent = testSymbols(
        cfg.scheme, cfg.nSymbols, cfg.symbolOffset);

    // Sequences the spy follows, one per receive queue: ground truth
    // with optional injected transpositions standing in for recovery
    // inaccuracy. One shared perturbation stream keeps the queues:1
    // draw sequence identical to the single-ring model's.
    std::vector<std::vector<std::size_t>> seqs =
        tb.queueComboSequences();
    if (cfg.sequenceErrorRate > 0.0) {
        Rng rng(cfg.seed ^ 0xABCDu);
        for (auto &seq : seqs) {
            for (std::size_t i = 0; i + 1 < seq.size(); ++i)
                if (rng.nextBool(cfg.sequenceErrorRate))
                    std::swap(seq[i], seq[i + 1]);
        }
    }

    const double symbol_rate =
        cfg.targetBandwidthBps / bitsPerSymbol(cfg.scheme);
    const Cycles start = tb.eq().now();
    const Cycles horizon = start + secondsToCycles(
        static_cast<double>(sent.size()) / symbol_rate * 1.2 + 0.005);

    // What the trojan intends to transmit, in order: the reference
    // stream for error accounting (delivery may reorder it).
    std::vector<unsigned> sent_classes;
    sent_classes.reserve(sent.size());
    for (unsigned s : sent) {
        nic::Frame f;
        f.bytes = frameBytes(cfg.scheme, s);
        sent_classes.push_back(symbolFromClass(cfg.scheme, f.blocks()));
    }

    // Adjacent frames swap when their independent network delays cross
    // the shrinking inter-frame gap: p = 0.5 erfc(gap / (2 sigma)).
    const double gap_cycles = coreFreqHz / symbol_rate;
    const double reorder_prob = (cfg.networkDelaySigma > 0.0)
        ? 0.5 * std::erfc(gap_cycles / (2.0 * cfg.networkDelaySigma))
        : 0.0;

    auto trojan = std::make_unique<TrojanSource>(
        sent, cfg.scheme, 1, symbol_rate);
    auto wire = std::make_unique<net::ReorderingSource>(
        std::move(trojan), reorder_prob, cfg.seed ^ 0x0DD5u);
    net::TrafficPump pump(tb.eq(), tb.driver(), std::move(wire),
                          start + 1000, cfg.arrivalJitterSigma,
                          cfg.seed);

    CacheNoise noise(tb, cfg.cacheNoiseHz, cfg.cacheNoiseBatch,
                     cfg.seed ^ 0x9999u);
    noise.start(tb.eq(), horizon);

    attack::ChasingConfig ch_cfg;
    ch_cfg.probe.ways = tb.config().llc.geom.ways;
    ch_cfg.probeInterval = std::max<Cycles>(
        500, secondsToCycles(1.0 / symbol_rate) / 4);
    // Sec. IV-b monitoring: three sets per buffer -- block 1 (the
    // prefetch row, firing for every packet: the clock) plus blocks 2
    // and 3. Covert frames never exceed copy-break, so the driver
    // never flips halves and the lower half suffices. The small
    // monitor is what lets the spy keep pace with line-rate-ish
    // senders.
    ch_cfg.firstBlock = 1;
    ch_cfg.sizeBlocks = 3;
    ch_cfg.lowerHalfOnly = true;
    // One chase cursor per receive queue: RSS pins the trojan's flow
    // to one ring, and the spy finds it by chasing all of them.
    attack::ChasingMonitor chaser(tb.hier(), tb.groups(),
                                  std::move(seqs), ch_cfg);
    const attack::ChaseResult chased = chaser.chase(tb.eq(), horizon);

    // Align the observed class stream against the sent stream with an
    // optimal edit alignment: substitutions are symbol errors on
    // synchronized pairs, deletions are packets the spy lost track of
    // (the paper's out-of-sync accounting).
    std::vector<unsigned> observed;
    observed.reserve(chased.packets.size());
    for (const attack::PacketObservation &obs : chased.packets)
        observed.push_back(symbolFromClass(cfg.scheme, obs.sizeClass));
    const EditOps ops = editOperations(sent_classes, observed);

    ChannelMeasurement m;
    m.sent = sent_classes.size();
    m.received = chased.packets.size();
    m.probeRounds = chased.probes;
    m.editMatches = ops.matches;
    m.editSubstitutions = ops.substitutions;
    m.editDeletions = ops.deletions;
    const std::size_t synced = ops.matches + ops.substitutions;
    m.errorRate = synced > 0
        ? static_cast<double>(ops.substitutions) /
            static_cast<double>(synced)
        : 1.0;
    m.outOfSyncRate = m.sent > 0
        ? static_cast<double>(ops.deletions) /
            static_cast<double>(m.sent)
        : 0.0;
    m.bandwidthBps = cfg.targetBandwidthBps;
    m.elapsed = tb.eq().now() - start;
    return m;
}

} // namespace pktchase::channel
