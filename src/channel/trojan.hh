/**
 * @file
 * The covert-channel trojan: a remote process that only sends ordinary
 * broadcast frames (Sec. IV threat model). It transmits symbol S by
 * sending a burst of packets_per_symbol frames whose size encodes S;
 * with no sequence information the burst must cover the whole ring
 * (256 packets) so the spy's single monitored buffer is guaranteed to
 * receive one of them; with sequence information bursts shrink to
 * ring/n and the spy watches n buffers (Fig. 12a/b).
 */

#ifndef PKTCHASE_CHANNEL_TROJAN_HH
#define PKTCHASE_CHANNEL_TROJAN_HH

#include <cstdint>
#include <vector>

#include "channel/encoding.hh"
#include "net/traffic.hh"
#include "nic/frame.hh"

namespace pktchase::channel
{

/**
 * TrafficSource emitting the symbol stream as size-modulated bursts.
 */
class TrojanSource : public net::TrafficSource
{
  public:
    /**
     * @param symbols            Symbols to transmit, in order.
     * @param scheme             Alphabet / size mapping.
     * @param packets_per_symbol Burst length (ring / monitored bufs).
     * @param rate_pps           Send rate; 0 = line rate.
     */
    TrojanSource(std::vector<unsigned> symbols, Scheme scheme,
                 std::size_t packets_per_symbol, double rate_pps = 0.0);

    bool next(nic::Frame &frame, Cycles &gap) override;

    /** Symbols fully transmitted so far. */
    std::size_t symbolsSent() const { return symbolIndex_; }

  private:
    std::vector<unsigned> symbols_;
    Scheme scheme_;
    std::size_t packetsPerSymbol_;
    double ratePps_;
    std::size_t symbolIndex_ = 0;
    std::size_t packetInBurst_ = 0;
    std::uint64_t nextId_ = 0;
};

} // namespace pktchase::channel

#endif // PKTCHASE_CHANNEL_TROJAN_HH
