/**
 * @file
 * Covert-channel capacity measurement harnesses (Sec. IV, Figs. 10-12).
 *
 * Follows Liu et al.'s methodology as the paper does: transmit the
 * pseudo-random sequence of a 15-bit LFSR and score the received stream
 * with Levenshtein distance, so bit loss, insertion, and swaps all
 * count. Two channel modes:
 *
 *  - runCovertChannel: the spy watches n fixed buffers (n = 1 is the
 *    no-sequence-information baseline; larger n uses ring order to
 *    divide the ring into n sections, Fig. 12a/b);
 *  - runChasingChannel: the spy follows the full recovered sequence,
 *    one symbol per packet, reporting out-of-sync rate (Fig. 12c/d).
 *
 * Optional cache noise (random CPU reads from an unrelated process)
 * exercises the probe-rate/error trade-off of Fig. 11.
 */

#ifndef PKTCHASE_CHANNEL_CAPACITY_HH
#define PKTCHASE_CHANNEL_CAPACITY_HH

#include <cstdint>
#include <vector>

#include "channel/encoding.hh"
#include "channel/spy.hh"
#include "testbed/testbed.hh"

namespace pktchase::channel
{

/** Parameters for the fixed-buffer covert channel. */
struct ChannelRunConfig
{
    Scheme scheme = Scheme::Ternary;
    double probeRateHz = 14000;
    std::size_t nSymbols = 400;
    /** First LFSR symbol to transmit: the run covers stream positions
     *  [symbolOffset, symbolOffset + nSymbols), so a campaign task
     *  can transmit one chunk of a longer pinned stream. */
    std::size_t symbolOffset = 0;
    std::size_t monitoredBuffers = 1;
    double sendRatePps = 0.0;          ///< 0 = line rate.
    double cacheNoiseHz = 0.0;         ///< Noise batches per second.
    unsigned cacheNoiseBatch = 32;     ///< Random reads per batch.
    double arrivalJitterSigma = 2000;  ///< Cycles of network jitter.
    std::uint64_t seed = 5;
};

/** Parameters for the full-sequence chasing channel. */
struct ChasingChannelConfig
{
    Scheme scheme = Scheme::Ternary;
    double targetBandwidthBps = 160000;
    std::size_t nSymbols = 2000;
    /** First LFSR symbol to transmit (chunking, as in
     *  ChannelRunConfig::symbolOffset). */
    std::size_t symbolOffset = 0;
    double cacheNoiseHz = 0.0;
    unsigned cacheNoiseBatch = 32;
    double arrivalJitterSigma = 500;

    /**
     * Per-frame network delay variation (cycles). When inter-frame
     * gaps shrink toward this, adjacent frames start arriving out of
     * order -- the paper's explanation for the 640 kbps error jump.
     */
    double networkDelaySigma = 4000;

    /**
     * Fraction of adjacent transpositions injected into the ground
     * truth ring sequence, emulating the residual inaccuracy of the
     * recovered sequence (Table I reports ~10% error).
     */
    double sequenceErrorRate = 0.0;
    std::uint64_t seed = 5;
};

/** What a channel run produced. */
struct ChannelMeasurement
{
    std::size_t sent = 0;
    std::size_t received = 0;
    double errorRate = 0.0;     ///< Levenshtein / sent (sync regions).
    double bandwidthBps = 0.0;  ///< Achieved information rate.
    double outOfSyncRate = 0.0; ///< Chasing mode only.
    Cycles elapsed = 0;
    std::uint64_t probeRounds = 0; ///< Spy probe rounds executed.

    /** Raw error accounting behind the rates, so chunked runs can be
     *  folded without re-deriving counts from rounded ratios:
     *  editDistance is the covert mode's Levenshtein distance;
     *  matches/substitutions/deletions the chasing mode's optimal
     *  alignment (errorRate = substitutions / (matches +
     *  substitutions), outOfSyncRate = deletions / sent). */
    std::size_t editDistance = 0;
    std::size_t editMatches = 0;
    std::size_t editSubstitutions = 0;
    std::size_t editDeletions = 0;
};

/** Run the fixed-buffer covert channel on an assembled testbed. */
ChannelMeasurement runCovertChannel(testbed::Testbed &tb,
                                    const ChannelRunConfig &cfg);

/** Run the full-sequence chasing channel. */
ChannelMeasurement runChasingChannel(testbed::Testbed &tb,
                                     const ChasingChannelConfig &cfg);

/**
 * Pick @p n monitored buffers: ring positions roughly ring/n apart
 * whose combos host exactly one buffer (Sec. IV-c). Exposed for tests.
 *
 * @return Chosen combos, in ring order.
 */
std::vector<std::size_t> pickMonitoredBuffers(testbed::Testbed &tb,
                                              std::size_t n);

/**
 * Generate the test symbol stream from the 15-bit LFSR: stream
 * positions [offset, offset + count). The stream is a pure function
 * of (scheme, position), so chunked runs transmit exactly the symbols
 * of the corresponding monolithic positions.
 */
std::vector<unsigned> testSymbols(Scheme scheme, std::size_t count,
                                  std::size_t offset = 0);

} // namespace pktchase::channel

#endif // PKTCHASE_CHANNEL_CAPACITY_HH
