#include "trojan.hh"

#include "sim/logging.hh"

namespace pktchase::channel
{

TrojanSource::TrojanSource(std::vector<unsigned> symbols, Scheme scheme,
                           std::size_t packets_per_symbol,
                           double rate_pps)
    : symbols_(std::move(symbols)), scheme_(scheme),
      packetsPerSymbol_(packets_per_symbol), ratePps_(rate_pps)
{
    if (packetsPerSymbol_ == 0)
        fatal("TrojanSource: packets_per_symbol must be nonzero");
    for (unsigned s : symbols_)
        if (s >= arity(scheme_))
            fatal("TrojanSource: symbol out of range");
}

bool
TrojanSource::next(nic::Frame &frame, Cycles &gap)
{
    if (symbolIndex_ >= symbols_.size())
        return false;

    const unsigned symbol = symbols_[symbolIndex_];
    frame.bytes = frameBytes(scheme_, symbol);
    frame.protocol = nic::Protocol::Unknown; // plain broadcast frames
    frame.id = nextId_++;

    const double rate = (ratePps_ <= 0.0)
        ? net::maxFrameRate(frame.bytes) : ratePps_;
    gap = secondsToCycles(1.0 / rate);

    if (++packetInBurst_ >= packetsPerSymbol_) {
        packetInBurst_ = 0;
        ++symbolIndex_;
    }
    return true;
}

} // namespace pktchase::channel
