/**
 * @file
 * The covert-channel spy: an unprivileged local process with no network
 * access that decodes symbols from LLC activity (Sec. IV-b).
 *
 * For each monitored ring buffer the spy watches three eviction sets:
 * the buffer's second block (the clock -- it fires for every packet
 * because of the driver prefetch), third block, and fourth block. A
 * decode window of three samples absorbs wide peaks (one packet's
 * activity spanning two samples) and arrival skew.
 */

#ifndef PKTCHASE_CHANNEL_SPY_HH
#define PKTCHASE_CHANNEL_SPY_HH

#include <cstdint>
#include <vector>

#include "attack/prime_probe.hh"
#include "channel/encoding.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pktchase::channel
{

/** Spy sampling parameters. */
struct SpyConfig
{
    double probeRateHz = 14000;  ///< Fig. 11 sweeps {7, 14, 28} kHz.
    Cycles missThreshold = 130;
    unsigned ways = 20;
    unsigned decodeWindow = 3;   ///< Samples per decode window.
};

/** One decoded symbol with its detection time. */
struct SymbolEvent
{
    Cycles when = 0;
    unsigned symbol = 0;
    std::size_t buffer = 0; ///< Index into the monitored buffer list.
};

/** Result of a listening session. */
struct ListenResult
{
    std::vector<SymbolEvent> events; ///< Time-ordered decoded symbols.
    std::uint64_t rounds = 0;        ///< Probe rounds executed.

    /** Just the symbol values, in time order. */
    std::vector<unsigned> symbols() const;
};

/**
 * Samples the monitored buffers and decodes the symbol stream.
 */
class CovertSpy
{
  public:
    /**
     * @param hier          Timing oracle.
     * @param groups        Spy pool partition.
     * @param buffer_combos Combos of the monitored ring buffers (each
     *                      should host exactly one buffer).
     * @param scheme        Expected alphabet.
     * @param cfg           Sampling parameters.
     */
    CovertSpy(cache::Hierarchy &hier, const attack::ComboGroups &groups,
              std::vector<std::size_t> buffer_combos, Scheme scheme,
              const SpyConfig &cfg);

    /**
     * Sample until @p horizon (traffic pumps already scheduled on
     * @p eq), then decode.
     */
    ListenResult listen(EventQueue &eq, Cycles horizon);

  private:
    cache::Hierarchy &hier_;
    Scheme scheme_;
    SpyConfig cfg_;
    std::vector<attack::PrimeProbeMonitor> monitors_; ///< Per buffer.

    /** Raw per-buffer samples: (time, clock, b2, b3). */
    struct RawSample
    {
        Cycles when;
        bool clock, b2, b3;
    };

    /** Decode one buffer's sample train into symbol events. */
    std::vector<SymbolEvent>
    decodeBuffer(std::size_t buffer,
                 const std::vector<RawSample> &samples) const;
};

} // namespace pktchase::channel

#endif // PKTCHASE_CHANNEL_SPY_HH
