/**
 * @file
 * The covert-channel spy: an unprivileged local process with no network
 * access that decodes symbols from LLC activity (Sec. IV-b).
 *
 * For each monitored ring buffer the spy watches three eviction sets:
 * the buffer's second block (the clock -- it fires for every packet
 * because of the driver prefetch), third block, and fourth block. A
 * decode window of three samples absorbs wide peaks (one packet's
 * activity spanning two samples) and arrival skew.
 *
 * The sampling loop is an attack::ProbeEngine sample stream; the
 * SpyDecoder observer turns the raw (clock, b2, b3) sample train into
 * the symbol stream. CovertSpy bundles the two behind the original
 * listen() front-end. The monitored combos are plain LLC sets, so the
 * spy works unchanged on a multi-queue NIC -- RSS pins the trojan's
 * flow to one ring, and whichever ring that is, its buffers' sets
 * light up the same way.
 */

#ifndef PKTCHASE_CHANNEL_SPY_HH
#define PKTCHASE_CHANNEL_SPY_HH

#include <cstdint>
#include <vector>

#include "attack/probe_engine.hh"
#include "channel/encoding.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace pktchase::channel
{

/** Spy sampling parameters. */
struct SpyConfig
{
    double probeRateHz = 14000;  ///< Fig. 11 sweeps {7, 14, 28} kHz.

    /** Shared miss-threshold/ways calibration. */
    attack::ProbeParams probe;

    unsigned decodeWindow = 3;   ///< Samples per decode window.
};

/** One decoded symbol with its detection time. */
struct SymbolEvent
{
    Cycles when = 0;
    unsigned symbol = 0;
    std::size_t buffer = 0; ///< Index into the monitored buffer list.
};

/** Result of a listening session. */
struct ListenResult
{
    std::vector<SymbolEvent> events; ///< Time-ordered decoded symbols.
    std::uint64_t rounds = 0;        ///< Probe rounds executed.

    /** Just the symbol values, in time order. */
    std::vector<unsigned> symbols() const;
};

/**
 * ProbeEngine observer that records each monitored buffer's raw
 * (clock, b2, b3) sample train and decodes it into symbol events.
 */
class SpyDecoder : public attack::ProbeObserver
{
  public:
    /**
     * @param scheme        Expected alphabet.
     * @param decode_window Samples ORed per symbol.
     * @param buffers       Number of monitored buffers.
     * @param stream        Engine stream id to listen to.
     */
    SpyDecoder(Scheme scheme, unsigned decode_window,
               std::size_t buffers, std::size_t stream = 0);

    void onObservation(const attack::ProbeObservation &obs) override;

    /** Decode everything recorded so far into a time-ordered result. */
    ListenResult result() const;

  private:
    /** Raw per-buffer samples: (time, clock, b2, b3). */
    struct RawSample
    {
        Cycles when;
        bool clock, b2, b3;
    };

    Scheme scheme_;
    unsigned decodeWindow_;
    std::size_t stream_;
    std::vector<std::vector<RawSample>> raw_;
    std::uint64_t rounds_ = 0;

    /** Decode one buffer's sample train into symbol events. */
    std::vector<SymbolEvent>
    decodeBuffer(std::size_t buffer,
                 const std::vector<RawSample> &samples) const;
};

/**
 * Samples the monitored buffers and decodes the symbol stream.
 */
class CovertSpy
{
  public:
    /**
     * @param hier          Timing oracle.
     * @param groups        Spy pool partition.
     * @param buffer_combos Combos of the monitored ring buffers (each
     *                      should host exactly one buffer).
     * @param scheme        Expected alphabet.
     * @param cfg           Sampling parameters.
     */
    CovertSpy(cache::Hierarchy &hier, const attack::ComboGroups &groups,
              std::vector<std::size_t> buffer_combos, Scheme scheme,
              const SpyConfig &cfg);

    /**
     * Sample until @p horizon (traffic pumps already scheduled on
     * @p eq), then decode. Call once per spy.
     */
    ListenResult listen(EventQueue &eq, Cycles horizon);

  private:
    attack::ProbeEngine engine_;
    SpyDecoder decoder_;
};

} // namespace pktchase::channel

#endif // PKTCHASE_CHANNEL_SPY_HH
