#include "spy.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace pktchase::channel
{

std::vector<unsigned>
ListenResult::symbols() const
{
    std::vector<unsigned> out;
    out.reserve(events.size());
    for (const SymbolEvent &e : events)
        out.push_back(e.symbol);
    return out;
}

CovertSpy::CovertSpy(cache::Hierarchy &hier,
                     const attack::ComboGroups &groups,
                     std::vector<std::size_t> buffer_combos,
                     Scheme scheme, const SpyConfig &cfg)
    : hier_(hier), scheme_(scheme), cfg_(cfg)
{
    if (buffer_combos.empty())
        panic("CovertSpy needs at least one monitored buffer");
    monitors_.reserve(buffer_combos.size());
    for (std::size_t combo : buffer_combos) {
        const attack::EvictionSet base =
            groups.evictionSetFor(combo, cfg_.ways);
        std::vector<attack::EvictionSet> sets;
        sets.push_back(base.atBlock(1)); // clock (prefetch row)
        sets.push_back(base.atBlock(2));
        sets.push_back(base.atBlock(3));
        monitors_.emplace_back(hier_, std::move(sets),
                               cfg_.missThreshold);
    }
}

ListenResult
CovertSpy::listen(EventQueue &eq, Cycles horizon)
{
    ListenResult result;
    std::vector<std::vector<RawSample>> raw(monitors_.size());
    const Cycles interval = secondsToCycles(1.0 / cfg_.probeRateHz);

    for (auto &m : monitors_)
        m.primeAll(eq.now());

    std::function<void()> round = [&] {
        Cycles t = eq.now();
        for (std::size_t b = 0; b < monitors_.size(); ++b) {
            attack::ProbeSample s = monitors_[b].probeAll(t);
            t = s.end;
            raw[b].push_back(RawSample{s.start, s.active[0] != 0,
                                       s.active[1] != 0,
                                       s.active[2] != 0});
        }
        ++result.rounds;
        const Cycles cost = t - eq.now();
        const Cycles next = eq.now() + std::max(interval, cost);
        if (next <= horizon)
            eq.schedule(next, round);
    };
    eq.schedule(eq.now(), round);
    eq.runUntil(horizon);

    for (std::size_t b = 0; b < monitors_.size(); ++b) {
        std::vector<SymbolEvent> events = decodeBuffer(b, raw[b]);
        result.events.insert(result.events.end(), events.begin(),
                             events.end());
    }
    std::sort(result.events.begin(), result.events.end(),
              [](const SymbolEvent &a, const SymbolEvent &b) {
                  return a.when < b.when;
              });
    return result;
}

std::vector<SymbolEvent>
CovertSpy::decodeBuffer(std::size_t buffer,
                        const std::vector<RawSample> &samples) const
{
    // Group consecutive clock-active samples into one packet event and
    // OR the data rows across a bounded window (wide peaks span two
    // samples; skewed arrivals shift data activity by one sample).
    std::vector<SymbolEvent> events;
    std::size_t i = 0;
    while (i < samples.size()) {
        if (!samples[i].clock) {
            ++i;
            continue;
        }
        bool b2 = false, b3 = false;
        const std::size_t end =
            std::min(samples.size(), i + cfg_.decodeWindow);
        std::size_t j = i;
        for (; j < end && samples[j].clock; ++j) {
            b2 |= samples[j].b2;
            b3 |= samples[j].b3;
        }
        events.push_back(SymbolEvent{samples[i].when,
                                     decodeActivity(scheme_, b2, b3),
                                     buffer});
        i = std::max(j, i + 1);
        // Skip the remainder of an over-long run (background noise can
        // stretch the clock row) so one packet yields one symbol.
        while (i < samples.size() && samples[i].clock)
            ++i;
    }
    return events;
}

} // namespace pktchase::channel
