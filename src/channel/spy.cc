#include "spy.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace pktchase::channel
{

std::vector<unsigned>
ListenResult::symbols() const
{
    std::vector<unsigned> out;
    out.reserve(events.size());
    for (const SymbolEvent &e : events)
        out.push_back(e.symbol);
    return out;
}

SpyDecoder::SpyDecoder(Scheme scheme, unsigned decode_window,
                       std::size_t buffers, std::size_t stream)
    : scheme_(scheme), decodeWindow_(decode_window), stream_(stream),
      raw_(buffers)
{
}

void
SpyDecoder::onObservation(const attack::ProbeObservation &obs)
{
    if (obs.kind != attack::ProbeKind::Sample ||
        obs.stream != stream_) {
        return;
    }
    if (obs.buffer >= raw_.size() || obs.activeCount < 3)
        panic("SpyDecoder: observation does not look like a spy round");
    raw_[obs.buffer].push_back(RawSample{obs.when, obs.active[0] != 0,
                                         obs.active[1] != 0,
                                         obs.active[2] != 0});
    // One engine round probes every buffer once; count it when the
    // first buffer reports.
    if (obs.buffer == 0)
        ++rounds_;
}

ListenResult
SpyDecoder::result() const
{
    ListenResult out;
    out.rounds = rounds_;
    for (std::size_t b = 0; b < raw_.size(); ++b) {
        std::vector<SymbolEvent> events = decodeBuffer(b, raw_[b]);
        out.events.insert(out.events.end(), events.begin(),
                          events.end());
    }
    std::sort(out.events.begin(), out.events.end(),
              [](const SymbolEvent &a, const SymbolEvent &b) {
                  return a.when < b.when;
              });
    return out;
}

std::vector<SymbolEvent>
SpyDecoder::decodeBuffer(std::size_t buffer,
                         const std::vector<RawSample> &samples) const
{
    // Group consecutive clock-active samples into one packet event and
    // OR the data rows across a bounded window (wide peaks span two
    // samples; skewed arrivals shift data activity by one sample).
    std::vector<SymbolEvent> events;
    std::size_t i = 0;
    while (i < samples.size()) {
        if (!samples[i].clock) {
            ++i;
            continue;
        }
        bool b2 = false, b3 = false;
        const std::size_t end =
            std::min(samples.size(), i + decodeWindow_);
        std::size_t j = i;
        for (; j < end && samples[j].clock; ++j) {
            b2 |= samples[j].b2;
            b3 |= samples[j].b3;
        }
        events.push_back(SymbolEvent{samples[i].when,
                                     decodeActivity(scheme_, b2, b3),
                                     buffer});
        i = std::max(j, i + 1);
        // Skip the remainder of an over-long run (background noise can
        // stretch the clock row) so one packet yields one symbol.
        while (i < samples.size() && samples[i].clock)
            ++i;
    }
    return events;
}

namespace
{

attack::ProbeEngineConfig
spyEngineConfig(const SpyConfig &cfg)
{
    attack::ProbeEngineConfig ecfg;
    ecfg.probe = cfg.probe;
    ecfg.sampleRateHz = cfg.probeRateHz;
    return ecfg;
}

std::vector<std::vector<attack::EvictionSet>>
spyBufferSets(const attack::ComboGroups &groups,
              const std::vector<std::size_t> &buffer_combos,
              unsigned ways)
{
    if (buffer_combos.empty())
        panic("CovertSpy needs at least one monitored buffer");
    std::vector<std::vector<attack::EvictionSet>> out;
    out.reserve(buffer_combos.size());
    for (std::size_t combo : buffer_combos) {
        const attack::EvictionSet base =
            groups.evictionSetFor(combo, ways);
        std::vector<attack::EvictionSet> sets;
        sets.push_back(base.atBlock(1)); // clock (prefetch row)
        sets.push_back(base.atBlock(2));
        sets.push_back(base.atBlock(3));
        out.push_back(std::move(sets));
    }
    return out;
}

} // namespace

CovertSpy::CovertSpy(cache::Hierarchy &hier,
                     const attack::ComboGroups &groups,
                     std::vector<std::size_t> buffer_combos,
                     Scheme scheme, const SpyConfig &cfg)
    : engine_(hier, spyEngineConfig(cfg)),
      decoder_(scheme, cfg.decodeWindow, buffer_combos.size())
{
    engine_.addSampleStream(
        spyBufferSets(groups, buffer_combos, cfg.probe.ways));
    engine_.attach(decoder_);
}

ListenResult
CovertSpy::listen(EventQueue &eq, Cycles horizon)
{
    engine_.run(eq, horizon);
    return decoder_.result();
}

} // namespace pktchase::channel
