#include "encoding.hh"

#include "sim/logging.hh"

namespace pktchase::channel
{

unsigned
arity(Scheme scheme)
{
    return scheme == Scheme::Binary ? 2u : 3u;
}

double
bitsPerSymbol(Scheme scheme)
{
    return scheme == Scheme::Binary ? 1.0 : 1.584962500721156; // log2(3)
}

Addr
frameBytes(Scheme scheme, unsigned symbol)
{
    if (symbol >= arity(scheme))
        panic("frameBytes: symbol out of range for scheme");
    if (scheme == Scheme::Binary)
        return symbol == 0 ? 64 : 256;
    switch (symbol) {
      case 0:  return 64;
      case 1:  return 192;
      default: return 256;
    }
}

unsigned
decodeActivity(Scheme scheme, bool b2, bool b3)
{
    if (scheme == Scheme::Binary) {
        // Both data rows fire for "1"; either row alone is treated as
        // "1" too (redundancy is what makes binary slightly more
        // robust than ternary, Fig. 11).
        return (b2 || b3) ? 1u : 0u;
    }
    if (b3)
        return 2u; // 4-block packet (block 3 implies block 2 as well).
    if (b2)
        return 1u; // 3-block packet.
    return 0u;     // 1-block packet: clock only.
}

std::vector<unsigned>
bitsToSymbols(Scheme scheme, const std::vector<unsigned> &bits)
{
    if (scheme == Scheme::Binary)
        return bits;
    std::vector<unsigned> out;
    out.reserve(bits.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < bits.size(); i += 2)
        out.push_back((bits[i] * 2 + bits[i + 1]) % 3);
    return out;
}

} // namespace pktchase::channel
