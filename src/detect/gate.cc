#include "gate.hh"

#include "sim/logging.hh"

namespace pktchase::detect
{

GateController::GateController(std::unique_ptr<Detector> detector,
                               const GateConfig &cfg)
    : detector_(std::move(detector)), cfg_(cfg)
{
    if (!detector_)
        fatal("GateController needs a detector");
    if (cfg_.disarmEpochs == 0)
        fatal("GateController: disarmEpochs must be nonzero");
}

void
GateController::connect(sim::CounterBus &bus)
{
    if (connected_)
        fatal("GateController::connect called twice");
    connected_ = true;
    bus.subscribe([this](const sim::CounterSample &s) { onSample(s); });
}

void
GateController::onSample(const sim::CounterSample &s)
{
    const Score *sc = detector_->onSample(s);
    if (!sc)
        return;
    if (armed_)
        ++armedEpochs_;
    if (sc->alarm) {
        if (!armed_) {
            armed_ = true;
            ++armTransitions_;
        }
        quiet_ = 0;
    } else if (armed_ && ++quiet_ >= cfg_.disarmEpochs) {
        armed_ = false;
        quiet_ = 0;
    }
}

} // namespace pktchase::detect
