/**
 * @file
 * Alarm-driven arming gate for the detector-gated defenses.
 *
 * A GateController owns one Detector, feeds it every bus sample, and
 * maintains a single armed/disarmed bit with hysteresis: any alarmed
 * score arms immediately; disarming requires disarmEpochs consecutive
 * alarm-free scores, so a spy cannot flap the defense off between its
 * probe bursts. Every defense::GatedPolicy instance of a testbed (one
 * per receive queue) consults the same controller, so all rings arm
 * and disarm together -- a per-queue defense against a spy that
 * chases every queue must.
 */

#ifndef PKTCHASE_DETECT_GATE_HH
#define PKTCHASE_DETECT_GATE_HH

#include <cstdint>
#include <memory>

#include "detect/detector.hh"
#include "sim/counter_bus.hh"

namespace pktchase::detect
{

/** Hysteresis tuning. */
struct GateConfig
{
    /**
     * Consecutive alarm-free scores required before disarming. At the
     * default telemetry epoch (~6 us) the default rides out ~0.4 ms
     * of attacker silence.
     */
    unsigned disarmEpochs = 64;
};

/**
 * Owns a detector and derives the armed bit from its alarm stream.
 */
class GateController
{
  public:
    GateController(std::unique_ptr<Detector> detector,
                   const GateConfig &cfg = {});

    /** Subscribe to @p bus; call exactly once. */
    void connect(sim::CounterBus &bus);

    /** Whether the gated defense is currently armed. */
    bool armed() const { return armed_; }

    /**
     * Operator override: pin the armed bit (tests, incident
     * response). The next consumed score resumes normal hysteresis
     * from the pinned state.
     */
    void forceArmed(bool armed) { armed_ = armed; quiet_ = 0; }

    /** Disarmed -> armed transitions so far. */
    std::uint64_t armTransitions() const { return armTransitions_; }

    /** Scores consumed while armed (armed epochs, roughly). */
    std::uint64_t armedEpochs() const { return armedEpochs_; }

    const Detector &detector() const { return *detector_; }
    const GateConfig &config() const { return cfg_; }

  private:
    void onSample(const sim::CounterSample &s);

    std::unique_ptr<Detector> detector_;
    GateConfig cfg_;
    bool connected_ = false;
    bool armed_ = false;
    unsigned quiet_ = 0; ///< Consecutive alarm-free scores while armed.
    std::uint64_t armTransitions_ = 0;
    std::uint64_t armedEpochs_ = 0;
};

} // namespace pktchase::detect

#endif // PKTCHASE_DETECT_GATE_HH
