#include "rig.hh"

#include "sim/logging.hh"

namespace pktchase::detect
{

DetectionRig::DetectionRig(cache::Hierarchy &hier,
                           nic::IgbDriver &driver, const RigConfig &cfg)
    : hier_(hier), driver_(driver), cfg_(cfg), bus_(cfg.epochCycles),
      llcProbe_(bus_, hier.llc().geometry().slices),
      rxProbe_(bus_, driver.numQueues())
{
    for (const std::string &name : cfg_.detectors) {
        auto det = makeDetector(name, cfg_.detector);
        Detector *raw = det.get();
        bus_.subscribe([raw](const sim::CounterSample &s) {
            raw->onSample(s);
        });
        detectors_.push_back(std::move(det));
    }
    if (!cfg_.gateDetector.empty()) {
        gate_ = std::make_unique<GateController>(
            makeDetector(cfg_.gateDetector, cfg_.detector), cfg_.gate);
        gate_->connect(bus_);
    }

    // Refuse to steal another rig's probes: overwriting them would
    // silently starve the first rig (and detach it for good when this
    // one dies), turning its gated defense off with no diagnostic.
    if (hier_.llc().telemetry() || driver_.telemetry()) {
        fatal("DetectionRig: a telemetry probe is already attached to "
              "this hierarchy/driver (one rig per testbed)");
    }
    hier_.llc().attachTelemetry(&llcProbe_);
    driver_.attachTelemetry(&rxProbe_);
}

DetectionRig::~DetectionRig()
{
    hier_.llc().attachTelemetry(nullptr);
    driver_.attachTelemetry(nullptr);
}

Detector &
DetectionRig::detector(const std::string &name)
{
    for (auto &det : detectors_)
        if (det->name() == name)
            return *det;
    fatal("DetectionRig: no hosted detector named \"" + name + "\"");
}

void
DetectionRig::flush(Cycles now)
{
    llcProbe_.flush(now);
    rxProbe_.flush(now);
}

} // namespace pktchase::detect
