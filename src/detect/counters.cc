#include "counters.hh"

#include <algorithm>
#include <cmath>

#include "sim/stats.hh"

namespace pktchase::detect
{

// ------------------------------------------------------ LlcCounterProbe --

LlcCounterProbe::LlcCounterProbe(sim::CounterBus &bus, unsigned groups)
    : bus_(bus), groups_(groups)
{
    using sim::CounterKey;
    keys_.cpuAccesses = CounterKey::intern("cpu_accesses");
    keys_.cpuMisses = CounterKey::intern("cpu_misses");
    keys_.missRate = CounterKey::intern("miss_rate");
    keys_.ddioFills = CounterKey::intern("ddio_fills");
    keys_.ddioCpuDisplaced = CounterKey::intern("ddio_cpu_displaced");
    keys_.ioConflicts = CounterKey::intern("io_conflicts");
    keys_.group.reserve(groups_);
    for (unsigned g = 0; g < groups_; ++g) {
        const std::string prefix = "g" + std::to_string(g);
        keys_.group.emplace_back(CounterKey::intern(prefix + ".misses"),
                                 CounterKey::intern(prefix + ".fills"));
    }

    // Prebuild the empty-epoch sample once: zero-fill catch-up (the
    // common roll() case in sparse phases) then only stamps the epoch
    // bounds instead of re-emitting every key.
    zeroSample_.source = "llc";
    zeroSample_.set(keys_.cpuAccesses, 0.0);
    zeroSample_.set(keys_.cpuMisses, 0.0);
    zeroSample_.set(keys_.missRate, 0.0);
    zeroSample_.set(keys_.ddioFills, 0.0);
    zeroSample_.set(keys_.ddioCpuDisplaced, 0.0);
    zeroSample_.set(keys_.ioConflicts, 0.0);
    for (unsigned g = 0; g < groups_; ++g) {
        zeroSample_.set(keys_.group[g].first, 0.0);
        zeroSample_.set(keys_.group[g].second, 0.0);
    }
    sample_.source = "llc";

    epochEnd_ = bus_.epochCycles();
    reset();
}

void
LlcCounterProbe::reset()
{
    acc_ = Acc{};
    acc_.groupMisses.assign(groups_, 0);
    acc_.groupFills.assign(groups_, 0);
}

void
LlcCounterProbe::publishEpoch(std::uint64_t epoch)
{
    const Cycles width = bus_.epochCycles();
    if (!acc_.any) {
        zeroSample_.epoch = epoch;
        zeroSample_.start = epoch * width;
        zeroSample_.end = zeroSample_.start + width;
        bus_.publish(zeroSample_);
        return;
    }
    sample_.clearValues();
    sample_.epoch = epoch;
    sample_.start = epoch * width;
    sample_.end = sample_.start + width;
    sample_.set(keys_.cpuAccesses, static_cast<double>(acc_.cpuAccesses));
    sample_.set(keys_.cpuMisses, static_cast<double>(acc_.cpuMisses));
    sample_.set(keys_.missRate, acc_.cpuAccesses > 0
        ? static_cast<double>(acc_.cpuMisses) /
            static_cast<double>(acc_.cpuAccesses)
        : 0.0);
    sample_.set(keys_.ddioFills, static_cast<double>(acc_.ddioFills));
    sample_.set(keys_.ddioCpuDisplaced,
                static_cast<double>(acc_.ddioCpuDisplaced));
    sample_.set(keys_.ioConflicts,
                static_cast<double>(acc_.ioConflicts));
    for (unsigned g = 0; g < groups_; ++g) {
        sample_.set(keys_.group[g].first,
                    static_cast<double>(acc_.groupMisses[g]));
        sample_.set(keys_.group[g].second,
                    static_cast<double>(acc_.groupFills[g]));
    }
    bus_.publish(sample_);
}

void
LlcCounterProbe::rollSlow(Cycles now)
{
    const Cycles width = bus_.epochCycles();
    const std::uint64_t target = now / width;
    if (target <= epoch_)
        return;
    if (target - epoch_ > kMaxCatchUp) {
        // A long idle gap: publish what accumulated, then resume the
        // zero-filled series a bounded distance before the present so
        // detector windows refill with genuine idle epochs without
        // paying for the whole gap.
        publishEpoch(epoch_);
        reset();
        epoch_ = target - kMaxCatchUp;
    }
    while (epoch_ < target) {
        publishEpoch(epoch_);
        reset();
        ++epoch_;
    }
    epochEnd_ = (epoch_ + 1) * width;
}

void
LlcCounterProbe::cpuAccess(unsigned group, bool hit, Cycles now)
{
    roll(now);
    acc_.any = true;
    ++acc_.cpuAccesses;
    if (!hit) {
        ++acc_.cpuMisses;
        if (group < groups_)
            ++acc_.groupMisses[group];
    }
}

void
LlcCounterProbe::ioInjection(unsigned group, bool displaced_cpu_line,
                             Cycles now)
{
    roll(now);
    acc_.any = true;
    ++acc_.ddioFills;
    if (displaced_cpu_line)
        ++acc_.ddioCpuDisplaced;
    if (group < groups_)
        ++acc_.groupFills[group];
}

void
LlcCounterProbe::ioLineConflict(unsigned group, Cycles now)
{
    (void)group;
    roll(now);
    acc_.any = true;
    ++acc_.ioConflicts;
}

void
LlcCounterProbe::flush(Cycles now)
{
    roll(now);
    if (acc_.any) {
        publishEpoch(epoch_);
        reset();
        ++epoch_;
        epochEnd_ = (epoch_ + 1) * bus_.epochCycles();
    }
}

// ------------------------------------------------------- RxCounterProbe --

RxCounterProbe::RxCounterProbe(sim::CounterBus &bus, std::size_t queues)
    : bus_(bus), queues_(queues), aggCounts_(queues, 0)
{
    using sim::CounterKey;
    keyRecycles_ = CounterKey::intern("recycles");
    keyPages_ = CounterKey::intern("pages");
    keyReuseMean_ = CounterKey::intern("reuse_mean");
    keyEntropy_ = CounterKey::intern("entropy");
    keyTotal_ = CounterKey::intern("total");
    sources_.reserve(queues);
    qKeys_.reserve(queues);
    for (std::size_t q = 0; q < queues; ++q) {
        sources_.push_back("rxq" + std::to_string(q));
        qKeys_.push_back(CounterKey::intern("q" + std::to_string(q)));
    }
    curEnd_ = bus_.epochCycles();
}

void
RxCounterProbe::publishAggregate(std::uint64_t epoch)
{
    const Cycles width = bus_.epochCycles();
    const double n = static_cast<double>(aggTotal_);

    const std::vector<double> counts(aggCounts_.begin(),
                                     aggCounts_.end());
    const double norm = normalizedShannonEntropy(counts);

    sample_.clearValues();
    sample_.source = "rxagg";
    sample_.epoch = epoch;
    sample_.start = epoch * width;
    sample_.end = sample_.start + width;
    sample_.set(keyTotal_, n);
    for (std::size_t q = 0; q < aggCounts_.size(); ++q)
        sample_.set(qKeys_[q], static_cast<double>(aggCounts_[q]));
    sample_.set(keyEntropy_, norm);
    bus_.publish(sample_);

    aggCounts_.assign(aggCounts_.size(), 0);
    aggTotal_ = 0;
}

void
RxCounterProbe::publishEpoch(std::size_t queue, std::uint64_t epoch)
{
    QueueState &qs = queues_[queue];
    const Cycles width = bus_.epochCycles();

    // Shannon entropy of the epoch's page histogram, normalized by
    // the most even split n recycles allow. The counts come out of an
    // unordered_map, whose iteration order is hash/stdlib-dependent,
    // and FP addition is not associative -- sort before summing so
    // the value is platform-stable and safe to pin.
    const double n = static_cast<double>(qs.recycles);
    std::vector<double> counts;
    counts.reserve(qs.pageCounts.size());
    for (const auto &kv : qs.pageCounts)
        counts.push_back(static_cast<double>(kv.second));
    std::sort(counts.begin(), counts.end());
    const double norm = qs.recycles >= 2
        ? shannonEntropyBits(counts) / std::log2(n) : 1.0;

    sample_.clearValues();
    sample_.source = sources_[queue];
    sample_.epoch = epoch;
    sample_.start = epoch * width;
    sample_.end = sample_.start + width;
    sample_.set(keyRecycles_, n);
    sample_.set(keyPages_, static_cast<double>(qs.pageCounts.size()));
    sample_.set(keyReuseMean_, qs.reuseCount > 0
        ? static_cast<double>(qs.reuseSum) /
            static_cast<double>(qs.reuseCount)
        : 0.0);
    sample_.set(keyEntropy_, norm);
    bus_.publish(sample_);

    qs.recycles = 0;
    qs.reuseSum = 0;
    qs.reuseCount = 0;
    qs.pageCounts.clear();
}

void
RxCounterProbe::onRecycle(std::size_t queue, std::size_t slot,
                          Addr page, Cycles now)
{
    (void)slot;
    if (queue >= queues_.size())
        return;
    QueueState &qs = queues_[queue];

    const std::uint64_t target = epochOf(now);
    if (target > qs.epoch) {
        if (qs.recycles > 0)
            publishEpoch(queue, qs.epoch);
        qs.epoch = target;
    }
    if (target > aggEpoch_) {
        if (aggTotal_ > 0)
            publishAggregate(aggEpoch_);
        aggEpoch_ = target;
    }

    ++qs.recycleOrdinal;
    auto it = qs.lastSeen.find(page);
    if (it != qs.lastSeen.end()) {
        qs.reuseSum += qs.recycleOrdinal - it->second;
        ++qs.reuseCount;
        it->second = qs.recycleOrdinal;
    } else {
        qs.lastSeen.emplace(page, qs.recycleOrdinal);
    }
    ++qs.recycles;
    ++qs.pageCounts[page];
    ++aggCounts_[queue];
    ++aggTotal_;
}

void
RxCounterProbe::flush(Cycles now)
{
    const std::uint64_t target = epochOf(now);
    for (std::size_t q = 0; q < queues_.size(); ++q) {
        QueueState &qs = queues_[q];
        if (qs.recycles > 0) {
            publishEpoch(q, qs.epoch);
            qs.epoch = target;
        }
    }
    if (aggTotal_ > 0) {
        publishAggregate(aggEpoch_);
        aggEpoch_ = target;
    }
}

} // namespace pktchase::detect
