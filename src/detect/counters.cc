#include "counters.hh"

#include <algorithm>
#include <cmath>

#include "sim/stats.hh"

namespace pktchase::detect
{

// ------------------------------------------------------ LlcCounterProbe --

LlcCounterProbe::LlcCounterProbe(sim::CounterBus &bus, unsigned groups)
    : bus_(bus), groups_(groups)
{
    reset();
}

void
LlcCounterProbe::reset()
{
    acc_ = Acc{};
    acc_.groupMisses.assign(groups_, 0);
    acc_.groupFills.assign(groups_, 0);
}

void
LlcCounterProbe::publishEpoch(std::uint64_t epoch)
{
    const Cycles width = bus_.epochCycles();
    sim::CounterSample s;
    s.source = "llc";
    s.epoch = epoch;
    s.start = epoch * width;
    s.end = s.start + width;
    s.set("cpu_accesses", static_cast<double>(acc_.cpuAccesses));
    s.set("cpu_misses", static_cast<double>(acc_.cpuMisses));
    s.set("miss_rate", acc_.cpuAccesses > 0
        ? static_cast<double>(acc_.cpuMisses) /
            static_cast<double>(acc_.cpuAccesses)
        : 0.0);
    s.set("ddio_fills", static_cast<double>(acc_.ddioFills));
    s.set("ddio_cpu_displaced",
          static_cast<double>(acc_.ddioCpuDisplaced));
    s.set("io_conflicts", static_cast<double>(acc_.ioConflicts));
    for (unsigned g = 0; g < groups_; ++g) {
        const std::string prefix = "g" + std::to_string(g);
        s.set(prefix + ".misses",
              static_cast<double>(acc_.groupMisses[g]));
        s.set(prefix + ".fills",
              static_cast<double>(acc_.groupFills[g]));
    }
    bus_.publish(s);
}

void
LlcCounterProbe::roll(Cycles now)
{
    const std::uint64_t target = now / bus_.epochCycles();
    if (target <= epoch_)
        return;
    if (target - epoch_ > kMaxCatchUp) {
        // A long idle gap: publish what accumulated, then resume the
        // zero-filled series a bounded distance before the present so
        // detector windows refill with genuine idle epochs without
        // paying for the whole gap.
        publishEpoch(epoch_);
        reset();
        epoch_ = target - kMaxCatchUp;
    }
    while (epoch_ < target) {
        publishEpoch(epoch_);
        reset();
        ++epoch_;
    }
}

void
LlcCounterProbe::cpuAccess(unsigned group, bool hit, Cycles now)
{
    roll(now);
    acc_.any = true;
    ++acc_.cpuAccesses;
    if (!hit) {
        ++acc_.cpuMisses;
        if (group < groups_)
            ++acc_.groupMisses[group];
    }
}

void
LlcCounterProbe::ioInjection(unsigned group, bool displaced_cpu_line,
                             Cycles now)
{
    roll(now);
    acc_.any = true;
    ++acc_.ddioFills;
    if (displaced_cpu_line)
        ++acc_.ddioCpuDisplaced;
    if (group < groups_)
        ++acc_.groupFills[group];
}

void
LlcCounterProbe::ioLineConflict(unsigned group, Cycles now)
{
    (void)group;
    roll(now);
    acc_.any = true;
    ++acc_.ioConflicts;
}

void
LlcCounterProbe::flush(Cycles now)
{
    roll(now);
    if (acc_.any) {
        publishEpoch(epoch_);
        reset();
        ++epoch_;
    }
}

// ------------------------------------------------------- RxCounterProbe --

RxCounterProbe::RxCounterProbe(sim::CounterBus &bus, std::size_t queues)
    : bus_(bus), queues_(queues), aggCounts_(queues, 0)
{
}

void
RxCounterProbe::publishAggregate(std::uint64_t epoch)
{
    const Cycles width = bus_.epochCycles();
    const double n = static_cast<double>(aggTotal_);

    const std::vector<double> counts(aggCounts_.begin(),
                                     aggCounts_.end());
    const double norm = normalizedShannonEntropy(counts);

    sim::CounterSample s;
    s.source = "rxagg";
    s.epoch = epoch;
    s.start = epoch * width;
    s.end = s.start + width;
    s.set("total", n);
    for (std::size_t q = 0; q < aggCounts_.size(); ++q)
        s.set("q" + std::to_string(q),
              static_cast<double>(aggCounts_[q]));
    s.set("entropy", norm);
    bus_.publish(s);

    aggCounts_.assign(aggCounts_.size(), 0);
    aggTotal_ = 0;
}

void
RxCounterProbe::publishEpoch(std::size_t queue, std::uint64_t epoch)
{
    QueueState &qs = queues_[queue];
    const Cycles width = bus_.epochCycles();

    // Shannon entropy of the epoch's page histogram, normalized by
    // the most even split n recycles allow. The counts come out of an
    // unordered_map, whose iteration order is hash/stdlib-dependent,
    // and FP addition is not associative -- sort before summing so
    // the value is platform-stable and safe to pin.
    const double n = static_cast<double>(qs.recycles);
    std::vector<double> counts;
    counts.reserve(qs.pageCounts.size());
    for (const auto &kv : qs.pageCounts)
        counts.push_back(static_cast<double>(kv.second));
    std::sort(counts.begin(), counts.end());
    const double norm = qs.recycles >= 2
        ? shannonEntropyBits(counts) / std::log2(n) : 1.0;

    sim::CounterSample s;
    s.source = "rxq" + std::to_string(queue);
    s.epoch = epoch;
    s.start = epoch * width;
    s.end = s.start + width;
    s.set("recycles", n);
    s.set("pages", static_cast<double>(qs.pageCounts.size()));
    s.set("reuse_mean", qs.reuseCount > 0
        ? static_cast<double>(qs.reuseSum) /
            static_cast<double>(qs.reuseCount)
        : 0.0);
    s.set("entropy", norm);
    bus_.publish(s);

    qs.recycles = 0;
    qs.reuseSum = 0;
    qs.reuseCount = 0;
    qs.pageCounts.clear();
}

void
RxCounterProbe::onRecycle(std::size_t queue, std::size_t slot,
                          Addr page, Cycles now)
{
    (void)slot;
    if (queue >= queues_.size())
        return;
    QueueState &qs = queues_[queue];

    const std::uint64_t target = now / bus_.epochCycles();
    if (target > qs.epoch) {
        if (qs.recycles > 0)
            publishEpoch(queue, qs.epoch);
        qs.epoch = target;
    }
    if (target > aggEpoch_) {
        if (aggTotal_ > 0)
            publishAggregate(aggEpoch_);
        aggEpoch_ = target;
    }

    ++qs.recycleOrdinal;
    auto it = qs.lastSeen.find(page);
    if (it != qs.lastSeen.end()) {
        qs.reuseSum += qs.recycleOrdinal - it->second;
        ++qs.reuseCount;
        it->second = qs.recycleOrdinal;
    } else {
        qs.lastSeen.emplace(page, qs.recycleOrdinal);
    }
    ++qs.recycles;
    ++qs.pageCounts[page];
    ++aggCounts_[queue];
    ++aggTotal_;
}

void
RxCounterProbe::flush(Cycles now)
{
    const std::uint64_t target = now / bus_.epochCycles();
    for (std::size_t q = 0; q < queues_.size(); ++q) {
        QueueState &qs = queues_[q];
        if (qs.recycles > 0) {
            publishEpoch(q, qs.epoch);
            qs.epoch = target;
        }
    }
    if (aggTotal_ > 0) {
        publishAggregate(aggEpoch_);
        aggEpoch_ = target;
    }
}

} // namespace pktchase::detect
