#include "detector.hh"

#include <algorithm>
#include <cmath>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__SSE2__) && defined(__GNUC__)
// Baseline builds target generic x86-64, but the autocorrelation
// kernel below is worth a runtime-dispatched AVX2 variant; immintrin
// intrinsics are usable inside target("avx2") functions without
// -mavx2 on the command line.
#define PKTCHASE_AVX2_DISPATCH 1
#include <immintrin.h>
#endif

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace pktchase::detect
{

namespace
{

#if defined(PKTCHASE_AVX2_DISPATCH)

/**
 * Shared-prefix accumulators for eight adjacent lags: out[k] receives
 * sum over t < shared of dev[t] * dev[t + lag + k], accumulated in
 * ascending-t order. Lane k of each 256-bit accumulator performs
 * exactly the scalar chain of lag + k -- vmulpd/vaddpd round each
 * lane independently with scalar IEEE semantics, and explicit mul/add
 * intrinsics are never contracted to FMA -- so the result is
 * bit-identical to the SSE2 and scalar variants in evaluate().
 */
__attribute__((target("avx2"))) void
lag8SharedAvx2(const double *dev, unsigned shared, unsigned lag,
               double out[8])
{
    __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
    for (unsigned t = 0; t < shared; ++t) {
        const __m256d d4 = _mm256_set1_pd(dev[t]);
        lo = _mm256_add_pd(
            lo, _mm256_mul_pd(d4, _mm256_loadu_pd(dev + t + lag)));
        hi = _mm256_add_pd(
            hi, _mm256_mul_pd(d4, _mm256_loadu_pd(dev + t + lag + 4)));
    }
    _mm256_storeu_pd(out, lo);
    _mm256_storeu_pd(out + 4, hi);
}

bool
haveAvx2()
{
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
}

#endif // PKTCHASE_AVX2_DISPATCH

/**
 * Baseline-ISA variant of the same eight-lag shared-prefix kernel.
 * On SSE2 two adjacent lags share one vector register: lane k of a
 * packed accumulator performs exactly the scalar chain of lag + k
 * (mulpd/addpd round each lane independently with the same IEEE
 * semantics as mulsd/addsd, and the baseline target has no FMA, so no
 * contraction can change a rounding), which halves the instruction
 * stream without touching any sum.
 */
void
lag8Shared(const double *dev, unsigned shared, unsigned lag,
           double out[8])
{
#if defined(__SSE2__)
    __m128d v01 = _mm_setzero_pd(), v23 = _mm_setzero_pd();
    __m128d v45 = _mm_setzero_pd(), v67 = _mm_setzero_pd();
    for (unsigned t = 0; t < shared; ++t) {
        const __m128d d2 = _mm_set1_pd(dev[t]);
        v01 = _mm_add_pd(
            v01, _mm_mul_pd(d2, _mm_loadu_pd(dev + t + lag)));
        v23 = _mm_add_pd(
            v23, _mm_mul_pd(d2, _mm_loadu_pd(dev + t + lag + 2)));
        v45 = _mm_add_pd(
            v45, _mm_mul_pd(d2, _mm_loadu_pd(dev + t + lag + 4)));
        v67 = _mm_add_pd(
            v67, _mm_mul_pd(d2, _mm_loadu_pd(dev + t + lag + 6)));
    }
    _mm_storeu_pd(out, v01);
    _mm_storeu_pd(out + 2, v23);
    _mm_storeu_pd(out + 4, v45);
    _mm_storeu_pd(out + 6, v67);
#else
    double a0 = 0, a1 = 0, a2 = 0, a3 = 0;
    double a4 = 0, a5 = 0, a6 = 0, a7 = 0;
    for (unsigned t = 0; t < shared; ++t) {
        const double d = dev[t];
        a0 += d * dev[t + lag];
        a1 += d * dev[t + lag + 1];
        a2 += d * dev[t + lag + 2];
        a3 += d * dev[t + lag + 3];
        a4 += d * dev[t + lag + 4];
        a5 += d * dev[t + lag + 5];
        a6 += d * dev[t + lag + 6];
        a7 += d * dev[t + lag + 7];
    }
    out[0] = a0; out[1] = a1; out[2] = a2; out[3] = a3;
    out[4] = a4; out[5] = a5; out[6] = a6; out[7] = a7;
#endif
}

} // namespace

// ------------------------------------------------------------ Detector --

const Score *
Detector::onSample(const sim::CounterSample &s)
{
    double score = 0.0;
    if (!evaluate(s, score))
        return nullptr;
    Score sc;
    sc.epoch = s.epoch;
    sc.when = s.end;
    sc.score = score;
    sc.alarm = score > threshold_;
    if (sc.alarm)
        ++alarms_;
    scores_.push_back(sc);
    return &scores_.back();
}

std::vector<Cycles>
Detector::alarmTimes() const
{
    std::vector<Cycles> out;
    for (const Score &sc : scores_)
        if (sc.alarm)
            out.push_back(sc.when);
    return out;
}

// -------------------------------------------------------- MissRateSpike --

MissRateSpike::MissRateSpike(const DetectorConfig &cfg)
    : Detector(cfg.threshold > 0.0 ? cfg.threshold : kDefaultThreshold),
      window_(cfg.window), short_(cfg.shortWindow),
      keyCpuMisses_(sim::CounterKey::intern("cpu_misses"))
{
    if (window_ < 2 || short_ < 1)
        fatal("MissRateSpike: window must be >= 2 and shortWindow >= 1");
}

bool
MissRateSpike::evaluate(const sim::CounterSample &s, double &score)
{
    if (s.source != "llc")
        return false;
    const double x = s.value(keyCpuMisses_);
    score = 0.0;

    if (!frozen_) {
        // Deploy-time calibration: collect the baseline, score zero.
        calib_.push_back(x);
        if (calib_.size() >= window_) {
            for (double v : calib_)
                mean_ += v;
            mean_ /= static_cast<double>(calib_.size());
            double var = 0.0;
            for (double v : calib_) {
                const double e = v - mean_;
                var += e * e;
            }
            sd_ = std::sqrt(var / static_cast<double>(calib_.size()));
            calib_.clear();
            calib_.shrink_to_fit();
            frozen_ = true;
        }
        return true;
    }

    recent_.push_back(x);
    if (recent_.size() > short_)
        recent_.pop_front();
    double m = 0.0;
    for (double v : recent_)
        m += v;
    m /= static_cast<double>(recent_.size());
    score = (m - mean_) / std::max(sd_, kMinSigma);
    return true;
}

// ----------------------------------------------------- ReuseEntropyDrop --

ReuseEntropyDrop::ReuseEntropyDrop(const DetectorConfig &cfg)
    : Detector(cfg.threshold > 0.0 ? cfg.threshold : kDefaultThreshold),
      window_(cfg.window), short_(cfg.entropyShort)
{
    if (window_ < 2 || short_ < 1)
        fatal("ReuseEntropyDrop: window must be >= 2 and "
              "entropyShort >= 1");
}

bool
ReuseEntropyDrop::evaluate(const sim::CounterSample &s, double &score)
{
    if (s.source != "rxagg")
        return false;

    // Collect the per-queue counts q0, q1, ... by interned key; the
    // probe emits them for every queue, so the first missing index
    // ends the scan. The key table grows on demand because the queue
    // count is only discoverable from the samples themselves.
    std::vector<double> counts;
    for (std::size_t q = 0;; ++q) {
        if (q >= qKeys_.size())
            qKeys_.push_back(
                sim::CounterKey::intern("q" + std::to_string(q)));
        bool found = false;
        for (const auto &kv : s.values) {
            if (kv.first == qKeys_[q]) {
                counts.push_back(kv.second);
                found = true;
                break;
            }
        }
        if (!found)
            break;
    }
    score = 0.0;

    if (!frozen_) {
        // Deploy-time calibration: sum the span's counts into one
        // well-populated distribution estimate, then freeze its
        // entropy as the baseline.
        if (calibCounts_.size() < counts.size())
            calibCounts_.resize(counts.size(), 0.0);
        for (std::size_t q = 0; q < counts.size(); ++q)
            calibCounts_[q] += counts[q];
        if (++calibSamples_ >= window_) {
            baseEntropy_ = normalizedShannonEntropy(calibCounts_);
            calibCounts_.clear();
            calibCounts_.shrink_to_fit();
            frozen_ = true;
        }
        return true;
    }

    recent_.push_back(std::move(counts));
    if (recent_.size() > short_)
        recent_.pop_front();
    if (recent_.size() < short_)
        return true;

    std::vector<double> sum;
    for (const auto &c : recent_) {
        if (sum.size() < c.size())
            sum.resize(c.size(), 0.0);
        for (std::size_t q = 0; q < c.size(); ++q)
            sum[q] += c[q];
    }

    // A drop below baseline scores positive; gains clamp at zero so
    // a defense raising entropy cannot read as an attack.
    score = std::max(0.0,
                     baseEntropy_ - normalizedShannonEntropy(sum));
    return true;
}

// --------------------------------------------------------- ProbeCadence --

ProbeCadence::ProbeCadence(const DetectorConfig &cfg)
    : Detector(cfg.threshold > 0.0 ? cfg.threshold : kDefaultThreshold),
      window_(cfg.window), minLag_(cfg.minLag),
      maxLag_(cfg.maxLag > 0 ? cfg.maxLag : cfg.window / 2),
      minEvents_(cfg.minEvents),
      keyIoConflicts_(sim::CounterKey::intern("io_conflicts")),
      ring_(cfg.window, 0.0), scratch_(cfg.window, 0.0)
{
    if (window_ < 8)
        fatal("ProbeCadence: window must be >= 8");
    if (minLag_ < 1 || maxLag_ <= minLag_ || maxLag_ >= window_)
        fatal("ProbeCadence: need 1 <= minLag < maxLag < window");
}

bool
ProbeCadence::evaluate(const sim::CounterSample &s, double &score)
{
    if (s.source != "llc")
        return false;

    const double x = s.value(keyIoConflicts_);
    runningTotal_ += x;
    if (filled_ == window_)
        runningTotal_ -= ring_[head_];
    ring_[head_] = x;
    head_ = head_ + 1 == window_ ? 0 : head_ + 1;
    score = 0.0;
    if (filled_ < window_) {
        ++filled_;
        if (filled_ < window_)
            return true;
    }

    // Too few conflicts to alarm: skip the whole walk. runningTotal_
    // is integral-exact, so this is the same comparison the full pass
    // below would make (which also returns zero on a low total).
    if (runningTotal_ < minEvents_)
        return true;

    // Linearize oldest-to-newest into scratch_ (head_ is the oldest
    // slot now that the ring is full) and total in that same order.
    double total = 0.0;
    std::size_t i = head_;
    for (unsigned t = 0; t < window_; ++t) {
        const double v = ring_[i];
        scratch_[t] = v;
        total += v;
        if (++i == window_)
            i = 0;
    }
    const double mean = total / static_cast<double>(window_);

    // Second pass turns scratch_ into the deviation series d[t] =
    // x[t] - mean while accumulating the variance; the lag loop below
    // then reads precomputed deviations instead of re-subtracting the
    // mean O(window * lags) times.
    double var = 0.0;
    for (unsigned t = 0; t < window_; ++t) {
        const double e = scratch_[t] - mean;
        scratch_[t] = e;
        var += e * e;
    }
    if (var <= 0.0 || total < minEvents_)
        return true;

    // Normalized autocorrelation peak over the candidate periods. The
    // attacker's probe loop is the only agent that displaces I/O lines
    // on a fixed period, so a high peak means "someone is priming the
    // ring's sets on a schedule".
    //
    // The classic loop nest (per lag, walk t) is one serial chain of
    // dependent FP adds per lag -- latency-bound. Processing eight
    // lags per pass runs eight independent add chains concurrently,
    // hiding that latency. Each chain still receives its products in
    // ascending-t order (a shared prefix up to the shortest chain's
    // length, then per-lag tails), so every per-lag sum -- and
    // therefore every score -- is bit-identical to the serial loop.
    // The shared prefix runs through lag8Shared (SSE2 or scalar) or,
    // when the host supports it, the runtime-dispatched AVX2 variant;
    // all three are bit-identical by construction (see the helpers).
    const double *dev = scratch_.data();
    double best = 0.0;
    unsigned best_lag = 0;
    const auto consider = [&](double acc, unsigned lag) {
        const double r = acc / var;
        if (r > best) {
            best = r;
            best_lag = lag;
        }
    };
    unsigned lag = minLag_;
    for (; lag + 7 <= maxLag_; lag += 8) {
        const unsigned shared = window_ - (lag + 7); // shortest chain
        double acc[8];
#if defined(PKTCHASE_AVX2_DISPATCH)
        if (haveAvx2())
            lag8SharedAvx2(dev, shared, lag, acc);
        else
#endif
            lag8Shared(dev, shared, lag, acc);
        double a0 = acc[0], a1 = acc[1], a2 = acc[2], a3 = acc[3];
        double a4 = acc[4], a5 = acc[5], a6 = acc[6], a7 = acc[7];
        for (unsigned t = shared; t + lag < window_; ++t)
            a0 += dev[t] * dev[t + lag];
        for (unsigned t = shared; t + lag + 1 < window_; ++t)
            a1 += dev[t] * dev[t + lag + 1];
        for (unsigned t = shared; t + lag + 2 < window_; ++t)
            a2 += dev[t] * dev[t + lag + 2];
        for (unsigned t = shared; t + lag + 3 < window_; ++t)
            a3 += dev[t] * dev[t + lag + 3];
        for (unsigned t = shared; t + lag + 4 < window_; ++t)
            a4 += dev[t] * dev[t + lag + 4];
        for (unsigned t = shared; t + lag + 5 < window_; ++t)
            a5 += dev[t] * dev[t + lag + 5];
        for (unsigned t = shared; t + lag + 6 < window_; ++t)
            a6 += dev[t] * dev[t + lag + 6];
        consider(a0, lag);
        consider(a1, lag + 1);
        consider(a2, lag + 2);
        consider(a3, lag + 3);
        consider(a4, lag + 4);
        consider(a5, lag + 5);
        consider(a6, lag + 6);
        consider(a7, lag + 7);
    }
    for (; lag + 3 <= maxLag_; lag += 4) {
        const unsigned shared = window_ - (lag + 3);
        double a0, a1, a2, a3;
#if defined(__SSE2__)
        __m128d v01 = _mm_setzero_pd(), v23 = _mm_setzero_pd();
        for (unsigned t = 0; t < shared; ++t) {
            const __m128d d2 = _mm_set1_pd(dev[t]);
            v01 = _mm_add_pd(
                v01, _mm_mul_pd(d2, _mm_loadu_pd(dev + t + lag)));
            v23 = _mm_add_pd(
                v23, _mm_mul_pd(d2, _mm_loadu_pd(dev + t + lag + 2)));
        }
        a0 = _mm_cvtsd_f64(v01);
        a1 = _mm_cvtsd_f64(_mm_unpackhi_pd(v01, v01));
        a2 = _mm_cvtsd_f64(v23);
        a3 = _mm_cvtsd_f64(_mm_unpackhi_pd(v23, v23));
#else
        a0 = a1 = a2 = a3 = 0.0;
        for (unsigned t = 0; t < shared; ++t) {
            const double d = dev[t];
            a0 += d * dev[t + lag];
            a1 += d * dev[t + lag + 1];
            a2 += d * dev[t + lag + 2];
            a3 += d * dev[t + lag + 3];
        }
#endif
        for (unsigned t = shared; t + lag < window_; ++t)
            a0 += dev[t] * dev[t + lag];
        for (unsigned t = shared; t + lag + 1 < window_; ++t)
            a1 += dev[t] * dev[t + lag + 1];
        for (unsigned t = shared; t + lag + 2 < window_; ++t)
            a2 += dev[t] * dev[t + lag + 2];
        consider(a0, lag);
        consider(a1, lag + 1);
        consider(a2, lag + 2);
        consider(a3, lag + 3);
    }
    for (; lag <= maxLag_; ++lag) {
        double acc = 0.0;
        const unsigned n = window_ - lag;
        for (unsigned t = 0; t < n; ++t)
            acc += dev[t] * dev[t + lag];
        consider(acc, lag);
    }
    bestLag_ = best_lag;
    score = best;
    return true;
}

// ------------------------------------------------------------- factory --

std::vector<std::string>
detectorNames()
{
    return {"cadence", "entropy-drop", "miss-spike"};
}

bool
isDetectorName(const std::string &name)
{
    const auto names = detectorNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<Detector>
makeDetector(const std::string &name, const DetectorConfig &cfg)
{
    if (name == "miss-spike")
        return std::make_unique<MissRateSpike>(cfg);
    if (name == "entropy-drop")
        return std::make_unique<ReuseEntropyDrop>(cfg);
    if (name == "cadence")
        return std::make_unique<ProbeCadence>(cfg);
    fatal("detect::makeDetector: unknown detector \"" + name +
          "\" (known: cadence, entropy-drop, miss-spike)");
}

double
aucScore(std::vector<double> positives, std::vector<double> negatives)
{
    if (positives.empty() || negatives.empty())
        return 0.5;
    std::sort(negatives.begin(), negatives.end());
    double wins = 0.0;
    for (double p : positives) {
        const auto lo = std::lower_bound(negatives.begin(),
                                         negatives.end(), p);
        const auto hi = std::upper_bound(lo, negatives.end(), p);
        wins += static_cast<double>(lo - negatives.begin());
        wins += 0.5 * static_cast<double>(hi - lo);
    }
    return wins / (static_cast<double>(positives.size()) *
                   static_cast<double>(negatives.size()));
}

} // namespace pktchase::detect
