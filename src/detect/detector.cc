#include "detector.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace pktchase::detect
{

// ------------------------------------------------------------ Detector --

const Score *
Detector::onSample(const sim::CounterSample &s)
{
    double score = 0.0;
    if (!evaluate(s, score))
        return nullptr;
    Score sc;
    sc.epoch = s.epoch;
    sc.when = s.end;
    sc.score = score;
    sc.alarm = score > threshold_;
    if (sc.alarm)
        ++alarms_;
    scores_.push_back(sc);
    return &scores_.back();
}

std::vector<Cycles>
Detector::alarmTimes() const
{
    std::vector<Cycles> out;
    for (const Score &sc : scores_)
        if (sc.alarm)
            out.push_back(sc.when);
    return out;
}

// -------------------------------------------------------- MissRateSpike --

MissRateSpike::MissRateSpike(const DetectorConfig &cfg)
    : Detector(cfg.threshold > 0.0 ? cfg.threshold : kDefaultThreshold),
      window_(cfg.window), short_(cfg.shortWindow)
{
    if (window_ < 2 || short_ < 1)
        fatal("MissRateSpike: window must be >= 2 and shortWindow >= 1");
}

bool
MissRateSpike::evaluate(const sim::CounterSample &s, double &score)
{
    if (s.source != "llc")
        return false;
    const double x = s.value("cpu_misses");
    score = 0.0;

    if (!frozen_) {
        // Deploy-time calibration: collect the baseline, score zero.
        calib_.push_back(x);
        if (calib_.size() >= window_) {
            for (double v : calib_)
                mean_ += v;
            mean_ /= static_cast<double>(calib_.size());
            double var = 0.0;
            for (double v : calib_) {
                const double e = v - mean_;
                var += e * e;
            }
            sd_ = std::sqrt(var / static_cast<double>(calib_.size()));
            calib_.clear();
            calib_.shrink_to_fit();
            frozen_ = true;
        }
        return true;
    }

    recent_.push_back(x);
    if (recent_.size() > short_)
        recent_.pop_front();
    double m = 0.0;
    for (double v : recent_)
        m += v;
    m /= static_cast<double>(recent_.size());
    score = (m - mean_) / std::max(sd_, kMinSigma);
    return true;
}

// ----------------------------------------------------- ReuseEntropyDrop --

ReuseEntropyDrop::ReuseEntropyDrop(const DetectorConfig &cfg)
    : Detector(cfg.threshold > 0.0 ? cfg.threshold : kDefaultThreshold),
      window_(cfg.window), short_(cfg.entropyShort)
{
    if (window_ < 2 || short_ < 1)
        fatal("ReuseEntropyDrop: window must be >= 2 and "
              "entropyShort >= 1");
}

bool
ReuseEntropyDrop::evaluate(const sim::CounterSample &s, double &score)
{
    if (s.source != "rxagg")
        return false;

    std::vector<double> counts;
    for (const auto &kv : s.values)
        if (!kv.first.empty() && kv.first[0] == 'q')
            counts.push_back(kv.second);
    score = 0.0;

    if (!frozen_) {
        // Deploy-time calibration: sum the span's counts into one
        // well-populated distribution estimate, then freeze its
        // entropy as the baseline.
        if (calibCounts_.size() < counts.size())
            calibCounts_.resize(counts.size(), 0.0);
        for (std::size_t q = 0; q < counts.size(); ++q)
            calibCounts_[q] += counts[q];
        if (++calibSamples_ >= window_) {
            baseEntropy_ = normalizedShannonEntropy(calibCounts_);
            calibCounts_.clear();
            calibCounts_.shrink_to_fit();
            frozen_ = true;
        }
        return true;
    }

    recent_.push_back(std::move(counts));
    if (recent_.size() > short_)
        recent_.pop_front();
    if (recent_.size() < short_)
        return true;

    std::vector<double> sum;
    for (const auto &c : recent_) {
        if (sum.size() < c.size())
            sum.resize(c.size(), 0.0);
        for (std::size_t q = 0; q < c.size(); ++q)
            sum[q] += c[q];
    }

    // A drop below baseline scores positive; gains clamp at zero so
    // a defense raising entropy cannot read as an attack.
    score = std::max(0.0,
                     baseEntropy_ - normalizedShannonEntropy(sum));
    return true;
}

// --------------------------------------------------------- ProbeCadence --

ProbeCadence::ProbeCadence(const DetectorConfig &cfg)
    : Detector(cfg.threshold > 0.0 ? cfg.threshold : kDefaultThreshold),
      window_(cfg.window), minLag_(cfg.minLag),
      maxLag_(cfg.maxLag > 0 ? cfg.maxLag : cfg.window / 2),
      minEvents_(cfg.minEvents)
{
    if (window_ < 8)
        fatal("ProbeCadence: window must be >= 8");
    if (minLag_ < 1 || maxLag_ <= minLag_ || maxLag_ >= window_)
        fatal("ProbeCadence: need 1 <= minLag < maxLag < window");
}

bool
ProbeCadence::evaluate(const sim::CounterSample &s, double &score)
{
    if (s.source != "llc")
        return false;

    hist_.push_back(s.value("io_conflicts"));
    if (hist_.size() > window_)
        hist_.pop_front();
    score = 0.0;
    if (hist_.size() < window_)
        return true;

    double mean = 0.0, total = 0.0;
    for (double x : hist_)
        total += x;
    mean = total / static_cast<double>(window_);
    double var = 0.0;
    for (double x : hist_) {
        const double e = x - mean;
        var += e * e;
    }
    if (var <= 0.0 || total < minEvents_)
        return true;

    // Normalized autocorrelation peak over the candidate periods. The
    // attacker's probe loop is the only agent that displaces I/O lines
    // on a fixed period, so a high peak means "someone is priming the
    // ring's sets on a schedule".
    double best = 0.0;
    unsigned best_lag = 0;
    for (unsigned lag = minLag_; lag <= maxLag_; ++lag) {
        double acc = 0.0;
        for (unsigned t = 0; t + lag < window_; ++t)
            acc += (hist_[t] - mean) * (hist_[t + lag] - mean);
        const double r = acc / var;
        if (r > best) {
            best = r;
            best_lag = lag;
        }
    }
    bestLag_ = best_lag;
    score = best;
    return true;
}

// ------------------------------------------------------------- factory --

std::vector<std::string>
detectorNames()
{
    return {"cadence", "entropy-drop", "miss-spike"};
}

bool
isDetectorName(const std::string &name)
{
    const auto names = detectorNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<Detector>
makeDetector(const std::string &name, const DetectorConfig &cfg)
{
    if (name == "miss-spike")
        return std::make_unique<MissRateSpike>(cfg);
    if (name == "entropy-drop")
        return std::make_unique<ReuseEntropyDrop>(cfg);
    if (name == "cadence")
        return std::make_unique<ProbeCadence>(cfg);
    fatal("detect::makeDetector: unknown detector \"" + name +
          "\" (known: cadence, entropy-drop, miss-spike)");
}

double
aucScore(std::vector<double> positives, std::vector<double> negatives)
{
    if (positives.empty() || negatives.empty())
        return 0.5;
    std::sort(negatives.begin(), negatives.end());
    double wins = 0.0;
    for (double p : positives) {
        const auto lo = std::lower_bound(negatives.begin(),
                                         negatives.end(), p);
        const auto hi = std::upper_bound(lo, negatives.end(), p);
        wins += static_cast<double>(lo - negatives.begin());
        wins += 0.5 * static_cast<double>(hi - lo);
    }
    return wins / (static_cast<double>(positives.size()) *
                   static_cast<double>(negatives.size()));
}

} // namespace pktchase::detect
