/**
 * @file
 * Counter probes: the glue between the hardware emitters' telemetry
 * hooks (cache::LlcTelemetry, nic::RxTelemetry) and sim::CounterBus.
 *
 * Each probe accumulates event counts and publishes one CounterSample
 * per completed epoch. Epochs roll lazily, driven by the timestamps
 * of the events themselves (there is no timer agent in the model), so
 * a probe can only notice an epoch boundary when the next event
 * arrives; the final partial epoch of a run is published by flush().
 *
 * The LLC probe zero-fills empty epochs (bounded by kMaxCatchUp) so
 * its per-epoch series is uniformly sampled -- the cadence detector's
 * autocorrelation lags are only meaningful on a uniform grid. The
 * per-queue recycle probe does not: its consumers score sample values,
 * not sample spacing, and a queue can be legitimately idle for long
 * stretches.
 */

#ifndef PKTCHASE_DETECT_COUNTERS_HH
#define PKTCHASE_DETECT_COUNTERS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/telemetry.hh"
#include "nic/telemetry.hh"
#include "sim/counter_bus.hh"
#include "sim/types.hh"

namespace pktchase::detect
{

/**
 * LLC counter probe. Publishes one "llc" sample per epoch with:
 *
 *   cpu_accesses, cpu_misses, miss_rate   CPU-side reference/miss pair
 *   ddio_fills                            DDIO allocations (injections)
 *   ddio_cpu_displaced                    ... that displaced a CPU line
 *   io_conflicts                          I/O lines displaced by CPU
 *                                         fills (priming signature)
 *   g<k>.misses, g<k>.fills               the same, per slice group
 */
class LlcCounterProbe : public cache::LlcTelemetry
{
  public:
    /** Empty-epoch zero-fill bound per catch-up (see file comment). */
    static constexpr std::uint64_t kMaxCatchUp = 256;

    /**
     * @param bus    Destination bus (also defines the epoch width).
     * @param groups Slice-group count (the LLC geometry's slices).
     */
    LlcCounterProbe(sim::CounterBus &bus, unsigned groups);

    void cpuAccess(unsigned group, bool hit, Cycles now) override;
    void ioInjection(unsigned group, bool displaced_cpu_line,
                     Cycles now) override;
    void ioLineConflict(unsigned group, Cycles now) override;

    /** Publish the current partial epoch, if it saw any event. */
    void flush(Cycles now);

  private:
    struct Acc
    {
        std::uint64_t cpuAccesses = 0;
        std::uint64_t cpuMisses = 0;
        std::uint64_t ddioFills = 0;
        std::uint64_t ddioCpuDisplaced = 0;
        std::uint64_t ioConflicts = 0;
        std::vector<std::uint64_t> groupMisses;
        std::vector<std::uint64_t> groupFills;
        bool any = false;
    };

    /** Interned names of every key this probe emits. */
    struct Keys
    {
        sim::CounterKey cpuAccesses, cpuMisses, missRate;
        sim::CounterKey ddioFills, ddioCpuDisplaced, ioConflicts;
        /** Per slice group: (.misses, .fills). */
        std::vector<std::pair<sim::CounterKey, sim::CounterKey>> group;
    };

    /**
     * Publish completed epochs up to the one containing @p now. The
     * common case -- @p now still inside the current epoch -- is a
     * single compare against the cached epoch-end cycle; the division
     * and publish work only run on an actual boundary crossing.
     */
    void
    roll(Cycles now)
    {
        if (now < epochEnd_)
            return;
        rollSlow(now);
    }

    void rollSlow(Cycles now);
    void publishEpoch(std::uint64_t epoch);
    void reset();

    sim::CounterBus &bus_;
    unsigned groups_;
    std::uint64_t epoch_ = 0;
    Cycles epochEnd_ = 0;  ///< First cycle past the current epoch.
    Acc acc_;
    Keys keys_;
    sim::CounterSample sample_;     ///< Reused across publishes.
    sim::CounterSample zeroSample_; ///< Prebuilt for empty epochs.
};

/**
 * Per-receive-queue recycle probe. Publishes one "rxq<k>" sample per
 * epoch in which queue k recycled at least one buffer:
 *
 *   recycles       buffers recycled this epoch
 *   pages          distinct backing pages among them
 *   reuse_mean     mean recycle distance (recycles since the same
 *                  page last backed a fill on this queue; first
 *                  sightings excluded)
 *   entropy        Shannon entropy (bits) of the epoch's page
 *                  histogram, normalized by log2(recycles) to [0, 1]
 *                  (1 when recycles < 2)
 *
 * plus one "rxagg" sample per non-empty epoch with the cross-queue
 * recycle distribution:
 *
 *   total          recycles across every queue this epoch
 *   q<k>           queue k's share of them (a count)
 *   entropy        Shannon entropy of the distribution, normalized
 *                  by log2(queues) to [0, 1] (1 when queues == 1)
 *
 * The per-queue page-histogram entropy characterizes the *defense*
 * (a randomizing policy raises it; the bare ring pins it at the ring
 * size), while the aggregate's cross-queue entropy is the
 * attacker-visible signal: a trojan or covert sender hammering one
 * flow concentrates recycles on one queue, collapsing it -- what
 * detect::ReuseEntropyDrop scores.
 */
class RxCounterProbe : public nic::RxTelemetry
{
  public:
    /**
     * @param bus    Destination bus (also defines the epoch width).
     * @param queues Receive-queue count of the instrumented driver.
     */
    RxCounterProbe(sim::CounterBus &bus, std::size_t queues);

    void onRecycle(std::size_t queue, std::size_t slot, Addr page,
                   Cycles now) override;

    /** Publish every queue's current partial epoch. */
    void flush(Cycles now);

  private:
    struct QueueState
    {
        std::uint64_t epoch = 0;
        std::uint64_t recycleOrdinal = 0; ///< Lifetime recycle count.

        // Epoch accumulators.
        std::uint64_t recycles = 0;
        std::uint64_t reuseSum = 0;
        std::uint64_t reuseCount = 0;
        std::unordered_map<Addr, std::uint64_t> pageCounts;

        /** page -> ordinal of its last recycle (lifetime). */
        std::unordered_map<Addr, std::uint64_t> lastSeen;
    };

    void publishEpoch(std::size_t queue, std::uint64_t epoch);
    void publishAggregate(std::uint64_t epoch);

    /**
     * Epoch index containing @p now, via a cached [start, end) window
     * so the per-recycle hot path avoids the 64-bit division.
     */
    std::uint64_t
    epochOf(Cycles now)
    {
        if (now < curStart_ || now >= curEnd_) {
            const Cycles width = bus_.epochCycles();
            curTarget_ = now / width;
            curStart_ = curTarget_ * width;
            curEnd_ = curStart_ + width;
        }
        return curTarget_;
    }

    sim::CounterBus &bus_;
    std::vector<QueueState> queues_;
    std::vector<std::string> sources_;  ///< "rxq<k>" per queue.

    // Interned per-queue sample keys, aggregate keys, and q<k> keys.
    sim::CounterKey keyRecycles_, keyPages_, keyReuseMean_, keyEntropy_;
    sim::CounterKey keyTotal_;
    std::vector<sim::CounterKey> qKeys_;

    sim::CounterSample sample_;  ///< Reused across publishes.

    // Cached epoch window for epochOf().
    std::uint64_t curTarget_ = 0;
    Cycles curStart_ = 0;
    Cycles curEnd_ = 0;

    // Cross-queue aggregate epoch state.
    std::uint64_t aggEpoch_ = 0;
    std::vector<std::uint64_t> aggCounts_;
    std::uint64_t aggTotal_ = 0;
};

} // namespace pktchase::detect

#endif // PKTCHASE_DETECT_COUNTERS_HH
