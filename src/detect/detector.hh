/**
 * @file
 * Online packet-chasing detectors over the counter-telemetry bus.
 *
 * A Detector consumes CounterSamples and produces a time-stamped
 * score stream plus a thresholded alarm stream (Score::alarm). All
 * three built-ins are windowed estimators with no global state, so a
 * campaign cell owning its own detector instances inherits the
 * runtime's determinism contract unchanged:
 *
 *  - MissRateSpike ("miss-spike"): z-score of the recent per-epoch
 *    LLC miss count against a calibrated baseline. The first
 *    `window` samples are a deploy-time calibration span (assumed
 *    benign, as a fleet rollout would measure); the baseline mean/sd
 *    then freeze, so a spy that probes *continuously* stays detected
 *    instead of being absorbed into a sliding baseline. A
 *    PRIME+PROBE spy's eviction-set loads are almost all misses, so
 *    probing lifts the short-window mean far above the baseline.
 *    (Counts, not rates: at microsecond epochs the per-epoch rate is
 *    dominated by how many packets happened to arrive, which buries
 *    the spy's added misses in benign variance.)
 *
 *  - ReuseEntropyDrop ("entropy-drop"): drop of the cross-queue
 *    recycle entropy (the "rxagg" telemetry) below a baseline
 *    calibrated over the first `window` samples and then frozen
 *    (same deploy-time-calibration model as miss-spike). Both spans
 *    sum per-epoch queue counts before taking the entropy, so sparse
 *    epochs (a few packets each) still yield a stable distribution
 *    estimate. A trojan or covert sender hammering one flow
 *    concentrates recycles on one RSS queue and collapses the
 *    entropy. Structurally blind at queues == 1 (the distribution is
 *    degenerate) and to purely passive cache-side scanning -- by
 *    design; figD1 quantifies both.
 *
 *  - ProbeCadence ("cadence"): peak autocorrelation of the per-epoch
 *    eviction-set-conflict count (I/O lines displaced by CPU fills).
 *    A spy priming ring-buffer eviction sets at a fixed probe rate
 *    produces conflict bursts with a stable period; benign server
 *    fills displace I/O lines only sporadically and aperiodically
 *    (Poisson arrivals). Alarms additionally require minEvents
 *    conflicts in the window so a near-silent counter cannot alarm on
 *    autocorrelated noise.
 *
 * Scores are threshold-independent (no baseline update ever depends
 * on whether a sample alarmed), so ROC sweeps can re-threshold a
 * recorded score stream without re-running the simulation.
 */

#ifndef PKTCHASE_DETECT_DETECTOR_HH
#define PKTCHASE_DETECT_DETECTOR_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/counter_bus.hh"
#include "sim/types.hh"

namespace pktchase::detect
{

/** One scored epoch. */
struct Score
{
    std::uint64_t epoch = 0; ///< Epoch index of the scored sample.
    Cycles when = 0;         ///< Epoch-end timestamp.
    double score = 0.0;
    bool alarm = false;      ///< score > the detector's threshold.
};

/** Shared sliding-window tuning; zero/default fields pick per-type
 *  defaults (see each detector's kDefault* constants). */
struct DetectorConfig
{
    unsigned window = 96;     ///< Baseline window length, samples.
    unsigned shortWindow = 4; ///< Recent span scored against baseline.
    double threshold = 0.0;   ///< 0 = the detector type's default.

    // Cadence-only knobs.
    unsigned minLag = 3;      ///< Shortest period considered, epochs.
    unsigned maxLag = 0;      ///< 0 = window / 2.
    double minEvents = 8.0;   ///< Alarm floor: conflicts in window.

    // Entropy-drop-only knob: samples summed into the recent span
    // (the baseline span reuses `window`).
    unsigned entropyShort = 24;
};

/**
 * Detector interface: feed samples, read the score/alarm streams.
 */
class Detector
{
  public:
    virtual ~Detector() = default;

    /** Canonical registry name, e.g. "cadence". */
    virtual std::string name() const = 0;

    /**
     * Consume one bus sample. @return the Score it produced (owned by
     * the detector, valid until the next onSample), or nullptr when
     * the sample is not of this detector's source kind.
     */
    const Score *onSample(const sim::CounterSample &s);

    /** The full time-stamped score stream, in consumption order. */
    const std::vector<Score> &scores() const { return scores_; }

    /** Epoch-end timestamps of the alarmed scores, in order. */
    std::vector<Cycles> alarmTimes() const;

    /** Number of alarmed scores so far. */
    std::uint64_t alarmCount() const { return alarms_; }

    double threshold() const { return threshold_; }

  protected:
    explicit Detector(double threshold) : threshold_(threshold) {}

    /**
     * Type hook: score @p s into @p score, or return false when the
     * sample is not consumed by this detector.
     */
    virtual bool evaluate(const sim::CounterSample &s,
                          double &score) = 0;

  private:
    double threshold_;
    std::vector<Score> scores_;
    std::uint64_t alarms_ = 0;
};

/** Calibrated-baseline z-score on per-epoch LLC miss counts. */
class MissRateSpike : public Detector
{
  public:
    static constexpr double kDefaultThreshold = 2.0;
    static constexpr double kMinSigma = 2.0; ///< Miss-count units.

    explicit MissRateSpike(const DetectorConfig &cfg = {});

    std::string name() const override { return "miss-spike"; }

  protected:
    bool evaluate(const sim::CounterSample &s, double &score) override;

  private:
    unsigned window_;
    unsigned short_;
    sim::CounterKey keyCpuMisses_; ///< Resolved once at construction.
    std::vector<double> calib_;  ///< Calibration span, until frozen.
    bool frozen_ = false;
    double mean_ = 0.0;          ///< Frozen baseline mean.
    double sd_ = 0.0;            ///< Frozen baseline deviation.
    std::deque<double> recent_;  ///< Last shortWindow samples.
};

/** Cross-queue recycle-entropy drop below a calibrated baseline. */
class ReuseEntropyDrop : public Detector
{
  public:
    /** Entropy is normalized to [0, 1]; span-summed benign sampling
     *  noise stays within a few hundredths, so 0.16 of concentration
     *  below baseline is a confident flood signature. */
    static constexpr double kDefaultThreshold = 0.16;

    explicit ReuseEntropyDrop(const DetectorConfig &cfg = {});

    std::string name() const override { return "entropy-drop"; }

  protected:
    bool evaluate(const sim::CounterSample &s, double &score) override;

  private:
    unsigned window_;
    unsigned short_;
    std::vector<double> calibCounts_; ///< Summed calibration counts.
    unsigned calibSamples_ = 0;
    bool frozen_ = false;
    double baseEntropy_ = 1.0;        ///< Frozen baseline entropy.
    std::deque<std::vector<double>> recent_; ///< Last entropyShort.
    /** Interned "q<k>" keys, grown on demand as queues appear. */
    std::vector<sim::CounterKey> qKeys_;
};

/** Autocorrelation peak of per-epoch eviction-set-conflict counts. */
class ProbeCadence : public Detector
{
  public:
    static constexpr double kDefaultThreshold = 0.5;

    explicit ProbeCadence(const DetectorConfig &cfg = {});

    std::string name() const override { return "cadence"; }

    /** Best-correlated lag (epochs) of the last scored window; 0
     *  before the window first fills. */
    unsigned bestLag() const { return bestLag_; }

  protected:
    bool evaluate(const sim::CounterSample &s, double &score) override;

  private:
    unsigned window_;
    unsigned minLag_;
    unsigned maxLag_;
    double minEvents_;
    sim::CounterKey keyIoConflicts_; ///< Resolved at construction.

    // The window lives in a flat ring buffer (head_ = next write slot
    // = oldest element once full) and each evaluation linearizes it
    // into scratch_, which then holds the per-epoch deviations for
    // the lag loop -- flat contiguous arrays instead of a deque, with
    // the exact same summation order as the original deque walk, so
    // scores stay bit-identical.
    std::vector<double> ring_;
    std::size_t head_ = 0;
    std::size_t filled_ = 0;
    std::vector<double> scratch_;
    /**
     * Window total maintained incrementally. io_conflicts values are
     * integral counts, so every partial sum is exact in a double and
     * this equals the linearized left-to-right total bit-for-bit --
     * safe to use for the minEvents early-out without touching the
     * window (the make-or-break cost on benign cells, where nearly
     * every epoch exits here).
     */
    double runningTotal_ = 0.0;
    unsigned bestLag_ = 0;
};

/** The registered detector names, sorted. */
std::vector<std::string> detectorNames();

/** Whether @p name names a built-in detector. */
bool isDetectorName(const std::string &name);

/** Instantiate the detector named @p name; fatal when unknown. */
std::unique_ptr<Detector>
makeDetector(const std::string &name, const DetectorConfig &cfg = {});

/**
 * Area under the ROC curve separating @p positives (attack-epoch
 * scores) from @p negatives (benign-epoch scores): the Mann-Whitney
 * probability that a random positive outscores a random negative,
 * ties counted half. 0.5 = chance, 1.0 = perfect separation.
 */
double aucScore(std::vector<double> positives,
                std::vector<double> negatives);

} // namespace pktchase::detect

#endif // PKTCHASE_DETECT_DETECTOR_HH
