/**
 * @file
 * The detection rig: one assembled telemetry + detection stack over a
 * (hierarchy, driver) pair.
 *
 * Construction wires everything: a CounterBus at the configured epoch
 * width, an LlcCounterProbe attached to the LLC, an RxCounterProbe
 * attached to the driver, one hosted Detector per requested name
 * (score-only consumers -- the figD1 ROC cells read their streams),
 * and optionally one GateController (for detector-gated defenses).
 * Destruction detaches the probes, restoring the zero-cost off-path.
 *
 * A rig is testbed-local: campaign cells each own a private rig, so
 * the detection layer inherits the runtime's determinism contract.
 */

#ifndef PKTCHASE_DETECT_RIG_HH
#define PKTCHASE_DETECT_RIG_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "detect/counters.hh"
#include "detect/detector.hh"
#include "detect/gate.hh"
#include "nic/igb_driver.hh"
#include "sim/counter_bus.hh"

namespace pktchase::detect
{

/** What to assemble. */
struct RigConfig
{
    Cycles epochCycles = sim::kDefaultEpochCycles;

    /** Hosted score-only detectors, by name. */
    std::vector<std::string> detectors;

    /** Detector arming a gate; "" = no gate. */
    std::string gateDetector;

    DetectorConfig detector; ///< Tuning shared by every instance.
    GateConfig gate;
};

/**
 * Owns the bus, the probes, the hosted detectors, and the gate.
 */
class DetectionRig
{
  public:
    DetectionRig(cache::Hierarchy &hier, nic::IgbDriver &driver,
                 const RigConfig &cfg);
    ~DetectionRig();

    DetectionRig(const DetectionRig &) = delete;
    DetectionRig &operator=(const DetectionRig &) = delete;

    sim::CounterBus &bus() { return bus_; }

    /** Hosted detector named @p name; fatal when absent. */
    Detector &detector(const std::string &name);

    /** All hosted detectors, in RigConfig order. */
    const std::vector<std::unique_ptr<Detector>> &detectors() const
    {
        return detectors_;
    }

    /** The gate, or nullptr when RigConfig::gateDetector was empty. */
    GateController *gate() { return gate_.get(); }
    const GateController *gate() const { return gate_.get(); }

    /** Publish both probes' partial epochs (end of a run). */
    void flush(Cycles now);

    const RigConfig &config() const { return cfg_; }

  private:
    cache::Hierarchy &hier_;
    nic::IgbDriver &driver_;
    RigConfig cfg_;
    sim::CounterBus bus_;
    LlcCounterProbe llcProbe_;
    RxCounterProbe rxProbe_;
    std::vector<std::unique_ptr<Detector>> detectors_;
    std::unique_ptr<GateController> gate_;
};

} // namespace pktchase::detect

#endif // PKTCHASE_DETECT_RIG_HH
