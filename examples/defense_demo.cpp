/**
 * @file
 * Defense demo (Sec. VII): the adaptive I/O cache partitioning stops
 * incoming packets from evicting CPU (spy) lines, closing the channel
 * while costing the server almost nothing.
 *
 * Build & run:  ./build/examples/defense_demo
 */

#include <cstdio>

#include "channel/capacity.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;

namespace
{

void
runChannel(bool adaptive)
{
    testbed::TestbedConfig cfg;
    cfg.llc.adaptivePartition = adaptive;
    testbed::Testbed tb(cfg);

    channel::ChannelRunConfig run;
    run.scheme = channel::Scheme::Binary;
    run.nSymbols = 60;
    const channel::ChannelMeasurement m =
        channel::runCovertChannel(tb, run);

    const auto &llc = tb.hier().llc().stats();
    std::printf("  %-22s sent %3zu, received %3zu, error %5.1f%%, "
                "cpu lines evicted by I/O: %llu\n",
                adaptive ? "adaptive partitioning:" : "vulnerable DDIO:",
                m.sent, m.received, m.errorRate * 100.0,
                static_cast<unsigned long long>(llc.cpuEvictedByIo));
}

} // namespace

int
main()
{
    std::printf("covert channel vs. the cache defense\n");
    runChannel(false);
    runChannel(true);

    std::printf("\nserver cost of the defense (closed-loop Nginx, "
                "20 MB LLC)\n");
    const auto base = workload::nginxThroughput(
        workload::CacheMode::Ddio, cache::Geometry::xeonE52660(), 3000);
    const auto def = workload::nginxThroughput(
        workload::CacheMode::AdaptivePartition,
        cache::Geometry::xeonE52660(), 3000);
    std::printf("  DDIO baseline:          %.1f kreq/s\n",
                base.kiloRequestsPerSec);
    std::printf("  adaptive partitioning:  %.1f kreq/s (%.1f%% "
                "overhead)\n",
                def.kiloRequestsPerSec,
                100.0 * (1.0 - def.kiloRequestsPerSec /
                                   base.kiloRequestsPerSec));
    return 0;
}
