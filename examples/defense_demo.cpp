/**
 * @file
 * Defense demo (Secs. VI-VII): defenses are named registry specs, so
 * trying a mitigation is a string, not a rebuild. The adaptive I/O
 * cache partitioning stops incoming packets from evicting CPU (spy)
 * lines, closing the channel while costing the server almost nothing.
 *
 * Build & run:  ./build/examples/defense_demo
 */

#include <cstdio>
#include <string>

#include "channel/capacity.hh"
#include "defense/registry.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;

namespace
{

void
runChannel(const std::string &cache_spec)
{
    testbed::TestbedConfig cfg;
    cfg.cacheDefense = cache_spec;
    testbed::Testbed tb(cfg);

    channel::ChannelRunConfig run;
    run.scheme = channel::Scheme::Binary;
    run.nSymbols = 60;
    const channel::ChannelMeasurement m =
        channel::runCovertChannel(tb, run);

    const auto &llc = tb.hier().llc().stats();
    std::printf("  %-22s sent %3zu, received %3zu, error %5.1f%%, "
                "cpu lines evicted by I/O: %llu\n", cache_spec.c_str(),
                m.sent, m.received, m.errorRate * 100.0,
                static_cast<unsigned long long>(llc.cpuEvictedByIo));
}

} // namespace

int
main()
{
    std::printf("registered defense policies\n");
    for (const char *domain : {"ring", "cache"}) {
        for (const std::string &name :
             defense::Registry::instance().names(domain)) {
            std::printf("  %-20s %s\n", name.c_str(),
                        defense::Registry::instance()
                            .description(name).c_str());
        }
    }

    std::printf("\ncovert channel vs. the cache defense\n");
    runChannel("cache.ddio");
    runChannel("cache.adaptive");

    std::printf("\nserver cost of the defense (closed-loop Nginx, "
                "20 MB LLC)\n");
    const auto base = workload::nginxThroughput(
        "cache.ddio", cache::Geometry::xeonE52660(), 3000);
    const auto def = workload::nginxThroughput(
        "cache.adaptive", cache::Geometry::xeonE52660(), 3000);
    std::printf("  cache.ddio:             %.1f kreq/s\n",
                base.kiloRequestsPerSec);
    std::printf("  cache.adaptive:         %.1f kreq/s (%.1f%% "
                "overhead)\n",
                def.kiloRequestsPerSec,
                100.0 * (1.0 - def.kiloRequestsPerSec /
                                   base.kiloRequestsPerSec));
    return 0;
}
