/**
 * @file
 * Covert channel demo: a remote trojan with network access only and a
 * local spy with no network access exchange a text message through
 * packet sizes observed in the LLC (Sec. IV).
 *
 * Build & run:  ./build/examples/covert_channel
 */

#include <cstdio>
#include <string>
#include <vector>

#include "channel/capacity.hh"
#include "channel/spy.hh"
#include "channel/trojan.hh"
#include "net/traffic.hh"
#include "sim/stats.hh"
#include "testbed/testbed.hh"

using namespace pktchase;
using channel::Scheme;

namespace
{

std::vector<unsigned>
textToBits(const std::string &text)
{
    std::vector<unsigned> bits;
    for (char ch : text)
        for (int b = 7; b >= 0; --b)
            bits.push_back((static_cast<unsigned>(ch) >> b) & 1u);
    return bits;
}

std::string
bitsToText(const std::vector<unsigned> &bits)
{
    std::string text;
    for (std::size_t i = 0; i + 7 < bits.size(); i += 8) {
        unsigned ch = 0;
        for (int b = 0; b < 8; ++b)
            ch = (ch << 1) | bits[i + static_cast<std::size_t>(b)];
        text.push_back(static_cast<char>(ch));
    }
    return text;
}

} // namespace

int
main()
{
    testbed::Testbed tb(testbed::TestbedConfig{});

    const std::string message = "PACKET CHASING";
    const std::vector<unsigned> bits = textToBits(message);
    std::printf("trojan sends: \"%s\" (%zu bits, binary encoding, "
                "256 broadcast packets per bit)\n",
                message.c_str(), bits.size());

    // The spy picks a single-mapped buffer and watches blocks 1-3.
    const auto buffers = channel::pickMonitoredBuffers(tb, 1);
    channel::SpyConfig spy_cfg;
    spy_cfg.probeRateHz = 28000;
    channel::CovertSpy spy(tb.hier(), tb.groups(), buffers,
                           Scheme::Binary, spy_cfg);

    const std::size_t ring = tb.driver().ring().size();
    auto trojan = std::make_unique<channel::TrojanSource>(
        bits, Scheme::Binary, ring, 0.0);
    net::TrafficPump pump(tb.eq(), tb.driver(), std::move(trojan),
                          tb.eq().now() + 1000, 2000.0);

    // Listen long enough for the whole message at line rate.
    const double secs =
        static_cast<double>(bits.size() * ring) /
        net::maxFrameRate(256) * 1.4 + 0.01;
    const auto result =
        spy.listen(tb.eq(), tb.eq().now() + secondsToCycles(secs));

    const std::vector<unsigned> received = result.symbols();
    std::printf("spy decoded %zu symbols\n", received.size());
    std::printf("spy reads:   \"%s\"\n", bitsToText(received).c_str());

    const double err = bits.empty() ? 0.0
        : static_cast<double>(levenshtein(bits, received)) /
            static_cast<double>(bits.size());
    std::printf("bit error rate (Levenshtein): %.2f%%\n", err * 100.0);
    return 0;
}
