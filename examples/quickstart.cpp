/**
 * @file
 * Quickstart: assemble the simulated host, stream broadcast frames at
 * it, and watch the rx ring's cache footprint appear from an
 * unprivileged spy's point of view (the Fig. 7 experiment in miniature).
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "attack/footprint.hh"
#include "net/traffic.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

int
main()
{
    // A PowerEdge T620-class host: 20 MB E5-2660 LLC, DDIO on, IGB
    // driver with a 256-entry rx ring.
    testbed::TestbedConfig cfg;
    testbed::Testbed tb(cfg);

    std::printf("LLC: %u slices x %u sets x %u ways = %.0f MB\n",
                cfg.llc.geom.slices, cfg.llc.geom.setsPerSlice,
                cfg.llc.geom.ways,
                static_cast<double>(cfg.llc.geom.capacityBytes()) /
                    (1024.0 * 1024.0));
    std::printf("rx ring: %zu buffers, page-aligned combos: %u\n",
                tb.driver().ring().size(),
                cfg.llc.geom.pageAlignedCombos());

    // The spy partitions its page pool into the 256 page-aligned
    // (set, slice) combos and monitors all of them.
    const attack::ComboGroups &groups = tb.groups();
    std::vector<std::size_t> all;
    for (std::size_t c = 0; c < groups.groups.size(); ++c)
        all.push_back(c);
    attack::FootprintScanner scanner(tb.hier(), groups, all,
                                     attack::FootprintConfig{});

    // Idle window: no traffic.
    auto idle = scanner.scan(tb.eq(),
                             tb.eq().now() + secondsToCycles(0.05));

    // Receiving window: a remote sender broadcasts 192-byte frames
    // (copy-break sized, so every fill stays in the page's lower half
    // and hits the page-aligned sets; larger frames make the driver
    // alternate page halves).
    net::TrafficPump pump(
        tb.eq(), tb.driver(),
        std::make_unique<net::ConstantStream>(192, 200000.0, 0),
        tb.eq().now() + 1000);
    auto busy = scanner.scan(tb.eq(),
                             tb.eq().now() + secondsToCycles(0.05));

    const auto idle_rates = attack::FootprintScanner::activityRates(idle);
    const auto busy_rates = attack::FootprintScanner::activityRates(busy);

    unsigned hot = 0;
    double idle_mean = 0.0, busy_mean = 0.0;
    for (std::size_t c = 0; c < all.size(); ++c) {
        idle_mean += idle_rates[c];
        busy_mean += busy_rates[c];
        if (busy_rates[c] > idle_rates[c] + 0.05)
            ++hot;
    }
    idle_mean /= static_cast<double>(all.size());
    busy_mean /= static_cast<double>(all.size());

    std::printf("\nmean activity, idle:      %.4f\n", idle_mean);
    std::printf("mean activity, receiving: %.4f\n", busy_mean);
    std::printf("combos lit up by traffic: %u / %zu\n", hot, all.size());
    std::printf("(the paper's Fig. 7: rx buffers occupy a subset of the"
                " 256 page-aligned sets)\n");

    const auto candidates = attack::FootprintScanner::candidateBufferSets(
        busy, idle_mean + 0.05, 0.95);
    std::printf("candidate rx-buffer combos found by the spy: %zu "
                "(ground truth: %zu)\n",
                candidates.size(), tb.activeCombos().size());
    return 0;
}
