/**
 * @file
 * Campaign runtime demo: list the registered scenario grids, run a
 * reduced defense sweep in parallel, and prove the determinism
 * contract by diffing the merged report of a 1-thread run against a
 * 4-thread run of the same campaign seed.
 *
 * Build & run:  ./build/examples/campaign
 *
 * With an argument, run any registered grid by name instead and print
 * its full merged report -- every experiment (and every defense cell
 * in it) is reachable from the command line through the registries:
 *
 *     ./build/examples/campaign fig16x
 */

#include <cstdio>
#include <string>

#include "runtime/registry.hh"
#include "runtime/sweep.hh"
#include "workload/attack_eval.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;

int
main(int argc, char **argv)
{
    workload::registerDefenseScenarios();
    workload::registerAttackScenarios();

    if (argc > 1) {
        const std::string name = argv[1];
        if (!runtime::ScenarioRegistry::instance().contains(name)) {
            std::fprintf(stderr, "unknown grid \"%s\"; registered:\n",
                         name.c_str());
            for (const std::string &n :
                 runtime::ScenarioRegistry::instance().names())
                std::fprintf(stderr, "  %s\n", n.c_str());
            return 1;
        }
        const auto results = runtime::sweep(name);
        std::fputs(runtime::formatReport(results).c_str(), stdout);
        return 0;
    }

    auto &reg = runtime::ScenarioRegistry::instance();
    std::printf("registered scenario grids:\n");
    for (const std::string &name : reg.names())
        std::printf("  %-8s %s\n", name.c_str(),
                    reg.description(name).c_str());

    // A reduced Fig. 14 sweep (fewer requests than the bench) so the
    // demo finishes quickly; each cell still assembles its own
    // full-size testbed.
    std::printf("\nrunning a reduced fig14 sweep in parallel:\n");
    const auto grid = workload::fig14ThroughputGrid(800);

    runtime::SweepOptions fast;
    fast.threads = 4;
    fast.seed = 42;
    const auto parallel = runtime::sweep(grid, fast);

    for (const auto &r : parallel)
        std::printf("  %-40s %8.1f kreq/s  miss %.3f\n",
                    r.name.c_str(), r.value("kreq_per_sec"),
                    r.value("llc_miss_rate"));

    // Determinism contract: merged stats are bit-identical to the
    // serial run because each cell's randomness depends only on
    // (campaign seed, grid index) and the merge is by index.
    runtime::SweepOptions serial = fast;
    serial.threads = 1;
    serial.verbose = false;
    const auto reference = runtime::sweep(grid, serial);

    const bool identical = runtime::formatReport(parallel) ==
                           runtime::formatReport(reference);
    std::printf("\n4-thread report == 1-thread report: %s\n",
                identical ? "yes (bit-identical)" : "NO -- BUG");
    return identical ? 0 : 1;
}
