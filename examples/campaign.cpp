/**
 * @file
 * Campaign runtime demo: list the registered scenario grids, run a
 * reduced defense sweep in parallel, and prove the determinism
 * contract by diffing the merged report of a 1-thread run against a
 * 4-thread run of the same campaign seed.
 *
 * Build & run:  ./build/examples/campaign
 *
 * With a grid name, run any registered grid instead and print its
 * full merged report -- every experiment (and every defense cell in
 * it) is reachable from the command line through the registries.
 * Flags control the worker count and the campaign seed:
 *
 *     ./build/examples/campaign fig16x
 *     ./build/examples/campaign figD1 --threads=1 --seed=7
 *     ./build/examples/campaign --list
 *     ./build/examples/campaign fig7q --trace=trace.json
 *
 * --threads=0 (the default) resolves like the benches: the
 * PKTCHASE_THREADS environment variable, else max(4, hardware).
 * Reports are bit-identical across thread counts at a fixed seed --
 * CI diffs --threads=1 against the default to prove it, and
 * --trace never perturbs the report (spans observe wall-clock only).
 */

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>

#include "obs/trace.hh"
#include "runtime/registry.hh"
#include "runtime/sweep.hh"
#include "workload/attack_eval.hh"
#include "workload/defense_eval.hh"
#include "workload/detect_eval.hh"

using namespace pktchase;

namespace
{

/** Parse a decimal string; false on junk or > 19 digits (the same
 *  stoull-overflow cap the defense spec grammar applies). */
bool
parseUnsigned(const std::string &digits, std::uint64_t &out)
{
    if (digits.empty() || digits.size() > 19 ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = std::stoull(digits);
    return true;
}

/** Parse "--threads=N" / "--seed=S" into @p opt; false on junk. */
bool
parseFlag(const std::string &arg, runtime::SweepOptions &opt,
          bool &seed_set, bool &list, std::string &trace_path)
{
    std::uint64_t value = 0;
    const std::string threads = "--threads=";
    const std::string seed = "--seed=";
    const std::string trace = "--trace=";
    if (arg.rfind(threads, 0) == 0) {
        if (!parseUnsigned(arg.substr(threads.size()), value) ||
            value > std::numeric_limits<unsigned>::max())
            return false;
        opt.threads = static_cast<unsigned>(value);
        return true;
    }
    if (arg.rfind(seed, 0) == 0) {
        if (!parseUnsigned(arg.substr(seed.size()), value))
            return false;
        opt.seed = value;
        seed_set = true;
        return true;
    }
    if (arg.rfind(trace, 0) == 0) {
        trace_path = arg.substr(trace.size());
        return !trace_path.empty();
    }
    if (arg == "--list") {
        list = true;
        return true;
    }
    if (arg == "--quiet") {
        opt.quiet = true;
        return true;
    }
    return false;
}

/** The registered grids with their one-line descriptions. */
void
printGrids(std::FILE *out)
{
    auto &reg = runtime::ScenarioRegistry::instance();
    std::fprintf(out, "registered scenario grids:\n");
    for (const std::string &name : reg.names())
        std::fprintf(out, "  %-8s %s\n", name.c_str(),
                     reg.description(name).c_str());
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [<grid>] [--threads=N] [--seed=S] "
                 "[--trace=out.json] [--list] [--quiet]\n",
                 argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    workload::registerDefenseScenarios();
    workload::registerAttackScenarios();
    workload::registerDetectionScenarios();

    runtime::SweepOptions opt;
    bool seed_set = false;
    bool list = false;
    std::string grid_name;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            if (!parseFlag(arg, opt, seed_set, list, trace_path))
                return usage(argv[0]);
        } else if (grid_name.empty()) {
            grid_name = arg;
        } else {
            return usage(argv[0]);
        }
    }

    if (list) {
        printGrids(stdout);
        return 0;
    }

    // The session spans the whole run and writes its file when it goes
    // out of scope at the end of main. Without --trace no session
    // exists and every span compiles down to a TLS-null check.
    std::optional<obs::TraceSession> trace;
    if (!trace_path.empty())
        trace.emplace(trace_path);

    if (!grid_name.empty()) {
        if (!runtime::ScenarioRegistry::instance().contains(grid_name)) {
            std::fprintf(stderr, "unknown grid \"%s\"\n",
                         grid_name.c_str());
            printGrids(stderr);
            return 1;
        }
        const auto results = runtime::sweep(grid_name, opt);
        std::fputs(runtime::formatReport(results).c_str(), stdout);
        return 0;
    }

    printGrids(stdout);

    // A reduced Fig. 14 sweep (fewer requests than the bench) so the
    // demo finishes quickly; each cell still assembles its own
    // full-size testbed.
    std::printf("\nrunning a reduced fig14 sweep in parallel:\n");
    const auto grid = workload::fig14ThroughputGrid(800);

    runtime::SweepOptions fast = opt;
    if (fast.threads == 0)
        fast.threads = 4;
    if (!seed_set)
        fast.seed = 42; // The demo's historical pinned seed.
    const auto parallel = runtime::sweep(grid, fast);

    for (const auto &r : parallel)
        std::printf("  %-40s %8.1f kreq/s  miss %.3f\n",
                    r.name.c_str(), r.value("kreq_per_sec"),
                    r.value("llc_miss_rate"));

    // Determinism contract: merged stats are bit-identical to the
    // serial run because each cell's randomness depends only on
    // (campaign seed, grid index) and the merge is by index.
    runtime::SweepOptions serial = fast;
    serial.threads = 1;
    serial.verbose = false;
    const auto reference = runtime::sweep(grid, serial);

    const bool identical = runtime::formatReport(parallel) ==
                           runtime::formatReport(reference);
    std::printf("\n4-thread report == 1-thread report: %s\n",
                identical ? "yes (bit-identical)" : "NO -- BUG");
    return identical ? 0 : 1;
}
