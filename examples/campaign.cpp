/**
 * @file
 * Campaign runtime demo: list the registered scenario grids, run a
 * reduced defense sweep in parallel, and prove the determinism
 * contract by diffing the merged report of a 1-thread run against a
 * 4-thread run of the same campaign seed.
 *
 * Build & run:  ./build/examples/campaign
 *
 * With a grid name, run any registered grid instead and print its
 * full merged report -- every experiment (and every defense cell in
 * it) is reachable from the command line through the registries.
 * Flags control the worker count and the campaign seed:
 *
 *     ./build/examples/campaign fig16x
 *     ./build/examples/campaign figD1 --threads=1 --seed=7
 *     ./build/examples/campaign --list
 *     ./build/examples/campaign fig7q --trace=trace.json
 *
 * Multi-process sharding: --shard=i/N runs the deterministic slice
 * {i, i+N, ...} of the grid and --report writes the mergeable
 * campaign report; --merge validates and reassembles a shard set into
 * the full-grid report, byte-identical to an unsharded --report run:
 *
 *     ./build/examples/campaign figD1 --shard=0/4 --report=s0.json
 *     ...                              --shard=3/4 --report=s3.json
 *     ./build/examples/campaign --merge full.json s0.json ... s3.json
 *
 * Profiling: --profile=out.json opens an in-process
 * obs::ProfileSession and writes the per-phase / per-cell profile
 * report (see runtime/fabric/profile_report.hh); profile reports
 * shard and --merge exactly like campaign reports. --progress=rich
 * adds the hottest phase's self-time share to the live progress line.
 * --trace-buffer=N caps the per-thread trace buffer (with --trace);
 * overflow drops events, counted in the trace, on stderr, and in the
 * profile report's trace.dropped.* scalars.
 *
 * --threads=0 (the default) resolves like the benches: the
 * PKTCHASE_THREADS environment variable, else max(4, hardware).
 * Reports are bit-identical across thread counts at a fixed seed --
 * CI diffs --threads=1 against the default to prove it, and
 * --trace never perturbs the report (spans observe wall-clock only).
 */

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "obs/profile.hh"
#include "obs/trace.hh"
#include "runtime/fabric/profile_report.hh"
#include "runtime/fabric/shard.hh"
#include "runtime/registry.hh"
#include "runtime/sweep.hh"
#include "workload/attack_eval.hh"
#include "workload/defense_eval.hh"
#include "workload/detect_eval.hh"

using namespace pktchase;

namespace
{

/** Parse a decimal string; false on junk or > 19 digits (the same
 *  stoull-overflow cap the defense spec grammar applies). */
bool
parseUnsigned(const std::string &digits, std::uint64_t &out)
{
    if (digits.empty() || digits.size() > 19 ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = std::stoull(digits);
    return true;
}

/** Flags accumulated by parseFlag(). */
struct Options
{
    runtime::SweepOptions sweep;
    bool seed_set = false;
    bool list = false;
    bool merge = false;
    std::string trace_path;
    std::string report_path;
    std::string profile_path;
    std::uint64_t trace_buffer = 0; ///< 0: TraceSession's default cap.
    runtime::ShardSpec shard; ///< Defaults to the unsharded 0/1.
    bool shard_set = false;
};

/** Parse one "--flag[=value]" into @p opt; false on junk. */
bool
parseFlag(const std::string &arg, Options &opt)
{
    std::uint64_t value = 0;
    const std::string threads = "--threads=";
    const std::string seed = "--seed=";
    const std::string trace = "--trace=";
    const std::string shard = "--shard=";
    const std::string report = "--report=";
    if (arg.rfind(threads, 0) == 0) {
        if (!parseUnsigned(arg.substr(threads.size()), value) ||
            value > std::numeric_limits<unsigned>::max())
            return false;
        opt.sweep.threads = static_cast<unsigned>(value);
        return true;
    }
    if (arg.rfind(seed, 0) == 0) {
        if (!parseUnsigned(arg.substr(seed.size()), value))
            return false;
        opt.sweep.seed = value;
        opt.seed_set = true;
        return true;
    }
    if (arg.rfind(trace, 0) == 0) {
        opt.trace_path = arg.substr(trace.size());
        return !opt.trace_path.empty();
    }
    const std::string profile = "--profile=";
    if (arg.rfind(profile, 0) == 0) {
        opt.profile_path = arg.substr(profile.size());
        return !opt.profile_path.empty();
    }
    const std::string tracebuf = "--trace-buffer=";
    if (arg.rfind(tracebuf, 0) == 0) {
        if (!parseUnsigned(arg.substr(tracebuf.size()), value) ||
            value == 0)
            return false;
        opt.trace_buffer = value;
        return true;
    }
    const std::string progress = "--progress=";
    if (arg.rfind(progress, 0) == 0) {
        const std::string mode = arg.substr(progress.size());
        if (mode == "rich") {
            opt.sweep.richProgress = true;
            return true;
        }
        if (mode == "plain") {
            opt.sweep.richProgress = false;
            return true;
        }
        return false;
    }
    if (arg.rfind(shard, 0) == 0) {
        opt.shard_set = true;
        return runtime::parseShardSpec(arg.substr(shard.size()),
                                       opt.shard);
    }
    if (arg.rfind(report, 0) == 0) {
        opt.report_path = arg.substr(report.size());
        return !opt.report_path.empty();
    }
    if (arg == "--merge") {
        opt.merge = true;
        return true;
    }
    if (arg == "--list") {
        opt.list = true;
        return true;
    }
    if (arg == "--quiet") {
        opt.sweep.quiet = true;
        return true;
    }
    return false;
}

/** The registered grids with their one-line descriptions. */
void
printGrids(std::FILE *out)
{
    auto &reg = runtime::ScenarioRegistry::instance();
    std::fprintf(out, "registered scenario grids:\n");
    for (const std::string &name : reg.names())
        std::fprintf(out, "  %-8s %s\n", name.c_str(),
                     reg.description(name).c_str());
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [<grid>] [--threads=N] [--seed=S] "
                 "[--shard=i/N] [--report=out.json] "
                 "[--profile=out.json] [--trace=out.json] "
                 "[--trace-buffer=N] [--progress=rich|plain] "
                 "[--list] [--quiet]\n"
                 "       %s --merge <out.json> <shard.json>...\n",
                 argv0, argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    workload::registerDefenseScenarios();
    workload::registerAttackScenarios();
    workload::registerDetectionScenarios();

    Options opt;
    std::string grid_name;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            if (!parseFlag(arg, opt))
                return usage(argv[0]);
        } else {
            positional.push_back(arg);
        }
    }

    if (opt.merge) {
        // campaign --merge <out.json> <shard.json>...
        if (positional.size() < 2)
            return usage(argv[0]);
        const std::string out = positional.front();
        const std::vector<std::string> inputs(positional.begin() + 1,
                                              positional.end());
        const std::string err =
            runtime::mergeShardReports(inputs, out);
        if (!err.empty()) {
            std::fprintf(stderr, "merge rejected: %s\n", err.c_str());
            return 1;
        }
        std::printf("merged %zu shard(s) into %s\n", inputs.size(),
                    out.c_str());
        return 0;
    }

    if (positional.size() > 1)
        return usage(argv[0]);
    if (!positional.empty())
        grid_name = positional.front();

    if (opt.list) {
        printGrids(stdout);
        return 0;
    }

    if ((opt.shard_set || !opt.report_path.empty() ||
         !opt.profile_path.empty()) &&
        grid_name.empty()) {
        std::fprintf(stderr,
                     "--shard/--report/--profile need a grid to run\n");
        return usage(argv[0]);
    }
    if (opt.trace_buffer != 0 && opt.trace_path.empty()) {
        std::fprintf(stderr, "--trace-buffer needs --trace\n");
        return usage(argv[0]);
    }

    // The session spans the whole run and writes its file when it goes
    // out of scope at the end of main. Without --trace no session
    // exists and every span compiles down to a TLS-null check.
    std::optional<obs::TraceSession> trace;
    if (!opt.trace_path.empty()) {
        if (opt.trace_buffer != 0)
            trace.emplace(opt.trace_path,
                          static_cast<std::size_t>(opt.trace_buffer));
        else
            trace.emplace(opt.trace_path);
    }

    // Profile aggregation: on for --profile (report) and
    // --progress=rich (live top-phase line). PKTCHASE_PROFILE_TICKS=N
    // swaps the wall clock for the deterministic N-ns-per-query test
    // clock, which is what makes sharded --profile runs merge
    // byte-identically to an unsharded one in CI.
    std::optional<obs::ProfileSession> profile;
    if (!opt.profile_path.empty() || opt.sweep.richProgress) {
        std::uint64_t ticks = 0;
        if (const char *env = std::getenv("PKTCHASE_PROFILE_TICKS")) {
            if (!parseUnsigned(env, ticks)) {
                std::fprintf(stderr,
                             "invalid PKTCHASE_PROFILE_TICKS "
                             "\"%s\"\n",
                             env);
                return 1;
            }
        }
        profile.emplace(ticks);
    }

    if (!grid_name.empty()) {
        if (!runtime::ScenarioRegistry::instance().contains(grid_name)) {
            std::fprintf(stderr, "unknown grid \"%s\"\n",
                         grid_name.c_str());
            printGrids(stderr);
            return 1;
        }
        const std::vector<runtime::Scenario> grid =
            runtime::ScenarioRegistry::instance().make(grid_name);
        runtime::SweepOptions sweep_opt = opt.sweep;
        sweep_opt.subset =
            runtime::shardIndices(grid.size(), opt.shard);
        if (opt.shard_set && sweep_opt.subset.empty()) {
            std::fprintf(stderr,
                         "shard %u/%u of the %zu-cell grid \"%s\" is "
                         "empty\n",
                         opt.shard.index, opt.shard.count, grid.size(),
                         grid_name.c_str());
            return 1;
        }
        const auto results = runtime::sweep(grid, sweep_opt);
        std::fputs(runtime::formatReport(results).c_str(), stdout);
        if (!opt.report_path.empty()) {
            const sim::BenchReport report = runtime::campaignReport(
                grid_name, sweep_opt.seed, grid.size(), opt.shard,
                results);
            if (!report.write(opt.report_path))
                return 1;
            std::printf("wrote %s (shard %u/%u, %zu cells)\n",
                        opt.report_path.c_str(), opt.shard.index,
                        opt.shard.count, results.size());
        }
        if (!opt.profile_path.empty()) {
            const unsigned threads = opt.sweep.threads
                                         ? opt.sweep.threads
                                         : runtime::defaultThreads();
            const sim::BenchReport report = runtime::profileReport(
                grid_name, sweep_opt.seed, grid.size(), opt.shard,
                threads, profile->clockTag(), results);
            if (!report.write(opt.profile_path))
                return 1;
            std::printf("wrote %s (profile, shard %u/%u, %zu cells)\n",
                        opt.profile_path.c_str(), opt.shard.index,
                        opt.shard.count, results.size());
        }
        return 0;
    }

    printGrids(stdout);

    // A reduced Fig. 14 sweep (fewer requests than the bench) so the
    // demo finishes quickly; each cell still assembles its own
    // full-size testbed.
    std::printf("\nrunning a reduced fig14 sweep in parallel:\n");
    const auto grid = workload::fig14ThroughputGrid(800);

    runtime::SweepOptions fast = opt.sweep;
    if (fast.threads == 0)
        fast.threads = 4;
    if (!opt.seed_set)
        fast.seed = 42; // The demo's historical pinned seed.
    const auto parallel = runtime::sweep(grid, fast);

    for (const auto &r : parallel)
        std::printf("  %-40s %8.1f kreq/s  miss %.3f\n",
                    r.name.c_str(), r.value("kreq_per_sec"),
                    r.value("llc_miss_rate"));

    // Determinism contract: merged stats are bit-identical to the
    // serial run because each cell's randomness depends only on
    // (campaign seed, grid index) and the merge is by index -- with
    // or without work stealing.
    runtime::SweepOptions serial = fast;
    serial.threads = 1;
    serial.verbose = false;
    const auto reference = runtime::sweep(grid, serial);

    const bool identical = runtime::formatReport(parallel) ==
                           runtime::formatReport(reference);
    std::printf("\n4-thread report == 1-thread report: %s\n",
                identical ? "yes (bit-identical)" : "NO -- BUG");
    return identical ? 0 : 1;
}
