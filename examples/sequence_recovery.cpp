/**
 * @file
 * Ring sequence recovery demo: Algorithm 1 recovers the order in which
 * the driver's rx buffers are filled, scored against driver ground
 * truth with Levenshtein distance (Sec. III-C, Table I).
 *
 * Build & run:  ./build/examples/sequence_recovery
 */

#include <cstdio>

#include "attack/sequencer.hh"
#include "net/traffic.hh"
#include "sim/stats.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

int
main()
{
    testbed::Testbed tb(testbed::TestbedConfig{});

    // Monitor the first 32 active combos, as in Table I.
    std::vector<std::size_t> active = tb.activeCombos();
    if (active.size() > 32)
        active.resize(32);
    std::printf("monitoring %zu page-aligned sets while a remote "
                "sender streams packets...\n", active.size());

    // Profiling-phase sender: constant broadcast stream.
    net::TrafficPump pump(
        tb.eq(), tb.driver(),
        std::make_unique<net::ConstantStream>(128, 100000.0, 0),
        tb.eq().now() + 1000);

    attack::SequencerConfig cfg;
    cfg.nSamples = 50000;
    cfg.probeRateHz = 100000;
    cfg.probe.ways = tb.config().llc.geom.ways;
    attack::Sequencer seq(tb.hier(), tb.groups(), active, cfg);
    const attack::SequencerResult result = seq.run(tb.eq());

    // Ground truth from "driver instrumentation".
    std::vector<std::size_t> monitored_gsets;
    const auto all_gsets = tb.comboGsets();
    for (std::size_t c : active)
        monitored_gsets.push_back(all_gsets[c]);
    std::vector<std::size_t> ring_gsets;
    for (std::size_t c : tb.ringComboSequence())
        ring_gsets.push_back(all_gsets[c]);
    const std::vector<int> expected =
        attack::expectedMonitorSequence(ring_gsets, monitored_gsets);

    std::printf("recovered sequence length: %zu (expected %zu)\n",
                result.sequence.size(), expected.size());
    const std::size_t dist = cyclicLevenshtein(result.sequence, expected);
    std::printf("Levenshtein distance to ground truth: %zu "
                "(%.1f%% error)\n", dist,
                expected.empty() ? 0.0
                    : 100.0 * static_cast<double>(dist) /
                        static_cast<double>(expected.size()));
    std::printf("samples used: %zu, sets replaced by block-1 twin: %u\n",
                result.samplesUsed, result.replacedSets);
    std::printf("simulated sampling time: %.1f ms\n",
                cyclesToSeconds(result.elapsed) * 1e3);
    return 0;
}
