/**
 * @file
 * Web fingerprinting demo (Sec. V): the spy identifies which of five
 * sites a victim on the same host visits, from cache activity alone.
 *
 * Build & run:  ./build/examples/web_fingerprint
 */

#include <cstdio>

#include "fingerprint/attack.hh"
#include "testbed/testbed.hh"

using namespace pktchase;

int
main()
{
    testbed::Testbed tb(testbed::TestbedConfig{});

    fingerprint::WebsiteDb db(
        {"facebook.com", "twitter.com", "google.com", "amazon.com",
         "apple.com"},
        42);

    fingerprint::FingerprintConfig cfg;
    cfg.trials = 25;
    cfg.trainVisits = 12;
    fingerprint::FingerprintAttack atk(tb, db, cfg);

    std::printf("training templates on %zu tcpdump traces per site, "
                "then classifying %zu live captures...\n",
                cfg.trainVisits, cfg.trials);
    const fingerprint::FingerprintResult r = atk.evaluate();

    std::printf("closed-world accuracy: %.1f%% (%zu/%zu)\n",
                r.accuracy * 100.0, r.correct, r.trials);
    std::printf("\nconfusion matrix (rows: truth, cols: predicted)\n");
    std::printf("%-14s", "");
    for (const auto &name : db.names())
        std::printf("%10.8s", name.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < db.size(); ++i) {
        std::printf("%-14s", db.names()[i].c_str());
        for (std::size_t j = 0; j < db.size(); ++j)
            std::printf("%10u", r.confusion[i][j]);
        std::printf("\n");
    }
    return 0;
}
