/**
 * @file
 * End-to-end covert-channel tests: trojan -> NIC -> LLC -> spy.
 */

#include <gtest/gtest.h>

#include "channel/capacity.hh"
#include "channel/trojan.hh"
#include "net/traffic.hh"
#include "sim/stats.hh"

using namespace pktchase;
using namespace pktchase::channel;

TEST(Trojan, EmitsBurstPerSymbol)
{
    TrojanSource trojan({0, 1}, Scheme::Binary, 3, 1000.0);
    nic::Frame f;
    Cycles gap = 0;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(trojan.next(f, gap));
        EXPECT_EQ(f.bytes, 64u);
    }
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(trojan.next(f, gap));
        EXPECT_EQ(f.bytes, 256u);
    }
    EXPECT_FALSE(trojan.next(f, gap));
    EXPECT_EQ(trojan.symbolsSent(), 2u);
}

TEST(Trojan, FramesAreOrdinaryBroadcast)
{
    TrojanSource trojan({2}, Scheme::Ternary, 1, 0.0);
    nic::Frame f;
    Cycles gap = 0;
    ASSERT_TRUE(trojan.next(f, gap));
    EXPECT_EQ(f.protocol, nic::Protocol::Unknown);
}

TEST(TestSymbols, DeterministicAndInRange)
{
    const auto a = testSymbols(Scheme::Ternary, 100);
    const auto b = testSymbols(Scheme::Ternary, 100);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 100u);
    for (unsigned s : a)
        EXPECT_LT(s, 3u);
}

TEST(PickMonitoredBuffers, SingleMappedAndSpaced)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    const auto buffers = pickMonitoredBuffers(tb, 4);
    ASSERT_EQ(buffers.size(), 4u);
    const auto singles = tb.singleBufferCombos();
    for (std::size_t c : buffers) {
        EXPECT_NE(std::find(singles.begin(), singles.end(), c),
                  singles.end());
    }
    // Distinct buffers.
    std::set<std::size_t> uniq(buffers.begin(), buffers.end());
    EXPECT_EQ(uniq.size(), 4u);
}

TEST(CovertChannel, BinaryRoundTripClean)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    ChannelRunConfig cfg;
    cfg.scheme = Scheme::Binary;
    cfg.nSymbols = 64;
    cfg.probeRateHz = 28000;
    const ChannelMeasurement m = runCovertChannel(tb, cfg);
    EXPECT_EQ(m.sent, 64u);
    EXPECT_LT(m.errorRate, 0.05);
    EXPECT_GT(m.bandwidthBps, 100.0);
}

TEST(CovertChannel, TernaryRoundTripClean)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    ChannelRunConfig cfg;
    cfg.scheme = Scheme::Ternary;
    cfg.nSymbols = 64;
    cfg.probeRateHz = 28000;
    const ChannelMeasurement m = runCovertChannel(tb, cfg);
    EXPECT_LT(m.errorRate, 0.08);
    // Ternary carries log2(3) bits/symbol at the same symbol rate.
    EXPECT_GT(m.bandwidthBps, 150.0);
}

TEST(CovertChannel, MultiBufferScalesBandwidth)
{
    testbed::Testbed tb1(testbed::TestbedConfig{});
    ChannelRunConfig cfg;
    cfg.scheme = Scheme::Binary;
    cfg.nSymbols = 48;
    ChannelMeasurement one = runCovertChannel(tb1, cfg);

    testbed::Testbed tb4(testbed::TestbedConfig{});
    cfg.monitoredBuffers = 4;
    ChannelMeasurement four = runCovertChannel(tb4, cfg);

    // Fig. 12a: bandwidth roughly doubles per doubling of buffers.
    EXPECT_GT(four.bandwidthBps, one.bandwidthBps * 2.5);
    EXPECT_LT(four.errorRate, 0.15);
}

TEST(CovertChannel, AdaptivePartitionClosesChannel)
{
    testbed::TestbedConfig tcfg;
    tcfg.cacheDefense = "cache.adaptive";
    testbed::Testbed tb(tcfg);
    ChannelRunConfig cfg;
    cfg.scheme = Scheme::Binary;
    cfg.nSymbols = 32;
    const ChannelMeasurement m = runCovertChannel(tb, cfg);
    // The defense guarantee: no CPU line evicted by I/O, so the spy
    // sees (almost) nothing.
    EXPECT_EQ(tb.hier().llc().stats().cpuEvictedByIo, 0u);
    EXPECT_GT(m.errorRate, 0.5);
}

TEST(ChasingChannel, FollowsSequenceAtModerateRate)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    ChasingChannelConfig cfg;
    cfg.targetBandwidthBps = 80000;
    cfg.nSymbols = 600;
    const ChannelMeasurement m = runChasingChannel(tb, cfg);
    EXPECT_GT(m.sent, 0u);
    EXPECT_LT(m.outOfSyncRate, 0.25);
    EXPECT_LT(m.errorRate, 0.10);
}

TEST(ChasingChannel, DegradesGracefullyWithSequenceErrors)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    ChasingChannelConfig cfg;
    cfg.targetBandwidthBps = 80000;
    cfg.nSymbols = 400;
    cfg.sequenceErrorRate = 0.05;
    const ChannelMeasurement m = runChasingChannel(tb, cfg);
    // Imperfect sequences raise the loss rate but must not zero the
    // channel (Sec. III-C: "small errors in the sequence are
    // tolerable").
    EXPECT_GT(m.received, m.sent / 2);
}
