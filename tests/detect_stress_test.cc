/**
 * @file
 * Gated-defense campaign stress for the ThreadSanitizer CI job: a
 * grid of detector-gated defense cells (every detector, two queue
 * counts) each assembling a full telemetry + detection + gating
 * stack and running live traffic plus a probing attacker, executed
 * on 4 worker threads, must be race-free and merge bit-identically
 * to the single-threaded run. This is the detection layer's
 * determinism contract: rigs, buses, detectors, and gates are all
 * testbed-local, so nothing leaks across campaign workers.
 */

#include <gtest/gtest.h>

#include <memory>

#include "attack/footprint.hh"
#include "net/traffic.hh"
#include "runtime/sweep.hh"
#include "testbed/testbed.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;

namespace
{

constexpr Cycles kHorizon = secondsToCycles(0.01);

/** One gated cell: benign mix, then a scanner from the midpoint. */
runtime::ScenarioResult
runGatedCell(const std::string &ring, std::size_t queues,
             std::uint64_t seed)
{
    testbed::TestbedConfig cfg = testbed::TestbedConfig::reduced();
    cfg.ringDefense = ring;
    cfg.nicSpec = defense::nicSpecOf(queues);
    testbed::Testbed tb(cfg);

    auto mix = std::make_unique<net::FlowMix>();
    for (std::uint32_t f = 0; f < 4; ++f) {
        mix->add(std::make_unique<net::ConstantStream>(
            768, 30000.0, 0, nic::Protocol::Udp, 11 + 7 * f));
    }
    mix->add(std::make_unique<net::PoissonBackground>(
        50000.0, Rng(seed), 0, 16));
    net::TrafficPump pump(tb.eq(), tb.driver(), std::move(mix), 1000);

    auto trojan = std::make_unique<net::FlowMix>();
    trojan->add(std::make_unique<net::ConstantStream>(
        256, 280000.0, 0, nic::Protocol::Udp, 4242));
    net::TrafficPump trojan_pump(tb.eq(), tb.driver(),
                                 std::move(trojan), kHorizon / 2);

    std::vector<std::size_t> all;
    for (std::size_t c = 0; c < tb.groups().groups.size(); ++c)
        all.push_back(c);
    attack::FootprintConfig fcfg;
    fcfg.probeRateHz = 16000.0;
    fcfg.probe.ways = cfg.llc.geom.ways;
    attack::FootprintScanner scanner(tb.hier(), tb.groups(), all,
                                     fcfg);
    tb.eq().runUntil(kHorizon / 2);
    scanner.scan(tb.eq(), kHorizon);

    const nic::IgbStats stats = tb.driver().stats();
    const detect::GateController *gate = tb.detection()->gate();
    runtime::ScenarioResult r;
    r.set("frames", static_cast<double>(stats.framesReceived));
    r.set("reallocs",
          static_cast<double>(stats.buffersReallocated));
    r.set("swaps", static_cast<double>(stats.pageSwaps));
    r.set("randomizations",
          static_cast<double>(stats.ringRandomizations));
    r.set("arm_transitions",
          static_cast<double>(gate->armTransitions()));
    r.set("armed_epochs",
          static_cast<double>(gate->armedEpochs()));
    r.set("alarms",
          static_cast<double>(gate->detector().alarmCount()));
    return r;
}

std::vector<runtime::Scenario>
gatedStressGrid()
{
    const char *rings[] = {
        "ring.gated:cadence:partial.200",
        "ring.gated:miss-spike:full",
        "ring.gated:entropy-drop:quarantine.8",
    };
    std::vector<runtime::Scenario> grid;
    for (std::size_t queues : {std::size_t(1), std::size_t(4)}) {
        for (const char *ring : rings) {
            const std::string name = "gstress/" + std::string(ring) +
                "/q" + std::to_string(queues);
            const std::string ring_spec = ring;
            grid.push_back({name,
                [ring_spec, queues](runtime::ScenarioContext &ctx) {
                    return runGatedCell(
                        ring_spec, queues,
                        runtime::splitSeed(ctx.campaignSeed,
                                           runtime::axisSalt(0xDE)));
                }});
        }
    }
    return grid;
}

} // namespace

TEST(GatedCampaign, FourThreadMergeBitIdenticalToSerial)
{
    runtime::SweepOptions parallel;
    parallel.threads = 4;
    parallel.seed = 17;
    parallel.verbose = false;
    const auto par = runtime::sweep(gatedStressGrid(), parallel);

    runtime::SweepOptions serial = parallel;
    serial.threads = 1;
    const auto ref = runtime::sweep(gatedStressGrid(), serial);

    ASSERT_EQ(par.size(), ref.size());
    ASSERT_EQ(par.size(), 6u);
    EXPECT_EQ(runtime::formatReport(par), runtime::formatReport(ref));

    // The stack actually exercised what it claims: the cadence- and
    // miss-spike-gated cells armed and paid their inner defense.
    bool any_armed = false;
    for (const auto &r : par) {
        EXPECT_GT(r.value("frames"), 0.0) << r.name;
        if (r.value("arm_transitions") > 0.0)
            any_armed = true;
    }
    EXPECT_TRUE(any_armed);
}
