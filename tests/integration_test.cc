/**
 * @file
 * Full attack-pipeline integration tests: footprint recovery ->
 * sequence recovery -> packet chasing -> size leakage, and the
 * defenses closing each stage.
 */

#include <gtest/gtest.h>

#include "attack/chasing.hh"
#include "attack/footprint.hh"
#include "attack/sequencer.hh"
#include "attack/size_detector.hh"
#include "net/traffic.hh"
#include "sim/stats.hh"
#include "testbed/testbed.hh"

using namespace pktchase;
using namespace pktchase::attack;

namespace
{

std::vector<std::size_t>
allCombos(testbed::Testbed &tb)
{
    std::vector<std::size_t> all;
    for (std::size_t c = 0; c < tb.groups().groups.size(); ++c)
        all.push_back(c);
    return all;
}

} // namespace

TEST(Integration, FootprintFindsExactlyTheBufferCombos)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    FootprintScanner scanner(tb.hier(), tb.groups(), allCombos(tb),
                             FootprintConfig{});
    net::TrafficPump pump(
        tb.eq(), tb.driver(),
        std::make_unique<net::ConstantStream>(192, 200000.0, 0),
        tb.eq().now() + 1000);
    const auto samples =
        scanner.scan(tb.eq(), tb.eq().now() + secondsToCycles(0.05));
    const auto found =
        FootprintScanner::candidateBufferSets(samples, 0.05, 0.95);
    const auto truth = tb.activeCombos();
    EXPECT_EQ(found.size(), truth.size());
    EXPECT_TRUE(std::equal(found.begin(), found.end(), truth.begin()));
}

TEST(Integration, IdleSystemShowsNoFootprint)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    FootprintScanner scanner(tb.hier(), tb.groups(), allCombos(tb),
                             FootprintConfig{});
    const auto samples =
        scanner.scan(tb.eq(), tb.eq().now() + secondsToCycles(0.02));
    const auto rates = FootprintScanner::activityRates(samples);
    for (double r : rates)
        EXPECT_LT(r, 0.05);
}

TEST(Integration, SequencerRecoversRingOrderAtTableIQuality)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    auto active = tb.activeCombos();
    active.resize(32);
    net::TrafficPump pump(
        tb.eq(), tb.driver(),
        std::make_unique<net::ConstantStream>(128, 100000.0, 0),
        tb.eq().now() + 1000);
    SequencerConfig cfg;
    cfg.nSamples = 40000;
    cfg.probeRateHz = 100000;
    cfg.probe.ways = tb.config().llc.geom.ways;
    Sequencer seq(tb.hier(), tb.groups(), active, cfg);
    const SequencerResult result = seq.run(tb.eq());

    const auto all_gsets = tb.comboGsets();
    std::vector<std::size_t> monitored_gsets;
    for (std::size_t c : active)
        monitored_gsets.push_back(all_gsets[c]);
    std::vector<std::size_t> ring_gsets;
    for (std::size_t c : tb.ringComboSequence())
        ring_gsets.push_back(all_gsets[c]);
    const auto expected =
        expectedMonitorSequence(ring_gsets, monitored_gsets);

    ASSERT_FALSE(result.sequence.empty());
    const double err =
        static_cast<double>(cyclicLevenshtein(result.sequence,
                                              expected)) /
        static_cast<double>(expected.size());
    // Table I reports 9.8% [8.5, 13.6]; accept anything comparable.
    EXPECT_LT(err, 0.15);
}

TEST(Integration, SizeDetectorSeesDiagonalPattern)
{
    // Fig. 8: row k active iff packet covers block k -- except row 1,
    // which the driver prefetch lights up for 1-block packets too.
    for (unsigned pkt_blocks : {1u, 2u, 3u, 4u}) {
        testbed::Testbed tb(testbed::TestbedConfig{});
        auto combos = tb.activeCombos();
        combos.resize(16);
        SizeDetectorConfig cfg;
        cfg.probe.ways = tb.config().llc.geom.ways;
        SizeDetector det(tb.hier(), tb.groups(), combos, cfg);
        net::TrafficPump pump(
            tb.eq(), tb.driver(),
            std::make_unique<net::ConstantStream>(
                pkt_blocks * blockBytes, 200000.0, 0),
            tb.eq().now() + 1000);
        const auto rates =
            det.measure(tb.eq(), tb.eq().now() + secondsToCycles(0.04));
        const auto row = SizeDetector::rowActivity(rates);
        ASSERT_EQ(row.size(), 4u);
        for (unsigned r = 0; r < 4; ++r) {
            const bool expect_active =
                r < pkt_blocks || r == 1; // prefetch anomaly
            if (expect_active)
                EXPECT_GT(row[r], 0.02)
                    << "pkt=" << pkt_blocks << " row=" << r;
            else
                EXPECT_LT(row[r], 0.01)
                    << "pkt=" << pkt_blocks << " row=" << r;
        }
    }
}

TEST(Integration, ChasingObservesSizesInOrder)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    // Repeating size pattern 1,3,4 blocks at a moderate rate.
    std::vector<nic::Frame> frames;
    for (int rep = 0; rep < 300; ++rep)
        for (unsigned b : {1u, 3u, 4u})
            frames.push_back(nic::frameOfBlocks(b));
    net::TrafficPump pump(
        tb.eq(), tb.driver(),
        std::make_unique<net::ReplayStream>(frames, 50000.0),
        tb.eq().now() + 1000);

    ChasingConfig cfg;
    cfg.probe.ways = tb.config().llc.geom.ways;
    cfg.probeInterval = 5000;
    ChasingMonitor chaser(tb.hier(), tb.groups(),
                          tb.ringComboSequence(), cfg);
    const ChaseResult r =
        chaser.chase(tb.eq(), tb.eq().now() + secondsToCycles(0.03));

    ASSERT_GT(r.packets.size(), 100u);
    // The observed class stream must repeat (>=2, 3, 4): 1-block
    // packets read as class 2 because of the driver prefetch.
    unsigned matches = 0, windows = 0;
    for (std::size_t i = 0; i + 2 < r.packets.size(); i += 3) {
        ++windows;
        const unsigned a = r.packets[i].sizeClass;
        const unsigned b = r.packets[i + 1].sizeClass;
        const unsigned c = r.packets[i + 2].sizeClass;
        // Any rotation of (<=2, 3, 4).
        const auto is_pattern = [](unsigned x, unsigned y, unsigned z) {
            return x <= 2 && y == 3 && z == 4;
        };
        if (is_pattern(a, b, c) || is_pattern(b, c, a) ||
            is_pattern(c, a, b)) {
            ++matches;
        }
    }
    EXPECT_GT(static_cast<double>(matches) / windows, 0.8);
}

TEST(Integration, AdaptivePartitionBlindsTheScanner)
{
    testbed::TestbedConfig tcfg;
    tcfg.cacheDefense = "cache.adaptive";
    testbed::Testbed tb(tcfg);
    FootprintScanner scanner(tb.hier(), tb.groups(), allCombos(tb),
                             FootprintConfig{});
    net::TrafficPump pump(
        tb.eq(), tb.driver(),
        std::make_unique<net::ConstantStream>(192, 200000.0, 0),
        tb.eq().now() + 1000);
    const auto samples =
        scanner.scan(tb.eq(), tb.eq().now() + secondsToCycles(0.04));
    const auto found =
        FootprintScanner::candidateBufferSets(samples, 0.05, 0.95);
    EXPECT_TRUE(found.empty());
    EXPECT_EQ(tb.hier().llc().stats().cpuEvictedByIo, 0u);
}

TEST(Integration, FullRandomizationDegradesSequenceRecovery)
{
    testbed::TestbedConfig tcfg;
    tcfg.ringDefense = "ring.full";
    testbed::Testbed tb(tcfg);
    auto active = tb.activeCombos();
    if (active.size() > 32)
        active.resize(32);
    net::TrafficPump pump(
        tb.eq(), tb.driver(),
        std::make_unique<net::ConstantStream>(128, 100000.0, 0),
        tb.eq().now() + 1000);
    SequencerConfig cfg;
    cfg.nSamples = 20000;
    cfg.probeRateHz = 100000;
    cfg.probe.ways = tb.config().llc.geom.ways;
    Sequencer seq(tb.hier(), tb.groups(), active, cfg);
    const SequencerResult result = seq.run(tb.eq());

    // With buffers re-randomized per packet there is no stable ring
    // order; the recovered "sequence" must be far from any stable
    // 32-node ring (distance near the sequence length itself) or
    // essentially empty.
    const auto all_gsets = tb.comboGsets();
    std::vector<std::size_t> monitored_gsets;
    for (std::size_t c : active)
        monitored_gsets.push_back(all_gsets[c]);
    std::vector<std::size_t> ring_gsets;
    for (std::size_t c : tb.ringComboSequence())
        ring_gsets.push_back(all_gsets[c]);
    const auto expected =
        expectedMonitorSequence(ring_gsets, monitored_gsets);
    if (!result.sequence.empty() && !expected.empty()) {
        const double err = static_cast<double>(
                               cyclicLevenshtein(result.sequence,
                                                 expected)) /
            static_cast<double>(expected.size());
        EXPECT_GT(err, 0.4);
    }
}
