/**
 * @file
 * Probe-engine campaign stress for the ThreadSanitizer CI job: the
 * attacker grids (multi-queue chasing channel + covert-spy sample
 * streams + a fingerprint cell) executed on 4 worker threads must be
 * race-free and merge bit-identically to the single-threaded run.
 * Each worker drives full testbeds through ProbeEngine chase and
 * sample streams concurrently, so the engine's scheduling, observer
 * fan-out, and arrival-ordered merge run under the campaign runtime's
 * real concurrency.
 */

#include <gtest/gtest.h>

#include "runtime/sweep.hh"
#include "workload/attack_eval.hh"

using namespace pktchase;

namespace
{

/** A small but real attacker grid: chasing channel across queue
 *  counts, covert spy across probe rates, one fingerprint cell. */
std::vector<runtime::Scenario>
stressGrid()
{
    std::vector<runtime::Scenario> grid =
        workload::fig13ChannelGrid(150);
    for (runtime::Scenario &s : workload::fig11CovertGrid(60))
        grid.push_back(std::move(s));
    grid.push_back({"stress/fingerprint",
        [](runtime::ScenarioContext &ctx) {
            const defense::Cell cell{"ring.none", "cache.ddio",
                                     "nic.queues:4"};
            fingerprint::FingerprintConfig cfg = workload::fig20Config(
                runtime::splitSeed(ctx.campaignSeed,
                                   runtime::axisSalt(0x20)));
            cfg.trainVisits = 4;
            cfg.trials = 5;
            testbed::TestbedConfig tcfg;
            tcfg.ringDefense = cell.ring;
            tcfg.cacheDefense = cell.cache;
            tcfg.nicSpec = cell.nic;
            testbed::Testbed tb(tcfg);
            fingerprint::WebsiteDb db({"a", "b", "c"}, 42);
            fingerprint::FingerprintAttack atk(tb, db, cfg);
            const fingerprint::FingerprintResult res = atk.evaluate();
            runtime::ScenarioResult r;
            r.set("accuracy", res.accuracy);
            r.set("probe_rounds",
                  static_cast<double>(res.probeRounds));
            return r;
        }});
    return grid;
}

} // namespace

TEST(ProbeEngineCampaign, FourThreadMergeBitIdenticalToSerial)
{
    runtime::SweepOptions parallel;
    parallel.threads = 4;
    parallel.seed = 11;
    parallel.verbose = false;
    const auto par = runtime::sweep(stressGrid(), parallel);

    runtime::SweepOptions serial = parallel;
    serial.threads = 1;
    const auto ref = runtime::sweep(stressGrid(), serial);

    ASSERT_EQ(par.size(), ref.size());
    ASSERT_EQ(par.size(), 13u);
    EXPECT_EQ(runtime::formatReport(par), runtime::formatReport(ref));
    for (std::size_t i = 0; i < par.size(); ++i) {
        EXPECT_EQ(par[i].name, ref[i].name);
        ASSERT_EQ(par[i].metrics.size(), ref[i].metrics.size())
            << par[i].name;
        for (std::size_t m = 0; m < par[i].metrics.size(); ++m) {
            EXPECT_EQ(par[i].metrics[m].first, ref[i].metrics[m].first);
            // Bit-exact merge: probe-engine streams must not leak
            // nondeterminism into the campaign.
            EXPECT_EQ(par[i].metrics[m].second,
                      ref[i].metrics[m].second)
                << par[i].name << " / " << par[i].metrics[m].first;
        }
    }
}
