/**
 * @file
 * Tests for the campaign runtime: scenario seeding, the registry, and
 * the core determinism contract -- a Campaign run on 8 worker threads
 * merges to byte-identical stats as the same campaign on 1 thread.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "runtime/campaign.hh"
#include "runtime/registry.hh"
#include "runtime/scenario.hh"
#include "runtime/sweep.hh"
#include "testbed/testbed.hh"
#include "workload/defense_eval.hh"

using namespace pktchase;
using namespace pktchase::runtime;

namespace
{

/**
 * A grid of stochastic cells: each draws from its private Rng stream
 * and reports enough digits that any seeding or merge difference
 * between thread counts shows up in the hexfloat report.
 */
std::vector<Scenario>
stochasticGrid(std::size_t cells)
{
    std::vector<Scenario> grid;
    for (std::size_t i = 0; i < cells; ++i) {
        grid.push_back({"cell/" + std::to_string(i),
            [](ScenarioContext &ctx) {
                double acc = 0.0;
                for (int k = 0; k < 1000; ++k)
                    acc += ctx.rng.nextDouble();
                ScenarioResult r;
                r.set("acc", acc);
                r.set("seed_lo",
                      static_cast<double>(ctx.scenarioSeed & 0xffff));
                return r;
            }});
    }
    return grid;
}

} // namespace

TEST(SplitSeed, IndependentPerSalt)
{
    // Distinct salts give distinct seeds; same (seed, salt) is stable.
    EXPECT_EQ(splitSeed(1, 0), splitSeed(1, 0));
    EXPECT_NE(splitSeed(1, 0), splitSeed(1, 1));
    EXPECT_NE(splitSeed(1, 0), splitSeed(2, 0));
    // Matches the splitmix64 stream Rng seed expansion uses.
    EXPECT_NE(splitSeed(0, 0), 0u);
}

TEST(ScenarioResult, MetricLookup)
{
    ScenarioResult r;
    r.name = "x";
    r.set("a", 1.5);
    r.set("b", -2.0);
    EXPECT_TRUE(r.has("a"));
    EXPECT_FALSE(r.has("c"));
    EXPECT_DOUBLE_EQ(r.value("a"), 1.5);
    EXPECT_DOUBLE_EQ(r.value("b"), -2.0);
}

TEST(ScenarioRegistry, AddMakeListReplace)
{
    auto &reg = ScenarioRegistry::instance();
    reg.add("test/grid", "a grid", [] { return stochasticGrid(3); });
    EXPECT_TRUE(reg.contains("test/grid"));
    EXPECT_EQ(reg.description("test/grid"), "a grid");
    EXPECT_EQ(reg.make("test/grid").size(), 3u);

    // Re-registering replaces.
    reg.add("test/grid", "bigger", [] { return stochasticGrid(5); });
    EXPECT_EQ(reg.make("test/grid").size(), 5u);

    const auto names = reg.names();
    EXPECT_NE(std::find(names.begin(), names.end(), "test/grid"),
              names.end());
}

TEST(Campaign, SerialRunsEveryCellInOrder)
{
    CampaignConfig cfg;
    cfg.threads = 1;
    cfg.seed = 7;
    std::vector<std::size_t> seen;
    cfg.onResult = [&seen](const ScenarioResult &r) {
        seen.push_back(r.index);
    };
    Campaign c(cfg);
    const auto results = c.run(stochasticGrid(9));
    ASSERT_EQ(results.size(), 9u);
    ASSERT_EQ(seen.size(), 9u);
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_EQ(seen[i], i);
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].name, "cell/" + std::to_string(i));
    }
    EXPECT_EQ(c.stats().scenariosRun, 9u);
    EXPECT_EQ(c.stats().threadsUsed, 1u);
}

TEST(Campaign, EmptyGrid)
{
    Campaign c;
    EXPECT_TRUE(c.run({}).empty());
}

TEST(Campaign, ThreadsClampToGridSize)
{
    CampaignConfig cfg;
    cfg.threads = 16;
    Campaign c(cfg);
    const auto results = c.run(stochasticGrid(3));
    EXPECT_EQ(results.size(), 3u);
    EXPECT_EQ(c.stats().threadsUsed, 3u);
}

TEST(Campaign, EightThreadsMergeByteIdenticalToOne)
{
    // A grid much larger than the ring capacity, so workers wrap their
    // rings and exercise backpressure while the driver merges.
    const std::size_t kCells = 64;
    const std::uint64_t kSeed = 0xC0FFEE;

    CampaignConfig serial;
    serial.threads = 1;
    serial.seed = kSeed;
    const auto ref = Campaign(serial).run(stochasticGrid(kCells));

    CampaignConfig parallel;
    parallel.threads = 8;
    parallel.seed = kSeed;
    parallel.ringCapacity = 4; // force ring wrap + full-ring retries
    std::atomic<std::size_t> callbacks{0};
    parallel.onResult = [&callbacks](const ScenarioResult &) {
        ++callbacks;
    };
    Campaign c(parallel);
    const auto out = c.run(stochasticGrid(kCells));

    EXPECT_EQ(c.stats().threadsUsed, 8u);
    EXPECT_EQ(callbacks.load(), kCells);
    ASSERT_EQ(out.size(), ref.size());
    EXPECT_EQ(formatReport(out), formatReport(ref));
}

TEST(Campaign, DifferentSeedsDiffer)
{
    CampaignConfig a, b;
    a.threads = 2;
    b.threads = 2;
    a.seed = 1;
    b.seed = 2;
    const auto ra = Campaign(a).run(stochasticGrid(4));
    const auto rb = Campaign(b).run(stochasticGrid(4));
    EXPECT_NE(formatReport(ra), formatReport(rb));
}

/**
 * The acceptance-criteria check on real workload cells: the Fig. 14
 * defense sweep merged from >= 4 worker threads is bit-identical to
 * the single-threaded run for the same campaign seed. Uses a reduced
 * request count so the test stays fast; the cells still assemble
 * full-size testbeds and run the real server workload.
 */
TEST(Campaign, Fig14SweepFourThreadsDeterministic)
{
    const auto grid = workload::fig14ThroughputGrid(300);
    ASSERT_EQ(grid.size(), 6u);

    SweepOptions serial;
    serial.threads = 1;
    serial.seed = 11;
    serial.verbose = false;
    const auto ref = sweep(grid, serial);

    SweepOptions parallel = serial;
    parallel.threads = 4;
    const auto out = sweep(grid, parallel);

    EXPECT_EQ(formatReport(out), formatReport(ref));

    // Paired seeding: DDIO and adaptive cells at the same LLC size
    // must have run under the identical workload stream, so their
    // request counts match and throughput is comparable.
    for (const auto &r : out)
        EXPECT_GT(r.value("kreq_per_sec"), 0.0);
}
