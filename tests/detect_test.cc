/**
 * @file
 * Unit tests for the detection subsystem: the counter bus and epoch
 * rolling, the three detectors' score/alarm semantics on synthetic
 * counter streams, gate hysteresis, the gated-policy spec grammar,
 * and the end-to-end wiring (a gated testbed arms and pays only while
 * armed; telemetry attach/detach is zero-cost when absent).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "defense/gated_policy.hh"
#include "defense/registry.hh"
#include "detect/counters.hh"
#include "detect/detector.hh"
#include "detect/gate.hh"
#include "detect/rig.hh"
#include "net/traffic.hh"
#include "testbed/testbed.hh"

using namespace pktchase;
using namespace pktchase::detect;

namespace
{

/** Synthetic "llc" sample at @p epoch with the given counters. */
sim::CounterSample
llcSample(std::uint64_t epoch, double misses, double conflicts,
          Cycles width = sim::kDefaultEpochCycles)
{
    sim::CounterSample s;
    s.source = "llc";
    s.epoch = epoch;
    s.start = epoch * width;
    s.end = s.start + width;
    s.set("cpu_accesses", misses * 2);
    s.set("cpu_misses", misses);
    s.set("miss_rate", 0.5);
    s.set("ddio_fills", 0.0);
    s.set("io_conflicts", conflicts);
    return s;
}

/** Synthetic "rxagg" sample with the given per-queue counts. */
sim::CounterSample
aggSample(std::uint64_t epoch, const std::vector<double> &counts)
{
    sim::CounterSample s;
    s.source = "rxagg";
    s.epoch = epoch;
    s.end = (epoch + 1) * sim::kDefaultEpochCycles;
    double total = 0.0;
    for (double c : counts)
        total += c;
    s.set("total", total);
    for (std::size_t q = 0; q < counts.size(); ++q)
        s.set("q" + std::to_string(q), counts[q]);
    return s;
}

} // namespace

// -------------------------------------------------------- counter bus --

TEST(CounterBus, FansOutInSubscriptionOrder)
{
    sim::CounterBus bus(1000);
    EXPECT_FALSE(bus.hasSubscribers());
    std::vector<int> order;
    bus.subscribe([&order](const sim::CounterSample &) {
        order.push_back(1);
    });
    bus.subscribe([&order](const sim::CounterSample &) {
        order.push_back(2);
    });
    EXPECT_TRUE(bus.hasSubscribers());
    bus.publish(llcSample(0, 1, 0));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(bus.published(), 1u);
}

TEST(CounterSampleDeath, DuplicateKeyIsFatal)
{
    // A sample is one epoch's snapshot: setting the same key twice
    // means two subsystems disagree about who owns it (or a reused
    // sample was not cleared), and a silent overwrite would let the
    // detectors score the wrong value. fatal() exits with code 1.
    sim::CounterSample s;
    s.source = "llc";
    s.set("cpu_misses", 3.0);
    EXPECT_EXIT(s.set("cpu_misses", 4.0),
                ::testing::ExitedWithCode(1), "duplicate key");

    // Interned and string-spelled sets collide on the same key too:
    // interning is a lookup, not a namespace.
    const sim::CounterKey key = sim::CounterKey::intern("cpu_misses");
    EXPECT_EXIT(s.set(key, 5.0),
                ::testing::ExitedWithCode(1), "duplicate key");
}

TEST(LlcCounterProbe, RollsEpochsAndZeroFillsGaps)
{
    sim::CounterBus bus(1000);
    std::vector<sim::CounterSample> samples;
    bus.subscribe([&samples](const sim::CounterSample &s) {
        samples.push_back(s);
    });
    LlcCounterProbe probe(bus, 2);

    probe.cpuAccess(0, false, 100);   // epoch 0
    probe.cpuAccess(1, true, 500);    // epoch 0
    probe.ioInjection(0, true, 3500); // epoch 3: publishes 0,1,2
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].epoch, 0u);
    EXPECT_EQ(samples[0].value("cpu_accesses"), 2.0);
    EXPECT_EQ(samples[0].value("cpu_misses"), 1.0);
    EXPECT_EQ(samples[0].value("g0.misses"), 1.0);
    EXPECT_EQ(samples[1].value("cpu_accesses"), 0.0); // zero-filled
    EXPECT_EQ(samples[2].value("cpu_accesses"), 0.0);

    probe.flush(3500);
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples[3].epoch, 3u);
    EXPECT_EQ(samples[3].value("ddio_fills"), 1.0);
    EXPECT_EQ(samples[3].value("ddio_cpu_displaced"), 1.0);
}

TEST(LlcCounterProbe, LongIdleGapCatchUpIsBounded)
{
    sim::CounterBus bus(1000);
    std::uint64_t published = 0;
    bus.subscribe([&published](const sim::CounterSample &) {
        ++published;
    });
    LlcCounterProbe probe(bus, 1);
    probe.cpuAccess(0, false, 100);
    // A gap of a million epochs publishes at most the catch-up bound
    // plus the pending epoch, not a million zero samples.
    probe.cpuAccess(0, false, Cycles(1000) * 1000 * 1000);
    EXPECT_LE(published, LlcCounterProbe::kMaxCatchUp + 1);
}

TEST(RxCounterProbe, ReuseDistanceAndAggregate)
{
    sim::CounterBus bus(1000);
    std::vector<sim::CounterSample> samples;
    bus.subscribe([&samples](const sim::CounterSample &s) {
        samples.push_back(s);
    });
    RxCounterProbe probe(bus, 2);

    // Queue 0 cycles two pages; queue 1 sees one recycle.
    probe.onRecycle(0, 0, 0x1000, 10);
    probe.onRecycle(0, 1, 0x2000, 20);
    probe.onRecycle(0, 0, 0x1000, 30); // reuse distance 2
    probe.onRecycle(1, 0, 0x9000, 40);
    probe.flush(2000);

    const sim::CounterSample *q0 = nullptr, *agg = nullptr;
    for (const auto &s : samples) {
        if (s.source == "rxq0")
            q0 = &s;
        if (s.source == "rxagg")
            agg = &s;
    }
    ASSERT_NE(q0, nullptr);
    EXPECT_EQ(q0->value("recycles"), 3.0);
    EXPECT_EQ(q0->value("pages"), 2.0);
    EXPECT_EQ(q0->value("reuse_mean"), 2.0);
    ASSERT_NE(agg, nullptr);
    EXPECT_EQ(agg->value("total"), 4.0);
    EXPECT_EQ(agg->value("q0"), 3.0);
    EXPECT_EQ(agg->value("q1"), 1.0);
    // 3:1 split over two queues: H = 0.811 bits / 1 bit.
    EXPECT_NEAR(agg->value("entropy"), 0.8112781, 1e-6);
}

// ---------------------------------------------------------- detectors --

TEST(MissRateSpikeDetector, CalibratesThenScoresSpikes)
{
    DetectorConfig cfg;
    cfg.window = 16;
    cfg.shortWindow = 2;
    MissRateSpike det(cfg);

    // Calibration span: steady 10 misses/epoch, all scores zero.
    std::uint64_t e = 0;
    for (; e < 16; ++e) {
        const Score *sc = det.onSample(llcSample(e, 10, 0));
        ASSERT_NE(sc, nullptr);
        EXPECT_EQ(sc->score, 0.0);
    }
    // Benign continuation stays quiet...
    const Score *quiet = det.onSample(llcSample(e++, 10, 0));
    EXPECT_LT(std::abs(quiet->score), 1.0);
    EXPECT_FALSE(quiet->alarm);
    // ...a probing burst alarms.
    det.onSample(llcSample(e++, 500, 0));
    const Score *spike = det.onSample(llcSample(e++, 500, 0));
    EXPECT_GT(spike->score, det.threshold());
    EXPECT_TRUE(spike->alarm);
    EXPECT_GE(det.alarmCount(), 1u);

    // Non-llc samples are not consumed.
    EXPECT_EQ(det.onSample(aggSample(e, {1, 1})), nullptr);
}

TEST(ProbeCadenceDetector, PeriodicConflictsAlarmAperiodicDoNot)
{
    DetectorConfig cfg;
    cfg.window = 64;
    cfg.minLag = 3;
    ProbeCadence det(cfg);

    // Period-8 conflict bursts: the probe loop's signature.
    const Score *last = nullptr;
    for (std::uint64_t e = 0; e < 128; ++e)
        last = det.onSample(llcSample(e, 5, e % 8 == 0 ? 12 : 0));
    ASSERT_NE(last, nullptr);
    EXPECT_GT(last->score, det.threshold());
    EXPECT_TRUE(last->alarm);
    EXPECT_EQ(det.bestLag(), 8u);

    // A pseudo-random aperiodic stream scores low.
    ProbeCadence benign(cfg);
    std::uint64_t x = 0x123456789abcdefull;
    const Score *b = nullptr;
    for (std::uint64_t e = 0; e < 128; ++e) {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        b = benign.onSample(llcSample(e, 5, double(x % 4)));
    }
    EXPECT_FALSE(b->alarm);

    // A silent counter can never alarm, autocorrelated or not.
    ProbeCadence silent(cfg);
    const Score *s = nullptr;
    for (std::uint64_t e = 0; e < 128; ++e)
        s = silent.onSample(llcSample(e, 5, e % 8 == 0 ? 0.05 : 0));
    EXPECT_FALSE(s->alarm);
}

TEST(ReuseEntropyDropDetector, FloodConcentrationAlarms)
{
    DetectorConfig cfg;
    cfg.window = 32;
    cfg.entropyShort = 8;
    ReuseEntropyDrop det(cfg);

    // Calibration: balanced recycles across 4 queues.
    std::uint64_t e = 0;
    for (; e < 32; ++e)
        det.onSample(aggSample(e, {5, 4, 6, 5}));
    // Balanced continuation: no alarm.
    const Score *sc = nullptr;
    for (unsigned i = 0; i < 8; ++i)
        sc = det.onSample(aggSample(e++, {4, 6, 5, 5}));
    EXPECT_FALSE(sc->alarm);
    EXPECT_LT(sc->score, 0.05);
    // Flood: one queue dominates, entropy collapses, alarm.
    for (unsigned i = 0; i < 8; ++i)
        sc = det.onSample(aggSample(e++, {80, 4, 6, 5}));
    EXPECT_TRUE(sc->alarm);
    EXPECT_GT(sc->score, det.threshold());
}

TEST(Detectors, FactoryAndNames)
{
    for (const std::string &name : detectorNames()) {
        EXPECT_TRUE(isDetectorName(name));
        EXPECT_EQ(makeDetector(name)->name(), name);
    }
    EXPECT_FALSE(isDetectorName("nope"));
    EXPECT_EXIT(makeDetector("nope"), ::testing::ExitedWithCode(1),
                "unknown detector");
}

TEST(Auc, SeparationExtremes)
{
    EXPECT_DOUBLE_EQ(aucScore({2, 3, 4}, {0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(aucScore({0, 1}, {2, 3, 4}), 0.0);
    EXPECT_DOUBLE_EQ(aucScore({1, 1}, {1, 1}), 0.5);
    EXPECT_DOUBLE_EQ(aucScore({}, {1}), 0.5);
}

// --------------------------------------------------------------- gate --

TEST(Gate, ArmsImmediatelyDisarmsWithHysteresis)
{
    DetectorConfig dcfg;
    dcfg.window = 8;
    dcfg.shortWindow = 1;
    GateConfig gcfg;
    gcfg.disarmEpochs = 4;
    GateController gate(std::make_unique<MissRateSpike>(dcfg), gcfg);
    sim::CounterBus bus(1000);
    gate.connect(bus);

    std::uint64_t e = 0;
    for (; e < 8; ++e)
        bus.publish(llcSample(e, 10, 0));
    EXPECT_FALSE(gate.armed());

    bus.publish(llcSample(e++, 900, 0));
    EXPECT_TRUE(gate.armed());
    EXPECT_EQ(gate.armTransitions(), 1u);

    // Three quiet epochs: still armed (hysteresis)...
    for (unsigned i = 0; i < 3; ++i)
        bus.publish(llcSample(e++, 10, 0));
    EXPECT_TRUE(gate.armed());
    // ...the fourth disarms.
    bus.publish(llcSample(e++, 10, 0));
    EXPECT_FALSE(gate.armed());
    EXPECT_GT(gate.armedEpochs(), 0u);
}

// ---------------------------------------------------- gated ring spec --

TEST(GatedSpec, GrammarRoundTripsThroughRegistry)
{
    EXPECT_TRUE(defense::isSpecSyntax(
        "ring.gated:cadence:partial.1000"));
    EXPECT_TRUE(defense::Registry::instance().contains(
        "ring.gated:cadence:partial.1000"));
    EXPECT_TRUE(defense::Registry::instance().contains(
        "ring.gated:miss-spike:full"));
    // Unknown detector or inner policy: well-formed but unknown.
    EXPECT_FALSE(defense::Registry::instance().contains(
        "ring.gated:nope:full"));
    EXPECT_FALSE(defense::Registry::instance().contains(
        "ring.gated:cadence:nope"));
    // A gate param without an inner policy, or a smuggled extra ':',
    // is malformed; a bare "ring.gated" parses like any paramless
    // spec but names nothing instantiable.
    EXPECT_FALSE(defense::isSpecSyntax("ring.gated:cadence"));
    EXPECT_FALSE(defense::isSpecSyntax("ring.gated:a:b:c"));
    EXPECT_TRUE(defense::isSpecSyntax("ring.gated"));
    EXPECT_FALSE(defense::Registry::instance().contains("ring.gated"));
    EXPECT_EXIT(defense::makeRingPolicy("ring.gated"),
                ::testing::ExitedWithCode(1), "ring.gated needs");

    auto policy = defense::makeRingPolicy(
        "ring.gated:cadence:partial.1000");
    EXPECT_EQ(policy->name(), "ring.gated:cadence:partial.1000");
    auto *gp = dynamic_cast<defense::GatedPolicy *>(policy.get());
    ASSERT_NE(gp, nullptr);
    EXPECT_EQ(gp->detectorName(), "cadence");
    EXPECT_EQ(gp->inner().name(), "ring.partial:1000");
    EXPECT_FALSE(gp->armed()); // unbound: permanently disarmed

    // Inner defaults become explicit in the canonical name.
    EXPECT_EQ(defense::canonicalSpec("ring.gated:cadence:partial"),
              "ring.gated:cadence:partial.1000");
    EXPECT_EQ(defense::canonicalSpec("ring.gated:entropy-drop:none"),
              "ring.gated:entropy-drop:none");

    // Cell names round-trip with a gated ring part.
    defense::Cell cell{"ring.gated:cadence:partial.1000",
                       "cache.ddio"};
    const defense::Cell back = defense::parseCell(cell.name());
    EXPECT_EQ(back.name(), cell.name());
}

TEST(GatedSpecDeath, UnknownPiecesFailLoudly)
{
    EXPECT_EXIT(defense::makeRingPolicy("ring.gated:nope:full"),
                ::testing::ExitedWithCode(1), "unknown");
    EXPECT_EXIT(defense::makeRingPolicy("ring.gated:cadence:nope"),
                ::testing::ExitedWithCode(1), "unknown ring policy");
}

// -------------------------------------------------------- end to end --

TEST(GatedTestbed, PaysOnlyWhileArmed)
{
    testbed::TestbedConfig cfg = testbed::TestbedConfig::reduced();
    // Gate full randomization so any armed packet reallocates.
    cfg.ringDefense = "ring.gated:cadence:full";
    testbed::Testbed tb(cfg);
    ASSERT_NE(tb.detection(), nullptr);
    ASSERT_NE(tb.detection()->gate(), nullptr);

    nic::Frame frame;
    frame.bytes = 512;
    frame.protocol = nic::Protocol::Udp;

    Cycles t = 0;
    for (unsigned i = 0; i < 50; ++i)
        tb.driver().receive(frame, t += 2000);
    EXPECT_EQ(tb.driver().stats().buffersReallocated, 0u);

    // Operator override stands in for a detector alarm here; the
    // detector-driven path is covered by the figD2 grid and the
    // golden test.
    tb.detection()->gate()->forceArmed(true);
    for (unsigned i = 0; i < 50; ++i)
        tb.driver().receive(frame, t += 2000);
    EXPECT_EQ(tb.driver().stats().buffersReallocated, 50u);

    tb.detection()->gate()->forceArmed(false);
    for (unsigned i = 0; i < 50; ++i)
        tb.driver().receive(frame, t += 2000);
    EXPECT_EQ(tb.driver().stats().buffersReallocated, 50u);
}

TEST(GatedTestbed, QuarantineInnerKeepsLifecycleInvariants)
{
    // onInit/onTeardown always forward: the quarantine pool is
    // allocated and freed even if the gate never arms.
    testbed::TestbedConfig cfg = testbed::TestbedConfig::reduced();
    cfg.ringDefense = "ring.gated:miss-spike:quarantine.8";
    testbed::Testbed tb(cfg);
    nic::Frame frame;
    frame.bytes = 512;
    frame.protocol = nic::Protocol::Udp;
    Cycles t = 0;
    for (unsigned i = 0; i < 40; ++i)
        tb.driver().receive(frame, t += 2000);
    EXPECT_EQ(tb.driver().stats().pageSwaps, 0u); // never armed
    // Destruction must free the pool without tripping PhysMem.
}

TEST(Telemetry, DetachedEmittersDoNoTelemetryWork)
{
    // No rig: no probe attached anywhere.
    testbed::Testbed tb(testbed::TestbedConfig::reduced());
    EXPECT_EQ(tb.detection(), nullptr);
    EXPECT_EQ(tb.hier().llc().telemetry(), nullptr);
    EXPECT_EQ(tb.driver().telemetry(), nullptr);
}

TEST(Telemetry, RigDetachesOnDestruction)
{
    testbed::TestbedConfig cfg = testbed::TestbedConfig::reduced();
    testbed::Testbed tb(cfg);
    {
        // Attach and drop a scoped rig manually.
        detect::RigConfig rc;
        rc.detectors = {"miss-spike"};
        detect::DetectionRig rig(tb.hier(), tb.driver(), rc);
        EXPECT_NE(tb.hier().llc().telemetry(), nullptr);
        EXPECT_NE(tb.driver().telemetry(), nullptr);
    }
    EXPECT_EQ(tb.hier().llc().telemetry(), nullptr);
    EXPECT_EQ(tb.driver().telemetry(), nullptr);
}
