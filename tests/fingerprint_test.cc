/**
 * @file
 * Tests for the website-trace model and the correlation classifier.
 */

#include <gtest/gtest.h>

#include "fingerprint/attack.hh"
#include "fingerprint/classifier.hh"
#include "fingerprint/website.hh"
#include "sim/rng.hh"

using namespace pktchase;
using namespace pktchase::fingerprint;

TEST(Website, SizeClassClamping)
{
    EXPECT_EQ(sizeClassOf(64), 1u);
    EXPECT_EQ(sizeClassOf(128), 2u);
    EXPECT_EQ(sizeClassOf(192), 3u);
    EXPECT_EQ(sizeClassOf(256), 4u);
    EXPECT_EQ(sizeClassOf(1514), 4u); // 4+ bucket
}

TEST(Website, SignaturesAreStablePerSeed)
{
    WebsiteDb a({"x", "y"}, 7);
    WebsiteDb b({"x", "y"}, 7);
    EXPECT_EQ(a.signature(0), b.signature(0));
    EXPECT_EQ(a.signature(1), b.signature(1));
}

TEST(Website, SignaturesDifferAcrossSites)
{
    WebsiteDb db({"a", "b", "c"}, 11);
    EXPECT_NE(db.signature(0), db.signature(1));
    EXPECT_NE(db.signature(1), db.signature(2));
}

TEST(Website, SignatureSizesAreValidFrames)
{
    WebsiteDb db({"a"}, 13);
    for (Addr s : db.signature(0)) {
        EXPECT_GE(s, nic::minFrameBytes);
        EXPECT_LE(s, nic::maxFrameBytes);
    }
}

TEST(Website, VisitsAreNoisyButSimilar)
{
    WebsiteDb db({"a"}, 17);
    Rng rng(1);
    const auto v1 = db.visit(0, rng);
    const auto v2 = db.visit(0, rng);
    EXPECT_FALSE(v1.empty());
    // Different instances...
    bool identical = v1.size() == v2.size();
    if (identical) {
        for (std::size_t i = 0; i < v1.size(); ++i)
            identical &= v1[i].bytes == v2[i].bytes;
    }
    EXPECT_FALSE(identical);
    // ...but near the signature length.
    EXPECT_NEAR(static_cast<double>(v1.size()),
                static_cast<double>(db.signature(0).size()), 15.0);
}

TEST(Website, VisitFramesAreTcp)
{
    WebsiteDb db({"a"}, 19);
    Rng rng(2);
    for (const auto &f : db.visit(0, rng))
        EXPECT_EQ(f.protocol, nic::Protocol::Tcp);
}

TEST(Website, LoginPairSharesPrefixDivergesAfter)
{
    WebsiteDb db = WebsiteDb::loginPair(23);
    ASSERT_EQ(db.size(), 2u);
    const auto &ok = db.signature(0);
    const auto &fail = db.signature(1);
    // Shared handshake prefix.
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_EQ(ok[i], fail[i]);
    // Tail differs: success streams MTU frames, failure chatters.
    unsigned ok_large = 0, fail_large = 0;
    for (std::size_t i = 20; i < ok.size(); ++i) {
        ok_large += ok[i] >= 1400;
        fail_large += fail[i] >= 1400;
    }
    EXPECT_GT(ok_large, fail_large + 20);
}

TEST(Classifier, SelfClassificationOnCleanTraces)
{
    WebsiteDb db({"a", "b", "c", "d"}, 29);
    CorrelationClassifier clf;
    Rng rng(3);
    for (std::size_t s = 0; s < db.size(); ++s)
        for (int v = 0; v < 10; ++v)
            clf.train(s, FingerprintAttack::truthClasses(
                             db.visit(s, rng), 100));
    unsigned correct = 0, trials = 0;
    for (std::size_t s = 0; s < db.size(); ++s) {
        for (int v = 0; v < 10; ++v) {
            const auto classes = FingerprintAttack::truthClasses(
                db.visit(s, rng), 100);
            correct += clf.classify(classes) == s;
            ++trials;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / trials, 0.85);
}

TEST(Classifier, RepresentativeIsAverage)
{
    CorrelationClassifier clf(ClassifierConfig{5, 4});
    clf.train(0, {1, 1, 1, 1});
    clf.train(0, {3, 3, 3, 3});
    const auto rep = clf.representative(0);
    for (double x : rep)
        EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(Classifier, ScoreSelfIsHigh)
{
    CorrelationClassifier clf(ClassifierConfig{2, 8});
    const std::vector<unsigned> t{1, 4, 4, 1, 2, 4, 1, 3};
    clf.train(0, t);
    EXPECT_NEAR(clf.score(0, t), 1.0, 1e-9);
}

TEST(Classifier, TrainingIsOrderIndependentAcrossSites)
{
    CorrelationClassifier clf(ClassifierConfig{2, 4});
    clf.train(2, {1, 2, 3, 4}); // site 2 before 0/1
    clf.train(0, {4, 3, 2, 1});
    EXPECT_EQ(clf.sites(), 3u);
    EXPECT_EQ(clf.classify({1, 2, 3, 4}), 2u);
    EXPECT_EQ(clf.classify({4, 3, 2, 1}), 0u);
}

TEST(ClassifierDeath, UntrainedSitePanics)
{
    CorrelationClassifier clf;
    EXPECT_DEATH(clf.representative(0), "untrained");
    EXPECT_DEATH(clf.classify({1, 2, 3}), "no training");
}

TEST(FingerprintEndToEnd, BeatsChanceOnSmallWorld)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    WebsiteDb db({"s0", "s1", "s2"}, 31);
    FingerprintConfig cfg;
    cfg.trainVisits = 8;
    cfg.trials = 12;
    FingerprintAttack atk(tb, db, cfg);
    const FingerprintResult r = atk.evaluate();
    EXPECT_EQ(r.trials, 12u);
    // Chance is 1/3; the attack should be far above it.
    EXPECT_GT(r.accuracy, 0.7);
}

TEST(FingerprintEndToEnd, CaptureProducesValidClasses)
{
    testbed::Testbed tb(testbed::TestbedConfig{});
    WebsiteDb db({"s0", "s1"}, 37);
    FingerprintConfig cfg;
    FingerprintAttack atk(tb, db, cfg);
    Rng rng(4);
    const auto classes = atk.captureVisit(0, rng);
    EXPECT_GT(classes.size(), 50u);
    for (unsigned c : classes) {
        EXPECT_GE(c, 1u);
        EXPECT_LE(c, 4u);
    }
}
