/**
 * @file
 * Tests for sim::BenchReport emission and the bench_util.hh helpers:
 * the BENCH_*.json artifact must round-trip through a JSON parser,
 * the hexfloat map must reproduce every decimal metric bit-exactly,
 * and two writes of the same report must be byte-identical (the
 * property performance-tracking tooling diffs on).
 */

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hh"
#include "sim/bench_report.hh"

namespace
{

using namespace pktchase;

/**
 * A deliberately minimal JSON reader -- just enough of the grammar to
 * consume BenchReport's output (objects, arrays, strings with the
 * two escapes the writer emits, and numbers via strtod, which accepts
 * the hexfloat spellings in the "hex" map when unquoted... the hex
 * values are strings, so they arrive verbatim for the test to
 * re-parse). Any syntax surprise fails the test via ADD_FAILURE.
 */
struct JsonValue
{
    enum Kind { Null, Number, String, Array, Object } kind = Null;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &kv : obj)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : text_(std::move(text)) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        EXPECT_EQ(pos_, text_.size()) << "trailing junk after JSON";
        EXPECT_FALSE(failed_);
        return v;
    }

    bool failed() const { return failed_; }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return '\0';
        }
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        else
            ++pos_;
    }

    void
    fail(const std::string &why)
    {
        if (!failed_)
            ADD_FAILURE() << "JSON parse error at byte " << pos_ << ": "
                          << why;
        failed_ = true;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size())
                c = text_[pos_++];
            out.push_back(c);
        }
        expect('"');
        return out;
    }

    JsonValue
    value()
    {
        const char c = peek();
        JsonValue v;
        if (failed_)
            return v;
        if (c == '{') {
            ++pos_;
            v.kind = JsonValue::Object;
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (!failed_) {
                std::string key = string();
                expect(':');
                v.obj.emplace_back(std::move(key), value());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
            expect('}');
        } else if (c == '[') {
            ++pos_;
            v.kind = JsonValue::Array;
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (!failed_) {
                v.arr.push_back(value());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
            expect(']');
        } else if (c == '"') {
            v.kind = JsonValue::String;
            v.str = string();
        } else {
            v.kind = JsonValue::Number;
            char *end = nullptr;
            v.num = std::strtod(text_.c_str() + pos_, &end);
            if (end == text_.c_str() + pos_)
                fail("expected a number");
            pos_ = static_cast<std::size_t>(end - text_.c_str());
        }
        return v;
    }

    std::string text_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A report with awkward values: negatives, tiny, huge, non-dyadic. */
sim::BenchReport
sampleReport()
{
    sim::BenchReport report("selftest");
    report.scalar("elapsed_sec", 12.25);
    report.scalar("count", 3.0);
    sim::BenchReport::Metrics m1;
    m1.emplace_back("p99", 0.1);                 // not exactly dyadic
    m1.emplace_back("rate", 1.2345678901234567e9);
    m1.emplace_back("delta", -4.9406564584124654e-324); // denormal min
    sim::BenchReport::Metrics m2;
    m2.emplace_back("p99", 1e308);
    report.cell("cells/with \"quotes\" and \\slashes", m1);
    report.cell("cells/plain", m2);
    return report;
}

TEST(BenchReport, RoundTripsThroughJsonParser)
{
    const std::string path =
        testing::TempDir() + "/bench_report_roundtrip.json";
    ASSERT_TRUE(sampleReport().write(path));

    JsonParser parser(slurp(path));
    const JsonValue root = parser.parse();
    ASSERT_FALSE(parser.failed());
    ASSERT_EQ(root.kind, JsonValue::Object);

    const JsonValue *bench = root.find("bench");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->str, "selftest");
    const JsonValue *elapsed = root.find("elapsed_sec");
    ASSERT_NE(elapsed, nullptr);
    EXPECT_DOUBLE_EQ(elapsed->num, 12.25);

    const JsonValue *cells = root.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->kind, JsonValue::Array);
    ASSERT_EQ(cells->arr.size(), 2u);

    const JsonValue &c0 = cells->arr[0];
    const JsonValue *name = c0.find("name");
    ASSERT_NE(name, nullptr);
    // The escaped name must round-trip back to the original.
    EXPECT_EQ(name->str, "cells/with \"quotes\" and \\slashes");
    const JsonValue *metrics = c0.find("metrics");
    ASSERT_NE(metrics, nullptr);
    const JsonValue *rate = metrics->find("rate");
    ASSERT_NE(rate, nullptr);
    EXPECT_DOUBLE_EQ(rate->num, 1.2345678901234567e9);

    std::remove(path.c_str());
}

TEST(BenchReport, HexMapReproducesDecimalMetricsBitExactly)
{
    const std::string path =
        testing::TempDir() + "/bench_report_hex.json";
    ASSERT_TRUE(sampleReport().write(path));

    JsonParser parser(slurp(path));
    const JsonValue root = parser.parse();
    ASSERT_FALSE(parser.failed());
    const JsonValue *cells = root.find("cells");
    ASSERT_NE(cells, nullptr);
    for (const JsonValue &cell : cells->arr) {
        const JsonValue *metrics = cell.find("metrics");
        const JsonValue *hex = cell.find("hex");
        ASSERT_NE(metrics, nullptr);
        ASSERT_NE(hex, nullptr);
        ASSERT_EQ(metrics->obj.size(), hex->obj.size());
        for (std::size_t i = 0; i < metrics->obj.size(); ++i) {
            EXPECT_EQ(metrics->obj[i].first, hex->obj[i].first);
            ASSERT_EQ(hex->obj[i].second.kind, JsonValue::String);
            // strtod accepts the %a spelling; the bits must match the
            // %.17g decimal exactly (both round-trip IEEE doubles).
            const double from_hex =
                std::strtod(hex->obj[i].second.str.c_str(), nullptr);
            EXPECT_EQ(from_hex, metrics->obj[i].second.num)
                << cell.find("name")->str << "/"
                << metrics->obj[i].first;
        }
    }
    std::remove(path.c_str());
}

TEST(BenchReport, TwoWritesAreByteIdentical)
{
    const std::string a =
        testing::TempDir() + "/bench_report_rep_a.json";
    const std::string b =
        testing::TempDir() + "/bench_report_rep_b.json";
    const sim::BenchReport report = sampleReport();
    ASSERT_TRUE(report.write(a));
    ASSERT_TRUE(report.write(b));
    EXPECT_EQ(slurp(a), slurp(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(BenchReport, ScalarLastWriteWins)
{
    sim::BenchReport report("scalars");
    report.scalar("x", 1.0);
    report.scalar("x", 2.0);
    const std::string path =
        testing::TempDir() + "/bench_report_scalar.json";
    ASSERT_TRUE(report.write(path));
    JsonParser parser(slurp(path));
    const JsonValue root = parser.parse();
    const JsonValue *x = root.find("x");
    ASSERT_NE(x, nullptr);
    EXPECT_DOUBLE_EQ(x->num, 2.0);
    std::remove(path.c_str());
}

TEST(BenchUtil, PercentileRowEmptySampleYieldsZeros)
{
    const sim::BenchReport::Metrics row = bench::percentileRow({});
    ASSERT_EQ(row.size(), sim::kPercentileKeys.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
        EXPECT_EQ(row[i].first, sim::kPercentileKeys[i]);
        EXPECT_EQ(row[i].second, 0.0);
    }
}

TEST(BenchUtil, PercentileRowSingleSampleIsConstant)
{
    const sim::BenchReport::Metrics row = bench::percentileRow({3.5});
    ASSERT_EQ(row.size(), sim::kPercentileKeys.size());
    for (const auto &kv : row)
        EXPECT_DOUBLE_EQ(kv.second, 3.5);
}

TEST(BenchUtil, PercentileRowIsMonotoneOverASpread)
{
    std::vector<double> samples;
    for (int i = 1; i <= 1000; ++i)
        samples.push_back(static_cast<double>(i));
    const sim::BenchReport::Metrics row = bench::percentileRow(samples);
    ASSERT_EQ(row.size(), 5u);
    for (std::size_t i = 1; i < row.size(); ++i)
        EXPECT_LE(row[i - 1].second, row[i].second);
    EXPECT_DOUBLE_EQ(row[0].second, pktchase::percentile(samples, 50));
}

} // namespace
