/**
 * @file
 * Tests for sim::BenchReport emission and the bench_util.hh helpers:
 * the BENCH_*.json artifact must round-trip through the sim/json.hh
 * parser (the same one the shard-merge tool trusts), the hexfloat map
 * must reproduce every decimal metric bit-exactly, and two writes of
 * the same report must be byte-identical (the property
 * performance-tracking tooling diffs on).
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hh"
#include "sim/bench_report.hh"
#include "sim/json.hh"

namespace
{

using namespace pktchase;
using sim::JsonValue;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Parse @p path with the shared parser; any error fails the test. */
JsonValue
parseFile(const std::string &path)
{
    JsonValue root;
    std::string err;
    EXPECT_TRUE(sim::parseJsonFile(path, root, err)) << err;
    EXPECT_EQ(root.kind, JsonValue::Object);
    return root;
}

/** A report with awkward values: negatives, tiny, huge, non-dyadic. */
sim::BenchReport
sampleReport()
{
    sim::BenchReport report("selftest");
    report.scalar("elapsed_sec", 12.25);
    report.scalar("count", 3.0);
    sim::BenchReport::Metrics m1;
    m1.emplace_back("p99", 0.1);                 // not exactly dyadic
    m1.emplace_back("rate", 1.2345678901234567e9);
    m1.emplace_back("delta", -4.9406564584124654e-324); // denormal min
    sim::BenchReport::Metrics m2;
    m2.emplace_back("p99", 1e308);
    report.cell("cells/with \"quotes\" and \\slashes", m1);
    report.cell("cells/plain", m2);
    return report;
}

TEST(BenchReport, RoundTripsThroughJsonParser)
{
    const std::string path =
        testing::TempDir() + "/bench_report_roundtrip.json";
    ASSERT_TRUE(sampleReport().write(path));

    const JsonValue root = parseFile(path);

    const JsonValue *bench = root.find("bench");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->str, "selftest");
    const JsonValue *elapsed = root.find("elapsed_sec");
    ASSERT_NE(elapsed, nullptr);
    EXPECT_DOUBLE_EQ(elapsed->num, 12.25);

    const JsonValue *cells = root.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->kind, JsonValue::Array);
    ASSERT_EQ(cells->arr.size(), 2u);

    const JsonValue &c0 = cells->arr[0];
    const JsonValue *name = c0.find("name");
    ASSERT_NE(name, nullptr);
    // The escaped name must round-trip back to the original.
    EXPECT_EQ(name->str, "cells/with \"quotes\" and \\slashes");
    const JsonValue *metrics = c0.find("metrics");
    ASSERT_NE(metrics, nullptr);
    const JsonValue *rate = metrics->find("rate");
    ASSERT_NE(rate, nullptr);
    EXPECT_DOUBLE_EQ(rate->num, 1.2345678901234567e9);

    std::remove(path.c_str());
}

TEST(BenchReport, MetaStringsEmitAndLastWriteWins)
{
    sim::BenchReport report("metas");
    report.meta("grid", "fig-with \"quotes\"");
    report.meta("campaign_seed", "41");
    report.meta("campaign_seed", "42"); // last write wins
    const std::string path = testing::TempDir() + "/bench_meta.json";
    ASSERT_TRUE(report.write(path));

    const JsonValue root = parseFile(path);
    ASSERT_NE(root.find("grid"), nullptr);
    EXPECT_EQ(root.find("grid")->str, "fig-with \"quotes\"");
    ASSERT_NE(root.find("campaign_seed"), nullptr);
    EXPECT_EQ(root.find("campaign_seed")->str, "42");
    std::remove(path.c_str());
}

TEST(BenchReport, RowTaggedCellsCarryIndexAndSeed)
{
    sim::BenchReport report("rows");
    sim::BenchReport::Metrics m;
    m.emplace_back("v", 0.5);
    report.cell(12, 0xDEADBEEFCAFEF00Dull, "rows/one", m);
    const std::string path = testing::TempDir() + "/bench_rows.json";
    ASSERT_TRUE(report.write(path));

    const JsonValue root = parseFile(path);
    const JsonValue *cells = root.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->arr.size(), 1u);
    const JsonValue &cell = cells->arr[0];
    ASSERT_NE(cell.find("index"), nullptr);
    EXPECT_EQ(cell.find("index")->num, 12.0);
    ASSERT_NE(cell.find("seed"), nullptr);
    EXPECT_EQ(cell.find("seed")->str, "0xdeadbeefcafef00d");
    EXPECT_EQ(cell.find("name")->str, "rows/one");
    std::remove(path.c_str());
}

TEST(BenchReport, HexMapReproducesDecimalMetricsBitExactly)
{
    const std::string path =
        testing::TempDir() + "/bench_report_hex.json";
    ASSERT_TRUE(sampleReport().write(path));

    const JsonValue root = parseFile(path);
    const JsonValue *cells = root.find("cells");
    ASSERT_NE(cells, nullptr);
    for (const JsonValue &cell : cells->arr) {
        const JsonValue *metrics = cell.find("metrics");
        const JsonValue *hex = cell.find("hex");
        ASSERT_NE(metrics, nullptr);
        ASSERT_NE(hex, nullptr);
        ASSERT_EQ(metrics->obj.size(), hex->obj.size());
        for (std::size_t i = 0; i < metrics->obj.size(); ++i) {
            EXPECT_EQ(metrics->obj[i].first, hex->obj[i].first);
            ASSERT_EQ(hex->obj[i].second.kind, JsonValue::String);
            // strtod accepts the %a spelling; the bits must match the
            // %.17g decimal exactly (both round-trip IEEE doubles).
            const double from_hex =
                std::strtod(hex->obj[i].second.str.c_str(), nullptr);
            EXPECT_EQ(from_hex, metrics->obj[i].second.num)
                << cell.find("name")->str << "/"
                << metrics->obj[i].first;
        }
    }
    std::remove(path.c_str());
}

TEST(BenchReport, TwoWritesAreByteIdentical)
{
    const std::string a =
        testing::TempDir() + "/bench_report_rep_a.json";
    const std::string b =
        testing::TempDir() + "/bench_report_rep_b.json";
    const sim::BenchReport report = sampleReport();
    ASSERT_TRUE(report.write(a));
    ASSERT_TRUE(report.write(b));
    EXPECT_EQ(slurp(a), slurp(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(BenchReport, ScalarLastWriteWins)
{
    sim::BenchReport report("scalars");
    report.scalar("x", 1.0);
    report.scalar("x", 2.0);
    const std::string path =
        testing::TempDir() + "/bench_report_scalar.json";
    ASSERT_TRUE(report.write(path));
    const JsonValue root = parseFile(path);
    const JsonValue *x = root.find("x");
    ASSERT_NE(x, nullptr);
    EXPECT_DOUBLE_EQ(x->num, 2.0);
    std::remove(path.c_str());
}

TEST(JsonParser, RejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(sim::parseJson("", v, err));
    EXPECT_FALSE(sim::parseJson("{\"a\": }", v, err));
    EXPECT_FALSE(sim::parseJson("{\"a\": 1} trailing", v, err));
    EXPECT_FALSE(sim::parseJson("[1, 2", v, err));
    EXPECT_FALSE(err.empty());
    std::string noent_err;
    EXPECT_FALSE(sim::parseJsonFile(
        testing::TempDir() + "/json_no_such_file.json", v, noent_err));
    EXPECT_FALSE(noent_err.empty());
}

TEST(BenchUtil, PercentileRowEmptySampleYieldsZeros)
{
    const sim::BenchReport::Metrics row = bench::percentileRow({});
    ASSERT_EQ(row.size(), sim::kPercentileKeys.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
        EXPECT_EQ(row[i].first, sim::kPercentileKeys[i]);
        EXPECT_EQ(row[i].second, 0.0);
    }
}

TEST(BenchUtil, PercentileRowSingleSampleIsConstant)
{
    const sim::BenchReport::Metrics row = bench::percentileRow({3.5});
    ASSERT_EQ(row.size(), sim::kPercentileKeys.size());
    for (const auto &kv : row)
        EXPECT_DOUBLE_EQ(kv.second, 3.5);
}

TEST(BenchUtil, PercentileRowIsMonotoneOverASpread)
{
    std::vector<double> samples;
    for (int i = 1; i <= 1000; ++i)
        samples.push_back(static_cast<double>(i));
    const sim::BenchReport::Metrics row = bench::percentileRow(samples);
    ASSERT_EQ(row.size(), 5u);
    for (std::size_t i = 1; i < row.size(); ++i)
        EXPECT_LE(row[i - 1].second, row[i].second);
    EXPECT_DOUBLE_EQ(row[0].second, pktchase::percentile(samples, 50));
}

} // namespace
