/**
 * @file
 * Tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace pktchase;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, FifoTieBreak)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runUntil(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HorizonExcludesLaterEvents)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(50, [&] { ++ran; });
    EXPECT_EQ(eq.runUntil(20), 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 5)
            eq.scheduleAfter(10, tick);
    };
    eq.schedule(0, tick);
    eq.runUntil(1000);
    EXPECT_EQ(count, 5);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, StepSingleEvent)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(7, [&] { ++ran; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(eq.now(), 7u);
    EXPECT_EQ(ran, 1);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue eq;
    Cycles seen = 0;
    eq.schedule(123, [&] { seen = eq.now(); });
    eq.runUntil(200);
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runUntil(100);
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}
