/**
 * @file
 * Tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/event_queue.hh"

using namespace pktchase;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, FifoTieBreak)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runUntil(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HorizonExcludesLaterEvents)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(50, [&] { ++ran; });
    EXPECT_EQ(eq.runUntil(20), 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 5)
            eq.scheduleAfter(10, tick);
    };
    eq.schedule(0, tick);
    eq.runUntil(1000);
    EXPECT_EQ(count, 5);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, StepSingleEvent)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(7, [&] { ++ran; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(eq.now(), 7u);
    EXPECT_EQ(ran, 1);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue eq;
    Cycles seen = 0;
    eq.schedule(123, [&] { seen = eq.now(); });
    eq.runUntil(200);
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runUntil(100);
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueue, TryAdvanceRefusedWhenPendingEventAtExactTarget)
{
    // A pending event at exactly the fold target has an older seq
    // than the event the handler would have rescheduled, so it must
    // run first: the inline advance is refused, the clock untouched,
    // and the scheduler interleaves the two correctly.
    EventQueue eq;
    std::vector<int> order;
    bool advanced = true;
    eq.schedule(10, [&] {
        advanced = eq.tryAdvanceWithin(20);
        order.push_back(1);
    });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_FALSE(advanced);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, TryAdvanceRefusedOutsideActiveRun)
{
    EventQueue eq;
    // No runUntil() active at all: the fold has no horizon to respect
    // and must be refused outright.
    EXPECT_FALSE(eq.tryAdvanceWithin(5));
    EXPECT_EQ(eq.now(), 0u);

    // Inside a run, a fold past the active horizon is refused -- the
    // caller owns time beyond it -- while one at exactly the horizon
    // is the last legal advance.
    Cycles at_horizon = 0, past_horizon = 0;
    bool ok_at = false, ok_past = true;
    eq.schedule(10, [&] {
        ok_past = eq.tryAdvanceWithin(51); // horizon + 1
        past_horizon = eq.now();
        ok_at = eq.tryAdvanceWithin(50); // exactly the horizon
        at_horizon = eq.now();
    });
    eq.runUntil(50);
    EXPECT_FALSE(ok_past);
    EXPECT_EQ(past_horizon, 10u); // refused advances leave now() alone
    EXPECT_TRUE(ok_at);
    EXPECT_EQ(at_horizon, 50u);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, TryAdvanceInterleavesWithNewlyScheduledEarlierEvent)
{
    // A handler batches forward, then new work lands before its next
    // fold target: the fold must be refused so the earlier event runs
    // first, and a later in-bounds fold succeeds again.
    EventQueue eq;
    std::vector<std::pair<int, Cycles>> trace;
    eq.schedule(10, [&] {
        ASSERT_TRUE(eq.tryAdvanceWithin(20)); // queue empty: batches
        trace.emplace_back(1, eq.now());
        eq.schedule(25, [&] { trace.emplace_back(2, eq.now()); });
        // 25 < 30: refused, the handler must yield to the scheduler.
        EXPECT_FALSE(eq.tryAdvanceWithin(30));
        // A fold short of the pending event stays legal (25 is
        // strictly later than 24).
        EXPECT_TRUE(eq.tryAdvanceWithin(24));
        trace.emplace_back(3, eq.now());
    });
    eq.runUntil(100);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0], (std::pair<int, Cycles>{1, 20}));
    EXPECT_EQ(trace[1], (std::pair<int, Cycles>{3, 24}));
    EXPECT_EQ(trace[2], (std::pair<int, Cycles>{2, 25}));
    EXPECT_EQ(eq.now(), 100u);
}
