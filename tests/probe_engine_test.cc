/**
 * @file
 * ProbeEngine behavior under a multi-queue NIC: per-queue chase
 * cursors resync independently, the merged observation stream is
 * arrival-ordered and deterministic, and observers are isolated from
 * the engine and from each other. Ground truth comes from the
 * RxQueue delivery taps.
 */

#include <gtest/gtest.h>

#include <memory>

#include "attack/chasing.hh"
#include "attack/probe_engine.hh"
#include "net/traffic.hh"
#include "testbed/testbed.hh"

using namespace pktchase;
using namespace pktchase::attack;

namespace
{

/** A two-queue full-size testbed. */
testbed::TestbedConfig
twoQueueConfig()
{
    testbed::TestbedConfig cfg;
    cfg.nicSpec = "nic.queues:2";
    return cfg;
}

/** Smallest flow id RSS steers to queue @p q. */
std::uint32_t
flowFor(testbed::Testbed &tb, std::size_t q)
{
    for (std::uint32_t f = 1; f < 100000; ++f)
        if (tb.driver().rss().queueFor(f) == q)
            return f;
    ADD_FAILURE() << "no flow maps to queue " << q;
    return 0;
}

/**
 * Pump 256 B frames onto both queues: queue 0 for the whole horizon,
 * queue 1 only for the first quarter (its sender "drops out").
 * Returns per-queue delivery counts from the RxQueue taps.
 */
struct PumpedTraffic
{
    std::unique_ptr<net::TrafficPump> pump;
    std::size_t delivered[2] = {0, 0};
};

PumpedTraffic
pumpSplitTraffic(testbed::Testbed &tb, Cycles horizon)
{
    PumpedTraffic t;
    const double rate = 40000.0;
    const double secs = cyclesToSeconds(horizon);
    auto mix = std::make_unique<net::FlowMix>();
    mix->add(std::make_unique<net::ConstantStream>(
        256, rate, static_cast<std::uint64_t>(rate * secs),
        nic::Protocol::Udp, flowFor(tb, 0)));
    mix->add(std::make_unique<net::ConstantStream>(
        256, rate, static_cast<std::uint64_t>(rate * secs / 4),
        nic::Protocol::Udp, flowFor(tb, 1)));
    t.pump = std::make_unique<net::TrafficPump>(
        tb.eq(), tb.driver(), std::move(mix), tb.eq().now() + 1000);
    for (std::size_t q = 0; q < 2; ++q) {
        tb.driver().queue(q).setDeliveryTap(
            [&t, q](std::size_t, const nic::Frame &, Cycles) {
                ++t.delivered[q];
            });
    }
    return t;
}

/** Build a two-stream chase engine over the testbed's rings. */
std::unique_ptr<ProbeEngine>
makeChaseEngine(testbed::Testbed &tb)
{
    ProbeEngineConfig ecfg;
    ecfg.probe.ways = tb.config().llc.geom.ways;
    ecfg.resyncTimeout = 2'000'000;
    auto engine = std::make_unique<ProbeEngine>(tb.hier(), ecfg);
    for (auto &seq : tb.chaseSequences())
        engine->addChaseStream(tb.groups(), std::move(seq));
    return engine;
}

} // namespace

TEST(ProbeEngineMultiQueue, PerQueueResyncAfterSenderDrop)
{
    testbed::Testbed tb(twoQueueConfig());
    const Cycles horizon = secondsToCycles(0.02);
    PumpedTraffic traffic = pumpSplitTraffic(tb, horizon);

    auto engine = makeChaseEngine(tb);
    ChasingObserver obs;
    engine->attach(obs);
    engine->run(tb.eq(), horizon);

    // The taps saw the split: queue 1's sender stopped early.
    EXPECT_GT(traffic.delivered[0], 3 * traffic.delivered[1]);
    EXPECT_GT(traffic.delivered[1], 0u);

    // Both cursors chased packets while their senders were live...
    EXPECT_GT(engine->stats(0).packets, 0u);
    EXPECT_GT(engine->stats(1).packets, 0u);

    // ...and only queue 1's cursor went out of sync (repeatedly: it
    // parks, the other queue's buffers sharing its combo occasionally
    // fake an advance, it parks again). Queue 0's sender never
    // stopped, so its cursor kept pace.
    EXPECT_GE(engine->stats(1).outOfSyncEvents, 2u);
    EXPECT_GT(engine->stats(1).outOfSyncEvents,
              engine->stats(0).outOfSyncEvents);

    // Observer totals match the engine's per-stream accounting.
    EXPECT_EQ(obs.packets().size(),
              engine->stats(0).packets + engine->stats(1).packets);
    EXPECT_EQ(obs.outOfSyncEvents(),
              engine->stats(0).outOfSyncEvents +
                  engine->stats(1).outOfSyncEvents);
}

TEST(ProbeEngineMultiQueue, MergedStreamIsArrivalOrderedAndTagged)
{
    testbed::Testbed tb(twoQueueConfig());
    const Cycles horizon = secondsToCycles(0.01);
    PumpedTraffic traffic = pumpSplitTraffic(tb, horizon);

    auto engine = makeChaseEngine(tb);
    ChasingObserver obs;
    engine->attach(obs);
    engine->run(tb.eq(), horizon);

    ASSERT_GT(obs.packets().size(), 10u);
    bool saw_q0 = false, saw_q1 = false;
    Cycles last = 0;
    for (const PacketObservation &p : obs.packets()) {
        EXPECT_GE(p.when, last); // arrival-ordered merge
        last = p.when;
        saw_q0 |= p.queue == 0;
        saw_q1 |= p.queue == 1;
        EXPECT_LT(p.queue, 2u);
        EXPECT_LT(p.slot, tb.driver().ring(p.queue).size());
    }
    EXPECT_TRUE(saw_q0);
    EXPECT_TRUE(saw_q1);
}

TEST(ProbeEngineMultiQueue, RunsAreDeterministic)
{
    auto run = [] {
        testbed::Testbed tb(twoQueueConfig());
        const Cycles horizon = secondsToCycles(0.01);
        PumpedTraffic traffic = pumpSplitTraffic(tb, horizon);
        auto engine = makeChaseEngine(tb);
        ChasingObserver obs;
        engine->attach(obs);
        engine->run(tb.eq(), horizon);
        return obs.packets();
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].when, b[i].when);
        EXPECT_EQ(a[i].sizeClass, b[i].sizeClass);
        EXPECT_EQ(a[i].queue, b[i].queue);
        EXPECT_EQ(a[i].slot, b[i].slot);
    }
}

TEST(ProbeEngineMultiQueue, ObserversAreIsolated)
{
    // Run 1: one observer. Run 2 (identical world): two observers.
    // Attaching a second observer must change nothing -- observers
    // cannot perturb the engine or each other.
    auto run = [](std::size_t observers) {
        testbed::Testbed tb(twoQueueConfig());
        const Cycles horizon = secondsToCycles(0.01);
        PumpedTraffic traffic = pumpSplitTraffic(tb, horizon);
        auto engine = makeChaseEngine(tb);
        std::vector<ChasingObserver> obs(observers);
        for (auto &o : obs)
            engine->attach(o);
        engine->run(tb.eq(), horizon);
        std::vector<std::vector<PacketObservation>> out;
        for (auto &o : obs)
            out.push_back(o.packets());
        return out;
    };
    const auto solo = run(1);
    const auto pair = run(2);
    ASSERT_EQ(pair.size(), 2u);

    // Both observers of run 2 saw the identical stream.
    ASSERT_EQ(pair[0].size(), pair[1].size());
    for (std::size_t i = 0; i < pair[0].size(); ++i) {
        EXPECT_EQ(pair[0][i].when, pair[1][i].when);
        EXPECT_EQ(pair[0][i].sizeClass, pair[1][i].sizeClass);
        EXPECT_EQ(pair[0][i].queue, pair[1][i].queue);
    }

    // And the same stream the solo run saw.
    ASSERT_EQ(solo[0].size(), pair[0].size());
    for (std::size_t i = 0; i < solo[0].size(); ++i) {
        EXPECT_EQ(solo[0][i].when, pair[0][i].when);
        EXPECT_EQ(solo[0][i].sizeClass, pair[0][i].sizeClass);
    }
}

TEST(ProbeEngineMultiQueue, MultiCtorMatchesSingleCtorAtOneQueue)
{
    // ChasingMonitor's multi-queue ctor with one sequence must be the
    // single-queue chase, draw for draw.
    auto run = [](bool multi) {
        testbed::Testbed tb(testbed::TestbedConfig{});
        const Cycles horizon = secondsToCycles(0.005);
        net::TrafficPump pump(
            tb.eq(), tb.driver(),
            std::make_unique<net::ConstantStream>(
                256, 40000.0, 150, nic::Protocol::Udp, 7),
            tb.eq().now() + 1000);
        ChasingConfig cfg;
        cfg.probe.ways = tb.config().llc.geom.ways;
        auto seqs = tb.chaseSequences();
        std::unique_ptr<ChasingMonitor> chaser;
        if (multi) {
            chaser = std::make_unique<ChasingMonitor>(
                tb.hier(), tb.groups(), std::move(seqs), cfg);
        } else {
            chaser = std::make_unique<ChasingMonitor>(
                tb.hier(), tb.groups(), std::move(seqs[0]), cfg);
        }
        return chaser->chase(tb.eq(), horizon);
    };
    const ChaseResult single = run(false);
    const ChaseResult multi = run(true);
    EXPECT_EQ(single.probes, multi.probes);
    EXPECT_EQ(single.finalSlot, multi.finalSlot);
    ASSERT_EQ(single.packets.size(), multi.packets.size());
    for (std::size_t i = 0; i < single.packets.size(); ++i) {
        EXPECT_EQ(single.packets[i].when, multi.packets[i].when);
        EXPECT_EQ(single.packets[i].sizeClass,
                  multi.packets[i].sizeClass);
        EXPECT_EQ(single.packets[i].slot, multi.packets[i].slot);
    }
}
