/**
 * @file
 * Tests for the PRIME+PROBE monitor primitives.
 */

#include <gtest/gtest.h>

#include "attack/prime_probe.hh"
#include "testbed/testbed.hh"

using namespace pktchase;
using namespace pktchase::attack;

namespace
{

struct Fixture : ::testing::Test
{
    testbed::Testbed tb{quietConfig()};

    static testbed::TestbedConfig
    quietConfig()
    {
        testbed::TestbedConfig cfg = testbed::TestbedConfig::reduced();
        cfg.hier.timerNoiseSigma = 0.0;
        cfg.hier.outlierProb = 0.0;
        return cfg;
    }

    PrimeProbeMonitor
    makeMonitor(std::vector<std::size_t> combos)
    {
        std::vector<EvictionSet> sets;
        for (std::size_t c : combos)
            sets.push_back(tb.groups().evictionSetFor(
                c, tb.config().llc.geom.ways));
        return PrimeProbeMonitor(tb.hier(), std::move(sets), 130);
    }
};

} // namespace

TEST_F(Fixture, QuietAfterPrime)
{
    PrimeProbeMonitor mon = makeMonitor({0, 1, 2});
    mon.primeAll(0);
    const ProbeSample s = mon.probeAll(1000);
    for (auto a : s.active)
        EXPECT_EQ(a, 0);
}

TEST_F(Fixture, DetectsPlantedIoWrite)
{
    PrimeProbeMonitor mon = makeMonitor({0, 1, 2});
    mon.primeAll(0);
    mon.probeAll(1000);
    // A packet lands in a page of combo 1.
    const Addr page =
        tb.groups().groups[1][tb.config().llc.geom.ways + 2];
    tb.hier().dmaWrite(page, 64, 2000);
    const ProbeSample s = mon.probeAll(3000);
    EXPECT_EQ(s.active[0], 0);
    EXPECT_EQ(s.active[1], 1);
    EXPECT_EQ(s.active[2], 0);
}

TEST_F(Fixture, ActivityClearsAfterOneProbe)
{
    // Probing re-primes: the next round is quiet again.
    PrimeProbeMonitor mon = makeMonitor({1});
    mon.primeAll(0);
    tb.hier().dmaWrite(
        tb.groups().groups[1][tb.config().llc.geom.ways + 1], 64, 100);
    const ProbeSample hot = mon.probeAll(1000);
    EXPECT_EQ(hot.active[0], 1);
    const ProbeSample cold = mon.probeAll(5000);
    EXPECT_EQ(cold.active[0], 0);
}

TEST_F(Fixture, ProbeOneCountsMisses)
{
    PrimeProbeMonitor mon = makeMonitor({0});
    mon.primeAll(0);
    Cycles elapsed = 0;
    EXPECT_EQ(mon.probeOne(0, 1000, elapsed), 0u);
    tb.hier().dmaWrite(
        tb.groups().groups[0][tb.config().llc.geom.ways + 1], 64, 2000);
    EXPECT_GE(mon.probeOne(0, 3000, elapsed), 1u);
    EXPECT_GT(elapsed, 0u);
}

TEST_F(Fixture, ProbeTimeAccounted)
{
    PrimeProbeMonitor mon = makeMonitor({0, 1, 2, 3});
    mon.primeAll(0);
    const ProbeSample s = mon.probeAll(10000);
    // 4 sets x ways hits at >= hit latency each.
    const Cycles min_cost = 4 * tb.config().llc.geom.ways *
        tb.config().hier.llcHitLatency;
    EXPECT_GE(s.end - s.start, min_cost);
    EXPECT_EQ(s.start, 10000u);
}

TEST_F(Fixture, ReplaceSetSwitchesTarget)
{
    PrimeProbeMonitor mon = makeMonitor({0});
    mon.replaceSet(0, tb.groups()
                          .evictionSetFor(0, tb.config().llc.geom.ways)
                          .atBlock(1));
    mon.primeAll(0);
    mon.probeAll(1000);
    const Addr victim_page =
        tb.groups().groups[0][tb.config().llc.geom.ways + 1];
    // Packet touching only block 0 is now invisible...
    tb.hier().dmaWrite(victim_page, 64, 2000);
    EXPECT_EQ(mon.probeAll(3000).active[0], 0);
    // ...but one touching block 1 is seen.
    tb.hier().dmaWrite(victim_page + blockBytes, 64, 4000);
    EXPECT_EQ(mon.probeAll(5000).active[0], 1);
}

TEST_F(Fixture, TimedLoadsAccumulate)
{
    PrimeProbeMonitor mon = makeMonitor({0, 1});
    const std::uint64_t after_prime =
        2 * tb.config().llc.geom.ways;
    mon.primeAll(0);
    EXPECT_EQ(mon.timedLoads(), after_prime);
    mon.probeAll(1000);
    EXPECT_EQ(mon.timedLoads(), 2 * after_prime);
}

TEST_F(Fixture, DeathOnBadIndex)
{
    PrimeProbeMonitor mon = makeMonitor({0});
    Cycles elapsed = 0;
    EXPECT_DEATH(mon.probeOne(5, 0, elapsed), "range");
    EXPECT_DEATH(mon.replaceSet(5, EvictionSet{}), "range");
}
