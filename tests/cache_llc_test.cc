/**
 * @file
 * Tests for the LLC model: lookup, eviction, and the DDIO I/O
 * write-allocation policy whose contention the attack observes.
 */

#include <gtest/gtest.h>

#include "cache/llc.hh"

using namespace pktchase;
using namespace pktchase::cache;

namespace
{

/** Small single-slice cache: set = (addr >> 6) & 63. */
Llc
makeSmall(unsigned ways = 4, unsigned ddio_ways = 2)
{
    LlcConfig cfg;
    cfg.geom = Geometry{1, 64, ways};
    cfg.ddioWays = ddio_ways;
    return Llc(cfg, std::make_unique<IdentitySliceHash>(1, 0));
}

/** Address of block @p i in set @p set (single-slice geometry). */
Addr
addrOf(unsigned set, unsigned i)
{
    return (Addr(i) * 64 + set) * blockBytes;
}

} // namespace

TEST(Llc, MissThenHit)
{
    Llc llc = makeSmall();
    EXPECT_FALSE(llc.cpuRead(addrOf(0, 0), 0));
    EXPECT_TRUE(llc.cpuRead(addrOf(0, 0), 1));
    EXPECT_EQ(llc.stats().cpuReads, 2u);
    EXPECT_EQ(llc.stats().cpuReadMisses, 1u);
}

TEST(Llc, SameBlockDifferentOffsetsHit)
{
    Llc llc = makeSmall();
    llc.cpuRead(100, 0);
    EXPECT_TRUE(llc.cpuRead(100 + 63 - (100 % 64), 1));
}

TEST(Llc, AssociativityEviction)
{
    Llc llc = makeSmall(4);
    for (unsigned i = 0; i < 4; ++i)
        llc.cpuRead(addrOf(5, i), i);
    // All four resident.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(llc.contains(addrOf(5, i)));
    // Fifth block evicts the LRU (block 0).
    llc.cpuRead(addrOf(5, 4), 10);
    EXPECT_FALSE(llc.contains(addrOf(5, 0)));
    EXPECT_TRUE(llc.contains(addrOf(5, 4)));
    EXPECT_EQ(llc.stats().cpuEvictedByCpu, 1u);
}

TEST(Llc, DistinctSetsDoNotConflict)
{
    Llc llc = makeSmall(4);
    for (unsigned set = 0; set < 8; ++set)
        for (unsigned i = 0; i < 4; ++i)
            llc.cpuRead(addrOf(set, i), set * 4 + i);
    for (unsigned set = 0; set < 8; ++set)
        for (unsigned i = 0; i < 4; ++i)
            EXPECT_TRUE(llc.contains(addrOf(set, i)));
}

TEST(Llc, WritebackOnDirtyEviction)
{
    Llc llc = makeSmall(2);
    llc.cpuWrite(addrOf(3, 0), 0);
    llc.cpuRead(addrOf(3, 1), 1);
    EXPECT_EQ(llc.stats().writebacks, 0u);
    llc.cpuRead(addrOf(3, 2), 2); // evicts dirty block 0
    EXPECT_EQ(llc.stats().writebacks, 1u);
}

TEST(Llc, CleanEvictionNoWriteback)
{
    Llc llc = makeSmall(2);
    llc.cpuRead(addrOf(3, 0), 0);
    llc.cpuRead(addrOf(3, 1), 1);
    llc.cpuRead(addrOf(3, 2), 2);
    EXPECT_EQ(llc.stats().writebacks, 0u);
}

TEST(Llc, IoWriteAllocatesDirtyIoLine)
{
    Llc llc = makeSmall();
    llc.ioWrite(addrOf(7, 0), 0);
    EXPECT_TRUE(llc.contains(addrOf(7, 0)));
    EXPECT_TRUE(llc.containsIoLine(addrOf(7, 0)));
    EXPECT_EQ(llc.stats().ioAllocations, 1u);
    // DDIO lines are dirty: flushing writes them back.
    llc.flushAll();
    EXPECT_EQ(llc.stats().writebacks, 1u);
}

TEST(Llc, DdioCapLimitsIoOccupancy)
{
    Llc llc = makeSmall(4, 2);
    for (unsigned i = 0; i < 8; ++i)
        llc.ioWrite(addrOf(9, i), i);
    EXPECT_EQ(llc.ioCount(llc.globalSet(addrOf(9, 0))), 2u);
    // Later I/O lines recycled within the cap; early ones evicted.
    EXPECT_TRUE(llc.contains(addrOf(9, 7)));
    EXPECT_FALSE(llc.contains(addrOf(9, 0)));
    EXPECT_EQ(llc.stats().ioEvictedByIo, 6u);
}

TEST(Llc, IoWriteEvictsCpuLineTheLeak)
{
    // The Packet Chasing observable: a full set of CPU (spy) lines
    // loses one to an incoming packet.
    Llc llc = makeSmall(4, 2);
    for (unsigned i = 0; i < 4; ++i)
        llc.cpuRead(addrOf(11, i), i);
    llc.ioWrite(addrOf(11, 100), 10);
    EXPECT_EQ(llc.stats().cpuEvictedByIo, 1u);
    EXPECT_FALSE(llc.contains(addrOf(11, 0))); // LRU spy line gone
}

TEST(Llc, IoWriteHitUpdatesInPlace)
{
    Llc llc = makeSmall();
    llc.ioWrite(addrOf(2, 0), 0);
    llc.ioWrite(addrOf(2, 0), 1);
    EXPECT_EQ(llc.stats().ioWriteHits, 1u);
    EXPECT_EQ(llc.stats().ioAllocations, 1u);
}

TEST(Llc, CpuWriteTakesOwnershipOfIoLine)
{
    Llc llc = makeSmall();
    llc.ioWrite(addrOf(2, 0), 0);
    EXPECT_TRUE(llc.containsIoLine(addrOf(2, 0)));
    llc.cpuWrite(addrOf(2, 0), 1);
    EXPECT_TRUE(llc.contains(addrOf(2, 0)));
    EXPECT_FALSE(llc.containsIoLine(addrOf(2, 0)));
}

TEST(Llc, CpuReadKeepsIoOwnership)
{
    // The driver's header read must not free up DDIO's budget.
    Llc llc = makeSmall();
    llc.ioWrite(addrOf(2, 0), 0);
    llc.cpuRead(addrOf(2, 0), 1);
    EXPECT_TRUE(llc.containsIoLine(addrOf(2, 0)));
}

TEST(Llc, InvalidateDropsWithoutWriteback)
{
    Llc llc = makeSmall();
    llc.cpuWrite(addrOf(4, 0), 0);
    llc.invalidateBlock(addrOf(4, 0));
    EXPECT_FALSE(llc.contains(addrOf(4, 0)));
    EXPECT_EQ(llc.stats().writebacks, 0u);
    EXPECT_EQ(llc.stats().invalidations, 1u);
}

TEST(Llc, InvalidateMissIsNoop)
{
    Llc llc = makeSmall();
    llc.invalidateBlock(addrOf(4, 0));
    EXPECT_EQ(llc.stats().invalidations, 0u);
}

TEST(Llc, MemReadsCountDemandFills)
{
    Llc llc = makeSmall();
    llc.cpuRead(addrOf(0, 0), 0);
    llc.cpuRead(addrOf(0, 0), 1);
    llc.cpuWrite(addrOf(0, 1), 2);
    EXPECT_EQ(llc.stats().memReads, 2u);
}

TEST(Llc, IoWritesBypassMemReads)
{
    Llc llc = makeSmall();
    llc.ioWrite(addrOf(0, 0), 0);
    EXPECT_EQ(llc.stats().memReads, 0u);
}

TEST(Llc, FlushAllEmptiesCache)
{
    Llc llc = makeSmall();
    for (unsigned i = 0; i < 16; ++i)
        llc.cpuRead(addrOf(i, 0), i);
    llc.flushAll();
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_FALSE(llc.contains(addrOf(i, 0)));
}

TEST(Llc, ValidCountTracksOccupancy)
{
    Llc llc = makeSmall(4);
    const std::size_t gset = llc.globalSet(addrOf(6, 0));
    EXPECT_EQ(llc.validCount(gset), 0u);
    llc.cpuRead(addrOf(6, 0), 0);
    llc.cpuRead(addrOf(6, 1), 1);
    EXPECT_EQ(llc.validCount(gset), 2u);
}

TEST(Llc, ClearStatsKeepsContents)
{
    Llc llc = makeSmall();
    llc.cpuRead(addrOf(0, 0), 0);
    llc.clearStats();
    EXPECT_EQ(llc.stats().cpuReads, 0u);
    EXPECT_TRUE(llc.contains(addrOf(0, 0)));
}

TEST(Llc, StatsConservation)
{
    // Random traffic: misses == fills; every eviction is attributed.
    Llc llc = makeSmall(4, 2);
    Rng rng(7);
    for (int t = 0; t < 20000; ++t) {
        const Addr a = addrOf(static_cast<unsigned>(rng.nextBounded(64)),
                              static_cast<unsigned>(rng.nextBounded(8)));
        const unsigned op = static_cast<unsigned>(rng.nextBounded(3));
        if (op == 0)
            llc.cpuRead(a, static_cast<Cycles>(t));
        else if (op == 1)
            llc.cpuWrite(a, static_cast<Cycles>(t));
        else
            llc.ioWrite(a, static_cast<Cycles>(t));
    }
    const LlcStats &s = llc.stats();
    EXPECT_EQ(s.memReads, s.cpuReadMisses + s.cpuWriteMisses);
    EXPECT_EQ(s.ioWrites, s.ioWriteHits + s.ioAllocations);
    // Occupancy never exceeds ways.
    for (std::size_t g = 0; g < 64; ++g) {
        EXPECT_LE(llc.validCount(g), 4u);
        EXPECT_LE(llc.ioCount(g), llc.validCount(g));
    }
}

TEST(LlcDeath, MismatchedHashFatal)
{
    LlcConfig cfg;
    cfg.geom = Geometry{2, 64, 4};
    EXPECT_EXIT(Llc(cfg, std::make_unique<IdentitySliceHash>(4, 12)),
                ::testing::ExitedWithCode(1), "slice");
}

TEST(LlcDeath, BadDdioWaysFatal)
{
    LlcConfig cfg;
    cfg.geom = Geometry{1, 64, 4};
    cfg.ddioWays = 5;
    EXPECT_EXIT(Llc(cfg, std::make_unique<IdentitySliceHash>(1, 0)),
                ::testing::ExitedWithCode(1), "ddioWays");
}
