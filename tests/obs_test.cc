/**
 * @file
 * Tests for the obs subsystem: hot-path counters (snapshot arithmetic,
 * naming, per-cell campaign deltas with the threads=N == threads=1
 * contract) and the wall-clock tracer (file emission, expected span
 * names, zero-cost-when-detached behaviour).
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "runtime/campaign.hh"
#include "sim/event_queue.hh"
#include "sim/json.hh"

namespace
{

using namespace pktchase;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ObsStats, BumpAndSnapshotDelta)
{
    const obs::StatSnapshot before = obs::snapshot();
    obs::bump(obs::Stat::FramesDelivered);
    obs::bump(obs::Stat::FramesDelivered, 9);
    obs::bump(obs::Stat::ProbeRounds, 3);
    const obs::StatSnapshot delta = obs::snapshot() - before;
    EXPECT_EQ(delta.get(obs::Stat::FramesDelivered), 10u);
    EXPECT_EQ(delta.get(obs::Stat::ProbeRounds), 3u);
    EXPECT_EQ(delta.get(obs::Stat::LlcMisses), 0u);
}

TEST(ObsStats, ToCountersCarriesEveryStatInEnumOrder)
{
    const obs::StatSnapshot before = obs::snapshot();
    obs::bump(obs::Stat::SimEvents, 5);
    const auto counters = (obs::snapshot() - before).toCounters();
    ASSERT_EQ(counters.size(), obs::kStatCount);
    EXPECT_EQ(counters[0].first, "sim_events");
    EXPECT_EQ(counters[0].second, 5u);
    for (std::size_t i = 0; i < obs::kStatCount; ++i) {
        EXPECT_STREQ(counters[i].first.c_str(),
                     obs::statName(static_cast<obs::Stat>(i)));
    }
}

TEST(ObsStats, StatNamesAreUniqueAndStable)
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < obs::kStatCount; ++i)
        names.push_back(obs::statName(static_cast<obs::Stat>(i)));
    for (std::size_t i = 0; i < names.size(); ++i)
        for (std::size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j]);
    EXPECT_EQ(names.front(), "sim_events");
    EXPECT_EQ(names.back(), "tasks_stolen");
}

TEST(ObsStatsDeathTest, BackwardsSubtractionPanics)
{
    obs::StatSnapshot a;
    obs::StatSnapshot b;
    b.counts[0] = 1;
    EXPECT_DEATH({ auto d = a - b; (void)d; }, "backwards");
}

TEST(ObsStats, EventQueueBumpsSimEvents)
{
    const obs::StatSnapshot before = obs::snapshot();
    EventQueue eq;
    for (Cycles c = 1; c <= 25; ++c)
        eq.schedule(c, [] {});
    eq.runUntil(100);
    const obs::StatSnapshot delta = obs::snapshot() - before;
    EXPECT_EQ(delta.get(obs::Stat::SimEvents), 25u);
}

/**
 * A tiny deterministic grid: cell i pops 10*(i+1) events plus an
 * rng-drawn count, so every cell's counter totals differ and depend
 * on the campaign seed -- exactly the shape the real grids have.
 */
std::vector<runtime::Scenario>
tinyGrid(std::size_t cells)
{
    std::vector<runtime::Scenario> grid;
    for (std::size_t i = 0; i < cells; ++i) {
        grid.push_back({"obs/cell" + std::to_string(i),
            [i](runtime::ScenarioContext &ctx) {
                EventQueue eq;
                const std::uint64_t n =
                    10 * (i + 1) + ctx.rng.nextBounded(7);
                for (std::uint64_t k = 1; k <= n; ++k)
                    eq.schedule(k, [] {});
                eq.runUntil(n + 1);
                obs::bump(obs::Stat::FramesDelivered, i);
                runtime::ScenarioResult r;
                r.set("events", static_cast<double>(n));
                return r;
            }});
    }
    return grid;
}

/** Per-cell counter totals are identical on 1 and 4 worker threads. */
TEST(ObsCampaign, CounterTotalsMatchAcrossThreadCounts)
{
    runtime::CampaignConfig serial_cfg;
    serial_cfg.threads = 1;
    serial_cfg.seed = 99;
    runtime::Campaign serial(serial_cfg);
    const auto ref = serial.run(tinyGrid(13));

    runtime::CampaignConfig parallel_cfg;
    parallel_cfg.threads = 4;
    parallel_cfg.seed = 99;
    runtime::Campaign parallel(parallel_cfg);
    const auto par = parallel.run(tinyGrid(13));

    ASSERT_EQ(ref.size(), par.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ref[i].counters.size(), obs::kStatCount);
        ASSERT_EQ(par[i].counters.size(), obs::kStatCount);
        for (std::size_t c = 0; c < obs::kStatCount; ++c) {
            EXPECT_EQ(ref[i].counters[c].first, par[i].counters[c].first);
            EXPECT_EQ(ref[i].counters[c].second,
                      par[i].counters[c].second)
                << "cell " << ref[i].name << " counter "
                << ref[i].counters[c].first;
        }
        // The cell scheduled events+1 queue pops at minimum; the delta
        // must reflect the cell's own work.
        EXPECT_EQ(ref[i].counter("sim_events"),
                  static_cast<std::uint64_t>(ref[i].value("events")));
        EXPECT_EQ(ref[i].counter("frames_delivered"), i);
    }
}

TEST(ObsTrace, DetachedByDefault)
{
    EXPECT_FALSE(obs::tracing());
    EXPECT_EQ(obs::TraceSession::active(), nullptr);
    // Spans and instants without a session must be harmless no-ops.
    {
        const obs::ScopedSpan span("noop", "test");
        obs::instant("noop-instant", "test");
    }
    const obs::StatSnapshot before = obs::snapshot();
    { const obs::ScopedSpan span("noop2", "test"); }
    // A detached span must not touch the counters either.
    const obs::StatSnapshot delta = obs::snapshot() - before;
    for (std::size_t i = 0; i < obs::kStatCount; ++i)
        EXPECT_EQ(delta.counts[i], 0u);
}

TEST(ObsTrace, WritesChromeTraceJson)
{
    const std::string path =
        testing::TempDir() + "/obs_trace_test.json";
    {
        obs::TraceSession session(path);
        EXPECT_TRUE(obs::tracing());
        EXPECT_EQ(obs::TraceSession::active(), &session);
        {
            const obs::ScopedSpan outer("outer-span", "test");
            const obs::ScopedSpan inner(std::string("dynamic-span"),
                                        "test");
            obs::instant("marker", "test");
        }
    }
    EXPECT_FALSE(obs::tracing());
    EXPECT_EQ(obs::TraceSession::active(), nullptr);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(text.find("\"outer-span\""), std::string::npos);
    EXPECT_NE(text.find("\"dynamic-span\""), std::string::npos);
    EXPECT_NE(text.find("\"marker\""), std::string::npos);
    EXPECT_NE(text.find("thread_name"), std::string::npos);
    EXPECT_NE(text.find("\"driver\""), std::string::npos);
    // Spans are complete events, instants thread-scoped instants.
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(ObsTrace, BoundedBufferCountsDrops)
{
    const std::string path =
        testing::TempDir() + "/obs_trace_drop_test.json";
    {
        obs::TraceSession session(path, 4);
        for (int i = 0; i < 10; ++i)
            obs::instant("flood", "test");
        EXPECT_EQ(session.droppedEvents(), 6u);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("dropped_events"), std::string::npos);
    std::remove(path.c_str());
}

/** Satellite of the configurable trace buffers: overflowing a tiny
 *  bounded buffer from a multi-threaded campaign drops events but the
 *  emitted file is still well-formed JSON with the drop counts -- a
 *  drop must never tear an event record. */
TEST(ObsTrace, OverflowedBufferStillEmitsValidJson)
{
    const std::string path =
        testing::TempDir() + "/obs_trace_overflow_test.json";
    std::uint64_t dropped = 0;
    std::size_t threadsSeen = 0;
    {
        // One event per thread for a 9-cell campaign on 4 workers:
        // pigeonhole guarantees some worker runs >= 2 cells, so its
        // second span must be dropped mid-flight.
        obs::TraceSession session(path, 1);
        runtime::CampaignConfig cfg;
        cfg.threads = 4;
        cfg.seed = 7;
        runtime::Campaign campaign(cfg);
        campaign.run(tinyGrid(9));
        dropped = session.droppedEvents();
        threadsSeen = session.perThreadDrops().size();
        EXPECT_EQ(session.eventCap(), 1u);
    }
    EXPECT_GT(dropped, 0u);
    EXPECT_GE(threadsSeen, 2u); // Driver + at least one worker.

    sim::JsonValue root;
    std::string err;
    ASSERT_TRUE(sim::parseJsonFile(path, root, err)) << err;
    const sim::JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_FALSE(events->arr.empty());
    // The writer records each overflowed buffer as an instant marker.
    EXPECT_NE(slurp(path).find("dropped_events: "), std::string::npos);
    std::remove(path.c_str());
}

/** A campaign under an active session traces cells without changing
 *  results: the traced report equals the untraced one byte-for-byte. */
TEST(ObsTrace, TracingDoesNotPerturbCampaignResults)
{
    runtime::CampaignConfig cfg;
    cfg.threads = 4;
    cfg.seed = 7;
    runtime::Campaign plain(cfg);
    const std::string ref = runtime::formatReport(plain.run(tinyGrid(9)));

    const std::string path =
        testing::TempDir() + "/obs_trace_campaign_test.json";
    std::string traced;
    {
        obs::TraceSession session(path);
        runtime::Campaign campaign(cfg);
        traced = runtime::formatReport(campaign.run(tinyGrid(9)));
    }
    EXPECT_EQ(ref, traced);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    // Worker tracks and per-cell spans made it into the trace.
    EXPECT_NE(text.find("\"worker-0\""), std::string::npos);
    EXPECT_NE(text.find("obs/cell0"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
