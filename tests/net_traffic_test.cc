/**
 * @file
 * Tests for traffic generation and line-rate pacing.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "net/traffic.hh"
#include "nic/igb_driver.hh"
#include "sim/event_queue.hh"

using namespace pktchase;
using namespace pktchase::net;

namespace
{

struct World
{
    mem::PhysMem phys{Addr(64) << 20, Rng(1)};
    cache::Hierarchy hier;
    EventQueue eq;
    nic::IgbDriver drv;

    World()
        : hier(llcCfg(), hierCfg(),
               cache::XorFoldSliceHash::twoSlice()),
          drv(igbCfg(), phys, hier)
    {
    }

    static cache::LlcConfig
    llcCfg()
    {
        cache::LlcConfig cfg;
        cfg.geom = cache::Geometry{2, 512, 8};
        return cfg;
    }

    static cache::HierarchyConfig
    hierCfg()
    {
        cache::HierarchyConfig cfg;
        cfg.timerNoiseSigma = 0.0;
        cfg.outlierProb = 0.0;
        return cfg;
    }

    static nic::IgbConfig
    igbCfg()
    {
        nic::IgbConfig cfg;
        cfg.ringSize = 16;
        return cfg;
    }
};

} // namespace

TEST(LineRate, ClassicMaxFrameRates)
{
    // 64 B frames + 20 B overhead at 1 Gb/s: the canonical 1.488 Mpps.
    EXPECT_NEAR(maxFrameRate(64), 1.488e6, 1e4);
    // Larger frames are slower; monotonicity.
    EXPECT_LT(maxFrameRate(1518), maxFrameRate(512));
    EXPECT_LT(maxFrameRate(512), maxFrameRate(64));
}

TEST(LineRate, WireCyclesMatchesRate)
{
    nic::Frame f;
    f.bytes = 192;
    const double per_packet = 1.0 / maxFrameRate(192);
    EXPECT_NEAR(static_cast<double>(wireCycles(f)),
                per_packet * coreFreqHz, 2.0);
}

TEST(ConstantStream, CountLimit)
{
    ConstantStream s(64, 1000.0, 5);
    nic::Frame f;
    Cycles gap = 0;
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(s.next(f, gap));
    EXPECT_FALSE(s.next(f, gap));
}

TEST(ConstantStream, RateClampedToLineRate)
{
    ConstantStream s(1514, 1e9, 1); // absurd rate
    nic::Frame f;
    Cycles gap = 0;
    ASSERT_TRUE(s.next(f, gap));
    EXPECT_GE(gap, wireCycles(f) - 1);
}

TEST(ConstantStream, ZeroRateMeansLineRate)
{
    ConstantStream s(256, 0.0, 1);
    nic::Frame f;
    Cycles gap = 0;
    ASSERT_TRUE(s.next(f, gap));
    EXPECT_NEAR(static_cast<double>(gap),
                coreFreqHz / maxFrameRate(256), 2.0);
}

TEST(PoissonBackground, MeanRateRoughlyCorrect)
{
    PoissonBackground src(10000.0, Rng(3), 20000);
    nic::Frame f;
    Cycles gap = 0;
    double total = 0;
    std::size_t n = 0;
    while (src.next(f, gap)) {
        total += cyclesToSeconds(gap);
        ++n;
    }
    EXPECT_EQ(n, 20000u);
    EXPECT_NEAR(total / static_cast<double>(n), 1e-4, 1e-5);
}

TEST(PoissonBackground, SizesWithinEthernetLimits)
{
    Rng rng(4);
    for (int i = 0; i < 10000; ++i) {
        const Addr s = PoissonBackground::sampleSize(rng);
        EXPECT_GE(s, nic::minFrameBytes);
        EXPECT_LE(s, nic::maxFrameBytes);
    }
}

TEST(PoissonBackground, BimodalMix)
{
    Rng rng(5);
    unsigned small = 0, large = 0, n = 20000;
    for (unsigned i = 0; i < n; ++i) {
        const Addr s = PoissonBackground::sampleSize(rng);
        if (s <= 128)
            ++small;
        if (s >= 1400)
            ++large;
    }
    EXPECT_NEAR(small / double(n), 0.45, 0.03);
    EXPECT_NEAR(large / double(n), 0.40, 0.03);
}

TEST(ReplayStream, PreservesOrder)
{
    std::vector<nic::Frame> frames;
    for (unsigned i = 1; i <= 4; ++i)
        frames.push_back(nic::frameOfBlocks(i));
    ReplayStream s(frames, 1000.0);
    nic::Frame f;
    Cycles gap = 0;
    for (unsigned i = 1; i <= 4; ++i) {
        ASSERT_TRUE(s.next(f, gap));
        EXPECT_EQ(f.blocks(), i);
    }
    EXPECT_FALSE(s.next(f, gap));
}

TEST(TrafficPump, DeliversAllFrames)
{
    World w;
    TrafficPump pump(w.eq, w.drv,
                     std::make_unique<ConstantStream>(64, 100000.0, 50),
                     100);
    w.eq.runUntil(secondsToCycles(0.01));
    EXPECT_EQ(pump.delivered(), 50u);
    EXPECT_TRUE(pump.exhausted());
    EXPECT_EQ(w.drv.stats().framesReceived, 50u);
}

TEST(TrafficPump, LineSerialization)
{
    // Arrivals can never be closer than the frame's wire time.
    World w;
    std::vector<Cycles> arrivals;
    TrafficPump pump(w.eq, w.drv,
                     std::make_unique<ConstantStream>(1514, 0.0, 20),
                     100);
    pump.setObserver([&](const nic::Frame &, Cycles t) {
        arrivals.push_back(t);
    });
    w.eq.runUntil(secondsToCycles(0.01));
    ASSERT_EQ(arrivals.size(), 20u);
    nic::Frame f;
    f.bytes = 1514;
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GE(arrivals[i] - arrivals[i - 1], wireCycles(f));
}

TEST(TrafficPump, JitterPerturbsArrivals)
{
    World w;
    std::vector<Cycles> arrivals;
    TrafficPump pump(
        w.eq, w.drv,
        std::make_unique<ConstantStream>(64, 10000.0, 50), 100,
        5000.0, 99);
    pump.setObserver([&](const nic::Frame &, Cycles t) {
        arrivals.push_back(t);
    });
    w.eq.runUntil(secondsToCycles(0.1));
    ASSERT_EQ(arrivals.size(), 50u);
    // Gaps should vary (not all equal to the nominal period).
    std::set<Cycles> gaps;
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        gaps.insert(arrivals[i] - arrivals[i - 1]);
    EXPECT_GT(gaps.size(), 10u);
}

TEST(TrafficPump, ObserverSeesFrames)
{
    World w;
    unsigned count = 0;
    TrafficPump pump(w.eq, w.drv,
                     std::make_unique<ConstantStream>(128, 100000.0, 7),
                     100);
    pump.setObserver([&](const nic::Frame &f, Cycles) {
        EXPECT_EQ(f.bytes, 128u);
        ++count;
    });
    w.eq.runUntil(secondsToCycles(0.01));
    EXPECT_EQ(count, 7u);
}
